// Segment-storage benchmark (PR 8): the out-of-core layer measured on
// three axes over one clustered table (x = row index, y uniform, z
// random double, s short strings; segment_rows shrunk so the table
// splits into many segments):
//
//   zone scan    a selective clustered-range aggregate with zone maps
//                on vs off — the on-path consults per-segment min/max
//                and skips segments that cannot match (the acceptance
//                criterion: >= 50% skipped with a measured speedup).
//   segment IO   the same full-table aggregate through the flat
//                zero-copy path vs the compressed segment read path,
//                plus the encoded footprint vs the raw 64-bit layout.
//   spill        a join aggregate and a top-k sort at an unlimited
//                budget vs a budget of data/10: the Grace hash join and
//                the external merge sort must complete with identical
//                results, paying the temp-file detour measured here.
//
// Also the CI probe for the storage plumbing: invoked as
//   bench_storage --assert-storage
// it checks budget-constrained results byte-identical to the unlimited
// oracle with nonzero spill counters, >= 50% segments skipped on the
// clustered zone query with zones-off results identical, and zero
// segment accounting when zone maps are disabled. Exits nonzero on any
// failure.
//
// Flags: --rows=N          table cardinality     (default 100000)
//        --segment-rows=N  rows per segment      (default 4096)
//        --reps=N          runs per median       (default 5)
//        --quick           10000 rows, 3 reps
//        --json            machine-readable report on stdout
//        --assert-storage  smoke probe (see above)
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"
#include "engine/database.h"
#include "exec/exec_context.h"
#include "storage/segment.h"
#include "storage/spill.h"

namespace {

using namespace bypass;         // NOLINT(build/namespaces)
using namespace bypass::bench;  // NOLINT(build/namespaces)

Status LoadClustered(Database* db, int64_t rows, size_t segment_rows) {
  Schema schema;
  schema.AddColumn({"x", DataType::kInt64, ""});
  schema.AddColumn({"y", DataType::kInt64, ""});
  schema.AddColumn({"z", DataType::kDouble, ""});
  schema.AddColumn({"s", DataType::kString, ""});
  auto table = db->CreateTable("big", std::move(schema));
  BYPASS_RETURN_IF_ERROR(table.status());
  Rng rng(1234);
  std::vector<Row> data;
  data.reserve(static_cast<size_t>(rows));
  for (int64_t i = 0; i < rows; ++i) {
    Row row;
    row.push_back(Value::Int64(i));
    row.push_back(Value::Int64(rng.UniformInt(0, 999)));
    row.push_back(Value::Double(rng.UniformDouble()));
    row.push_back(Value::String("item_" +
                                std::to_string(rng.UniformInt(0, 19))));
    data.push_back(std::move(row));
  }
  BYPASS_RETURN_IF_ERROR((*table)->AppendUnchecked(std::move(data)));
  (*table)->set_segment_rows(segment_rows);
  return Status::OK();
}

Status LoadJoinPair(Database* db, int64_t rows) {
  for (const char* name : {"r1", "s1"}) {
    Schema schema;
    schema.AddColumn({"k", DataType::kInt64, ""});
    schema.AddColumn({"v", DataType::kInt64, ""});
    auto table = db->CreateTable(name, std::move(schema));
    BYPASS_RETURN_IF_ERROR(table.status());
    Rng rng(name[0] == 'r' ? 77 : 78);
    std::vector<Row> data;
    data.reserve(static_cast<size_t>(rows));
    for (int64_t i = 0; i < rows; ++i) {
      Row row;
      row.push_back(Value::Int64(rng.UniformInt(0, rows / 8)));
      row.push_back(Value::Int64(i));
      data.push_back(std::move(row));
    }
    BYPASS_RETURN_IF_ERROR((*table)->AppendUnchecked(std::move(data)));
  }
  return Status::OK();
}

int64_t TableApproxBytes(Database* db, const std::string& name) {
  auto table = db->catalog()->GetTable(name);
  if (!table.ok()) return 0;
  return ApproxRowsBytes(static_cast<size_t>((*table)->num_rows()),
                         (*table)->schema().num_columns());
}

struct Timed {
  double median_ms = 0;
  QueryResult last;  // stats/rows of the final run
};

/// Median-of-`reps` execution wall time; dies on any error.
Timed Run(Database* db, const std::string& sql, const QueryOptions& options,
          int reps) {
  Timed timed;
  std::vector<double> ms;
  for (int i = 0; i < reps; ++i) {
    auto result = db->Query(sql, options);
    if (!result.ok()) {
      std::fprintf(stderr, "bench_storage: %s\n  sql: %s\n",
                   result.status().ToString().c_str(), sql.c_str());
      std::exit(1);
    }
    ms.push_back(result->execution_seconds() * 1e3);
    if (i == reps - 1) timed.last = std::move(*result);
  }
  std::sort(ms.begin(), ms.end());
  timed.median_ms = ms[ms.size() / 2];
  return timed;
}

std::string RowsFingerprint(const std::vector<Row>& rows) {
  std::string buf;
  for (const Row& r : rows) AppendRowSerialized(r, &buf);
  return buf;
}

// ------------------------------------------------------ --assert-storage

int Fail(const char* what) {
  std::fprintf(stderr, "assert-storage: FAILED: %s\n", what);
  return 1;
}

int AssertStorage(int64_t rows, size_t segment_rows) {
  Database db;
  Status loaded = LoadClustered(&db, rows, segment_rows);
  if (loaded.ok()) loaded = LoadJoinPair(&db, rows / 4);
  if (!loaded.ok()) {
    std::fprintf(stderr, "assert-storage: load failed: %s\n",
                 loaded.ToString().c_str());
    return 1;
  }

  // (1) Zone-map skipping: >= 50% of segments skipped on the clustered
  // range, zones-off control identical with zero segment accounting.
  const std::string zone_sql = "SELECT COUNT(*), SUM(y) FROM big WHERE x < " +
                               std::to_string(rows / 10);
  QueryOptions zones_on;
  QueryOptions zones_off;
  zones_off.enable_zone_maps = false;
  const Timed on = Run(&db, zone_sql, zones_on, 1);
  const Timed off = Run(&db, zone_sql, zones_off, 1);
  if (RowsFingerprint(on.last.rows) != RowsFingerprint(off.last.rows)) {
    return Fail("zone-skipping scan disagrees with the zones-off oracle");
  }
  if (on.last.stats.segments_scanned <= 0 ||
      on.last.stats.segments_skipped * 2 < on.last.stats.segments_scanned) {
    return Fail("fewer than half the segments were skipped");
  }
  if (off.last.stats.segments_skipped != 0 ||
      off.last.stats.zone_skip_rows != 0) {
    return Fail("zones-off control still reports segment skips");
  }

  // (2) Budget-driven spill: join aggregate and top-k sort at a budget
  // of data/10, byte-identical to the unlimited oracle, nonzero spill.
  const int64_t join_data =
      TableApproxBytes(&db, "r1") + TableApproxBytes(&db, "s1");
  struct Probe {
    const char* what;
    std::string sql;
    size_t budget;
  };
  const std::vector<Probe> probes = {
      {"grace join",
       "SELECT COUNT(*), SUM(r1.v) FROM r1, s1 WHERE r1.k = s1.k",
       static_cast<size_t>(join_data / 10)},
      {"external sort",
       "SELECT x, y FROM big ORDER BY x DESC LIMIT 10",
       static_cast<size_t>(TableApproxBytes(&db, "big") / 10)},
  };
  int64_t spilled_bytes = 0;
  for (const Probe& probe : probes) {
    QueryOptions oracle;
    const Timed unlimited = Run(&db, probe.sql, oracle, 1);
    QueryOptions budgeted;
    budgeted.memory_budget_bytes = probe.budget;
    const Timed constrained = Run(&db, probe.sql, budgeted, 1);
    if (RowsFingerprint(constrained.last.rows) !=
        RowsFingerprint(unlimited.last.rows)) {
      return Fail("budgeted results differ from the unlimited oracle");
    }
    if (constrained.last.stats.spilled_bytes <= 0) {
      return Fail("budgeted run did not spill");
    }
    spilled_bytes += constrained.last.stats.spilled_bytes;
  }
  std::printf(
      "assert-storage OK: %lld/%lld segments skipped, %lld bytes "
      "spilled, results identical\n",
      static_cast<long long>(on.last.stats.segments_skipped),
      static_cast<long long>(on.last.stats.segments_scanned),
      static_cast<long long>(spilled_bytes));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const bool quick = flags.Has("quick");
  const int64_t rows = flags.GetInt("rows", quick ? 10000 : 100000);
  const size_t segment_rows = static_cast<size_t>(
      flags.GetInt("segment-rows", 4096));
  const int reps = static_cast<int>(flags.GetInt("reps", quick ? 3 : 5));

  if (flags.Has("assert-storage")) {
    return AssertStorage(rows, segment_rows);
  }

  Database db;
  Status loaded = LoadClustered(&db, rows, segment_rows);
  if (loaded.ok()) loaded = LoadJoinPair(&db, rows / 4);
  if (!loaded.ok()) {
    std::fprintf(stderr, "bench_storage: load failed: %s\n",
                 loaded.ToString().c_str());
    return 1;
  }

  // Zone scan: clustered range over the first 10% of the table.
  const std::string zone_sql = "SELECT COUNT(*), SUM(y) FROM big WHERE x < " +
                               std::to_string(rows / 10);
  QueryOptions zones_on;
  QueryOptions zones_off;
  zones_off.enable_zone_maps = false;
  const Timed zone_on = Run(&db, zone_sql, zones_on, reps);
  const Timed zone_off = Run(&db, zone_sql, zones_off, reps);

  // Segment read path vs flat path, full-table aggregate.
  const std::string scan_sql = "SELECT COUNT(*), SUM(y), SUM(z) FROM big";
  QueryOptions flat;
  QueryOptions seg;
  seg.scan_from_segments = true;
  const Timed flat_scan = Run(&db, scan_sql, flat, reps);
  const Timed seg_scan = Run(&db, scan_sql, seg, reps);
  auto big = db.catalog()->GetTable("big");
  const int64_t raw_bytes = big.ok() ? (*big)->num_rows() * 4 * 8 : 0;
  const int64_t compressed_bytes =
      big.ok() ? static_cast<int64_t>((*big)->segments().compressed_bytes())
               : 0;

  // Spill: unlimited vs budget = data/10 on a join aggregate and a
  // top-k sort.
  const int64_t join_data =
      TableApproxBytes(&db, "r1") + TableApproxBytes(&db, "s1");
  const std::string join_sql =
      "SELECT COUNT(*), SUM(r1.v) FROM r1, s1 WHERE r1.k = s1.k";
  const std::string sort_sql =
      "SELECT x, y FROM big ORDER BY x DESC LIMIT 10";
  QueryOptions unlimited;
  QueryOptions join_budget;
  join_budget.memory_budget_bytes = static_cast<size_t>(join_data / 10);
  QueryOptions sort_budget;
  sort_budget.memory_budget_bytes =
      static_cast<size_t>(TableApproxBytes(&db, "big") / 10);
  const Timed join_free = Run(&db, join_sql, unlimited, reps);
  const Timed join_spill = Run(&db, join_sql, join_budget, reps);
  const Timed sort_free = Run(&db, sort_sql, unlimited, reps);
  const Timed sort_spill = Run(&db, sort_sql, sort_budget, reps);

  const double skip_fraction =
      zone_on.last.stats.segments_scanned > 0
          ? static_cast<double>(zone_on.last.stats.segments_skipped) /
                static_cast<double>(zone_on.last.stats.segments_scanned)
          : 0.0;

  if (flags.Has("json")) {
    std::printf(
        "{\n"
        "  \"rows\": %lld,\n"
        "  \"segment_rows\": %zu,\n"
        "  \"zone_scan\": {\n"
        "    \"sql\": \"x < rows/10 aggregate\",\n"
        "    \"zones_on_median_ms\": %.3f,\n"
        "    \"zones_off_median_ms\": %.3f,\n"
        "    \"speedup_zones_on\": %.2f,\n"
        "    \"segments_scanned\": %lld,\n"
        "    \"segments_skipped\": %lld,\n"
        "    \"skip_fraction\": %.3f\n"
        "  },\n"
        "  \"segment_store\": {\n"
        "    \"flat_scan_median_ms\": %.3f,\n"
        "    \"segment_scan_median_ms\": %.3f,\n"
        "    \"raw64_bytes\": %lld,\n"
        "    \"compressed_bytes\": %lld,\n"
        "    \"compression_ratio\": %.2f\n"
        "  },\n"
        "  \"spill\": {\n"
        "    \"join\": {\"unlimited_median_ms\": %.3f, "
        "\"budgeted_median_ms\": %.3f, \"budget_bytes\": %zu, "
        "\"spilled_bytes\": %lld, \"spill_partitions\": %lld, "
        "\"results_identical\": %s},\n"
        "    \"sort\": {\"unlimited_median_ms\": %.3f, "
        "\"budgeted_median_ms\": %.3f, \"budget_bytes\": %zu, "
        "\"spilled_bytes\": %lld, \"spill_runs\": %lld, "
        "\"results_identical\": %s}\n"
        "  }\n"
        "}\n",
        static_cast<long long>(rows), segment_rows, zone_on.median_ms,
        zone_off.median_ms,
        zone_on.median_ms > 0 ? zone_off.median_ms / zone_on.median_ms : 0.0,
        static_cast<long long>(zone_on.last.stats.segments_scanned),
        static_cast<long long>(zone_on.last.stats.segments_skipped),
        skip_fraction, flat_scan.median_ms, seg_scan.median_ms,
        static_cast<long long>(raw_bytes),
        static_cast<long long>(compressed_bytes),
        compressed_bytes > 0
            ? static_cast<double>(raw_bytes) /
                  static_cast<double>(compressed_bytes)
            : 0.0,
        join_free.median_ms, join_spill.median_ms,
        join_budget.memory_budget_bytes,
        static_cast<long long>(join_spill.last.stats.spilled_bytes),
        static_cast<long long>(
            join_spill.last.stats.join_spill_partitions),
        RowsFingerprint(join_spill.last.rows) ==
                RowsFingerprint(join_free.last.rows)
            ? "true"
            : "false",
        sort_free.median_ms, sort_spill.median_ms,
        sort_budget.memory_budget_bytes,
        static_cast<long long>(sort_spill.last.stats.spilled_bytes),
        static_cast<long long>(sort_spill.last.stats.sort_spill_runs),
        RowsFingerprint(sort_spill.last.rows) ==
                RowsFingerprint(sort_free.last.rows)
            ? "true"
            : "false");
    return 0;
  }

  PrintBanner("storage", "segment storage: zone maps + budgeted spill",
              "clustered table, segment_rows=" +
                  std::to_string(segment_rows) + ", median of " +
                  std::to_string(reps));
  ResultTable table({"median ms", "control ms", "notes"});
  char buf[3][96];
  std::snprintf(buf[0], sizeof(buf[0]), "%.3f", zone_on.median_ms);
  std::snprintf(buf[1], sizeof(buf[1]), "%.3f", zone_off.median_ms);
  std::snprintf(buf[2], sizeof(buf[2]), "%lld/%lld segments skipped",
                static_cast<long long>(zone_on.last.stats.segments_skipped),
                static_cast<long long>(zone_on.last.stats.segments_scanned));
  table.AddRow("zone scan (on vs off)", {buf[0], buf[1], buf[2]});
  std::snprintf(buf[0], sizeof(buf[0]), "%.3f", seg_scan.median_ms);
  std::snprintf(buf[1], sizeof(buf[1]), "%.3f", flat_scan.median_ms);
  std::snprintf(buf[2], sizeof(buf[2]), "%.2fx compression",
                compressed_bytes > 0
                    ? static_cast<double>(raw_bytes) /
                          static_cast<double>(compressed_bytes)
                    : 0.0);
  table.AddRow("segment scan (vs flat)", {buf[0], buf[1], buf[2]});
  std::snprintf(buf[0], sizeof(buf[0]), "%.3f", join_spill.median_ms);
  std::snprintf(buf[1], sizeof(buf[1]), "%.3f", join_free.median_ms);
  std::snprintf(buf[2], sizeof(buf[2]), "%lld bytes, %lld partitions",
                static_cast<long long>(join_spill.last.stats.spilled_bytes),
                static_cast<long long>(
                    join_spill.last.stats.join_spill_partitions));
  table.AddRow("grace join (vs unlimited)", {buf[0], buf[1], buf[2]});
  std::snprintf(buf[0], sizeof(buf[0]), "%.3f", sort_spill.median_ms);
  std::snprintf(buf[1], sizeof(buf[1]), "%.3f", sort_free.median_ms);
  std::snprintf(buf[2], sizeof(buf[2]), "%lld bytes, %lld runs",
                static_cast<long long>(sort_spill.last.stats.spilled_bytes),
                static_cast<long long>(sort_spill.last.stats.sort_spill_runs));
  table.AddRow("external sort (vs unlimited)", {buf[0], buf[1], buf[2]});
  table.Print();
  return 0;
}
