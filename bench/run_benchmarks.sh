#!/usr/bin/env bash
# PR benchmark suite: runs the selection microbenchmarks, the hash
# operator microbenchmarks (flat vs node-based tables, probe match-rate
# sweep), and the Q2d end-to-end harness (median-of-5 each), plus a
# thread-scaling curve for the morsel-parallel executor and the
# statistics-subsystem sweep (cost-based pick accuracy across disjunct
# skews, ANALYZE overhead, post-ANALYZE q-error), the paired
# row-vs-columnar kernel microbenchmarks, and the k-way tagged execution
# sweep (one BypassPartition±[k] pass vs the Eqv. 2 / Eqv. 3 σ± cascades
# across 3..5-way mixed-selectivity disjunctions, plus the cost-based
# auto-pick probe), and the serving-layer client sweep (1/4/8 clients
# over a repeated query class: shared Server with plan cache + admission
# vs one private Database per client), and the segment-storage sweep
# (zone-map skipping on a clustered range, compressed segment reads vs
# the flat path, Grace-join/external-sort spill at a budget of data/10),
# and writes BENCH_PR8.json. Prior PR reports (BENCH_PR1..7.json) are
# never overwritten: each PR writes its own file so the history stays
# comparable side by side.
#
# Usage: bench/run_benchmarks.sh [build-dir]
# Output: $BENCH_OUT (default <build-dir>/BENCH_PR8.json)
#
# The script fails loudly (nonzero exit) when the report file is missing
# or empty afterwards — a silent half-run must not pass for a benchmark
# artifact.
#
# Every report embeds environment metadata — host CPU count plus the
# compiler and flags captured in <build-dir>/build_info.json at configure
# time — because absolute numbers only compare within one environment.
#
# Seed baselines were measured on the same machine at the seed commit
# (634af06, row-at-a-time execution) with the identical protocol:
# bench_operators --benchmark_repetitions=5 medians and five bench_q2d
# --quick runs. The thread-scaling section reports medians of five
# bench_q2d --quick runs per thread count with speedups relative to the
# 1-thread run of the same build, alongside the host's CPU count —
# scaling is only meaningful when the host actually has spare cores.
set -euo pipefail

BUILD_DIR=${1:-build}
OUT=${BENCH_OUT:-${BUILD_DIR}/BENCH_PR8.json}
OPS=${BUILD_DIR}/bench/bench_operators
HASH=${BUILD_DIR}/bench/bench_hash
COL=${BUILD_DIR}/bench/bench_columnar
TAGGED=${BUILD_DIR}/bench/bench_tagged
Q2D=${BUILD_DIR}/bench/bench_q2d
STATS=${BUILD_DIR}/bench/bench_stats
SERVING=${BUILD_DIR}/bench/bench_serving
STORAGE=${BUILD_DIR}/bench/bench_storage
BUILD_INFO=${BUILD_DIR}/build_info.json

[[ -x ${OPS} && -x ${HASH} && -x ${COL} && -x ${TAGGED} && -x ${Q2D} &&
   -x ${STATS} && -x ${SERVING} && -x ${STORAGE} ]] || {
  echo "bench binaries missing under ${BUILD_DIR}/bench — build first" >&2
  exit 1
}

echo "== bench_operators (median of 5 repetitions) =="
OPS_JSON=$(mktemp)
"${OPS}" --benchmark_filter='PlainSelection|BypassSelection' \
  --benchmark_repetitions=5 --benchmark_report_aggregates_only=true \
  --benchmark_format=json 2>/dev/null >"${OPS_JSON}"

echo "== bench_hash (median of 5 repetitions) =="
HASH_JSON=$(mktemp)
"${HASH}" --benchmark_repetitions=5 \
  --benchmark_report_aggregates_only=true \
  --benchmark_format=json 2>/dev/null >"${HASH_JSON}"

echo "== bench_columnar (median of 5 repetitions) =="
COL_JSON=$(mktemp)
"${COL}" --benchmark_repetitions=5 \
  --benchmark_report_aggregates_only=true \
  --benchmark_format=json 2>/dev/null >"${COL_JSON}"

echo "== bench_tagged (median of 5 interleaved repetitions) =="
TAGGED_JSON=$(mktemp)
# Random interleaving: the tagged-vs-cascade deltas are a few percent at
# the default batch size, so repetitions of different strategies are
# shuffled against machine drift instead of run back-to-back.
"${TAGGED}" --benchmark_repetitions=5 \
  --benchmark_report_aggregates_only=true \
  --benchmark_enable_random_interleaving=true \
  --benchmark_format=json 2>/dev/null >"${TAGGED_JSON}"

echo "== bench_tagged --assert-tagged (cost-based auto-pick probe) =="
if "${TAGGED}" --assert-tagged; then
  TAGGED_AUTOPICK=true
else
  TAGGED_AUTOPICK=false
fi

echo "== bench_q2d --quick (5 runs) =="
Q2D_TXT=$(mktemp)
for i in 1 2 3 4 5; do
  "${Q2D}" --quick 2>/dev/null | tail -4 >>"${Q2D_TXT}"
done

echo "== bench_q2d --quick thread scaling (1/2/4/8, 5 runs each) =="
SCALE_TXT=$(mktemp)
for t in 1 2 4 8; do
  for i in 1 2 3 4 5; do
    "${Q2D}" --quick --threads="${t}" 2>/dev/null | tail -4 |
      sed "s/^/threads=${t} /" >>"${SCALE_TXT}"
  done
done

echo "== bench_stats (skew sweep, median of 5 each) =="
STATS_JSON=$(mktemp)
"${STATS}" --json 2>/dev/null >"${STATS_JSON}"

echo "== bench_serving (1/4/8-client sweep, shared vs private) =="
SERVING_JSON=$(mktemp)
"${SERVING}" --json 2>/dev/null >"${SERVING_JSON}"

echo "== bench_serving --assert-serving (plan-cache + oracle probe) =="
if "${SERVING}" --assert-serving; then
  SERVING_ASSERT=true
else
  SERVING_ASSERT=false
fi

echo "== bench_storage (zone scan / segment IO / spill, median of 5) =="
STORAGE_JSON=$(mktemp)
"${STORAGE}" --json 2>/dev/null >"${STORAGE_JSON}"

echo "== bench_storage --assert-storage (budget-differential probe) =="
if "${STORAGE}" --assert-storage; then
  STORAGE_ASSERT=true
else
  STORAGE_ASSERT=false
fi

NPROC=$(nproc 2>/dev/null || echo 1)

python3 - "${OPS_JSON}" "${Q2D_TXT}" "${SCALE_TXT}" "${NPROC}" "${OUT}" \
  "${STATS_JSON}" "${HASH_JSON}" "${BUILD_INFO}" "${COL_JSON}" \
  "${TAGGED_JSON}" "${TAGGED_AUTOPICK}" "${SERVING_JSON}" \
  "${SERVING_ASSERT}" "${STORAGE_JSON}" "${STORAGE_ASSERT}" <<'EOF'
import json
import statistics
import sys

(ops_json, q2d_txt, scale_txt, nproc, out_path, stats_json, hash_json,
 build_info, col_json, tagged_json, tagged_autopick, serving_json,
 serving_assert, storage_json, storage_assert) = sys.argv[1:16]

# Medians measured at the seed commit (see header comment).
SEED = {
    "BM_PlainSelection": 2.794,
    "BM_BypassSelectionViaDisjunction": 8.751,
    "q2d": {"canonical-noshort": 40.0, "canonical-memo": 14.0,
            "canonical": 14.0, "unnested": 7.0},
}

env_meta = {"host_cpus": int(nproc)}
try:
    with open(build_info) as f:
        env_meta.update(json.load(f))
except (OSError, json.JSONDecodeError):
    # Pre-refresh build dir: metadata appears after the next cmake run.
    env_meta["compiler"] = "unknown (re-run cmake for build_info.json)"

report = {"benchmark": "BENCH_PR8", "protocol": "median-of-5",
          "batch_size": 1024, "host_cpus": int(nproc),
          "environment": env_meta,
          "operators": {}, "bypass_select_thread_scaling": {},
          "hash_tables": {}, "columnar_kernels": {},
          "tagged_kway": {}, "serving": {}, "storage": {},
          "q2d_quick_sf0.01": {}, "q2d_thread_scaling": {},
          "stats_subsystem": {}}

# Hash microbenchmarks: flat structures vs in-binary replicas of the
# node-based PR 3 tables, same data and flags, so each pair's ratio is
# the honest structural speedup. Probe pairs sweep the match rate.
hash_medians = {}
with open(hash_json) as f:
    for b in json.load(f)["benchmarks"]:
        if b.get("aggregate_name") != "median":
            continue
        ms = b["real_time"] / 1e6
        items_per_sec = b.get("items_per_second")
        hash_medians[b["run_name"]] = {
            "median_ms": round(ms, 3),
            "rows_per_sec": round(items_per_sec) if items_per_sec else None,
        }

def hash_pair(flat, unordered):
    f, u = hash_medians.get(flat), hash_medians.get(unordered)
    entry = {"flat": f, "unordered": u}
    if f and u:
        entry["speedup_flat_vs_unordered"] = round(
            u["median_ms"] / f["median_ms"], 2)
    return entry

report["hash_tables"]["join_build"] = hash_pair(
    "BM_JoinBuildFlat", "BM_JoinBuildUnordered")
report["hash_tables"]["group_upsert"] = hash_pair(
    "BM_GroupUpsertFlat", "BM_GroupUpsertUnordered")
sweep = {}
for pct in (1, 5, 10, 25, 50, 75, 100):
    entry = hash_pair(f"BM_JoinProbeFlat/{pct}",
                      f"BM_JoinProbeUnordered/{pct}")
    batch = hash_medians.get(f"BM_JoinProbeBatchFlat/{pct}")
    if batch:
        entry["flat_batch"] = batch
        if entry.get("unordered"):
            entry["speedup_batch_vs_unordered"] = round(
                entry["unordered"]["median_ms"] / batch["median_ms"], 2)
    sweep[f"match_{pct}pct"] = entry
report["hash_tables"]["join_probe_match_rate_sweep"] = sweep

# Columnar kernel pairs: BM_Row* and BM_Columnar* process the identical
# 1024-row batch through the same entry points (Expr::PartitionBatch for
# the fused σ± split, AggregatorSet::AccumulateBatch for the aggregate
# folds); the only difference is whether the batch carries typed columns.
# Each pair's ratio is the kernel speedup at the default batch size.
col_medians = {}
with open(col_json) as f:
    for b in json.load(f)["benchmarks"]:
        if b.get("aggregate_name") != "median":
            continue
        ms = b["real_time"] / 1e6
        items_per_sec = b.get("items_per_second")
        col_medians[b["run_name"]] = {
            "median_ms": round(ms, 6),
            "rows_per_sec": round(items_per_sec) if items_per_sec else None,
        }

def columnar_pair(row_name, col_name):
    r, c = col_medians.get(row_name), col_medians.get(col_name)
    entry = {"row": r, "columnar": c}
    if r and c:
        entry["speedup_columnar_vs_row"] = round(
            r["median_ms"] / c["median_ms"], 2)
    return entry

report["columnar_kernels"]["bypass_partition_int64"] = columnar_pair(
    "BM_RowPartitionInt64", "BM_ColumnarPartitionInt64")
report["columnar_kernels"]["bypass_partition_double"] = columnar_pair(
    "BM_RowPartitionDouble", "BM_ColumnarPartitionDouble")
report["columnar_kernels"]["aggregate_sum_min"] = columnar_pair(
    "BM_RowAggregate", "BM_ColumnarAggregate")

# K-way tagged execution: every strategy runs the identical RST
# COUNT(*) query with k leading simple disjuncts (mixed selectivities)
# ahead of a scalar subquery disjunct — the tagged plan replaces the k
# chained σ± selections with one BypassPartition±[k] pass — across two
# executor batch sizes (the saved per-pass overhead scales with the
# number of batch hand-offs). The headline number per cell is the tagged
# median vs the BEST cascade (min over simple-first / by-rank /
# subquery-first), so the win cannot come from a strawman ordering;
# costbased_auto_pick records the --assert-tagged probe.
tagged_medians = {}
tagged_rows = {}
with open(tagged_json) as f:
    for b in json.load(f)["benchmarks"]:
        if b.get("aggregate_name") != "median":
            continue
        name, k, bs = b["run_name"].rsplit("/", 2)
        cell = (int(k), int(bs))
        tagged_medians.setdefault(cell, {})[name] = round(
            b["real_time"] / 1e6, 3)
        if "result_rows" in b:
            tagged_rows.setdefault(cell, {})[name] = int(
                b["result_rows"])

CASCADES = {"BM_CascadeSimpleFirst": "cascade_simple_first",
            "BM_CascadeByRank": "cascade_by_rank",
            "BM_CascadeSubqueryFirst": "cascade_subquery_first"}
tagged_report = {"costbased_auto_pick": tagged_autopick == "true"}
for (k, bs) in sorted(tagged_medians):
    medians = tagged_medians[(k, bs)]
    entry = {"simple_disjuncts": k, "total_disjuncts": k + 1,
             "batch_size": bs,
             "count_star": tagged_rows.get((k, bs), {}).get(
                 "BM_TaggedPartition")}
    tagged_ms = medians.get("BM_TaggedPartition")
    entry["tagged_median_ms"] = tagged_ms
    cascade_ms = {label: medians[name]
                  for name, label in CASCADES.items() if name in medians}
    entry.update({f"{label}_median_ms": ms
                  for label, ms in cascade_ms.items()})
    if tagged_ms and cascade_ms:
        best_label, best_ms = min(cascade_ms.items(), key=lambda kv: kv[1])
        entry["best_cascade"] = best_label
        entry["speedup_tagged_vs_best_cascade"] = round(
            best_ms / tagged_ms, 2)
    if "BM_CostBasedAuto" in medians:
        entry["cost_based_median_ms"] = medians["BM_CostBasedAuto"]
    counts = set(tagged_rows.get((k, bs), {}).values())
    entry["result_agrees"] = len(counts) <= 1
    tagged_report[f"disjuncts_{k + 1}_batch_{bs}"] = entry
report["tagged_kway"] = tagged_report

# The statistics sweep emits its JSON directly (pick accuracy per
# policy, per-skew timings, ANALYZE overhead, post-ANALYZE q-error).
with open(stats_json) as f:
    report["stats_subsystem"] = json.load(f)

# Serving sweep: clients_{1,4,8} each pairing the shared Server (plan
# cache + admission over one pool) against one private Database per
# client; speedup_shared_vs_private is the throughput ratio, and
# assert_serving records the oracle/hit-rate probe's verdict.
with open(serving_json) as f:
    report["serving"] = json.load(f)
report["serving"]["assert_serving"] = serving_assert == "true"

# Segment-storage sweep: zone-map skipping on a clustered range (on vs
# off, skip fraction + speedup), the compressed segment read path vs the
# flat zero-copy scan with the encoded footprint, and the spill
# differential (join + top-k sort at a budget of data/10 vs unlimited,
# results_identical + spilled bytes). assert_storage records the
# budget-differential probe's verdict.
with open(storage_json) as f:
    report["storage"] = json.load(f)
report["storage"]["assert_storage"] = storage_assert == "true"

ops_scale = {}
with open(ops_json) as f:
    for b in json.load(f)["benchmarks"]:
        if b.get("aggregate_name") != "median":
            continue
        name = b["run_name"]
        ms = b["real_time"] / 1e6  # reported in ns
        if name.startswith("BM_BypassSelectionThreads/"):
            ops_scale[int(name.split("/")[1])] = ms
            continue
        if name not in SEED:
            continue
        entry = {"median_ms": round(ms, 3), "seed_median_ms": SEED[name],
                 "speedup_vs_seed": round(SEED[name] / ms, 2)}
        report["operators"][name] = entry

base = ops_scale.get(1)
report["bypass_select_thread_scaling"] = {
    f"threads_{t}": {"median_ms": round(ms, 3),
                     "speedup_vs_1thread":
                         round(base / ms, 2) if base else None}
    for t, ms in sorted(ops_scale.items())}

runs = {}
with open(q2d_txt) as f:
    for line in f:
        parts = line.split()
        if len(parts) == 2 and parts[1].endswith("ms"):
            runs.setdefault(parts[0], []).append(float(parts[1][:-2]))
for strategy, times in runs.items():
    ms = statistics.median(times)
    seed_ms = SEED["q2d"][strategy]
    report["q2d_quick_sf0.01"][strategy] = {
        "median_ms": ms, "seed_median_ms": seed_ms,
        "speedup_vs_seed": round(seed_ms / ms, 2)}

scale = {}
with open(scale_txt) as f:
    for line in f:
        parts = line.split()
        if len(parts) == 3 and parts[2].endswith("ms"):
            t = int(parts[0].split("=")[1])
            scale.setdefault(parts[1], {}).setdefault(t, []).append(
                float(parts[2][:-2]))
for strategy, by_threads in scale.items():
    medians = {t: statistics.median(times)
               for t, times in sorted(by_threads.items())}
    base = medians.get(1)
    report["q2d_thread_scaling"][strategy] = {
        f"threads_{t}": {"median_ms": ms,
                         "speedup_vs_1thread":
                             round(base / ms, 2) if base else None}
        for t, ms in medians.items()}

with open(out_path, "w") as f:
    json.dump(report, f, indent=2)
    f.write("\n")
print(json.dumps(report, indent=2))
print(f"\nwrote {out_path}")
EOF

rm -f "${OPS_JSON}" "${Q2D_TXT}" "${SCALE_TXT}" "${STATS_JSON}" \
  "${HASH_JSON}" "${COL_JSON}" "${SERVING_JSON}" "${STORAGE_JSON}"

# A benchmark run that does not leave a parseable report behind is a
# failure, not a quiet no-op.
[[ -s ${OUT} ]] || {
  echo "run_benchmarks: report ${OUT} was not written" >&2
  exit 1
}
python3 -c "import json,sys; json.load(open(sys.argv[1]))" "${OUT}" || {
  echo "run_benchmarks: report ${OUT} is not valid JSON" >&2
  exit 1
}
