#!/usr/bin/env bash
# PR benchmark suite: runs the selection microbenchmarks and the Q2d
# end-to-end harness (median-of-5 each) and writes BENCH_PR1.json with
# the measured medians plus speedups against the row-at-a-time seed.
#
# Usage: bench/run_benchmarks.sh [build-dir]
# Output: $BENCH_OUT (default <build-dir>/BENCH_PR1.json)
#
# Seed baselines were measured on the same machine at the seed commit
# (634af06, row-at-a-time execution) with the identical protocol:
# bench_operators --benchmark_repetitions=5 medians and five bench_q2d
# --quick runs.
set -euo pipefail

BUILD_DIR=${1:-build}
OUT=${BENCH_OUT:-${BUILD_DIR}/BENCH_PR1.json}
OPS=${BUILD_DIR}/bench/bench_operators
Q2D=${BUILD_DIR}/bench/bench_q2d

[[ -x ${OPS} && -x ${Q2D} ]] || {
  echo "bench binaries missing under ${BUILD_DIR}/bench — build first" >&2
  exit 1
}

echo "== bench_operators (median of 5 repetitions) =="
OPS_JSON=$(mktemp)
"${OPS}" --benchmark_filter='PlainSelection|BypassSelection' \
  --benchmark_repetitions=5 --benchmark_report_aggregates_only=true \
  --benchmark_format=json 2>/dev/null >"${OPS_JSON}"

echo "== bench_q2d --quick (5 runs) =="
Q2D_TXT=$(mktemp)
for i in 1 2 3 4 5; do
  "${Q2D}" --quick 2>/dev/null | tail -4 >>"${Q2D_TXT}"
done

python3 - "${OPS_JSON}" "${Q2D_TXT}" "${OUT}" <<'EOF'
import json
import statistics
import sys

ops_json, q2d_txt, out_path = sys.argv[1], sys.argv[2], sys.argv[3]

# Medians measured at the seed commit (see header comment).
SEED = {
    "BM_PlainSelection": 2.794,
    "BM_BypassSelectionViaDisjunction": 8.751,
    "q2d": {"canonical-noshort": 40.0, "canonical-memo": 14.0,
            "canonical": 14.0, "unnested": 7.0},
}

report = {"benchmark": "BENCH_PR1", "protocol": "median-of-5",
          "batch_size": 1024, "operators": {}, "q2d_quick_sf0.01": {}}

with open(ops_json) as f:
    for b in json.load(f)["benchmarks"]:
        if b.get("aggregate_name") != "median":
            continue
        name = b["run_name"]
        ms = b["real_time"] / 1e6  # reported in ns
        entry = {"median_ms": round(ms, 3), "seed_median_ms": SEED[name],
                 "speedup_vs_seed": round(SEED[name] / ms, 2)}
        report["operators"][name] = entry

runs = {}
with open(q2d_txt) as f:
    for line in f:
        parts = line.split()
        if len(parts) == 2 and parts[1].endswith("ms"):
            runs.setdefault(parts[0], []).append(float(parts[1][:-2]))
for strategy, times in runs.items():
    ms = statistics.median(times)
    seed_ms = SEED["q2d"][strategy]
    report["q2d_quick_sf0.01"][strategy] = {
        "median_ms": ms, "seed_median_ms": seed_ms,
        "speedup_vs_seed": round(seed_ms / ms, 2)}

with open(out_path, "w") as f:
    json.dump(report, f, indent=2)
    f.write("\n")
print(json.dumps(report, indent=2))
print(f"\nwrote {out_path}")
EOF

rm -f "${OPS_JSON}" "${Q2D_TXT}"
