// E3 — Fig. 7(c): Query Q2 (disjunctive correlation) on the RST data set.
// The canonical strategies cannot short-circuit anything here (the
// disjunction is inside the block), so every outer tuple pays a full
// inner scan — the paper's three-to-four orders of magnitude gap.
#include "bench_common.h"

namespace {

constexpr const char* kQ2 = R"sql(
SELECT DISTINCT * FROM r
WHERE a1 = (SELECT COUNT(*) FROM s WHERE a2 = b2 OR b4 > 1500)
)sql";

}  // namespace

int main(int argc, char** argv) {
  bypass::bench::Flags flags(argc, argv);
  bypass::bench::RunRstGrid(
      "E3 bench_q2corr",
      "Fig. 7(c): Q2, disjunctive correlation (Eqv. 4)", kQ2, flags,
      /*default_rows_per_sf=*/400);
  return 0;
}
