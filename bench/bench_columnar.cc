// Paired row-vs-columnar microbenchmarks for the PR 5 hot paths: the
// fused bypass-partition kernel (σ± split via PartitionBatch) and the
// columnar aggregate folds, each measured against the row-at-a-time
// implementation over identical data at the default batch size. The
// BENCH_PR5 report pairs BM_Row*/BM_Columnar* medians into speedups.
//
// Also doubles as the CI probe for the columnar plumbing: invoked as
//   bench_columnar --assert-columnar
// it runs a table scan through the engine and exits nonzero unless
// ExecStats reports columnar batches (i.e. scans actually attach typed
// columns), and as a negative control checks that disabling the flag
// yields zero.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string_view>
#include <vector>

#include "common/check.h"
#include "engine/database.h"
#include "expr/agg.h"
#include "expr/expr.h"
#include "types/column_vector.h"
#include "types/row_batch.h"
#include "workload/rst.h"

namespace {

using namespace bypass;

// ------------------------------------------------------------ fixture

// One shared 1024-row batch (the default batch size and the unit the
// acceptance criterion is phrased in): column 0 int64, column 1 double,
// no NULLs, ~50% selectivity against the thresholds below. Both
// representations view the same data, so the row and columnar benches
// process identical inputs.
constexpr size_t kBatchRows = kDefaultBatchSize;
constexpr int64_t kI64Threshold = 5000;
constexpr double kF64Threshold = 5000.0;

struct Fixture {
  std::vector<Row> rows;
  ColumnStore store;

  Fixture() {
    store.columns.emplace_back(DataType::kInt64);
    store.columns.emplace_back(DataType::kDouble);
    uint64_t state = 42;
    rows.reserve(kBatchRows);
    for (size_t i = 0; i < kBatchRows; ++i) {
      // splitmix64: cheap deterministic values in [0, 10000).
      state += 0x9e3779b97f4a7c15ULL;
      uint64_t z = state;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      z ^= z >> 31;
      const int64_t v = static_cast<int64_t>(z % 10000);
      Row row;
      row.push_back(Value::Int64(v));
      row.push_back(Value::Double(static_cast<double>(v) + 0.5));
      store.AppendRow(row);
      rows.push_back(std::move(row));
    }
  }

  RowBatch RowOnly() const {
    return RowBatch::Borrowed(&rows, 0, rows.size());
  }
  RowBatch Columnar() const {
    return RowBatch::BorrowedColumnar(&store, &rows, 0, rows.size());
  }
};

const Fixture& SharedFixture() {
  static const Fixture* f = new Fixture();
  return *f;
}

ExprPtr ColRef(int slot) {
  auto ref = std::make_shared<ColumnRefExpr>("", "c", /*is_outer=*/false);
  ref->set_slot(slot);
  return ref;
}

ExprPtr GtThreshold(int slot, Value threshold) {
  return std::make_shared<ComparisonExpr>(
      CompareOp::kGt, ColRef(slot),
      std::make_shared<LiteralExpr>(std::move(threshold)));
}

// ------------------------------------------- fused bypass partition σ±

// The bypass-selection hot loop: partition the batch into TRUE and
// not-TRUE streams (same vector passed as sel_false and sel_null — the
// paper's σ± split). The row batch carries no columns, so PartitionBatch
// runs the Value-based comparison; the columnar batch hits the fused
// typed kernel.
void RunPartition(benchmark::State& state, const RowBatch& batch,
                  const Expr& pred) {
  std::vector<uint32_t> sel_true, sel_rest;
  sel_true.reserve(kBatchRows);
  sel_rest.reserve(kBatchRows);
  for (auto _ : state) {
    sel_true.clear();
    sel_rest.clear();
    Status st = pred.PartitionBatch(batch, /*outer_row=*/nullptr,
                                    &sel_true, &sel_rest, &sel_rest);
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(sel_true.data());
    benchmark::DoNotOptimize(sel_rest.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kBatchRows));
}

void BM_RowPartitionInt64(benchmark::State& state) {
  RowBatch batch = SharedFixture().RowOnly();
  RunPartition(state, batch, *GtThreshold(0, Value::Int64(kI64Threshold)));
}
BENCHMARK(BM_RowPartitionInt64);

void BM_ColumnarPartitionInt64(benchmark::State& state) {
  RowBatch batch = SharedFixture().Columnar();
  RunPartition(state, batch, *GtThreshold(0, Value::Int64(kI64Threshold)));
}
BENCHMARK(BM_ColumnarPartitionInt64);

void BM_RowPartitionDouble(benchmark::State& state) {
  RowBatch batch = SharedFixture().RowOnly();
  RunPartition(state, batch,
               *GtThreshold(1, Value::Double(kF64Threshold)));
}
BENCHMARK(BM_RowPartitionDouble);

void BM_ColumnarPartitionDouble(benchmark::State& state) {
  RowBatch batch = SharedFixture().Columnar();
  RunPartition(state, batch,
               *GtThreshold(1, Value::Double(kF64Threshold)));
}
BENCHMARK(BM_ColumnarPartitionDouble);

// ---------------------------------------------------- aggregate folds

// SUM(int64) + MIN(double) over the batch — the scalar-aggregation path.
// Both benches go through AggregatorSet::AccumulateBatch; the row-only
// batch resolves no columns and takes the per-row Accumulate loop, the
// columnar batch folds the raw arrays.
std::vector<AggregateSpec> MakeAggSpecs() {
  std::vector<AggregateSpec> specs;
  AggregateSpec sum;
  sum.func = AggFunc::kSum;
  sum.arg = ColRef(0);
  specs.push_back(std::move(sum));
  AggregateSpec min;
  min.func = AggFunc::kMin;
  min.arg = ColRef(1);
  specs.push_back(std::move(min));
  return specs;
}

void RunAggregate(benchmark::State& state, const RowBatch& batch) {
  const std::vector<AggregateSpec> specs = MakeAggSpecs();
  AggregatorSet aggs(&specs);
  for (auto _ : state) {
    aggs.Reset();
    Status st = aggs.AccumulateBatch(batch, /*outer_row=*/nullptr);
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      return;
    }
    Row out;
    st = aggs.FinalizeInto(&out);
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(out.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kBatchRows));
}

void BM_RowAggregate(benchmark::State& state) {
  RowBatch batch = SharedFixture().RowOnly();
  RunAggregate(state, batch);
}
BENCHMARK(BM_RowAggregate);

void BM_ColumnarAggregate(benchmark::State& state) {
  RowBatch batch = SharedFixture().Columnar();
  RunAggregate(state, batch);
}
BENCHMARK(BM_ColumnarAggregate);

// ------------------------------------------------- --assert-columnar

// End-to-end plumbing probe: a plain table scan must report columnar
// batches when the flag is on (scans attach the table's typed columns)
// and none when it is off. Returns a process exit code.
int AssertColumnarScan() {
  Database db;
  RstOptions opts;
  opts.rows_per_sf = 2000;
  Status st = LoadRst(&db, 1, 1, 1, opts);
  if (!st.ok()) {
    std::fprintf(stderr, "assert-columnar: load failed: %s\n",
                 st.ToString().c_str());
    return 1;
  }
  const char* sql = "SELECT * FROM r WHERE a4 > 500";

  QueryOptions on;
  on.collect_plans = false;
  auto result = db.Query(sql, on);
  if (!result.ok()) {
    std::fprintf(stderr, "assert-columnar: query failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  if (result->stats.columnar_batches <= 0) {
    std::fprintf(stderr,
                 "assert-columnar: FAIL: scan reported %lld columnar "
                 "batches (expected > 0)\n",
                 static_cast<long long>(result->stats.columnar_batches));
    return 1;
  }
  const int64_t with_columns = result->stats.columnar_batches;

  QueryOptions off = on;
  off.enable_columnar = false;
  auto oracle = db.Query(sql, off);
  if (!oracle.ok()) {
    std::fprintf(stderr, "assert-columnar: oracle query failed: %s\n",
                 oracle.status().ToString().c_str());
    return 1;
  }
  if (oracle->stats.columnar_batches != 0) {
    std::fprintf(stderr,
                 "assert-columnar: FAIL: columnar disabled but %lld "
                 "columnar batches reported\n",
                 static_cast<long long>(oracle->stats.columnar_batches));
    return 1;
  }
  if (oracle->rows.size() != result->rows.size()) {
    std::fprintf(stderr,
                 "assert-columnar: FAIL: row/columnar cardinality "
                 "mismatch (%zu vs %zu)\n",
                 oracle->rows.size(), result->rows.size());
    return 1;
  }
  std::printf("assert-columnar: OK (%lld columnar batches, %zu rows)\n",
              static_cast<long long>(with_columns), result->rows.size());
  return 0;
}

}  // namespace

// Custom main (instead of BENCHMARK_MAIN) so the binary can serve as the
// smoke-test probe without dragging google-benchmark flags into CI.
int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--assert-columnar") {
      return AssertColumnarScan();
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
