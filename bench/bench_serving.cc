// Serving-layer benchmark (PR 7): N client threads issuing a repeated
// query class — four RST query texts, round-robin — against
//
//   shared    one Server over one Database: shared worker pool, plan
//             cache on, admission control (engine/server.h); each client
//             is a Session.
//   private   the pre-PR-7 deployment: one Database per client (own
//             elastic pool) calling Database::Query, so every query
//             re-parses and re-plans and the pools oversubscribe the
//             host as clients multiply.
//
// Sweeps clients ∈ {1, 4, 8} and reports throughput (queries/s), p50 and
// p99 latency per mode, the shared mode's plan-cache hit rate, and the
// shared-vs-private throughput ratio. The interesting cell is 8 clients:
// the shared scheduler amortizes planning across repeats and multiplexes
// one right-sized pool instead of eight private ones.
//
// Also the CI probe for the serving plumbing: invoked as
//   bench_serving --assert-serving
// it runs 4 clients x 50 queries against a shared Server, checks every
// result against a Database::Query oracle, and asserts the plan-cache
// hit rate exceeds 0.9 and the admission accounting adds up. Exits
// nonzero on any failure.
//
// Flags: --rows=N       r/s cardinality        (default 2000)
//        --queries=N    queries per client     (default 200)
//        --threads=N    num_threads per query  (default 2)
//        --quick        500 rows, 50 queries
//        --json         machine-readable report on stdout
//        --assert-serving   smoke probe (see above)
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "engine/database.h"
#include "engine/server.h"
#include "engine/session.h"
#include "workload/rst.h"

namespace {

using namespace bypass;         // NOLINT(build/namespaces)
using namespace bypass::bench;  // NOLINT(build/namespaces)

// The repeated query class: disjunctive correlated scalar subquery (the
// paper's subject), quantified variants, and a plain scan — predicates
// sized to the RST domains (a2 in [0,1000), a4 in [0,10000)).
const char* const kQueryClass[] = {
    "SELECT DISTINCT * FROM r "
    "WHERE a4 > 8000 OR a1 = (SELECT COUNT(*) FROM s WHERE a2 = b2)",
    "SELECT DISTINCT * FROM r "
    "WHERE a1 IN (SELECT b1 FROM s WHERE b2 = a2) OR a4 < 500",
    "SELECT DISTINCT * FROM r "
    "WHERE EXISTS (SELECT * FROM s WHERE b1 = a1) OR a4 > 9500",
    "SELECT a1, a2 FROM r WHERE a4 < 2000",
};
constexpr int kQueryClassSize = 4;

QueryOptions ServeOptions(int num_threads) {
  QueryOptions o;  // default strategy; plan shape comes from the cache key
  o.collect_plans = false;
  o.num_threads = num_threads;
  return o;
}

Status LoadAndAnalyze(Database* db, int64_t rows) {
  RstOptions opts;
  opts.rows_per_sf = rows;
  BYPASS_RETURN_IF_ERROR(LoadRst(db, 1, 1, 0.1, opts));
  return db->AnalyzeAll().status();
}

struct ModeResult {
  double wall_seconds = 0;
  double throughput_qps = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  uint64_t queries = 0;
  uint64_t errors = 0;
  double plan_cache_hit_rate = -1;  // shared mode only
};

double PercentileMs(std::vector<double>* latencies, double q) {
  if (latencies->empty()) return 0;
  std::sort(latencies->begin(), latencies->end());
  const size_t idx = std::min(
      latencies->size() - 1,
      static_cast<size_t>(q * static_cast<double>(latencies->size())));
  return (*latencies)[idx];
}

/// Drives `clients` threads, each issuing `queries_per_client` queries
/// round-robin over the query class (staggered start offsets so the
/// clients spread across the four texts instead of stampeding one).
/// `issue` runs one query and returns ok/failed.
ModeResult DriveClients(int clients, int queries_per_client,
                        const std::function<Status(int client, int idx)>&
                            issue) {
  std::vector<std::vector<double>> latencies(clients);
  std::atomic<uint64_t> errors{0};
  std::vector<std::thread> threads;
  const auto wall_start = std::chrono::steady_clock::now();
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      latencies[c].reserve(queries_per_client);
      for (int i = 0; i < queries_per_client; ++i) {
        const auto start = std::chrono::steady_clock::now();
        const Status status = issue(c, (c + i) % kQueryClassSize);
        const auto elapsed = std::chrono::steady_clock::now() - start;
        if (!status.ok()) {
          errors.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        latencies[c].push_back(
            std::chrono::duration<double, std::milli>(elapsed).count());
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - wall_start;

  std::vector<double> all;
  for (auto& per_client : latencies) {
    all.insert(all.end(), per_client.begin(), per_client.end());
  }
  ModeResult result;
  result.wall_seconds = wall.count();
  result.queries = all.size();
  result.errors = errors.load();
  result.throughput_qps =
      wall.count() > 0 ? static_cast<double>(all.size()) / wall.count() : 0;
  result.p50_ms = PercentileMs(&all, 0.50);
  result.p99_ms = PercentileMs(&all, 0.99);
  return result;
}

/// Shared mode: one Server (plan cache on, admission sized to the client
/// count) over one Database; each client drives its own Session.
ModeResult RunShared(Database* db, int clients, int queries_per_client,
                     int num_threads) {
  ServerOptions opts;
  opts.num_workers = static_cast<int>(
      std::max(2u, std::thread::hardware_concurrency()));
  opts.max_concurrent_queries = std::max(clients, 1);
  opts.plan_cache_entries = 64;
  Server server(db, opts);
  std::vector<std::shared_ptr<Session>> sessions;
  for (int c = 0; c < clients; ++c) sessions.push_back(server.Connect());
  const QueryOptions query_opts = ServeOptions(num_threads);
  ModeResult result =
      DriveClients(clients, queries_per_client, [&](int c, int idx) {
        return sessions[c]->Query(kQueryClass[idx], query_opts).status();
      });
  result.plan_cache_hit_rate = server.stats().plan_cache.hit_rate();
  return result;
}

/// Private mode: the pre-serving deployment — one Database (and thus one
/// elastic pool, no plan cache) per client, every query through
/// Database::Query re-plans from SQL.
ModeResult RunPrivate(int clients, int queries_per_client, int num_threads,
                      int64_t rows) {
  std::vector<std::unique_ptr<Database>> dbs;
  for (int c = 0; c < clients; ++c) {
    auto db = std::make_unique<Database>();
    Status loaded = LoadAndAnalyze(db.get(), rows);
    if (!loaded.ok()) {
      std::fprintf(stderr, "bench_serving: private load failed: %s\n",
                   loaded.ToString().c_str());
      std::exit(1);
    }
    dbs.push_back(std::move(db));
  }
  const QueryOptions query_opts = ServeOptions(num_threads);
  return DriveClients(clients, queries_per_client, [&](int c, int idx) {
    return dbs[c]->Query(kQueryClass[idx], query_opts).status();
  });
}

// ------------------------------------------------------ --assert-serving

int AssertServing(int64_t rows) {
  Database db;
  Status loaded = LoadAndAnalyze(&db, rows);
  if (!loaded.ok()) {
    std::fprintf(stderr, "assert-serving: load failed: %s\n",
                 loaded.ToString().c_str());
    return 1;
  }
  // Oracle rows per query text, computed through the compatibility path.
  const QueryOptions query_opts = ServeOptions(/*num_threads=*/2);
  std::vector<std::vector<Row>> oracle(kQueryClassSize);
  for (int i = 0; i < kQueryClassSize; ++i) {
    auto result = db.Query(kQueryClass[i], query_opts);
    if (!result.ok()) {
      std::fprintf(stderr, "assert-serving: oracle query failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    oracle[i] = std::move(result->rows);
  }

  constexpr int kClients = 4;
  constexpr int kQueriesPerClient = 50;
  ServerOptions opts;
  opts.num_workers = 4;
  opts.max_concurrent_queries = kClients;
  opts.plan_cache_entries = 64;
  Server server(&db, opts);
  std::vector<std::shared_ptr<Session>> sessions;
  for (int c = 0; c < kClients; ++c) sessions.push_back(server.Connect());

  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kQueriesPerClient; ++i) {
        const int idx = (c + i) % kQueryClassSize;
        auto result = sessions[c]->Query(kQueryClass[idx], query_opts);
        if (!result.ok()) {
          failures.fetch_add(1);
        } else if (!RowMultisetsEqual(oracle[idx], result->rows)) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();

  const ServerStats stats = server.stats();
  const double hit_rate = stats.plan_cache.hit_rate();
  bool ok = true;
  if (failures.load() != 0) {
    std::fprintf(stderr, "assert-serving: FAIL: %d queries errored\n",
                 failures.load());
    ok = false;
  }
  if (mismatches.load() != 0) {
    std::fprintf(stderr,
                 "assert-serving: FAIL: %d results diverged from the "
                 "Database::Query oracle\n",
                 mismatches.load());
    ok = false;
  }
  if (hit_rate <= 0.9) {
    std::fprintf(stderr,
                 "assert-serving: FAIL: plan-cache hit rate %.3f <= 0.9 "
                 "(hits %llu, misses %llu)\n",
                 hit_rate,
                 static_cast<unsigned long long>(stats.plan_cache.hits),
                 static_cast<unsigned long long>(stats.plan_cache.misses));
    ok = false;
  }
  const uint64_t expected =
      static_cast<uint64_t>(kClients) * kQueriesPerClient;
  if (stats.queries_succeeded != expected || stats.queries_started !=
      expected) {
    std::fprintf(stderr,
                 "assert-serving: FAIL: admission accounting (started "
                 "%llu, succeeded %llu, expected %llu)\n",
                 static_cast<unsigned long long>(stats.queries_started),
                 static_cast<unsigned long long>(stats.queries_succeeded),
                 static_cast<unsigned long long>(expected));
    ok = false;
  }
  if (!ok) return 1;
  std::printf(
      "assert-serving: OK (%llu queries, 4 clients, plan-cache hit rate "
      "%.3f)\n",
      static_cast<unsigned long long>(expected), hit_rate);
  return 0;
}

// ------------------------------------------------------------------ main

void PrintJson(const std::vector<int>& client_counts,
               const std::vector<ModeResult>& shared,
               const std::vector<ModeResult>& priv, int64_t rows,
               int queries_per_client, int num_threads) {
  std::printf("{\n");
  std::printf("  \"rows\": %lld,\n", static_cast<long long>(rows));
  std::printf("  \"queries_per_client\": %d,\n", queries_per_client);
  std::printf("  \"query_class_size\": %d,\n", kQueryClassSize);
  std::printf("  \"num_threads_per_query\": %d,\n", num_threads);
  for (size_t i = 0; i < client_counts.size(); ++i) {
    const ModeResult& s = shared[i];
    const ModeResult& p = priv[i];
    std::printf("  \"clients_%d\": {\n", client_counts[i]);
    std::printf(
        "    \"shared\": {\"throughput_qps\": %.1f, \"p50_ms\": %.3f, "
        "\"p99_ms\": %.3f, \"errors\": %llu, "
        "\"plan_cache_hit_rate\": %.3f},\n",
        s.throughput_qps, s.p50_ms, s.p99_ms,
        static_cast<unsigned long long>(s.errors),
        s.plan_cache_hit_rate);
    std::printf(
        "    \"private\": {\"throughput_qps\": %.1f, \"p50_ms\": %.3f, "
        "\"p99_ms\": %.3f, \"errors\": %llu},\n",
        p.throughput_qps, p.p50_ms, p.p99_ms,
        static_cast<unsigned long long>(p.errors));
    std::printf("    \"speedup_shared_vs_private\": %.2f\n",
                p.throughput_qps > 0 ? s.throughput_qps / p.throughput_qps
                                     : 0.0);
    std::printf("  }%s\n",
                i + 1 < client_counts.size() ? "," : "");
  }
  std::printf("}\n");
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const bool quick = flags.Has("quick");
  const int64_t rows = flags.GetInt("rows", quick ? 500 : 2000);
  const int queries_per_client =
      static_cast<int>(flags.GetInt("queries", quick ? 50 : 200));
  const int num_threads = static_cast<int>(flags.GetInt("threads", 2));

  if (flags.Has("assert-serving")) return AssertServing(rows);

  Database shared_db;
  Status loaded = LoadAndAnalyze(&shared_db, rows);
  if (!loaded.ok()) {
    std::fprintf(stderr, "bench_serving: load failed: %s\n",
                 loaded.ToString().c_str());
    return 1;
  }

  const std::vector<int> client_counts = {1, 4, 8};
  std::vector<ModeResult> shared;
  std::vector<ModeResult> priv;
  for (int clients : client_counts) {
    shared.push_back(
        RunShared(&shared_db, clients, queries_per_client, num_threads));
    priv.push_back(
        RunPrivate(clients, queries_per_client, num_threads, rows));
  }

  if (flags.Has("json")) {
    PrintJson(client_counts, shared, priv, rows, queries_per_client,
              num_threads);
    return 0;
  }

  PrintBanner("serving",
              "serving layer: shared scheduler vs private pools",
              "shared = Server(plan cache, admission) / private = one "
              "Database per client; repeated 4-query class");
  ResultTable table({"shared qps", "shared p50/p99 ms", "hit rate",
                     "private qps", "private p50/p99 ms", "speedup"});
  char buf[6][64];
  for (size_t i = 0; i < client_counts.size(); ++i) {
    const ModeResult& s = shared[i];
    const ModeResult& p = priv[i];
    std::snprintf(buf[0], sizeof(buf[0]), "%.0f", s.throughput_qps);
    std::snprintf(buf[1], sizeof(buf[1]), "%.2f/%.2f", s.p50_ms, s.p99_ms);
    std::snprintf(buf[2], sizeof(buf[2]), "%.3f", s.plan_cache_hit_rate);
    std::snprintf(buf[3], sizeof(buf[3]), "%.0f", p.throughput_qps);
    std::snprintf(buf[4], sizeof(buf[4]), "%.2f/%.2f", p.p50_ms, p.p99_ms);
    std::snprintf(buf[5], sizeof(buf[5]), "%.2fx",
                  p.throughput_qps > 0
                      ? s.throughput_qps / p.throughput_qps
                      : 0.0);
    table.AddRow(std::to_string(client_counts[i]) + " clients",
                 {buf[0], buf[1], buf[2], buf[3], buf[4], buf[5]});
  }
  table.Print();
  return 0;
}
