// K-way tagged execution vs the binary σ± cascade (PR 6): full-engine
// benchmarks over the RST workload sweeping the number of leading simple
// disjuncts (k = 2..4 ahead of a scalar subquery disjunct, i.e. 3..5-way
// disjunctions of mixed selectivity) and the executor batch size. The
// tagged plan removes the per-batch operator hand-offs of the cascade,
// an overhead vectorization otherwise amortizes — so batch_size=1 (the
// row-at-a-time engine of the paper's era) shows the structural win and
// batch_size=1024 the default vectorized configuration, where the two
// plans do identical predicate work and should be within noise of each
// other. The query aggregates (COUNT(*)) so result materialization does
// not drown the disjunction work being compared. Each strategy runs the
// identical query; the BENCH_PR6 report pairs the medians into speedups:
//
//   BM_TaggedPartition/k/bs       one BypassPartition±[k] operator pass
//   BM_CascadeSimpleFirst/k/bs    Eqv. 2 shape: k chained σ± selections
//   BM_CascadeByRank/k/bs         cascade ordered by Slagle ranks
//   BM_CascadeSubqueryFirst/k/bs  Eqv. 3 shape: subquery disjunct first
//   BM_CostBasedAuto/k/bs         kCostBased — must land on the tagged
//                                 plan
//
// Also doubles as the CI probe for the tagged plumbing: invoked as
//   bench_tagged --assert-tagged
// it checks that (a) the cost-based optimizer picks the k-way tagged plan
// on its own for a ≥3-disjunct mixed-selectivity query, (b) the executor
// really ran the partition (tagged_batches > 0) and routed every base row
// to exactly one stream, (c) a cascade run as the negative control
// reports zero tagged batches, and (d) all strategies agree with the
// canonical oracle's result. Exits nonzero on any failure.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <numeric>
#include <string>
#include <string_view>

#include "engine/database.h"
#include "workload/rst.h"

namespace {

using namespace bypass;

// ------------------------------------------------------------ fixture

// Two fixtures, loaded lazily so each mode only pays for its own: the
// sweep wants enough batches that the per-pass operator cost stands out
// (50000-row R against a small S, so the constant subquery side does not
// dominate), while the --assert-tagged probe runs the quadratic
// canonical oracle and stays at 2000 rows. ANALYZE feeds the rank/cost
// model real selectivities, as in production use.
constexpr int64_t kProbeRows = 2000;
constexpr int64_t kBenchRows = 50000;

Database* MakeDb(int64_t rows_per_sf, double sf_inner) {
  auto* d = new Database();
  RstOptions opts;
  opts.rows_per_sf = rows_per_sf;
  Status st = LoadRst(d, 1, sf_inner, sf_inner, opts);
  if (!st.ok()) {
    std::fprintf(stderr, "bench_tagged: LoadRst failed: %s\n",
                 st.ToString().c_str());
    std::exit(1);
  }
  auto analyzed = d->AnalyzeAll();
  if (!analyzed.ok()) {
    std::fprintf(stderr, "bench_tagged: ANALYZE failed: %s\n",
                 analyzed.status().ToString().c_str());
    std::exit(1);
  }
  return d;
}

Database& ProbeDb() {
  static Database* db = MakeDb(kProbeRows, /*sf_inner=*/1.0);
  return *db;
}

Database& BenchDb() {
  static Database* db = MakeDb(kBenchRows, /*sf_inner=*/0.1);
  return *db;
}

// Mixed-selectivity simple disjuncts over distinct columns (domains per
// workload/rst.h: a2 ∈ [0,1000), a3 ∈ [0,rows), a4 ∈ [0,10000)),
// followed by the scalar subquery disjunct. simple_k picks how many
// simple predicates lead the disjunction.
const char* kSimpleDisjuncts[] = {
    "a2 < 100",   // ≈10 %
    "a4 > 8000",  // ≈20 %
    "a3 < 100",   // ≈5 % on the probe table, ≈0.2 % on the sweep table
    "a2 >= 950",  // ≈5 %, same column as the first — correlated
};

std::string TaggedQuery(int simple_k) {
  std::string sql = "SELECT COUNT(*) FROM r WHERE ";
  for (int i = 0; i < simple_k; ++i) {
    sql += kSimpleDisjuncts[i];
    sql += " OR ";
  }
  sql += "a1 = (SELECT COUNT(*) FROM s WHERE a2 = b2)";
  return sql;
}

// ------------------------------------------------------- strategies

QueryOptions TaggedOptions() {
  QueryOptions opts = QueryOptions::With(ExecutionStrategy::kUnnested);
  opts.rewrite.use_tagged_partition = true;
  return opts;
}

QueryOptions CascadeOptions(DisjunctOrder order) {
  QueryOptions opts = QueryOptions::With(ExecutionStrategy::kUnnested);
  opts.rewrite.disjunct_order = order;
  return opts;
}

// Prepare once, Execute per iteration — the sweep measures execution, not
// parse/rewrite (optimize time is identical across cascade shapes
// anyway).
void RunStrategy(benchmark::State& state, QueryOptions opts) {
  Database& db = BenchDb();
  const std::string sql = TaggedQuery(static_cast<int>(state.range(0)));
  opts.collect_plans = false;
  opts.batch_size = static_cast<size_t>(state.range(1));
  auto prepared = db.Prepare(sql, opts);
  if (!prepared.ok()) {
    state.SkipWithError(prepared.status().ToString().c_str());
    return;
  }
  int64_t count = 0;
  for (auto _ : state) {
    auto result = prepared->Execute();
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    count = result->rows[0][0].int64_value();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          kBenchRows);
  // Cross-strategy sanity: every strategy at the same k must report the
  // same COUNT(*) in the BENCH_PR6 report.
  state.counters["result_rows"] =
      benchmark::Counter(static_cast<double>(count));
}

// {simple disjuncts} × {batch size: row-at-a-time, default vectorized}.
#define TAGGED_ARGS ArgsProduct({{2, 3, 4}, {1, 1024}})

void BM_TaggedPartition(benchmark::State& state) {
  RunStrategy(state, TaggedOptions());
}
BENCHMARK(BM_TaggedPartition)->TAGGED_ARGS;

void BM_CascadeSimpleFirst(benchmark::State& state) {
  RunStrategy(state, CascadeOptions(DisjunctOrder::kSimpleFirst));
}
BENCHMARK(BM_CascadeSimpleFirst)->TAGGED_ARGS;

void BM_CascadeByRank(benchmark::State& state) {
  RunStrategy(state, CascadeOptions(DisjunctOrder::kByRank));
}
BENCHMARK(BM_CascadeByRank)->TAGGED_ARGS;

void BM_CascadeSubqueryFirst(benchmark::State& state) {
  RunStrategy(state, CascadeOptions(DisjunctOrder::kSubqueryFirst));
}
BENCHMARK(BM_CascadeSubqueryFirst)->TAGGED_ARGS;

void BM_CostBasedAuto(benchmark::State& state) {
  RunStrategy(state, QueryOptions::With(ExecutionStrategy::kCostBased));
}
BENCHMARK(BM_CostBasedAuto)->TAGGED_ARGS;

// --------------------------------------------------- --assert-tagged

int AssertTaggedPick() {
  Database& db = ProbeDb();
  const std::string sql = TaggedQuery(/*simple_k=*/3);

  // (a)+(b): the cost-based optimizer must choose the k-way tagged plan
  // unprompted, and the executor must actually run the partition.
  auto picked = db.Query(sql, QueryOptions::With(ExecutionStrategy::kCostBased));
  if (!picked.ok()) {
    std::fprintf(stderr, "assert-tagged: cost-based query failed: %s\n",
                 picked.status().ToString().c_str());
    return 1;
  }
  bool saw_pick = false;
  for (const std::string& rule : picked->applied_rules) {
    if (rule == "cost-based: picked k-way tagged") saw_pick = true;
  }
  if (!saw_pick) {
    std::fprintf(stderr,
                 "assert-tagged: FAIL: cost-based mode did not pick the "
                 "k-way tagged plan\nplan:\n%s\n",
                 picked->optimized_plan.c_str());
    return 1;
  }
  if (picked->stats.tagged_batches <= 0) {
    std::fprintf(stderr,
                 "assert-tagged: FAIL: picked plan reported %lld tagged "
                 "batches (expected > 0)\n",
                 static_cast<long long>(picked->stats.tagged_batches));
    return 1;
  }
  const int64_t routed = std::accumulate(
      picked->stats.tagged_stream_rows.begin(),
      picked->stats.tagged_stream_rows.end(), int64_t{0});
  if (routed != kProbeRows) {
    std::fprintf(stderr,
                 "assert-tagged: FAIL: streams claimed %lld rows, base "
                 "table has %lld\n",
                 static_cast<long long>(routed),
                 static_cast<long long>(kProbeRows));
    return 1;
  }

  // (c): the plain cascade must not touch the tagged counters.
  auto cascade = db.Query(sql, QueryOptions::With(ExecutionStrategy::kUnnested));
  if (!cascade.ok()) {
    std::fprintf(stderr, "assert-tagged: cascade query failed: %s\n",
                 cascade.status().ToString().c_str());
    return 1;
  }
  if (cascade->stats.tagged_batches != 0) {
    std::fprintf(stderr,
                 "assert-tagged: FAIL: cascade reported %lld tagged "
                 "batches (expected 0)\n",
                 static_cast<long long>(cascade->stats.tagged_batches));
    return 1;
  }

  // (d): the COUNT(*) agrees with the canonical oracle everywhere.
  auto oracle = db.Query(sql, QueryOptions::With(ExecutionStrategy::kCanonical));
  if (!oracle.ok()) {
    std::fprintf(stderr, "assert-tagged: canonical query failed: %s\n",
                 oracle.status().ToString().c_str());
    return 1;
  }
  const int64_t expected = oracle->rows[0][0].int64_value();
  const int64_t got_tagged = picked->rows[0][0].int64_value();
  const int64_t got_cascade = cascade->rows[0][0].int64_value();
  if (expected != got_tagged || expected != got_cascade) {
    std::fprintf(stderr,
                 "assert-tagged: FAIL: COUNT mismatch (canonical %lld, "
                 "tagged %lld, cascade %lld)\n",
                 static_cast<long long>(expected),
                 static_cast<long long>(got_tagged),
                 static_cast<long long>(got_cascade));
    return 1;
  }
  std::printf(
      "assert-tagged: OK (cost-based picked tagged, %lld batches, "
      "count %lld)\n",
      static_cast<long long>(picked->stats.tagged_batches),
      static_cast<long long>(expected));
  return 0;
}

}  // namespace

// Custom main (instead of BENCHMARK_MAIN) so the binary can serve as the
// smoke-test probe without dragging google-benchmark flags into CI.
int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--assert-tagged") {
      return AssertTaggedPick();
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
