// E9 — SELECT-clause nesting (paper Sec. 1: "the generalization to
// nesting in the select clause is straightforward"): a correlated scalar
// block as a projection item, canonical per-row re-execution vs the
// unnested Eqv. 1/4 machinery.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "workload/rst.h"

namespace {

constexpr const char* kQueries[][2] = {
    {"conjunctive-corr",
     "SELECT a1, (SELECT COUNT(*) FROM s WHERE a2 = b2) AS g FROM r"},
    {"disjunctive-corr",
     "SELECT a1, (SELECT COUNT(*) FROM s WHERE a2 = b2 OR b4 > 1500) "
     "AS g FROM r"},
    {"two-blocks",
     "SELECT a1, (SELECT COUNT(*) FROM s WHERE a2 = b2) AS g1, "
     "(SELECT MAX(c3) FROM t WHERE a3 = c2) AS g2 FROM r"},
};

}  // namespace

int main(int argc, char** argv) {
  using namespace bypass;        // NOLINT(build/namespaces)
  using namespace bypass::bench;  // NOLINT(build/namespaces)
  Flags flags(argc, argv);
  const int64_t rows_per_sf =
      flags.Has("paper") ? 10000 : flags.GetInt("rows-per-sf", 1000);
  const double timeout = flags.GetDouble("timeout", 5.0);
  const std::vector<int> sfs =
      flags.Has("quick") ? std::vector<int>{1} : std::vector<int>{1, 5, 10};

  PrintBanner("E9 bench_select_clause",
              "Sec. 1 extension: scalar blocks in the SELECT clause",
              "rows/SF=" + std::to_string(rows_per_sf) +
                  "  per-cell timeout=" + std::to_string(timeout) + "s");

  for (const auto& [name, sql] : kQueries) {
    std::printf("\n-- %s --\n%s\n", name, sql);
    std::vector<std::string> headers;
    for (int sf : sfs) headers.push_back("SF" + std::to_string(sf));
    ResultTable table(headers);
    const std::vector<Strategy> strategies = StudyStrategies(timeout);
    std::vector<std::vector<std::string>> cells(
        strategies.size(), std::vector<std::string>(sfs.size()));
    for (size_t c = 0; c < sfs.size(); ++c) {
      Database db;
      RstOptions opts;
      opts.rows_per_sf = rows_per_sf;
      Status st = LoadRst(&db, sfs[c], sfs[c], sfs[c], opts);
      if (!st.ok()) {
        std::printf("data load failed: %s\n", st.ToString().c_str());
        return 1;
      }
      int64_t reference_rows = -1;
      for (size_t s = 0; s < strategies.size(); ++s) {
        int64_t rows = -1;
        cells[s][c] = RunCell(&db, sql, strategies[s].options, &rows);
        if (rows >= 0) {
          if (reference_rows < 0) reference_rows = rows;
          if (rows != reference_rows) cells[s][c] += "!";
        }
      }
    }
    for (size_t s = 0; s < strategies.size(); ++s) {
      table.AddRow(strategies[s].name, cells[s]);
    }
    table.Print();
  }
  return 0;
}
