// E1 — Fig. 7(a): Query Q1 (disjunctive linking) on the RST data set,
// SF1×SF2 grid, four evaluation strategies.
#include "bench_common.h"

namespace {

constexpr const char* kQ1 = R"sql(
SELECT DISTINCT * FROM r
WHERE a1 = (SELECT COUNT(DISTINCT *) FROM s WHERE a2 = b2)
   OR a4 > 1500
)sql";

}  // namespace

int main(int argc, char** argv) {
  bypass::bench::Flags flags(argc, argv);
  bypass::bench::RunRstGrid("E1 bench_q1",
                            "Fig. 7(a): Q1, disjunctive linking (Eqv. 2)",
                            kQ1, flags, /*default_rows_per_sf=*/1000);
  return 0;
}
