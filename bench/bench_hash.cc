// Hash-operator microbenchmarks (google-benchmark) for the PR 4 flat
// open-addressing tables. Every benchmark is paired: the *Flat variants
// run the shipped structures (JoinHashTable, FlatRowMap), the *Unordered
// variants run in-binary replicas of the previous node-based tables
// (std::unordered_map over RowKeyHash/RowKeyEq, exactly the PR 3 layout),
// so the speedup is measured inside one binary with identical data and
// compiler flags. run_benchmarks.sh reports flat-vs-unordered ratios per
// pair, including a probe match-rate sweep from 1% to 100%.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/flat_table.h"
#include "common/rng.h"
#include "exec/join.h"
#include "types/row.h"
#include "types/row_batch.h"

namespace {

using bypass::FlatRowMap;
using bypass::JoinHashTable;
using bypass::JoinMatches;
using bypass::JoinProbeScratch;
using bypass::ProjectRow;
using bypass::Rng;
using bypass::Row;
using bypass::RowBatch;
using bypass::RowKeyEq;
using bypass::RowKeyHash;
using bypass::RowSlotsRef;
using bypass::Value;

constexpr size_t kBuildRows = 65536;
constexpr size_t kProbeRows = 65536;
constexpr size_t kNumKeys = 16384;  // ~4 rows per key
constexpr size_t kGroupRows = 65536;
constexpr size_t kNumGroups = 1024;

/// The PR 3 join index layout: one node-based map from key row to the
/// list of matching build-row indices.
using UnorderedJoinIndex =
    std::unordered_map<Row, std::vector<uint32_t>, RowKeyHash, RowKeyEq>;

const std::vector<int>& KeySlots() {
  static const std::vector<int> slots{0};
  return slots;
}

/// Build side: kBuildRows rows of (key, payload), keys uniform over
/// kNumKeys distinct values.
const std::vector<Row>& BuildRows() {
  static const std::vector<Row>* rows = [] {
    Rng rng(4242);
    auto* r = new std::vector<Row>();
    r->reserve(kBuildRows);
    for (size_t i = 0; i < kBuildRows; ++i) {
      r->push_back(
          Row{Value::Int64(rng.UniformInt(0, kNumKeys - 1)),
              Value::Int64(static_cast<int64_t>(i))});
    }
    return r;
  }();
  return *rows;
}

/// Probe rows with `match_pct` percent of keys present in the build side
/// (misses use keys beyond the build domain).
std::vector<Row> MakeProbeRows(int match_pct) {
  Rng rng(1000 + static_cast<uint64_t>(match_pct));
  std::vector<Row> rows;
  rows.reserve(kProbeRows);
  for (size_t i = 0; i < kProbeRows; ++i) {
    const bool hit = rng.UniformInt(1, 100) <= match_pct;
    const int64_t key =
        hit ? rng.UniformInt(0, kNumKeys - 1)
            : static_cast<int64_t>(kNumKeys) + rng.UniformInt(0, kNumKeys);
    rows.push_back(Row{Value::Int64(key)});
  }
  return rows;
}

UnorderedJoinIndex BuildUnorderedIndex(const std::vector<Row>& rows) {
  UnorderedJoinIndex index;
  for (uint32_t r = 0; r < rows.size(); ++r) {
    if (rows[r][0].is_null()) continue;
    auto it = index.find(RowSlotsRef{&rows[r], &KeySlots()});
    if (it == index.end()) {
      it = index.emplace(ProjectRow(rows[r], KeySlots()),
                         std::vector<uint32_t>{})
               .first;
    }
    it->second.push_back(r);
  }
  return index;
}

// ------------------------------------------------------------ join build

void BM_JoinBuildFlat(benchmark::State& state) {
  const std::vector<Row>& rows = BuildRows();
  JoinHashTable table;
  for (auto _ : state) {
    table.Clear();
    table.Build(rows, KeySlots());
    benchmark::DoNotOptimize(table.num_keys());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(rows.size()));
}
BENCHMARK(BM_JoinBuildFlat);

void BM_JoinBuildUnordered(benchmark::State& state) {
  const std::vector<Row>& rows = BuildRows();
  for (auto _ : state) {
    UnorderedJoinIndex index = BuildUnorderedIndex(rows);
    benchmark::DoNotOptimize(index.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(rows.size()));
}
BENCHMARK(BM_JoinBuildUnordered);

// ------------------------------------------- join probe, match-rate sweep

void BM_JoinProbeFlat(benchmark::State& state) {
  const std::vector<Row>& rows = BuildRows();
  JoinHashTable table;
  table.Build(rows, KeySlots());
  const std::vector<Row> probes =
      MakeProbeRows(static_cast<int>(state.range(0)));
  int64_t matches = 0;
  for (auto _ : state) {
    for (const Row& probe : probes) {
      matches += table.Probe(probe, KeySlots()).count;
    }
  }
  benchmark::DoNotOptimize(matches);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(probes.size()));
}
BENCHMARK(BM_JoinProbeFlat)->Arg(1)->Arg(5)->Arg(10)->Arg(25)->Arg(50)
    ->Arg(75)->Arg(100);

void BM_JoinProbeBatchFlat(benchmark::State& state) {
  const std::vector<Row>& rows = BuildRows();
  JoinHashTable table;
  table.Build(rows, KeySlots());
  RowBatch batch = RowBatch::FromRows(
      MakeProbeRows(static_cast<int>(state.range(0))));
  JoinProbeScratch scratch;
  int64_t matches = 0;
  for (auto _ : state) {
    table.ProbeBatch(batch, KeySlots(), &scratch);
    for (const JoinMatches& m : scratch.matches) matches += m.count;
  }
  benchmark::DoNotOptimize(matches);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(batch.size()));
}
BENCHMARK(BM_JoinProbeBatchFlat)->Arg(1)->Arg(5)->Arg(10)->Arg(25)
    ->Arg(50)->Arg(75)->Arg(100);

void BM_JoinProbeUnordered(benchmark::State& state) {
  const UnorderedJoinIndex index = BuildUnorderedIndex(BuildRows());
  const std::vector<Row> probes =
      MakeProbeRows(static_cast<int>(state.range(0)));
  int64_t matches = 0;
  for (auto _ : state) {
    for (const Row& probe : probes) {
      const auto it = index.find(RowSlotsRef{&probe, &KeySlots()});
      if (it != index.end()) {
        matches += static_cast<int64_t>(it->second.size());
      }
    }
  }
  benchmark::DoNotOptimize(matches);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(probes.size()));
}
BENCHMARK(BM_JoinProbeUnordered)->Arg(1)->Arg(5)->Arg(10)->Arg(25)
    ->Arg(50)->Arg(75)->Arg(100);

// --------------------------------------------------- group-by-style upsert

/// Input rows for the grouping benchmarks: (group key, payload).
const std::vector<Row>& GroupRows() {
  static const std::vector<Row>* rows = [] {
    Rng rng(777);
    auto* r = new std::vector<Row>();
    r->reserve(kGroupRows);
    for (size_t i = 0; i < kGroupRows; ++i) {
      r->push_back(
          Row{Value::Int64(rng.UniformInt(0, kNumGroups - 1)),
              Value::Int64(rng.UniformInt(0, 1000))});
    }
    return r;
  }();
  return *rows;
}

void BM_GroupUpsertFlat(benchmark::State& state) {
  const std::vector<Row>& rows = GroupRows();
  for (auto _ : state) {
    FlatRowMap<int64_t> groups;
    for (const Row& row : rows) {
      int64_t& count = groups.FindOrEmplace(
          RowSlotsRef{&row, &KeySlots()}, [] { return int64_t{0}; });
      ++count;
    }
    benchmark::DoNotOptimize(groups.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(rows.size()));
}
BENCHMARK(BM_GroupUpsertFlat);

void BM_GroupUpsertUnordered(benchmark::State& state) {
  const std::vector<Row>& rows = GroupRows();
  for (auto _ : state) {
    std::unordered_map<Row, int64_t, RowKeyHash, RowKeyEq> groups;
    for (const Row& row : rows) {
      auto it = groups.find(RowSlotsRef{&row, &KeySlots()});
      if (it == groups.end()) {
        it = groups.emplace(ProjectRow(row, KeySlots()), 0).first;
      }
      ++it->second;
    }
    benchmark::DoNotOptimize(groups.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(rows.size()));
}
BENCHMARK(BM_GroupUpsertUnordered);

}  // namespace

BENCHMARK_MAIN();
