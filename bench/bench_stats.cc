// E-stats: what the statistics subsystem buys the cost-based unnesting
// choice. Sweeps the selectivity of the cheap disjunct in
//
//   SELECT DISTINCT * FROM r
//   WHERE a4 > 10 OR a1 = (SELECT COUNT(*) FROM s WHERE a2 = b2)
//
// from 10% to 90%, and at each point measures (median-of-N execution
// time) the canonical plan, the two forced bypass orders (Eqv. 2 /
// Eqv. 3 shapes), the rank-only choice (kUnnested), and the cost-based
// choice (kCostBased, ANALYZE'd statistics). Reports how often each
// policy picks the fastest plan, the ANALYZE overhead, and the maximum
// per-operator q-error after ANALYZE.
//
// Flags: --rows=N (r cardinality, default 2000), --runs=N (default 5),
//        --quick (3 skew points, 3 runs), --json (machine-readable).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "engine/database.h"
#include "stats/feedback.h"
#include "workload/rst.h"

namespace {

using namespace bypass;         // NOLINT(build/namespaces)
using namespace bypass::bench;  // NOLINT(build/namespaces)

const char* kSql =
    "SELECT DISTINCT * FROM r "
    "WHERE a4 > 10 OR a1 = (SELECT COUNT(*) FROM s WHERE a2 = b2)";

void Fill(Database* db, int rows, double pass_fraction) {
  auto r = db->CreateTable("r", RstTableSchema('a'));
  std::vector<Row> rrows;
  const int passing = static_cast<int>(pass_fraction * rows);
  for (int i = 0; i < rows; ++i) {
    Row row;
    row.push_back(Value::Int64(i % 7));
    row.push_back(Value::Int64(i % 5));
    row.push_back(Value::Int64(i));
    row.push_back(Value::Int64(i < passing ? 50 : 5));
    rrows.push_back(std::move(row));
  }
  (void)(*r)->AppendUnchecked(std::move(rrows));
  auto s = db->CreateTable("s", RstTableSchema('b'));
  std::vector<Row> srows;
  for (int i = 0; i < 2; ++i) {
    Row row;
    for (int c = 0; c < 4; ++c) row.push_back(Value::Int64(i));
    srows.push_back(std::move(row));
  }
  (void)(*s)->AppendUnchecked(std::move(srows));
}

double MedianExecMs(Database* db, const QueryOptions& options, int runs,
                    std::vector<std::string>* rules = nullptr) {
  std::vector<double> times;
  for (int i = 0; i < runs; ++i) {
    auto result = db->Query(kSql, options);
    if (!result.ok()) return -1;
    times.push_back(result->execution_seconds() * 1e3);
    if (rules != nullptr) *rules = result->applied_rules;
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

/// Which of the three candidate shapes a result's applied rules denote.
std::string ShapeOf(const std::vector<std::string>& rules) {
  if (rules.empty()) return "canonical";
  const std::string& last = rules.back();
  if (last == "cost-based: kept canonical") return "canonical";
  if (last == "cost-based: picked forced simple-first") return "simple";
  if (last == "cost-based: picked forced subquery-first") return "subquery";
  return rules[0] == "Eqv.3" ? "subquery" : "simple";
}

struct Point {
  double skew = 0;
  double t_canonical = 0, t_simple = 0, t_subquery = 0;
  double t_by_rank = 0, t_cost_based = 0;
  double analyze_ms = 0;
  std::string best, by_rank_shape, cost_based_shape;
};

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const int rows = static_cast<int>(flags.GetInt("rows", 2000));
  const bool quick = flags.Has("quick");
  const int runs = static_cast<int>(flags.GetInt("runs", quick ? 3 : 5));
  const bool json = flags.Has("json");
  std::vector<double> skews =
      quick ? std::vector<double>{0.1, 0.5, 0.9}
            : std::vector<double>{0.1, 0.2, 0.3, 0.4, 0.5,
                                  0.6, 0.7, 0.8, 0.9};

  if (!json) {
    PrintBanner("E-stats bench_stats",
                "cost-based Eqv. 2 / Eqv. 3 choice on ANALYZE'd statistics",
                "skew = fraction of r passing the cheap disjunct; times are "
                "median-of-" + std::to_string(runs) + " execution ms");
    std::printf("query:%s\nrows(r)=%d rows(s)=2\n\n", kSql, rows);
  }

  std::vector<Point> points;
  double max_q_error = 1.0;
  for (double skew : skews) {
    Database db;
    Fill(&db, rows, skew);

    const auto t0 = std::chrono::steady_clock::now();
    auto reports = db.AnalyzeAll();
    const auto t1 = std::chrono::steady_clock::now();
    if (!reports.ok()) {
      std::fprintf(stderr, "ANALYZE failed: %s\n",
                   reports.status().ToString().c_str());
      return 1;
    }

    Point p;
    p.skew = skew;
    p.analyze_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();

    QueryOptions canonical;
    canonical.unnest = false;
    p.t_canonical = MedianExecMs(&db, canonical, runs);

    QueryOptions simple = QueryOptions::With(ExecutionStrategy::kUnnested);
    simple.rewrite.disjunct_order = DisjunctOrder::kSimpleFirst;
    p.t_simple = MedianExecMs(&db, simple, runs);

    QueryOptions subquery = QueryOptions::With(ExecutionStrategy::kUnnested);
    subquery.rewrite.disjunct_order = DisjunctOrder::kSubqueryFirst;
    p.t_subquery = MedianExecMs(&db, subquery, runs);

    std::vector<std::string> rank_rules;
    p.t_by_rank = MedianExecMs(&db, QueryOptions::With(ExecutionStrategy::kUnnested),
                               runs, &rank_rules);
    p.by_rank_shape = ShapeOf(rank_rules);

    std::vector<std::string> cb_rules;
    p.t_cost_based = MedianExecMs(
        &db, QueryOptions::With(ExecutionStrategy::kCostBased), runs, &cb_rules);
    p.cost_based_shape = ShapeOf(cb_rules);

    p.best = "canonical";
    double best_t = p.t_canonical;
    if (p.t_simple < best_t) { best_t = p.t_simple; p.best = "simple"; }
    if (p.t_subquery < best_t) { best_t = p.t_subquery; p.best = "subquery"; }
    points.push_back(p);

    // Per-operator q-error of the cost-based plan after ANALYZE.
    auto fb = db.Query(kSql, QueryOptions::With(ExecutionStrategy::kCostBased));
    if (fb.ok()) {
      for (const OperatorFeedback& f : fb->operator_feedback) {
        if (f.estimated >= 0) max_q_error = std::max(max_q_error, f.q_error);
      }
    }
  }

  // A policy scores when the plan it picked is within 10% of the fastest
  // candidate (sub-ms medians jitter; near-ties are not mispicks).
  auto time_of = [](const Point& p, const std::string& shape) {
    return shape == "canonical" ? p.t_canonical
           : shape == "simple"  ? p.t_simple
                                : p.t_subquery;
  };
  auto accuracy = [&](auto shape_of_point) {
    int hits = 0;
    for (const Point& p : points) {
      const double best_t = time_of(p, p.best);
      if (time_of(p, shape_of_point(p)) <= best_t * 1.10) ++hits;
    }
    return static_cast<double>(hits) / static_cast<double>(points.size());
  };
  const double acc_cost_based =
      accuracy([](const Point& p) { return p.cost_based_shape; });
  const double acc_by_rank =
      accuracy([](const Point& p) { return p.by_rank_shape; });
  const double acc_canonical =
      accuracy([](const Point&) { return std::string("canonical"); });
  const double acc_simple =
      accuracy([](const Point&) { return std::string("simple"); });
  const double acc_subquery =
      accuracy([](const Point&) { return std::string("subquery"); });

  double analyze_ms = 0;
  for (const Point& p : points) analyze_ms += p.analyze_ms;
  analyze_ms /= static_cast<double>(points.size());

  if (json) {
    std::printf("{\n  \"rows\": %d,\n  \"runs\": %d,\n  \"points\": [\n",
                rows, runs);
    for (size_t i = 0; i < points.size(); ++i) {
      const Point& p = points[i];
      std::printf(
          "    {\"skew\": %.1f, \"canonical_ms\": %.3f, \"simple_ms\": "
          "%.3f, \"subquery_ms\": %.3f, \"by_rank_ms\": %.3f, "
          "\"cost_based_ms\": %.3f, \"best\": \"%s\", \"by_rank_pick\": "
          "\"%s\", \"cost_based_pick\": \"%s\", \"analyze_ms\": %.3f}%s\n",
          p.skew, p.t_canonical, p.t_simple, p.t_subquery, p.t_by_rank,
          p.t_cost_based, p.best.c_str(), p.by_rank_shape.c_str(),
          p.cost_based_shape.c_str(), p.analyze_ms,
          i + 1 < points.size() ? "," : "");
    }
    std::printf(
        "  ],\n  \"pick_accuracy\": {\"cost_based\": %.3f, \"by_rank\": "
        "%.3f, \"forced_canonical\": %.3f, \"forced_simple\": %.3f, "
        "\"forced_subquery\": %.3f},\n  \"analyze_ms_mean\": %.3f,\n"
        "  \"max_q_error_post_analyze\": %.3f\n}\n",
        acc_cost_based, acc_by_rank, acc_canonical, acc_simple, acc_subquery,
        analyze_ms, max_q_error);
    return 0;
  }

  ResultTable table({"canonical", "simple", "subquery", "by-rank",
                     "cost-based", "best", "cb pick"});
  for (const Point& p : points) {
    char label[32];
    std::snprintf(label, sizeof label, "skew %.1f", p.skew);
    auto ms = [](double t) {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.3fms", t);
      return std::string(buf);
    };
    table.AddRow(label, {ms(p.t_canonical), ms(p.t_simple),
                         ms(p.t_subquery), ms(p.t_by_rank),
                         ms(p.t_cost_based), p.best, p.cost_based_shape});
  }
  table.Print();
  std::printf(
      "\npick accuracy (within 10%% of fastest): cost-based %.0f%%, "
      "by-rank %.0f%%, forced canonical %.0f%%, forced simple %.0f%%, "
      "forced subquery %.0f%%\n",
      acc_cost_based * 100, acc_by_rank * 100, acc_canonical * 100,
      acc_simple * 100, acc_subquery * 100);
  std::printf("ANALYZE overhead: %.3f ms mean for r(%d)+s(2) per dataset\n",
              analyze_ms, rows);
  std::printf("max per-operator q-error after ANALYZE: %.3f\n", max_q_error);
  return 0;
}
