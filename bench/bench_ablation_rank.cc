// E6 — ablation of the paper's Sec. 3.1 remark: within a disjunct
// cascade, should the simple predicate (Eqv. 2) or the unnested subquery
// (Eqv. 3) be evaluated first? We sweep the simple predicate's
// selectivity (a4 > threshold) and its evaluation cost (a cheap
// comparison vs an arithmetic-heavy expression) and compare the two
// forced orders against the rank-based default. Each cell reports the
// best of several repetitions.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "workload/rst.h"

namespace {

using namespace bypass;        // NOLINT(build/namespaces)
using namespace bypass::bench;  // NOLINT(build/namespaces)

std::string CellForOrder(Database* db, const std::string& sql,
                         DisjunctOrder order, int repetitions) {
  QueryOptions options;
  options.unnest = true;
  options.rewrite.disjunct_order = order;
  options.collect_plans = false;
  // Plan once, execute `repetitions` times: the sweep compares execution
  // strategies, so re-optimizing per repetition would only add noise.
  auto prepared = db->Prepare(sql, options);
  if (!prepared.ok()) return "ERR";
  double best = 1e9;
  for (int i = 0; i < repetitions; ++i) {
    auto result = prepared->Execute();
    if (!result.ok()) return "ERR";
    best = std::min(best, result->execution_seconds());
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1fms", best * 1000);
  return buf;
}

void RunSweep(Database* db, const char* title, const char* predicate,
              const std::vector<int64_t>& thresholds, int repetitions) {
  std::printf("\n-- %s --\n", title);
  std::vector<std::string> headers;
  for (int64_t t : thresholds) headers.push_back(">" + std::to_string(t));
  ResultTable table(headers);
  struct Order {
    const char* name;
    DisjunctOrder order;
  };
  const Order orders[] = {
      {"simple-first (Eqv.2)", DisjunctOrder::kSimpleFirst},
      {"subquery-first (Eqv.3)", DisjunctOrder::kSubqueryFirst},
      {"rank-based (default)", DisjunctOrder::kByRank},
  };
  for (const Order& order : orders) {
    std::vector<std::string> cells;
    for (int64_t t : thresholds) {
      std::string sql =
          "SELECT DISTINCT * FROM r "
          "WHERE a1 = (SELECT COUNT(*) FROM s WHERE a2 = b2) OR " +
          std::string(predicate) + " > " + std::to_string(t);
      cells.push_back(CellForOrder(db, sql, order.order, repetitions));
    }
    table.AddRow(order.name, std::move(cells));
  }
  table.Print();
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const int64_t rows_per_sf = flags.GetInt("rows-per-sf", 20000);
  const int sf = static_cast<int>(flags.GetInt("sf", 5));
  const int repetitions = static_cast<int>(flags.GetInt("reps", 3));

  PrintBanner("E6 bench_ablation_rank",
              "Sec. 3.1 remark: Eqv. 2 vs Eqv. 3 (rank-based ordering)",
              "rows/SF=" + std::to_string(rows_per_sf) +
                  ", SF=" + std::to_string(sf) + ", best of " +
                  std::to_string(repetitions) +
                  " reps; sweep over the simple predicate's threshold "
                  "(low = passes almost everything)");

  Database db;
  RstOptions opts;
  opts.rows_per_sf = rows_per_sf;
  Status st = LoadRst(&db, sf, sf, sf, opts);
  if (!st.ok()) {
    std::printf("data load failed: %s\n", st.ToString().c_str());
    return 1;
  }

  const std::vector<int64_t> thresholds = {500, 3000, 6000, 9000, 9900};
  // Cheap disjunct: a plain comparison — Eqv. 2 should win when it
  // passes most tuples (they bypass the join machinery entirely).
  RunSweep(&db, "cheap simple predicate: a4 > t", "a4", thresholds,
           repetitions);
  // Expensive disjunct: an arithmetic-heavy expression — the rank model
  // charges it more, moving the unnested subquery forward (Eqv. 3).
  RunSweep(&db,
           "expensive simple predicate: a4*a3*a2*a1*a4*a3*a2 % scale > t",
           "a4 * a3 * a2 * a1 * a4 * a3 * a2 / 100000000", thresholds,
           repetitions);
  std::printf(
      "\nnote: the canonical nested-loop baseline for this configuration "
      "is orders of magnitude slower (see bench_q1)\n");
  return 0;
}
