// E4 — technical-report experiment: tree query Q3 (two subqueries under
// one disjunction; Sec. 3.5). Unnested by a cascade of bypass selections
// (Eqv. 2/3 repeatedly, Eqv. 1 for the last branch).
#include "bench_common.h"

namespace {

constexpr const char* kQ3 = R"sql(
SELECT DISTINCT * FROM r
WHERE a1 = (SELECT COUNT(DISTINCT *) FROM s WHERE a2 = b2)
   OR a3 = (SELECT COUNT(DISTINCT *) FROM t WHERE a4 = c2)
)sql";

}  // namespace

int main(int argc, char** argv) {
  bypass::bench::Flags flags(argc, argv);
  bypass::bench::RunRstGrid(
      "E4 bench_q3_tree",
      "TR tree-query experiment: Q3 (Sec. 3.5, Fig. 5)", kQ3, flags,
      /*default_rows_per_sf=*/400);
  return 0;
}
