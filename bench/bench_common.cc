#include "bench_common.h"

#include <algorithm>

#include "workload/rst.h"
#include <cstdio>
#include <cstdlib>

namespace bypass {
namespace bench {

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) continue;
    arg = arg.substr(2);
    const size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      values_[arg] = "1";
    } else {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    }
  }
}

bool Flags::Has(const std::string& name) const {
  return values_.count(name) > 0;
}

double Flags::GetDouble(const std::string& name, double def) const {
  const auto it = values_.find(name);
  return it == values_.end() ? def : std::atof(it->second.c_str());
}

int64_t Flags::GetInt(const std::string& name, int64_t def) const {
  const auto it = values_.find(name);
  return it == values_.end() ? def : std::atoll(it->second.c_str());
}

std::vector<Strategy> StudyStrategies(double timeout_seconds,
                                      size_t batch_size, int num_threads) {
  const auto timeout = std::chrono::milliseconds(
      static_cast<int64_t>(timeout_seconds * 1000));
  // The study's mapping: S1-like = nested loops without even the OR
  // short-circuit; S2-like = nested loops + memoization; Natix canonical
  // and Natix unnested (the paper's bypass plans).
  const struct {
    const char* name;
    ExecutionStrategy strategy;
  } presets[] = {
      {"canonical-noshort", ExecutionStrategy::kCanonicalNoShortcut},
      {"canonical-memo", ExecutionStrategy::kCanonicalMemo},
      {"canonical", ExecutionStrategy::kCanonical},
      {"unnested", ExecutionStrategy::kUnnested},
  };
  std::vector<Strategy> strategies;
  for (const auto& preset : presets) {
    Strategy s{preset.name, QueryOptions::With(preset.strategy)};
    s.options.timeout = timeout;
    s.options.collect_plans = false;
    s.options.batch_size = batch_size;
    s.options.num_threads = num_threads;
    strategies.push_back(std::move(s));
  }
  return strategies;
}

std::string RunCell(Database* db, const std::string& sql,
                    const QueryOptions& options, int64_t* rows_out) {
  auto prepared = db->Prepare(sql, options);
  if (!prepared.ok()) {
    return "ERR(" +
           std::string(StatusCodeToString(prepared.status().code())) + ")";
  }
  auto result = prepared->Execute();
  if (!result.ok()) {
    if (result.status().code() == StatusCode::kTimeout) return "n/a";
    return "ERR(" +
           std::string(StatusCodeToString(result.status().code())) + ")";
  }
  if (rows_out != nullptr) {
    *rows_out = static_cast<int64_t>(result->rows.size());
  }
  char buf[32];
  const double s = result->execution_seconds();
  if (s < 0.001) {
    std::snprintf(buf, sizeof(buf), "%.2fms", s * 1000);
  } else if (s < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.0fms", s * 1000);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fs", s);
  }
  return buf;
}

ResultTable::ResultTable(std::vector<std::string> column_headers)
    : headers_(std::move(column_headers)) {}

void ResultTable::AddRow(const std::string& label,
                         std::vector<std::string> cells) {
  rows_.emplace_back(label, std::move(cells));
}

void ResultTable::Print() const {
  size_t label_width = 8;
  for (const auto& [label, cells] : rows_) {
    label_width = std::max(label_width, label.size());
  }
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& [label, cells] : rows_) {
      if (c < cells.size()) {
        widths[c] = std::max(widths[c], cells[c].size());
      }
    }
  }
  std::printf("%-*s", static_cast<int>(label_width + 2), "");
  for (size_t c = 0; c < headers_.size(); ++c) {
    std::printf("%*s", static_cast<int>(widths[c] + 2),
                headers_[c].c_str());
  }
  std::printf("\n");
  for (const auto& [label, cells] : rows_) {
    std::printf("%-*s", static_cast<int>(label_width + 2), label.c_str());
    for (size_t c = 0; c < cells.size(); ++c) {
      std::printf("%*s", static_cast<int>(widths[c] + 2),
                  cells[c].c_str());
    }
    std::printf("\n");
  }
}

void RunRstGrid(const std::string& experiment,
                const std::string& paper_artifact, const std::string& sql,
                const Flags& flags, int64_t default_rows_per_sf) {
  const int64_t rows_per_sf =
      flags.Has("paper") ? 10000
                         : flags.GetInt("rows-per-sf", default_rows_per_sf);
  const double timeout = flags.GetDouble(
      "timeout", flags.Has("paper") ? 21600.0 : 5.0);
  const int num_threads = static_cast<int>(flags.GetInt("threads", 1));
  const std::vector<int> sfs =
      flags.Has("quick") ? std::vector<int>{1} : std::vector<int>{1, 5, 10};

  PrintBanner(experiment, paper_artifact,
              "rows/SF=" + std::to_string(rows_per_sf) +
                  "  per-cell timeout=" + std::to_string(timeout) +
                  "s  threads=" + std::to_string(num_threads) +
                  "  (--paper for the paper's sizes; timeouts print "
                  "n/a, as in the paper)");
  std::printf("query:%s\n", sql.c_str());

  std::vector<std::string> headers;
  for (int sf1 : sfs) {
    for (int sf2 : sfs) {
      headers.push_back(std::to_string(sf1) + "x" + std::to_string(sf2));
    }
  }
  ResultTable table(headers);

  const std::vector<Strategy> strategies =
      StudyStrategies(timeout, kDefaultBatchSize, num_threads);
  std::vector<std::vector<std::string>> cells(
      strategies.size(), std::vector<std::string>(headers.size()));
  size_t col = 0;
  for (int sf1 : sfs) {
    for (int sf2 : sfs) {
      Database db;
      RstOptions opts;
      opts.rows_per_sf = rows_per_sf;
      Status st = LoadRst(&db, sf1, sf2, sf2, opts);
      if (!st.ok()) {
        std::printf("data load failed: %s\n", st.ToString().c_str());
        return;
      }
      int64_t reference_rows = -1;
      for (size_t s = 0; s < strategies.size(); ++s) {
        int64_t rows = -1;
        cells[s][col] = RunCell(&db, sql, strategies[s].options, &rows);
        if (rows >= 0) {
          if (reference_rows < 0) reference_rows = rows;
          if (rows != reference_rows) {
            cells[s][col] += "!";  // result-cardinality mismatch
          }
        }
      }
      ++col;
    }
  }
  for (size_t s = 0; s < strategies.size(); ++s) {
    table.AddRow(strategies[s].name, cells[s]);
  }
  std::printf("columns: SF1xSF2 (outer x inner scale factor)\n");
  table.Print();
}

void PrintBanner(const std::string& experiment,
                 const std::string& paper_artifact,
                 const std::string& notes) {
  std::printf(
      "==============================================================\n");
  std::printf("%s — reproduces %s\n", experiment.c_str(),
              paper_artifact.c_str());
  if (!notes.empty()) std::printf("%s\n", notes.c_str());
  std::printf(
      "==============================================================\n");
}

}  // namespace bench
}  // namespace bypass
