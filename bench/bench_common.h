// Shared harness for the paper-table benchmarks: evaluation strategies
// (canonical / canonical-memo / canonical-no-shortcut / unnested), a
// per-cell timeout that prints "n/a" like the paper's six-hour abort, and
// a fixed-width table printer matching Fig. 7's layout.
#ifndef BYPASSDB_BENCH_BENCH_COMMON_H_
#define BYPASSDB_BENCH_BENCH_COMMON_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "engine/database.h"

namespace bypass {
namespace bench {

/// Simple --key=value / --flag parser.
class Flags {
 public:
  Flags(int argc, char** argv);

  bool Has(const std::string& name) const;
  double GetDouble(const std::string& name, double def) const;
  int64_t GetInt(const std::string& name, int64_t def) const;

 private:
  std::map<std::string, std::string> values_;
};

/// One evaluation strategy of the study (see DESIGN.md for the mapping to
/// the paper's anonymized systems S1–S3 and Natix).
struct Strategy {
  std::string name;
  QueryOptions options;
};

/// The four strategies, with the given per-cell timeout applied to all.
/// `batch_size` overrides the executor's rows-per-batch (1 reproduces the
/// old row-at-a-time engine; useful for before/after comparisons).
/// `num_threads` > 1 runs every strategy's scans morsel-parallel.
std::vector<Strategy> StudyStrategies(double timeout_seconds,
                                      size_t batch_size = kDefaultBatchSize,
                                      int num_threads = 1);

/// Runs one cell; returns formatted seconds, or "n/a" on timeout, or
/// "ERR(<code>)" on failure. `rows_out`, if set, receives the result
/// cardinality for cross-strategy sanity checks.
std::string RunCell(Database* db, const std::string& sql,
                    const QueryOptions& options,
                    int64_t* rows_out = nullptr);

/// Fixed-width table: first column is the row label.
class ResultTable {
 public:
  explicit ResultTable(std::vector<std::string> column_headers);
  void AddRow(const std::string& label, std::vector<std::string> cells);
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::pair<std::string, std::vector<std::string>>> rows_;
};

/// Prints the standard banner: experiment id, paper artifact, knobs.
void PrintBanner(const std::string& experiment,
                 const std::string& paper_artifact,
                 const std::string& notes);

/// Shared driver for the RST SF1×SF2 grids (Fig. 7(a)/(c) and the
/// technical-report experiments): runs every strategy over the 3×3 grid
/// of scale factors and prints the paper-style table.
/// Flags: --paper (full 10000 rows/SF), --rows-per-sf=N, --timeout=SECONDS,
/// --quick (1×1 grid only), --threads=N (morsel-parallel execution).
void RunRstGrid(const std::string& experiment,
                const std::string& paper_artifact, const std::string& sql,
                const Flags& flags, int64_t default_rows_per_sf);

}  // namespace bench
}  // namespace bypass

#endif  // BYPASSDB_BENCH_BENCH_COMMON_H_
