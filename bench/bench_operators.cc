// E7 — operator microbenchmarks (google-benchmark): the building blocks
// of the bypass plans. Measures the bypass-selection overhead vs a plain
// selection, hash vs nested-loop joins, unary vs binary grouping.
#include <benchmark/benchmark.h>

#include "common/check.h"

#include "engine/database.h"
#include "workload/rst.h"

namespace {

using bypass::Database;
using bypass::LoadRst;
using bypass::QueryOptions;
using bypass::RstOptions;

/// One database shared by all benchmarks (read-only workload).
Database* SharedDb() {
  static Database* db = [] {
    auto* d = new Database();
    RstOptions opts;
    opts.rows_per_sf = 20000;
    BYPASS_CHECK(LoadRst(d, 1, 1, 1, opts).ok());
    return d;
  }();
  return db;
}

void RunQuery(benchmark::State& state, const char* sql,
              bool unnest = true) {
  Database* db = SharedDb();
  QueryOptions options;
  options.unnest = unnest;
  options.collect_plans = false;
  // Plan once outside the timed loop: these are operator benchmarks, so
  // parse/rewrite/lower overhead would only add noise (BM_OptimizeOnly
  // prices the optimizer path separately).
  auto prepared = db->Prepare(sql, options);
  if (!prepared.ok()) {
    state.SkipWithError(prepared.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    auto result = prepared->Execute();
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(result->rows.size());
  }
}

void BM_PlainSelection(benchmark::State& state) {
  RunQuery(state, "SELECT * FROM r WHERE a4 > 5000");
}
BENCHMARK(BM_PlainSelection);

// Thread-scaling curve for the morsel-parallel executor over the bypass
// selection (state.range(0) = num_threads; 1 = the serial engine).
void BM_BypassSelectionThreads(benchmark::State& state) {
  bypass::Database* db = SharedDb();
  QueryOptions options;
  options.collect_plans = false;
  options.num_threads = static_cast<int>(state.range(0));
  auto prepared = db->Prepare(
      "SELECT * FROM r WHERE a4 > 5000 "
      "OR a1 = (SELECT COUNT(*) FROM s WHERE a2 = b2)",
      options);
  if (!prepared.ok()) {
    state.SkipWithError(prepared.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    auto result = prepared->Execute();
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(result->rows.size());
  }
}
BENCHMARK(BM_BypassSelectionThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// The same selectivity, but forced through a bypass split + union, to
// price the bypass machinery itself.
void BM_BypassSelectionViaDisjunction(benchmark::State& state) {
  RunQuery(state,
           "SELECT * FROM r WHERE a4 > 5000 "
           "OR a1 = (SELECT COUNT(*) FROM s WHERE a2 = b2)");
}
BENCHMARK(BM_BypassSelectionViaDisjunction);

void BM_HashJoin(benchmark::State& state) {
  RunQuery(state, "SELECT COUNT(*) FROM r, s WHERE a2 = b2");
}
BENCHMARK(BM_HashJoin);

void BM_NLJoinSmall(benchmark::State& state) {
  RunQuery(state,
           "SELECT COUNT(*) FROM r, s WHERE a2 < b2 AND a3 < 3 AND b3 < 3");
}
BENCHMARK(BM_NLJoinSmall);

void BM_HashGroupBy(benchmark::State& state) {
  RunQuery(state, "SELECT COUNT(DISTINCT *) FROM s WHERE b2 < 500");
}
BENCHMARK(BM_HashGroupBy);

// Unary grouping + outer join (Eqv. 1 machinery).
void BM_UnnestedConjunctiveLinking(benchmark::State& state) {
  RunQuery(state,
           "SELECT DISTINCT * FROM r "
           "WHERE a1 = (SELECT COUNT(*) FROM s WHERE a2 = b2)");
}
BENCHMARK(BM_UnnestedConjunctiveLinking);

// Binary grouping via a non-equality correlation predicate.
void BM_BinaryGroupingNonEq(benchmark::State& state) {
  RunQuery(state,
           "SELECT DISTINCT * FROM r "
           "WHERE a3 < 50 "
           "  AND a1 = (SELECT COUNT(*) FROM s WHERE a2 < b2 AND b3 < 20)");
}
BENCHMARK(BM_BinaryGroupingNonEq);

void BM_DistinctHeavy(benchmark::State& state) {
  RunQuery(state, "SELECT DISTINCT a2, a4 FROM r");
}
BENCHMARK(BM_DistinctHeavy);

void BM_SortHeavy(benchmark::State& state) {
  RunQuery(state, "SELECT a1, a4 FROM r ORDER BY a4 DESC, a1");
}
BENCHMARK(BM_SortHeavy);

// Full optimizer path cost (parse + translate + rewrite + lower), no data.
void BM_OptimizeOnly(benchmark::State& state) {
  Database* db = SharedDb();
  QueryOptions options;
  options.collect_plans = false;
  for (auto _ : state) {
    auto explain = db->Explain(
        "SELECT DISTINCT * FROM r "
        "WHERE a1 = (SELECT COUNT(DISTINCT *) FROM s WHERE a2 = b2) "
        "   OR a4 > 1500",
        options);
    if (!explain.ok()) {
      state.SkipWithError(explain.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(explain->size());
  }
}
BENCHMARK(BM_OptimizeOnly);

}  // namespace

BENCHMARK_MAIN();
