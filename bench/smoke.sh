#!/usr/bin/env bash
# bench-smoke: one tiny iteration of every benchmark binary. This is a
# liveness guard wired into ctest (and the `bench-smoke` build target),
# not a measurement: it catches bench binaries that crash, reject their
# flags, or hang, without paying the full suite's runtime.
#
# Usage: bench/smoke.sh [build-dir]
set -euo pipefail

BUILD_DIR=${1:-build}
BIN=${BUILD_DIR}/bench

for b in bench_operators bench_hash bench_columnar bench_tagged bench_q1 \
         bench_q2corr bench_q2d bench_q3_tree bench_q4_linear \
         bench_quantified bench_select_clause bench_ablation_rank \
         bench_stats bench_serving bench_storage; do
  [[ -x ${BIN}/${b} ]] || {
    echo "missing bench binary ${BIN}/${b} — build first" >&2
    exit 1
  }
done

run() {
  echo "-- $*"
  "$@" >/dev/null
}

# google-benchmark microbenchmarks: one representative per family with a
# minimal measuring window (seconds; benchmark 1.7 accepts plain floats).
run "${BIN}/bench_operators" --benchmark_min_time=0.01 \
  --benchmark_filter='BM_PlainSelection$'
run "${BIN}/bench_hash" --benchmark_min_time=0.01 \
  --benchmark_filter='BM_JoinBuildFlat$|BM_JoinProbeFlat/10$|BM_JoinProbeBatchFlat/10$|BM_GroupUpsertFlat$'
run "${BIN}/bench_columnar" --benchmark_min_time=0.01 \
  --benchmark_filter='BM_ColumnarPartitionInt64$|BM_RowPartitionInt64$'

# Columnar plumbing assertion: a table scan must actually attach typed
# columns (ExecStats::columnar_batches > 0) and report none when the
# option is off. Exits nonzero on failure.
run "${BIN}/bench_columnar" --assert-columnar

run "${BIN}/bench_tagged" --benchmark_min_time=0.01 \
  --benchmark_filter='BM_TaggedPartition/3/1$|BM_CascadeSimpleFirst/3/1024$'

# Tagged plumbing assertion: on a ≥3-disjunct mixed-selectivity query the
# cost-based optimizer must pick the k-way tagged plan on its own, the
# executor must report tagged batches routing every base row to exactly
# one stream, and the cascade control must report none. Exits nonzero on
# failure.
run "${BIN}/bench_tagged" --assert-tagged

# Paper-table harnesses: smallest grid, tiny data, short per-cell budget.
run "${BIN}/bench_q1" --quick --rows-per-sf=20 --timeout=10
run "${BIN}/bench_q2corr" --quick --rows-per-sf=20 --timeout=10
run "${BIN}/bench_q2d" --quick --timeout=10
run "${BIN}/bench_q3_tree" --quick --rows-per-sf=20 --timeout=10
run "${BIN}/bench_q4_linear" --quick --rows-per-sf=20 --timeout=10
run "${BIN}/bench_quantified" --quick --rows-per-sf=20 --timeout=10
run "${BIN}/bench_select_clause" --quick --rows-per-sf=20 --timeout=10
run "${BIN}/bench_ablation_rank" --rows-per-sf=200 --sf=1 --reps=1
run "${BIN}/bench_stats" --quick --rows=200 --json

# Serving plumbing assertion: 4 clients x 50 queries through a shared
# Server must all match the Database::Query oracle with a plan-cache hit
# rate above 0.9 and consistent admission accounting. Exits nonzero on
# failure.
run "${BIN}/bench_serving" --assert-serving --rows=500

# Storage plumbing assertion: a memory budget of data/10 must complete
# the join and sort probes byte-identical to the unlimited oracle with
# nonzero spill, the clustered zone query must skip >= half its segments
# while matching the zones-off control, and the zones-off control must
# report zero segment accounting. Exits nonzero on failure.
run "${BIN}/bench_storage" --quick --assert-storage

echo "bench-smoke OK"
