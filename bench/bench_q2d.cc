// E2 — Fig. 7(b): the introductory Query 2d (TPC-H Q2 with a disjunctive
// minimum-cost predicate) across TPC-H scale factors. The paper runs SF
// 0.01 … 10 on disk; our in-memory defaults sweep 0.01 … 0.1 (pass
// --paper or --sfs to go further) with the same n/a-on-timeout rule.
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "workload/tpch.h"

int main(int argc, char** argv) {
  using namespace bypass;       // NOLINT(build/namespaces)
  using namespace bypass::bench;  // NOLINT(build/namespaces)
  Flags flags(argc, argv);
  const double timeout =
      flags.GetDouble("timeout", flags.Has("paper") ? 21600.0 : 10.0);

  std::vector<double> sfs;
  if (flags.Has("quick")) {
    sfs = {0.01};
  } else if (flags.Has("paper")) {
    sfs = {0.01, 0.05, 0.5, 1};
  } else {
    sfs = {0.01, 0.02, 0.05, 0.1};
  }

  PrintBanner("E2 bench_q2d",
              "Fig. 7(b): Query 2d on TPC-H (Eqv. 2 + Eqv. 1)",
              "per-cell timeout=" + std::to_string(timeout) +
                  "s; timeouts print n/a, as in the paper");
  std::printf("query:%s\n", TpchQuery2d());

  std::vector<std::string> headers;
  for (double sf : sfs) {
    std::ostringstream os;
    os << "SF" << sf;
    headers.push_back(os.str());
  }
  ResultTable table(headers);

  const std::vector<Strategy> strategies = StudyStrategies(
      timeout, static_cast<size_t>(flags.GetInt("batch", kDefaultBatchSize)),
      static_cast<int>(flags.GetInt("threads", 1)));
  std::vector<std::vector<std::string>> cells(
      strategies.size(), std::vector<std::string>(sfs.size()));
  for (size_t c = 0; c < sfs.size(); ++c) {
    Database db;
    TpchOptions opts;
    opts.scale_factor = sfs[c];
    Status st = LoadTpch(&db, opts);
    if (!st.ok()) {
      std::printf("data load failed: %s\n", st.ToString().c_str());
      return 1;
    }
    int64_t reference_rows = -1;
    for (size_t s = 0; s < strategies.size(); ++s) {
      int64_t rows = -1;
      cells[s][c] = RunCell(&db, TpchQuery2d(), strategies[s].options,
                            &rows);
      if (rows >= 0) {
        if (reference_rows < 0) reference_rows = rows;
        if (rows != reference_rows) cells[s][c] += "!";
      }
    }
  }
  for (size_t s = 0; s < strategies.size(); ++s) {
    table.AddRow(strategies[s].name, cells[s]);
  }
  table.Print();
  return 0;
}
