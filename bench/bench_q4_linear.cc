// E5 — technical-report experiment: linear query Q4 (a subquery inside a
// subquery, both disjunctive; Sec. 3.6). Canonical evaluation is cubic —
// the paper notes the gains "exponentiate". Unnested via Eqv. 5 (top) +
// Eqv. 1 (inside the pair stream), exactly Fig. 6(c).
//
// Caution: the Eqv. 5 plan enumerates the R×S pairs, so the unnested plan
// is quadratic in memory; the default sizes stay modest.
#include "bench_common.h"

namespace {

constexpr const char* kQ4 = R"sql(
SELECT DISTINCT * FROM r
WHERE a1 = (SELECT COUNT(DISTINCT *) FROM s
            WHERE a2 = b2
               OR b3 = (SELECT COUNT(DISTINCT *) FROM t WHERE b4 = c2))
)sql";

}  // namespace

int main(int argc, char** argv) {
  bypass::bench::Flags flags(argc, argv);
  bypass::bench::RunRstGrid(
      "E5 bench_q4_linear",
      "TR linear-query experiment: Q4 (Sec. 3.6, Fig. 6)", kQ4, flags,
      /*default_rows_per_sf=*/120);
  return 0;
}
