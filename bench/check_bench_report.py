#!/usr/bin/env python3
"""Schema check for the committed PR 8 benchmark report.

Usage: check_bench_report.py <path/to/BENCH_PR8.json>

Validates the keys the docs cite rather than exact values: the numbers
are environment-specific, but a regenerated report that silently lost a
section (or whose CI probes failed) must not pass for an artifact.
Exits nonzero with a list of violations.
"""
import json
import sys


def check(report):
    errors = []

    def need(path, predicate=lambda v: True, why="missing"):
        node = report
        for key in path.split("/"):
            if not isinstance(node, dict) or key not in node:
                errors.append(f"{path}: {why}")
                return None
            node = node[key]
        if not predicate(node):
            errors.append(f"{path}: has value {node!r}")
        return node

    number = lambda v: isinstance(v, (int, float)) and not isinstance(v, bool)
    positive = lambda v: number(v) and v > 0

    need("benchmark", lambda v: v == "BENCH_PR8")
    need("environment/host_cpus", positive)
    need("operators")
    need("hash_tables/join_build")
    need("columnar_kernels/bypass_partition_int64")
    need("tagged_kway/costbased_auto_pick", lambda v: v is True,
         "probe failed or missing")
    need("serving/assert_serving", lambda v: v is True,
         "probe failed or missing")
    need("stats_subsystem")
    need("q2d_quick_sf0.01")

    # The PR 8 storage sweep: every cited number plus both differential
    # verdicts. Skip fraction >= 0.5 is the acceptance criterion for the
    # zone-mapped clustered scan.
    need("storage/assert_storage", lambda v: v is True,
         "probe failed or missing")
    need("storage/zone_scan/skip_fraction", lambda v: number(v) and v >= 0.5,
         "below the >=50% skip criterion")
    need("storage/zone_scan/zones_on_median_ms", positive)
    need("storage/zone_scan/zones_off_median_ms", positive)
    need("storage/zone_scan/speedup_zones_on", positive)
    need("storage/segment_store/compressed_bytes", positive)
    need("storage/segment_store/raw64_bytes", positive)
    for probe in ("join", "sort"):
        need(f"storage/spill/{probe}/spilled_bytes", positive)
        need(f"storage/spill/{probe}/results_identical", lambda v: v is True,
             "budgeted results diverged from the oracle")
    return errors


def main():
    if len(sys.argv) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    try:
        with open(sys.argv[1]) as f:
            report = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_bench_report: cannot read {sys.argv[1]}: {e}",
              file=sys.stderr)
        return 1
    errors = check(report)
    if errors:
        for e in errors:
            print(f"check_bench_report: {e}", file=sys.stderr)
        return 1
    print(f"check_bench_report: {sys.argv[1]} OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
