// E8 — technical-report extension: quantified table subqueries (EXISTS /
// NOT EXISTS / IN) occurring disjunctively, unnested into bypass
// semi-/anti-join cascades.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "workload/rst.h"

namespace {

struct NamedQuery {
  const char* name;
  const char* sql;
};

constexpr NamedQuery kQueries[] = {
    {"EXISTS-or",
     "SELECT DISTINCT * FROM r "
     "WHERE EXISTS (SELECT * FROM s WHERE a2 = b2 AND b4 > 8000) "
     "   OR a4 > 1500"},
    {"NOT-EXISTS-or",
     "SELECT DISTINCT * FROM r "
     "WHERE NOT EXISTS (SELECT * FROM s WHERE a2 = b2) "
     "   OR a4 > 9000"},
    {"IN-or",
     "SELECT DISTINCT * FROM r "
     "WHERE a1 IN (SELECT b1 FROM s WHERE a2 = b2) "
     "   OR a4 > 9000"},
};

}  // namespace

int main(int argc, char** argv) {
  using namespace bypass;        // NOLINT(build/namespaces)
  using namespace bypass::bench;  // NOLINT(build/namespaces)
  Flags flags(argc, argv);
  const int64_t rows_per_sf =
      flags.Has("paper") ? 10000 : flags.GetInt("rows-per-sf", 1000);
  const double timeout = flags.GetDouble("timeout", 5.0);
  const std::vector<int> sfs =
      flags.Has("quick") ? std::vector<int>{1} : std::vector<int>{1, 5, 10};

  PrintBanner("E8 bench_quantified",
              "TR extension: EXISTS/NOT EXISTS/IN in disjunctions",
              "rows/SF=" + std::to_string(rows_per_sf) +
                  "  per-cell timeout=" + std::to_string(timeout) + "s");

  for (const NamedQuery& q : kQueries) {
    std::printf("\n-- %s --\n%s\n", q.name, q.sql);
    std::vector<std::string> headers;
    for (int sf1 : sfs) {
      for (int sf2 : sfs) {
        headers.push_back(std::to_string(sf1) + "x" + std::to_string(sf2));
      }
    }
    ResultTable table(headers);
    const std::vector<Strategy> strategies = StudyStrategies(timeout);
    std::vector<std::vector<std::string>> cells(
        strategies.size(), std::vector<std::string>(headers.size()));
    size_t col = 0;
    for (int sf1 : sfs) {
      for (int sf2 : sfs) {
        Database db;
        RstOptions opts;
        opts.rows_per_sf = rows_per_sf;
        Status st = LoadRst(&db, sf1, sf2, sf2, opts);
        if (!st.ok()) {
          std::printf("data load failed: %s\n", st.ToString().c_str());
          return 1;
        }
        int64_t reference_rows = -1;
        for (size_t s = 0; s < strategies.size(); ++s) {
          int64_t rows = -1;
          cells[s][col] =
              RunCell(&db, q.sql, strategies[s].options, &rows);
          if (rows >= 0) {
            if (reference_rows < 0) reference_rows = rows;
            if (rows != reference_rows) cells[s][col] += "!";
          }
        }
        ++col;
      }
    }
    for (size_t s = 0; s < strategies.size(); ++s) {
      table.AddRow(strategies[s].name, cells[s]);
    }
    table.Print();
  }
  return 0;
}
