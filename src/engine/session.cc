#include "engine/session.h"

namespace bypass {

Result<QueryResult> Session::Query(const std::string& sql,
                                   const QueryOptions& options) {
  queries_issued_.fetch_add(1, std::memory_order_relaxed);
  return server_->Execute(sql, options, EffectivePriority(options));
}

QueryHandle Session::Submit(std::string sql, QueryOptions options) {
  queries_issued_.fetch_add(1, std::memory_order_relaxed);
  const int priority = EffectivePriority(options);
  return server_->Submit(std::move(sql), std::move(options), priority);
}

Result<PreparedQuery> Session::Prepare(const std::string& sql,
                                       const QueryOptions& options) {
  return server_->database()->Prepare(sql, options);
}

}  // namespace bypass
