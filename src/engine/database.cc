#include "engine/database.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "algebra/plan_util.h"
#include "engine/server.h"
#include "engine/session.h"
#include "exec/subplan_impl.h"
#include "expr/expr_util.h"
#include "frontend/translator.h"
#include "planner/cost_model.h"
#include "planner/planner.h"
#include "rewrite/classify.h"
#include "sql/parser.h"

namespace bypass {

namespace {

/// Base-table names the plan touches, descending into nested subquery
/// blocks (VisitPlan deliberately stops at block boundaries, but stats
/// staleness cares about every table the whole query reads).
void CollectReferencedTables(const LogicalOpPtr& root,
                             std::set<std::string>* out) {
  VisitPlan(root, [out](const LogicalOpPtr& node) {
    if (node->kind() == LogicalOpKind::kGet) {
      out->insert(static_cast<const GetOp&>(*node).table_name());
    }
    for (const ExprPtr& e : NodeExpressions(*node)) {
      VisitExprMutable(e.get(), [out](Expr* expr) {
        if (expr->kind() != ExprKind::kSubquery) return;
        CollectReferencedTables(static_cast<SubqueryExpr*>(expr)->plan(),
                                out);
      });
    }
  });
}

/// Reorders every disjunction in the plan's selection predicates.
/// `subquery_first=false` puts cheap subquery-free disjuncts first so the
/// runtime's OR short-circuit skips nested blocks whenever possible (any
/// reasonable engine does this); `subquery_first=true` simulates an
/// optimizer without that shortcut. Mutates the given (private) plan.
void ReorderDisjunctions(const LogicalOpPtr& root, bool subquery_first) {
  VisitPlan(root, [subquery_first](const LogicalOpPtr& node) {
    for (const ExprPtr& e : NodeExpressions(*node)) {
      VisitExprMutable(e.get(), [subquery_first](Expr* expr) {
        if (expr->kind() != ExprKind::kOr) return;
        auto* disjunction = static_cast<OrExpr*>(expr);
        std::vector<ExprPtr> terms = disjunction->terms();
        std::stable_partition(terms.begin(), terms.end(),
                              [subquery_first](const ExprPtr& t) {
                                return ContainsSubquery(t) ==
                                       subquery_first;
                              });
        *disjunction = OrExpr(std::move(terms));
      });
    }
  });
}

/// The logical-plan half of query preparation.
struct PlannedLogical {
  LogicalOpPtr canonical;
  LogicalOpPtr optimized;
  std::vector<std::string> applied_rules;
};

Result<PlannedLogical> PlanLogical(const Catalog* catalog,
                                   const std::string& sql,
                                   const QueryOptions& options) {
  BYPASS_ASSIGN_OR_RETURN(SelectStmtPtr stmt, ParseSelect(sql));
  Translator translator(catalog);
  PlannedLogical out;
  BYPASS_ASSIGN_OR_RETURN(out.canonical, translator.Translate(*stmt));

  LogicalOpPtr working = CloneLogicalPlan(out.canonical);
  ReorderDisjunctions(working,
                      /*subquery_first=*/!options.shortcut_disjunctions);
  if (options.unnest) {
    RewriteOptions ropts = options.rewrite;
    ropts.enable_unnesting = true;
    ropts.catalog = catalog;
    UnnestingRewriter rewriter(ropts);
    LogicalOpPtr before = working;
    BYPASS_ASSIGN_OR_RETURN(working, rewriter.Rewrite(working));
    out.applied_rules = rewriter.applied_rules();
    if (options.cost_based && working != before) {
      // Three-way choice on estimated cost: the rank-ordered rewrite
      // competes against both forced cascade shapes (Eqv. 2 / Eqv. 3)
      // and against the canonical plan. Ties keep the earlier
      // candidate, so the rank-based rewrite wins unless something is
      // strictly cheaper.
      struct Candidate {
        LogicalOpPtr plan;
        std::vector<std::string> rules;
        double cost = 0;
        const char* label = nullptr;  ///< logged when a forced shape wins
      };
      std::vector<Candidate> candidates;
      candidates.push_back({working, out.applied_rules,
                            EstimatePlan(*working, catalog).cost,
                            nullptr});
      if (ropts.disjunct_order == DisjunctOrder::kByRank) {
        const std::pair<DisjunctOrder, const char*> forced[] = {
            {DisjunctOrder::kSimpleFirst,
             "cost-based: picked forced simple-first"},
            {DisjunctOrder::kSubqueryFirst,
             "cost-based: picked forced subquery-first"},
        };
        for (const auto& [order, label] : forced) {
          RewriteOptions fopts = ropts;
          fopts.disjunct_order = order;
          UnnestingRewriter forced_rewriter(fopts);
          BYPASS_ASSIGN_OR_RETURN(
              LogicalOpPtr plan,
              forced_rewriter.Rewrite(CloneLogicalPlan(before)));
          candidates.push_back({plan, forced_rewriter.applied_rules(),
                                EstimatePlan(*plan, catalog).cost,
                                label});
        }
      }
      if (!ropts.use_tagged_partition) {
        // Fourth shape: collapse the leading simple-disjunct run into a
        // k-way tagged partition. Its estimate drops the per-level
        // operator constant of the cascade, so it wins exactly when the
        // partition applies (≥2 leading simple disjuncts). Tried under
        // both orderings that keep simple disjuncts in front — the rank
        // order can differ from the cheapest partition order.
        for (const DisjunctOrder order :
             {ropts.disjunct_order, DisjunctOrder::kSimpleFirst}) {
          RewriteOptions fopts = ropts;
          fopts.disjunct_order = order;
          fopts.use_tagged_partition = true;
          UnnestingRewriter tagged_rewriter(fopts);
          BYPASS_ASSIGN_OR_RETURN(
              LogicalOpPtr plan,
              tagged_rewriter.Rewrite(CloneLogicalPlan(before)));
          candidates.push_back({plan, tagged_rewriter.applied_rules(),
                                EstimatePlan(*plan, catalog).cost,
                                "cost-based: picked k-way tagged"});
          if (order == DisjunctOrder::kSimpleFirst) break;  // no repeat
        }
      }
      candidates.push_back({before,
                            {"cost-based: kept canonical"},
                            EstimatePlan(*before, catalog).cost,
                            nullptr});
      size_t best = 0;
      for (size_t i = 1; i < candidates.size(); ++i) {
        if (candidates[i].cost < candidates[best].cost) best = i;
      }
      working = candidates[best].plan;
      out.applied_rules = std::move(candidates[best].rules);
      if (candidates[best].label != nullptr) {
        out.applied_rules.emplace_back(candidates[best].label);
      }
    }
  }
  out.optimized = working;
  return out;
}

}  // namespace

// ---------------------------------------------------------- PreparedQuery

Result<QueryResult> PreparedQuery::Execute() { return Execute(options_); }

bool PreparedQuery::IsStale() const {
  if (db_ == nullptr) return false;
  const Catalog* catalog = db_->catalog();
  if (catalog->stats_epoch() == stats_epoch_) return false;
  for (const auto& [table, version] : table_stats_versions_) {
    if (catalog->TableStatsVersion(table) != version) return true;
  }
  return false;
}

Status PreparedQuery::ReplanIfStale() {
  // Fast path: the global epoch only moves when some table's statistics
  // change, so an equal epoch proves our plan is still current.
  const Catalog* catalog = db_->catalog();
  const uint64_t epoch = catalog->stats_epoch();
  if (epoch == stats_epoch_) return Status::OK();
  bool stale = false;
  for (const auto& [table, version] : table_stats_versions_) {
    if (catalog->TableStatsVersion(table) != version) {
      stale = true;
      break;
    }
  }
  if (!stale) {
    // Statistics moved for tables we do not read; remember the new epoch
    // so subsequent Executes take the fast path again.
    stats_epoch_ = epoch;
    return Status::OK();
  }
  BYPASS_ASSIGN_OR_RETURN(PreparedQuery fresh,
                          db_->Prepare(sql_, options_));
  // Survive the wholesale move: the replan counter accumulates across
  // re-plans, and the in-flight guard is the flag our caller (an active
  // ExecuteWith) already set and will clear — swapping in fresh's unset
  // flag would let a second Execute slip in mid-run.
  const int replans = replan_count_ + 1;
  std::shared_ptr<std::atomic<bool>> guard = in_flight_;
  *this = std::move(fresh);
  replan_count_ = replans;
  in_flight_ = std::move(guard);
  return Status::OK();
}

Result<QueryResult> PreparedQuery::Execute(
    const QueryOptions& run_options) {
  if (db_ == nullptr) {
    return Status::InvalidArgument(
        "Execute on an empty PreparedQuery (default-constructed or "
        "moved-from)");
  }
  // Standalone default env: mirrors the historical behaviour — serial
  // queries run without a pool, parallel ones on the database's shared
  // pool grown to the requested width, budget from the run options.
  QueryExecEnv env;
  const int num_threads =
      run_options.num_threads < 1 ? 1 : run_options.num_threads;
  if (num_threads > 1) {
    env.pool = db_->EnsurePool(num_threads);
    env.num_worker_slots = env.pool->num_workers();
    env.sched.max_workers = num_threads;
    env.sched.max_worker_id = env.num_worker_slots;
  }
  if (run_options.memory_budget_bytes > 0) {
    env.memory = std::make_shared<MemoryBudget>();
    env.memory->limit =
        static_cast<int64_t>(run_options.memory_budget_bytes);
  }
  return ExecuteWith(run_options, env);
}

Result<QueryResult> PreparedQuery::ExecuteWith(
    const QueryOptions& run_options, const QueryExecEnv& env) {
  if (db_ == nullptr) {
    return Status::InvalidArgument(
        "Execute on an empty PreparedQuery (default-constructed or "
        "moved-from)");
  }
  // The plan's operators and sink are shared mutable state; fail loudly
  // on concurrent entry instead of racing. Hold the guard object itself:
  // ReplanIfStale may replace every other member mid-run.
  std::shared_ptr<std::atomic<bool>> guard = in_flight_;
  bool expected = false;
  if (!guard->compare_exchange_strong(expected, true,
                                      std::memory_order_acquire)) {
    return Status::InvalidArgument(
        "concurrent Execute on one PreparedQuery: runs are not "
        "reentrant; prepare one handle per thread or route queries "
        "through a Server session");
  }
  struct InFlightClearer {
    std::shared_ptr<std::atomic<bool>> flag;
    ~InFlightClearer() { flag->store(false, std::memory_order_release); }
  } clearer{std::move(guard)};

  BYPASS_RETURN_IF_ERROR(ReplanIfStale());
  QueryResult result;
  result.schema = plan_.output_schema;
  result.applied_rules = applied_rules_;
  result.optimize_time = optimize_time_;
  if (run_options.collect_plans) {
    result.canonical_plan = canonical_plan_;
    result.optimized_plan = optimized_plan_;
    result.physical_plan = plan_.ToString();
  }

  const int num_worker_slots =
      env.num_worker_slots < 1 ? 1 : env.num_worker_slots;
  ExecContext ctx;
  ctx.set_stats(&result.stats);
  ctx.set_batch_size(run_options.batch_size);
  ctx.set_morsel_size(run_options.morsel_size);
  ctx.set_num_worker_slots(num_worker_slots);
  ctx.set_columnar_enabled(run_options.enable_columnar);
  ctx.set_memory(env.memory);
  ctx.set_zone_maps_enabled(run_options.enable_zone_maps);
  ctx.set_scan_from_segments(run_options.scan_from_segments);
  // One scratch-dir manager per execution: budgeted operators spill into
  // it instead of failing, and its destructor removes every temp file
  // once the query (and any subplan holding a reference) is done.
  std::shared_ptr<SpillManager> spill;
  if (env.memory != nullptr && run_options.allow_spill) {
    spill = std::make_shared<SpillManager>(run_options.spill_directory);
  }
  ctx.set_spill(spill);
  SharedWorkerStats worker_stats;
  if (env.pool != nullptr) {
    ctx.set_pool(env.pool);
    ctx.set_task_group_options(env.sched);
    // Route statistics to padded per-worker slots; aggregated below.
    worker_stats = std::make_shared<std::vector<ExecStatsSlot>>(
        static_cast<size_t>(num_worker_slots));
    ctx.set_worker_stats(worker_stats);
  }
  std::optional<std::chrono::steady_clock::time_point> deadline;
  if (run_options.timeout.has_value()) {
    deadline = std::chrono::steady_clock::now() + *run_options.timeout;
    ctx.set_deadline(*deadline);
  }
  for (ExecSubplan* subplan : plan_.subplans) {
    // Fresh memo caches per run keep repeated Execute calls independent
    // (benchmark repetitions must not inherit earlier runs' caches).
    subplan->ClearCache();
    subplan->Configure(deadline, &result.stats, ctx.batch_size(),
                       worker_stats, num_worker_slots,
                       run_options.enable_columnar, env.memory, spill,
                       run_options.enable_zone_maps,
                       run_options.scan_from_segments);
  }

  const auto exec_start = std::chrono::steady_clock::now();
  BYPASS_RETURN_IF_ERROR(RunPlan(&plan_, &ctx));
  result.execution_time = std::chrono::steady_clock::now() - exec_start;
  if (worker_stats != nullptr) {
    for (const ExecStatsSlot& slot : *worker_stats) {
      result.stats.Add(slot.stats);
    }
  }
  if (run_options.collect_plans) {
    result.operator_stats = plan_.StatsString();
    result.operator_feedback = CollectOperatorFeedback(plan_);
  }
  if (run_options.refresh_stats) {
    ApplyCardinalityFeedback(plan_, db_->catalog());
  }
  result.rows = plan_.sink->TakeRows();
  return result;
}

// --------------------------------------------------------------- Database

Database::Database() = default;

Database::~Database() = default;

Result<Table*> Database::CreateTable(const std::string& name,
                                     Schema schema) {
  return catalog_.CreateTable(name, std::move(schema));
}

Result<AnalyzeReport> Database::Analyze(const std::string& table_name,
                                        const AnalyzeOptions& options) {
  BYPASS_ASSIGN_OR_RETURN(Table * table, catalog_.GetTable(table_name));
  const auto start = std::chrono::steady_clock::now();
  TableStatistics stats = AnalyzeTable(*table, options);
  AnalyzeReport report;
  report.table = table->name();
  report.row_count = stats.row_count;
  std::string summary = table->name() + ": " + stats.ToString() + "\n";
  for (int i = 0; i < table->schema().num_columns(); ++i) {
    const ColumnStatistics& col = stats.columns[static_cast<size_t>(i)];
    summary += "  " + table->schema().column(i).name + ": " +
               std::to_string(col.null_count) + " nulls, ndv " +
               std::to_string(col.distinct_count);
    if (!col.min.is_null()) {
      summary += ", min " + col.min.ToString() + ", max " +
                 col.max.ToString();
    }
    if (!col.histogram.empty()) {
      summary += ", " + std::to_string(col.histogram.num_buckets()) +
                 " histogram buckets";
    }
    summary += "\n";
  }
  report.summary = std::move(summary);
  catalog_.SetTableStatistics(table->name(), std::move(stats));
  report.analyze_time = std::chrono::steady_clock::now() - start;
  return report;
}

Result<std::vector<AnalyzeReport>> Database::AnalyzeAll(
    const AnalyzeOptions& options) {
  std::vector<AnalyzeReport> reports;
  for (const std::string& name : catalog_.TableNames()) {
    BYPASS_ASSIGN_OR_RETURN(AnalyzeReport report, Analyze(name, options));
    reports.push_back(std::move(report));
  }
  return reports;
}

Server* Database::server() {
  std::call_once(server_once_, [this] {
    // Compatibility defaults: elastic pool (ask for N threads, get N),
    // admission wide enough that embedded use never queues, plan cache
    // off so standalone Query/Prepare semantics (fresh plan per call)
    // are exactly the historical ones. Dedicated servers tighten these.
    ServerOptions opts;
    opts.num_workers = 0;
    opts.max_concurrent_queries = 64;
    opts.max_pending_queries = 4096;
    opts.plan_cache_entries = 0;
    server_ = std::make_unique<Server>(this, opts);
    default_session_ = server_->Connect(/*priority=*/0);
  });
  return server_.get();
}

Session* Database::default_session() {
  server();  // ensure created
  return default_session_.get();
}

WorkerPool* Database::EnsurePool(int num_threads) {
  WorkerPool* pool = server()->pool();
  pool->EnsureWorkers(num_threads);
  return pool;
}

Result<PreparedQuery> Database::Prepare(const std::string& sql,
                                        const QueryOptions& options) {
  // Statistics discipline: snapshot the epoch *before* planning. ANALYZE
  // may publish new statistics while we plan; stamping the newer epoch
  // onto a plan costed against the older snapshot would declare it
  // permanently fresh. With the pre-planning epoch recorded, a re-read
  // after planning detects the race and we simply plan again (bounded —
  // back-to-back ANALYZE races are transient).
  PreparedQuery prepared;
  for (int attempt = 0;; ++attempt) {
    prepared = PreparedQuery();
    const uint64_t epoch_before = catalog_.stats_epoch();
    const auto optimize_start = std::chrono::steady_clock::now();
    BYPASS_ASSIGN_OR_RETURN(PlannedLogical planned,
                            PlanLogical(&catalog_, sql, options));
    PlannerOptions popts;
    popts.memoize_subqueries = options.memoize_subqueries;
    Planner planner(&catalog_, popts);
    BYPASS_ASSIGN_OR_RETURN(prepared.plan_,
                            planner.Lower(planned.optimized));
    prepared.optimize_time_ =
        std::chrono::steady_clock::now() - optimize_start;
    prepared.db_ = this;
    prepared.options_ = options;
    prepared.applied_rules_ = std::move(planned.applied_rules);
    prepared.sql_ = sql;
    prepared.stats_epoch_ = epoch_before;
    std::set<std::string> referenced;
    CollectReferencedTables(planned.canonical, &referenced);
    for (const std::string& table : referenced) {
      prepared.table_stats_versions_.emplace_back(
          table, catalog_.TableStatsVersion(table));
    }
    if (options.collect_plans) {
      prepared.canonical_plan_ = PlanToString(*planned.canonical);
      prepared.optimized_plan_ = PlanToString(*planned.optimized);
    }
    if (catalog_.stats_epoch() == epoch_before || attempt >= 2) {
      // No ANALYZE raced the planning (or we stop chasing a stats
      // churner; the recorded pre-planning epoch keeps the staleness
      // check conservative either way).
      break;
    }
  }
  return prepared;
}

Result<QueryResult> Database::Query(const std::string& sql,
                                    const QueryOptions& options) {
  // Through the embedded server's default session: same execution as
  // before, now under the shared scheduler with every other client.
  return default_session()->Query(sql, options);
}

Result<std::string> Database::Explain(const std::string& sql,
                                      const QueryOptions& options) {
  BYPASS_ASSIGN_OR_RETURN(PlannedLogical planned,
                          PlanLogical(&catalog_, sql, options));
  PlannerOptions popts;
  popts.memoize_subqueries = options.memoize_subqueries;
  Planner planner(&catalog_, popts);
  BYPASS_ASSIGN_OR_RETURN(PhysicalPlan plan,
                          planner.Lower(planned.optimized));

  std::ostringstream os;
  os << "nesting structure: "
     << NestingStructureToString(ClassifyNesting(*planned.canonical))
     << "\n";
  const PlanEstimate canonical_est =
      EstimatePlan(*planned.canonical, &catalog_);
  os << "canonical logical plan (est. " << canonical_est.rows
     << " rows, cost " << canonical_est.cost << "):\n"
     << PlanToString(*planned.canonical);
  if (options.unnest) {
    os << "applied equivalences:";
    if (planned.applied_rules.empty()) {
      os << " (none)";
    } else {
      for (const std::string& rule : planned.applied_rules) {
        os << " " << rule;
      }
    }
    os << "\n";
    const PlanEstimate optimized_est =
        EstimatePlan(*planned.optimized, &catalog_);
    os << "rewritten logical plan (est. " << optimized_est.rows
       << " rows, cost " << optimized_est.cost << "):\n"
       << PlanToString(*planned.optimized);
  }
  os << plan.ToString();
  return os.str();
}

}  // namespace bypass
