#include "engine/database.h"

#include <algorithm>
#include <sstream>

#include "algebra/plan_util.h"
#include "expr/expr_util.h"
#include "frontend/translator.h"
#include "planner/cost_model.h"
#include "planner/planner.h"
#include "rewrite/classify.h"
#include "sql/parser.h"

namespace bypass {

namespace {

/// Reorders every disjunction in the plan's selection predicates.
/// `subquery_first=false` puts cheap subquery-free disjuncts first so the
/// runtime's OR short-circuit skips nested blocks whenever possible (any
/// reasonable engine does this); `subquery_first=true` simulates an
/// optimizer without that shortcut. Mutates the given (private) plan.
void ReorderDisjunctions(const LogicalOpPtr& root, bool subquery_first) {
  VisitPlan(root, [subquery_first](const LogicalOpPtr& node) {
    for (const ExprPtr& e : NodeExpressions(*node)) {
      VisitExprMutable(e.get(), [subquery_first](Expr* expr) {
        if (expr->kind() != ExprKind::kOr) return;
        auto* disjunction = static_cast<OrExpr*>(expr);
        std::vector<ExprPtr> terms = disjunction->terms();
        std::stable_partition(terms.begin(), terms.end(),
                              [subquery_first](const ExprPtr& t) {
                                return ContainsSubquery(t) ==
                                       subquery_first;
                              });
        *disjunction = OrExpr(std::move(terms));
      });
    }
  });
}

struct PreparedQuery {
  LogicalOpPtr canonical;
  LogicalOpPtr optimized;
  std::vector<std::string> applied_rules;
};

Result<PreparedQuery> Prepare(const Catalog* catalog,
                              const std::string& sql,
                              const QueryOptions& options) {
  BYPASS_ASSIGN_OR_RETURN(SelectStmtPtr stmt, ParseSelect(sql));
  Translator translator(catalog);
  PreparedQuery out;
  BYPASS_ASSIGN_OR_RETURN(out.canonical, translator.Translate(*stmt));

  LogicalOpPtr working = CloneLogicalPlan(out.canonical);
  ReorderDisjunctions(working,
                      /*subquery_first=*/!options.shortcut_disjunctions);
  if (options.unnest) {
    RewriteOptions ropts = options.rewrite;
    ropts.enable_unnesting = true;
    UnnestingRewriter rewriter(ropts);
    LogicalOpPtr before = working;
    BYPASS_ASSIGN_OR_RETURN(working, rewriter.Rewrite(working));
    out.applied_rules = rewriter.applied_rules();
    if (options.cost_based && working != before) {
      const PlanEstimate canonical_cost = EstimatePlan(*before, catalog);
      const PlanEstimate unnested_cost = EstimatePlan(*working, catalog);
      if (canonical_cost.cost < unnested_cost.cost) {
        working = before;
        out.applied_rules = {"cost-based: kept canonical"};
      }
    }
  }
  out.optimized = working;
  return out;
}

}  // namespace

Result<Table*> Database::CreateTable(const std::string& name,
                                     Schema schema) {
  return catalog_.CreateTable(name, std::move(schema));
}

Result<QueryResult> Database::Query(const std::string& sql,
                                    const QueryOptions& options) {
  const auto optimize_start = std::chrono::steady_clock::now();
  BYPASS_ASSIGN_OR_RETURN(PreparedQuery prepared,
                          Prepare(&catalog_, sql, options));

  PlannerOptions popts;
  popts.memoize_subqueries = options.memoize_subqueries;
  Planner planner(&catalog_, popts);
  BYPASS_ASSIGN_OR_RETURN(PhysicalPlan plan,
                          planner.Lower(prepared.optimized));
  const auto optimize_end = std::chrono::steady_clock::now();

  QueryResult result;
  result.schema = plan.output_schema;
  result.applied_rules = std::move(prepared.applied_rules);
  result.optimize_seconds =
      std::chrono::duration<double>(optimize_end - optimize_start)
          .count();
  if (options.collect_plans) {
    result.canonical_plan = PlanToString(*prepared.canonical);
    result.optimized_plan = PlanToString(*prepared.optimized);
    result.physical_plan = plan.ToString();
  }

  ExecContext ctx;
  ctx.set_stats(&result.stats);
  ctx.set_batch_size(options.batch_size);
  std::optional<std::chrono::steady_clock::time_point> deadline;
  if (options.timeout.has_value()) {
    deadline = std::chrono::steady_clock::now() + *options.timeout;
    ctx.set_deadline(*deadline);
  }
  for (ExecSubplan* subplan : plan.subplans) {
    subplan->Configure(deadline, &result.stats, ctx.batch_size());
  }

  const auto exec_start = std::chrono::steady_clock::now();
  BYPASS_RETURN_IF_ERROR(RunPlan(&plan, &ctx));
  const auto exec_end = std::chrono::steady_clock::now();
  result.execution_seconds =
      std::chrono::duration<double>(exec_end - exec_start).count();
  if (options.collect_plans) {
    result.operator_stats = plan.StatsString();
  }
  result.rows = plan.sink->TakeRows();
  return result;
}

Result<std::string> Database::Explain(const std::string& sql,
                                      const QueryOptions& options) {
  BYPASS_ASSIGN_OR_RETURN(PreparedQuery prepared,
                          Prepare(&catalog_, sql, options));
  PlannerOptions popts;
  popts.memoize_subqueries = options.memoize_subqueries;
  Planner planner(&catalog_, popts);
  BYPASS_ASSIGN_OR_RETURN(PhysicalPlan plan,
                          planner.Lower(prepared.optimized));

  std::ostringstream os;
  os << "nesting structure: "
     << NestingStructureToString(ClassifyNesting(*prepared.canonical))
     << "\n";
  const PlanEstimate canonical_est =
      EstimatePlan(*prepared.canonical, &catalog_);
  os << "canonical logical plan (est. " << canonical_est.rows
     << " rows, cost " << canonical_est.cost << "):\n"
     << PlanToString(*prepared.canonical);
  if (options.unnest) {
    os << "applied equivalences:";
    if (prepared.applied_rules.empty()) {
      os << " (none)";
    } else {
      for (const std::string& rule : prepared.applied_rules) {
        os << " " << rule;
      }
    }
    os << "\n";
    const PlanEstimate optimized_est =
        EstimatePlan(*prepared.optimized, &catalog_);
    os << "rewritten logical plan (est. " << optimized_est.rows
       << " rows, cost " << optimized_est.cost << "):\n"
       << PlanToString(*prepared.optimized);
  }
  os << plan.ToString();
  return os.str();
}

}  // namespace bypass
