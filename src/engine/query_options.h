// Query-level options and results for the Database facade.
//
// The four plan-shape knobs (unnest / cost_based / memoize_subqueries /
// shortcut_disjunctions) interact; most callers want one of the named
// strategies from the paper's study, so ExecutionStrategy presets them in
// one step. The individual bools remain public for fine-grained overrides
// and source compatibility with older code.
#ifndef BYPASSDB_ENGINE_QUERY_OPTIONS_H_
#define BYPASSDB_ENGINE_QUERY_OPTIONS_H_

#include <chrono>
#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "exec/exec_context.h"
#include "rewrite/unnest.h"
#include "stats/feedback.h"
#include "types/row.h"
#include "types/schema.h"

namespace bypass {

/// The evaluation strategies compared throughout the paper's study, as
/// one-stop presets for QueryOptions' plan-shape knobs:
///
///   kCanonical            nested-loop subqueries, OR short-circuiting
///   kCanonicalNoShortcut  + disjunctions reordered nested-blocks-first
///                           (the worst commercial behaviour observed)
///   kCanonicalMemo        + memoized correlated subqueries (S2-like)
///   kUnnested             the paper's bypass plans (default)
///   kCostBased            unnest only when the cost model prefers it
enum class ExecutionStrategy {
  kCanonical,
  kCanonicalNoShortcut,
  kCanonicalMemo,
  kUnnested,
  kCostBased,
};

inline const char* ExecutionStrategyToString(ExecutionStrategy s) {
  switch (s) {
    case ExecutionStrategy::kCanonical:
      return "canonical";
    case ExecutionStrategy::kCanonicalNoShortcut:
      return "canonical-noshortcut";
    case ExecutionStrategy::kCanonicalMemo:
      return "canonical-memo";
    case ExecutionStrategy::kUnnested:
      return "unnested";
    case ExecutionStrategy::kCostBased:
      return "cost-based";
  }
  return "?";
}

struct QueryOptions {
  QueryOptions() = default;
  /// \deprecated Implicit strategy-to-options conversion predates the
  /// serving API and hides an options object behind an enum at call
  /// sites. Use the explicit factory `QueryOptions::With(strategy)`
  /// instead; this constructor remains only for source compatibility
  /// with older callers.
  QueryOptions(ExecutionStrategy strategy) {  // NOLINT(runtime/explicit)
    set_strategy(strategy);
  }

  /// Options preset to the given strategy — the explicit replacement for
  /// the deprecated converting constructor above:
  ///   db.Query(sql, QueryOptions::With(ExecutionStrategy::kCanonical))
  static QueryOptions With(ExecutionStrategy strategy) {
    QueryOptions options;
    options.set_strategy(strategy);
    return options;
  }

  /// Presets the four plan-shape knobs below. Later direct writes to the
  /// individual knobs still win — the strategy is a preset, not a mode.
  void set_strategy(ExecutionStrategy s) {
    unnest = s == ExecutionStrategy::kUnnested ||
             s == ExecutionStrategy::kCostBased;
    cost_based = s == ExecutionStrategy::kCostBased;
    memoize_subqueries = s == ExecutionStrategy::kCanonicalMemo;
    shortcut_disjunctions = s != ExecutionStrategy::kCanonicalNoShortcut;
  }

  /// Classifies the current knob values back into a strategy name (used
  /// by benchmark reports; knob combinations outside the presets map to
  /// the nearest strategy).
  ExecutionStrategy strategy() const {
    if (unnest) {
      return cost_based ? ExecutionStrategy::kCostBased
                        : ExecutionStrategy::kUnnested;
    }
    if (memoize_subqueries) return ExecutionStrategy::kCanonicalMemo;
    if (!shortcut_disjunctions) {
      return ExecutionStrategy::kCanonicalNoShortcut;
    }
    return ExecutionStrategy::kCanonical;
  }

  // --- Plan-shape knobs (fixed at Prepare time). Prefer the
  //     ExecutionStrategy presets; these remain as overrides.

  /// Apply the paper's unnesting equivalences.
  bool unnest = true;
  /// With `unnest`, keep the canonical plan anyway when the cost model
  /// estimates it cheaper (paper Sec. 1: "some unnesting strategies do
  /// not always result in better plans" — e.g. Eqv. 5's quadratic pair
  /// stream on queries whose canonical evaluation is also quadratic).
  bool cost_based = false;
  /// Memoize correlated subquery results by correlation values.
  bool memoize_subqueries = false;
  /// When false, disjunctions are reordered so nested blocks are
  /// evaluated first — simulating an optimizer that does not short-cut
  /// ORs (the worst commercial behaviour observed in the paper).
  bool shortcut_disjunctions = true;
  /// Fine-grained rewriter knobs (enable_unnesting is overridden by
  /// `unnest` above).
  RewriteOptions rewrite;

  // --- Execution knobs (honoured per Execute on a PreparedQuery).

  /// Abort the execution after this long (paper: six hours → "n/a").
  std::optional<std::chrono::milliseconds> timeout;
  /// Record plan strings in the result (small cost; on by default).
  bool collect_plans = true;
  /// Rows per batch flowing between physical operators. 1 degenerates to
  /// row-at-a-time execution (useful as a differential-testing oracle).
  size_t batch_size = kDefaultBatchSize;
  /// Workers driving the top-level scan pipelines. 1 (default) is the
  /// fully serial executor — bit-for-bit the pre-parallelism behaviour;
  /// >1 splits every table scan into morsels dispatched to a shared
  /// worker pool. Result *set* is identical either way, but row order is
  /// only defined under ORDER BY.
  int num_threads = 1;
  /// Rows per morsel handed to a worker in one dispatch (num_threads>1).
  size_t morsel_size = kDefaultMorselSize;
  /// Attach typed columns to scan batches so the columnar predicate /
  /// aggregate kernels engage (on by default). Off forces the row-at-a-
  /// time Value paths everywhere — the oracle side of the columnar
  /// differential tests and the "row" side of the paired benches.
  bool enable_columnar = true;
  /// After execution, write actual base-table cardinalities back to the
  /// catalog when they drifted from the ANALYZE row counts (runtime
  /// cardinality feedback). The write bumps the statistics epoch, so
  /// prepared queries over the affected tables re-plan on their next run.
  bool refresh_stats = false;

  // --- Scheduling knobs (honoured by the serving layer; see
  //     engine/server.h). Standalone Database::Query still applies the
  //     memory budget; priority only matters once queries share a pool.

  /// Scheduling priority relative to other queries on the same Server:
  /// higher admits and claims shared-pool workers first. Added to the
  /// submitting session's priority.
  int priority = 0;
  /// Per-query memory budget in bytes for buffering operators (result
  /// collection, join build sides, sorts), enforced through
  /// ExecContext::ChargeMemory. 0 = the server's default (or unlimited
  /// for standalone use). With `allow_spill` (the default) budgeted hash
  /// joins and sorts overflow to temp files and complete with the same
  /// results; operators without a spill path (notably result collection)
  /// still fail with ResourceExhausted rather than grow without bound.
  size_t memory_budget_bytes = 0;
  /// Let budgeted executions spill join build sides and sort runs to
  /// temp files (Grace hash join / external merge sort) instead of
  /// failing. Off restores the strict pre-spill ResourceExhausted
  /// behaviour for every operator.
  bool allow_spill = true;
  /// Scratch directory for spill files; empty = the system temp
  /// directory. The per-query subdirectory is removed when the query
  /// finishes.
  std::string spill_directory;

  // --- Segment-storage knobs (see storage/segment.h).

  /// Consult per-segment zone maps (min/max/null counts) to skip table
  /// segments that cannot satisfy the scan's pushed-down predicate.
  bool enable_zone_maps = true;
  /// Read scans through the compressed segment store, decompressing one
  /// segment per worker at a time, instead of borrowing the table's flat
  /// in-memory columns — the out-of-core read path. Off by default: flat
  /// scans stay zero-copy.
  bool scan_from_segments = false;
};

struct QueryResult {
  Schema schema;
  std::vector<Row> rows;
  ExecStats stats;
  /// Wall-clock execution time (excludes parse/optimize).
  std::chrono::steady_clock::duration execution_time{};
  std::chrono::steady_clock::duration optimize_time{};

  double execution_seconds() const {
    return std::chrono::duration<double>(execution_time).count();
  }
  double optimize_seconds() const {
    return std::chrono::duration<double>(optimize_time).count();
  }

  std::string canonical_plan;   ///< logical plan before unnesting
  std::string optimized_plan;   ///< logical plan after unnesting
  std::string physical_plan;
  std::string operator_stats;   ///< per-operator emitted-row accounting
  /// Estimate-vs-actual cardinality per operator (collect_plans only).
  std::vector<OperatorFeedback> operator_feedback;
  std::vector<std::string> applied_rules;  ///< e.g. {"Eqv.2", "Eqv.1"}
};

}  // namespace bypass

#endif  // BYPASSDB_ENGINE_QUERY_OPTIONS_H_
