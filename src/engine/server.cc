#include "engine/server.h"

#include <algorithm>

#include "common/check.h"
#include "engine/session.h"

namespace bypass {

// ------------------------------------------------------------ QueryHandle

/// Shared between the submitting client and the dispatcher that executes
/// the query. `mu/cv/done/result` carry the outcome back; `cancelled` is
/// polled by the dispatcher before execution starts.
struct QueryHandle::State {
  std::string sql;
  QueryOptions options;
  int priority = 0;
  uint64_t seq = 0;

  std::atomic<bool> cancelled{false};

  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  bool taken = false;
  std::optional<Result<QueryResult>> result;

  void Fulfill(Result<QueryResult> r) {
    std::lock_guard<std::mutex> lock(mu);
    result.emplace(std::move(r));
    done = true;
    cv.notify_all();
  }
};

bool QueryHandle::Poll() const {
  if (state_ == nullptr) return false;
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->done;
}

bool QueryHandle::WaitFor(std::chrono::milliseconds timeout) const {
  if (state_ == nullptr) return false;
  std::unique_lock<std::mutex> lock(state_->mu);
  return state_->cv.wait_for(lock, timeout,
                             [this] { return state_->done; });
}

Result<QueryResult> QueryHandle::Wait() {
  if (state_ == nullptr) {
    return Status::InvalidArgument("Wait on an empty QueryHandle");
  }
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->cv.wait(lock, [this] { return state_->done; });
  if (state_->taken) {
    return Status::InvalidArgument(
        "QueryHandle result was already taken by an earlier Wait");
  }
  state_->taken = true;
  return std::move(*state_->result);
}

void QueryHandle::Cancel() {
  if (state_ != nullptr) {
    state_->cancelled.store(true, std::memory_order_relaxed);
  }
}

// ----------------------------------------------------------------- Server

Server::Server(Database* db, ServerOptions options)
    : db_(db),
      options_(options),
      // Elastic pools start serial and grow per query; fixed pools spin
      // up their full complement now.
      pool_(options.num_workers > 0 ? options.num_workers : 1),
      plan_cache_(PlanCacheOptions{options.plan_cache_entries}) {
  BYPASS_CHECK_MSG(options_.max_concurrent_queries > 0,
                   "ServerOptions::max_concurrent_queries must be >= 1");
}

Server::~Server() {
  std::vector<std::shared_ptr<QueryHandle::State>> orphaned;
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
    orphaned.assign(submit_queue_.begin(), submit_queue_.end());
    submit_queue_.clear();
    admit_cv_.notify_all();
    dispatch_cv_.notify_all();
  }
  // Fail queued-but-never-started submissions so no client blocks in
  // Wait forever; already executing queries run to completion below.
  for (const auto& state : orphaned) {
    state->Fulfill(Status::ResourceExhausted("server is shutting down"));
  }
  for (std::thread& t : dispatchers_) t.join();
  // pool_ joins its workers in its own destructor (members destroy in
  // reverse declaration order, after the dispatchers are gone).
}

std::shared_ptr<Session> Server::Connect(int priority) {
  return std::make_shared<Session>(this, priority);
}

Result<QueryResult> Server::Execute(const std::string& sql,
                                    const QueryOptions& options,
                                    int priority) {
  return RunQuery(sql, options, priority);
}

QueryHandle Server::Submit(std::string sql, QueryOptions options,
                           int priority) {
  auto state = std::make_shared<QueryHandle::State>();
  state->sql = std::move(sql);
  state->options = std::move(options);
  state->priority = priority;
  QueryHandle handle(state);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      state->Fulfill(
          Status::ResourceExhausted("server is shutting down"));
      return handle;
    }
    if (submit_queue_.size() >= options_.max_pending_queries) {
      ++stats_.queries_rejected;
      state->Fulfill(Status::ResourceExhausted(
          "submission queue is full (" +
          std::to_string(options_.max_pending_queries) +
          " pending queries); retry later"));
      return handle;
    }
    state->seq = admit_seq_++;
    submit_queue_.push_back(state);
    MaybeSpawnDispatcherLocked();
    dispatch_cv_.notify_one();
  }
  return handle;
}

void Server::MaybeSpawnDispatcherLocked() {
  if (idle_dispatchers_ > 0) return;
  if (static_cast<int>(dispatchers_.size()) >=
      options_.max_concurrent_queries) {
    return;
  }
  dispatchers_.emplace_back([this] { DispatcherLoop(); });
}

void Server::DispatcherLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    while (!shutdown_ && submit_queue_.empty()) {
      ++idle_dispatchers_;
      dispatch_cv_.wait(lock);
      --idle_dispatchers_;
    }
    if (submit_queue_.empty()) return;  // shutdown and drained
    // Highest priority first, FIFO within a priority — mirrors both the
    // admission queue and the pool's task-group order.
    auto best = submit_queue_.begin();
    for (auto it = std::next(best); it != submit_queue_.end(); ++it) {
      if ((*it)->priority > (*best)->priority ||
          ((*it)->priority == (*best)->priority &&
           (*it)->seq < (*best)->seq)) {
        best = it;
      }
    }
    std::shared_ptr<QueryHandle::State> state = std::move(*best);
    submit_queue_.erase(best);
    lock.unlock();

    if (state->cancelled.load(std::memory_order_relaxed)) {
      state->Fulfill(Status::ResourceExhausted(
          "cancelled before execution started"));
    } else {
      state->Fulfill(
          RunQuery(state->sql, state->options, state->priority));
    }
    lock.lock();
  }
}

Status Server::Admit(Admission* admission, int priority, int64_t bytes) {
  std::unique_lock<std::mutex> lock(mu_);
  if (options_.memory_budget_bytes > 0 &&
      bytes > static_cast<int64_t>(options_.memory_budget_bytes)) {
    ++stats_.queries_rejected;
    return Status::ResourceExhausted(
        "query memory budget (" + std::to_string(bytes) +
        " bytes) exceeds the server budget (" +
        std::to_string(options_.memory_budget_bytes) + " bytes)");
  }
  const auto capacity_free = [this, bytes] {
    return running_ < options_.max_concurrent_queries &&
           (options_.memory_budget_bytes == 0 ||
            reserved_bytes_ + bytes <=
                static_cast<int64_t>(options_.memory_budget_bytes));
  };
  // Equal-or-higher-priority waiters go first (>= keeps FIFO fairness
  // among equals), so a free slot is only taken out of turn by a
  // strictly more urgent arrival.
  const auto has_prior_waiter = [this, priority] {
    return std::any_of(
        admit_queue_.begin(), admit_queue_.end(),
        [priority](const Waiter& w) { return w.priority >= priority; });
  };
  if (shutdown_) {
    return Status::ResourceExhausted("server is shutting down");
  }
  if (!capacity_free() || has_prior_waiter()) {
    if (admit_queue_.size() >= options_.max_pending_queries) {
      ++stats_.queries_rejected;
      return Status::ResourceExhausted(
          "admission queue is full (" +
          std::to_string(options_.max_pending_queries) +
          " waiting queries); retry later");
    }
    const Waiter self{priority, admit_seq_++};
    admit_queue_.push_back(self);
    ++stats_.admission_waits;
    const auto is_front = [this, &self] {
      return std::none_of(admit_queue_.begin(), admit_queue_.end(),
                          [&self](const Waiter& w) {
                            return w.priority > self.priority ||
                                   (w.priority == self.priority &&
                                    w.seq < self.seq);
                          });
    };
    admit_cv_.wait(lock, [&] {
      return shutdown_ || (capacity_free() && is_front());
    });
    admit_queue_.erase(
        std::find_if(admit_queue_.begin(), admit_queue_.end(),
                     [&self](const Waiter& w) {
                       return w.seq == self.seq;
                     }));
    if (shutdown_) {
      admit_cv_.notify_all();
      return Status::ResourceExhausted("server is shutting down");
    }
    // More capacity may remain for the next-best waiter (several slots
    // can free up while the queue holds multiple entries).
    admit_cv_.notify_all();
  }
  running_ += 1;
  reserved_bytes_ += bytes;
  admission->reserved_bytes = bytes;
  admission->admitted = true;
  ++stats_.queries_started;
  return Status::OK();
}

void Server::Release(const Admission& admission) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!admission.admitted) return;
  running_ -= 1;
  reserved_bytes_ -= admission.reserved_bytes;
  admit_cv_.notify_all();
}

QueryExecEnv Server::MakeEnv(const QueryOptions& options, int priority,
                             const SharedMemoryBudget& memory) {
  QueryExecEnv env;
  env.memory = memory;
  int num_threads = std::max(1, options.num_threads);
  if (options_.num_workers == 0) {
    // Elastic: honour the query's thread request, as a private pool
    // would have. Grow-only, so other in-flight queries stay safe.
    if (num_threads > 1) pool_.EnsureWorkers(num_threads);
  } else {
    num_threads = std::min(num_threads, options_.num_workers);
  }
  if (num_threads > 1) {
    const int slots = pool_.num_workers();
    env.pool = &pool_;
    env.num_worker_slots = slots;
    env.sched.priority = priority;
    env.sched.max_workers = num_threads;
    // The pool may keep growing under other queries while this one
    // runs; the id bound keeps late-spawned workers out of our
    // slots-sized operator state.
    env.sched.max_worker_id = slots;
  }
  return env;
}

Result<QueryResult> Server::RunQuery(const std::string& sql,
                                     const QueryOptions& options,
                                     int priority) {
  // Sweep stale plans before consulting the cache; a catalog-epoch
  // check makes this free when no ANALYZE ran since the last sweep.
  plan_cache_.EvictStale(db_->catalog());
  Result<PlanCache::Lease> leased = plan_cache_.Acquire(db_, sql, options);
  if (!leased.ok()) {
    // Planning failures (parse/bind/unsupported) count as failed
    // queries; they never reached admission.
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.queries_failed;
    return leased.status();
  }
  PlanCache::Lease lease = std::move(*leased);

  const int64_t budget_bytes = static_cast<int64_t>(
      options.memory_budget_bytes > 0 ? options.memory_budget_bytes
                                      : options_.default_query_memory_bytes);
  Admission admission;
  Status admitted = Admit(&admission, priority, budget_bytes);
  if (!admitted.ok()) {
    plan_cache_.Release(std::move(lease));
    return admitted;
  }
  SharedMemoryBudget memory;
  if (budget_bytes > 0) {
    memory = std::make_shared<MemoryBudget>();
    memory->limit = budget_bytes;
  }
  QueryExecEnv env = MakeEnv(options, priority, memory);
  Result<QueryResult> result = lease.prepared.ExecuteWith(options, env);
  Release(admission);
  plan_cache_.Release(std::move(lease));
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (result.ok()) {
      ++stats_.queries_succeeded;
    } else {
      ++stats_.queries_failed;
    }
  }
  return result;
}

ServerStats Server::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ServerStats out = stats_;
  out.running = running_;
  out.pending = admit_queue_.size() + submit_queue_.size();
  out.plan_cache = plan_cache_.stats();
  return out;
}

}  // namespace bypass
