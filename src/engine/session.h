// Session: one client's endpoint onto a Server (DESIGN.md §10). Sessions
// are cheap handles — all heavy state (pool, admission, plan cache)
// lives in the Server — carrying the client's base priority and simple
// submission counters. Obtain one via Server::Connect; it must not
// outlive its Server.
//
//   session->Query(sql, opts)   synchronous: admission wait + execution
//                               on the calling thread.
//   session->Submit(sql, opts)  asynchronous: returns a QueryHandle to
//                               Poll/Wait while a server dispatcher runs
//                               the query.
//   session->Prepare(sql, opts) client-held prepared handle (bypasses
//                               the plan cache — the client *is* the
//                               cache for handles it keeps).
//
// A query's effective scheduling priority is the session's priority plus
// QueryOptions::priority, so a session can be globally deprioritized
// (e.g. a batch-report client at -10) while individual queries still
// nudge themselves up or down.
#ifndef BYPASSDB_ENGINE_SESSION_H_
#define BYPASSDB_ENGINE_SESSION_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "engine/server.h"

namespace bypass {

class Session {
 public:
  /// Use Server::Connect instead of constructing directly.
  Session(Server* server, int priority)
      : server_(server), priority_(priority) {}
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Runs one SELECT synchronously under this session's priority:
  /// blocks through admission when the server is saturated, executes on
  /// the calling thread against the shared pool.
  Result<QueryResult> Query(const std::string& sql,
                            const QueryOptions& options = QueryOptions());

  /// Submits one SELECT for asynchronous execution; never blocks. The
  /// returned handle reports ResourceExhausted when the server's
  /// pending queue was full (backpressure) — check Wait's status.
  QueryHandle Submit(std::string sql,
                     QueryOptions options = QueryOptions());

  /// Prepares a client-held handle (see PreparedQuery). Not routed
  /// through the plan cache: the client keeps and reuses the handle.
  Result<PreparedQuery> Prepare(
      const std::string& sql,
      const QueryOptions& options = QueryOptions());

  Server* server() { return server_; }
  /// Base priority added to every query's QueryOptions::priority.
  int priority() const {
    return priority_.load(std::memory_order_relaxed);
  }
  void set_priority(int p) {
    priority_.store(p, std::memory_order_relaxed);
  }
  /// Queries issued through this session (sync + async).
  uint64_t queries_issued() const {
    return queries_issued_.load(std::memory_order_relaxed);
  }

 private:
  int EffectivePriority(const QueryOptions& options) const {
    return priority() + options.priority;
  }

  Server* const server_;
  std::atomic<int> priority_;
  std::atomic<uint64_t> queries_issued_{0};
};

}  // namespace bypass

#endif  // BYPASSDB_ENGINE_SESSION_H_
