// Server: the shared-scheduler serving layer (DESIGN.md §10). One Server
// multiplexes many concurrent queries over a single morsel-driven
// WorkerPool instead of giving each query a private pool:
//
//   client sessions ──▶ admission control ──▶ shared WorkerPool
//         │                    │                    ▲
//         │                    ├── memory budgets ──┘ (ExecContext hooks)
//         └── Submit/Query ────┴── plan cache (engine/plan_cache.h)
//
// Admission bounds how many queries execute at once
// (max_concurrent_queries) and how many bytes their buffering operators
// may retain in aggregate (memory_budget_bytes); waiters queue in
// priority order and are rejected with ResourceExhausted beyond
// max_pending_queries — backpressure instead of unbounded queueing.
// Admitted queries run their parallel scans as task groups on the shared
// pool, where TaskGroupOptions carries the same priority so the pool's
// workers prefer urgent queries (exec/worker_pool.h).
//
// Clients talk to a Server through Session handles (engine/session.h):
// synchronous Query on the caller's thread, or asynchronous Submit
// returning a QueryHandle polled/awaited by the client while dispatcher
// threads (bounded by max_concurrent_queries) drain the submission
// queue. Database::Query/Prepare remain thin wrappers over an embedded
// Server with compatibility defaults, so standalone library use is
// unchanged while every query flows through one scheduler.
#ifndef BYPASSDB_ENGINE_SERVER_H_
#define BYPASSDB_ENGINE_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "engine/plan_cache.h"

namespace bypass {

class Session;

struct ServerOptions {
  /// Workers in the shared pool (driver threads included). 0 = elastic:
  /// start serial and grow to each query's num_threads on demand — the
  /// embedded compatibility default, preserving "ask for N, get N".
  /// Fixed (> 0) pools never grow; queries asking for more threads are
  /// capped at the pool size.
  int num_workers = 0;
  /// Queries executing at once; later arrivals wait (priority order).
  int max_concurrent_queries = 8;
  /// Waiting queries beyond this are rejected with ResourceExhausted
  /// instead of queueing without bound.
  size_t max_pending_queries = 256;
  /// Aggregate memory reservation across admitted queries; a query whose
  /// budget does not fit waits like a slot-less query. 0 = unlimited.
  size_t memory_budget_bytes = 0;
  /// Budget handed to queries that do not set
  /// QueryOptions::memory_budget_bytes. 0 = such queries run unbudgeted.
  size_t default_query_memory_bytes = 0;
  /// Distinct plans kept in the plan cache; 0 disables caching (the
  /// embedded compatibility default — caching changes no results but
  /// skips re-planning, which some tests time or count).
  size_t plan_cache_entries = 0;
};

struct ServerStats {
  uint64_t queries_started = 0;    ///< admitted and executed
  uint64_t queries_succeeded = 0;
  uint64_t queries_failed = 0;     ///< executed but returned an error
  uint64_t queries_rejected = 0;   ///< bounced by admission backpressure
  uint64_t admission_waits = 0;    ///< admissions that had to block
  int running = 0;                 ///< currently executing
  size_t pending = 0;              ///< waiting in admission or queue
  PlanCacheStats plan_cache;
};

/// Client-side handle to one asynchronously submitted query. Cheap to
/// copy (shared state); valid() is false only for default-constructed
/// handles. Outliving the Server is safe: shutdown fails every
/// unfinished submission before the Server returns from its destructor.
class QueryHandle {
 public:
  QueryHandle() = default;

  bool valid() const { return state_ != nullptr; }
  /// True once the result (or error) is available; never blocks.
  bool Poll() const;
  /// Blocks until done, then hands out the result. Each handle's result
  /// can be taken once; later Wait calls on the same query return
  /// InvalidArgument.
  Result<QueryResult> Wait();
  /// Poll with a deadline: true when done within `timeout`.
  bool WaitFor(std::chrono::milliseconds timeout) const;
  /// Best-effort: a query still waiting in the submission queue fails
  /// with ResourceExhausted("cancelled") instead of running; an already
  /// executing query is not interrupted.
  void Cancel();

 private:
  friend class Server;
  struct State;
  explicit QueryHandle(std::shared_ptr<State> state)
      : state_(std::move(state)) {}
  std::shared_ptr<State> state_;
};

class Server {
 public:
  /// Serves queries against `db` (not owned; must outlive the Server).
  explicit Server(Database* db, ServerOptions options = {});
  /// Drains: waits for executing queries, fails queued ones, joins the
  /// dispatcher threads and the pool.
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Opens a client session. Sessions are independent submission
  /// endpoints sharing this server's pool, admission, and plan cache;
  /// they must not outlive the Server.
  std::shared_ptr<Session> Connect(int priority = 0);

  /// Synchronous execution on the caller's thread: admission wait →
  /// plan-cache acquire → run on the shared pool. `priority` orders both
  /// the admission queue and the query's task groups on the pool.
  Result<QueryResult> Execute(const std::string& sql,
                              const QueryOptions& options, int priority);

  /// Asynchronous submission: enqueues and returns immediately; a
  /// dispatcher thread executes the query at `priority` order. Fails
  /// the handle with ResourceExhausted when the queue is full.
  QueryHandle Submit(std::string sql, QueryOptions options, int priority);

  Database* database() { return db_; }
  WorkerPool* pool() { return &pool_; }
  const ServerOptions& options() const { return options_; }
  ServerStats stats() const;

 private:
  friend class Database;

  /// One admission: a slot under max_concurrent_queries plus a memory
  /// reservation under memory_budget_bytes.
  struct Admission {
    int64_t reserved_bytes = 0;
    bool admitted = false;
  };

  /// Blocks until a slot (and the reservation) is available, honouring
  /// priority order among waiters; rejects with ResourceExhausted when
  /// the wait queue is full or the server is shutting down.
  Status Admit(Admission* admission, int priority, int64_t bytes);
  void Release(const Admission& admission);

  /// The full query path shared by Execute and the dispatchers;
  /// admission must not yet be held.
  Result<QueryResult> RunQuery(const std::string& sql,
                               const QueryOptions& options, int priority);

  /// Per-query env on the shared pool (pool growth for elastic servers,
  /// slots/task-group bounds, memory budget wiring).
  QueryExecEnv MakeEnv(const QueryOptions& options, int priority,
                       const SharedMemoryBudget& memory);

  void DispatcherLoop();
  /// Lazily adds a dispatcher thread when queued work outnumbers idle
  /// dispatchers (bounded by max_concurrent_queries). Caller holds mu_.
  void MaybeSpawnDispatcherLocked();

  Database* const db_;
  const ServerOptions options_;
  WorkerPool pool_;
  PlanCache plan_cache_;

  mutable std::mutex mu_;
  std::condition_variable admit_cv_;     // admission waiters
  std::condition_variable dispatch_cv_;  // dispatcher wakeups
  bool shutdown_ = false;
  int running_ = 0;
  int64_t reserved_bytes_ = 0;
  /// Priority-ordered admission wait queue: tickets identify waiters so
  /// the highest-priority one proceeds first (FIFO within a priority).
  struct Waiter {
    int priority;
    uint64_t seq;
  };
  std::vector<Waiter> admit_queue_;
  uint64_t admit_seq_ = 0;

  std::deque<std::shared_ptr<QueryHandle::State>> submit_queue_;
  std::vector<std::thread> dispatchers_;
  int idle_dispatchers_ = 0;

  ServerStats stats_;
};

}  // namespace bypass

#endif  // BYPASSDB_ENGINE_SERVER_H_
