// PlanCache: the serving layer's prepared-plan reuse (DESIGN.md §10).
// Entries are keyed on normalized SQL text plus a fingerprint of the
// plan-shape options — two clients asking for the same query under
// different strategies get different plans, while whitespace and
// execution-knob differences (threads, batch size, timeout) share one.
//
// Each entry holds a small pool of *idle* PreparedQuery handles. A hit
// leases one handle out of the pool — PreparedQuery is deliberately
// non-reentrant, so concurrent identical queries each lease their own
// handle (a burst of N identical queries keeps at most
// kMaxIdleHandlesPerEntry + in-flight handles alive). Releasing a lease
// returns the handle for reuse unless the entry was evicted meanwhile.
//
// Invalidation reuses the PreparedQuery staleness machinery: entries
// whose statistics moved are swept out by EvictStale (cheap epoch check
// first), and a leased handle that slipped past a sweep still self-heals
// through ReplanIfStale on execution. Capacity is a hard LRU bound
// (PlanCacheOptions::max_entries) so ANALYZE churn or ad-hoc query storms
// cannot grow the cache without limit.
#ifndef BYPASSDB_ENGINE_PLAN_CACHE_H_
#define BYPASSDB_ENGINE_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "engine/database.h"

namespace bypass {

struct PlanCacheOptions {
  /// Hard bound on distinct cached (sql, shape) keys; least recently
  /// used entries are evicted beyond it. 0 disables caching entirely.
  size_t max_entries = 128;
};

struct PlanCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  /// Entries dropped by the LRU capacity bound.
  uint64_t capacity_evictions = 0;
  /// Entries dropped because their statistics went stale.
  uint64_t stale_evictions = 0;
  size_t entries = 0;  ///< current distinct keys

  double hit_rate() const {
    const uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) /
                                  static_cast<double>(total);
  }
};

/// Cache key for one plan: normalized SQL + plan-shape fingerprint.
std::string PlanCacheKey(const std::string& sql,
                         const QueryOptions& options);

class PlanCache {
 public:
  explicit PlanCache(PlanCacheOptions options) : options_(options) {}
  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// A leased prepared handle. Move-only; must be handed back via
  /// Release (the serving layer does this after execution) — dropping a
  /// lease without releasing simply forfeits the handle, it does not
  /// corrupt the cache.
  struct Lease {
    PreparedQuery prepared;
    std::string key;
    bool from_cache = false;  ///< hit (true) or freshly prepared
  };

  /// Returns a prepared handle for (sql, options): an idle cached handle
  /// when one exists (hit), otherwise prepares through `db` (miss) —
  /// planning happens outside the cache lock, so concurrent misses on
  /// the same key plan independently and both handles join the pool on
  /// release. With max_entries == 0 every call is a plain Prepare.
  Result<Lease> Acquire(Database* db, const std::string& sql,
                        const QueryOptions& options);

  /// Returns a leased handle to its entry's idle pool for reuse. No-op
  /// (handle destroyed) when the entry was evicted while leased, when
  /// the pool is already full, or when the handle went stale.
  void Release(Lease lease);

  /// Evicts every entry whose referenced tables' statistics changed.
  /// Cheap when nothing moved: a catalog-epoch comparison short-circuits
  /// the per-entry staleness checks. Called by the server on its query
  /// path after ANALYZE activity.
  void EvictStale(const Catalog* catalog);

  PlanCacheStats stats() const;
  size_t size() const;

 private:
  /// Idle handles retained per entry; bounds memory under bursts of
  /// concurrent identical queries.
  static constexpr size_t kMaxIdleHandlesPerEntry = 4;

  struct Entry {
    std::vector<PreparedQuery> idle;
    /// Position in lru_ (front = most recently used).
    std::list<std::string>::iterator lru_pos;
  };

  /// Removes `it`'s entry from map + LRU list. Caller holds mu_.
  void EvictLocked(std::unordered_map<std::string, Entry>::iterator it);

  const PlanCacheOptions options_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, Entry> entries_;
  std::list<std::string> lru_;  ///< keys, most recently used first
  /// Catalog epoch at the last EvictStale sweep; equal epoch = no-op.
  uint64_t swept_epoch_ = 0;
  PlanCacheStats stats_;
};

}  // namespace bypass

#endif  // BYPASSDB_ENGINE_PLAN_CACHE_H_
