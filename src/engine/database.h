// Database: the library's top-level facade. Owns the catalog and drives
// parse → translate → (unnest) → lower → execute. Plan-shape strategies
// (canonical, canonical-memo, unnested, ...) are selected through
// QueryOptions / ExecutionStrategy — see engine/query_options.h.
//
// Two entry points:
//   Query(sql, options)    one-shot: prepare + execute.
//   Prepare(sql, options)  parse/optimize/lower once, Execute() many
//                          times — each run may vary the execution knobs
//                          (threads, batch size, timeout).
#ifndef BYPASSDB_ENGINE_DATABASE_H_
#define BYPASSDB_ENGINE_DATABASE_H_

#include <chrono>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"
#include "engine/query_options.h"
#include "exec/exec_context.h"
#include "exec/executor.h"
#include "exec/worker_pool.h"
#include "rewrite/unnest.h"
#include "types/row.h"
#include "types/schema.h"

namespace bypass {

class Database;

/// A parsed, optimized, and lowered SELECT, ready to run repeatedly.
/// Movable, not copyable; must not outlive its Database, and runs are not
/// reentrant (one Execute at a time per PreparedQuery). Plan-shape
/// options are baked in at Prepare time; each Execute may override the
/// execution knobs (num_threads, morsel_size, batch_size, timeout,
/// collect_plans).
class PreparedQuery {
 public:
  PreparedQuery(PreparedQuery&&) = default;
  PreparedQuery& operator=(PreparedQuery&&) = default;
  PreparedQuery(const PreparedQuery&) = delete;
  PreparedQuery& operator=(const PreparedQuery&) = delete;

  /// Runs with the options given at Prepare time.
  Result<QueryResult> Execute();
  /// Runs with `run_options`' execution knobs. Plan-shape knobs (unnest,
  /// memoize_subqueries, ...) are ignored here — the plan is fixed.
  Result<QueryResult> Execute(const QueryOptions& run_options);

  const Schema& output_schema() const { return plan_.output_schema; }
  const QueryOptions& options() const { return options_; }
  const std::vector<std::string>& applied_rules() const {
    return applied_rules_;
  }
  /// Plan strings; empty when prepared with collect_plans=false.
  const std::string& canonical_plan() const { return canonical_plan_; }
  const std::string& optimized_plan() const { return optimized_plan_; }
  std::string physical_plan() const { return plan_.ToString(); }
  /// Time spent in parse/rewrite/lower during Prepare.
  std::chrono::steady_clock::duration optimize_time() const {
    return optimize_time_;
  }

 private:
  friend class Database;
  PreparedQuery() = default;

  Database* db_ = nullptr;
  QueryOptions options_;
  PhysicalPlan plan_;
  std::vector<std::string> applied_rules_;
  std::string canonical_plan_;
  std::string optimized_plan_;
  std::chrono::steady_clock::duration optimize_time_{};
};

class Database {
 public:
  Database() = default;
  ~Database();
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  Catalog* catalog() { return &catalog_; }
  const Catalog* catalog() const { return &catalog_; }

  /// DDL convenience: creates a table with the given columns.
  Result<Table*> CreateTable(const std::string& name, Schema schema);

  /// Runs one SELECT statement (Prepare + Execute).
  Result<QueryResult> Query(const std::string& sql,
                            const QueryOptions& options = QueryOptions());

  /// Parses, optimizes, and lowers once; the returned handle executes
  /// many times without re-planning (subquery memo caches are cleared
  /// between runs, so repetitions are independent).
  Result<PreparedQuery> Prepare(
      const std::string& sql,
      const QueryOptions& options = QueryOptions());

  /// Multi-line EXPLAIN-style report: classification, canonical and
  /// rewritten logical plans, applied equivalences, physical plan.
  Result<std::string> Explain(const std::string& sql,
                              const QueryOptions& options = QueryOptions());

 private:
  friend class PreparedQuery;

  /// Lazily (re)builds the shared worker pool so it has exactly
  /// `num_threads` workers.
  WorkerPool* EnsurePool(int num_threads);

  Catalog catalog_;
  std::unique_ptr<WorkerPool> pool_;
};

}  // namespace bypass

#endif  // BYPASSDB_ENGINE_DATABASE_H_
