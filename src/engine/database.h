// Database: the library's top-level facade. Owns the catalog and drives
// parse → translate → (unnest) → lower → execute. Plan-shape strategies
// (canonical, canonical-memo, unnested, ...) are selected through
// QueryOptions / ExecutionStrategy — see engine/query_options.h.
//
// Two entry points:
//   Query(sql, options)    one-shot: prepare + execute.
//   Prepare(sql, options)  parse/optimize/lower once, Execute() many
//                          times — each run may vary the execution knobs
//                          (threads, batch size, timeout).
#ifndef BYPASSDB_ENGINE_DATABASE_H_
#define BYPASSDB_ENGINE_DATABASE_H_

#include <chrono>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"
#include "engine/query_options.h"
#include "exec/exec_context.h"
#include "exec/executor.h"
#include "exec/worker_pool.h"
#include "rewrite/unnest.h"
#include "stats/analyzer.h"
#include "types/row.h"
#include "types/schema.h"

namespace bypass {

class Database;

/// What ANALYZE did for one table.
struct AnalyzeReport {
  std::string table;
  int64_t row_count = 0;
  std::chrono::steady_clock::duration analyze_time{};
  std::string summary;  ///< human-readable per-column statistics
};

/// A parsed, optimized, and lowered SELECT, ready to run repeatedly.
/// Movable, not copyable; must not outlive its Database, and runs are not
/// reentrant (one Execute at a time per PreparedQuery). Plan-shape
/// options are baked in at Prepare time; each Execute may override the
/// execution knobs (num_threads, morsel_size, batch_size, timeout,
/// collect_plans). If ANALYZE refreshes statistics for a table the plan
/// references, the next Execute transparently re-plans against the new
/// statistics (cheap epoch check when nothing changed).
class PreparedQuery {
 public:
  PreparedQuery(PreparedQuery&&) = default;
  PreparedQuery& operator=(PreparedQuery&&) = default;
  PreparedQuery(const PreparedQuery&) = delete;
  PreparedQuery& operator=(const PreparedQuery&) = delete;

  /// Runs with the options given at Prepare time.
  Result<QueryResult> Execute();
  /// Runs with `run_options`' execution knobs. Plan-shape knobs (unnest,
  /// memoize_subqueries, ...) are ignored here — the plan is fixed.
  Result<QueryResult> Execute(const QueryOptions& run_options);

  const Schema& output_schema() const { return plan_.output_schema; }
  const QueryOptions& options() const { return options_; }
  const std::vector<std::string>& applied_rules() const {
    return applied_rules_;
  }
  /// Plan strings; empty when prepared with collect_plans=false.
  const std::string& canonical_plan() const { return canonical_plan_; }
  const std::string& optimized_plan() const { return optimized_plan_; }
  std::string physical_plan() const { return plan_.ToString(); }
  /// Time spent in parse/rewrite/lower during Prepare.
  std::chrono::steady_clock::duration optimize_time() const {
    return optimize_time_;
  }
  /// How many times stale statistics forced a re-plan (testing aid).
  int replan_count() const { return replan_count_; }

 private:
  friend class Database;
  PreparedQuery() = default;

  /// Re-plans through Database::Prepare when the catalog's statistics
  /// changed for a table this plan references.
  Status ReplanIfStale();

  Database* db_ = nullptr;
  QueryOptions options_;
  PhysicalPlan plan_;
  std::vector<std::string> applied_rules_;
  std::string canonical_plan_;
  std::string optimized_plan_;
  std::chrono::steady_clock::duration optimize_time_{};
  std::string sql_;
  /// Catalog-wide statistics epoch observed at Prepare time; a cheap
  /// mismatch check gates the per-table version comparison below.
  uint64_t stats_epoch_ = 0;
  std::vector<std::pair<std::string, uint64_t>> table_stats_versions_;
  int replan_count_ = 0;
};

class Database {
 public:
  Database() = default;
  ~Database();
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  Catalog* catalog() { return &catalog_; }
  const Catalog* catalog() const { return &catalog_; }

  /// DDL convenience: creates a table with the given columns.
  Result<Table*> CreateTable(const std::string& name, Schema schema);

  /// ANALYZE: one streaming pass over the table builds row count, per
  /// column null fraction, min/max, HyperLogLog distinct estimate and an
  /// equi-depth histogram, then publishes them in the catalog (bumping
  /// the statistics epoch, which invalidates prepared queries that
  /// reference the table).
  Result<AnalyzeReport> Analyze(const std::string& table_name,
                                const AnalyzeOptions& options = {});

  /// ANALYZE for every table in the catalog.
  Result<std::vector<AnalyzeReport>> AnalyzeAll(
      const AnalyzeOptions& options = {});

  /// Runs one SELECT statement (Prepare + Execute).
  Result<QueryResult> Query(const std::string& sql,
                            const QueryOptions& options = QueryOptions());

  /// Parses, optimizes, and lowers once; the returned handle executes
  /// many times without re-planning (subquery memo caches are cleared
  /// between runs, so repetitions are independent).
  Result<PreparedQuery> Prepare(
      const std::string& sql,
      const QueryOptions& options = QueryOptions());

  /// Multi-line EXPLAIN-style report: classification, canonical and
  /// rewritten logical plans, applied equivalences, physical plan.
  Result<std::string> Explain(const std::string& sql,
                              const QueryOptions& options = QueryOptions());

 private:
  friend class PreparedQuery;

  /// Lazily (re)builds the shared worker pool so it has exactly
  /// `num_threads` workers.
  WorkerPool* EnsurePool(int num_threads);

  Catalog catalog_;
  std::unique_ptr<WorkerPool> pool_;
};

}  // namespace bypass

#endif  // BYPASSDB_ENGINE_DATABASE_H_
