// Database: the library's top-level facade. Owns the catalog and drives
// parse → translate → (unnest) → lower → execute, with per-query knobs
// that reproduce every evaluation strategy in the paper's study:
//
//   canonical               unnest=false (nested-loop subqueries)
//   canonical, no shortcut  + shortcut_disjunctions=false (S1/S3-like)
//   canonical-memo          + memoize_subqueries=true (S2-like)
//   unnested                unnest=true (the paper's bypass plans)
#ifndef BYPASSDB_ENGINE_DATABASE_H_
#define BYPASSDB_ENGINE_DATABASE_H_

#include <chrono>
#include <optional>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"
#include "exec/exec_context.h"
#include "rewrite/unnest.h"
#include "types/row.h"
#include "types/schema.h"

namespace bypass {

struct QueryOptions {
  /// Apply the paper's unnesting equivalences.
  bool unnest = true;
  /// With `unnest`, keep the canonical plan anyway when the cost model
  /// estimates it cheaper (paper Sec. 1: "some unnesting strategies do
  /// not always result in better plans" — e.g. Eqv. 5's quadratic pair
  /// stream on queries whose canonical evaluation is also quadratic).
  bool cost_based = false;
  /// Memoize correlated subquery results by correlation values.
  bool memoize_subqueries = false;
  /// When false, disjunctions are reordered so nested blocks are
  /// evaluated first — simulating an optimizer that does not short-cut
  /// ORs (the worst commercial behaviour observed in the paper).
  bool shortcut_disjunctions = true;
  /// Abort the execution after this long (paper: six hours → "n/a").
  std::optional<std::chrono::milliseconds> timeout;
  /// Fine-grained rewriter knobs (enable_unnesting is overridden by
  /// `unnest` above).
  RewriteOptions rewrite;
  /// Record plan strings in the result (small cost; on by default).
  bool collect_plans = true;
  /// Rows per batch flowing between physical operators. 1 degenerates to
  /// row-at-a-time execution (useful as a differential-testing oracle).
  size_t batch_size = kDefaultBatchSize;
};

struct QueryResult {
  Schema schema;
  std::vector<Row> rows;
  ExecStats stats;
  /// Wall-clock execution time (excludes parse/optimize).
  double execution_seconds = 0;
  double optimize_seconds = 0;
  std::string canonical_plan;   ///< logical plan before unnesting
  std::string optimized_plan;   ///< logical plan after unnesting
  std::string physical_plan;
  std::string operator_stats;   ///< per-operator emitted-row accounting
  std::vector<std::string> applied_rules;  ///< e.g. {"Eqv.2", "Eqv.1"}
};

class Database {
 public:
  Database() = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  Catalog* catalog() { return &catalog_; }
  const Catalog* catalog() const { return &catalog_; }

  /// DDL convenience: creates a table with the given columns.
  Result<Table*> CreateTable(const std::string& name, Schema schema);

  /// Runs one SELECT statement.
  Result<QueryResult> Query(const std::string& sql,
                            const QueryOptions& options = QueryOptions());

  /// Multi-line EXPLAIN-style report: classification, canonical and
  /// rewritten logical plans, applied equivalences, physical plan.
  Result<std::string> Explain(const std::string& sql,
                              const QueryOptions& options = QueryOptions());

 private:
  Catalog catalog_;
};

}  // namespace bypass

#endif  // BYPASSDB_ENGINE_DATABASE_H_
