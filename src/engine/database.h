// Database: the library's top-level facade. Owns the catalog and drives
// parse → translate → (unnest) → lower → execute. Plan-shape strategies
// (canonical, canonical-memo, unnested, ...) are selected through
// QueryOptions / ExecutionStrategy — see engine/query_options.h.
//
// Two entry points:
//   Query(sql, options)    one-shot: prepare + execute.
//   Prepare(sql, options)  parse/optimize/lower once, Execute() many
//                          times — each run may vary the execution knobs
//                          (threads, batch size, timeout).
//
// Both are thin wrappers over a lazily created embedded Server (see
// engine/server.h): every query — including these compatibility entry
// points — executes through the same admission control and shared worker
// pool that concurrent Sessions use. For multi-client serving (async
// submission, plan cache, priorities, memory budgets) open sessions via
// Database::server()->Connect().
#ifndef BYPASSDB_ENGINE_DATABASE_H_
#define BYPASSDB_ENGINE_DATABASE_H_

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"
#include "engine/query_options.h"
#include "exec/exec_context.h"
#include "exec/executor.h"
#include "exec/worker_pool.h"
#include "rewrite/unnest.h"
#include "stats/analyzer.h"
#include "types/row.h"
#include "types/schema.h"

namespace bypass {

class Database;
class Server;
class Session;
struct ServerOptions;

/// Everything a PreparedQuery execution needs from its surroundings:
/// which pool drives parallel scans, how its task groups are scheduled
/// against other queries on that pool, and which memory budget buffering
/// operators charge. Standalone Execute() builds a default env from the
/// run options; the serving layer (engine/server.h) builds one per
/// admitted query from the shared pool and the server's budgets.
struct QueryExecEnv {
  /// Pool for morsel-parallel scans; nullptr = serial execution on the
  /// calling thread regardless of num_threads.
  WorkerPool* pool = nullptr;
  /// Per-worker operator-state slots to allocate; must be an upper bound
  /// on every worker id that can touch this query (pool size at admission
  /// time for shared pools). sched.max_worker_id must not exceed it.
  int num_worker_slots = 1;
  /// Priority / intra-query worker cap / worker-id bound for this
  /// query's ParallelFor rounds on a shared pool.
  TaskGroupOptions sched;
  /// Memory budget charged by buffering operators; nullptr = unbudgeted.
  SharedMemoryBudget memory;
};

/// What ANALYZE did for one table.
struct AnalyzeReport {
  std::string table;
  int64_t row_count = 0;
  std::chrono::steady_clock::duration analyze_time{};
  std::string summary;  ///< human-readable per-column statistics
};

/// A parsed, optimized, and lowered SELECT, ready to run repeatedly.
/// Movable, not copyable; must not outlive its Database, and runs are not
/// reentrant: the plan's operators are shared mutable state, so a second
/// Execute while one is in flight fails loudly with InvalidArgument
/// instead of racing. Callers that want concurrency prepare one handle
/// per thread or go through the serving layer's plan cache, which pools
/// idle handles (engine/plan_cache.h). Plan-shape options are baked in at
/// Prepare time; each Execute may override the execution knobs
/// (num_threads, morsel_size, batch_size, timeout, collect_plans). If
/// ANALYZE refreshes statistics for a table the plan references, the next
/// Execute transparently re-plans against the new statistics (cheap epoch
/// check when nothing changed).
class PreparedQuery {
 public:
  /// An empty handle (no plan); Execute on it fails with
  /// InvalidArgument. Assign from Database::Prepare to fill it — lets
  /// containers and lease types hold handles by value.
  PreparedQuery() = default;
  PreparedQuery(PreparedQuery&&) = default;
  PreparedQuery& operator=(PreparedQuery&&) = default;
  PreparedQuery(const PreparedQuery&) = delete;
  PreparedQuery& operator=(const PreparedQuery&) = delete;

  /// Runs with the options given at Prepare time.
  Result<QueryResult> Execute();
  /// Runs with `run_options`' execution knobs. Plan-shape knobs (unnest,
  /// memoize_subqueries, ...) are ignored here — the plan is fixed.
  Result<QueryResult> Execute(const QueryOptions& run_options);
  /// Advanced entry point: runs under an externally provided pool,
  /// scheduler parameters, and memory budget — how the serving layer
  /// executes admitted queries on the shared pool. `env.num_worker_slots`
  /// must bound every worker id the env's pool may assign.
  Result<QueryResult> ExecuteWith(const QueryOptions& run_options,
                                  const QueryExecEnv& env);
  /// True when the catalog's statistics moved for a table this plan
  /// reads (the next Execute would re-plan). Used by the plan cache to
  /// evict stale entries without executing them.
  bool IsStale() const;

  const Schema& output_schema() const { return plan_.output_schema; }
  const QueryOptions& options() const { return options_; }
  const std::vector<std::string>& applied_rules() const {
    return applied_rules_;
  }
  /// Plan strings; empty when prepared with collect_plans=false.
  const std::string& canonical_plan() const { return canonical_plan_; }
  const std::string& optimized_plan() const { return optimized_plan_; }
  std::string physical_plan() const { return plan_.ToString(); }
  /// Time spent in parse/rewrite/lower during Prepare.
  std::chrono::steady_clock::duration optimize_time() const {
    return optimize_time_;
  }
  /// How many times stale statistics forced a re-plan (testing aid).
  int replan_count() const { return replan_count_; }

 private:
  friend class Database;

  /// Re-plans through Database::Prepare when the catalog's statistics
  /// changed for a table this plan references.
  Status ReplanIfStale();

  Database* db_ = nullptr;
  QueryOptions options_;
  PhysicalPlan plan_;
  std::vector<std::string> applied_rules_;
  std::string canonical_plan_;
  std::string optimized_plan_;
  std::chrono::steady_clock::duration optimize_time_{};
  std::string sql_;
  /// Catalog-wide statistics epoch observed at Prepare time; a cheap
  /// mismatch check gates the per-table version comparison below.
  uint64_t stats_epoch_ = 0;
  std::vector<std::pair<std::string, uint64_t>> table_stats_versions_;
  int replan_count_ = 0;
  /// Non-reentrancy guard: set for the duration of ExecuteWith. On the
  /// heap (not inline) because atomics are not movable and the handle is;
  /// shared so an in-flight run keeps the flag alive across moves.
  std::shared_ptr<std::atomic<bool>> in_flight_ =
      std::make_shared<std::atomic<bool>>(false);
};

class Database {
 public:
  Database();  // out of line: members need the complete Server type
  ~Database();
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  Catalog* catalog() { return &catalog_; }
  const Catalog* catalog() const { return &catalog_; }

  /// DDL convenience: creates a table with the given columns.
  Result<Table*> CreateTable(const std::string& name, Schema schema);

  /// ANALYZE: one streaming pass over the table builds row count, per
  /// column null fraction, min/max, HyperLogLog distinct estimate and an
  /// equi-depth histogram, then publishes them in the catalog (bumping
  /// the statistics epoch, which invalidates prepared queries that
  /// reference the table).
  Result<AnalyzeReport> Analyze(const std::string& table_name,
                                const AnalyzeOptions& options = {});

  /// ANALYZE for every table in the catalog.
  Result<std::vector<AnalyzeReport>> AnalyzeAll(
      const AnalyzeOptions& options = {});

  /// Runs one SELECT statement (Prepare + Execute).
  Result<QueryResult> Query(const std::string& sql,
                            const QueryOptions& options = QueryOptions());

  /// Parses, optimizes, and lowers once; the returned handle executes
  /// many times without re-planning (subquery memo caches are cleared
  /// between runs, so repetitions are independent).
  Result<PreparedQuery> Prepare(
      const std::string& sql,
      const QueryOptions& options = QueryOptions());

  /// Multi-line EXPLAIN-style report: classification, canonical and
  /// rewritten logical plans, applied equivalences, physical plan.
  Result<std::string> Explain(const std::string& sql,
                              const QueryOptions& options = QueryOptions());

  /// The embedded server every query of this Database runs through,
  /// created lazily (thread-safe) with compatibility-preserving defaults:
  /// elastic pool, effectively unlimited admission, plan cache off. Open
  /// concurrent client sessions with server()->Connect(). To serve with
  /// tighter admission / budgets / plan caching, construct a dedicated
  /// Server over this database instead (engine/server.h).
  Server* server();

  /// The session behind the compatibility entry points above (priority 0,
  /// direct synchronous execution).
  Session* default_session();

 private:
  friend class PreparedQuery;
  friend class Server;

  /// Grows the embedded server's shared pool to at least `num_threads`
  /// workers and returns it (compatibility shim; historically each
  /// Database owned a private pool rebuilt per thread count).
  WorkerPool* EnsurePool(int num_threads);

  Catalog catalog_;
  std::once_flag server_once_;
  std::unique_ptr<Server> server_;
  std::shared_ptr<Session> default_session_;
};

}  // namespace bypass

#endif  // BYPASSDB_ENGINE_DATABASE_H_
