#include "engine/plan_cache.h"

#include <cctype>
#include <utility>

namespace bypass {

std::string PlanCacheKey(const std::string& sql,
                         const QueryOptions& options) {
  // Normalize the SQL: collapse whitespace runs to one space, trim the
  // ends, drop a trailing ';'. Deliberately *not* case-folded — the
  // parser is case-sensitive for identifiers, so "FROM R" and "FROM r"
  // are different queries.
  std::string key;
  key.reserve(sql.size() + 16);
  bool pending_space = false;
  for (char c : sql) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      pending_space = !key.empty();
      continue;
    }
    if (pending_space) {
      key.push_back(' ');
      pending_space = false;
    }
    key.push_back(c);
  }
  while (!key.empty() && (key.back() == ';' || key.back() == ' ')) {
    key.pop_back();
  }
  // Plan-shape fingerprint: every knob that changes what Prepare builds.
  // Execution knobs (threads, batch size, timeout, columnar) vary per
  // run on the same plan and stay out of the key.
  key.push_back('|');
  key.push_back(options.unnest ? 'u' : '-');
  key.push_back(options.cost_based ? 'c' : '-');
  key.push_back(options.memoize_subqueries ? 'm' : '-');
  key.push_back(options.shortcut_disjunctions ? 's' : '-');
  key.push_back(options.collect_plans ? 'p' : '-');
  const RewriteOptions& r = options.rewrite;
  key.push_back(r.enable_quantified ? 'q' : '-');
  key.push_back(r.use_tagged_partition ? 't' : '-');
  key.push_back(static_cast<char>('0' + static_cast<int>(r.disjunct_order)));
  key += std::to_string(static_cast<int64_t>(r.subquery_cost));
  return key;
}

Result<PlanCache::Lease> PlanCache::Acquire(Database* db,
                                            const std::string& sql,
                                            const QueryOptions& options) {
  if (options_.max_entries == 0) {
    Lease lease;
    BYPASS_ASSIGN_OR_RETURN(lease.prepared, db->Prepare(sql, options));
    return lease;
  }
  std::string key = PlanCacheKey(sql, options);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it != entries_.end() && !it->second.idle.empty()) {
      Lease lease;
      lease.prepared = std::move(it->second.idle.back());
      it->second.idle.pop_back();
      lease.key = std::move(key);
      lease.from_cache = true;
      ++stats_.hits;
      lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
      return lease;
    }
    // A present-but-drained entry (all handles leased) counts as a miss:
    // the extra handle prepared below joins the pool on release.
    ++stats_.misses;
  }
  Lease lease;
  BYPASS_ASSIGN_OR_RETURN(lease.prepared, db->Prepare(sql, options));
  lease.key = std::move(key);
  return lease;
}

void PlanCache::Release(Lease lease) {
  if (options_.max_entries == 0 || lease.key.empty()) return;
  // A handle that went stale mid-lease would re-plan on its next use
  // anyway; dropping it here keeps the idle pools uniformly fresh.
  if (lease.prepared.IsStale()) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(lease.key);
  if (it == entries_.end()) {
    if (entries_.size() >= options_.max_entries) {
      // Evict the least recently used entry to make room.
      auto victim = entries_.find(lru_.back());
      EvictLocked(victim);
      ++stats_.capacity_evictions;
    }
    lru_.push_front(lease.key);
    Entry entry;
    entry.lru_pos = lru_.begin();
    it = entries_.emplace(std::move(lease.key), std::move(entry)).first;
  } else {
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
  }
  if (it->second.idle.size() < kMaxIdleHandlesPerEntry) {
    it->second.idle.push_back(std::move(lease.prepared));
  }
  stats_.entries = entries_.size();
}

void PlanCache::EvictStale(const Catalog* catalog) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t epoch = catalog->stats_epoch();
  if (epoch == swept_epoch_) return;
  swept_epoch_ = epoch;
  for (auto it = entries_.begin(); it != entries_.end();) {
    auto next = std::next(it);
    // Idle pools are uniformly fresh (Release drops stale handles), so
    // one handle's verdict covers the entry. Drained entries have no
    // handle to ask; their leased handles self-heal via ReplanIfStale
    // and Release re-checks on the way back in.
    if (!it->second.idle.empty() && it->second.idle.front().IsStale()) {
      EvictLocked(it);
      ++stats_.stale_evictions;
    }
    it = next;
  }
  stats_.entries = entries_.size();
}

void PlanCache::EvictLocked(
    std::unordered_map<std::string, Entry>::iterator it) {
  lru_.erase(it->second.lru_pos);
  entries_.erase(it);
  stats_.entries = entries_.size();
}

PlanCacheStats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  PlanCacheStats out = stats_;
  out.entries = entries_.size();
  return out;
}

size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace bypass
