// A textbook cardinality/cost model over logical plans. Its purpose here
// is the paper's point that unnesting equivalences should be applied
// cost-based during plan generation (Sec. 1): Eqv. 5's bypass join
// enumerates |R|·|S| pairs, so for some queries the canonical
// nested-loop plan is actually cheaper — the model detects exactly that.
//
// Units are abstract "row touches"; only relative comparisons matter.
#ifndef BYPASSDB_PLANNER_COST_MODEL_H_
#define BYPASSDB_PLANNER_COST_MODEL_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "algebra/logical_op.h"
#include "catalog/catalog.h"

namespace bypass {

struct PlanEstimate {
  double rows = 0;  ///< estimated output cardinality (positive stream)
  double cost = 0;  ///< estimated total work to produce it
  /// Bypass operators only: estimated cardinality of the complement
  /// (negative) stream. Zero elsewhere.
  double neg_rows = 0;
  /// Multiway (k-ported) operators only: per-port output cardinalities,
  /// indexed by StreamPort value. Empty for binary/single-stream nodes.
  /// The operator's cost is attributed to the port-0 edge only.
  std::vector<double> port_rows;
};

/// Estimates a plan bottom-up. Base-table cardinalities come from ANALYZE
/// statistics when present, otherwise from the table's actual row count
/// (noted in `notes` as "no stats"); a nullptr catalog or unknown table
/// falls back to 1000 rows, also noted. Nested subquery blocks inside
/// selection predicates are charged once per input row when correlated —
/// the canonical nested-loop cost — and once in total when uncorrelated.
PlanEstimate EstimatePlan(const LogicalOp& root, const Catalog* catalog,
                          std::vector<std::string>* notes = nullptr);

/// Estimate for one input edge (negative bypass streams carry the
/// complement cardinality).
PlanEstimate EstimateInput(const LogicalInput& input,
                           const Catalog* catalog);

/// Estimates the whole plan and returns the per-node memo (including
/// nodes of nested subquery blocks). The planner uses it to annotate
/// physical operators with expected cardinalities so the runtime can
/// report per-operator q-errors.
std::unordered_map<const LogicalOp*, PlanEstimate> EstimateAllNodes(
    const LogicalOp& root, const Catalog* catalog);

}  // namespace bypass

#endif  // BYPASSDB_PLANNER_COST_MODEL_H_
