// A textbook cardinality/cost model over logical plans. Its purpose here
// is the paper's point that unnesting equivalences should be applied
// cost-based during plan generation (Sec. 1): Eqv. 5's bypass join
// enumerates |R|·|S| pairs, so for some queries the canonical
// nested-loop plan is actually cheaper — the model detects exactly that.
//
// Units are abstract "row touches"; only relative comparisons matter.
#ifndef BYPASSDB_PLANNER_COST_MODEL_H_
#define BYPASSDB_PLANNER_COST_MODEL_H_

#include "algebra/logical_op.h"
#include "catalog/catalog.h"

namespace bypass {

struct PlanEstimate {
  double rows = 0;  ///< estimated output cardinality (positive stream)
  double cost = 0;  ///< estimated total work to produce it
};

/// Estimates a plan bottom-up. `catalog` supplies base-table
/// cardinalities (nullptr: 1000 rows per table). Nested subquery blocks
/// inside selection predicates are charged once per input row when
/// correlated — the canonical nested-loop cost — and once in total when
/// uncorrelated.
PlanEstimate EstimatePlan(const LogicalOp& root, const Catalog* catalog);

/// Estimate for one input edge (negative bypass streams carry the
/// complement cardinality).
PlanEstimate EstimateInput(const LogicalInput& input,
                           const Catalog* catalog);

}  // namespace bypass

#endif  // BYPASSDB_PLANNER_COST_MODEL_H_
