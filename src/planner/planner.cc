#include "planner/planner.h"

#include <algorithm>

#include "algebra/plan_util.h"
#include "common/check.h"
#include "planner/cost_model.h"
#include "exec/bypass_partition.h"
#include "exec/distinct.h"
#include "exec/filter.h"
#include "exec/group_by.h"
#include "exec/join.h"
#include "exec/outer_join.h"
#include "exec/project.h"
#include "exec/semi_join.h"
#include "exec/sort.h"
#include "exec/union_op.h"
#include "expr/expr_util.h"

namespace bypass {

namespace {

/// Equi-join decomposition: conjuncts of the form left_col = right_col
/// become hash keys; everything else is a residual predicate evaluated on
/// the concatenated row.
struct EquiSplit {
  std::vector<int> left_slots;
  std::vector<int> right_slots;
  std::vector<ExprPtr> residual_conjuncts;  // unbound
};

EquiSplit SplitEquiPred(const ExprPtr& pred, const Schema& left,
                        const Schema& right) {
  EquiSplit split;
  for (const ExprPtr& c : SplitConjuncts(pred)) {
    bool handled = false;
    if (c->kind() == ExprKind::kComparison) {
      const auto* cmp = static_cast<const ComparisonExpr*>(c.get());
      if (cmp->op() == CompareOp::kEq &&
          cmp->left()->kind() == ExprKind::kColumnRef &&
          cmp->right()->kind() == ExprKind::kColumnRef) {
        const auto* a =
            static_cast<const ColumnRefExpr*>(cmp->left().get());
        const auto* b =
            static_cast<const ColumnRefExpr*>(cmp->right().get());
        if (!a->is_outer() && !b->is_outer()) {
          auto la = left.FindColumn(a->qualifier(), a->name());
          auto rb = right.FindColumn(b->qualifier(), b->name());
          if (la.ok() && rb.ok()) {
            split.left_slots.push_back(*la);
            split.right_slots.push_back(*rb);
            handled = true;
          } else {
            auto lb = left.FindColumn(b->qualifier(), b->name());
            auto ra = right.FindColumn(a->qualifier(), a->name());
            if (lb.ok() && ra.ok()) {
              split.left_slots.push_back(*lb);
              split.right_slots.push_back(*ra);
              handled = true;
            }
          }
        }
      }
    }
    if (!handled) split.residual_conjuncts.push_back(c);
  }
  return split;
}

}  // namespace

Result<PhysicalPlan> Planner::Lower(const LogicalOpPtr& root) {
  return LowerPlan(root, /*outer_schema=*/nullptr);
}

Result<PhysicalPlan> Planner::LowerPlan(const LogicalOpPtr& root,
                                        const Schema* outer_schema) {
  PhysicalPlan plan;
  std::vector<std::pair<TableScanOp*, ExprPtr>> zone_candidates;
  LoweringCtx ctx{&plan, outer_schema, &zone_candidates};
  std::unordered_map<const LogicalOp*, PhysOp*> memo;
  BYPASS_ASSIGN_OR_RETURN(PhysOp * top, LowerNode(root, &ctx, &memo));
  auto sink = std::make_unique<CollectorSink>();
  plan.sink = sink.get();
  top->AddConsumer(kPortOut, sink.get(), 0);
  plan.ops.push_back(std::move(sink));
  // Zone-map pruning is only sound when every consumer of the scan sees
  // just the predicate's TRUE rows; with all wiring done, that is exactly
  // the scans whose sole consumer is the candidate filter. (A bypass
  // filter never qualifies — its negative port needs the failing rows.)
  for (auto& [scan, pred] : zone_candidates) {
    if (scan->num_consumers(kPortOut) == 1) {
      scan->set_zone_filter(std::move(pred));
    }
  }
  plan.output_schema = root->schema();
  // Annotate each physical operator with its logical node's estimated
  // cardinality so the runtime can report per-operator q-errors.
  const auto estimates = EstimateAllNodes(*root, catalog_);
  for (const auto& [logical, phys] : memo) {
    const auto it = estimates.find(logical);
    if (it == estimates.end()) continue;
    const PlanEstimate& est = it->second;
    if (!est.port_rows.empty()) {
      const int ports = std::min(phys->num_out_ports(),
                                 static_cast<int>(est.port_rows.size()));
      for (int p = 0; p < ports; ++p) {
        phys->set_estimated_rows(p, est.port_rows[static_cast<size_t>(p)]);
      }
      continue;
    }
    phys->set_estimated_rows(kPortOut, est.rows);
    if (phys->num_out_ports() > 1) {
      phys->set_estimated_rows(kPortNegative, est.neg_rows);
    }
  }
  return plan;
}

Status Planner::BindExprInPlace(Expr* expr, const Schema& input,
                                LoweringCtx* ctx) {
  switch (expr->kind()) {
    case ExprKind::kColumnRef: {
      auto* ref = static_cast<ColumnRefExpr*>(expr);
      if (ref->is_outer()) {
        if (ctx->outer_schema == nullptr) {
          return Status::BindError(
              "correlated reference without an enclosing block: " +
              ref->ToString());
        }
        BYPASS_ASSIGN_OR_RETURN(
            int slot,
            ctx->outer_schema->FindColumn(ref->qualifier(), ref->name()));
        ref->set_slot(slot);
      } else {
        BYPASS_ASSIGN_OR_RETURN(
            int slot, input.FindColumn(ref->qualifier(), ref->name()));
        ref->set_slot(slot);
      }
      return Status::OK();
    }
    case ExprKind::kSubquery: {
      auto* sq = static_cast<SubqueryExpr*>(expr);
      if (sq->probe() != nullptr) {
        BYPASS_RETURN_IF_ERROR(
            BindExprInPlace(sq->probe().get(), input, ctx));
      }
      if (sq->plan() == nullptr) {
        return Status::Internal("subquery without a logical plan");
      }
      // The block's free attributes index into *this* operator's input
      // row — that row becomes the subplan's outer row at runtime.
      std::vector<int> free_slots;
      for (const ColumnRefExpr* ref : CollectPlanOuterRefs(*sq->plan())) {
        BYPASS_ASSIGN_OR_RETURN(
            int slot, input.FindColumn(ref->qualifier(), ref->name()));
        free_slots.push_back(slot);
      }
      std::sort(free_slots.begin(), free_slots.end());
      free_slots.erase(
          std::unique(free_slots.begin(), free_slots.end()),
          free_slots.end());
      BYPASS_ASSIGN_OR_RETURN(PhysicalPlan inner_plan,
                              LowerPlan(sq->plan(), &input));
      auto subplan = std::make_shared<ExecSubplan>(
          std::move(inner_plan), std::move(free_slots),
          options_.memoize_subqueries);
      ctx->plan->subplans.push_back(subplan.get());
      sq->set_subplan(std::move(subplan));
      return Status::OK();
    }
    default: {
      for (const ExprPtr& c : expr->children()) {
        BYPASS_RETURN_IF_ERROR(BindExprInPlace(c.get(), input, ctx));
      }
      return Status::OK();
    }
  }
}

Result<ExprPtr> Planner::BindExpr(const ExprPtr& expr, const Schema& input,
                                  LoweringCtx* ctx) {
  ExprPtr bound = expr->Clone();
  BYPASS_RETURN_IF_ERROR(BindExprInPlace(bound.get(), input, ctx));
  return bound;
}

Result<PhysOp*> Planner::LowerNode(
    const LogicalOpPtr& node, LoweringCtx* ctx,
    std::unordered_map<const LogicalOp*, PhysOp*>* memo) {
  const auto it = memo->find(node.get());
  if (it != memo->end()) return it->second;

  // Lower children right-to-left so build sides run before probe sides.
  const auto& inputs = node->inputs();
  std::vector<PhysOp*> children(inputs.size(), nullptr);
  for (size_t i = inputs.size(); i-- > 0;) {
    BYPASS_ASSIGN_OR_RETURN(children[i],
                            LowerNode(inputs[i].op, ctx, memo));
  }
  auto wire = [&](PhysOp* op, int in_port, size_t child_index) {
    children[child_index]->AddConsumer(
        static_cast<int>(inputs[child_index].port), op, in_port);
  };

  PhysOp* result = nullptr;
  switch (node->kind()) {
    case LogicalOpKind::kGet: {
      const auto& get = static_cast<const GetOp&>(*node);
      BYPASS_ASSIGN_OR_RETURN(Table * table,
                              catalog_->GetTable(get.table_name()));
      if (table->schema().num_columns() != get.schema().num_columns()) {
        return Status::Internal("table schema changed under the plan: " +
                                get.table_name());
      }
      auto scan = std::make_unique<TableScanOp>(table);
      TableScanOp* raw = scan.get();
      ctx->plan->ops.push_back(std::move(scan));
      ctx->plan->sources.push_back(raw);
      result = raw;
      break;
    }
    case LogicalOpKind::kSelect: {
      const auto& sel = static_cast<const SelectOp&>(*node);
      BYPASS_ASSIGN_OR_RETURN(
          ExprPtr pred,
          BindExpr(sel.predicate(), inputs[0].op->schema(), ctx));
      // A filter directly over a scan is bound against the table schema,
      // making it a zone-map pruning candidate (installed by the
      // post-wiring pass if the scan gets no other consumer).
      if (auto* scan = dynamic_cast<TableScanOp*>(children[0])) {
        ctx->zone_candidates->emplace_back(scan, pred);
      }
      result = Register(ctx,
                        std::make_unique<FilterOp>(std::move(pred)));
      wire(result, 0, 0);
      break;
    }
    case LogicalOpKind::kBypassSelect: {
      const auto& sel = static_cast<const BypassSelectOp&>(*node);
      BYPASS_ASSIGN_OR_RETURN(
          ExprPtr pred,
          BindExpr(sel.predicate(), inputs[0].op->schema(), ctx));
      result = Register(
          ctx, std::make_unique<BypassFilterOp>(std::move(pred)));
      wire(result, 0, 0);
      break;
    }
    case LogicalOpKind::kProject: {
      const auto& proj = static_cast<const ProjectOp&>(*node);
      std::vector<ExprPtr> exprs;
      for (const NamedExpr& item : proj.items()) {
        BYPASS_ASSIGN_OR_RETURN(
            ExprPtr e, BindExpr(item.expr, inputs[0].op->schema(), ctx));
        exprs.push_back(std::move(e));
      }
      // Identity projections (every input column, in order) forward
      // batches untouched at execution time.
      bool identity =
          exprs.size() == inputs[0].op->schema().num_columns();
      for (size_t i = 0; identity && i < exprs.size(); ++i) {
        const auto* ref = exprs[i]->kind() == ExprKind::kColumnRef
                              ? static_cast<const ColumnRefExpr*>(
                                    exprs[i].get())
                              : nullptr;
        identity = ref != nullptr && !ref->is_outer() &&
                   ref->slot() == static_cast<int>(i);
      }
      result = Register(
          ctx, std::make_unique<ProjectPhysOp>(std::move(exprs),
                                               identity));
      wire(result, 0, 0);
      break;
    }
    case LogicalOpKind::kMap: {
      const auto& map = static_cast<const MapOp&>(*node);
      std::vector<ExprPtr> exprs;
      for (const NamedExpr& item : map.items()) {
        BYPASS_ASSIGN_OR_RETURN(
            ExprPtr e, BindExpr(item.expr, inputs[0].op->schema(), ctx));
        exprs.push_back(std::move(e));
      }
      result =
          Register(ctx, std::make_unique<MapPhysOp>(std::move(exprs)));
      wire(result, 0, 0);
      break;
    }
    case LogicalOpKind::kDistinct: {
      result = Register(ctx, std::make_unique<DistinctPhysOp>());
      wire(result, 0, 0);
      break;
    }
    case LogicalOpKind::kNumbering: {
      result = Register(ctx, std::make_unique<NumberingPhysOp>());
      wire(result, 0, 0);
      break;
    }
    case LogicalOpKind::kSort: {
      const auto& sort = static_cast<const SortOp&>(*node);
      std::vector<PhysSortKey> keys;
      for (const SortKey& k : sort.keys()) {
        BYPASS_ASSIGN_OR_RETURN(
            ExprPtr e, BindExpr(k.expr, inputs[0].op->schema(), ctx));
        keys.push_back(PhysSortKey{std::move(e), k.descending});
      }
      result =
          Register(ctx, std::make_unique<SortPhysOp>(std::move(keys)));
      wire(result, 0, 0);
      break;
    }
    case LogicalOpKind::kJoin: {
      const auto& join = static_cast<const JoinOp&>(*node);
      const Schema& left = inputs[0].op->schema();
      const Schema& right = inputs[1].op->schema();
      const Schema concat = Schema::Concat(left, right);
      if (join.predicate() == nullptr) {
        result = Register(ctx, std::make_unique<NLJoinOp>(nullptr));
      } else {
        EquiSplit split = SplitEquiPred(join.predicate(), left, right);
        if (!split.left_slots.empty()) {
          ExprPtr residual;
          if (!split.residual_conjuncts.empty()) {
            BYPASS_ASSIGN_OR_RETURN(
                residual,
                BindExpr(MakeAnd(split.residual_conjuncts), concat, ctx));
          }
          result = Register(ctx, std::make_unique<HashJoinOp>(
                                     std::move(split.left_slots),
                                     std::move(split.right_slots),
                                     std::move(residual)));
        } else {
          BYPASS_ASSIGN_OR_RETURN(
              ExprPtr pred, BindExpr(join.predicate(), concat, ctx));
          result = Register(ctx,
                            std::make_unique<NLJoinOp>(std::move(pred)));
        }
      }
      wire(result, BinaryPhysOp::kLeft, 0);
      wire(result, BinaryPhysOp::kRight, 1);
      break;
    }
    case LogicalOpKind::kBypassJoin: {
      const auto& join = static_cast<const BypassJoinOp&>(*node);
      const Schema concat = Schema::Concat(inputs[0].op->schema(),
                                           inputs[1].op->schema());
      BYPASS_ASSIGN_OR_RETURN(ExprPtr pred,
                              BindExpr(join.predicate(), concat, ctx));
      result = Register(ctx,
                        std::make_unique<BypassNLJoinOp>(std::move(pred)));
      wire(result, BinaryPhysOp::kLeft, 0);
      wire(result, BinaryPhysOp::kRight, 1);
      break;
    }
    case LogicalOpKind::kLeftOuterJoin: {
      const auto& join = static_cast<const LeftOuterJoinOp&>(*node);
      const Schema& left = inputs[0].op->schema();
      const Schema& right = inputs[1].op->schema();
      const Schema concat = Schema::Concat(left, right);
      Row unmatched(static_cast<size_t>(right.num_columns()),
                    Value::Null());
      for (const auto& [name, value] : join.unmatched_defaults()) {
        BYPASS_ASSIGN_OR_RETURN(int slot, right.FindColumn("", name));
        unmatched[static_cast<size_t>(slot)] = value;
      }
      EquiSplit split = SplitEquiPred(join.predicate(), left, right);
      if (!split.left_slots.empty() &&
          split.residual_conjuncts.empty()) {
        result = Register(ctx, std::make_unique<HashLeftOuterJoinOp>(
                                   std::move(split.left_slots),
                                   std::move(split.right_slots),
                                   std::move(unmatched)));
      } else {
        BYPASS_ASSIGN_OR_RETURN(
            ExprPtr pred, BindExpr(join.predicate(), concat, ctx));
        result = Register(ctx, std::make_unique<NLLeftOuterJoinOp>(
                                   std::move(pred), std::move(unmatched)));
      }
      wire(result, BinaryPhysOp::kLeft, 0);
      wire(result, BinaryPhysOp::kRight, 1);
      break;
    }
    case LogicalOpKind::kSemiJoin:
    case LogicalOpKind::kAntiJoin: {
      const bool anti = node->kind() == LogicalOpKind::kAntiJoin;
      const ExprPtr& raw_pred =
          anti ? static_cast<const AntiJoinOp&>(*node).predicate()
               : static_cast<const SemiJoinOp&>(*node).predicate();
      const Schema& left = inputs[0].op->schema();
      const Schema& right = inputs[1].op->schema();
      EquiSplit split = SplitEquiPred(raw_pred, left, right);
      if (!split.left_slots.empty() &&
          split.residual_conjuncts.empty()) {
        result = Register(ctx, std::make_unique<HashExistenceJoinOp>(
                                   anti, std::move(split.left_slots),
                                   std::move(split.right_slots)));
      } else {
        const Schema concat = Schema::Concat(left, right);
        BYPASS_ASSIGN_OR_RETURN(ExprPtr pred,
                                BindExpr(raw_pred, concat, ctx));
        result = Register(ctx, std::make_unique<NLExistenceJoinOp>(
                                   anti, std::move(pred)));
      }
      wire(result, BinaryPhysOp::kLeft, 0);
      wire(result, BinaryPhysOp::kRight, 1);
      break;
    }
    case LogicalOpKind::kGroupBy: {
      const auto& gb = static_cast<const GroupByOp&>(*node);
      const Schema& input = inputs[0].op->schema();
      std::vector<int> key_slots;
      for (const GroupKey& k : gb.keys()) {
        BYPASS_ASSIGN_OR_RETURN(int slot,
                                input.FindColumn(k.qualifier, k.name));
        key_slots.push_back(slot);
      }
      std::vector<AggregateSpec> aggs;
      for (const AggregateSpec& a : gb.aggregates()) {
        AggregateSpec bound = a.Clone();
        if (bound.arg != nullptr) {
          BYPASS_ASSIGN_OR_RETURN(bound.arg,
                                  BindExpr(bound.arg, input, ctx));
        }
        aggs.push_back(std::move(bound));
      }
      result = Register(ctx, std::make_unique<HashGroupByOp>(
                                 std::move(key_slots), std::move(aggs),
                                 gb.scalar()));
      wire(result, 0, 0);
      break;
    }
    case LogicalOpKind::kBinaryGroupBy: {
      const auto& gb = static_cast<const BinaryGroupByOp&>(*node);
      const Schema& left = inputs[0].op->schema();
      const Schema& right = inputs[1].op->schema();
      BYPASS_ASSIGN_OR_RETURN(
          int left_slot,
          left.FindColumn(gb.left_key().qualifier, gb.left_key().name));
      BYPASS_ASSIGN_OR_RETURN(
          int right_slot,
          right.FindColumn(gb.right_key().qualifier,
                           gb.right_key().name));
      std::vector<AggregateSpec> aggs;
      for (const AggregateSpec& a : gb.aggregates()) {
        AggregateSpec bound = a.Clone();
        if (bound.arg != nullptr) {
          BYPASS_ASSIGN_OR_RETURN(bound.arg,
                                  BindExpr(bound.arg, right, ctx));
        }
        aggs.push_back(std::move(bound));
      }
      if (gb.compare_op() == CompareOp::kEq) {
        result = Register(ctx, std::make_unique<BinaryGroupByHashOp>(
                                   left_slot, right_slot,
                                   std::move(aggs)));
      } else {
        result = Register(ctx, std::make_unique<BinaryGroupByNLOp>(
                                   left_slot, gb.compare_op(), right_slot,
                                   std::move(aggs)));
      }
      wire(result, BinaryPhysOp::kLeft, 0);
      wire(result, BinaryPhysOp::kRight, 1);
      break;
    }
    case LogicalOpKind::kLimit: {
      const auto& limit = static_cast<const LimitOp&>(*node);
      result = Register(ctx,
                        std::make_unique<LimitPhysOp>(limit.count()));
      wire(result, 0, 0);
      break;
    }
    case LogicalOpKind::kBypassPartition: {
      const auto& part = static_cast<const BypassPartitionOp&>(*node);
      std::vector<ExprPtr> preds;
      preds.reserve(part.predicates().size());
      for (const ExprPtr& p : part.predicates()) {
        BYPASS_ASSIGN_OR_RETURN(
            ExprPtr bound, BindExpr(p, inputs[0].op->schema(), ctx));
        preds.push_back(std::move(bound));
      }
      result = Register(
          ctx, std::make_unique<BypassPartitionKOp>(std::move(preds)));
      wire(result, 0, 0);
      break;
    }
    case LogicalOpKind::kUnion: {
      result = Register(ctx, std::make_unique<UnionAllOp>(
                                 static_cast<int>(inputs.size())));
      for (size_t i = 0; i < inputs.size(); ++i) {
        wire(result, static_cast<int>(i), i);
      }
      break;
    }
  }
  BYPASS_CHECK(result != nullptr);
  memo->emplace(node.get(), result);
  return result;
}

}  // namespace bypass
