// Physical planning: binds name-based expressions to row slots and lowers
// the logical DAG onto executable operators — hash-based implementations
// for equality predicates, nested loops otherwise. Nested blocks are
// lowered into re-executable correlated subplans.
#ifndef BYPASSDB_PLANNER_PLANNER_H_
#define BYPASSDB_PLANNER_PLANNER_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "algebra/logical_op.h"
#include "catalog/catalog.h"
#include "common/result.h"
#include "exec/executor.h"
#include "exec/subplan_impl.h"

namespace bypass {

struct PlannerOptions {
  /// Memoize correlated subquery results by correlation values (the
  /// "canonical-memo" comparator strategy). Uncorrelated (type A) blocks
  /// are always materialized once regardless.
  bool memoize_subqueries = false;
};

class Planner {
 public:
  Planner(const Catalog* catalog, PlannerOptions options)
      : catalog_(catalog), options_(options) {}

  /// Lowers a logical plan into an executable physical plan (with a
  /// CollectorSink at the root).
  Result<PhysicalPlan> Lower(const LogicalOpPtr& root);

 private:
  struct LoweringCtx {
    PhysicalPlan* plan;
    const Schema* outer_schema;  // enclosing block's schema, or nullptr
    /// Filter-over-scan pairs found while lowering this plan; the
    /// post-wiring pass installs the predicate as the scan's zone filter
    /// when the scan ended up with that filter as its only consumer.
    std::vector<std::pair<TableScanOp*, ExprPtr>>* zone_candidates;
  };

  Result<PhysicalPlan> LowerPlan(const LogicalOpPtr& root,
                                 const Schema* outer_schema);

  Result<PhysOp*> LowerNode(
      const LogicalOpPtr& node, LoweringCtx* ctx,
      std::unordered_map<const LogicalOp*, PhysOp*>* memo);

  /// Returns a bound deep copy of `expr`: column refs get slots (against
  /// `input`, or the enclosing schema for correlated refs) and nested
  /// blocks become executable subplans.
  Result<ExprPtr> BindExpr(const ExprPtr& expr, const Schema& input,
                           LoweringCtx* ctx);
  Status BindExprInPlace(Expr* expr, const Schema& input,
                         LoweringCtx* ctx);

  /// Registers `op` in the plan and returns the raw pointer.
  template <typename T>
  T* Register(LoweringCtx* ctx, std::unique_ptr<T> op) {
    T* raw = op.get();
    ctx->plan->ops.push_back(std::move(op));
    return raw;
  }

  const Catalog* catalog_;
  PlannerOptions options_;
};

}  // namespace bypass

#endif  // BYPASSDB_PLANNER_PLANNER_H_
