#include "planner/cost_model.h"

#include <algorithm>
#include <unordered_map>

#include "expr/expr_util.h"
#include "algebra/plan_util.h"
#include "rewrite/rank.h"
#include "stats/selectivity.h"

namespace bypass {

namespace {

constexpr double kDefaultTableRows = 1000;
constexpr double kGroupCompression = 0.1;  // ndv(keys) / rows heuristic

class Estimator : public StatsProvider {
 public:
  explicit Estimator(const Catalog* catalog,
                     std::vector<std::string>* notes = nullptr)
      : catalog_(catalog), notes_(notes) {}

  /// StatsProvider over the base tables seen so far (children are
  /// estimated before their parents' predicates, so a selection's scans
  /// are registered by the time its selectivity is computed).
  const ColumnStatistics* GetColumnStats(const std::string& qualifier,
                                         const std::string& name,
                                         int64_t* rows) const override {
    const auto it = alias_tables_.find(qualifier);
    if (it == alias_tables_.end()) return nullptr;
    const Table* table = it->second;
    auto slot = table->schema().FindColumn("", name);
    if (!slot.ok()) return nullptr;
    *rows = table->num_rows();
    return &table->stats()[static_cast<size_t>(*slot)];
  }

  /// Rich ANALYZE statistics for aliases whose table has them.
  const ColumnStatistics* GetColumnStatistics(
      const std::string& qualifier, const std::string& name,
      int64_t* rows) const override {
    const auto it = alias_stats_.find(qualifier);
    if (it == alias_stats_.end()) return nullptr;
    const auto table_it = alias_tables_.find(qualifier);
    if (table_it == alias_tables_.end()) return nullptr;
    auto slot = table_it->second->schema().FindColumn("", name);
    if (!slot.ok() ||
        static_cast<size_t>(*slot) >= it->second->columns.size()) {
      return nullptr;
    }
    *rows = it->second->row_count;
    return &it->second->columns[static_cast<size_t>(*slot)];
  }

  const Table* GetTableForAlias(
      const std::string& qualifier) const override {
    const auto it = alias_tables_.find(qualifier);
    return it == alias_tables_.end() ? nullptr : it->second;
  }

  const std::unordered_map<const LogicalOp*, PlanEstimate>& memo() const {
    return memo_;
  }

  PlanEstimate Node(const LogicalOp& node) {
    const auto it = memo_.find(&node);
    if (it != memo_.end()) return it->second;
    PlanEstimate est = Compute(node);
    est.rows = std::max(est.rows, 1.0);
    memo_.emplace(&node, est);
    return est;
  }

  PlanEstimate Input(const LogicalInput& input) {
    PlanEstimate est = Node(*input.op);
    if (!est.port_rows.empty()) {
      // Multiway producer: each edge carries its own port's cardinality;
      // the shared operator cost rides on the port-0 edge only so fan-in
      // consumers do not double-count it.
      const size_t port = static_cast<size_t>(input.port);
      est.rows = port < est.port_rows.size()
                     ? std::max(est.port_rows[port], 1.0)
                     : 1.0;
      if (port != 0) est.cost = 0;
      est.neg_rows = 0;
      est.port_rows.clear();
      return est;
    }
    if (input.port == StreamPort::kNegative) {
      // The producer's estimate describes its positive stream; the
      // negative stream carries the complement cardinality (neg_rows).
      // The producer's cost is attributed to the positive-stream edge
      // only, so consumers of both streams do not double-count it.
      est.rows = std::max(est.neg_rows, 1.0);
      est.cost = 0;
    }
    return est;
  }

 private:
  /// Per-row evaluation cost of a predicate, charging nested blocks their
  /// full estimated plan cost (correlated: per row; uncorrelated blocks
  /// are added to `*upfront` once instead).
  double PredicateRowCost(const ExprPtr& pred, double* upfront) {
    double row_cost = EstimateCost(*pred, /*subquery_cost=*/0);
    VisitExpr(pred, [&](const ExprPtr& e) {
      if (e->kind() != ExprKind::kSubquery) return;
      const auto* sq = static_cast<const SubqueryExpr*>(e.get());
      if (sq->plan() == nullptr) return;
      const PlanEstimate block = Node(*sq->plan());
      if (PlanIsCorrelated(*sq->plan())) {
        row_cost += block.cost;
      } else {
        *upfront += block.cost;
      }
    });
    return row_cost;
  }

  PlanEstimate Compute(const LogicalOp& node) {
    switch (node.kind()) {
      case LogicalOpKind::kGet: {
        const auto& get = static_cast<const GetOp&>(node);
        double rows = kDefaultTableRows;
        if (catalog_ == nullptr) {
          Note("no catalog: '" + get.table_name() + "' assumed " +
               std::to_string(static_cast<int64_t>(kDefaultTableRows)) +
               " rows");
        } else {
          auto table = catalog_->GetTable(get.table_name());
          if (!table.ok()) {
            Note("no table: '" + get.table_name() + "' assumed " +
                 std::to_string(static_cast<int64_t>(kDefaultTableRows)) +
                 " rows");
          } else {
            alias_tables_.emplace(get.alias(), *table);
            auto analyzed =
                catalog_->GetTableStatistics(get.table_name());
            if (analyzed != nullptr) {
              rows = static_cast<double>(analyzed->row_count);
              alias_stats_.emplace(get.alias(), std::move(analyzed));
            } else {
              // Never invent a constant when the table is at hand: its
              // actual row count is the honest fallback.
              rows = static_cast<double>((*table)->num_rows());
              Note("no stats: '" + get.table_name() +
                   "' (using actual row count)");
            }
          }
        }
        return {rows, rows};
      }
      case LogicalOpKind::kSelect: {
        const auto& sel = static_cast<const SelectOp&>(node);
        const PlanEstimate in = Input(node.inputs()[0]);
        double upfront = 0;
        const double row_cost = PredicateRowCost(sel.predicate(),
                                                 &upfront);
        return {in.rows * EstimateSelectivity(*sel.predicate(), this),
                in.cost + upfront + in.rows * (1.0 + row_cost)};
      }
      case LogicalOpKind::kBypassSelect: {
        const auto& sel = static_cast<const BypassSelectOp&>(node);
        const PlanEstimate in = Input(node.inputs()[0]);
        double upfront = 0;
        const double row_cost = PredicateRowCost(sel.predicate(),
                                                 &upfront);
        const double out =
            in.rows * EstimateSelectivity(*sel.predicate(), this);
        return {out, in.cost + upfront + in.rows * (1.0 + row_cost),
                std::max(in.rows - out, 0.0)};
      }
      case LogicalOpKind::kBypassPartition: {
        // One fused pass: the input is touched once (the 1.0 operator
        // constant), then disjunct i is evaluated only on rows the first
        // i-1 disjuncts left undecided — a cascade pays 1.0 + c_i per
        // level instead, so the tagged form saves the per-level operator
        // hand-off. Conditional selectivities keep correlated disjuncts
        // from double-claiming rows.
        const auto& part = static_cast<const BypassPartitionOp&>(node);
        const PlanEstimate in = Input(node.inputs()[0]);
        const std::vector<double> cond =
            EstimateConditionalDisjunctSelectivities(part.predicates(),
                                                     this);
        PlanEstimate est;
        est.cost = in.cost + in.rows;
        est.port_rows.assign(part.predicates().size() + 1, 0.0);
        double undecided = in.rows;
        double upfront = 0;
        for (size_t i = 0; i < part.predicates().size(); ++i) {
          const double row_cost =
              PredicateRowCost(part.predicates()[i], &upfront);
          est.cost += undecided * row_cost;
          est.port_rows[i] = undecided * cond[i];
          undecided *= 1.0 - cond[i];
        }
        est.cost += upfront;
        est.port_rows.back() = undecided;
        est.rows = est.port_rows[0];
        return est;
      }
      case LogicalOpKind::kProject:
      case LogicalOpKind::kMap:
      case LogicalOpKind::kNumbering: {
        const PlanEstimate in = Input(node.inputs()[0]);
        return {in.rows, in.cost + in.rows};
      }
      case LogicalOpKind::kDistinct: {
        const PlanEstimate in = Input(node.inputs()[0]);
        return {in.rows * 0.9, in.cost + in.rows};
      }
      case LogicalOpKind::kSort: {
        const PlanEstimate in = Input(node.inputs()[0]);
        return {in.rows, in.cost + 2.0 * in.rows};
      }
      case LogicalOpKind::kJoin: {
        const auto& join = static_cast<const JoinOp&>(node);
        const PlanEstimate l = Input(node.inputs()[0]);
        const PlanEstimate r = Input(node.inputs()[1]);
        if (join.predicate() == nullptr) {
          return {l.rows * r.rows, l.cost + r.cost + l.rows * r.rows};
        }
        const double sel = EstimateSelectivity(*join.predicate(), this);
        const bool hashable = HasEquiConjunct(*join.predicate());
        const double work =
            hashable ? l.rows + r.rows : l.rows * r.rows;
        return {l.rows * r.rows * sel, l.cost + r.cost + work};
      }
      case LogicalOpKind::kBypassJoin: {
        const auto& join = static_cast<const BypassJoinOp&>(node);
        const PlanEstimate l = Input(node.inputs()[0]);
        const PlanEstimate r = Input(node.inputs()[1]);
        const double sel = EstimateSelectivity(*join.predicate(), this);
        // Both streams are produced by one nested-loop pass.
        const double pairs = l.rows * r.rows;
        return {pairs * sel, l.cost + r.cost + pairs,
                std::max(pairs * (1.0 - sel), 0.0)};
      }
      case LogicalOpKind::kLeftOuterJoin: {
        const auto& join = static_cast<const LeftOuterJoinOp&>(node);
        const PlanEstimate l = Input(node.inputs()[0]);
        const PlanEstimate r = Input(node.inputs()[1]);
        const bool hashable = HasEquiConjunct(*join.predicate());
        const double work =
            hashable ? l.rows + r.rows : l.rows * r.rows;
        // Grouped build sides have unique keys → cardinality of the left.
        return {l.rows, l.cost + r.cost + work};
      }
      case LogicalOpKind::kSemiJoin:
      case LogicalOpKind::kAntiJoin: {
        const ExprPtr& pred =
            node.kind() == LogicalOpKind::kSemiJoin
                ? static_cast<const SemiJoinOp&>(node).predicate()
                : static_cast<const AntiJoinOp&>(node).predicate();
        const PlanEstimate l = Input(node.inputs()[0]);
        const PlanEstimate r = Input(node.inputs()[1]);
        const bool hashable = HasEquiConjunct(*pred);
        const double work =
            hashable ? l.rows + r.rows : l.rows * r.rows;
        return {l.rows * 0.5, l.cost + r.cost + work};
      }
      case LogicalOpKind::kGroupBy: {
        const auto& gb = static_cast<const GroupByOp&>(node);
        const PlanEstimate in = Input(node.inputs()[0]);
        const double rows =
            gb.scalar() ? 1.0
                        : std::max(1.0, in.rows * kGroupCompression);
        return {rows, in.cost + in.rows};
      }
      case LogicalOpKind::kBinaryGroupBy: {
        const auto& gb = static_cast<const BinaryGroupByOp&>(node);
        const PlanEstimate l = Input(node.inputs()[0]);
        const PlanEstimate r = Input(node.inputs()[1]);
        const double work = gb.compare_op() == CompareOp::kEq
                                ? l.rows + r.rows
                                : l.rows * r.rows;
        return {l.rows, l.cost + r.cost + work};
      }
      case LogicalOpKind::kLimit: {
        const auto& limit = static_cast<const LimitOp&>(node);
        const PlanEstimate in = Input(node.inputs()[0]);
        return {std::min<double>(in.rows,
                                 static_cast<double>(limit.count())),
                in.cost};
      }
      case LogicalOpKind::kUnion: {
        PlanEstimate est;
        for (const LogicalInput& in : node.inputs()) {
          const PlanEstimate e = Input(in);
          est.rows += e.rows;
          est.cost += e.cost;
        }
        return est;
      }
    }
    return {1, 1};
  }

  /// Records a cardinality-source caveat once (deduplicated).
  void Note(std::string note) {
    if (notes_ == nullptr) return;
    if (std::find(notes_->begin(), notes_->end(), note) != notes_->end()) {
      return;
    }
    notes_->push_back(std::move(note));
  }

  static bool HasEquiConjunct(const Expr& pred) {
    for (const ExprPtr& c : SplitConjuncts(pred.Clone())) {
      if (c->kind() == ExprKind::kComparison &&
          static_cast<const ComparisonExpr*>(c.get())->op() ==
              CompareOp::kEq) {
        return true;
      }
    }
    return false;
  }

  const Catalog* catalog_;
  std::vector<std::string>* notes_;
  std::unordered_map<const LogicalOp*, PlanEstimate> memo_;
  mutable std::unordered_map<std::string, const Table*> alias_tables_;
  mutable std::unordered_map<std::string,
                             std::shared_ptr<const TableStatistics>>
      alias_stats_;
};

}  // namespace

PlanEstimate EstimatePlan(const LogicalOp& root, const Catalog* catalog,
                          std::vector<std::string>* notes) {
  Estimator estimator(catalog, notes);
  return estimator.Node(root);
}

PlanEstimate EstimateInput(const LogicalInput& input,
                           const Catalog* catalog) {
  Estimator estimator(catalog);
  return estimator.Input(input);
}

std::unordered_map<const LogicalOp*, PlanEstimate> EstimateAllNodes(
    const LogicalOp& root, const Catalog* catalog) {
  Estimator estimator(catalog);
  estimator.Node(root);
  return estimator.memo();
}

}  // namespace bypass
