#include "expr/expr_util.h"

namespace bypass {

void VisitExpr(const ExprPtr& expr,
               const std::function<void(const ExprPtr&)>& fn) {
  if (expr == nullptr) return;
  fn(expr);
  for (const ExprPtr& c : expr->children()) VisitExpr(c, fn);
}

namespace {

void VisitMutableImpl(Expr* expr, const std::function<void(Expr*)>& fn) {
  if (expr == nullptr) return;
  fn(expr);
  for (const ExprPtr& c : expr->children()) VisitMutableImpl(c.get(), fn);
}

}  // namespace

void VisitExprMutable(Expr* expr, const std::function<void(Expr*)>& fn) {
  VisitMutableImpl(expr, fn);
}

bool ContainsSubquery(const ExprPtr& expr) {
  bool found = false;
  VisitExpr(expr, [&](const ExprPtr& e) {
    if (e->kind() == ExprKind::kSubquery) found = true;
  });
  return found;
}

std::vector<SubqueryExpr*> FindSubqueries(Expr* expr) {
  std::vector<SubqueryExpr*> out;
  VisitExprMutable(expr, [&](Expr* e) {
    if (e->kind() == ExprKind::kSubquery) {
      out.push_back(static_cast<SubqueryExpr*>(e));
    }
  });
  return out;
}

std::vector<ColumnRefExpr*> CollectColumnRefs(Expr* expr) {
  std::vector<ColumnRefExpr*> out;
  VisitExprMutable(expr, [&](Expr* e) {
    if (e->kind() == ExprKind::kColumnRef) {
      out.push_back(static_cast<ColumnRefExpr*>(e));
    }
  });
  return out;
}

bool ContainsOuterRef(const ExprPtr& expr) {
  bool found = false;
  VisitExpr(expr, [&](const ExprPtr& e) {
    if (e->kind() == ExprKind::kColumnRef &&
        static_cast<const ColumnRefExpr*>(e.get())->is_outer()) {
      found = true;
    }
  });
  return found;
}

std::vector<ExprPtr> SplitConjuncts(const ExprPtr& pred) {
  std::vector<ExprPtr> out;
  if (pred == nullptr) return out;
  if (pred->kind() == ExprKind::kAnd) {
    for (const ExprPtr& t :
         static_cast<const AndExpr*>(pred.get())->terms()) {
      auto sub = SplitConjuncts(t);
      out.insert(out.end(), sub.begin(), sub.end());
    }
  } else {
    out.push_back(pred);
  }
  return out;
}

std::vector<ExprPtr> SplitDisjuncts(const ExprPtr& pred) {
  std::vector<ExprPtr> out;
  if (pred == nullptr) return out;
  if (pred->kind() == ExprKind::kOr) {
    for (const ExprPtr& t :
         static_cast<const OrExpr*>(pred.get())->terms()) {
      auto sub = SplitDisjuncts(t);
      out.insert(out.end(), sub.begin(), sub.end());
    }
  } else {
    out.push_back(pred);
  }
  return out;
}

}  // namespace bypass
