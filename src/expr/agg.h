// Aggregate function descriptors and the runtime accumulator shared by the
// grouping operators and scalar-subquery evaluation.
#ifndef BYPASSDB_EXPR_AGG_H_
#define BYPASSDB_EXPR_AGG_H_

#include <memory>
#include <string>
#include <vector>

#include "common/flat_table.h"
#include "expr/expr.h"
#include "types/row.h"
#include "types/row_batch.h"
#include "types/value.h"

namespace bypass {

enum class AggFunc { kCount, kSum, kAvg, kMin, kMax };

const char* AggFuncToString(AggFunc func);

/// One aggregate call, e.g. COUNT(DISTINCT *) or SUM(b3).
struct AggregateSpec {
  AggFunc func = AggFunc::kCount;
  bool distinct = false;
  /// Argument expression; nullptr means '*' (the whole input row).
  ExprPtr arg;
  /// Name of the produced column in the output schema.
  std::string output_name;

  AggregateSpec Clone() const {
    AggregateSpec copy = *this;
    if (arg) copy.arg = arg->Clone();
    return copy;
  }
  std::string ToString() const;
};

/// The paper's decomposability criterion (Sec. 3.3): count/sum/avg/min/max
/// decompose; their DISTINCT variants do not (footnote 1), forcing Eqv. 5.
bool IsAggDecomposable(const AggregateSpec& spec);

/// f(∅): the left outer join's default value — 0 for count (the "count
/// bug" fix), NULL for sum/avg/min/max.
Value AggEmptyValue(AggFunc func);

/// Streaming accumulator for one aggregate over one group.
class Aggregator {
 public:
  explicit Aggregator(const AggregateSpec* spec) : spec_(spec) {}

  void Reset();

  /// Folds in one input tuple; evaluates the argument against `ctx`.
  Status Accumulate(const EvalContext& ctx);

  /// Columnar batch fold: consumes the whole batch off the raw column
  /// when the spec is a non-DISTINCT aggregate whose argument is a typed
  /// column of the batch (COUNT over any type, SUM/AVG/MIN/MAX over
  /// numeric columns). Returns false when the fast path does not apply —
  /// the caller then uses per-row Accumulate for this batch. Element
  /// order is preserved, so float sums are bit-identical to the row path.
  bool AccumulateColumnar(const RowBatch& batch);

  /// Folds another accumulator for the same spec into this one. Used to
  /// combine per-worker partial aggregates; for DISTINCT aggregates only
  /// entries not yet in this accumulator's dedup set are re-applied.
  Status Merge(const Aggregator& other);

  /// Current aggregate value (f(∅) when nothing was accumulated).
  Result<Value> Finalize() const;

 private:
  Status AccumulateValue(const Value& v, const Row& full_row);

  const AggregateSpec* spec_;
  int64_t count_ = 0;        // non-null inputs folded (rows for COUNT(*))
  bool sum_is_double_ = false;
  int64_t int_sum_ = 0;
  double double_sum_ = 0;
  Value extreme_;            // running MIN/MAX
  FlatRowSet distinct_;      // DISTINCT dedup
};

/// A bundle of aggregators evaluated over the same group.
class AggregatorSet {
 public:
  explicit AggregatorSet(const std::vector<AggregateSpec>* specs);
  void Reset();
  Status Accumulate(const EvalContext& ctx);
  /// Folds a whole batch: aggregators with a columnar fast path consume
  /// the raw columns; the rest share one row-at-a-time pass. Equivalent
  /// to calling Accumulate per selected row.
  Status AccumulateBatch(const RowBatch& batch, const Row* outer_row);
  /// Merges a partial AggregatorSet built from the same spec list.
  Status Merge(const AggregatorSet& other);
  /// Appends one finalized value per spec to `out`.
  Status FinalizeInto(Row* out) const;

 private:
  std::vector<Aggregator> aggs_;
};

}  // namespace bypass

#endif  // BYPASSDB_EXPR_AGG_H_
