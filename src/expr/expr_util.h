// Generic expression traversal helpers used by the binder and the
// unnesting rewriter.
#ifndef BYPASSDB_EXPR_EXPR_UTIL_H_
#define BYPASSDB_EXPR_EXPR_UTIL_H_

#include <functional>
#include <vector>

#include "expr/expr.h"

namespace bypass {

/// Pre-order visit of an expression tree (does not descend into nested
/// subquery plans).
void VisitExpr(const ExprPtr& expr,
               const std::function<void(const ExprPtr&)>& fn);

/// Mutable pre-order visit.
void VisitExprMutable(Expr* expr, const std::function<void(Expr*)>& fn);

/// True if the tree contains a SubqueryExpr (any kind).
bool ContainsSubquery(const ExprPtr& expr);

/// All SubqueryExpr nodes in the tree, pre-order.
std::vector<SubqueryExpr*> FindSubqueries(Expr* expr);

/// All column references in the tree (not descending into subquery plans).
std::vector<ColumnRefExpr*> CollectColumnRefs(Expr* expr);

/// True if the tree contains a column reference with is_outer() set, i.e.
/// the expression is correlated with the enclosing block.
bool ContainsOuterRef(const ExprPtr& expr);

/// Splits a predicate into its top-level conjuncts (flattening nested
/// ANDs). A non-AND predicate yields a single conjunct.
std::vector<ExprPtr> SplitConjuncts(const ExprPtr& pred);

/// Splits a predicate into its top-level disjuncts (flattening nested
/// ORs). A non-OR predicate yields a single disjunct.
std::vector<ExprPtr> SplitDisjuncts(const ExprPtr& pred);

}  // namespace bypass

#endif  // BYPASSDB_EXPR_EXPR_UTIL_H_
