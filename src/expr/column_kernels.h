// Type-specialized columnar predicate/arithmetic kernels. These branch
// once per batch on (operator, column type) and then run tight loops over
// raw column data + null bitmaps, instead of per-value std::variant
// dispatch through Value::Compare. Semantics replicate the Value paths
// bit for bit: SQL 3VL (NULL operand → Unknown), exact int64×int64
// comparison, cross-numeric comparison after widening to double with the
// engine's total-order double comparator (NaN compares equal), string
// comparison by std::string::compare, bool as 0/1 ints, and mismatched
// non-numeric types → Unknown.
//
// Every kernel is a *try*: it applies only when the batch carries typed
// columns (RowBatch::columns()) and both operands resolve to a typed
// column or a batch-constant. Mixed-mode columns, unbound references and
// row-only batches fall back to the row paths in expr.cc.
#ifndef BYPASSDB_EXPR_COLUMN_KERNELS_H_
#define BYPASSDB_EXPR_COLUMN_KERNELS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "expr/expr.h"
#include "types/column_vector.h"
#include "types/row_batch.h"
#include "types/value.h"

namespace bypass {

/// A comparison/arithmetic operand resolved against a columnar batch:
/// either a typed (non-mixed) column of the batch's ColumnStore, or a
/// batch-constant Value (literal or correlated outer reference).
struct ColumnOperand {
  const ColumnVector* column = nullptr;
  const Value* constant = nullptr;
};

/// Resolves `e` to a ColumnOperand. False when the batch has no typed
/// columns, the expression is not a literal / bound column reference, the
/// slot is out of range, or the column is in mixed mode.
bool ResolveColumnOperand(const Expr& e, const RowBatch& batch,
                          const Row* outer_row, ColumnOperand* out);

/// Fused bypass-partition kernel: partitions the batch's selected rows by
/// `l op r` under 3VL in one pass, appending storage indices (in batch
/// order) to sel_true / sel_false / sel_null (null pointers skipped;
/// passing the same vector as sel_false and sel_null yields the σ±
/// negative stream). Returns false when no typed kernel applies — the
/// caller falls back to the row path. Requires at least one column
/// operand.
bool ColumnarComparePartition(CompareOp op, const ColumnOperand& l,
                              const ColumnOperand& r, const RowBatch& batch,
                              std::vector<uint32_t>* sel_true,
                              std::vector<uint32_t>* sel_false,
                              std::vector<uint32_t>* sel_null);

/// Columnar comparison evaluation: appends one Value (Bool or NULL) per
/// selected row, in selection order. Returns false when no typed kernel
/// applies.
bool ColumnarCompareEval(CompareOp op, const ColumnOperand& l,
                         const ColumnOperand& r, const RowBatch& batch,
                         std::vector<Value>* out);

/// Fused LIKE partition kernel: partitions by `input [NOT] LIKE pattern`
/// under 3VL (NULL input → Unknown), with the same output contract as
/// ColumnarComparePartition. Returns false when the input is not a typed
/// string column or string/NULL constant — non-string inputs raise an
/// execution error on the row path and must keep doing so.
bool ColumnarLikePartition(const ColumnOperand& input,
                           std::string_view pattern, bool negated,
                           const RowBatch& batch,
                           std::vector<uint32_t>* sel_true,
                           std::vector<uint32_t>* sel_false,
                           std::vector<uint32_t>* sel_null);

/// Columnar LIKE evaluation: appends one Value (Bool or NULL) per
/// selected row. Returns false when no typed kernel applies.
bool ColumnarLikeEval(const ColumnOperand& input, std::string_view pattern,
                      bool negated, const RowBatch& batch,
                      std::vector<Value>* out);

/// One level of a k-way tagged partition: a simple disjunct lowered to
/// resolved operands. Either a comparison (`l op r`) or a string LIKE
/// (`l [NOT] LIKE pattern`); `pattern` must outlive the kernel call (it
/// aliases the expression's pattern storage).
struct PartitionLevel {
  enum class Kind { kCompare, kLike };
  Kind kind = Kind::kCompare;
  CompareOp op = CompareOp::kEq;  // kCompare only
  ColumnOperand l;                // comparison left / LIKE input
  ColumnOperand r;                // kCompare only
  std::string_view pattern;       // kLike only
  bool negated = false;           // kLike only
};

/// True when the level dispatches to a typed loop: comparisons need at
/// least one column operand, LIKE needs a string column or a string/NULL
/// constant. The k-way kernel requires every level to apply.
bool PartitionLevelApplies(const PartitionLevel& level);

/// Reusable per-worker buffers for ColumnarPartitionKWay: double-buffered
/// undecided selections threaded between levels.
struct KWayScratch {
  std::vector<uint32_t> undecided[2];
};

/// Radix-style k-way tagged partition: one fused pass splits the batch's
/// selected rows into k+1 streams of storage indices. outs[i] (i < k)
/// receives the rows whose *first* TRUE level is i; outs[k] receives the
/// remainder on which every level was FALSE or UNKNOWN — the 3VL null
/// stream stays merged into the complement, exactly like the binary σ±
/// split. Each level runs the branchless unconditional-store /
/// predicated-cursor-advance emit over the shrinking undecided span, so
/// per-level predicate work matches the equivalent cascade while the k-1
/// intermediate operator hand-offs disappear. Every level must satisfy
/// PartitionLevelApplies; indices append to outs[*] in batch order.
void ColumnarPartitionKWay(const PartitionLevel* levels, size_t k,
                           const RowBatch& batch,
                           std::vector<uint32_t>* const* outs,
                           KWayScratch* scratch);

/// Columnar arithmetic: appends one Value per selected row, replicating
/// ArithmeticExpr::Combine exactly (int64-preserving +,-,*; / always
/// double with a division-by-zero execution error naming `expr_str`;
/// NULL propagates). nullopt when no typed kernel applies; otherwise the
/// loop's Status (errors abort at the first offending row, like the row
/// path).
std::optional<Status> ColumnarArithmeticEval(
    ArithOp op, const ColumnOperand& l, const ColumnOperand& r,
    const RowBatch& batch, const std::string& expr_str,
    std::vector<Value>* out);

}  // namespace bypass

#endif  // BYPASSDB_EXPR_COLUMN_KERNELS_H_
