// CorrelatedSubplan: the interface through which expressions evaluate
// nested query blocks. The paper's canonical plans contain "algebraic
// expressions in selection predicates" (Sec. 2.3); this interface is their
// runtime form. Concrete implementations wrap executable physical plans
// (see exec/subplan_impl.h) and may memoize results per correlation-value
// combination (the "canonical-memo" comparator strategy).
#ifndef BYPASSDB_EXPR_SUBPLAN_H_
#define BYPASSDB_EXPR_SUBPLAN_H_

#include <memory>

#include "common/result.h"
#include "types/row.h"
#include "types/value.h"

namespace bypass {

/// An executable nested query block. `outer_row` supplies the values for
/// the block's free attributes (direct correlation only, per the paper's
/// stated limitation).
class CorrelatedSubplan {
 public:
  virtual ~CorrelatedSubplan() = default;

  /// Evaluates a scalar (type A/JA) block: the block's top-level aggregate
  /// value for this outer row. An empty input yields the aggregate's
  /// f(∅): 0 for count, NULL otherwise.
  virtual Result<Value> EvalScalar(const Row* outer_row) = 0;

  /// EXISTS semantics: true iff the block produces at least one row.
  virtual Result<bool> EvalExists(const Row* outer_row) = 0;

  /// `probe IN (block)` under SQL three-valued logic: kTrue if some row
  /// equals probe; kFalse if the block is empty or all rows are non-NULL
  /// and unequal; kUnknown otherwise (NULLs present, no match).
  virtual Result<TriBool> EvalIn(const Value& probe,
                                 const Row* outer_row) = 0;

  /// Number of times the block was (re-)executed; reported by benchmarks.
  virtual int64_t num_executions() const = 0;
};

using CorrelatedSubplanPtr = std::shared_ptr<CorrelatedSubplan>;

}  // namespace bypass

#endif  // BYPASSDB_EXPR_SUBPLAN_H_
