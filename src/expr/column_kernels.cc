#include "expr/column_kernels.h"

#include <string_view>

#include "common/check.h"

namespace bypass {

namespace {

// The element sources and emit functors below are each called from every
// (left-source × right-source × loop-shape) instantiation of CompareLoop,
// so the inliner's unit-growth heuristics see dozens of call sites and
// outline them — turning the per-element path into real function calls
// (measured ~3x slower than the row loop). They are a handful of
// instructions each; force the issue.
#if defined(__GNUC__) || defined(__clang__)
#define BYPASS_KERNEL_INLINE __attribute__((always_inline))
#else
#define BYPASS_KERNEL_INLINE
#endif

Value TriBoolToValueLocal(TriBool t) {
  switch (t) {
    case TriBool::kTrue:
      return Value::Bool(true);
    case TriBool::kFalse:
      return Value::Bool(false);
    case TriBool::kUnknown:
      return Value::Null();
  }
  return Value::Null();
}

// ------------------------------------------------------------ sources
// Element sources: a typed column (raw data + null bitmap) or a
// broadcast constant. Templating the loops on the source pair hoists
// every type test out of the per-element path.

struct I64Col {
  static constexpr bool kIsInt = true;
  const int64_t* data;
  const uint64_t* nulls;
  bool has_nulls;
  BYPASS_KERNEL_INLINE bool IsNull(uint32_t i) const {
    return has_nulls && ((nulls[i >> 6] >> (i & 63)) & uint64_t{1}) != 0;
  }
  BYPASS_KERNEL_INLINE int64_t Get(uint32_t i) const { return data[i]; }
};

struct F64Col {
  static constexpr bool kIsInt = false;
  const double* data;
  const uint64_t* nulls;
  bool has_nulls;
  BYPASS_KERNEL_INLINE bool IsNull(uint32_t i) const {
    return has_nulls && ((nulls[i >> 6] >> (i & 63)) & uint64_t{1}) != 0;
  }
  BYPASS_KERNEL_INLINE double Get(uint32_t i) const { return data[i]; }
};

struct I64Const {
  static constexpr bool kIsInt = true;
  int64_t v;
  BYPASS_KERNEL_INLINE bool IsNull(uint32_t) const { return false; }
  BYPASS_KERNEL_INLINE int64_t Get(uint32_t) const { return v; }
};

struct F64Const {
  static constexpr bool kIsInt = false;
  double v;
  BYPASS_KERNEL_INLINE bool IsNull(uint32_t) const { return false; }
  BYPASS_KERNEL_INLINE double Get(uint32_t) const { return v; }
};

// Bools compare as 0/1 ints, exactly like Value::CompareSlow.
struct BoolCol {
  const uint8_t* data;
  const uint64_t* nulls;
  bool has_nulls;
  BYPASS_KERNEL_INLINE bool IsNull(uint32_t i) const {
    return has_nulls && ((nulls[i >> 6] >> (i & 63)) & uint64_t{1}) != 0;
  }
  BYPASS_KERNEL_INLINE int64_t Get(uint32_t i) const {
    return data[i] != 0 ? 1 : 0;
  }
};

struct StrCol {
  const ColumnVector* col;
  BYPASS_KERNEL_INLINE bool IsNull(uint32_t i) const {
    return col->IsNull(i);
  }
  BYPASS_KERNEL_INLINE std::string_view Get(uint32_t i) const {
    return col->string_at(i);
  }
};

struct StrConst {
  std::string_view v;
  BYPASS_KERNEL_INLINE bool IsNull(uint32_t) const { return false; }
  BYPASS_KERNEL_INLINE std::string_view Get(uint32_t) const { return v; }
};

// ----------------------------------------------------------- compare
// Normalized three-way comparison (-1/0/1) matching Value semantics:
// exact on int64×int64, total-order double comparison after widening
// (NaN compares equal to everything), lexicographic on strings.

inline int CmpElem(double a, double b) {
  return a < b ? -1 : (a > b ? 1 : 0);
}
inline int CmpElem(int64_t a, int64_t b) {
  return a < b ? -1 : (a > b ? 1 : 0);
}
inline int CmpElem(int64_t a, double b) {
  return CmpElem(static_cast<double>(a), b);
}
inline int CmpElem(double a, int64_t b) {
  return CmpElem(a, static_cast<double>(b));
}
inline int CmpElem(std::string_view a, std::string_view b) {
  const int c = a.compare(b);
  return c < 0 ? -1 : (c > 0 ? 1 : 0);
}

// res[cmp+1] = two-valued result of `op` for cmp in {-1, 0, 1}; computed
// once per batch so the element loop is a table lookup instead of a
// per-element switch.
void FillResTable(CompareOp op, bool res[3]) {
  for (int c = -1; c <= 1; ++c) {
    bool v = false;
    switch (op) {
      case CompareOp::kEq:
        v = c == 0;
        break;
      case CompareOp::kNe:
        v = c != 0;
        break;
      case CompareOp::kLt:
        v = c < 0;
        break;
      case CompareOp::kLe:
        v = c <= 0;
        break;
      case CompareOp::kGt:
        v = c > 0;
        break;
      case CompareOp::kGe:
        v = c >= 0;
        break;
    }
    res[c + 1] = v;
  }
}

template <typename LS, typename RS, typename EmitFn>
void CompareLoop(const RowBatch& batch, const bool res[3], LS l, RS r,
                 EmitFn&& emit) {
  const std::vector<uint32_t>& sel = batch.selection();
  const size_t n = sel.size();
  auto body = [&](uint32_t idx) BYPASS_KERNEL_INLINE {
    if (l.IsNull(idx) || r.IsNull(idx)) {
      emit(idx, TriBool::kUnknown);
      return;
    }
    emit(idx, res[CmpElem(l.Get(idx), r.Get(idx)) + 1] ? TriBool::kTrue
                                                       : TriBool::kFalse);
  };
  if (batch.dense() && n > 0) {
    const uint32_t base = sel[0];
    for (size_t i = 0; i < n; ++i) body(base + static_cast<uint32_t>(i));
  } else {
    for (size_t i = 0; i < n; ++i) body(sel[i]);
  }
}

// Comparisons that are Unknown for every row: a NULL constant operand,
// or operand types SQL comparison cannot relate (both cases collapse to
// Unknown whether or not the column value is NULL).
template <typename EmitFn>
void AllUnknownLoop(const RowBatch& batch, EmitFn&& emit) {
  for (uint32_t idx : batch.selection()) emit(idx, TriBool::kUnknown);
}

// -------------------------------------------------------- classification

enum class SrcTag {
  kI64Col,
  kF64Col,
  kBoolCol,
  kStrCol,
  kI64Const,
  kF64Const,
  kBoolConst,
  kStrConst,
  kNullConst,
};

SrcTag Classify(const ColumnOperand& o) {
  if (o.column != nullptr) {
    switch (o.column->type()) {
      case DataType::kInt64:
        return SrcTag::kI64Col;
      case DataType::kDouble:
        return SrcTag::kF64Col;
      case DataType::kBool:
        return SrcTag::kBoolCol;
      case DataType::kString:
        return SrcTag::kStrCol;
    }
  }
  const Value& v = *o.constant;
  if (v.is_null()) return SrcTag::kNullConst;
  if (v.is_int64()) return SrcTag::kI64Const;
  if (v.is_double()) return SrcTag::kF64Const;
  if (v.is_bool()) return SrcTag::kBoolConst;
  return SrcTag::kStrConst;
}

bool IsNumTag(SrcTag t) {
  return t == SrcTag::kI64Col || t == SrcTag::kF64Col ||
         t == SrcTag::kI64Const || t == SrcTag::kF64Const;
}
bool IsBoolTag(SrcTag t) {
  return t == SrcTag::kBoolCol || t == SrcTag::kBoolConst;
}
bool IsStrTag(SrcTag t) {
  return t == SrcTag::kStrCol || t == SrcTag::kStrConst;
}

// Continuation-passing source builders: instantiate `fn` with the right
// source type for the tag.
template <typename Fn>
void WithNumSrc(SrcTag t, const ColumnOperand& o, Fn&& fn) {
  switch (t) {
    case SrcTag::kI64Col:
      fn(I64Col{o.column->i64_data(), o.column->null_words(),
                o.column->has_nulls()});
      return;
    case SrcTag::kF64Col:
      fn(F64Col{o.column->f64_data(), o.column->null_words(),
                o.column->has_nulls()});
      return;
    case SrcTag::kI64Const:
      fn(I64Const{o.constant->int64_value()});
      return;
    case SrcTag::kF64Const:
      fn(F64Const{o.constant->double_value()});
      return;
    default:
      return;
  }
}

template <typename Fn>
void WithBoolSrc(SrcTag t, const ColumnOperand& o, Fn&& fn) {
  if (t == SrcTag::kBoolCol) {
    fn(BoolCol{o.column->bool_data(), o.column->null_words(),
               o.column->has_nulls()});
  } else {
    fn(I64Const{o.constant->bool_value() ? 1 : 0});
  }
}

template <typename Fn>
void WithStrSrc(SrcTag t, const ColumnOperand& o, Fn&& fn) {
  if (t == SrcTag::kStrCol) {
    fn(StrCol{o.column});
  } else {
    fn(StrConst{std::string_view(o.constant->string_value())});
  }
}

/// Shared comparison dispatch: classifies the operand pair, then runs
/// the matching typed loop with `emit(storage_idx, TriBool)`. Returns
/// false when no kernel applies.
template <typename EmitFn>
bool DispatchCompare(CompareOp op, const ColumnOperand& l,
                     const ColumnOperand& r, const RowBatch& batch,
                     EmitFn&& emit) {
  if (l.column == nullptr && r.column == nullptr) return false;
  const SrcTag lt = Classify(l);
  const SrcTag rt = Classify(r);
  if (lt == SrcTag::kNullConst || rt == SrcTag::kNullConst) {
    AllUnknownLoop(batch, emit);
    return true;
  }
  bool res[3];
  FillResTable(op, res);
  if (IsNumTag(lt) && IsNumTag(rt)) {
    WithNumSrc(lt, l, [&](auto ls) {
      WithNumSrc(rt, r, [&](auto rs) { CompareLoop(batch, res, ls, rs, emit); });
    });
    return true;
  }
  if (IsBoolTag(lt) && IsBoolTag(rt)) {
    WithBoolSrc(lt, l, [&](auto ls) {
      WithBoolSrc(rt, r,
                  [&](auto rs) { CompareLoop(batch, res, ls, rs, emit); });
    });
    return true;
  }
  if (IsStrTag(lt) && IsStrTag(rt)) {
    WithStrSrc(lt, l, [&](auto ls) {
      WithStrSrc(rt, r,
                 [&](auto rs) { CompareLoop(batch, res, ls, rs, emit); });
    });
    return true;
  }
  // Type-mismatched operands: SQL comparison yields Unknown everywhere.
  AllUnknownLoop(batch, emit);
  return true;
}

// ---------------------------------------------------------- arithmetic

template <ArithOp OP, typename LS, typename RS>
Status ArithLoop(const RowBatch& batch, LS l, RS r,
                 const std::string& expr_str, std::vector<Value>* out) {
  const std::vector<uint32_t>& sel = batch.selection();
  const size_t n = sel.size();
  Status status = Status::OK();
  auto body = [&](uint32_t idx) -> bool {
    if (l.IsNull(idx) || r.IsNull(idx)) {
      out->push_back(Value::Null());
      return true;
    }
    if constexpr (OP == ArithOp::kDiv) {
      const double denom = static_cast<double>(r.Get(idx));
      if (denom == 0.0) {
        status = Status::ExecutionError("division by zero: " + expr_str);
        return false;
      }
      out->push_back(
          Value::Double(static_cast<double>(l.Get(idx)) / denom));
    } else if constexpr (LS::kIsInt && RS::kIsInt) {
      const int64_t a = l.Get(idx), b = r.Get(idx);
      if constexpr (OP == ArithOp::kAdd) {
        out->push_back(Value::Int64(a + b));
      } else if constexpr (OP == ArithOp::kSub) {
        out->push_back(Value::Int64(a - b));
      } else {
        out->push_back(Value::Int64(a * b));
      }
    } else {
      const double a = static_cast<double>(l.Get(idx));
      const double b = static_cast<double>(r.Get(idx));
      if constexpr (OP == ArithOp::kAdd) {
        out->push_back(Value::Double(a + b));
      } else if constexpr (OP == ArithOp::kSub) {
        out->push_back(Value::Double(a - b));
      } else {
        out->push_back(Value::Double(a * b));
      }
    }
    return true;
  };
  if (batch.dense() && n > 0) {
    const uint32_t base = sel[0];
    for (size_t i = 0; i < n; ++i) {
      if (!body(base + static_cast<uint32_t>(i))) return status;
    }
  } else {
    for (size_t i = 0; i < n; ++i) {
      if (!body(sel[i])) return status;
    }
  }
  return status;
}

template <ArithOp OP>
Status DispatchArith(SrcTag lt, const ColumnOperand& l, SrcTag rt,
                     const ColumnOperand& r, const RowBatch& batch,
                     const std::string& expr_str, std::vector<Value>* out) {
  Status status = Status::OK();
  WithNumSrc(lt, l, [&](auto ls) {
    WithNumSrc(rt, r, [&](auto rs) {
      status = ArithLoop<OP>(batch, ls, rs, expr_str, out);
    });
  });
  return status;
}

}  // namespace

bool ResolveColumnOperand(const Expr& e, const RowBatch& batch,
                          const Row* outer_row, ColumnOperand* out) {
  const ColumnStore* store = batch.columns();
  if (store == nullptr) return false;
  if (e.kind() == ExprKind::kLiteral) {
    out->column = nullptr;
    out->constant = &static_cast<const LiteralExpr&>(e).value();
    return true;
  }
  if (e.kind() != ExprKind::kColumnRef) return false;
  const auto& ref = static_cast<const ColumnRefExpr&>(e);
  if (ref.slot() < 0) return false;
  const size_t slot = static_cast<size_t>(ref.slot());
  if (ref.is_outer()) {
    if (outer_row == nullptr || slot >= outer_row->size()) return false;
    out->column = nullptr;
    out->constant = &(*outer_row)[slot];
    return true;
  }
  if (slot >= store->columns.size()) return false;
  const ColumnVector& col = store->columns[slot];
  if (!col.typed()) return false;
  out->column = &col;
  out->constant = nullptr;
  return true;
}

bool ColumnarComparePartition(CompareOp op, const ColumnOperand& l,
                              const ColumnOperand& r, const RowBatch& batch,
                              std::vector<uint32_t>* sel_true,
                              std::vector<uint32_t>* sel_false,
                              std::vector<uint32_t>* sel_null) {
  // Both-constant operands take the row path (mirrors DispatchCompare's
  // bail-out); checked up front so the output resizes below are only done
  // when a kernel will definitely run.
  if (l.column == nullptr && r.column == nullptr) return false;
  // Branchless radix-style partition: every output vector is pre-sized to
  // worst case, each element is stored unconditionally at its stream's
  // cursor, and only the cursor advance is predicated — no per-element
  // branch mispredicts, no push_back capacity checks. Batch order is
  // preserved per stream. A disabled stream (nullptr) writes into a dummy
  // slot with a cursor that never advances.
  const size_t n = batch.size();
  uint32_t dummy;
  const size_t t0 = sel_true->size();
  sel_true->resize(t0 + n);
  uint32_t* tp = sel_true->data() + t0;
  size_t tn = 0;
  if (sel_false != nullptr && sel_false == sel_null) {
    // σ± split: FALSE and UNKNOWN merge into one complement-of-TRUE
    // stream, so the outcome is binary.
    const size_t f0 = sel_false->size();
    sel_false->resize(f0 + n);
    uint32_t* fp = sel_false->data() + f0;
    size_t fn = 0;
    const bool ok =
        DispatchCompare(op, l, r, batch,
                        [&](uint32_t idx, TriBool t) BYPASS_KERNEL_INLINE {
          const size_t is_true = t == TriBool::kTrue ? 1 : 0;
          tp[tn] = idx;
          tn += is_true;
          fp[fn] = idx;
          fn += 1 - is_true;
        });
    BYPASS_CHECK(ok);
    sel_true->resize(t0 + tn);
    sel_false->resize(f0 + fn);
    return true;
  }
  const size_t f0 = sel_false != nullptr ? sel_false->size() : 0;
  if (sel_false != nullptr) sel_false->resize(f0 + n);
  uint32_t* fp = sel_false != nullptr ? sel_false->data() + f0 : &dummy;
  const size_t f_live = sel_false != nullptr ? 1 : 0;
  size_t fn = 0;
  const size_t u0 = sel_null != nullptr ? sel_null->size() : 0;
  if (sel_null != nullptr) sel_null->resize(u0 + n);
  uint32_t* up = sel_null != nullptr ? sel_null->data() + u0 : &dummy;
  const size_t u_live = sel_null != nullptr ? 1 : 0;
  size_t un = 0;
  const bool ok =
      DispatchCompare(op, l, r, batch,
                      [&](uint32_t idx, TriBool t) BYPASS_KERNEL_INLINE {
        tp[tn] = idx;
        tn += t == TriBool::kTrue ? 1 : 0;
        fp[fn] = idx;
        fn += t == TriBool::kFalse ? f_live : 0;
        up[un] = idx;
        un += t == TriBool::kUnknown ? u_live : 0;
      });
  BYPASS_CHECK(ok);
  sel_true->resize(t0 + tn);
  if (sel_false != nullptr) sel_false->resize(f0 + fn);
  if (sel_null != nullptr) sel_null->resize(u0 + un);
  return true;
}

bool ColumnarCompareEval(CompareOp op, const ColumnOperand& l,
                         const ColumnOperand& r, const RowBatch& batch,
                         std::vector<Value>* out) {
  out->reserve(out->size() + batch.size());
  return DispatchCompare(op, l, r, batch, [&](uint32_t, TriBool t) {
    out->push_back(TriBoolToValueLocal(t));
  });
}

std::optional<Status> ColumnarArithmeticEval(
    ArithOp op, const ColumnOperand& l, const ColumnOperand& r,
    const RowBatch& batch, const std::string& expr_str,
    std::vector<Value>* out) {
  if (l.column == nullptr && r.column == nullptr) return std::nullopt;
  const SrcTag lt = Classify(l);
  const SrcTag rt = Classify(r);
  out->reserve(out->size() + batch.size());
  if (lt == SrcTag::kNullConst || rt == SrcTag::kNullConst) {
    // NULL propagates before the numeric check in Combine, regardless of
    // the other operand's type.
    out->insert(out->end(), batch.size(), Value::Null());
    return Status::OK();
  }
  if (!IsNumTag(lt) || !IsNumTag(rt)) return std::nullopt;
  switch (op) {
    case ArithOp::kAdd:
      return DispatchArith<ArithOp::kAdd>(lt, l, rt, r, batch, expr_str,
                                          out);
    case ArithOp::kSub:
      return DispatchArith<ArithOp::kSub>(lt, l, rt, r, batch, expr_str,
                                          out);
    case ArithOp::kMul:
      return DispatchArith<ArithOp::kMul>(lt, l, rt, r, batch, expr_str,
                                          out);
    case ArithOp::kDiv:
      return DispatchArith<ArithOp::kDiv>(lt, l, rt, r, batch, expr_str,
                                          out);
  }
  return std::nullopt;
}

}  // namespace bypass
