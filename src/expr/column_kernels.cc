#include "expr/column_kernels.h"

#include <string_view>

#include "common/check.h"
#include "common/string_util.h"

namespace bypass {

namespace {

// The element sources and emit functors below are each called from every
// (left-source × right-source × loop-shape) instantiation of CompareLoop,
// so the inliner's unit-growth heuristics see dozens of call sites and
// outline them — turning the per-element path into real function calls
// (measured ~3x slower than the row loop). They are a handful of
// instructions each; force the issue.
#if defined(__GNUC__) || defined(__clang__)
#define BYPASS_KERNEL_INLINE __attribute__((always_inline))
#else
#define BYPASS_KERNEL_INLINE
#endif

Value TriBoolToValueLocal(TriBool t) {
  switch (t) {
    case TriBool::kTrue:
      return Value::Bool(true);
    case TriBool::kFalse:
      return Value::Bool(false);
    case TriBool::kUnknown:
      return Value::Null();
  }
  return Value::Null();
}

// ------------------------------------------------------------ sources
// Element sources: a typed column (raw data + null bitmap) or a
// broadcast constant. Templating the loops on the source pair hoists
// every type test out of the per-element path.

struct I64Col {
  static constexpr bool kIsInt = true;
  const int64_t* data;
  const uint64_t* nulls;
  bool has_nulls;
  BYPASS_KERNEL_INLINE bool IsNull(uint32_t i) const {
    return has_nulls && ((nulls[i >> 6] >> (i & 63)) & uint64_t{1}) != 0;
  }
  BYPASS_KERNEL_INLINE int64_t Get(uint32_t i) const { return data[i]; }
};

struct F64Col {
  static constexpr bool kIsInt = false;
  const double* data;
  const uint64_t* nulls;
  bool has_nulls;
  BYPASS_KERNEL_INLINE bool IsNull(uint32_t i) const {
    return has_nulls && ((nulls[i >> 6] >> (i & 63)) & uint64_t{1}) != 0;
  }
  BYPASS_KERNEL_INLINE double Get(uint32_t i) const { return data[i]; }
};

struct I64Const {
  static constexpr bool kIsInt = true;
  int64_t v;
  BYPASS_KERNEL_INLINE bool IsNull(uint32_t) const { return false; }
  BYPASS_KERNEL_INLINE int64_t Get(uint32_t) const { return v; }
};

struct F64Const {
  static constexpr bool kIsInt = false;
  double v;
  BYPASS_KERNEL_INLINE bool IsNull(uint32_t) const { return false; }
  BYPASS_KERNEL_INLINE double Get(uint32_t) const { return v; }
};

// Bools compare as 0/1 ints, exactly like Value::CompareSlow.
struct BoolCol {
  const uint8_t* data;
  const uint64_t* nulls;
  bool has_nulls;
  BYPASS_KERNEL_INLINE bool IsNull(uint32_t i) const {
    return has_nulls && ((nulls[i >> 6] >> (i & 63)) & uint64_t{1}) != 0;
  }
  BYPASS_KERNEL_INLINE int64_t Get(uint32_t i) const {
    return data[i] != 0 ? 1 : 0;
  }
};

struct StrCol {
  const ColumnVector* col;
  BYPASS_KERNEL_INLINE bool IsNull(uint32_t i) const {
    return col->IsNull(i);
  }
  BYPASS_KERNEL_INLINE std::string_view Get(uint32_t i) const {
    return col->string_at(i);
  }
};

struct StrConst {
  std::string_view v;
  BYPASS_KERNEL_INLINE bool IsNull(uint32_t) const { return false; }
  BYPASS_KERNEL_INLINE std::string_view Get(uint32_t) const { return v; }
};

// ----------------------------------------------------------- compare
// Normalized three-way comparison (-1/0/1) matching Value semantics:
// exact on int64×int64, total-order double comparison after widening
// (NaN compares equal to everything), lexicographic on strings.

inline int CmpElem(double a, double b) {
  return a < b ? -1 : (a > b ? 1 : 0);
}
inline int CmpElem(int64_t a, int64_t b) {
  return a < b ? -1 : (a > b ? 1 : 0);
}
inline int CmpElem(int64_t a, double b) {
  return CmpElem(static_cast<double>(a), b);
}
inline int CmpElem(double a, int64_t b) {
  return CmpElem(a, static_cast<double>(b));
}
inline int CmpElem(std::string_view a, std::string_view b) {
  const int c = a.compare(b);
  return c < 0 ? -1 : (c > 0 ? 1 : 0);
}

// res[cmp+1] = two-valued result of `op` for cmp in {-1, 0, 1}; computed
// once per batch so the element loop is a table lookup instead of a
// per-element switch.
void FillResTable(CompareOp op, bool res[3]) {
  for (int c = -1; c <= 1; ++c) {
    bool v = false;
    switch (op) {
      case CompareOp::kEq:
        v = c == 0;
        break;
      case CompareOp::kNe:
        v = c != 0;
        break;
      case CompareOp::kLt:
        v = c < 0;
        break;
      case CompareOp::kLe:
        v = c <= 0;
        break;
      case CompareOp::kGt:
        v = c > 0;
        break;
      case CompareOp::kGe:
        v = c >= 0;
        break;
    }
    res[c + 1] = v;
  }
}

// Explicit selection span the typed loops iterate: the batch's own
// selection for single-predicate kernels, or a level's shrinking
// undecided run inside the k-way partition. `dense` asserts
// sel[i] == sel[0] + i so hot loops can index storage directly.
struct SelSpan {
  const uint32_t* sel;
  size_t n;
  bool dense;
};

SelSpan BatchSpan(const RowBatch& batch) {
  return SelSpan{batch.selection().data(), batch.size(), batch.dense()};
}

template <typename LS, typename RS, typename EmitFn>
void CompareLoop(SelSpan span, const bool res[3], LS l, RS r,
                 EmitFn&& emit) {
  auto body = [&](uint32_t idx) BYPASS_KERNEL_INLINE {
    if (l.IsNull(idx) || r.IsNull(idx)) {
      emit(idx, TriBool::kUnknown);
      return;
    }
    emit(idx, res[CmpElem(l.Get(idx), r.Get(idx)) + 1] ? TriBool::kTrue
                                                       : TriBool::kFalse);
  };
  if (span.dense && span.n > 0) {
    const uint32_t base = span.sel[0];
    for (size_t i = 0; i < span.n; ++i) {
      body(base + static_cast<uint32_t>(i));
    }
  } else {
    for (size_t i = 0; i < span.n; ++i) body(span.sel[i]);
  }
}

// SQL LIKE under 3VL: NULL input → Unknown, otherwise the match result
// (inverted for NOT LIKE). Same loop shape as CompareLoop, monomorphized
// per matcher so each shape's loop carries no per-row dispatch.
template <typename S, typename MatchFn, typename EmitFn>
void LikeLoopWith(SelSpan span, S s, bool negated, MatchFn&& match,
                  EmitFn&& emit) {
  auto body = [&](uint32_t idx) BYPASS_KERNEL_INLINE {
    if (s.IsNull(idx)) {
      emit(idx, TriBool::kUnknown);
      return;
    }
    emit(idx, match(s.Get(idx)) != negated ? TriBool::kTrue
                                           : TriBool::kFalse);
  };
  if (span.dense && span.n > 0) {
    const uint32_t base = span.sel[0];
    for (size_t i = 0; i < span.n; ++i) {
      body(base + static_cast<uint32_t>(i));
    }
  } else {
    for (size_t i = 0; i < span.n; ++i) body(span.sel[i]);
  }
}

// Analyzes the pattern once per batch and picks the matcher: anchored
// shapes ('abc%', '%abc', '%abc%', exact, match-all) run a substring
// primitive per row; only kGeneric pays the backtracking matcher — which
// is why EstimateCost prices LIKE an order of magnitude above a
// comparison even though the common shapes run far cheaper.
template <typename S, typename EmitFn>
void LikeLoop(SelSpan span, S s, std::string_view pattern, bool negated,
              EmitFn&& emit) {
  const LikePattern shaped = AnalyzeLikePattern(pattern);
  const std::string_view body = shaped.body;
  switch (shaped.shape) {
    case LikeShape::kMatchAll:
      return LikeLoopWith(
          span, s, negated, [](std::string_view) { return true; }, emit);
    case LikeShape::kExact:
      return LikeLoopWith(
          span, s, negated,
          [body](std::string_view t) { return t == body; }, emit);
    case LikeShape::kPrefix:
      return LikeLoopWith(
          span, s, negated,
          [body](std::string_view t) { return t.starts_with(body); },
          emit);
    case LikeShape::kSuffix:
      return LikeLoopWith(
          span, s, negated,
          [body](std::string_view t) { return t.ends_with(body); }, emit);
    case LikeShape::kContains:
      return LikeLoopWith(
          span, s, negated,
          [body](std::string_view t) {
            return t.find(body) != std::string_view::npos;
          },
          emit);
    case LikeShape::kGeneric:
      break;
  }
  LikeLoopWith(
      span, s, negated,
      [pattern](std::string_view t) { return LikeMatch(t, pattern); },
      emit);
}

// Predicates that are Unknown for every row: a NULL constant operand, or
// operand types SQL comparison cannot relate (both cases collapse to
// Unknown whether or not the column value is NULL).
template <typename EmitFn>
void AllUnknownLoop(SelSpan span, EmitFn&& emit) {
  for (size_t i = 0; i < span.n; ++i) emit(span.sel[i], TriBool::kUnknown);
}

// -------------------------------------------------------- classification

enum class SrcTag {
  kI64Col,
  kF64Col,
  kBoolCol,
  kStrCol,
  kI64Const,
  kF64Const,
  kBoolConst,
  kStrConst,
  kNullConst,
};

SrcTag Classify(const ColumnOperand& o) {
  if (o.column != nullptr) {
    switch (o.column->type()) {
      case DataType::kInt64:
        return SrcTag::kI64Col;
      case DataType::kDouble:
        return SrcTag::kF64Col;
      case DataType::kBool:
        return SrcTag::kBoolCol;
      case DataType::kString:
        return SrcTag::kStrCol;
    }
  }
  const Value& v = *o.constant;
  if (v.is_null()) return SrcTag::kNullConst;
  if (v.is_int64()) return SrcTag::kI64Const;
  if (v.is_double()) return SrcTag::kF64Const;
  if (v.is_bool()) return SrcTag::kBoolConst;
  return SrcTag::kStrConst;
}

bool IsNumTag(SrcTag t) {
  return t == SrcTag::kI64Col || t == SrcTag::kF64Col ||
         t == SrcTag::kI64Const || t == SrcTag::kF64Const;
}
bool IsBoolTag(SrcTag t) {
  return t == SrcTag::kBoolCol || t == SrcTag::kBoolConst;
}
bool IsStrTag(SrcTag t) {
  return t == SrcTag::kStrCol || t == SrcTag::kStrConst;
}

// Continuation-passing source builders: instantiate `fn` with the right
// source type for the tag.
template <typename Fn>
void WithNumSrc(SrcTag t, const ColumnOperand& o, Fn&& fn) {
  switch (t) {
    case SrcTag::kI64Col:
      fn(I64Col{o.column->i64_data(), o.column->null_words(),
                o.column->has_nulls()});
      return;
    case SrcTag::kF64Col:
      fn(F64Col{o.column->f64_data(), o.column->null_words(),
                o.column->has_nulls()});
      return;
    case SrcTag::kI64Const:
      fn(I64Const{o.constant->int64_value()});
      return;
    case SrcTag::kF64Const:
      fn(F64Const{o.constant->double_value()});
      return;
    default:
      return;
  }
}

template <typename Fn>
void WithBoolSrc(SrcTag t, const ColumnOperand& o, Fn&& fn) {
  if (t == SrcTag::kBoolCol) {
    fn(BoolCol{o.column->bool_data(), o.column->null_words(),
               o.column->has_nulls()});
  } else {
    fn(I64Const{o.constant->bool_value() ? 1 : 0});
  }
}

template <typename Fn>
void WithStrSrc(SrcTag t, const ColumnOperand& o, Fn&& fn) {
  if (t == SrcTag::kStrCol) {
    fn(StrCol{o.column});
  } else {
    fn(StrConst{std::string_view(o.constant->string_value())});
  }
}

/// Shared comparison dispatch: classifies the operand pair, then runs
/// the matching typed loop with `emit(storage_idx, TriBool)`. Returns
/// false when no kernel applies.
template <typename EmitFn>
bool DispatchCompare(CompareOp op, const ColumnOperand& l,
                     const ColumnOperand& r, SelSpan span, EmitFn&& emit) {
  if (l.column == nullptr && r.column == nullptr) return false;
  const SrcTag lt = Classify(l);
  const SrcTag rt = Classify(r);
  if (lt == SrcTag::kNullConst || rt == SrcTag::kNullConst) {
    AllUnknownLoop(span, emit);
    return true;
  }
  bool res[3];
  FillResTable(op, res);
  if (IsNumTag(lt) && IsNumTag(rt)) {
    WithNumSrc(lt, l, [&](auto ls) {
      WithNumSrc(rt, r, [&](auto rs) { CompareLoop(span, res, ls, rs, emit); });
    });
    return true;
  }
  if (IsBoolTag(lt) && IsBoolTag(rt)) {
    WithBoolSrc(lt, l, [&](auto ls) {
      WithBoolSrc(rt, r,
                  [&](auto rs) { CompareLoop(span, res, ls, rs, emit); });
    });
    return true;
  }
  if (IsStrTag(lt) && IsStrTag(rt)) {
    WithStrSrc(lt, l, [&](auto ls) {
      WithStrSrc(rt, r,
                 [&](auto rs) { CompareLoop(span, res, ls, rs, emit); });
    });
    return true;
  }
  // Type-mismatched operands: SQL comparison yields Unknown everywhere.
  AllUnknownLoop(span, emit);
  return true;
}

/// LIKE dispatch: string column / string constant run the typed matcher,
/// a NULL constant is Unknown everywhere, anything else (the row path
/// raises an execution error for non-string inputs) gets no kernel.
template <typename EmitFn>
bool DispatchLike(const ColumnOperand& input, std::string_view pattern,
                  bool negated, SelSpan span, EmitFn&& emit) {
  const SrcTag t = Classify(input);
  if (t == SrcTag::kNullConst) {
    AllUnknownLoop(span, emit);
    return true;
  }
  if (!IsStrTag(t)) return false;
  WithStrSrc(t, input,
             [&](auto s) { LikeLoop(span, s, pattern, negated, emit); });
  return true;
}

/// One k-way partition level: comparison or LIKE, same emit contract.
template <typename EmitFn>
bool DispatchLevel(const PartitionLevel& level, SelSpan span,
                   EmitFn&& emit) {
  if (level.kind == PartitionLevel::Kind::kLike) {
    return DispatchLike(level.l, level.pattern, level.negated, span, emit);
  }
  return DispatchCompare(level.op, level.l, level.r, span, emit);
}

/// Shared branchless partition driver: every output vector is pre-sized
/// to worst case, each element is stored unconditionally at its stream's
/// cursor, and only the cursor advance is predicated — no per-element
/// branch mispredicts, no push_back capacity checks. Batch order is
/// preserved per stream. A disabled stream (nullptr) writes into a dummy
/// slot with a cursor that never advances. `dispatch(emit)` must run a
/// typed loop (the caller checks applicability first).
template <typename DispatchFn>
void PartitionStreams(const RowBatch& batch, std::vector<uint32_t>* sel_true,
                      std::vector<uint32_t>* sel_false,
                      std::vector<uint32_t>* sel_null,
                      DispatchFn&& dispatch) {
  const size_t n = batch.size();
  uint32_t dummy;
  const size_t t0 = sel_true->size();
  sel_true->resize(t0 + n);
  uint32_t* tp = sel_true->data() + t0;
  size_t tn = 0;
  if (sel_false != nullptr && sel_false == sel_null) {
    // σ± split: FALSE and UNKNOWN merge into one complement-of-TRUE
    // stream, so the outcome is binary.
    const size_t f0 = sel_false->size();
    sel_false->resize(f0 + n);
    uint32_t* fp = sel_false->data() + f0;
    size_t fn = 0;
    const bool ok =
        dispatch([&](uint32_t idx, TriBool t) BYPASS_KERNEL_INLINE {
          const size_t is_true = t == TriBool::kTrue ? 1 : 0;
          tp[tn] = idx;
          tn += is_true;
          fp[fn] = idx;
          fn += 1 - is_true;
        });
    BYPASS_CHECK(ok);
    sel_true->resize(t0 + tn);
    sel_false->resize(f0 + fn);
    return;
  }
  const size_t f0 = sel_false != nullptr ? sel_false->size() : 0;
  if (sel_false != nullptr) sel_false->resize(f0 + n);
  uint32_t* fp = sel_false != nullptr ? sel_false->data() + f0 : &dummy;
  const size_t f_live = sel_false != nullptr ? 1 : 0;
  size_t fn = 0;
  const size_t u0 = sel_null != nullptr ? sel_null->size() : 0;
  if (sel_null != nullptr) sel_null->resize(u0 + n);
  uint32_t* up = sel_null != nullptr ? sel_null->data() + u0 : &dummy;
  const size_t u_live = sel_null != nullptr ? 1 : 0;
  size_t un = 0;
  const bool ok =
      dispatch([&](uint32_t idx, TriBool t) BYPASS_KERNEL_INLINE {
        tp[tn] = idx;
        tn += t == TriBool::kTrue ? 1 : 0;
        fp[fn] = idx;
        fn += t == TriBool::kFalse ? f_live : 0;
        up[un] = idx;
        un += t == TriBool::kUnknown ? u_live : 0;
      });
  BYPASS_CHECK(ok);
  sel_true->resize(t0 + tn);
  if (sel_false != nullptr) sel_false->resize(f0 + fn);
  if (sel_null != nullptr) sel_null->resize(u0 + un);
}

// ---------------------------------------------------------- arithmetic

template <ArithOp OP, typename LS, typename RS>
Status ArithLoop(const RowBatch& batch, LS l, RS r,
                 const std::string& expr_str, std::vector<Value>* out) {
  const std::vector<uint32_t>& sel = batch.selection();
  const size_t n = sel.size();
  Status status = Status::OK();
  auto body = [&](uint32_t idx) -> bool {
    if (l.IsNull(idx) || r.IsNull(idx)) {
      out->push_back(Value::Null());
      return true;
    }
    if constexpr (OP == ArithOp::kDiv) {
      const double denom = static_cast<double>(r.Get(idx));
      if (denom == 0.0) {
        status = Status::ExecutionError("division by zero: " + expr_str);
        return false;
      }
      out->push_back(
          Value::Double(static_cast<double>(l.Get(idx)) / denom));
    } else if constexpr (LS::kIsInt && RS::kIsInt) {
      const int64_t a = l.Get(idx), b = r.Get(idx);
      if constexpr (OP == ArithOp::kAdd) {
        out->push_back(Value::Int64(a + b));
      } else if constexpr (OP == ArithOp::kSub) {
        out->push_back(Value::Int64(a - b));
      } else {
        out->push_back(Value::Int64(a * b));
      }
    } else {
      const double a = static_cast<double>(l.Get(idx));
      const double b = static_cast<double>(r.Get(idx));
      if constexpr (OP == ArithOp::kAdd) {
        out->push_back(Value::Double(a + b));
      } else if constexpr (OP == ArithOp::kSub) {
        out->push_back(Value::Double(a - b));
      } else {
        out->push_back(Value::Double(a * b));
      }
    }
    return true;
  };
  if (batch.dense() && n > 0) {
    const uint32_t base = sel[0];
    for (size_t i = 0; i < n; ++i) {
      if (!body(base + static_cast<uint32_t>(i))) return status;
    }
  } else {
    for (size_t i = 0; i < n; ++i) {
      if (!body(sel[i])) return status;
    }
  }
  return status;
}

template <ArithOp OP>
Status DispatchArith(SrcTag lt, const ColumnOperand& l, SrcTag rt,
                     const ColumnOperand& r, const RowBatch& batch,
                     const std::string& expr_str, std::vector<Value>* out) {
  Status status = Status::OK();
  WithNumSrc(lt, l, [&](auto ls) {
    WithNumSrc(rt, r, [&](auto rs) {
      status = ArithLoop<OP>(batch, ls, rs, expr_str, out);
    });
  });
  return status;
}

}  // namespace

bool ResolveColumnOperand(const Expr& e, const RowBatch& batch,
                          const Row* outer_row, ColumnOperand* out) {
  const ColumnStore* store = batch.columns();
  if (store == nullptr) return false;
  if (e.kind() == ExprKind::kLiteral) {
    out->column = nullptr;
    out->constant = &static_cast<const LiteralExpr&>(e).value();
    return true;
  }
  if (e.kind() != ExprKind::kColumnRef) return false;
  const auto& ref = static_cast<const ColumnRefExpr&>(e);
  if (ref.slot() < 0) return false;
  const size_t slot = static_cast<size_t>(ref.slot());
  if (ref.is_outer()) {
    if (outer_row == nullptr || slot >= outer_row->size()) return false;
    out->column = nullptr;
    out->constant = &(*outer_row)[slot];
    return true;
  }
  if (slot >= store->columns.size()) return false;
  const ColumnVector& col = store->columns[slot];
  if (!col.typed()) return false;
  out->column = &col;
  out->constant = nullptr;
  return true;
}

bool ColumnarComparePartition(CompareOp op, const ColumnOperand& l,
                              const ColumnOperand& r, const RowBatch& batch,
                              std::vector<uint32_t>* sel_true,
                              std::vector<uint32_t>* sel_false,
                              std::vector<uint32_t>* sel_null) {
  // Both-constant operands take the row path (mirrors DispatchCompare's
  // bail-out); checked up front so the output resizes in PartitionStreams
  // are only done when a kernel will definitely run.
  if (l.column == nullptr && r.column == nullptr) return false;
  PartitionStreams(batch, sel_true, sel_false, sel_null, [&](auto&& emit) {
    return DispatchCompare(op, l, r, BatchSpan(batch), emit);
  });
  return true;
}

bool ColumnarCompareEval(CompareOp op, const ColumnOperand& l,
                         const ColumnOperand& r, const RowBatch& batch,
                         std::vector<Value>* out) {
  out->reserve(out->size() + batch.size());
  return DispatchCompare(op, l, r, BatchSpan(batch),
                         [&](uint32_t, TriBool t) {
                           out->push_back(TriBoolToValueLocal(t));
                         });
}

bool ColumnarLikePartition(const ColumnOperand& input,
                           std::string_view pattern, bool negated,
                           const RowBatch& batch,
                           std::vector<uint32_t>* sel_true,
                           std::vector<uint32_t>* sel_false,
                           std::vector<uint32_t>* sel_null) {
  PartitionLevel level;
  level.kind = PartitionLevel::Kind::kLike;
  level.l = input;
  level.pattern = pattern;
  level.negated = negated;
  if (!PartitionLevelApplies(level)) return false;
  PartitionStreams(batch, sel_true, sel_false, sel_null, [&](auto&& emit) {
    return DispatchLike(input, pattern, negated, BatchSpan(batch), emit);
  });
  return true;
}

bool ColumnarLikeEval(const ColumnOperand& input, std::string_view pattern,
                      bool negated, const RowBatch& batch,
                      std::vector<Value>* out) {
  PartitionLevel level;
  level.kind = PartitionLevel::Kind::kLike;
  level.l = input;
  level.pattern = pattern;
  level.negated = negated;
  if (!PartitionLevelApplies(level)) return false;
  out->reserve(out->size() + batch.size());
  return DispatchLike(input, pattern, negated, BatchSpan(batch),
                      [&](uint32_t, TriBool t) {
                        out->push_back(TriBoolToValueLocal(t));
                      });
}

bool PartitionLevelApplies(const PartitionLevel& level) {
  if (level.kind == PartitionLevel::Kind::kLike) {
    // Non-string inputs raise an execution error on the row path; the
    // kernel must not swallow it.
    const SrcTag t = Classify(level.l);
    return t == SrcTag::kNullConst || IsStrTag(t);
  }
  return level.l.column != nullptr || level.r.column != nullptr;
}

void ColumnarPartitionKWay(const PartitionLevel* levels, size_t k,
                           const RowBatch& batch,
                           std::vector<uint32_t>* const* outs,
                           KWayScratch* scratch) {
  BYPASS_CHECK(k >= 1);
  // Level-wise first-true semantics: level i partitions the span still
  // undecided after levels 0..i-1 into its TRUE stream (outs[i]) and the
  // next undecided span; the last level's complement goes straight into
  // the remainder stream (outs[k]). Each level is the same branchless
  // binary emit as the σ± kernel, so predicate work exactly matches the
  // equivalent bypass cascade — the win is skipping the k-1 intermediate
  // batch hand-offs. Intermediate spans double-buffer through `scratch`.
  SelSpan span = BatchSpan(batch);
  for (size_t level = 0; level < k; ++level) {
    std::vector<uint32_t>* out_true = outs[level];
    const size_t t0 = out_true->size();
    out_true->resize(t0 + span.n);
    uint32_t* tp = out_true->data() + t0;
    size_t tn = 0;
    const bool last = level + 1 == k;
    std::vector<uint32_t>* rest =
        last ? outs[k] : &scratch->undecided[level & 1];
    if (!last) rest->clear();
    const size_t r0 = rest->size();
    rest->resize(r0 + span.n);
    uint32_t* rp = rest->data() + r0;
    size_t rn = 0;
    const bool ok = DispatchLevel(
        levels[level], span,
        [&](uint32_t idx, TriBool t) BYPASS_KERNEL_INLINE {
          const size_t is_true = t == TriBool::kTrue ? 1 : 0;
          tp[tn] = idx;
          tn += is_true;
          rp[rn] = idx;
          rn += 1 - is_true;
        });
    BYPASS_CHECK(ok);
    out_true->resize(t0 + tn);
    rest->resize(r0 + rn);
    span = SelSpan{rest->data() + r0, rn, false};
  }
}

std::optional<Status> ColumnarArithmeticEval(
    ArithOp op, const ColumnOperand& l, const ColumnOperand& r,
    const RowBatch& batch, const std::string& expr_str,
    std::vector<Value>* out) {
  if (l.column == nullptr && r.column == nullptr) return std::nullopt;
  const SrcTag lt = Classify(l);
  const SrcTag rt = Classify(r);
  out->reserve(out->size() + batch.size());
  if (lt == SrcTag::kNullConst || rt == SrcTag::kNullConst) {
    // NULL propagates before the numeric check in Combine, regardless of
    // the other operand's type.
    out->insert(out->end(), batch.size(), Value::Null());
    return Status::OK();
  }
  if (!IsNumTag(lt) || !IsNumTag(rt)) return std::nullopt;
  switch (op) {
    case ArithOp::kAdd:
      return DispatchArith<ArithOp::kAdd>(lt, l, rt, r, batch, expr_str,
                                          out);
    case ArithOp::kSub:
      return DispatchArith<ArithOp::kSub>(lt, l, rt, r, batch, expr_str,
                                          out);
    case ArithOp::kMul:
      return DispatchArith<ArithOp::kMul>(lt, l, rt, r, batch, expr_str,
                                          out);
    case ArithOp::kDiv:
      return DispatchArith<ArithOp::kDiv>(lt, l, rt, r, batch, expr_str,
                                          out);
  }
  return std::nullopt;
}

}  // namespace bypass
