// Expression trees. One IR serves both the logical plane (name-based column
// references, subqueries carried as logical plans) and the physical plane
// (slot-bound references, subqueries lowered to executable subplans); the
// planner's binder produces bound copies.
#ifndef BYPASSDB_EXPR_EXPR_H_
#define BYPASSDB_EXPR_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "expr/subplan.h"
#include "types/row.h"
#include "types/row_batch.h"
#include "types/value.h"

namespace bypass {

class LogicalOp;  // defined in algebra/logical_op.h
using LogicalOpPtr = std::shared_ptr<LogicalOp>;

/// Deep-copies a logical plan. Implemented in algebra/logical_op.cc; the
/// declaration lives here so SubqueryExpr::Clone can deep-copy its nested
/// block without a header cycle.
LogicalOpPtr CloneLogicalPlan(const LogicalOpPtr& plan);

/// One-line summary of a logical plan for expression printing; implemented
/// in algebra/logical_op.cc.
std::string LogicalPlanSummary(const LogicalOp& plan);

class Expr;
using ExprPtr = std::shared_ptr<Expr>;

/// Runtime evaluation context. `outer_row` carries the directly enclosing
/// block's current tuple for correlated references (the paper restricts
/// itself to direct correlation; so do we).
struct EvalContext {
  const Row* row = nullptr;
  const Row* outer_row = nullptr;
};

enum class ExprKind {
  kLiteral,
  kColumnRef,
  kComparison,
  kAnd,
  kOr,
  kNot,
  kArithmetic,
  kLike,
  kIsNull,
  kFunction,
  kSubquery,
};

enum class ArithOp { kAdd, kSub, kMul, kDiv };

/// Built-in scalar functions; primarily the NULL-aware combiners required
/// by aggregate decomposition (Eqv. 4).
enum class BuiltinFunc {
  kCoalesce,         ///< first non-NULL argument
  kAddIgnoreNull,    ///< sum of non-NULL args; NULL iff all args NULL
  kLeastIgnoreNull,  ///< min of non-NULL args; NULL iff all args NULL
  kGreatestIgnoreNull,
  kDivOrNullIfZero,  ///< a / b; NULL if b is NULL or 0 (avg recombination)
};

enum class SubqueryKind {
  kScalar,  ///< scalar (aggregate) subquery: yields one value
  kExists,  ///< EXISTS / NOT EXISTS
  kIn,      ///< probe IN / NOT IN (single-column subquery)
};

/// Abstract expression node. Immutable after construction except for
/// binder-owned binding state in ColumnRefExpr.
class Expr {
 public:
  virtual ~Expr() = default;

  virtual ExprKind kind() const = 0;

  /// Evaluates against `ctx`. Boolean-valued expressions return
  /// Value::Bool or NULL (= unknown).
  virtual Result<Value> Eval(const EvalContext& ctx) const = 0;

  /// Evaluates the expression for every selected row of `batch`, appending
  /// one value per row (in selection order) to `out`. `outer_row` is the
  /// correlation row shared by the whole batch. The base implementation
  /// loops Eval; hot node kinds override it with vectorized versions that
  /// preserve per-row short-circuit semantics.
  virtual Status EvalBatch(const RowBatch& batch, const Row* outer_row,
                           std::vector<Value>* out) const;

  /// Partitions the batch's selected rows by the expression's 3VL truth
  /// value: storage indices (entries of batch.selection(), in batch
  /// order) are appended to `sel_true`, and to `sel_false` / `sel_null`
  /// when those are non-null. Passing the same vector as `sel_false` and
  /// `sel_null` collects the complement of TRUE as one ordered stream —
  /// exactly the σ± split of a bypass selection. The base implementation
  /// goes through EvalBatch; comparisons override it with a fast path
  /// that never materializes a Value per row.
  virtual Status PartitionBatch(const RowBatch& batch, const Row* outer_row,
                                std::vector<uint32_t>* sel_true,
                                std::vector<uint32_t>* sel_false,
                                std::vector<uint32_t>* sel_null) const;

  /// Deep copy (nested logical plans deep-copied as well).
  virtual ExprPtr Clone() const = 0;

  /// SQL-ish display form for EXPLAIN output and debugging.
  virtual std::string ToString() const = 0;

  /// Children for generic traversal (subquery plans are not children).
  virtual std::vector<ExprPtr> children() const { return {}; }
};

/// Constant.
class LiteralExpr : public Expr {
 public:
  explicit LiteralExpr(Value value) : value_(std::move(value)) {}
  ExprKind kind() const override { return ExprKind::kLiteral; }
  const Value& value() const { return value_; }
  Result<Value> Eval(const EvalContext& ctx) const override;
  Status EvalBatch(const RowBatch& batch, const Row* outer_row,
                   std::vector<Value>* out) const override;
  ExprPtr Clone() const override;
  std::string ToString() const override { return value_.ToString(); }

 private:
  Value value_;
};

/// Column reference. Logical form: (qualifier, name) with `is_outer`
/// marking a correlated reference to the enclosing block. Physical form:
/// `slot` >= 0 after binding.
class ColumnRefExpr : public Expr {
 public:
  ColumnRefExpr(std::string qualifier, std::string name, bool is_outer)
      : qualifier_(std::move(qualifier)),
        name_(std::move(name)),
        is_outer_(is_outer) {}

  ExprKind kind() const override { return ExprKind::kColumnRef; }
  const std::string& qualifier() const { return qualifier_; }
  const std::string& name() const { return name_; }
  bool is_outer() const { return is_outer_; }
  int slot() const { return slot_; }

  /// Binder hooks (planner / rewriter only).
  void set_slot(int slot) { slot_ = slot; }
  void set_is_outer(bool outer) { is_outer_ = outer; }
  void set_qualifier(std::string q) { qualifier_ = std::move(q); }
  void set_name(std::string n) { name_ = std::move(n); }

  Result<Value> Eval(const EvalContext& ctx) const override;
  Status EvalBatch(const RowBatch& batch, const Row* outer_row,
                   std::vector<Value>* out) const override;
  ExprPtr Clone() const override;
  std::string ToString() const override;

 private:
  std::string qualifier_;
  std::string name_;
  bool is_outer_;
  int slot_ = -1;
};

/// Binary comparison with a linking/correlation operator θ.
class ComparisonExpr : public Expr {
 public:
  ComparisonExpr(CompareOp op, ExprPtr left, ExprPtr right)
      : op_(op), left_(std::move(left)), right_(std::move(right)) {}
  ExprKind kind() const override { return ExprKind::kComparison; }
  CompareOp op() const { return op_; }
  const ExprPtr& left() const { return left_; }
  const ExprPtr& right() const { return right_; }
  Result<Value> Eval(const EvalContext& ctx) const override;
  Status EvalBatch(const RowBatch& batch, const Row* outer_row,
                   std::vector<Value>* out) const override;
  Status PartitionBatch(const RowBatch& batch, const Row* outer_row,
                        std::vector<uint32_t>* sel_true,
                        std::vector<uint32_t>* sel_false,
                        std::vector<uint32_t>* sel_null) const override;
  ExprPtr Clone() const override;
  std::string ToString() const override;
  std::vector<ExprPtr> children() const override {
    return {left_, right_};
  }

 private:
  CompareOp op_;
  ExprPtr left_;
  ExprPtr right_;
};

/// N-ary conjunction (3VL).
class AndExpr : public Expr {
 public:
  explicit AndExpr(std::vector<ExprPtr> terms) : terms_(std::move(terms)) {}
  ExprKind kind() const override { return ExprKind::kAnd; }
  const std::vector<ExprPtr>& terms() const { return terms_; }
  Result<Value> Eval(const EvalContext& ctx) const override;
  Status EvalBatch(const RowBatch& batch, const Row* outer_row,
                   std::vector<Value>* out) const override;
  ExprPtr Clone() const override;
  std::string ToString() const override;
  std::vector<ExprPtr> children() const override { return terms_; }

 private:
  std::vector<ExprPtr> terms_;
};

/// N-ary disjunction (3VL, short-circuit on true).
class OrExpr : public Expr {
 public:
  explicit OrExpr(std::vector<ExprPtr> terms) : terms_(std::move(terms)) {}
  ExprKind kind() const override { return ExprKind::kOr; }
  const std::vector<ExprPtr>& terms() const { return terms_; }
  Result<Value> Eval(const EvalContext& ctx) const override;
  Status EvalBatch(const RowBatch& batch, const Row* outer_row,
                   std::vector<Value>* out) const override;
  ExprPtr Clone() const override;
  std::string ToString() const override;
  std::vector<ExprPtr> children() const override { return terms_; }

 private:
  std::vector<ExprPtr> terms_;
};

/// 3VL negation.
class NotExpr : public Expr {
 public:
  explicit NotExpr(ExprPtr input) : input_(std::move(input)) {}
  ExprKind kind() const override { return ExprKind::kNot; }
  const ExprPtr& input() const { return input_; }
  Result<Value> Eval(const EvalContext& ctx) const override;
  Status EvalBatch(const RowBatch& batch, const Row* outer_row,
                   std::vector<Value>* out) const override;
  ExprPtr Clone() const override;
  std::string ToString() const override;
  std::vector<ExprPtr> children() const override { return {input_}; }

 private:
  ExprPtr input_;
};

/// Arithmetic; +,-,* preserve int64 on int64 inputs, / yields double.
/// NULL operands propagate.
class ArithmeticExpr : public Expr {
 public:
  ArithmeticExpr(ArithOp op, ExprPtr left, ExprPtr right)
      : op_(op), left_(std::move(left)), right_(std::move(right)) {}
  ExprKind kind() const override { return ExprKind::kArithmetic; }
  ArithOp op() const { return op_; }
  const ExprPtr& left() const { return left_; }
  const ExprPtr& right() const { return right_; }
  Result<Value> Eval(const EvalContext& ctx) const override;
  Status EvalBatch(const RowBatch& batch, const Row* outer_row,
                   std::vector<Value>* out) const override;
  ExprPtr Clone() const override;
  std::string ToString() const override;
  std::vector<ExprPtr> children() const override {
    return {left_, right_};
  }

 private:
  Result<Value> Combine(const Value& l, const Value& r) const;

  ArithOp op_;
  ExprPtr left_;
  ExprPtr right_;
};

/// input LIKE 'pattern' ('%' and '_' wildcards).
class LikeExpr : public Expr {
 public:
  LikeExpr(ExprPtr input, std::string pattern, bool negated)
      : input_(std::move(input)),
        pattern_(std::move(pattern)),
        negated_(negated) {}
  ExprKind kind() const override { return ExprKind::kLike; }
  const ExprPtr& input() const { return input_; }
  const std::string& pattern() const { return pattern_; }
  bool negated() const { return negated_; }
  Result<Value> Eval(const EvalContext& ctx) const override;
  Status EvalBatch(const RowBatch& batch, const Row* outer_row,
                   std::vector<Value>* out) const override;
  Status PartitionBatch(const RowBatch& batch, const Row* outer_row,
                        std::vector<uint32_t>* sel_true,
                        std::vector<uint32_t>* sel_false,
                        std::vector<uint32_t>* sel_null) const override;
  ExprPtr Clone() const override;
  std::string ToString() const override;
  std::vector<ExprPtr> children() const override { return {input_}; }

 private:
  ExprPtr input_;
  std::string pattern_;
  bool negated_;
};

/// input IS [NOT] NULL (always two-valued).
class IsNullExpr : public Expr {
 public:
  IsNullExpr(ExprPtr input, bool negated)
      : input_(std::move(input)), negated_(negated) {}
  ExprKind kind() const override { return ExprKind::kIsNull; }
  const ExprPtr& input() const { return input_; }
  bool negated() const { return negated_; }
  Result<Value> Eval(const EvalContext& ctx) const override;
  Status EvalBatch(const RowBatch& batch, const Row* outer_row,
                   std::vector<Value>* out) const override;
  ExprPtr Clone() const override;
  std::string ToString() const override;
  std::vector<ExprPtr> children() const override { return {input_}; }

 private:
  ExprPtr input_;
  bool negated_;
};

/// Built-in scalar function call.
class FunctionExpr : public Expr {
 public:
  FunctionExpr(BuiltinFunc func, std::vector<ExprPtr> args)
      : func_(func), args_(std::move(args)) {}
  ExprKind kind() const override { return ExprKind::kFunction; }
  BuiltinFunc func() const { return func_; }
  const std::vector<ExprPtr>& args() const { return args_; }
  Result<Value> Eval(const EvalContext& ctx) const override;
  ExprPtr Clone() const override;
  std::string ToString() const override;
  std::vector<ExprPtr> children() const override { return args_; }

 private:
  BuiltinFunc func_;
  std::vector<ExprPtr> args_;
};

/// A nested query block used as an expression. Before lowering it carries
/// the block's logical plan; the planner installs an executable
/// CorrelatedSubplan. Evaluating it re-executes the block per outer tuple
/// — exactly the nested-loop evaluation the paper's canonical plans pay.
class SubqueryExpr : public Expr {
 public:
  SubqueryExpr(SubqueryKind subquery_kind, LogicalOpPtr plan)
      : subquery_kind_(subquery_kind), plan_(std::move(plan)) {}

  ExprKind kind() const override { return ExprKind::kSubquery; }
  SubqueryKind subquery_kind() const { return subquery_kind_; }
  bool negated() const { return negated_; }
  void set_negated(bool negated) { negated_ = negated; }

  /// The probe expression of `probe IN (...)`; null otherwise.
  const ExprPtr& probe() const { return probe_; }
  void set_probe(ExprPtr probe) { probe_ = std::move(probe); }

  const LogicalOpPtr& plan() const { return plan_; }
  void set_plan(LogicalOpPtr plan) { plan_ = std::move(plan); }

  const CorrelatedSubplanPtr& subplan() const { return subplan_; }
  void set_subplan(CorrelatedSubplanPtr subplan) {
    subplan_ = std::move(subplan);
  }

  Result<Value> Eval(const EvalContext& ctx) const override;
  ExprPtr Clone() const override;
  std::string ToString() const override;
  std::vector<ExprPtr> children() const override {
    if (probe_) return {probe_};
    return {};
  }

 private:
  SubqueryKind subquery_kind_;
  bool negated_ = false;
  ExprPtr probe_;
  LogicalOpPtr plan_;
  CorrelatedSubplanPtr subplan_;
};

/// Convenience factories.
ExprPtr MakeLiteral(Value v);
ExprPtr MakeColumnRef(std::string qualifier, std::string name,
                      bool is_outer = false);
ExprPtr MakeComparison(CompareOp op, ExprPtr left, ExprPtr right);
/// Builds a (flattened) conjunction; returns the single term if only one.
ExprPtr MakeAnd(std::vector<ExprPtr> terms);
/// Builds a (flattened) disjunction; returns the single term if only one.
ExprPtr MakeOr(std::vector<ExprPtr> terms);
ExprPtr MakeNot(ExprPtr input);

/// Interprets an evaluated Value as a 3VL truth value (NULL → unknown;
/// non-bool non-null values are an execution error upstream, treated as
/// unknown here).
TriBool ValueToTriBool(const Value& v);

}  // namespace bypass

#endif  // BYPASSDB_EXPR_EXPR_H_
