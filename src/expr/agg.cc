#include "expr/agg.h"

#include "common/check.h"
#include "expr/column_kernels.h"

namespace bypass {

const char* AggFuncToString(AggFunc func) {
  switch (func) {
    case AggFunc::kCount:
      return "count";
    case AggFunc::kSum:
      return "sum";
    case AggFunc::kAvg:
      return "avg";
    case AggFunc::kMin:
      return "min";
    case AggFunc::kMax:
      return "max";
  }
  return "?";
}

std::string AggregateSpec::ToString() const {
  std::string out = AggFuncToString(func);
  out += "(";
  if (distinct) out += "DISTINCT ";
  out += arg ? arg->ToString() : "*";
  out += ")";
  return out;
}

bool IsAggDecomposable(const AggregateSpec& spec) {
  // count/sum/avg/min/max all decompose; DISTINCT variants of count/sum/avg
  // do not (paper, footnote 1). DISTINCT min/max would decompose, but we
  // treat all DISTINCT aggregates uniformly via Eqv. 5 for simplicity —
  // this only costs plan quality, never correctness.
  return !spec.distinct;
}

Value AggEmptyValue(AggFunc func) {
  return func == AggFunc::kCount ? Value::Int64(0) : Value::Null();
}

void Aggregator::Reset() {
  count_ = 0;
  sum_is_double_ = false;
  int_sum_ = 0;
  double_sum_ = 0;
  extreme_ = Value::Null();
  distinct_.Clear();
}

Status Aggregator::Accumulate(const EvalContext& ctx) {
  if (spec_->arg == nullptr) {
    // '*': operate on the whole input row. COUNT(*) counts every row;
    // COUNT(DISTINCT *) counts distinct rows. Other functions cannot take
    // '*' (rejected at bind time).
    if (spec_->distinct) {
      if (!distinct_.Insert(*ctx.row)) return Status::OK();
    }
    ++count_;
    return Status::OK();
  }
  BYPASS_ASSIGN_OR_RETURN(Value v, spec_->arg->Eval(ctx));
  if (v.is_null()) return Status::OK();  // aggregates skip NULL inputs
  if (spec_->distinct) {
    if (!distinct_.Insert(Row{v})) return Status::OK();
  }
  return AccumulateValue(v, *ctx.row);
}

bool Aggregator::AccumulateColumnar(const RowBatch& batch) {
  if (spec_->distinct) return false;
  if (spec_->arg == nullptr) {
    // COUNT(*): every selected row counts; no data access at all.
    count_ += static_cast<int64_t>(batch.size());
    return true;
  }
  ColumnOperand operand;
  if (!ResolveColumnOperand(*spec_->arg, batch, /*outer_row=*/nullptr,
                            &operand) ||
      operand.column == nullptr) {
    return false;
  }
  const ColumnVector& col = *operand.column;
  const std::vector<uint32_t>& sel = batch.selection();
  const size_t n = sel.size();
  switch (spec_->func) {
    case AggFunc::kCount: {
      if (!col.has_nulls()) {
        count_ += static_cast<int64_t>(n);
      } else {
        for (size_t i = 0; i < n; ++i) {
          if (!col.IsNull(sel[i])) ++count_;
        }
      }
      return true;
    }
    case AggFunc::kSum:
    case AggFunc::kAvg: {
      if (col.type() == DataType::kInt64) {
        const int64_t* data = col.i64_data();
        for (size_t i = 0; i < n; ++i) {
          const uint32_t idx = sel[i];
          if (col.IsNull(idx)) continue;
          ++count_;
          int_sum_ += data[idx];
          double_sum_ += static_cast<double>(data[idx]);
        }
        return true;
      }
      if (col.type() == DataType::kDouble) {
        const double* data = col.f64_data();
        for (size_t i = 0; i < n; ++i) {
          const uint32_t idx = sel[i];
          if (col.IsNull(idx)) continue;
          ++count_;
          sum_is_double_ = true;
          double_sum_ += data[idx];
        }
        return true;
      }
      // bool/string columns: let the row path raise the SQL type error.
      return false;
    }
    case AggFunc::kMin:
    case AggFunc::kMax: {
      const bool is_min = spec_->func == AggFunc::kMin;
      if (col.type() == DataType::kInt64) {
        if (!extreme_.is_null() && !extreme_.is_int64()) return false;
        const int64_t* data = col.i64_data();
        bool has = !extreme_.is_null();
        int64_t best = has ? extreme_.int64_value() : 0;
        for (size_t i = 0; i < n; ++i) {
          const uint32_t idx = sel[i];
          if (col.IsNull(idx)) continue;
          const int64_t v = data[idx];
          if (!has) {
            has = true;
            best = v;
          } else if (is_min ? v < best : v > best) {
            best = v;
          }
        }
        if (has) extreme_ = Value::Int64(best);
        return true;
      }
      if (col.type() == DataType::kDouble) {
        if (!extreme_.is_null() && !extreme_.is_double()) return false;
        const double* data = col.f64_data();
        bool has = !extreme_.is_null();
        double best = has ? extreme_.double_value() : 0;
        // Raw </> replicates OrderCompare's CompareDoubles fold exactly,
        // including its NaN-compares-equal behaviour, because the
        // elements are visited in the same sequential order.
        for (size_t i = 0; i < n; ++i) {
          const uint32_t idx = sel[i];
          if (col.IsNull(idx)) continue;
          const double v = data[idx];
          if (!has) {
            has = true;
            best = v;
          } else if (is_min ? v < best : v > best) {
            best = v;
          }
        }
        if (has) extreme_ = Value::Double(best);
        return true;
      }
      return false;
    }
  }
  return false;
}

Status Aggregator::AccumulateValue(const Value& v, const Row&) {
  switch (spec_->func) {
    case AggFunc::kCount:
      ++count_;
      return Status::OK();
    case AggFunc::kSum:
    case AggFunc::kAvg: {
      if (!v.is_numeric()) {
        return Status::ExecutionError("sum/avg on non-numeric value " +
                                      v.ToString());
      }
      ++count_;
      if (v.is_double()) sum_is_double_ = true;
      if (v.is_int64()) int_sum_ += v.int64_value();
      double_sum_ += v.AsDouble();
      return Status::OK();
    }
    case AggFunc::kMin:
    case AggFunc::kMax: {
      if (extreme_.is_null()) {
        extreme_ = v;
      } else {
        const int c = v.OrderCompare(extreme_);
        if ((spec_->func == AggFunc::kMin && c < 0) ||
            (spec_->func == AggFunc::kMax && c > 0)) {
          extreme_ = v;
        }
      }
      return Status::OK();
    }
  }
  BYPASS_UNREACHABLE("bad AggFunc");
}

Status Aggregator::Merge(const Aggregator& other) {
  if (spec_->distinct) {
    // Re-apply only the entries this accumulator has not seen; the other
    // side's sums/counts cannot be added directly because the two dedup
    // sets may overlap.
    Status st = Status::OK();
    other.distinct_.ForEach([&](const Row& key) {
      if (!st.ok()) return;
      if (!distinct_.Insert(key)) return;
      if (spec_->arg == nullptr) {
        ++count_;
      } else {
        st = AccumulateValue(key[0], key);
      }
    });
    return st;
  }
  count_ += other.count_;
  sum_is_double_ = sum_is_double_ || other.sum_is_double_;
  int_sum_ += other.int_sum_;
  double_sum_ += other.double_sum_;
  if (!other.extreme_.is_null()) {
    if (extreme_.is_null()) {
      extreme_ = other.extreme_;
    } else {
      const int c = other.extreme_.OrderCompare(extreme_);
      if ((spec_->func == AggFunc::kMin && c < 0) ||
          (spec_->func == AggFunc::kMax && c > 0)) {
        extreme_ = other.extreme_;
      }
    }
  }
  return Status::OK();
}

Result<Value> Aggregator::Finalize() const {
  switch (spec_->func) {
    case AggFunc::kCount:
      return Value::Int64(count_);
    case AggFunc::kSum:
      if (count_ == 0) return Value::Null();  // SQL: sum(∅) is NULL
      return sum_is_double_ ? Value::Double(double_sum_)
                            : Value::Int64(int_sum_);
    case AggFunc::kAvg:
      if (count_ == 0) return Value::Null();
      return Value::Double(double_sum_ / static_cast<double>(count_));
    case AggFunc::kMin:
    case AggFunc::kMax:
      return extreme_;
  }
  BYPASS_UNREACHABLE("bad AggFunc");
}

AggregatorSet::AggregatorSet(const std::vector<AggregateSpec>* specs) {
  aggs_.reserve(specs->size());
  for (const AggregateSpec& s : *specs) aggs_.emplace_back(&s);
  Reset();
}

void AggregatorSet::Reset() {
  for (Aggregator& a : aggs_) a.Reset();
}

Status AggregatorSet::Accumulate(const EvalContext& ctx) {
  for (Aggregator& a : aggs_) {
    BYPASS_RETURN_IF_ERROR(a.Accumulate(ctx));
  }
  return Status::OK();
}

Status AggregatorSet::AccumulateBatch(const RowBatch& batch,
                                      const Row* outer_row) {
  std::vector<Aggregator*> fallback;
  for (Aggregator& a : aggs_) {
    if (!a.AccumulateColumnar(batch)) fallback.push_back(&a);
  }
  if (fallback.empty()) return Status::OK();
  const size_t n = batch.size();
  for (size_t i = 0; i < n; ++i) {
    const Row& row = batch.row(i);
    EvalContext ectx{&row, outer_row};
    for (Aggregator* a : fallback) {
      BYPASS_RETURN_IF_ERROR(a->Accumulate(ectx));
    }
  }
  return Status::OK();
}

Status AggregatorSet::Merge(const AggregatorSet& other) {
  BYPASS_CHECK_MSG(aggs_.size() == other.aggs_.size(),
                   "merging AggregatorSets of different shape");
  for (size_t i = 0; i < aggs_.size(); ++i) {
    BYPASS_RETURN_IF_ERROR(aggs_[i].Merge(other.aggs_[i]));
  }
  return Status::OK();
}

Status AggregatorSet::FinalizeInto(Row* out) const {
  for (const Aggregator& a : aggs_) {
    BYPASS_ASSIGN_OR_RETURN(Value v, a.Finalize());
    out->push_back(std::move(v));
  }
  return Status::OK();
}

}  // namespace bypass
