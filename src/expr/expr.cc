#include "expr/expr.h"

#include <cmath>

#include "common/check.h"
#include "common/string_util.h"

namespace bypass {

namespace {

Value TriBoolToValue(TriBool t) {
  switch (t) {
    case TriBool::kTrue:
      return Value::Bool(true);
    case TriBool::kFalse:
      return Value::Bool(false);
    case TriBool::kUnknown:
      return Value::Null();
  }
  BYPASS_UNREACHABLE("bad TriBool");
}

}  // namespace

TriBool ValueToTriBool(const Value& v) {
  if (v.is_null()) return TriBool::kUnknown;
  if (v.is_bool()) {
    return v.bool_value() ? TriBool::kTrue : TriBool::kFalse;
  }
  return TriBool::kUnknown;
}

// ---------------------------------------------------------------- Literal

Result<Value> LiteralExpr::Eval(const EvalContext&) const { return value_; }

ExprPtr LiteralExpr::Clone() const {
  return std::make_shared<LiteralExpr>(value_);
}

// -------------------------------------------------------------- ColumnRef

Result<Value> ColumnRefExpr::Eval(const EvalContext& ctx) const {
  if (slot_ < 0) {
    return Status::Internal("evaluating unbound column reference " +
                            ToString());
  }
  const Row* source = is_outer_ ? ctx.outer_row : ctx.row;
  if (source == nullptr) {
    return Status::Internal("no " +
                            std::string(is_outer_ ? "outer " : "") +
                            "row bound while evaluating " + ToString());
  }
  if (static_cast<size_t>(slot_) >= source->size()) {
    return Status::Internal("slot out of range for " + ToString());
  }
  return (*source)[static_cast<size_t>(slot_)];
}

ExprPtr ColumnRefExpr::Clone() const {
  auto copy = std::make_shared<ColumnRefExpr>(qualifier_, name_, is_outer_);
  copy->set_slot(slot_);
  return copy;
}

std::string ColumnRefExpr::ToString() const {
  std::string out;
  if (is_outer_) out += "^";  // correlated (outer block) reference
  if (!qualifier_.empty()) {
    out += qualifier_;
    out += ".";
  }
  out += name_;
  return out;
}

// ------------------------------------------------------------- Comparison

Result<Value> ComparisonExpr::Eval(const EvalContext& ctx) const {
  BYPASS_ASSIGN_OR_RETURN(Value l, left_->Eval(ctx));
  BYPASS_ASSIGN_OR_RETURN(Value r, right_->Eval(ctx));
  return TriBoolToValue(l.Compare(op_, r));
}

ExprPtr ComparisonExpr::Clone() const {
  return std::make_shared<ComparisonExpr>(op_, left_->Clone(),
                                          right_->Clone());
}

std::string ComparisonExpr::ToString() const {
  return "(" + left_->ToString() + " " + CompareOpToString(op_) + " " +
         right_->ToString() + ")";
}

// ---------------------------------------------------------------- And/Or

Result<Value> AndExpr::Eval(const EvalContext& ctx) const {
  TriBool acc = TriBool::kTrue;
  for (const ExprPtr& t : terms_) {
    BYPASS_ASSIGN_OR_RETURN(Value v, t->Eval(ctx));
    acc = TriAnd(acc, ValueToTriBool(v));
    if (acc == TriBool::kFalse) break;  // short-circuit
  }
  return TriBoolToValue(acc);
}

ExprPtr AndExpr::Clone() const {
  std::vector<ExprPtr> terms;
  terms.reserve(terms_.size());
  for (const ExprPtr& t : terms_) terms.push_back(t->Clone());
  return std::make_shared<AndExpr>(std::move(terms));
}

std::string AndExpr::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(terms_.size());
  for (const ExprPtr& t : terms_) parts.push_back(t->ToString());
  return "(" + Join(parts, " AND ") + ")";
}

Result<Value> OrExpr::Eval(const EvalContext& ctx) const {
  TriBool acc = TriBool::kFalse;
  for (const ExprPtr& t : terms_) {
    BYPASS_ASSIGN_OR_RETURN(Value v, t->Eval(ctx));
    acc = TriOr(acc, ValueToTriBool(v));
    if (acc == TriBool::kTrue) break;  // short-circuit: the bypass intuition
  }
  return TriBoolToValue(acc);
}

ExprPtr OrExpr::Clone() const {
  std::vector<ExprPtr> terms;
  terms.reserve(terms_.size());
  for (const ExprPtr& t : terms_) terms.push_back(t->Clone());
  return std::make_shared<OrExpr>(std::move(terms));
}

std::string OrExpr::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(terms_.size());
  for (const ExprPtr& t : terms_) parts.push_back(t->ToString());
  return "(" + Join(parts, " OR ") + ")";
}

// -------------------------------------------------------------------- Not

Result<Value> NotExpr::Eval(const EvalContext& ctx) const {
  BYPASS_ASSIGN_OR_RETURN(Value v, input_->Eval(ctx));
  return TriBoolToValue(TriNot(ValueToTriBool(v)));
}

ExprPtr NotExpr::Clone() const {
  return std::make_shared<NotExpr>(input_->Clone());
}

std::string NotExpr::ToString() const {
  return "(NOT " + input_->ToString() + ")";
}

// ------------------------------------------------------------- Arithmetic

Result<Value> ArithmeticExpr::Eval(const EvalContext& ctx) const {
  BYPASS_ASSIGN_OR_RETURN(Value l, left_->Eval(ctx));
  BYPASS_ASSIGN_OR_RETURN(Value r, right_->Eval(ctx));
  if (l.is_null() || r.is_null()) return Value::Null();
  if (!l.is_numeric() || !r.is_numeric()) {
    return Status::ExecutionError("arithmetic on non-numeric values: " +
                                  ToString());
  }
  if (op_ == ArithOp::kDiv) {
    const double denom = r.AsDouble();
    if (denom == 0.0) {
      return Status::ExecutionError("division by zero: " + ToString());
    }
    return Value::Double(l.AsDouble() / denom);
  }
  if (l.is_int64() && r.is_int64()) {
    const int64_t a = l.int64_value(), b = r.int64_value();
    switch (op_) {
      case ArithOp::kAdd:
        return Value::Int64(a + b);
      case ArithOp::kSub:
        return Value::Int64(a - b);
      case ArithOp::kMul:
        return Value::Int64(a * b);
      case ArithOp::kDiv:
        break;
    }
  }
  const double a = l.AsDouble(), b = r.AsDouble();
  switch (op_) {
    case ArithOp::kAdd:
      return Value::Double(a + b);
    case ArithOp::kSub:
      return Value::Double(a - b);
    case ArithOp::kMul:
      return Value::Double(a * b);
    case ArithOp::kDiv:
      break;
  }
  BYPASS_UNREACHABLE("bad ArithOp");
}

ExprPtr ArithmeticExpr::Clone() const {
  return std::make_shared<ArithmeticExpr>(op_, left_->Clone(),
                                          right_->Clone());
}

std::string ArithmeticExpr::ToString() const {
  const char* sym = "?";
  switch (op_) {
    case ArithOp::kAdd:
      sym = "+";
      break;
    case ArithOp::kSub:
      sym = "-";
      break;
    case ArithOp::kMul:
      sym = "*";
      break;
    case ArithOp::kDiv:
      sym = "/";
      break;
  }
  return "(" + left_->ToString() + " " + sym + " " + right_->ToString() +
         ")";
}

// ------------------------------------------------------------------- Like

Result<Value> LikeExpr::Eval(const EvalContext& ctx) const {
  BYPASS_ASSIGN_OR_RETURN(Value v, input_->Eval(ctx));
  if (v.is_null()) return Value::Null();
  if (!v.is_string()) {
    return Status::ExecutionError("LIKE on non-string value: " +
                                  ToString());
  }
  const bool match = LikeMatch(v.string_value(), pattern_);
  return Value::Bool(negated_ ? !match : match);
}

ExprPtr LikeExpr::Clone() const {
  return std::make_shared<LikeExpr>(input_->Clone(), pattern_, negated_);
}

std::string LikeExpr::ToString() const {
  return "(" + input_->ToString() + (negated_ ? " NOT LIKE '" : " LIKE '") +
         pattern_ + "')";
}

// ----------------------------------------------------------------- IsNull

Result<Value> IsNullExpr::Eval(const EvalContext& ctx) const {
  BYPASS_ASSIGN_OR_RETURN(Value v, input_->Eval(ctx));
  const bool is_null = v.is_null();
  return Value::Bool(negated_ ? !is_null : is_null);
}

ExprPtr IsNullExpr::Clone() const {
  return std::make_shared<IsNullExpr>(input_->Clone(), negated_);
}

std::string IsNullExpr::ToString() const {
  return "(" + input_->ToString() +
         (negated_ ? " IS NOT NULL)" : " IS NULL)");
}

// --------------------------------------------------------------- Function

Result<Value> FunctionExpr::Eval(const EvalContext& ctx) const {
  std::vector<Value> vals;
  vals.reserve(args_.size());
  for (const ExprPtr& a : args_) {
    BYPASS_ASSIGN_OR_RETURN(Value v, a->Eval(ctx));
    vals.push_back(std::move(v));
  }
  switch (func_) {
    case BuiltinFunc::kCoalesce: {
      for (const Value& v : vals) {
        if (!v.is_null()) return v;
      }
      return Value::Null();
    }
    case BuiltinFunc::kAddIgnoreNull: {
      bool any = false;
      bool all_int = true;
      double dsum = 0;
      int64_t isum = 0;
      for (const Value& v : vals) {
        if (v.is_null()) continue;
        if (!v.is_numeric()) {
          return Status::ExecutionError("ADD_IGNORE_NULL on non-numeric");
        }
        any = true;
        if (v.is_int64()) {
          isum += v.int64_value();
        } else {
          all_int = false;
        }
        dsum += v.AsDouble();
      }
      if (!any) return Value::Null();
      return all_int ? Value::Int64(isum) : Value::Double(dsum);
    }
    case BuiltinFunc::kLeastIgnoreNull:
    case BuiltinFunc::kGreatestIgnoreNull: {
      Value best;
      for (const Value& v : vals) {
        if (v.is_null()) continue;
        if (best.is_null()) {
          best = v;
        } else {
          const int c = v.OrderCompare(best);
          if ((func_ == BuiltinFunc::kLeastIgnoreNull && c < 0) ||
              (func_ == BuiltinFunc::kGreatestIgnoreNull && c > 0)) {
            best = v;
          }
        }
      }
      return best;
    }
    case BuiltinFunc::kDivOrNullIfZero: {
      if (vals.size() != 2) {
        return Status::Internal("DIV_OR_NULL expects 2 arguments");
      }
      const Value& num = vals[0];
      const Value& den = vals[1];
      if (num.is_null() || den.is_null()) return Value::Null();
      if (!num.is_numeric() || !den.is_numeric()) {
        return Status::ExecutionError("DIV_OR_NULL on non-numeric");
      }
      const double d = den.AsDouble();
      if (d == 0.0) return Value::Null();
      return Value::Double(num.AsDouble() / d);
    }
  }
  BYPASS_UNREACHABLE("bad BuiltinFunc");
}

ExprPtr FunctionExpr::Clone() const {
  std::vector<ExprPtr> args;
  args.reserve(args_.size());
  for (const ExprPtr& a : args_) args.push_back(a->Clone());
  return std::make_shared<FunctionExpr>(func_, std::move(args));
}

std::string FunctionExpr::ToString() const {
  const char* name = "?";
  switch (func_) {
    case BuiltinFunc::kCoalesce:
      name = "COALESCE";
      break;
    case BuiltinFunc::kAddIgnoreNull:
      name = "ADD_IGNORE_NULL";
      break;
    case BuiltinFunc::kLeastIgnoreNull:
      name = "LEAST_IGNORE_NULL";
      break;
    case BuiltinFunc::kGreatestIgnoreNull:
      name = "GREATEST_IGNORE_NULL";
      break;
    case BuiltinFunc::kDivOrNullIfZero:
      name = "DIV_OR_NULL";
      break;
  }
  std::vector<std::string> parts;
  parts.reserve(args_.size());
  for (const ExprPtr& a : args_) parts.push_back(a->ToString());
  return std::string(name) + "(" + Join(parts, ", ") + ")";
}

// --------------------------------------------------------------- Subquery

Result<Value> SubqueryExpr::Eval(const EvalContext& ctx) const {
  if (subplan_ == nullptr) {
    return Status::Internal(
        "subquery expression evaluated before lowering: " + ToString());
  }
  switch (subquery_kind_) {
    case SubqueryKind::kScalar: {
      return subplan_->EvalScalar(ctx.row);
    }
    case SubqueryKind::kExists: {
      BYPASS_ASSIGN_OR_RETURN(bool exists, subplan_->EvalExists(ctx.row));
      return Value::Bool(negated_ ? !exists : exists);
    }
    case SubqueryKind::kIn: {
      BYPASS_ASSIGN_OR_RETURN(Value probe, probe_->Eval(ctx));
      BYPASS_ASSIGN_OR_RETURN(TriBool in,
                              subplan_->EvalIn(probe, ctx.row));
      if (negated_) in = TriNot(in);
      switch (in) {
        case TriBool::kTrue:
          return Value::Bool(true);
        case TriBool::kFalse:
          return Value::Bool(false);
        case TriBool::kUnknown:
          return Value::Null();
      }
      BYPASS_UNREACHABLE("bad TriBool");
    }
  }
  BYPASS_UNREACHABLE("bad SubqueryKind");
}

ExprPtr SubqueryExpr::Clone() const {
  auto copy = std::make_shared<SubqueryExpr>(
      subquery_kind_, plan_ ? CloneLogicalPlan(plan_) : nullptr);
  copy->set_negated(negated_);
  if (probe_) copy->set_probe(probe_->Clone());
  copy->set_subplan(subplan_);  // executable subplans are shareable
  return copy;
}

std::string SubqueryExpr::ToString() const {
  std::string plan_str =
      plan_ ? LogicalPlanSummary(*plan_) : std::string("<lowered>");
  switch (subquery_kind_) {
    case SubqueryKind::kScalar:
      return "SCALAR(" + plan_str + ")";
    case SubqueryKind::kExists:
      return std::string(negated_ ? "NOT " : "") + "EXISTS(" + plan_str +
             ")";
    case SubqueryKind::kIn:
      return probe_->ToString() + (negated_ ? " NOT IN (" : " IN (") +
             plan_str + ")";
  }
  BYPASS_UNREACHABLE("bad SubqueryKind");
}

// -------------------------------------------------------------- Factories

ExprPtr MakeLiteral(Value v) {
  return std::make_shared<LiteralExpr>(std::move(v));
}

ExprPtr MakeColumnRef(std::string qualifier, std::string name,
                      bool is_outer) {
  return std::make_shared<ColumnRefExpr>(std::move(qualifier),
                                         std::move(name), is_outer);
}

ExprPtr MakeComparison(CompareOp op, ExprPtr left, ExprPtr right) {
  return std::make_shared<ComparisonExpr>(op, std::move(left),
                                          std::move(right));
}

namespace {

template <typename NodeT>
ExprPtr MakeFlattenedJunction(std::vector<ExprPtr> terms, ExprKind kind) {
  std::vector<ExprPtr> flat;
  for (ExprPtr& t : terms) {
    if (t->kind() == kind) {
      for (const ExprPtr& c : t->children()) flat.push_back(c);
    } else {
      flat.push_back(std::move(t));
    }
  }
  if (flat.size() == 1) return flat[0];
  return std::make_shared<NodeT>(std::move(flat));
}

}  // namespace

ExprPtr MakeAnd(std::vector<ExprPtr> terms) {
  BYPASS_CHECK(!terms.empty());
  return MakeFlattenedJunction<AndExpr>(std::move(terms), ExprKind::kAnd);
}

ExprPtr MakeOr(std::vector<ExprPtr> terms) {
  BYPASS_CHECK(!terms.empty());
  return MakeFlattenedJunction<OrExpr>(std::move(terms), ExprKind::kOr);
}

ExprPtr MakeNot(ExprPtr input) {
  return std::make_shared<NotExpr>(std::move(input));
}

}  // namespace bypass
