#include "expr/expr.h"

#include <cmath>
#include <numeric>

#include "common/check.h"
#include "common/string_util.h"
#include "expr/column_kernels.h"

namespace bypass {

namespace {

Value TriBoolToValue(TriBool t) {
  switch (t) {
    case TriBool::kTrue:
      return Value::Bool(true);
    case TriBool::kFalse:
      return Value::Bool(false);
    case TriBool::kUnknown:
      return Value::Null();
  }
  BYPASS_UNREACHABLE("bad TriBool");
}

}  // namespace

TriBool ValueToTriBool(const Value& v) {
  if (v.is_null()) return TriBool::kUnknown;
  if (v.is_bool()) {
    return v.bool_value() ? TriBool::kTrue : TriBool::kFalse;
  }
  return TriBool::kUnknown;
}

Status Expr::EvalBatch(const RowBatch& batch, const Row* outer_row,
                       std::vector<Value>* out) const {
  const size_t n = batch.size();
  out->reserve(out->size() + n);
  for (size_t i = 0; i < n; ++i) {
    EvalContext ectx{&batch.row(i), outer_row};
    BYPASS_ASSIGN_OR_RETURN(Value v, Eval(ectx));
    out->push_back(std::move(v));
  }
  return Status::OK();
}

Status Expr::PartitionBatch(const RowBatch& batch, const Row* outer_row,
                            std::vector<uint32_t>* sel_true,
                            std::vector<uint32_t>* sel_false,
                            std::vector<uint32_t>* sel_null) const {
  std::vector<Value> values;
  BYPASS_RETURN_IF_ERROR(EvalBatch(batch, outer_row, &values));
  const std::vector<uint32_t>& sel = batch.selection();
  // Indexed by TriBool (kFalse=0, kTrue=1, kUnknown=2).
  std::vector<uint32_t>* const outs[3] = {sel_false, sel_true, sel_null};
  for (size_t i = 0; i < values.size(); ++i) {
    std::vector<uint32_t>* out =
        outs[static_cast<int>(ValueToTriBool(values[i]))];
    if (out != nullptr) out->push_back(sel[i]);
  }
  return Status::OK();
}

// ---------------------------------------------------------------- Literal

Result<Value> LiteralExpr::Eval(const EvalContext&) const { return value_; }

Status LiteralExpr::EvalBatch(const RowBatch& batch, const Row*,
                              std::vector<Value>* out) const {
  out->insert(out->end(), batch.size(), value_);
  return Status::OK();
}

ExprPtr LiteralExpr::Clone() const {
  return std::make_shared<LiteralExpr>(value_);
}

// -------------------------------------------------------------- ColumnRef

Result<Value> ColumnRefExpr::Eval(const EvalContext& ctx) const {
  if (slot_ < 0) {
    return Status::Internal("evaluating unbound column reference " +
                            ToString());
  }
  const Row* source = is_outer_ ? ctx.outer_row : ctx.row;
  if (source == nullptr) {
    return Status::Internal("no " +
                            std::string(is_outer_ ? "outer " : "") +
                            "row bound while evaluating " + ToString());
  }
  if (static_cast<size_t>(slot_) >= source->size()) {
    return Status::Internal("slot out of range for " + ToString());
  }
  return (*source)[static_cast<size_t>(slot_)];
}

Status ColumnRefExpr::EvalBatch(const RowBatch& batch, const Row* outer_row,
                                std::vector<Value>* out) const {
  if (slot_ < 0) {
    return Status::Internal("evaluating unbound column reference " +
                            ToString());
  }
  const size_t n = batch.size();
  const size_t slot = static_cast<size_t>(slot_);
  out->reserve(out->size() + n);
  if (is_outer_) {
    // The correlation row is shared by the whole batch: evaluate once.
    if (outer_row == nullptr) {
      return Status::Internal("no outer row bound while evaluating " +
                              ToString());
    }
    if (slot >= outer_row->size()) {
      return Status::Internal("slot out of range for " + ToString());
    }
    out->insert(out->end(), n, (*outer_row)[slot]);
    return Status::OK();
  }
  for (size_t i = 0; i < n; ++i) {
    const Row& row = batch.row(i);
    if (slot >= row.size()) {
      return Status::Internal("slot out of range for " + ToString());
    }
    out->push_back(row[slot]);
  }
  return Status::OK();
}

ExprPtr ColumnRefExpr::Clone() const {
  auto copy = std::make_shared<ColumnRefExpr>(qualifier_, name_, is_outer_);
  copy->set_slot(slot_);
  return copy;
}

std::string ColumnRefExpr::ToString() const {
  std::string out;
  if (is_outer_) out += "^";  // correlated (outer block) reference
  if (!qualifier_.empty()) {
    out += qualifier_;
    out += ".";
  }
  out += name_;
  return out;
}

// ------------------------------------------------------------- Comparison

Result<Value> ComparisonExpr::Eval(const EvalContext& ctx) const {
  BYPASS_ASSIGN_OR_RETURN(Value l, left_->Eval(ctx));
  BYPASS_ASSIGN_OR_RETURN(Value r, right_->Eval(ctx));
  return TriBoolToValue(l.Compare(op_, r));
}

namespace {

/// Batch-constant or per-row operand of a comparison fast path. Literals
/// and correlated references resolve to one Value for the whole batch;
/// bound input references resolve to a slot read per row.
struct FastOperand {
  const Value* constant = nullptr;
  size_t slot = 0;
};

bool ResolveFastOperand(const Expr& e, const Row* outer_row,
                        FastOperand* out) {
  if (e.kind() == ExprKind::kLiteral) {
    out->constant = &static_cast<const LiteralExpr&>(e).value();
    return true;
  }
  if (e.kind() == ExprKind::kColumnRef) {
    const auto& ref = static_cast<const ColumnRefExpr&>(e);
    if (ref.slot() < 0) return false;
    const size_t slot = static_cast<size_t>(ref.slot());
    if (ref.is_outer()) {
      if (outer_row == nullptr || slot >= outer_row->size()) return false;
      out->constant = &(*outer_row)[slot];
      return true;
    }
    out->slot = slot;
    return true;
  }
  return false;
}

}  // namespace

Status ComparisonExpr::EvalBatch(const RowBatch& batch,
                                 const Row* outer_row,
                                 std::vector<Value>* out) const {
  // Columnar kernel: one branch on (op, column type) per batch, raw
  // column data + null bitmaps per element.
  if (batch.columns() != nullptr) {
    ColumnOperand cl, cr;
    if (ResolveColumnOperand(*left_, batch, outer_row, &cl) &&
        ResolveColumnOperand(*right_, batch, outer_row, &cr) &&
        ColumnarCompareEval(op_, cl, cr, batch, out)) {
      return Status::OK();
    }
  }
  const size_t n = batch.size();
  FastOperand lop, rop;
  if (ResolveFastOperand(*left_, outer_row, &lop) &&
      ResolveFastOperand(*right_, outer_row, &rop)) {
    out->reserve(out->size() + n);
    for (size_t i = 0; i < n; ++i) {
      const Row& row = batch.row(i);
      if ((lop.constant == nullptr && lop.slot >= row.size()) ||
          (rop.constant == nullptr && rop.slot >= row.size())) {
        return Status::Internal("slot out of range for " + ToString());
      }
      const Value& l = lop.constant != nullptr ? *lop.constant
                                               : row[lop.slot];
      const Value& r = rop.constant != nullptr ? *rop.constant
                                               : row[rop.slot];
      out->push_back(TriBoolToValue(l.Compare(op_, r)));
    }
    return Status::OK();
  }
  std::vector<Value> l, r;
  BYPASS_RETURN_IF_ERROR(left_->EvalBatch(batch, outer_row, &l));
  BYPASS_RETURN_IF_ERROR(right_->EvalBatch(batch, outer_row, &r));
  out->reserve(out->size() + l.size());
  for (size_t i = 0; i < l.size(); ++i) {
    out->push_back(TriBoolToValue(l[i].Compare(op_, r[i])));
  }
  return Status::OK();
}

Status ComparisonExpr::PartitionBatch(const RowBatch& batch,
                                      const Row* outer_row,
                                      std::vector<uint32_t>* sel_true,
                                      std::vector<uint32_t>* sel_false,
                                      std::vector<uint32_t>* sel_null) const {
  // Fused columnar bypass-partition kernel: typed comparison and σ± split
  // in one pass over raw column data, no Value materialization.
  if (batch.columns() != nullptr) {
    ColumnOperand cl, cr;
    if (ResolveColumnOperand(*left_, batch, outer_row, &cl) &&
        ResolveColumnOperand(*right_, batch, outer_row, &cr) &&
        ColumnarComparePartition(op_, cl, cr, batch, sel_true, sel_false,
                                 sel_null)) {
      return Status::OK();
    }
  }
  FastOperand lop, rop;
  if (!ResolveFastOperand(*left_, outer_row, &lop) ||
      !ResolveFastOperand(*right_, outer_row, &rop)) {
    return Expr::PartitionBatch(batch, outer_row, sel_true, sel_false,
                                sel_null);
  }
  const size_t n = batch.size();
  const std::vector<uint32_t>& sel = batch.selection();
  // Indexed by TriBool (kFalse=0, kTrue=1, kUnknown=2): replaces the
  // per-row switch + null checks with one load in the hottest loop of
  // the engine.
  std::vector<uint32_t>* const outs[3] = {sel_false, sel_true, sel_null};
  if (batch.dense() && n > 0) {
    // Scan output: selection is a contiguous storage run, so index
    // storage directly and skip the selection load per row.
    const uint32_t base = sel[0];
    for (size_t i = 0; i < n; ++i) {
      const uint32_t idx = base + static_cast<uint32_t>(i);
      const Row& row = batch.storage_row(idx);
      if ((lop.constant == nullptr && lop.slot >= row.size()) ||
          (rop.constant == nullptr && rop.slot >= row.size())) {
        return Status::Internal("slot out of range for " + ToString());
      }
      const Value& l = lop.constant != nullptr ? *lop.constant
                                               : row[lop.slot];
      const Value& r = rop.constant != nullptr ? *rop.constant
                                               : row[rop.slot];
      std::vector<uint32_t>* out =
          outs[static_cast<int>(l.Compare(op_, r))];
      if (out != nullptr) out->push_back(idx);
    }
    return Status::OK();
  }
  for (size_t i = 0; i < n; ++i) {
    const Row& row = batch.row(i);
    if ((lop.constant == nullptr && lop.slot >= row.size()) ||
        (rop.constant == nullptr && rop.slot >= row.size())) {
      return Status::Internal("slot out of range for " + ToString());
    }
    const Value& l = lop.constant != nullptr ? *lop.constant
                                             : row[lop.slot];
    const Value& r = rop.constant != nullptr ? *rop.constant
                                             : row[rop.slot];
    std::vector<uint32_t>* out =
        outs[static_cast<int>(l.Compare(op_, r))];
    if (out != nullptr) out->push_back(sel[i]);
  }
  return Status::OK();
}

ExprPtr ComparisonExpr::Clone() const {
  return std::make_shared<ComparisonExpr>(op_, left_->Clone(),
                                          right_->Clone());
}

std::string ComparisonExpr::ToString() const {
  return "(" + left_->ToString() + " " + CompareOpToString(op_) + " " +
         right_->ToString() + ")";
}

// ---------------------------------------------------------------- And/Or

namespace {

/// Vectorized n-ary AND/OR. Terms are evaluated left to right over a
/// shrinking sub-batch of still-undecided rows, which preserves the
/// scalar evaluator's per-row short-circuit exactly — a term is never
/// evaluated (no error, no subquery execution) for a row an earlier term
/// already decided.
Status EvalJunctionBatch(const std::vector<ExprPtr>& terms, bool is_and,
                         const RowBatch& batch, const Row* outer_row,
                         std::vector<Value>* out) {
  const size_t n = batch.size();
  const size_t base = out->size();
  const TriBool identity = is_and ? TriBool::kTrue : TriBool::kFalse;
  const TriBool absorbing = is_and ? TriBool::kFalse : TriBool::kTrue;
  out->insert(out->end(), n, TriBoolToValue(identity));
  std::vector<size_t> active(n);  // undecided positions in [0, n)
  std::iota(active.begin(), active.end(), 0);
  std::vector<uint32_t> sub_sel;
  std::vector<Value> term_vals;
  for (const ExprPtr& t : terms) {
    if (active.empty()) break;
    sub_sel.clear();
    for (size_t pos : active) sub_sel.push_back(batch.selection()[pos]);
    const RowBatch sub = batch.ShareWithSelection(sub_sel);
    term_vals.clear();
    BYPASS_RETURN_IF_ERROR(t->EvalBatch(sub, outer_row, &term_vals));
    size_t kept = 0;
    for (size_t i = 0; i < active.size(); ++i) {
      const size_t pos = active[i];
      TriBool acc = ValueToTriBool((*out)[base + pos]);
      const TriBool v = ValueToTriBool(term_vals[i]);
      acc = is_and ? TriAnd(acc, v) : TriOr(acc, v);
      (*out)[base + pos] = TriBoolToValue(acc);
      if (acc != absorbing) active[kept++] = pos;
    }
    active.resize(kept);
  }
  return Status::OK();
}

}  // namespace

Result<Value> AndExpr::Eval(const EvalContext& ctx) const {
  TriBool acc = TriBool::kTrue;
  for (const ExprPtr& t : terms_) {
    BYPASS_ASSIGN_OR_RETURN(Value v, t->Eval(ctx));
    acc = TriAnd(acc, ValueToTriBool(v));
    if (acc == TriBool::kFalse) break;  // short-circuit
  }
  return TriBoolToValue(acc);
}

Status AndExpr::EvalBatch(const RowBatch& batch, const Row* outer_row,
                          std::vector<Value>* out) const {
  return EvalJunctionBatch(terms_, /*is_and=*/true, batch, outer_row, out);
}

ExprPtr AndExpr::Clone() const {
  std::vector<ExprPtr> terms;
  terms.reserve(terms_.size());
  for (const ExprPtr& t : terms_) terms.push_back(t->Clone());
  return std::make_shared<AndExpr>(std::move(terms));
}

std::string AndExpr::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(terms_.size());
  for (const ExprPtr& t : terms_) parts.push_back(t->ToString());
  return "(" + Join(parts, " AND ") + ")";
}

Result<Value> OrExpr::Eval(const EvalContext& ctx) const {
  TriBool acc = TriBool::kFalse;
  for (const ExprPtr& t : terms_) {
    BYPASS_ASSIGN_OR_RETURN(Value v, t->Eval(ctx));
    acc = TriOr(acc, ValueToTriBool(v));
    if (acc == TriBool::kTrue) break;  // short-circuit: the bypass intuition
  }
  return TriBoolToValue(acc);
}

Status OrExpr::EvalBatch(const RowBatch& batch, const Row* outer_row,
                         std::vector<Value>* out) const {
  return EvalJunctionBatch(terms_, /*is_and=*/false, batch, outer_row, out);
}

ExprPtr OrExpr::Clone() const {
  std::vector<ExprPtr> terms;
  terms.reserve(terms_.size());
  for (const ExprPtr& t : terms_) terms.push_back(t->Clone());
  return std::make_shared<OrExpr>(std::move(terms));
}

std::string OrExpr::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(terms_.size());
  for (const ExprPtr& t : terms_) parts.push_back(t->ToString());
  return "(" + Join(parts, " OR ") + ")";
}

// -------------------------------------------------------------------- Not

Result<Value> NotExpr::Eval(const EvalContext& ctx) const {
  BYPASS_ASSIGN_OR_RETURN(Value v, input_->Eval(ctx));
  return TriBoolToValue(TriNot(ValueToTriBool(v)));
}

Status NotExpr::EvalBatch(const RowBatch& batch, const Row* outer_row,
                          std::vector<Value>* out) const {
  std::vector<Value> vals;
  BYPASS_RETURN_IF_ERROR(input_->EvalBatch(batch, outer_row, &vals));
  out->reserve(out->size() + vals.size());
  for (const Value& v : vals) {
    out->push_back(TriBoolToValue(TriNot(ValueToTriBool(v))));
  }
  return Status::OK();
}

ExprPtr NotExpr::Clone() const {
  return std::make_shared<NotExpr>(input_->Clone());
}

std::string NotExpr::ToString() const {
  return "(NOT " + input_->ToString() + ")";
}

// ------------------------------------------------------------- Arithmetic

Result<Value> ArithmeticExpr::Eval(const EvalContext& ctx) const {
  BYPASS_ASSIGN_OR_RETURN(Value l, left_->Eval(ctx));
  BYPASS_ASSIGN_OR_RETURN(Value r, right_->Eval(ctx));
  return Combine(l, r);
}

Status ArithmeticExpr::EvalBatch(const RowBatch& batch,
                                 const Row* outer_row,
                                 std::vector<Value>* out) const {
  if (batch.columns() != nullptr) {
    ColumnOperand cl, cr;
    if (ResolveColumnOperand(*left_, batch, outer_row, &cl) &&
        ResolveColumnOperand(*right_, batch, outer_row, &cr)) {
      if (auto st = ColumnarArithmeticEval(op_, cl, cr, batch, ToString(),
                                           out)) {
        return *st;
      }
    }
  }
  std::vector<Value> l, r;
  BYPASS_RETURN_IF_ERROR(left_->EvalBatch(batch, outer_row, &l));
  BYPASS_RETURN_IF_ERROR(right_->EvalBatch(batch, outer_row, &r));
  out->reserve(out->size() + l.size());
  for (size_t i = 0; i < l.size(); ++i) {
    BYPASS_ASSIGN_OR_RETURN(Value v, Combine(l[i], r[i]));
    out->push_back(std::move(v));
  }
  return Status::OK();
}

Result<Value> ArithmeticExpr::Combine(const Value& l, const Value& r) const {
  if (l.is_null() || r.is_null()) return Value::Null();
  if (!l.is_numeric() || !r.is_numeric()) {
    return Status::ExecutionError("arithmetic on non-numeric values: " +
                                  ToString());
  }
  if (op_ == ArithOp::kDiv) {
    const double denom = r.AsDouble();
    if (denom == 0.0) {
      return Status::ExecutionError("division by zero: " + ToString());
    }
    return Value::Double(l.AsDouble() / denom);
  }
  if (l.is_int64() && r.is_int64()) {
    const int64_t a = l.int64_value(), b = r.int64_value();
    switch (op_) {
      case ArithOp::kAdd:
        return Value::Int64(a + b);
      case ArithOp::kSub:
        return Value::Int64(a - b);
      case ArithOp::kMul:
        return Value::Int64(a * b);
      case ArithOp::kDiv:
        break;
    }
  }
  const double a = l.AsDouble(), b = r.AsDouble();
  switch (op_) {
    case ArithOp::kAdd:
      return Value::Double(a + b);
    case ArithOp::kSub:
      return Value::Double(a - b);
    case ArithOp::kMul:
      return Value::Double(a * b);
    case ArithOp::kDiv:
      break;
  }
  BYPASS_UNREACHABLE("bad ArithOp");
}

ExprPtr ArithmeticExpr::Clone() const {
  return std::make_shared<ArithmeticExpr>(op_, left_->Clone(),
                                          right_->Clone());
}

std::string ArithmeticExpr::ToString() const {
  const char* sym = "?";
  switch (op_) {
    case ArithOp::kAdd:
      sym = "+";
      break;
    case ArithOp::kSub:
      sym = "-";
      break;
    case ArithOp::kMul:
      sym = "*";
      break;
    case ArithOp::kDiv:
      sym = "/";
      break;
  }
  return "(" + left_->ToString() + " " + sym + " " + right_->ToString() +
         ")";
}

// ------------------------------------------------------------------- Like

Result<Value> LikeExpr::Eval(const EvalContext& ctx) const {
  BYPASS_ASSIGN_OR_RETURN(Value v, input_->Eval(ctx));
  if (v.is_null()) return Value::Null();
  if (!v.is_string()) {
    return Status::ExecutionError("LIKE on non-string value: " +
                                  ToString());
  }
  const bool match = LikeMatch(v.string_value(), pattern_);
  return Value::Bool(negated_ ? !match : match);
}

Status LikeExpr::EvalBatch(const RowBatch& batch, const Row* outer_row,
                           std::vector<Value>* out) const {
  // Typed string kernel: one matcher loop over raw column data. Falls
  // back to the per-row path (and its non-string execution error) when
  // the input is not a typed string column / string constant.
  if (batch.columns() != nullptr) {
    ColumnOperand in;
    if (ResolveColumnOperand(*input_, batch, outer_row, &in) &&
        ColumnarLikeEval(in, pattern_, negated_, batch, out)) {
      return Status::OK();
    }
  }
  return Expr::EvalBatch(batch, outer_row, out);
}

Status LikeExpr::PartitionBatch(const RowBatch& batch, const Row* outer_row,
                                std::vector<uint32_t>* sel_true,
                                std::vector<uint32_t>* sel_false,
                                std::vector<uint32_t>* sel_null) const {
  // Fused LIKE σ± split, mirroring ComparisonExpr::PartitionBatch.
  if (batch.columns() != nullptr) {
    ColumnOperand in;
    if (ResolveColumnOperand(*input_, batch, outer_row, &in) &&
        ColumnarLikePartition(in, pattern_, negated_, batch, sel_true,
                              sel_false, sel_null)) {
      return Status::OK();
    }
  }
  return Expr::PartitionBatch(batch, outer_row, sel_true, sel_false,
                              sel_null);
}

ExprPtr LikeExpr::Clone() const {
  return std::make_shared<LikeExpr>(input_->Clone(), pattern_, negated_);
}

std::string LikeExpr::ToString() const {
  return "(" + input_->ToString() + (negated_ ? " NOT LIKE '" : " LIKE '") +
         pattern_ + "')";
}

// ----------------------------------------------------------------- IsNull

Result<Value> IsNullExpr::Eval(const EvalContext& ctx) const {
  BYPASS_ASSIGN_OR_RETURN(Value v, input_->Eval(ctx));
  const bool is_null = v.is_null();
  return Value::Bool(negated_ ? !is_null : is_null);
}

Status IsNullExpr::EvalBatch(const RowBatch& batch, const Row* outer_row,
                             std::vector<Value>* out) const {
  // Columnar path: IS [NOT] NULL over a typed column is a pure bitmap
  // read; over a batch-constant it is one test for the whole batch.
  ColumnOperand operand;
  if (batch.columns() != nullptr &&
      ResolveColumnOperand(*input_, batch, outer_row, &operand)) {
    const size_t n = batch.size();
    out->reserve(out->size() + n);
    if (operand.column == nullptr) {
      out->insert(out->end(), n,
                  Value::Bool(negated_ ? !operand.constant->is_null()
                                       : operand.constant->is_null()));
      return Status::OK();
    }
    const ColumnVector& col = *operand.column;
    for (uint32_t idx : batch.selection()) {
      const bool is_null = col.IsNull(idx);
      out->push_back(Value::Bool(negated_ ? !is_null : is_null));
    }
    return Status::OK();
  }
  std::vector<Value> vals;
  BYPASS_RETURN_IF_ERROR(input_->EvalBatch(batch, outer_row, &vals));
  out->reserve(out->size() + vals.size());
  for (const Value& v : vals) {
    out->push_back(Value::Bool(negated_ ? !v.is_null() : v.is_null()));
  }
  return Status::OK();
}

ExprPtr IsNullExpr::Clone() const {
  return std::make_shared<IsNullExpr>(input_->Clone(), negated_);
}

std::string IsNullExpr::ToString() const {
  return "(" + input_->ToString() +
         (negated_ ? " IS NOT NULL)" : " IS NULL)");
}

// --------------------------------------------------------------- Function

Result<Value> FunctionExpr::Eval(const EvalContext& ctx) const {
  std::vector<Value> vals;
  vals.reserve(args_.size());
  for (const ExprPtr& a : args_) {
    BYPASS_ASSIGN_OR_RETURN(Value v, a->Eval(ctx));
    vals.push_back(std::move(v));
  }
  switch (func_) {
    case BuiltinFunc::kCoalesce: {
      for (const Value& v : vals) {
        if (!v.is_null()) return v;
      }
      return Value::Null();
    }
    case BuiltinFunc::kAddIgnoreNull: {
      bool any = false;
      bool all_int = true;
      double dsum = 0;
      int64_t isum = 0;
      for (const Value& v : vals) {
        if (v.is_null()) continue;
        if (!v.is_numeric()) {
          return Status::ExecutionError("ADD_IGNORE_NULL on non-numeric");
        }
        any = true;
        if (v.is_int64()) {
          isum += v.int64_value();
        } else {
          all_int = false;
        }
        dsum += v.AsDouble();
      }
      if (!any) return Value::Null();
      return all_int ? Value::Int64(isum) : Value::Double(dsum);
    }
    case BuiltinFunc::kLeastIgnoreNull:
    case BuiltinFunc::kGreatestIgnoreNull: {
      Value best;
      for (const Value& v : vals) {
        if (v.is_null()) continue;
        if (best.is_null()) {
          best = v;
        } else {
          const int c = v.OrderCompare(best);
          if ((func_ == BuiltinFunc::kLeastIgnoreNull && c < 0) ||
              (func_ == BuiltinFunc::kGreatestIgnoreNull && c > 0)) {
            best = v;
          }
        }
      }
      return best;
    }
    case BuiltinFunc::kDivOrNullIfZero: {
      if (vals.size() != 2) {
        return Status::Internal("DIV_OR_NULL expects 2 arguments");
      }
      const Value& num = vals[0];
      const Value& den = vals[1];
      if (num.is_null() || den.is_null()) return Value::Null();
      if (!num.is_numeric() || !den.is_numeric()) {
        return Status::ExecutionError("DIV_OR_NULL on non-numeric");
      }
      const double d = den.AsDouble();
      if (d == 0.0) return Value::Null();
      return Value::Double(num.AsDouble() / d);
    }
  }
  BYPASS_UNREACHABLE("bad BuiltinFunc");
}

ExprPtr FunctionExpr::Clone() const {
  std::vector<ExprPtr> args;
  args.reserve(args_.size());
  for (const ExprPtr& a : args_) args.push_back(a->Clone());
  return std::make_shared<FunctionExpr>(func_, std::move(args));
}

std::string FunctionExpr::ToString() const {
  const char* name = "?";
  switch (func_) {
    case BuiltinFunc::kCoalesce:
      name = "COALESCE";
      break;
    case BuiltinFunc::kAddIgnoreNull:
      name = "ADD_IGNORE_NULL";
      break;
    case BuiltinFunc::kLeastIgnoreNull:
      name = "LEAST_IGNORE_NULL";
      break;
    case BuiltinFunc::kGreatestIgnoreNull:
      name = "GREATEST_IGNORE_NULL";
      break;
    case BuiltinFunc::kDivOrNullIfZero:
      name = "DIV_OR_NULL";
      break;
  }
  std::vector<std::string> parts;
  parts.reserve(args_.size());
  for (const ExprPtr& a : args_) parts.push_back(a->ToString());
  return std::string(name) + "(" + Join(parts, ", ") + ")";
}

// --------------------------------------------------------------- Subquery

Result<Value> SubqueryExpr::Eval(const EvalContext& ctx) const {
  if (subplan_ == nullptr) {
    return Status::Internal(
        "subquery expression evaluated before lowering: " + ToString());
  }
  switch (subquery_kind_) {
    case SubqueryKind::kScalar: {
      return subplan_->EvalScalar(ctx.row);
    }
    case SubqueryKind::kExists: {
      BYPASS_ASSIGN_OR_RETURN(bool exists, subplan_->EvalExists(ctx.row));
      return Value::Bool(negated_ ? !exists : exists);
    }
    case SubqueryKind::kIn: {
      BYPASS_ASSIGN_OR_RETURN(Value probe, probe_->Eval(ctx));
      BYPASS_ASSIGN_OR_RETURN(TriBool in,
                              subplan_->EvalIn(probe, ctx.row));
      if (negated_) in = TriNot(in);
      switch (in) {
        case TriBool::kTrue:
          return Value::Bool(true);
        case TriBool::kFalse:
          return Value::Bool(false);
        case TriBool::kUnknown:
          return Value::Null();
      }
      BYPASS_UNREACHABLE("bad TriBool");
    }
  }
  BYPASS_UNREACHABLE("bad SubqueryKind");
}

ExprPtr SubqueryExpr::Clone() const {
  auto copy = std::make_shared<SubqueryExpr>(
      subquery_kind_, plan_ ? CloneLogicalPlan(plan_) : nullptr);
  copy->set_negated(negated_);
  if (probe_) copy->set_probe(probe_->Clone());
  copy->set_subplan(subplan_);  // executable subplans are shareable
  return copy;
}

std::string SubqueryExpr::ToString() const {
  std::string plan_str =
      plan_ ? LogicalPlanSummary(*plan_) : std::string("<lowered>");
  switch (subquery_kind_) {
    case SubqueryKind::kScalar:
      return "SCALAR(" + plan_str + ")";
    case SubqueryKind::kExists:
      return std::string(negated_ ? "NOT " : "") + "EXISTS(" + plan_str +
             ")";
    case SubqueryKind::kIn:
      return probe_->ToString() + (negated_ ? " NOT IN (" : " IN (") +
             plan_str + ")";
  }
  BYPASS_UNREACHABLE("bad SubqueryKind");
}

// -------------------------------------------------------------- Factories

ExprPtr MakeLiteral(Value v) {
  return std::make_shared<LiteralExpr>(std::move(v));
}

ExprPtr MakeColumnRef(std::string qualifier, std::string name,
                      bool is_outer) {
  return std::make_shared<ColumnRefExpr>(std::move(qualifier),
                                         std::move(name), is_outer);
}

ExprPtr MakeComparison(CompareOp op, ExprPtr left, ExprPtr right) {
  return std::make_shared<ComparisonExpr>(op, std::move(left),
                                          std::move(right));
}

namespace {

template <typename NodeT>
ExprPtr MakeFlattenedJunction(std::vector<ExprPtr> terms, ExprKind kind) {
  std::vector<ExprPtr> flat;
  for (ExprPtr& t : terms) {
    if (t->kind() == kind) {
      for (const ExprPtr& c : t->children()) flat.push_back(c);
    } else {
      flat.push_back(std::move(t));
    }
  }
  if (flat.size() == 1) return flat[0];
  return std::make_shared<NodeT>(std::move(flat));
}

}  // namespace

ExprPtr MakeAnd(std::vector<ExprPtr> terms) {
  BYPASS_CHECK(!terms.empty());
  return MakeFlattenedJunction<AndExpr>(std::move(terms), ExprKind::kAnd);
}

ExprPtr MakeOr(std::vector<ExprPtr> terms) {
  BYPASS_CHECK(!terms.empty());
  return MakeFlattenedJunction<OrExpr>(std::move(terms), ExprKind::kOr);
}

ExprPtr MakeNot(ExprPtr input) {
  return std::make_shared<NotExpr>(std::move(input));
}

}  // namespace bypass
