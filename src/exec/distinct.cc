#include "exec/distinct.h"

namespace bypass {

Status DistinctPhysOp::Consume(int, RowBatch batch) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<uint32_t>& sel = batch.selection();
    size_t kept = 0;
    for (size_t i = 0; i < sel.size(); ++i) {
      if (seen_.Insert(batch.row(i))) sel[kept++] = sel[i];
    }
    sel.resize(kept);
  }
  // Emit outside the lock so downstream work does not serialize.
  return Emit(kPortOut, std::move(batch));
}

}  // namespace bypass
