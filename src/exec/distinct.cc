#include "exec/distinct.h"

namespace bypass {

Status DistinctPhysOp::Consume(int, Row row) {
  if (!seen_.insert(row).second) return Status::OK();
  return Emit(kPortOut, std::move(row));
}

}  // namespace bypass
