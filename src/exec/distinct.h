// Duplicate elimination over full rows (streaming: first occurrence wins).
// Parallel-safe via a mutex over the global seen-set: dedup must be
// global, and "first occurrence" under concurrent morsels means whichever
// worker inserts first (any one duplicate survives — multiset-equivalent
// to the serial result).
#ifndef BYPASSDB_EXEC_DISTINCT_H_
#define BYPASSDB_EXEC_DISTINCT_H_

#include <mutex>
#include <string>

#include "common/flat_table.h"
#include "exec/phys_op.h"

namespace bypass {

class DistinctPhysOp : public UnaryPhysOp {
 public:
  DistinctPhysOp() = default;

  void Reset() override { seen_.Clear(); }
  Status Consume(int in_port, RowBatch batch) override;
  std::string Label() const override { return "Distinct"; }

 private:
  std::mutex mu_;
  FlatRowSet seen_;  // rows copied in only on first occurrence
};

}  // namespace bypass

#endif  // BYPASSDB_EXEC_DISTINCT_H_
