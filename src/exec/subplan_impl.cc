#include "exec/subplan_impl.h"

namespace bypass {

ExecSubplan::ExecSubplan(PhysicalPlan plan,
                         std::vector<int> free_outer_slots, bool memoize)
    : plan_(std::move(plan)),
      free_outer_slots_(std::move(free_outer_slots)),
      memoize_(memoize) {}

void ExecSubplan::Configure(
    std::optional<std::chrono::steady_clock::time_point> deadline,
    ExecStats* stats, size_t batch_size, SharedWorkerStats worker_stats,
    int num_worker_slots) {
  if (deadline.has_value()) {
    ctx_.set_deadline(*deadline);
  } else {
    ctx_.clear_deadline();
  }
  ctx_.set_stats(stats);
  ctx_.set_worker_stats(worker_stats);
  ctx_.set_batch_size(batch_size);
  // No pool: the subplan runs serially on whichever worker evaluates it,
  // but its operators must have a state slot for that worker's id.
  ctx_.set_num_worker_slots(num_worker_slots);
  for (ExecSubplan* nested : plan_.subplans) {
    nested->Configure(deadline, stats, batch_size, worker_stats,
                      num_worker_slots);
  }
}

void ExecSubplan::ClearCache() {
  std::lock_guard<std::mutex> lock(mu_);
  scalar_cache_.clear();
  exists_cache_.clear();
  in_cache_.clear();
  num_executions_ = 0;
  for (ExecSubplan* nested : plan_.subplans) {
    nested->ClearCache();
  }
}

Row ExecSubplan::MemoKey(const Row* outer_row) const {
  if (outer_row == nullptr || free_outer_slots_.empty()) return Row{};
  return ProjectRow(*outer_row, free_outer_slots_);
}

Status ExecSubplan::Execute(const Row* outer_row) {
  // The per-row re-execution loop is the canonical plans' hot spot; it is
  // also where a time budget must be enforced even when each individual
  // run is short.
  BYPASS_RETURN_IF_ERROR(ctx_.CheckBudget());
  ++num_executions_;
  if (ctx_.stats() != nullptr) ++ctx_.stats()->subquery_executions;
  ctx_.set_cancelled(false);
  ctx_.set_outer_row(outer_row);
  return RunPlan(&plan_, &ctx_);
}

Result<Value> ExecSubplan::EvalScalar(const Row* outer_row) {
  std::lock_guard<std::mutex> lock(mu_);
  // Uncorrelated (type A) blocks are always materialized once; correlated
  // blocks only under the memoization strategy.
  const bool use_cache = memoize_ || free_outer_slots_.empty();
  Row key;
  if (use_cache) {
    key = MemoKey(outer_row);
    const auto it = scalar_cache_.find(key);
    if (it != scalar_cache_.end()) {
      if (ctx_.stats() != nullptr) ++ctx_.stats()->subquery_cache_hits;
      return it->second;
    }
  }
  BYPASS_RETURN_IF_ERROR(Execute(outer_row));
  const std::vector<Row>& rows = plan_.sink->rows();
  Value result;
  if (rows.empty()) {
    // Only possible for non-aggregate scalar blocks; SQL yields NULL.
    result = Value::Null();
  } else if (rows.size() == 1) {
    if (rows[0].size() != 1) {
      return Status::ExecutionError(
          "scalar subquery must return a single column");
    }
    result = rows[0][0];
  } else {
    return Status::ExecutionError(
        "scalar subquery returned more than one row");
  }
  if (use_cache) scalar_cache_.emplace(std::move(key), result);
  return result;
}

Result<bool> ExecSubplan::EvalExists(const Row* outer_row) {
  std::lock_guard<std::mutex> lock(mu_);
  const bool use_cache = memoize_ || free_outer_slots_.empty();
  Row key;
  if (use_cache) {
    key = MemoKey(outer_row);
    const auto it = exists_cache_.find(key);
    if (it != exists_cache_.end()) {
      if (ctx_.stats() != nullptr) ++ctx_.stats()->subquery_cache_hits;
      return it->second;
    }
  }
  ctx_.set_limit_one(true);
  Status st = Execute(outer_row);
  ctx_.set_limit_one(false);
  BYPASS_RETURN_IF_ERROR(st);
  const bool found = !plan_.sink->rows().empty();
  if (use_cache) exists_cache_.emplace(std::move(key), found);
  return found;
}

Result<TriBool> ExecSubplan::EvalIn(const Value& probe,
                                    const Row* outer_row) {
  std::lock_guard<std::mutex> lock(mu_);
  const bool use_cache = memoize_ || free_outer_slots_.empty();
  Row key;
  if (use_cache) {
    key = MemoKey(outer_row);
    key.push_back(probe);
    const auto it = in_cache_.find(key);
    if (it != in_cache_.end()) {
      if (ctx_.stats() != nullptr) ++ctx_.stats()->subquery_cache_hits;
      return it->second;
    }
  }
  BYPASS_RETURN_IF_ERROR(Execute(outer_row));
  const std::vector<Row>& rows = plan_.sink->rows();
  // SQL three-valued IN: true on some equal row; unknown if no match but
  // a NULL is involved; false otherwise.
  TriBool result = TriBool::kFalse;
  for (const Row& r : rows) {
    if (r.size() != 1) {
      return Status::ExecutionError(
          "IN subquery must return a single column");
    }
    const TriBool c = probe.Compare(CompareOp::kEq, r[0]);
    if (c == TriBool::kTrue) {
      result = TriBool::kTrue;
      break;
    }
    if (c == TriBool::kUnknown) result = TriBool::kUnknown;
  }
  if (use_cache) in_cache_.emplace(std::move(key), result);
  return result;
}

}  // namespace bypass
