#include "exec/subplan_impl.h"

namespace bypass {

ExecSubplan::ExecSubplan(PhysicalPlan plan,
                         std::vector<int> free_outer_slots, bool memoize)
    : plan_(std::move(plan)),
      free_outer_slots_(std::move(free_outer_slots)),
      memoize_(memoize) {}

void ExecSubplan::Configure(
    std::optional<std::chrono::steady_clock::time_point> deadline,
    ExecStats* stats, size_t batch_size, SharedWorkerStats worker_stats,
    int num_worker_slots, bool enable_columnar, SharedMemoryBudget memory,
    std::shared_ptr<SpillManager> spill, bool enable_zone_maps,
    bool scan_from_segments) {
  if (deadline.has_value()) {
    ctx_.set_deadline(*deadline);
  } else {
    ctx_.clear_deadline();
  }
  ctx_.set_stats(stats);
  ctx_.set_worker_stats(worker_stats);
  ctx_.set_batch_size(batch_size);
  // No pool: the subplan runs serially on whichever worker evaluates it,
  // but its operators must have a state slot for that worker's id.
  ctx_.set_num_worker_slots(num_worker_slots);
  ctx_.set_columnar_enabled(enable_columnar);
  ctx_.set_memory(memory);
  ctx_.set_spill(spill);
  ctx_.set_zone_maps_enabled(enable_zone_maps);
  ctx_.set_scan_from_segments(scan_from_segments);
  for (ExecSubplan* nested : plan_.subplans) {
    nested->Configure(deadline, stats, batch_size, worker_stats,
                      num_worker_slots, enable_columnar, memory, spill,
                      enable_zone_maps, scan_from_segments);
  }
}

void ExecSubplan::ClearCache() {
  std::lock_guard<std::mutex> exec_lock(exec_mu_);
  for (CacheStripe& s : stripes_) {
    std::lock_guard<std::mutex> lock(s.mu);
    s.scalar.Clear();
    s.exists.Clear();
    s.in.Clear();
  }
  num_executions_.store(0, std::memory_order_relaxed);
  for (ExecSubplan* nested : plan_.subplans) {
    nested->ClearCache();
  }
}

Row ExecSubplan::MemoKey(const Row* outer_row) const {
  if (!HasKeySlots(outer_row)) return Row{};
  return ProjectRow(*outer_row, free_outer_slots_);
}

ExecSubplan::CacheStripe& ExecSubplan::StripeFor(const Row* outer_row,
                                                 const Value* probe) {
  // Mirrors HashRow over the materialized memo key (free attributes,
  // plus the probe value for IN) so equal keys always pick the same
  // stripe; the table inside the stripe re-hashes with its own scheme.
  size_t h = 0x345678;
  if (HasKeySlots(outer_row)) {
    for (int s : free_outer_slots_) {
      h = h * 1000003 + (*outer_row)[static_cast<size_t>(s)].Hash();
    }
  }
  if (probe != nullptr) h = h * 1000003 + probe->Hash();
  return stripes_[h & (kNumStripes - 1)];
}

template <typename V>
const V* ExecSubplan::Lookup(const FlatRowMap<V>& cache,
                             const Row* outer_row) const {
  if (HasKeySlots(outer_row)) {
    return cache.Find(RowSlotsRef{outer_row, &free_outer_slots_});
  }
  return cache.Find(Row{});
}

Status ExecSubplan::Execute(const Row* outer_row) {
  // The per-row re-execution loop is the canonical plans' hot spot; it is
  // also where a time budget must be enforced even when each individual
  // run is short.
  BYPASS_RETURN_IF_ERROR(ctx_.CheckBudget());
  num_executions_.fetch_add(1, std::memory_order_relaxed);
  if (ctx_.stats() != nullptr) ++ctx_.stats()->subquery_executions;
  ctx_.set_cancelled(false);
  ctx_.set_outer_row(outer_row);
  return RunPlan(&plan_, &ctx_);
}

Result<Value> ExecSubplan::EvalScalar(const Row* outer_row) {
  // Uncorrelated (type A) blocks are always materialized once; correlated
  // blocks only under the memoization strategy.
  const bool use_cache = UseCache();
  CacheStripe* stripe = nullptr;
  if (use_cache) {
    stripe = &StripeFor(outer_row, nullptr);
    std::lock_guard<std::mutex> lock(stripe->mu);
    if (const Value* hit = Lookup(stripe->scalar, outer_row)) {
      if (ctx_.stats() != nullptr) ++ctx_.stats()->subquery_cache_hits;
      return *hit;
    }
  }
  std::lock_guard<std::mutex> exec_lock(exec_mu_);
  if (use_cache) {
    // Double-check: another worker may have filled the entry while this
    // one waited for the exec lock.
    std::lock_guard<std::mutex> lock(stripe->mu);
    if (const Value* hit = Lookup(stripe->scalar, outer_row)) {
      if (ctx_.stats() != nullptr) ++ctx_.stats()->subquery_cache_hits;
      return *hit;
    }
  }
  BYPASS_RETURN_IF_ERROR(Execute(outer_row));
  const std::vector<Row>& rows = plan_.sink->rows();
  Value result;
  if (rows.empty()) {
    // Only possible for non-aggregate scalar blocks; SQL yields NULL.
    result = Value::Null();
  } else if (rows.size() == 1) {
    if (rows[0].size() != 1) {
      return Status::ExecutionError(
          "scalar subquery must return a single column");
    }
    result = rows[0][0];
  } else {
    return Status::ExecutionError(
        "scalar subquery returned more than one row");
  }
  if (use_cache) {
    std::lock_guard<std::mutex> lock(stripe->mu);
    stripe->scalar.FindOrEmplace(MemoKey(outer_row),
                                 [&] { return result; });
  }
  return result;
}

Result<bool> ExecSubplan::EvalExists(const Row* outer_row) {
  const bool use_cache = UseCache();
  CacheStripe* stripe = nullptr;
  if (use_cache) {
    stripe = &StripeFor(outer_row, nullptr);
    std::lock_guard<std::mutex> lock(stripe->mu);
    if (const bool* hit = Lookup(stripe->exists, outer_row)) {
      if (ctx_.stats() != nullptr) ++ctx_.stats()->subquery_cache_hits;
      return *hit;
    }
  }
  std::lock_guard<std::mutex> exec_lock(exec_mu_);
  if (use_cache) {
    std::lock_guard<std::mutex> lock(stripe->mu);
    if (const bool* hit = Lookup(stripe->exists, outer_row)) {
      if (ctx_.stats() != nullptr) ++ctx_.stats()->subquery_cache_hits;
      return *hit;
    }
  }
  ctx_.set_limit_one(true);
  Status st = Execute(outer_row);
  ctx_.set_limit_one(false);
  BYPASS_RETURN_IF_ERROR(st);
  const bool found = !plan_.sink->rows().empty();
  if (use_cache) {
    std::lock_guard<std::mutex> lock(stripe->mu);
    stripe->exists.FindOrEmplace(MemoKey(outer_row),
                                 [&] { return found; });
  }
  return found;
}

Result<TriBool> ExecSubplan::EvalIn(const Value& probe,
                                    const Row* outer_row) {
  const bool use_cache = UseCache();
  CacheStripe* stripe = nullptr;
  Row key;
  if (use_cache) {
    // The IN key appends the probe value to the free attributes, so the
    // transparent slot-based probe does not apply; materialize once and
    // reuse the row for the lookups and the insert.
    key = MemoKey(outer_row);
    key.push_back(probe);
    stripe = &StripeFor(outer_row, &probe);
    std::lock_guard<std::mutex> lock(stripe->mu);
    if (const TriBool* hit = stripe->in.Find(key)) {
      if (ctx_.stats() != nullptr) ++ctx_.stats()->subquery_cache_hits;
      return *hit;
    }
  }
  std::lock_guard<std::mutex> exec_lock(exec_mu_);
  if (use_cache) {
    std::lock_guard<std::mutex> lock(stripe->mu);
    if (const TriBool* hit = stripe->in.Find(key)) {
      if (ctx_.stats() != nullptr) ++ctx_.stats()->subquery_cache_hits;
      return *hit;
    }
  }
  BYPASS_RETURN_IF_ERROR(Execute(outer_row));
  const std::vector<Row>& rows = plan_.sink->rows();
  // SQL three-valued IN: true on some equal row; unknown if no match but
  // a NULL is involved; false otherwise.
  TriBool result = TriBool::kFalse;
  for (const Row& r : rows) {
    if (r.size() != 1) {
      return Status::ExecutionError(
          "IN subquery must return a single column");
    }
    const TriBool c = probe.Compare(CompareOp::kEq, r[0]);
    if (c == TriBool::kTrue) {
      result = TriBool::kTrue;
      break;
    }
    if (c == TriBool::kUnknown) result = TriBool::kUnknown;
  }
  if (use_cache) {
    std::lock_guard<std::mutex> lock(stripe->mu);
    stripe->in.FindOrEmplace(std::move(key), [&] { return result; });
  }
  return result;
}

}  // namespace bypass
