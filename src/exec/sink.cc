#include "exec/sink.h"

namespace bypass {

Status CollectorSink::Consume(int, RowBatch batch) {
  if (ctx_->limit_one()) {
    // One witness row is enough; drop the rest of the batch.
    batch.selection().resize(1);
    if (ctx_->stats() != nullptr) ++ctx_->stats()->rows_emitted;
    rows_.push_back(batch.TakeRow(0));
    ctx_->set_cancelled(true);
    return Status::OK();
  }
  if (ctx_->stats() != nullptr) {
    ctx_->stats()->rows_emitted += static_cast<int64_t>(batch.size());
  }
  batch.ConsumeRowsInto(&rows_);
  return Status::OK();
}

Status CollectorSink::FinishPort(int) {
  finished_ = true;
  return Status::OK();
}

Status ExistsSink::Consume(int, RowBatch) {
  found_ = true;
  ctx_->set_cancelled(true);  // producers stop as soon as they notice
  return Status::OK();
}

}  // namespace bypass
