#include "exec/sink.h"

namespace bypass {

Status CollectorSink::Consume(int, Row row) {
  if (ctx_->stats() != nullptr) ++ctx_->stats()->rows_emitted;
  rows_.push_back(std::move(row));
  if (ctx_->limit_one()) ctx_->set_cancelled(true);
  return Status::OK();
}

Status CollectorSink::FinishPort(int) {
  finished_ = true;
  return Status::OK();
}

Status ExistsSink::Consume(int, Row) {
  found_ = true;
  ctx_->set_cancelled(true);  // producers stop as soon as they notice
  return Status::OK();
}

}  // namespace bypass
