#include "exec/sink.h"

namespace bypass {

Status CollectorSink::Prepare(ExecContext* ctx) {
  BYPASS_RETURN_IF_ERROR(PhysOp::Prepare(ctx));
  partials_.resize(static_cast<size_t>(ctx->num_worker_slots()));
  return Status::OK();
}

void CollectorSink::Reset() {
  for (Partial& p : partials_) p.rows.clear();
  rows_.clear();
  finished_ = false;
  witness_taken_ = false;
}

Status CollectorSink::Consume(int, RowBatch batch) {
  if (ctx_->limit_one()) {
    // One witness row is enough; the first worker to arrive takes it and
    // every later batch is dropped.
    std::lock_guard<std::mutex> lock(limit_mu_);
    if (witness_taken_) return Status::OK();
    witness_taken_ = true;
    batch.selection().resize(1);
    if (ExecStats* stats = ctx_->stats(); stats != nullptr) {
      ++stats->rows_emitted;
    }
    partials_[static_cast<size_t>(CurrentWorkerId())].rows.push_back(
        batch.TakeRow(0));
    ctx_->set_cancelled(true);
    return Status::OK();
  }
  if (ExecStats* stats = ctx_->stats(); stats != nullptr) {
    stats->rows_emitted += static_cast<int64_t>(batch.size());
  }
  // The collector retains every result row until the client takes them —
  // the main place an unbudgeted query grows without bound.
  BYPASS_RETURN_IF_ERROR(ctx_->ChargeMemory(ApproxRowsBytes(
      batch.size(), batch.size() > 0 ? batch.row(0).size() : 0)));
  batch.ConsumeRowsInto(
      &partials_[static_cast<size_t>(CurrentWorkerId())].rows);
  return Status::OK();
}

Status CollectorSink::FinishPort(int) {
  // Merge the workers' partials in worker order; a single worker's
  // partial moves wholesale, so serial runs keep today's result order.
  for (Partial& p : partials_) {
    if (rows_.empty()) {
      rows_ = std::move(p.rows);
    } else {
      rows_.insert(rows_.end(),
                   std::make_move_iterator(p.rows.begin()),
                   std::make_move_iterator(p.rows.end()));
    }
    p.rows.clear();
  }
  finished_ = true;
  return Status::OK();
}

Status ExistsSink::Consume(int, RowBatch) {
  found_.store(true, std::memory_order_relaxed);
  ctx_->set_cancelled(true);  // producers stop as soon as they notice
  return Status::OK();
}

}  // namespace bypass
