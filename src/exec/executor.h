// PhysicalPlan: the executable operator DAG, plus the driver that runs its
// source pipelines in dependency-friendly order.
#ifndef BYPASSDB_EXEC_EXECUTOR_H_
#define BYPASSDB_EXEC_EXECUTOR_H_

#include <memory>
#include <string>
#include <vector>

#include "exec/phys_op.h"
#include "exec/scan.h"
#include "exec/sink.h"
#include "types/schema.h"

namespace bypass {

class ExecSubplan;  // exec/subplan_impl.h

/// An executable plan: owns every operator; `sources` are pre-ordered so
/// that build sides run before probe sides where the DAG allows it (the
/// operators buffer defensively when it does not).
struct PhysicalPlan {
  std::vector<PhysOpPtr> ops;
  std::vector<TableScanOp*> sources;
  CollectorSink* sink = nullptr;
  Schema output_schema;
  /// Every correlated/nested subplan reachable from this plan, so the
  /// engine can propagate deadlines and stats before execution.
  std::vector<ExecSubplan*> subplans;

  PhysicalPlan() = default;
  PhysicalPlan(PhysicalPlan&&) = default;
  PhysicalPlan& operator=(PhysicalPlan&&) = default;
  PhysicalPlan(const PhysicalPlan&) = delete;
  PhysicalPlan& operator=(const PhysicalPlan&) = delete;

  /// Multi-line physical plan description (operator labels, source order).
  std::string ToString() const;

  /// Post-execution operator accounting: one line per operator with the
  /// rows it emitted per output stream.
  std::string StatsString() const;
};

/// Resets every operator, prepares them against `ctx`, and drives all
/// source pipelines. After a successful run the sink holds the result.
Status RunPlan(PhysicalPlan* plan, ExecContext* ctx);

}  // namespace bypass

#endif  // BYPASSDB_EXEC_EXECUTOR_H_
