#include "exec/scan.h"

#include <algorithm>

namespace bypass {

Status TableScanOp::RunMorsel(size_t begin, size_t end) {
  const std::vector<Row>& rows = table_->rows();
  for (size_t b = begin; b < end; b += batch_size()) {
    if (ctx_->cancelled()) break;
    BYPASS_RETURN_IF_ERROR(ctx_->CheckBudget());
    const size_t batch_end = std::min(b + batch_size(), end);
    if (ExecStats* stats = ctx_->stats(); stats != nullptr) {
      stats->rows_scanned += static_cast<int64_t>(batch_end - b);
    }
    BYPASS_RETURN_IF_ERROR(
        Emit(kPortOut, RowBatch::Borrowed(&rows, b, batch_end)));
  }
  return Status::OK();
}

Status TableScanOp::Run() {
  BYPASS_RETURN_IF_ERROR(RunMorsel(0, table_->rows().size()));
  return FinishSource();
}

}  // namespace bypass
