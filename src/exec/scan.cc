#include "exec/scan.h"

#include <algorithm>

namespace bypass {

Status TableScanOp::RunMorsel(size_t begin, size_t end) {
  // Columnar scans attach the table's typed columns to every emitted
  // batch; the materialized row shim still backs the row(i) API for
  // operators not yet ported to columns.
  const std::vector<Row>& rows = table_->rows();
  const ColumnStore* columns =
      ctx_->columnar_enabled() ? &table_->columns() : nullptr;
  for (size_t b = begin; b < end; b += batch_size()) {
    if (ctx_->cancelled()) break;
    BYPASS_RETURN_IF_ERROR(ctx_->CheckBudget());
    const size_t batch_end = std::min(b + batch_size(), end);
    if (ExecStats* stats = ctx_->stats(); stats != nullptr) {
      stats->rows_scanned += static_cast<int64_t>(batch_end - b);
      if (columns != nullptr) ++stats->columnar_batches;
    }
    RowBatch batch =
        columns != nullptr
            ? RowBatch::BorrowedColumnar(columns, &rows, b, batch_end)
            : RowBatch::Borrowed(&rows, b, batch_end);
    BYPASS_RETURN_IF_ERROR(Emit(kPortOut, std::move(batch)));
  }
  return Status::OK();
}

Status TableScanOp::Run() {
  BYPASS_RETURN_IF_ERROR(RunMorsel(0, num_rows()));
  return FinishSource();
}

}  // namespace bypass
