#include "exec/scan.h"

#include <algorithm>

#include "storage/segment.h"
#include "storage/zone_map.h"

namespace bypass {

Status TableScanOp::Prepare(ExecContext* ctx) {
  BYPASS_RETURN_IF_ERROR(UnaryPhysOp::Prepare(ctx));
  // Fresh caches per execution: the table may have changed between runs,
  // and stale decompressed segments must not leak across queries.
  seg_cache_.assign(static_cast<size_t>(ctx->num_worker_slots()),
                    SegmentCache{});
  return Status::OK();
}

Status TableScanOp::EmitFlatRange(size_t begin, size_t end) {
  // Columnar scans attach the table's typed columns to every emitted
  // batch; the materialized row shim still backs the row(i) API for
  // operators not yet ported to columns.
  const std::vector<Row>& rows = table_->rows();
  const ColumnStore* columns =
      ctx_->columnar_enabled() ? &table_->columns() : nullptr;
  for (size_t b = begin; b < end; b += batch_size()) {
    if (ctx_->cancelled()) break;
    BYPASS_RETURN_IF_ERROR(ctx_->CheckBudget());
    const size_t batch_end = std::min(b + batch_size(), end);
    if (ExecStats* stats = ctx_->stats(); stats != nullptr) {
      stats->rows_scanned += static_cast<int64_t>(batch_end - b);
      if (columns != nullptr) ++stats->columnar_batches;
    }
    RowBatch batch =
        columns != nullptr
            ? RowBatch::BorrowedColumnar(columns, &rows, b, batch_end)
            : RowBatch::Borrowed(&rows, b, batch_end);
    BYPASS_RETURN_IF_ERROR(Emit(kPortOut, std::move(batch)));
  }
  return Status::OK();
}

Status TableScanOp::EmitSegmentRange(size_t seg, size_t begin,
                                     size_t end) {
  const TableSegments& segs = table_->segments();
  const SegmentMeta& meta = segs.segments[seg];
  SegmentCache& cache =
      seg_cache_[static_cast<size_t>(CurrentWorkerId())];
  if (cache.segment != seg) {
    auto store = std::make_shared<ColumnStore>();
    auto rows = std::make_shared<std::vector<Row>>();
    BYPASS_RETURN_IF_ERROR(SegmentReader::Read(
        segs, table_->schema(), seg, store.get(), rows.get()));
    cache.segment = seg;
    cache.store = std::move(store);
    cache.rows = std::move(rows);
  }
  const bool columnar = ctx_->columnar_enabled();
  for (size_t b = begin; b < end; b += batch_size()) {
    if (ctx_->cancelled()) break;
    BYPASS_RETURN_IF_ERROR(ctx_->CheckBudget());
    const size_t batch_end = std::min(b + batch_size(), end);
    if (ExecStats* stats = ctx_->stats(); stats != nullptr) {
      stats->rows_scanned += static_cast<int64_t>(batch_end - b);
      if (columnar) ++stats->columnar_batches;
    }
    RowBatch batch = RowBatch::SharedColumnar(
        columnar ? cache.store : nullptr, cache.rows,
        b - meta.row_begin, batch_end - meta.row_begin);
    BYPASS_RETURN_IF_ERROR(Emit(kPortOut, std::move(batch)));
  }
  return Status::OK();
}

Status TableScanOp::RunMorsel(size_t begin, size_t end) {
  const bool use_zones =
      zone_filter_ != nullptr && ctx_->zone_maps_enabled();
  const bool seg_scan = ctx_->scan_from_segments();
  if (!use_zones && !seg_scan) return EmitFlatRange(begin, end);

  const TableSegments& segs = table_->segments();
  if (segs.num_segments() == 0) return EmitFlatRange(begin, end);
  for (size_t seg = begin / segs.rows_per_segment;
       seg < segs.num_segments(); ++seg) {
    const SegmentMeta& meta = segs.segments[seg];
    if (meta.row_begin >= end) break;
    const size_t lo = std::max(begin, meta.row_begin);
    const size_t hi = std::min(end, meta.row_begin + meta.row_count);
    if (lo >= hi) continue;
    ExecStats* stats = ctx_->stats();
    // Segment counters attribute to the morsel holding the segment's
    // first row, so they stay exact under any morsel alignment.
    const bool counts_here = lo == meta.row_begin;
    if (stats != nullptr && counts_here) ++stats->segments_scanned;
    if (use_zones && !ZoneMayBeTrue(*zone_filter_, meta)) {
      if (stats != nullptr) {
        if (counts_here) ++stats->segments_skipped;
        stats->zone_skip_rows += static_cast<int64_t>(hi - lo);
      }
      continue;
    }
    if (seg_scan) {
      BYPASS_RETURN_IF_ERROR(EmitSegmentRange(seg, lo, hi));
    } else {
      BYPASS_RETURN_IF_ERROR(EmitFlatRange(lo, hi));
    }
  }
  return Status::OK();
}

Status TableScanOp::Run() {
  BYPASS_RETURN_IF_ERROR(RunMorsel(0, num_rows()));
  return FinishSource();
}

}  // namespace bypass
