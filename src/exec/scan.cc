#include "exec/scan.h"

#include <algorithm>

namespace bypass {

Status TableScanOp::Run() {
  const std::vector<Row>& rows = table_->rows();
  const size_t n = rows.size();
  for (size_t begin = 0; begin < n; begin += batch_size()) {
    if (ctx_->cancelled()) break;
    BYPASS_RETURN_IF_ERROR(ctx_->CheckBudget());
    const size_t end = std::min(begin + batch_size(), n);
    if (ctx_->stats() != nullptr) {
      ctx_->stats()->rows_scanned += static_cast<int64_t>(end - begin);
    }
    BYPASS_RETURN_IF_ERROR(
        Emit(kPortOut, RowBatch::Borrowed(&rows, begin, end)));
  }
  return EmitFinish(kPortOut);
}

}  // namespace bypass
