#include "exec/scan.h"

namespace bypass {

Status TableScanOp::Run() {
  const std::vector<Row>& rows = table_->rows();
  int64_t since_check = 0;
  for (const Row& row : rows) {
    if (ctx_->cancelled()) break;
    if (++since_check >= 4096) {
      since_check = 0;
      BYPASS_RETURN_IF_ERROR(ctx_->CheckBudget());
    }
    if (ctx_->stats() != nullptr) ++ctx_->stats()->rows_scanned;
    BYPASS_RETURN_IF_ERROR(Emit(kPortOut, row));
  }
  return EmitFinish(kPortOut);
}

}  // namespace bypass
