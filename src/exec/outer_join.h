// Left outer joins with default function: unmatched left tuples are padded
// with a precomputed right-side row (NULLs except the aggregate columns'
// f(∅) defaults) — the paper's count-bug-safe outer join.
#ifndef BYPASSDB_EXEC_OUTER_JOIN_H_
#define BYPASSDB_EXEC_OUTER_JOIN_H_

#include <string>
#include <vector>

#include "exec/join.h"
#include "exec/phys_op.h"
#include "expr/expr.h"

namespace bypass {

/// Equi left outer join (right = build side).
class HashLeftOuterJoinOp : public BinaryPhysOp {
 public:
  /// `unmatched_right` must have the right input's arity; it is appended
  /// to left tuples without a join partner.
  HashLeftOuterJoinOp(std::vector<int> left_key_slots,
                      std::vector<int> right_key_slots,
                      Row unmatched_right)
      : left_key_slots_(std::move(left_key_slots)),
        right_key_slots_(std::move(right_key_slots)),
        unmatched_right_(std::move(unmatched_right)) {}

  Status Prepare(ExecContext* ctx) override;
  void Reset() override;
  std::string Label() const override { return "HashLeftOuterJoin"; }

 protected:
  Status BuildFromRight() override;
  Status ProcessLeft(Row row) override;
  Status ProcessLeftBatch(RowBatch batch) override;
  Status FinishBoth() override { return EmitFinish(kPortOut); }

 private:
  Status EmitPadded(const Row& row, JoinMatches matches);

  std::vector<int> left_key_slots_;
  std::vector<int> right_key_slots_;
  Row unmatched_right_;
  JoinHashTable table_;
  std::vector<JoinProbeScratch> scratch_;  // per worker
};

/// Nested-loop left outer join for arbitrary predicates.
class NLLeftOuterJoinOp : public BinaryPhysOp {
 public:
  NLLeftOuterJoinOp(ExprPtr predicate, Row unmatched_right)
      : predicate_(std::move(predicate)),
        unmatched_right_(std::move(unmatched_right)) {}

  std::string Label() const override {
    return "NLLeftOuterJoin " + predicate_->ToString();
  }

 protected:
  Status ProcessLeft(Row row) override;
  Status ProcessLeftBatch(RowBatch batch) override;
  Status FinishBoth() override { return EmitFinish(kPortOut); }

 private:
  Status JoinOrPad(const Row& row);

  ExprPtr predicate_;
  Row unmatched_right_;
};

}  // namespace bypass

#endif  // BYPASSDB_EXEC_OUTER_JOIN_H_
