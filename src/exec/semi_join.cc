#include "exec/semi_join.h"

namespace bypass {

void HashExistenceJoinOp::Reset() {
  BinaryPhysOp::Reset();
  table_.Clear();
}

Status HashExistenceJoinOp::BuildFromRight() {
  table_.Build(right_rows(), right_key_slots_);
  return Status::OK();
}

Status HashExistenceJoinOp::ProcessLeft(Row row) {
  const std::vector<size_t>* matches = table_.Probe(row, left_key_slots_);
  const bool has_match = matches != nullptr && !matches->empty();
  if (has_match != anti_) {
    return Emit(kPortOut, std::move(row));
  }
  return Status::OK();
}

Status NLExistenceJoinOp::ProcessLeft(Row row) {
  bool has_match = false;
  int64_t since_check = 0;
  for (const Row& right : right_rows()) {
    if (++since_check >= 4096) {
      since_check = 0;
      BYPASS_RETURN_IF_ERROR(ctx_->CheckBudget());
    }
    Row joined = ConcatRows(row, right);
    EvalContext ectx{&joined, ctx_->outer_row()};
    BYPASS_ASSIGN_OR_RETURN(Value v, predicate_->Eval(ectx));
    if (ValueToTriBool(v) == TriBool::kTrue) {
      has_match = true;
      break;
    }
  }
  if (has_match != anti_) {
    return Emit(kPortOut, std::move(row));
  }
  return Status::OK();
}

}  // namespace bypass
