#include "exec/semi_join.h"

namespace bypass {

Status HashExistenceJoinOp::Prepare(ExecContext* ctx) {
  BYPASS_RETURN_IF_ERROR(BinaryPhysOp::Prepare(ctx));
  scratch_.resize(static_cast<size_t>(ctx->num_worker_slots()));
  return Status::OK();
}

void HashExistenceJoinOp::Reset() {
  BinaryPhysOp::Reset();
  table_.Clear();
}

Status HashExistenceJoinOp::BuildFromRight() {
  table_.Build(right_rows(), right_key_slots_, ctx_->pool());
  // The index arrays scale with the build side like the buffered rows
  // (charged on arrival) do; this operator has no spill path, so an
  // overrun surfaces as ResourceExhausted.
  return ctx_->ChargeMemory(table_.RetainedBytes());
}

bool HashExistenceJoinOp::Matches(const Row& row) const {
  return !table_.Probe(row, left_key_slots_).empty();
}

Status HashExistenceJoinOp::ProcessLeft(Row row) {
  if (Matches(row) != anti_) {
    return EmitRow(kPortOut, std::move(row));
  }
  return Status::OK();
}

// Batch-probes in place; the left row is only copied out of the batch
// when it actually passes the existence test.
Status HashExistenceJoinOp::ProcessLeftBatch(RowBatch batch) {
  JoinProbeScratch& scratch =
      scratch_[static_cast<size_t>(CurrentWorkerId())];
  table_.ProbeBatch(batch, left_key_slots_, &scratch);
  const size_t n = batch.size();
  for (size_t i = 0; i < n; ++i) {
    if (!scratch.matches[i].empty() != anti_) {
      BYPASS_RETURN_IF_ERROR(EmitRow(kPortOut, batch.TakeRow(i)));
    }
  }
  return Status::OK();
}

Result<bool> NLExistenceJoinOp::Matches(const Row& row) const {
  int64_t since_check = 0;
  for (const Row& right : right_rows()) {
    if (++since_check >= 4096) {
      since_check = 0;
      BYPASS_RETURN_IF_ERROR(ctx_->CheckBudget());
    }
    Row joined = ConcatRows(row, right);
    EvalContext ectx{&joined, ctx_->outer_row()};
    BYPASS_ASSIGN_OR_RETURN(Value v, predicate_->Eval(ectx));
    if (ValueToTriBool(v) == TriBool::kTrue) return true;
  }
  return false;
}

Status NLExistenceJoinOp::ProcessLeft(Row row) {
  BYPASS_ASSIGN_OR_RETURN(bool has_match, Matches(row));
  if (has_match != anti_) {
    return EmitRow(kPortOut, std::move(row));
  }
  return Status::OK();
}

Status NLExistenceJoinOp::ProcessLeftBatch(RowBatch batch) {
  const size_t n = batch.size();
  for (size_t i = 0; i < n; ++i) {
    BYPASS_ASSIGN_OR_RETURN(bool has_match, Matches(batch.row(i)));
    if (has_match != anti_) {
      BYPASS_RETURN_IF_ERROR(EmitRow(kPortOut, batch.TakeRow(i)));
    }
  }
  return Status::OK();
}

}  // namespace bypass
