// Plan sinks: terminal consumers that collect or probe the result stream.
#ifndef BYPASSDB_EXEC_SINK_H_
#define BYPASSDB_EXEC_SINK_H_

#include <string>
#include <vector>

#include "exec/phys_op.h"

namespace bypass {

/// Collects all result rows.
class CollectorSink : public PhysOp {
 public:
  CollectorSink() = default;

  void Reset() override {
    rows_.clear();
    finished_ = false;
  }
  Status Consume(int in_port, RowBatch batch) override;
  Status FinishPort(int in_port) override;
  std::string Label() const override { return "Collect"; }

  const std::vector<Row>& rows() const { return rows_; }
  std::vector<Row> TakeRows() { return std::move(rows_); }
  bool finished() const { return finished_; }

 private:
  std::vector<Row> rows_;
  bool finished_ = false;
};

/// Remembers whether any row arrived and cancels the execution after the
/// first one — the EXISTS probe.
class ExistsSink : public PhysOp {
 public:
  ExistsSink() = default;

  void Reset() override { found_ = false; }
  Status Consume(int in_port, RowBatch batch) override;
  Status FinishPort(int) override { return Status::OK(); }
  std::string Label() const override { return "ExistsProbe"; }

  bool found() const { return found_; }

 private:
  bool found_ = false;
};

}  // namespace bypass

#endif  // BYPASSDB_EXEC_SINK_H_
