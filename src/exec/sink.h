// Plan sinks: terminal consumers that collect or probe the result stream.
#ifndef BYPASSDB_EXEC_SINK_H_
#define BYPASSDB_EXEC_SINK_H_

#include <atomic>
#include <mutex>
#include <string>
#include <vector>

#include "exec/phys_op.h"

namespace bypass {

/// Collects all result rows. Merging sink: each worker appends to its own
/// partial vector; FinishPort concatenates the partials in worker order.
/// The merged result therefore carries NO ordering guarantee beyond what
/// a single worker produced (an explicit Sort above the sink is the only
/// way to order a parallel query's output).
class CollectorSink : public PhysOp {
 public:
  CollectorSink() = default;

  Status Prepare(ExecContext* ctx) override;
  void Reset() override;
  Status Consume(int in_port, RowBatch batch) override;
  Status FinishPort(int in_port) override;
  std::string Label() const override { return "Collect"; }

  const std::vector<Row>& rows() const { return rows_; }
  std::vector<Row> TakeRows() { return std::move(rows_); }
  bool finished() const { return finished_; }

 private:
  struct alignas(64) Partial {
    std::vector<Row> rows;
  };

  std::vector<Partial> partials_;
  std::vector<Row> rows_;  // merged at finish
  bool finished_ = false;
  /// Elects the single witness row under limit_one (EXISTS probing);
  /// uncontended in serial runs.
  std::mutex limit_mu_;
  bool witness_taken_ = false;
};

/// Remembers whether any row arrived and cancels the execution after the
/// first one — the EXISTS probe.
class ExistsSink : public PhysOp {
 public:
  ExistsSink() = default;

  void Reset() override {
    found_.store(false, std::memory_order_relaxed);
  }
  Status Consume(int in_port, RowBatch batch) override;
  Status FinishPort(int) override { return Status::OK(); }
  std::string Label() const override { return "ExistsProbe"; }

  bool found() const { return found_.load(std::memory_order_relaxed); }

 private:
  std::atomic<bool> found_{false};
};

}  // namespace bypass

#endif  // BYPASSDB_EXEC_SINK_H_
