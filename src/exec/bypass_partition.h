// K-way tagged bypass partition σ±[p1..pk]: one operator splits its
// input into k+1 streams, generalizing the binary bypass selection.
// Output port i < k carries the tuples whose *first* TRUE disjunct is
// p_{i+1} — i.e. the tag set {¬p1, ..., ¬p_i, p_{i+1}} of tagged
// execution (Kim & Madden, arXiv 2404.09109) — and port k carries the
// remainder, on which every disjunct was FALSE or UNKNOWN (the 3VL null
// stream stays merged into the complement, exactly like σ±'s negative
// port). Semantically equivalent to a cascade of k binary bypass
// selections over the same rank-ordered disjuncts, minus the k-1
// intermediate operator hand-offs: when all disjuncts lower to typed
// kernels the whole split is one fused ColumnarPartitionKWay call.
//
// Like BypassFilterOp, the split is a pure partition of the worker's own
// selection vector (scratch is per worker), so concurrent morsel workers
// need no synchronization; the streams re-merge deterministically in the
// downstream union via the Emit/EmitFinish worker-order contract.
#ifndef BYPASSDB_EXEC_BYPASS_PARTITION_H_
#define BYPASSDB_EXEC_BYPASS_PARTITION_H_

#include <string>
#include <vector>

#include "exec/phys_op.h"
#include "expr/column_kernels.h"
#include "expr/expr.h"

namespace bypass {

class BypassPartitionKOp : public UnaryPhysOp {
 public:
  /// `predicates` are the rank-ordered disjuncts p1..pk (k >= 1); the
  /// operator exposes k+1 output ports, port k being the remainder.
  explicit BypassPartitionKOp(std::vector<ExprPtr> predicates);

  Status Prepare(ExecContext* ctx) override;
  Status Consume(int in_port, RowBatch batch) override;
  std::string Label() const override;

 private:
  struct alignas(64) Scratch {
    std::vector<std::vector<uint32_t>> streams;  // k+1 output selections
    std::vector<std::vector<uint32_t>*> outs;    // kernel out-pointer view
    std::vector<PartitionLevel> levels;          // per-batch lowered preds
    KWayScratch kway;                            // fused-path double buffer
    std::vector<uint32_t> rest;                  // fallback undecided sel
  };

  /// Level-wise fallback when some disjunct has no typed kernel: each
  /// level runs Expr::PartitionBatch over a view of the rows still
  /// undecided, preserving per-row short-circuit semantics (a disjunct is
  /// never evaluated for a row an earlier disjunct already claimed).
  Status PartitionGeneric(const RowBatch& batch, Scratch* scratch);

  std::vector<ExprPtr> predicates_;
  std::vector<Scratch> scratch_;  // per-worker per-batch scratch
};

}  // namespace bypass

#endif  // BYPASSDB_EXEC_BYPASS_PARTITION_H_
