#include "exec/group_by.h"

#include <algorithm>

#include "common/check.h"

namespace bypass {

namespace {

/// Folds `src` into `dst`: groups absent from `dst` move over wholesale
/// (key and accumulator, no re-aggregation), overlapping groups are
/// combined with AggregatorSet::Merge. Runs on the single-threaded finish
/// path; merging per-worker partials in worker order keeps the final
/// entry order deterministic.
template <typename GroupMap>
Status MergeGroupMaps(GroupMap* dst, GroupMap* src) {
  if (dst->empty()) {
    *dst = std::move(*src);
    src->Clear();
    return Status::OK();
  }
  for (auto& entry : src->mutable_entries()) {
    auto* existing = dst->Find(entry.key);
    if (existing == nullptr) {
      dst->EmplaceNew(std::move(entry.key), std::move(entry.value));
    } else {
      BYPASS_RETURN_IF_ERROR((*existing)->Merge(*entry.value));
    }
  }
  src->Clear();
  return Status::OK();
}

}  // namespace

// ------------------------------------------------------------ HashGroupBy

HashGroupByOp::HashGroupByOp(std::vector<int> key_slots,
                             std::vector<AggregateSpec> aggregates,
                             bool scalar)
    : key_slots_(std::move(key_slots)),
      aggregates_(std::move(aggregates)),
      scalar_(scalar) {
  BYPASS_CHECK_MSG(!scalar_ || key_slots_.empty(),
                   "scalar aggregation cannot have group keys");
  partials_.resize(1);
  if (scalar_) {
    partials_[0].scalar = std::make_unique<AggregatorSet>(&aggregates_);
  }
}

Status HashGroupByOp::Prepare(ExecContext* ctx) {
  BYPASS_RETURN_IF_ERROR(UnaryPhysOp::Prepare(ctx));
  partials_.resize(static_cast<size_t>(ctx->num_worker_slots()));
  if (scalar_) {
    for (Partial& p : partials_) {
      if (p.scalar == nullptr) {
        p.scalar = std::make_unique<AggregatorSet>(&aggregates_);
      }
    }
  }
  return Status::OK();
}

void HashGroupByOp::Reset() {
  for (Partial& p : partials_) {
    p.groups.Clear();
    if (p.scalar) p.scalar->Reset();
  }
}

Status HashGroupByOp::Consume(int, RowBatch batch) {
  Partial& partial = partials_[static_cast<size_t>(CurrentWorkerId())];
  if (scalar_) {
    // Scalar aggregation folds the whole batch: columnar-capable
    // aggregators read raw columns, the rest run row-at-a-time.
    return partial.scalar->AccumulateBatch(batch, ctx_->outer_row());
  }
  const size_t n = batch.size();
  // Single-key grouping over a typed int64 column probes the group map
  // with the raw key (no Value access on the hit path).
  if (key_slots_.size() == 1 && batch.columns() != nullptr) {
    const size_t slot = static_cast<size_t>(key_slots_[0]);
    if (slot < batch.columns()->columns.size()) {
      const ColumnVector& col = batch.columns()->columns[slot];
      if (col.typed() && col.type() == DataType::kInt64) {
        const int64_t* keys = col.i64_data();
        const std::vector<uint32_t>& sel = batch.selection();
        for (size_t i = 0; i < n; ++i) {
          const uint32_t idx = sel[i];
          auto& aggs = partial.groups.FindOrEmplaceInt64(
              keys[idx], col.IsNull(idx), [&] {
                return std::make_unique<AggregatorSet>(&aggregates_);
              });
          const Row& row = batch.row(i);
          EvalContext ectx{&row, ctx_->outer_row()};
          BYPASS_RETURN_IF_ERROR(aggs->Accumulate(ectx));
        }
        return Status::OK();
      }
    }
  }
  for (size_t i = 0; i < n; ++i) {
    const Row& row = batch.row(i);
    EvalContext ectx{&row, ctx_->outer_row()};
    auto& aggs = partial.groups.FindOrEmplace(
        RowSlotsRef{&row, &key_slots_},
        [&] { return std::make_unique<AggregatorSet>(&aggregates_); });
    BYPASS_RETURN_IF_ERROR(aggs->Accumulate(ectx));
  }
  return Status::OK();
}

Status HashGroupByOp::FinishPort(int) {
  // Finish runs single-threaded: merge the worker partials into slot 0,
  // then finalize. With one worker slot this is a no-op pass-through.
  Partial& merged = partials_[0];
  for (size_t w = 1; w < partials_.size(); ++w) {
    if (scalar_) {
      BYPASS_RETURN_IF_ERROR(merged.scalar->Merge(*partials_[w].scalar));
      partials_[w].scalar->Reset();
    } else {
      BYPASS_RETURN_IF_ERROR(
          MergeGroupMaps(&merged.groups, &partials_[w].groups));
    }
  }
  if (scalar_) {
    Row out;
    BYPASS_RETURN_IF_ERROR(merged.scalar->FinalizeInto(&out));
    BYPASS_RETURN_IF_ERROR(EmitRow(kPortOut, std::move(out)));
  } else {
    for (const auto& entry : merged.groups.entries()) {
      Row out = entry.key;
      BYPASS_RETURN_IF_ERROR(entry.value->FinalizeInto(&out));
      BYPASS_RETURN_IF_ERROR(EmitRow(kPortOut, std::move(out)));
    }
  }
  return EmitFinish(kPortOut);
}

// ---------------------------------------------------- BinaryGroupBy(hash)

BinaryGroupByHashOp::BinaryGroupByHashOp(
    int left_key_slot, int right_key_slot,
    std::vector<AggregateSpec> aggregates)
    : left_key_slot_(left_key_slot),
      right_key_slot_(right_key_slot),
      left_key_slots_{left_key_slot},
      right_key_slots_{right_key_slot},
      aggregates_(std::move(aggregates)) {}

void BinaryGroupByHashOp::Reset() {
  BinaryPhysOp::Reset();
  group_values_.Clear();
  empty_group_values_.clear();
}

Status BinaryGroupByHashOp::AccumulateRange(size_t begin, size_t end,
                                            GroupMap* groups) const {
  const std::vector<Row>& rows = right_rows();
  for (size_t r = begin; r < end; ++r) {
    const Row& row = rows[r];
    const Value& key_val = row[static_cast<size_t>(right_key_slot_)];
    if (key_val.is_null()) continue;  // SQL '=' never matches NULL
    auto& aggs = groups->FindOrEmplace(
        RowSlotsRef{&row, &right_key_slots_},
        [&] { return std::make_unique<AggregatorSet>(&aggregates_); });
    EvalContext ectx{&row, ctx_->outer_row()};
    BYPASS_RETURN_IF_ERROR(aggs->Accumulate(ectx));
  }
  return Status::OK();
}

Status BinaryGroupByHashOp::BuildFromRight() {
  // Phase 1: accumulate one AggregatorSet per distinct right key. Right
  // finish runs on the driver after the pool drained, so the pool is free
  // to parallelize the build over contiguous row ranges.
  const size_t n = right_rows().size();
  GroupMap groups;
  WorkerPool* pool = ctx_->pool();
  constexpr size_t kParallelBuildThreshold = 4096;
  if (pool != nullptr && pool->num_workers() > 1 &&
      n >= kParallelBuildThreshold) {
    const size_t num_tasks = static_cast<size_t>(pool->num_workers());
    const size_t chunk = (n + num_tasks - 1) / num_tasks;
    std::vector<GroupMap> task_groups(num_tasks);
    BYPASS_RETURN_IF_ERROR(pool->ParallelFor(
        num_tasks, [&](size_t t) -> Status {
          const size_t begin = t * chunk;
          const size_t end = std::min(begin + chunk, n);
          if (begin >= end) return Status::OK();
          return AccumulateRange(begin, end, &task_groups[t]);
        }));
    for (GroupMap& tg : task_groups) {
      BYPASS_RETURN_IF_ERROR(MergeGroupMaps(&groups, &tg));
    }
  } else {
    BYPASS_RETURN_IF_ERROR(AccumulateRange(0, n, &groups));
  }
  // Phase 2: finalize into value rows probed per left tuple.
  group_values_.Clear();
  group_values_.Reserve(groups.size());
  for (auto& entry : groups.mutable_entries()) {
    Row vals;
    BYPASS_RETURN_IF_ERROR(entry.value->FinalizeInto(&vals));
    group_values_.EmplaceNew(std::move(entry.key), std::move(vals));
  }
  // f(∅) for empty groups.
  empty_group_values_.clear();
  for (const AggregateSpec& a : aggregates_) {
    empty_group_values_.push_back(AggEmptyValue(a.func));
  }
  return Status::OK();
}

Status BinaryGroupByHashOp::ProcessLeft(Row row) {
  const Value& key_val = row[static_cast<size_t>(left_key_slot_)];
  const Row* vals = &empty_group_values_;
  if (!key_val.is_null()) {
    const Row* found =
        group_values_.Find(RowSlotsRef{&row, &left_key_slots_});
    if (found != nullptr) vals = found;
  }
  for (const Value& v : *vals) row.push_back(v);
  return EmitRow(kPortOut, std::move(row));
}

// ------------------------------------------------------ BinaryGroupBy(nl)

BinaryGroupByNLOp::BinaryGroupByNLOp(int left_key_slot, CompareOp op,
                                     int right_key_slot,
                                     std::vector<AggregateSpec> aggregates)
    : left_key_slot_(left_key_slot),
      op_(op),
      right_key_slot_(right_key_slot),
      aggregates_(std::move(aggregates)) {}

Status BinaryGroupByNLOp::ProcessLeft(Row row) {
  AggregatorSet aggs(&aggregates_);
  const Value& left_key = row[static_cast<size_t>(left_key_slot_)];
  int64_t since_check = 0;
  for (const Row& right : right_rows()) {
    if (++since_check >= 4096) {
      since_check = 0;
      BYPASS_RETURN_IF_ERROR(ctx_->CheckBudget());
    }
    const Value& right_key = right[static_cast<size_t>(right_key_slot_)];
    if (left_key.Compare(op_, right_key) != TriBool::kTrue) continue;
    EvalContext ectx{&right, ctx_->outer_row()};
    BYPASS_RETURN_IF_ERROR(aggs.Accumulate(ectx));
  }
  BYPASS_RETURN_IF_ERROR(aggs.FinalizeInto(&row));
  return EmitRow(kPortOut, std::move(row));
}

}  // namespace bypass
