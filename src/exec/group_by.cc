#include "exec/group_by.h"

#include "common/check.h"

namespace bypass {

// ------------------------------------------------------------ HashGroupBy

HashGroupByOp::HashGroupByOp(std::vector<int> key_slots,
                             std::vector<AggregateSpec> aggregates,
                             bool scalar)
    : key_slots_(std::move(key_slots)),
      aggregates_(std::move(aggregates)),
      scalar_(scalar) {
  BYPASS_CHECK_MSG(!scalar_ || key_slots_.empty(),
                   "scalar aggregation cannot have group keys");
  if (scalar_) {
    scalar_group_ = std::make_unique<AggregatorSet>(&aggregates_);
  }
}

void HashGroupByOp::Reset() {
  groups_.clear();
  if (scalar_group_) scalar_group_->Reset();
}

Status HashGroupByOp::Consume(int, RowBatch batch) {
  const size_t n = batch.size();
  for (size_t i = 0; i < n; ++i) {
    const Row& row = batch.row(i);
    EvalContext ectx{&row, ctx_->outer_row()};
    if (scalar_) {
      BYPASS_RETURN_IF_ERROR(scalar_group_->Accumulate(ectx));
      continue;
    }
    auto it = groups_.find(RowSlotsRef{&row, &key_slots_});
    if (it == groups_.end()) {
      it = groups_
               .emplace(ProjectRow(row, key_slots_),
                        std::make_unique<AggregatorSet>(&aggregates_))
               .first;
    }
    BYPASS_RETURN_IF_ERROR(it->second->Accumulate(ectx));
  }
  return Status::OK();
}

Status HashGroupByOp::FinishPort(int) {
  if (scalar_) {
    Row out;
    BYPASS_RETURN_IF_ERROR(scalar_group_->FinalizeInto(&out));
    BYPASS_RETURN_IF_ERROR(EmitRow(kPortOut, std::move(out)));
  } else {
    for (const auto& [key, aggs] : groups_) {
      Row out = key;
      BYPASS_RETURN_IF_ERROR(aggs->FinalizeInto(&out));
      BYPASS_RETURN_IF_ERROR(EmitRow(kPortOut, std::move(out)));
    }
  }
  return EmitFinish(kPortOut);
}

// ---------------------------------------------------- BinaryGroupBy(hash)

BinaryGroupByHashOp::BinaryGroupByHashOp(
    int left_key_slot, int right_key_slot,
    std::vector<AggregateSpec> aggregates)
    : left_key_slot_(left_key_slot),
      right_key_slot_(right_key_slot),
      left_key_slots_{left_key_slot},
      right_key_slots_{right_key_slot},
      aggregates_(std::move(aggregates)) {}

void BinaryGroupByHashOp::Reset() {
  BinaryPhysOp::Reset();
  group_values_.clear();
  empty_group_values_.clear();
}

Status BinaryGroupByHashOp::BuildFromRight() {
  // Phase 1: accumulate one AggregatorSet per distinct right key.
  std::unordered_map<Row, std::unique_ptr<AggregatorSet>, RowKeyHash,
                     RowKeyEq>
      groups;
  for (const Row& row : right_rows()) {
    const Value& key_val = row[static_cast<size_t>(right_key_slot_)];
    if (key_val.is_null()) continue;  // SQL '=' never matches NULL
    auto it = groups.find(RowSlotsRef{&row, &right_key_slots_});
    if (it == groups.end()) {
      it = groups
               .emplace(Row{key_val},
                        std::make_unique<AggregatorSet>(&aggregates_))
               .first;
    }
    EvalContext ectx{&row, ctx_->outer_row()};
    BYPASS_RETURN_IF_ERROR(it->second->Accumulate(ectx));
  }
  // Phase 2: finalize into value rows probed per left tuple.
  group_values_.clear();
  for (const auto& [key, aggs] : groups) {
    Row vals;
    BYPASS_RETURN_IF_ERROR(aggs->FinalizeInto(&vals));
    group_values_.emplace(key, std::move(vals));
  }
  // f(∅) for empty groups.
  empty_group_values_.clear();
  for (const AggregateSpec& a : aggregates_) {
    empty_group_values_.push_back(AggEmptyValue(a.func));
  }
  return Status::OK();
}

Status BinaryGroupByHashOp::ProcessLeft(Row row) {
  const Value& key_val = row[static_cast<size_t>(left_key_slot_)];
  const Row* vals = &empty_group_values_;
  if (!key_val.is_null()) {
    const auto it = group_values_.find(RowSlotsRef{&row, &left_key_slots_});
    if (it != group_values_.end()) vals = &it->second;
  }
  for (const Value& v : *vals) row.push_back(v);
  return EmitRow(kPortOut, std::move(row));
}

// ------------------------------------------------------ BinaryGroupBy(nl)

BinaryGroupByNLOp::BinaryGroupByNLOp(int left_key_slot, CompareOp op,
                                     int right_key_slot,
                                     std::vector<AggregateSpec> aggregates)
    : left_key_slot_(left_key_slot),
      op_(op),
      right_key_slot_(right_key_slot),
      aggregates_(std::move(aggregates)) {}

Status BinaryGroupByNLOp::ProcessLeft(Row row) {
  AggregatorSet aggs(&aggregates_);
  const Value& left_key = row[static_cast<size_t>(left_key_slot_)];
  int64_t since_check = 0;
  for (const Row& right : right_rows()) {
    if (++since_check >= 4096) {
      since_check = 0;
      BYPASS_RETURN_IF_ERROR(ctx_->CheckBudget());
    }
    const Value& right_key = right[static_cast<size_t>(right_key_slot_)];
    if (left_key.Compare(op_, right_key) != TriBool::kTrue) continue;
    EvalContext ectx{&right, ctx_->outer_row()};
    BYPASS_RETURN_IF_ERROR(aggs.Accumulate(ectx));
  }
  BYPASS_RETURN_IF_ERROR(aggs.FinalizeInto(&row));
  return EmitRow(kPortOut, std::move(row));
}

}  // namespace bypass
