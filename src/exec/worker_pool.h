// WorkerPool: the shared thread pool behind morsel-driven intra-query
// parallelism. The executor splits every table scan into fixed-size
// morsels and dispatches them here; each worker drives the pipeline's
// Consume chain for its morsel, touching only worker-local operator
// state (see exec/phys_op.h). The calling thread always participates as
// worker 0, so a pool of size 1 spawns no threads and degenerates to the
// serial executor — the differential-testing oracle.
#ifndef BYPASSDB_EXEC_WORKER_POOL_H_
#define BYPASSDB_EXEC_WORKER_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"

namespace bypass {

/// Id of the worker the current thread is acting as, in
/// [0, WorkerPool::num_workers()). Threads outside any ParallelFor —
/// including the driver thread between pipeline phases — report 0, so
/// serial code paths always use worker slot 0. Operators index their
/// per-worker state with this.
int CurrentWorkerId();

class WorkerPool {
 public:
  /// A pool of `num_workers` total workers: `num_workers - 1` persistent
  /// threads plus the caller of ParallelFor, which participates as
  /// worker 0.
  explicit WorkerPool(int num_workers);
  ~WorkerPool();
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  int num_workers() const { return num_workers_; }

  /// Runs `fn(task)` for every task in [0, num_tasks), claimed dynamically
  /// by whichever worker is free (the morsel-stealing loop). Blocks until
  /// all claimed tasks finished. On error the first non-OK status is
  /// returned and the remaining unclaimed tasks are skipped; already
  /// claimed tasks still run to completion. Not reentrant: only the
  /// driver thread may call it, and never from inside a task.
  Status ParallelFor(size_t num_tasks,
                     const std::function<Status(size_t task)>& fn);

 private:
  void WorkerLoop(int worker_id);
  /// Claims and runs tasks of the current round until exhausted.
  void RunTasks();

  const int num_workers_;
  std::vector<std::thread> threads_;

  std::mutex mu_;
  std::condition_variable work_cv_;   // signals a new round (or shutdown)
  std::condition_variable done_cv_;   // signals round completion
  const std::function<Status(size_t)>* fn_ = nullptr;  // current round
  size_t num_tasks_ = 0;
  uint64_t round_ = 0;                // generation counter for the cv wait
  int active_workers_ = 0;            // workers still inside RunTasks
  bool shutdown_ = false;
  Status first_error_;                // first non-OK status of the round

  std::atomic<size_t> next_task_{0};
  std::atomic<bool> abort_{false};    // set on first error; skips the rest
};

}  // namespace bypass

#endif  // BYPASSDB_EXEC_WORKER_POOL_H_
