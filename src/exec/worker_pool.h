// WorkerPool: the process-wide thread pool behind morsel-driven
// parallelism. Originally each query privately owned a pool and
// ParallelFor ran one task round at a time; the serving layer (see
// engine/server.h and DESIGN.md §10) generalized it into a multi-query
// scheduler: any number of driver threads may run ParallelFor
// concurrently, each call forms a *task group*, and the pool's workers
// multiplex across all live groups — highest priority first, FIFO within
// a priority. A driver only ever works on its own group, so a pool of
// size 1 (no threads) still degenerates to the serial executor for every
// caller — the differential-testing oracle.
#ifndef BYPASSDB_EXEC_WORKER_POOL_H_
#define BYPASSDB_EXEC_WORKER_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"

namespace bypass {

/// Id of the worker the current thread is acting as, in
/// [0, WorkerPool::num_workers()). Threads outside any ParallelFor —
/// including every driver thread between pipeline phases — report 0, so
/// serial code paths always use worker slot 0. Operators index their
/// per-worker state with this.
int CurrentWorkerId();

/// Scheduling parameters of one ParallelFor call (one task group).
struct TaskGroupOptions {
  /// Higher-priority groups are claimed first when workers are
  /// contended; ties break FIFO by submission order.
  int priority = 0;
  /// Cap on workers (driver included) concurrently inside this group's
  /// tasks — the query's intra-query parallelism. 0 = unlimited.
  int max_workers = 0;
  /// Pool workers with id >= max_worker_id never claim this group's
  /// tasks (0 = no bound). Queries size per-worker operator state by
  /// this, so it must stay an upper bound on participating worker ids
  /// even while the pool grows under other queries.
  int max_worker_id = 0;
};

class WorkerPool {
 public:
  /// A pool of `num_workers` total workers: `num_workers - 1` persistent
  /// threads plus whichever thread calls ParallelFor, which participates
  /// as worker 0.
  explicit WorkerPool(int num_workers);
  ~WorkerPool();
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  int num_workers() const {
    return num_workers_.load(std::memory_order_acquire);
  }

  /// Grows the pool to `n` total workers (never shrinks; shrinking would
  /// invalidate per-worker state of in-flight queries). Thread-safe.
  void EnsureWorkers(int n);

  /// Runs `fn(task)` for every task in [0, num_tasks), claimed
  /// dynamically by whichever eligible worker is free (the
  /// morsel-stealing loop); the caller participates in its own group.
  /// Blocks until all claimed tasks finished. On error the first non-OK
  /// status is returned and the remaining unclaimed tasks are skipped;
  /// already claimed tasks still run to completion.
  ///
  /// Callable concurrently from any number of driver threads — each call
  /// is an independent task group multiplexed over the shared workers —
  /// but never from inside a pool worker (tasks must not ParallelFor).
  Status ParallelFor(size_t num_tasks,
                     const std::function<Status(size_t task)>& fn,
                     const TaskGroupOptions& options = {});

 private:
  /// One ParallelFor call in flight. All fields are guarded by the
  /// pool's mutex; tasks run outside the lock, claims/completions
  /// re-acquire it (morsel granularity amortizes the lock).
  struct TaskGroup {
    const std::function<Status(size_t)>* fn = nullptr;
    size_t num_tasks = 0;
    size_t next = 0;       ///< first unclaimed task
    size_t completed = 0;  ///< claimed tasks that finished
    int active = 0;        ///< workers currently inside a task
    bool abort = false;    ///< set on first error; skips the rest
    Status first_error;
    TaskGroupOptions options;
    uint64_t seq = 0;      ///< FIFO tiebreak within a priority

    bool AllDone() const {
      return active == 0 && (abort || completed == num_tasks);
    }
    bool Claimable(int worker_id) const {
      if (abort || next >= num_tasks) return false;
      if (options.max_workers > 0 && active >= options.max_workers) {
        return false;
      }
      if (options.max_worker_id > 0 &&
          worker_id >= options.max_worker_id) {
        return false;
      }
      return true;
    }
  };

  void WorkerLoop(int worker_id);
  /// Claims and runs one task of `group`. `lock` must hold mu_; it is
  /// released around the task body and re-held on return.
  void RunOneTask(const std::shared_ptr<TaskGroup>& group,
                  std::unique_lock<std::mutex>& lock);
  /// Highest-priority group with a task claimable by `worker_id`
  /// (FIFO within a priority); nullptr when none. Caller holds mu_.
  std::shared_ptr<TaskGroup> PickGroup(int worker_id) const;

  std::atomic<int> num_workers_;
  std::vector<std::thread> threads_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;  // workers: new group (or shutdown)
  std::condition_variable done_cv_;  // drivers: task completions
  std::vector<std::shared_ptr<TaskGroup>> groups_;  // live groups
  uint64_t group_seq_ = 0;
  bool shutdown_ = false;
};

}  // namespace bypass

#endif  // BYPASSDB_EXEC_WORKER_POOL_H_
