// ORDER BY: buffers its input and emits sorted on finish. NULLs sort
// first ascending (Value::OrderCompare's total order).
#ifndef BYPASSDB_EXEC_SORT_H_
#define BYPASSDB_EXEC_SORT_H_

#include <string>
#include <vector>

#include "exec/phys_op.h"
#include "expr/expr.h"

namespace bypass {

/// A bound sort key.
struct PhysSortKey {
  ExprPtr expr;
  bool descending = false;
};

class SortPhysOp : public UnaryPhysOp {
 public:
  explicit SortPhysOp(std::vector<PhysSortKey> keys)
      : keys_(std::move(keys)) {}

  void Reset() override { buffer_.clear(); }
  Status Consume(int in_port, RowBatch batch) override;
  Status FinishPort(int in_port) override;
  std::string Label() const override { return "Sort"; }

 private:
  std::vector<PhysSortKey> keys_;
  std::vector<Row> buffer_;
};

}  // namespace bypass

#endif  // BYPASSDB_EXEC_SORT_H_
