// ORDER BY: buffers its input and emits sorted on finish. NULLs sort
// first ascending (Value::OrderCompare's total order). Buffers are
// per-worker and merged at finish, so the sort itself sees all rows;
// stability ties are broken by post-merge arrival order, which is
// scheduling-dependent under parallelism (equal keys only).
#ifndef BYPASSDB_EXEC_SORT_H_
#define BYPASSDB_EXEC_SORT_H_

#include <string>
#include <vector>

#include "exec/phys_op.h"
#include "expr/expr.h"

namespace bypass {

/// A bound sort key.
struct PhysSortKey {
  ExprPtr expr;
  bool descending = false;
};

class SortPhysOp : public UnaryPhysOp {
 public:
  explicit SortPhysOp(std::vector<PhysSortKey> keys)
      : keys_(std::move(keys)) {}

  Status Prepare(ExecContext* ctx) override;
  void Reset() override;
  Status Consume(int in_port, RowBatch batch) override;
  Status FinishPort(int in_port) override;
  std::string Label() const override { return "Sort"; }

 private:
  struct alignas(64) Partial {
    std::vector<Row> rows;
  };

  std::vector<PhysSortKey> keys_;
  std::vector<Partial> partials_;  // per-worker input buffers
};

}  // namespace bypass

#endif  // BYPASSDB_EXEC_SORT_H_
