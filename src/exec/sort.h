// ORDER BY: buffers its input and emits sorted on finish. NULLs sort
// first ascending (Value::OrderCompare's total order). Buffers are
// per-worker and merged at finish, so the sort itself sees all rows;
// stability ties are broken by post-merge arrival order, which is
// scheduling-dependent under parallelism (equal keys only).
//
// Out-of-core: with a memory budget and a spill manager on the context,
// a worker whose buffer cannot be charged sorts it into a run file
// (records are key ++ payload, already in key order) and keeps going;
// the finish phase then streams a k-way merge of all runs plus the
// sorted in-memory remainder. Ties across streams break by run ordinal
// (worker, then spill order) before the remainder, so serial spilled
// runs reproduce arrival-order stability exactly.
#ifndef BYPASSDB_EXEC_SORT_H_
#define BYPASSDB_EXEC_SORT_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "exec/phys_op.h"
#include "expr/expr.h"
#include "storage/spill.h"

namespace bypass {

/// A bound sort key.
struct PhysSortKey {
  ExprPtr expr;
  bool descending = false;
};

class SortPhysOp : public UnaryPhysOp {
 public:
  explicit SortPhysOp(std::vector<PhysSortKey> keys)
      : keys_(std::move(keys)) {}

  Status Prepare(ExecContext* ctx) override;
  void Reset() override;
  Status Consume(int in_port, RowBatch batch) override;
  Status FinishPort(int in_port) override;
  std::string Label() const override { return "Sort"; }

 private:
  struct alignas(64) Partial {
    std::vector<Row> rows;
    int64_t charged = 0;  ///< bytes charged for `rows`
    std::vector<std::unique_ptr<SpillFile>> runs;
  };

  /// Evaluates the sort keys of `rows` and sorts (key, index) pairs with
  /// the key comparator, ties by index (= arrival order within `rows`).
  Result<std::vector<std::pair<Row, size_t>>> SortKeyed(
      const std::vector<Row>& rows) const;

  /// -1 / 0 / +1 of the key rows under the sort direction flags.
  int CompareKeys(const Row& a, const Row& b) const;

  /// Sorts the worker's buffered rows into a new run file (records are
  /// the key row concatenated with the payload row) and releases their
  /// budget charges.
  Status SpillRun(Partial* partial);

  /// Streams the merge of the sorted run files and the sorted in-memory
  /// remainder.
  Status MergeRuns(std::vector<std::unique_ptr<SpillFile>> runs,
                   std::vector<Row>* buffer,
                   std::vector<std::pair<Row, size_t>>* keyed);

  std::vector<PhysSortKey> keys_;
  std::vector<Partial> partials_;  // per-worker input buffers
};

}  // namespace bypass

#endif  // BYPASSDB_EXEC_SORT_H_
