// Grouping operators: unary grouping Γ_{g;=A;f} (hash aggregation, with a
// scalar mode for aggregate-without-GROUP-BY blocks) and binary grouping
// Γ_{g;A1θA2;f} (Cluet/Moerkotte; main-memory implementations follow
// May/Moerkotte [21]: hash-based for θ = '=', nested-loop otherwise).
//
// Parallelism: HashGroupByOp accumulates into per-worker partial hash
// tables (no shared mutable state during Consume) merged via
// AggregatorSet::Merge at finish, which runs single-threaded on the
// driver. BinaryGroupByHashOp builds its right-side aggregate table with
// the context's worker pool when the right input is large.
#ifndef BYPASSDB_EXEC_GROUP_BY_H_
#define BYPASSDB_EXEC_GROUP_BY_H_

#include <memory>
#include <string>
#include <vector>

#include "common/flat_table.h"
#include "exec/phys_op.h"
#include "expr/agg.h"
#include "expr/expr.h"

namespace bypass {

/// Hash aggregation. Output = group-key values ++ aggregate values. In
/// scalar mode (no keys) exactly one row is emitted even on empty input.
class HashGroupByOp : public UnaryPhysOp {
 public:
  HashGroupByOp(std::vector<int> key_slots,
                std::vector<AggregateSpec> aggregates, bool scalar);

  Status Prepare(ExecContext* ctx) override;
  void Reset() override;
  Status Consume(int in_port, RowBatch batch) override;
  Status FinishPort(int in_port) override;
  std::string Label() const override {
    return scalar_ ? "ScalarAgg" : "HashGroupBy";
  }

 private:
  // Flat table with transparent probes: group lookup hashes a
  // RowSlotsRef over the input row, so only new groups project a key row
  // (single-column int64 keys skip Value hashing entirely).
  using GroupMap = FlatRowMap<std::unique_ptr<AggregatorSet>>;

  /// One worker's partial aggregation state, padded to its own cache line.
  struct alignas(64) Partial {
    GroupMap groups;
    std::unique_ptr<AggregatorSet> scalar;
  };

  std::vector<int> key_slots_;
  std::vector<AggregateSpec> aggregates_;
  bool scalar_;
  std::vector<Partial> partials_;  // indexed by CurrentWorkerId()
};

/// Binary grouping, hash variant (θ = '='): every left tuple is extended
/// with the aggregates over its group of right tuples; empty groups yield
/// f(∅). Aggregate arguments are evaluated against right-side rows.
class BinaryGroupByHashOp : public BinaryPhysOp {
 public:
  BinaryGroupByHashOp(int left_key_slot, int right_key_slot,
                      std::vector<AggregateSpec> aggregates);

  void Reset() override;
  std::string Label() const override { return "BinaryGroupBy(hash)"; }

 protected:
  Status BuildFromRight() override;
  Status ProcessLeft(Row row) override;
  Status FinishBoth() override { return EmitFinish(kPortOut); }

 private:
  using GroupMap = FlatRowMap<std::unique_ptr<AggregatorSet>>;

  Status AccumulateRange(size_t begin, size_t end, GroupMap* groups) const;

  int left_key_slot_;
  int right_key_slot_;
  // Single-element slot vectors backing the RowSlotsRef probes below.
  std::vector<int> left_key_slots_;
  std::vector<int> right_key_slots_;
  std::vector<AggregateSpec> aggregates_;
  FlatRowMap<Row> group_values_;
  Row empty_group_values_;
};

/// Binary grouping, nested-loop variant for arbitrary θ.
class BinaryGroupByNLOp : public BinaryPhysOp {
 public:
  BinaryGroupByNLOp(int left_key_slot, CompareOp op, int right_key_slot,
                    std::vector<AggregateSpec> aggregates);

  std::string Label() const override { return "BinaryGroupBy(nl)"; }

 protected:
  Status ProcessLeft(Row row) override;
  Status FinishBoth() override { return EmitFinish(kPortOut); }

 private:
  int left_key_slot_;
  CompareOp op_;
  int right_key_slot_;
  std::vector<AggregateSpec> aggregates_;
};

}  // namespace bypass

#endif  // BYPASSDB_EXEC_GROUP_BY_H_
