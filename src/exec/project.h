// Streaming row-shaping operators: projection Π, map χ (append computed
// columns), and numbering ν (append a unique tuple id). All are
// morsel-parallel: Π/χ use per-worker scratch, ν draws ids from one
// atomic counter (ids stay unique and dense overall, but their
// assignment to rows is scheduling-dependent — only equality matters to
// the plans that use them), and LIMIT serializes on a mutex (rare and
// cheap: one short critical section per batch).
#ifndef BYPASSDB_EXEC_PROJECT_H_
#define BYPASSDB_EXEC_PROJECT_H_

#include <atomic>
#include <mutex>
#include <string>
#include <vector>

#include "exec/phys_op.h"
#include "expr/expr.h"

namespace bypass {

/// Π: output = one value per expression. When the planner detects that
/// the projection is the identity over its input schema it sets
/// `identity` and batches flow through untouched.
class ProjectPhysOp : public UnaryPhysOp {
 public:
  explicit ProjectPhysOp(std::vector<ExprPtr> exprs, bool identity = false)
      : exprs_(std::move(exprs)), identity_(identity) {}

  Status Prepare(ExecContext* ctx) override;
  Status Consume(int in_port, RowBatch batch) override;
  std::string Label() const override;

 private:
  struct alignas(64) Scratch {
    std::vector<std::vector<Value>> columns;
  };

  std::vector<ExprPtr> exprs_;
  bool identity_;
  std::vector<Scratch> scratch_;  // per-worker per-batch scratch
};

/// χ: output = input row ++ one value per expression.
class MapPhysOp : public UnaryPhysOp {
 public:
  explicit MapPhysOp(std::vector<ExprPtr> exprs)
      : exprs_(std::move(exprs)) {}

  Status Prepare(ExecContext* ctx) override;
  Status Consume(int in_port, RowBatch batch) override;
  std::string Label() const override;

 private:
  struct alignas(64) Scratch {
    std::vector<std::vector<Value>> columns;
  };

  std::vector<ExprPtr> exprs_;
  std::vector<Scratch> scratch_;  // per-worker per-batch scratch
};

/// ν: output = input row ++ [unique int64 id starting at 0].
class NumberingPhysOp : public UnaryPhysOp {
 public:
  NumberingPhysOp() = default;

  void Reset() override {
    next_id_.store(0, std::memory_order_relaxed);
  }
  Status Consume(int in_port, RowBatch batch) override;
  std::string Label() const override { return "Numbering ν"; }

 private:
  std::atomic<int64_t> next_id_{0};
};

/// LIMIT n: forwards the first n rows, then drops the rest (and asks the
/// context to cancel the producers when possible).
class LimitPhysOp : public UnaryPhysOp {
 public:
  explicit LimitPhysOp(int64_t count) : count_(count) {}

  void Reset() override { seen_ = 0; }
  Status Consume(int in_port, RowBatch batch) override;
  std::string Label() const override {
    return "Limit " + std::to_string(count_);
  }

 private:
  int64_t count_;
  std::mutex mu_;  // guards seen_ against concurrent morsel workers
  int64_t seen_ = 0;
};

}  // namespace bypass

#endif  // BYPASSDB_EXEC_PROJECT_H_
