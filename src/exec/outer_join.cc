#include "exec/outer_join.h"

namespace bypass {

void HashLeftOuterJoinOp::Reset() {
  BinaryPhysOp::Reset();
  table_.Clear();
}

Status HashLeftOuterJoinOp::BuildFromRight() {
  table_.Build(right_rows(), right_key_slots_);
  return Status::OK();
}

Status HashLeftOuterJoinOp::ProcessLeft(Row row) {
  const std::vector<size_t>* matches = table_.Probe(row, left_key_slots_);
  if (matches == nullptr || matches->empty()) {
    return Emit(kPortOut, ConcatRows(row, unmatched_right_));
  }
  for (size_t idx : *matches) {
    BYPASS_RETURN_IF_ERROR(
        Emit(kPortOut, ConcatRows(row, right_rows()[idx])));
  }
  return Status::OK();
}

Status NLLeftOuterJoinOp::ProcessLeft(Row row) {
  bool matched = false;
  int64_t since_check = 0;
  for (const Row& right : right_rows()) {
    if (++since_check >= 4096) {
      since_check = 0;
      BYPASS_RETURN_IF_ERROR(ctx_->CheckBudget());
    }
    Row joined = ConcatRows(row, right);
    EvalContext ectx{&joined, ctx_->outer_row()};
    BYPASS_ASSIGN_OR_RETURN(Value v, predicate_->Eval(ectx));
    if (ValueToTriBool(v) != TriBool::kTrue) continue;
    matched = true;
    BYPASS_RETURN_IF_ERROR(Emit(kPortOut, std::move(joined)));
  }
  if (!matched) {
    return Emit(kPortOut, ConcatRows(row, unmatched_right_));
  }
  return Status::OK();
}

}  // namespace bypass
