#include "exec/outer_join.h"

namespace bypass {

Status HashLeftOuterJoinOp::Prepare(ExecContext* ctx) {
  BYPASS_RETURN_IF_ERROR(BinaryPhysOp::Prepare(ctx));
  scratch_.resize(static_cast<size_t>(ctx->num_worker_slots()));
  return Status::OK();
}

void HashLeftOuterJoinOp::Reset() {
  BinaryPhysOp::Reset();
  table_.Clear();
}

Status HashLeftOuterJoinOp::BuildFromRight() {
  table_.Build(right_rows(), right_key_slots_, ctx_->pool());
  // The index arrays scale with the build side like the buffered rows
  // (charged on arrival) do; this operator has no spill path, so an
  // overrun surfaces as ResourceExhausted.
  return ctx_->ChargeMemory(table_.RetainedBytes());
}

Status HashLeftOuterJoinOp::EmitPadded(const Row& row,
                                       JoinMatches matches) {
  if (matches.empty()) {
    return EmitRow(kPortOut, ConcatRows(row, unmatched_right_));
  }
  for (uint32_t idx : matches) {
    BYPASS_RETURN_IF_ERROR(
        EmitRow(kPortOut, ConcatRows(row, right_rows()[idx])));
  }
  return Status::OK();
}

Status HashLeftOuterJoinOp::ProcessLeft(Row row) {
  return EmitPadded(row, table_.Probe(row, left_key_slots_));
}

Status HashLeftOuterJoinOp::ProcessLeftBatch(RowBatch batch) {
  JoinProbeScratch& scratch =
      scratch_[static_cast<size_t>(CurrentWorkerId())];
  table_.ProbeBatch(batch, left_key_slots_, &scratch);
  const size_t n = batch.size();
  for (size_t i = 0; i < n; ++i) {
    BYPASS_RETURN_IF_ERROR(EmitPadded(batch.row(i), scratch.matches[i]));
  }
  return Status::OK();
}

Status NLLeftOuterJoinOp::JoinOrPad(const Row& row) {
  bool matched = false;
  int64_t since_check = 0;
  for (const Row& right : right_rows()) {
    if (++since_check >= 4096) {
      since_check = 0;
      BYPASS_RETURN_IF_ERROR(ctx_->CheckBudget());
    }
    Row joined = ConcatRows(row, right);
    EvalContext ectx{&joined, ctx_->outer_row()};
    BYPASS_ASSIGN_OR_RETURN(Value v, predicate_->Eval(ectx));
    if (ValueToTriBool(v) != TriBool::kTrue) continue;
    matched = true;
    BYPASS_RETURN_IF_ERROR(EmitRow(kPortOut, std::move(joined)));
  }
  if (!matched) {
    return EmitRow(kPortOut, ConcatRows(row, unmatched_right_));
  }
  return Status::OK();
}

Status NLLeftOuterJoinOp::ProcessLeft(Row row) { return JoinOrPad(row); }

Status NLLeftOuterJoinOp::ProcessLeftBatch(RowBatch batch) {
  const size_t n = batch.size();
  for (size_t i = 0; i < n; ++i) {
    BYPASS_RETURN_IF_ERROR(JoinOrPad(batch.row(i)));
  }
  return Status::OK();
}

}  // namespace bypass
