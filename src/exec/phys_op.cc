#include "exec/phys_op.h"

#include "common/check.h"

namespace bypass {

void PhysOp::AddConsumer(int out_port, PhysOp* consumer, int in_port) {
  BYPASS_CHECK(out_port >= 0 &&
               out_port < static_cast<int>(out_edges_.size()));
  out_edges_[static_cast<size_t>(out_port)].push_back(
      Edge{consumer, in_port});
}

Status PhysOp::Prepare(ExecContext* ctx) {
  ctx_ = ctx;
  emitted_.assign(out_edges_.size(), 0);
  return Status::OK();
}

Status PhysOp::Emit(int out_port, Row row) {
  ++emitted_[static_cast<size_t>(out_port)];
  const auto& edges = out_edges_[static_cast<size_t>(out_port)];
  if (edges.empty()) return Status::OK();
  // Copy for all consumers but the last; move into the last.
  for (size_t i = 0; i + 1 < edges.size(); ++i) {
    BYPASS_RETURN_IF_ERROR(
        edges[i].consumer->Consume(edges[i].in_port, row));
  }
  return edges.back().consumer->Consume(edges.back().in_port,
                                        std::move(row));
}

Status PhysOp::EmitFinish(int out_port) {
  for (const Edge& e : out_edges_[static_cast<size_t>(out_port)]) {
    BYPASS_RETURN_IF_ERROR(e.consumer->FinishPort(e.in_port));
  }
  return Status::OK();
}

Status UnaryPhysOp::FinishPort(int in_port) {
  BYPASS_CHECK(in_port == 0);
  for (int p = 0; p < num_out_ports(); ++p) {
    BYPASS_RETURN_IF_ERROR(EmitFinish(p));
  }
  return Status::OK();
}

Status BinaryPhysOp::Prepare(ExecContext* ctx) {
  BYPASS_RETURN_IF_ERROR(PhysOp::Prepare(ctx));
  return Status::OK();
}

void BinaryPhysOp::Reset() {
  right_rows_.clear();
  pending_left_.clear();
  right_done_ = false;
  left_done_ = false;
  finished_ = false;
}

Status BinaryPhysOp::Consume(int in_port, Row row) {
  if (in_port == kRight) {
    BYPASS_CHECK_MSG(!right_done_, "row after right-side finish");
    right_rows_.push_back(std::move(row));
    return Status::OK();
  }
  BYPASS_CHECK(in_port == kLeft);
  if (!right_done_) {
    // The executor could not schedule the right pipeline first (shared
    // DAG sources); fall back to buffering the left side.
    pending_left_.push_back(std::move(row));
    return Status::OK();
  }
  return ProcessLeft(std::move(row));
}

Status BinaryPhysOp::FinishPort(int in_port) {
  if (in_port == kRight) {
    right_done_ = true;
    BYPASS_RETURN_IF_ERROR(BuildFromRight());
    std::vector<Row> pending = std::move(pending_left_);
    pending_left_.clear();
    for (Row& r : pending) {
      BYPASS_RETURN_IF_ERROR(ProcessLeft(std::move(r)));
    }
  } else {
    BYPASS_CHECK(in_port == kLeft);
    left_done_ = true;
  }
  return MaybeFinish();
}

Status BinaryPhysOp::MaybeFinish() {
  if (finished_ || !left_done_ || !right_done_) return Status::OK();
  finished_ = true;
  return FinishBoth();
}

}  // namespace bypass
