#include "exec/phys_op.h"

#include "common/check.h"

namespace bypass {

void PhysOp::AddConsumer(int out_port, PhysOp* consumer, int in_port) {
  BYPASS_CHECK(out_port >= 0 &&
               out_port < static_cast<int>(out_edges_.size()));
  out_edges_[static_cast<size_t>(out_port)].push_back(
      Edge{consumer, in_port});
}

Status PhysOp::Prepare(ExecContext* ctx) {
  ctx_ = ctx;
  batch_size_ = ctx->batch_size();
  // Keep the pending builders' capacity: subplans re-Prepare once per
  // correlated re-execution, and reallocating here would churn.
  workers_.resize(static_cast<size_t>(ctx->num_worker_slots()));
  for (WorkerState& w : workers_) {
    w.ports.resize(static_cast<size_t>(num_out_ports_));
    for (PortState& p : w.ports) {
      p.pending.clear();
      p.rows_emitted = 0;
      p.batches_emitted = 0;
    }
  }
  return Status::OK();
}

int64_t PhysOp::rows_emitted(int out_port) const {
  const size_t port = static_cast<size_t>(out_port);
  int64_t total = 0;
  for (const WorkerState& w : workers_) {
    if (port < w.ports.size()) total += w.ports[port].rows_emitted;
  }
  return total;
}

int64_t PhysOp::batches_emitted(int out_port) const {
  const size_t port = static_cast<size_t>(out_port);
  int64_t total = 0;
  for (const WorkerState& w : workers_) {
    if (port < w.ports.size()) total += w.ports[port].batches_emitted;
  }
  return total;
}

Status PhysOp::EmitBatch(int out_port, RowBatch batch) {
  if (batch.empty()) return Status::OK();
  const size_t port = static_cast<size_t>(out_port);
  PortState& counters =
      workers_[static_cast<size_t>(CurrentWorkerId())].ports[port];
  counters.rows_emitted += static_cast<int64_t>(batch.size());
  ++counters.batches_emitted;
  const auto& edges = out_edges_[port];
  if (edges.empty()) return Status::OK();
  // Fan-out consumers share the batch's storage; only the selection
  // vector is duplicated. The last (and in the common single-consumer
  // case, only) edge receives the moved batch. The whole fan-out runs on
  // the calling worker, so consumers see no extra concurrency from it.
  for (size_t i = 0; i + 1 < edges.size(); ++i) {
    BYPASS_RETURN_IF_ERROR(edges[i].consumer->Consume(
        edges[i].in_port,
        batch.ShareWithSelection(batch.selection())));
  }
  return edges.back().consumer->Consume(edges.back().in_port,
                                        std::move(batch));
}

Status PhysOp::FlushPending(int out_port, WorkerState* worker) {
  std::vector<Row>& pending =
      worker->ports[static_cast<size_t>(out_port)].pending;
  if (pending.empty()) return Status::OK();
  std::vector<Row> rows;
  rows.swap(pending);
  return EmitBatch(out_port, RowBatch::FromRows(std::move(rows)));
}

Status PhysOp::Emit(int out_port, RowBatch batch) {
  WorkerState& worker = workers_[static_cast<size_t>(CurrentWorkerId())];
  BYPASS_RETURN_IF_ERROR(FlushPending(out_port, &worker));
  return EmitBatch(out_port, std::move(batch));
}

Status PhysOp::EmitRow(int out_port, Row row) {
  WorkerState& worker = workers_[static_cast<size_t>(CurrentWorkerId())];
  std::vector<Row>& pending =
      worker.ports[static_cast<size_t>(out_port)].pending;
  // FlushPending swaps the buffer away, so after every flush the builder
  // restarts at capacity 0; reserve the full batch up front instead of
  // growing through the doubling sequence batch after batch.
  if (pending.empty()) pending.reserve(batch_size_);
  pending.push_back(std::move(row));
  if (pending.size() >= batch_size_) {
    return FlushPending(out_port, &worker);
  }
  return Status::OK();
}

Status PhysOp::EmitFinish(int out_port) {
  // Single-threaded by contract; drains every worker's leftover pending
  // rows (only the finishing thread's slot is non-empty in serial runs).
  for (WorkerState& w : workers_) {
    BYPASS_RETURN_IF_ERROR(FlushPending(out_port, &w));
  }
  for (const Edge& e : out_edges_[static_cast<size_t>(out_port)]) {
    BYPASS_RETURN_IF_ERROR(e.consumer->FinishPort(e.in_port));
  }
  return Status::OK();
}

Status UnaryPhysOp::FinishPort(int in_port) {
  BYPASS_CHECK(in_port == 0);
  for (int p = 0; p < num_out_ports(); ++p) {
    BYPASS_RETURN_IF_ERROR(EmitFinish(p));
  }
  return Status::OK();
}

Status BinaryPhysOp::Prepare(ExecContext* ctx) {
  BYPASS_RETURN_IF_ERROR(PhysOp::Prepare(ctx));
  buffers_.resize(static_cast<size_t>(ctx->num_worker_slots()));
  return Status::OK();
}

void BinaryPhysOp::Reset() {
  for (InputBuffers& b : buffers_) {
    b.right.clear();
    b.pending_left.clear();
    b.charged = 0;
    b.spill.reset();
  }
  right_rows_.clear();
  right_spilled_.store(false, std::memory_order_relaxed);
  right_done_ = false;
  left_done_ = false;
  finished_ = false;
}

Status BinaryPhysOp::SpillRightBuffer(InputBuffers* buffers) {
  if (buffers->right.empty()) return Status::OK();
  ExecStats* stats = ctx_->stats();
  if (buffers->spill == nullptr) {
    BYPASS_ASSIGN_OR_RETURN(buffers->spill,
                            ctx_->spill()->NewFile("build"));
    if (stats != nullptr) ++stats->spill_files;
  }
  const int64_t bytes_before = buffers->spill->bytes_written();
  for (const Row& row : buffers->right) {
    BYPASS_RETURN_IF_ERROR(buffers->spill->AppendRow(row));
  }
  if (stats != nullptr) {
    stats->spilled_rows += static_cast<int64_t>(buffers->right.size());
    stats->spilled_bytes +=
        buffers->spill->bytes_written() - bytes_before;
  }
  buffers->right.clear();
  ctx_->ReleaseMemory(buffers->charged);
  buffers->charged = 0;
  right_spilled_.store(true, std::memory_order_relaxed);
  return Status::OK();
}

Result<std::vector<std::unique_ptr<SpillFile>>>
BinaryPhysOp::TakeRightSpillFiles() {
  std::vector<std::unique_ptr<SpillFile>> files;
  for (InputBuffers& b : buffers_) {
    if (b.spill == nullptr) continue;
    BYPASS_RETURN_IF_ERROR(b.spill->FinishWrite());
    files.push_back(std::move(b.spill));
  }
  return files;
}

int64_t BinaryPhysOp::TakeRightCharges() {
  int64_t total = 0;
  for (InputBuffers& b : buffers_) {
    total += b.charged;
    b.charged = 0;
  }
  return total;
}

Status BinaryPhysOp::ProcessLeftBatch(RowBatch batch) {
  const size_t n = batch.size();
  for (size_t i = 0; i < n; ++i) {
    BYPASS_RETURN_IF_ERROR(ProcessLeft(batch.TakeRow(i)));
  }
  return Status::OK();
}

Status BinaryPhysOp::Consume(int in_port, RowBatch batch) {
  InputBuffers& buffers =
      buffers_[static_cast<size_t>(CurrentWorkerId())];
  if (in_port == kRight) {
    BYPASS_CHECK_MSG(!right_done_, "batch after right-side finish");
    // The build side is retained until the join finishes — the other
    // place a query's footprint scales with an input, so it pays into
    // the memory budget alongside the collector sink.
    const int64_t bytes = ApproxRowsBytes(
        batch.size(), batch.size() > 0 ? batch.row(0).size() : 0);
    if (CanSpillRight() && ctx_->spill() != nullptr &&
        ctx_->memory() != nullptr) {
      if (ctx_->TryChargeMemory(bytes)) {
        buffers.charged += bytes;
        batch.ConsumeRowsInto(&buffers.right);
      } else {
        // Over budget: take the batch uncharged and spill the worker's
        // whole buffer (batch included) to release its charges.
        batch.ConsumeRowsInto(&buffers.right);
        BYPASS_RETURN_IF_ERROR(SpillRightBuffer(&buffers));
      }
      return Status::OK();
    }
    BYPASS_RETURN_IF_ERROR(ctx_->ChargeMemory(bytes));
    batch.ConsumeRowsInto(&buffers.right);
    return Status::OK();
  }
  BYPASS_CHECK(in_port == kLeft);
  if (!right_done_) {
    // The executor could not schedule the right pipeline first (shared
    // DAG sources); fall back to buffering the left side.
    buffers.pending_left.push_back(std::move(batch));
    return Status::OK();
  }
  return ProcessLeftBatch(std::move(batch));
}

Status BinaryPhysOp::FinishPort(int in_port) {
  if (in_port == kRight) {
    right_done_ = true;
    // Merge the workers' thread-local buffers in worker order — with one
    // worker this is exactly the serial arrival order.
    for (InputBuffers& b : buffers_) {
      if (right_rows_.empty()) {
        right_rows_ = std::move(b.right);
      } else {
        right_rows_.insert(right_rows_.end(),
                           std::make_move_iterator(b.right.begin()),
                           std::make_move_iterator(b.right.end()));
      }
      b.right.clear();
    }
    BYPASS_RETURN_IF_ERROR(BuildFromRight());
    for (InputBuffers& b : buffers_) {
      std::vector<RowBatch> pending = std::move(b.pending_left);
      b.pending_left.clear();
      for (RowBatch& batch : pending) {
        BYPASS_RETURN_IF_ERROR(ProcessLeftBatch(std::move(batch)));
      }
    }
  } else {
    BYPASS_CHECK(in_port == kLeft);
    left_done_ = true;
  }
  return MaybeFinish();
}

Status BinaryPhysOp::MaybeFinish() {
  if (finished_ || !left_done_ || !right_done_) return Status::OK();
  finished_ = true;
  return FinishBoth();
}

}  // namespace bypass
