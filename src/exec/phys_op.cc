#include "exec/phys_op.h"

#include "common/check.h"

namespace bypass {

void PhysOp::AddConsumer(int out_port, PhysOp* consumer, int in_port) {
  BYPASS_CHECK(out_port >= 0 &&
               out_port < static_cast<int>(out_edges_.size()));
  out_edges_[static_cast<size_t>(out_port)].push_back(
      Edge{consumer, in_port});
}

Status PhysOp::Prepare(ExecContext* ctx) {
  ctx_ = ctx;
  batch_size_ = ctx->batch_size();
  emitted_.assign(out_edges_.size(), 0);
  batches_emitted_.assign(out_edges_.size(), 0);
  // Keep the pending builders' capacity: subplans re-Prepare once per
  // correlated re-execution, and reallocating here would churn.
  pending_.resize(out_edges_.size());
  for (std::vector<Row>& p : pending_) p.clear();
  return Status::OK();
}

Status PhysOp::EmitBatch(int out_port, RowBatch batch) {
  if (batch.empty()) return Status::OK();
  const size_t port = static_cast<size_t>(out_port);
  emitted_[port] += static_cast<int64_t>(batch.size());
  ++batches_emitted_[port];
  const auto& edges = out_edges_[port];
  if (edges.empty()) return Status::OK();
  // Fan-out consumers share the batch's storage; only the selection
  // vector is duplicated. The last (and in the common single-consumer
  // case, only) edge receives the moved batch.
  for (size_t i = 0; i + 1 < edges.size(); ++i) {
    BYPASS_RETURN_IF_ERROR(edges[i].consumer->Consume(
        edges[i].in_port,
        batch.ShareWithSelection(batch.selection())));
  }
  return edges.back().consumer->Consume(edges.back().in_port,
                                        std::move(batch));
}

Status PhysOp::FlushPending(int out_port) {
  std::vector<Row>& pending = pending_[static_cast<size_t>(out_port)];
  if (pending.empty()) return Status::OK();
  std::vector<Row> rows;
  rows.swap(pending);
  return EmitBatch(out_port, RowBatch::FromRows(std::move(rows)));
}

Status PhysOp::Emit(int out_port, RowBatch batch) {
  BYPASS_RETURN_IF_ERROR(FlushPending(out_port));
  return EmitBatch(out_port, std::move(batch));
}

Status PhysOp::EmitRow(int out_port, Row row) {
  std::vector<Row>& pending = pending_[static_cast<size_t>(out_port)];
  pending.push_back(std::move(row));
  if (pending.size() >= batch_size_) return FlushPending(out_port);
  return Status::OK();
}

Status PhysOp::EmitFinish(int out_port) {
  BYPASS_RETURN_IF_ERROR(FlushPending(out_port));
  for (const Edge& e : out_edges_[static_cast<size_t>(out_port)]) {
    BYPASS_RETURN_IF_ERROR(e.consumer->FinishPort(e.in_port));
  }
  return Status::OK();
}

Status UnaryPhysOp::FinishPort(int in_port) {
  BYPASS_CHECK(in_port == 0);
  for (int p = 0; p < num_out_ports(); ++p) {
    BYPASS_RETURN_IF_ERROR(EmitFinish(p));
  }
  return Status::OK();
}

Status BinaryPhysOp::Prepare(ExecContext* ctx) {
  BYPASS_RETURN_IF_ERROR(PhysOp::Prepare(ctx));
  return Status::OK();
}

void BinaryPhysOp::Reset() {
  right_rows_.clear();
  pending_left_.clear();
  right_done_ = false;
  left_done_ = false;
  finished_ = false;
}

Status BinaryPhysOp::ProcessLeftBatch(RowBatch batch) {
  const size_t n = batch.size();
  for (size_t i = 0; i < n; ++i) {
    BYPASS_RETURN_IF_ERROR(ProcessLeft(batch.TakeRow(i)));
  }
  return Status::OK();
}

Status BinaryPhysOp::Consume(int in_port, RowBatch batch) {
  if (in_port == kRight) {
    BYPASS_CHECK_MSG(!right_done_, "batch after right-side finish");
    batch.ConsumeRowsInto(&right_rows_);
    return Status::OK();
  }
  BYPASS_CHECK(in_port == kLeft);
  if (!right_done_) {
    // The executor could not schedule the right pipeline first (shared
    // DAG sources); fall back to buffering the left side.
    pending_left_.push_back(std::move(batch));
    return Status::OK();
  }
  return ProcessLeftBatch(std::move(batch));
}

Status BinaryPhysOp::FinishPort(int in_port) {
  if (in_port == kRight) {
    right_done_ = true;
    BYPASS_RETURN_IF_ERROR(BuildFromRight());
    std::vector<RowBatch> pending = std::move(pending_left_);
    pending_left_.clear();
    for (RowBatch& b : pending) {
      BYPASS_RETURN_IF_ERROR(ProcessLeftBatch(std::move(b)));
    }
  } else {
    BYPASS_CHECK(in_port == kLeft);
    left_done_ = true;
  }
  return MaybeFinish();
}

Status BinaryPhysOp::MaybeFinish() {
  if (finished_ || !left_done_ || !right_done_) return Status::OK();
  finished_ = true;
  return FinishBoth();
}

}  // namespace bypass
