// Semijoin ⋉ and antijoin ▷, hash and nested-loop variants. Targets of the
// quantified-subquery unnesting extension (EXISTS / NOT EXISTS / IN /
// NOT IN in disjunctions, cf. the paper's technical report).
#ifndef BYPASSDB_EXEC_SEMI_JOIN_H_
#define BYPASSDB_EXEC_SEMI_JOIN_H_

#include <string>
#include <vector>

#include "exec/join.h"
#include "exec/phys_op.h"
#include "expr/expr.h"

namespace bypass {

/// Equi semi/anti join: emits left rows with (semi) or without (anti) a
/// matching right row. Match = key equality is *true* (NULL keys never
/// match).
class HashExistenceJoinOp : public BinaryPhysOp {
 public:
  HashExistenceJoinOp(bool anti, std::vector<int> left_key_slots,
                      std::vector<int> right_key_slots)
      : anti_(anti),
        left_key_slots_(std::move(left_key_slots)),
        right_key_slots_(std::move(right_key_slots)) {}

  Status Prepare(ExecContext* ctx) override;
  void Reset() override;
  std::string Label() const override {
    return anti_ ? "HashAntiJoin" : "HashSemiJoin";
  }

 protected:
  Status BuildFromRight() override;
  Status ProcessLeft(Row row) override;
  Status ProcessLeftBatch(RowBatch batch) override;
  Status FinishBoth() override { return EmitFinish(kPortOut); }

 private:
  bool Matches(const Row& row) const;

  bool anti_;
  std::vector<int> left_key_slots_;
  std::vector<int> right_key_slots_;
  JoinHashTable table_;
  std::vector<JoinProbeScratch> scratch_;  // per worker
};

/// Nested-loop semi/anti join for arbitrary predicates.
class NLExistenceJoinOp : public BinaryPhysOp {
 public:
  NLExistenceJoinOp(bool anti, ExprPtr predicate)
      : anti_(anti), predicate_(std::move(predicate)) {}

  std::string Label() const override {
    return std::string(anti_ ? "NLAntiJoin " : "NLSemiJoin ") +
           predicate_->ToString();
  }

 protected:
  Status ProcessLeft(Row row) override;
  Status ProcessLeftBatch(RowBatch batch) override;
  Status FinishBoth() override { return EmitFinish(kPortOut); }

 private:
  Result<bool> Matches(const Row& row) const;

  bool anti_;
  ExprPtr predicate_;
};

}  // namespace bypass

#endif  // BYPASSDB_EXEC_SEMI_JOIN_H_
