// ExecSubplan: executable nested query block. Re-runs its physical plan
// per outer tuple (the canonical nested-loop evaluation) with optional
// memoization keyed on the block's free attributes — the strategy our
// benchmark suite labels "canonical-memo".
//
// Thread safety: a subplan's private plan and memo caches are shared
// mutable state, so Eval* calls arriving from concurrent workers are
// serialized by a per-subplan mutex. The subplan itself always runs
// serially on the evaluating worker's thread (its context has no pool);
// its operators still size their per-worker slots to the parent query's
// worker count because the evaluating worker indexes them by its own id.
#ifndef BYPASSDB_EXEC_SUBPLAN_IMPL_H_
#define BYPASSDB_EXEC_SUBPLAN_IMPL_H_

#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "exec/executor.h"
#include "expr/subplan.h"

namespace bypass {

class ExecSubplan : public CorrelatedSubplan {
 public:
  /// `free_outer_slots`: outer-row slots the block actually reads; empty
  /// means the block is uncorrelated (Kim type A/N) and its result is
  /// cached after the first execution regardless of the memoize flag.
  ExecSubplan(PhysicalPlan plan, std::vector<int> free_outer_slots,
              bool memoize);

  Result<Value> EvalScalar(const Row* outer_row) override;
  Result<bool> EvalExists(const Row* outer_row) override;
  Result<TriBool> EvalIn(const Value& probe,
                         const Row* outer_row) override;

  int64_t num_executions() const override { return num_executions_; }

  /// Propagates the query's deadline, stats sinks, batch size, and
  /// worker-slot count into this block's private execution context
  /// (called by the engine before running). `worker_stats` may be null;
  /// `num_worker_slots` must cover every worker id that can evaluate
  /// expressions referencing this subplan.
  void Configure(std::optional<std::chrono::steady_clock::time_point>
                     deadline,
                 ExecStats* stats, size_t batch_size,
                 SharedWorkerStats worker_stats = nullptr,
                 int num_worker_slots = 1);

  /// Drops memoized results (between benchmark repetitions).
  void ClearCache();

  PhysicalPlan* plan() { return &plan_; }

 private:
  /// Runs the plan for `outer_row` and leaves the rows in the sink.
  /// Caller must hold mu_.
  Status Execute(const Row* outer_row);

  Row MemoKey(const Row* outer_row) const;

  PhysicalPlan plan_;
  std::vector<int> free_outer_slots_;
  bool memoize_;
  ExecContext ctx_;
  int64_t num_executions_ = 0;

  /// Serializes concurrent Eval* calls (plan state + caches).
  std::mutex mu_;
  std::unordered_map<Row, Value, RowHash, RowEq> scalar_cache_;
  std::unordered_map<Row, bool, RowHash, RowEq> exists_cache_;
  std::unordered_map<Row, TriBool, RowHash, RowEq> in_cache_;
};

}  // namespace bypass

#endif  // BYPASSDB_EXEC_SUBPLAN_IMPL_H_
