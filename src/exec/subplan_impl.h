// ExecSubplan: executable nested query block. Re-runs its physical plan
// per outer tuple (the canonical nested-loop evaluation) with optional
// memoization keyed on the block's free attributes — the strategy our
// benchmark suite labels "canonical-memo".
//
// Thread safety: plan execution is shared mutable state (the subplan's
// operators and sink), so it is serialized by a per-subplan exec mutex.
// The memo caches, however, are sharded into kNumStripes stripes each
// guarded by its own mutex, so concurrent workers whose keys land in
// different stripes resolve cache *hits* without contending on a single
// lock. Cache misses take the exec mutex, re-check the stripe (another
// worker may have computed the entry while this one waited), execute,
// and publish the result. Lock order is exec → stripe; a stripe lock is
// never held while acquiring the exec lock.
#ifndef BYPASSDB_EXEC_SUBPLAN_IMPL_H_
#define BYPASSDB_EXEC_SUBPLAN_IMPL_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "common/flat_table.h"
#include "exec/executor.h"
#include "expr/subplan.h"

namespace bypass {

class ExecSubplan : public CorrelatedSubplan {
 public:
  /// `free_outer_slots`: outer-row slots the block actually reads; empty
  /// means the block is uncorrelated (Kim type A/N) and its result is
  /// cached after the first execution regardless of the memoize flag.
  ExecSubplan(PhysicalPlan plan, std::vector<int> free_outer_slots,
              bool memoize);

  Result<Value> EvalScalar(const Row* outer_row) override;
  Result<bool> EvalExists(const Row* outer_row) override;
  Result<TriBool> EvalIn(const Value& probe,
                         const Row* outer_row) override;

  int64_t num_executions() const override {
    return num_executions_.load(std::memory_order_relaxed);
  }

  /// Propagates the query's deadline, stats sinks, batch size,
  /// worker-slot count, the columnar toggle, the shared memory budget,
  /// the shared spill manager, and the segment-storage toggles into this
  /// block's private execution context (called by the engine before
  /// running). `worker_stats`, `memory`, and `spill` may be null;
  /// `num_worker_slots` must cover every worker id that can evaluate
  /// expressions referencing this subplan.
  void Configure(std::optional<std::chrono::steady_clock::time_point>
                     deadline,
                 ExecStats* stats, size_t batch_size,
                 SharedWorkerStats worker_stats = nullptr,
                 int num_worker_slots = 1, bool enable_columnar = true,
                 SharedMemoryBudget memory = nullptr,
                 std::shared_ptr<SpillManager> spill = nullptr,
                 bool enable_zone_maps = true,
                 bool scan_from_segments = false);

  /// Drops memoized results (between benchmark repetitions).
  void ClearCache();

  PhysicalPlan* plan() { return &plan_; }

 private:
  static constexpr size_t kNumStripes = 8;  // power of two

  /// One shard of the memo caches, padded onto its own cache line so
  /// stripe locks taken by different workers never false-share.
  struct alignas(64) CacheStripe {
    std::mutex mu;
    FlatRowMap<Value> scalar;
    FlatRowMap<bool> exists;
    FlatRowMap<TriBool> in;
  };

  /// Runs the plan for `outer_row` and leaves the rows in the sink.
  /// Caller must hold exec_mu_.
  Status Execute(const Row* outer_row);

  Row MemoKey(const Row* outer_row) const;
  /// True when this call should consult/fill the memo caches.
  bool UseCache() const { return memoize_ || free_outer_slots_.empty(); }
  /// True when the memo key is non-trivial (transparent probes apply).
  bool HasKeySlots(const Row* outer_row) const {
    return outer_row != nullptr && !free_outer_slots_.empty();
  }
  /// Stripe owning the memo key of `outer_row` (+ optional IN probe).
  CacheStripe& StripeFor(const Row* outer_row, const Value* probe);
  /// Looks up `cache` under the caller-held stripe lock via a transparent
  /// probe (no key materialization on the hit path).
  template <typename V>
  const V* Lookup(const FlatRowMap<V>& cache, const Row* outer_row) const;

  PhysicalPlan plan_;
  std::vector<int> free_outer_slots_;
  bool memoize_;
  ExecContext ctx_;
  std::atomic<int64_t> num_executions_{0};

  /// Serializes plan execution (operators + sink are shared state).
  std::mutex exec_mu_;
  CacheStripe stripes_[kNumStripes];
};

}  // namespace bypass

#endif  // BYPASSDB_EXEC_SUBPLAN_IMPL_H_
