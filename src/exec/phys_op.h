// Physical operator base. Execution is push-based and batch-at-a-time:
// producers call Consume(port, batch) on their consumers and
// FinishPort(port) at end-of-stream. Push style makes the paper's
// DAG-structured bypass plans natural — a bypass operator simply emits on
// two output ports, and the re-uniting union consumes on two input ports.
// Batches carry a selection vector over shared row storage, so selections
// and bypass splits are zero-copy (see types/row_batch.h).
//
// Threading contract (morsel-driven parallelism, DESIGN.md §5): during a
// source's parallel phase, Consume may be called concurrently by several
// workers, each identified by CurrentWorkerId(). The base class keeps all
// its mutable state — pending output rows and emitted-row accounting —
// in per-worker slots, so Emit/EmitRow are safe without locks. FinishPort
// and EmitFinish run single-threaded (on the driver, after the pool
// joined the phase): that is where pipeline breakers merge their
// thread-local partials. A query with num_threads=1 never leaves worker
// slot 0 and reproduces serial execution exactly.
#ifndef BYPASSDB_EXEC_PHYS_OP_H_
#define BYPASSDB_EXEC_PHYS_OP_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "exec/exec_context.h"
#include "storage/spill.h"
#include "types/row.h"
#include "types/row_batch.h"

namespace bypass {

/// Output port indices: 0 = (positive) output, 1 = bypass negative stream.
inline constexpr int kPortOut = 0;
inline constexpr int kPortNegative = 1;

class PhysOp {
 public:
  PhysOp() : num_out_ports_(1), out_edges_(1), est_rows_(1, -1.0) {}
  virtual ~PhysOp() = default;
  PhysOp(const PhysOp&) = delete;
  PhysOp& operator=(const PhysOp&) = delete;

  /// Wires `out_port` of this operator into `in_port` of `consumer`.
  void AddConsumer(int out_port, PhysOp* consumer, int in_port);

  /// Called once per execution before any row flows; implementations must
  /// call the base method. Re-invoked (after Reset) for subplan re-runs.
  virtual Status Prepare(ExecContext* ctx);

  /// Clears all accumulated state so the operator can run again.
  virtual void Reset() {}

  /// Receives one non-empty batch on `in_port`. May be called
  /// concurrently (distinct workers) during a parallel scan phase.
  virtual Status Consume(int in_port, RowBatch batch) = 0;

  /// Signals end-of-stream on `in_port`. Always single-threaded: the
  /// driver propagates finishes only after all workers joined the phase.
  virtual Status FinishPort(int in_port) = 0;

  virtual std::string Label() const = 0;

  int num_out_ports() const { return num_out_ports_; }

  /// Consumers wired into `out_port` so far. The planner's zone-map
  /// pass uses this to prove a scan feeds exactly one filter.
  size_t num_consumers(int out_port) const {
    return out_edges_[static_cast<size_t>(out_port)].size();
  }

  /// Rows / batches emitted on `out_port` during the last execution
  /// (EXPLAIN ANALYZE-style accounting; reset by Prepare). Aggregates the
  /// per-worker counters; read after the run.
  int64_t rows_emitted(int out_port) const;
  int64_t batches_emitted(int out_port) const;

  /// Planner-annotated expected cardinality of `out_port`; negative when
  /// the planner attached no estimate. Compared against rows_emitted
  /// after a run for per-operator q-error reporting and cardinality
  /// feedback.
  double estimated_rows(int out_port) const {
    return est_rows_[static_cast<size_t>(out_port)];
  }
  void set_estimated_rows(int out_port, double rows) {
    est_rows_[static_cast<size_t>(out_port)] = rows;
  }

 protected:
  explicit PhysOp(int num_out_ports)
      : num_out_ports_(num_out_ports),
        out_edges_(static_cast<size_t>(num_out_ports)),
        est_rows_(static_cast<size_t>(num_out_ports), -1.0) {}

  /// Forwards a batch to all consumers of `out_port`. Empty batches are
  /// dropped — consumers never see them. The last consumer receives the
  /// moved batch; earlier consumers get shared-storage views (cheap: a
  /// shared_ptr plus a selection-vector copy, never a row copy). Any rows
  /// pending from EmitRow on this worker are flushed first to preserve
  /// per-worker arrival order.
  Status Emit(int out_port, RowBatch batch);

  /// Appends one produced row to the calling worker's pending output
  /// batch of `out_port`, forwarding it once batch_size rows accumulated.
  /// Used by operators that materialize new rows (joins, group-by, sort
  /// replay).
  Status EmitRow(int out_port, Row row);

  /// Forwards end-of-stream on `out_port`, flushing every worker's
  /// pending rows first (in worker order). Single-threaded.
  Status EmitFinish(int out_port);

  /// The execution's configured rows-per-batch.
  size_t batch_size() const { return batch_size_; }

  /// Number of per-worker state slots (ExecContext::num_worker_slots at
  /// Prepare time). Subclasses size their own thread-local state by this.
  int num_worker_slots() const {
    return static_cast<int>(workers_.size());
  }

  ExecContext* ctx_ = nullptr;

 private:
  struct Edge {
    PhysOp* consumer;
    int in_port;
  };
  struct PortState {
    std::vector<Row> pending;
    int64_t rows_emitted = 0;
    int64_t batches_emitted = 0;
  };
  /// Cache-line padded so two workers' emit counters never false-share.
  struct alignas(64) WorkerState {
    std::vector<PortState> ports;
  };

  /// Emit without flushing pending rows (internal fast path).
  Status EmitBatch(int out_port, RowBatch batch);
  Status FlushPending(int out_port, WorkerState* worker);

  const int num_out_ports_;
  std::vector<std::vector<Edge>> out_edges_;
  std::vector<double> est_rows_;
  std::vector<WorkerState> workers_;
  size_t batch_size_ = kDefaultBatchSize;
};

using PhysOpPtr = std::unique_ptr<PhysOp>;

/// Base for unary streaming operators (single input port).
class UnaryPhysOp : public PhysOp {
 public:
  UnaryPhysOp() = default;
  explicit UnaryPhysOp(int num_out_ports) : PhysOp(num_out_ports) {}

  Status FinishPort(int in_port) override;
};

/// Base for binary operators that logically build from the right input and
/// stream the left one. Buffering rules make execution correct regardless
/// of the order source pipelines run in: right rows are always buffered;
/// left batches are buffered only while the right input is still open,
/// then replayed. Buffers are thread-local per worker and merged (in
/// worker order) when the corresponding port finishes.
class BinaryPhysOp : public PhysOp {
 public:
  BinaryPhysOp() = default;
  explicit BinaryPhysOp(int num_out_ports) : PhysOp(num_out_ports) {}

  static constexpr int kLeft = 0;
  static constexpr int kRight = 1;

  Status Prepare(ExecContext* ctx) override;
  void Reset() override;
  Status Consume(int in_port, RowBatch batch) final;
  Status FinishPort(int in_port) final;

 protected:
  /// Called once when the right input finished, before any left row is
  /// processed; `right_rows()` is complete at this point. Single-threaded
  /// (finish phase); implementations may parallelize internally via
  /// ctx_->pool().
  virtual Status BuildFromRight() { return Status::OK(); }

  /// Called for each left row after the right side is built. Outputs go
  /// through EmitRow so they re-batch on the way out. Concurrent across
  /// workers; implementations must only read shared build state.
  virtual Status ProcessLeft(Row row) = 0;

  /// Batch-level hook; the default unpacks the batch into ProcessLeft
  /// calls (moving rows out when the batch owns them exclusively).
  virtual Status ProcessLeftBatch(RowBatch batch);

  /// Called when both inputs have finished and all left rows were
  /// processed; must EmitFinish on every output port.
  virtual Status FinishBoth() = 0;

  /// The merged right input; complete once BuildFromRight runs.
  const std::vector<Row>& right_rows() const { return right_rows_; }

  /// Opt-in for budget-driven spilling of the buffered right side: when
  /// true and the context carries both a memory budget and a spill
  /// manager, a failed charge writes the worker's buffered right rows to
  /// a temp file instead of failing the query. The subclass must then
  /// handle right_spilled() in BuildFromRight (the Grace hash join
  /// does); operators without an external algorithm keep the default and
  /// the exact pre-spill ResourceExhausted behavior.
  virtual bool CanSpillRight() const { return false; }

  /// True once any worker spilled right rows this execution. Stable by
  /// the (single-threaded) finish phase where it is consulted.
  bool right_spilled() const {
    return right_spilled_.load(std::memory_order_relaxed);
  }

  /// Hands the per-worker right-side spill files to the subclass (worker
  /// order, nulls omitted); files are finished for writing.
  Result<std::vector<std::unique_ptr<SpillFile>>> TakeRightSpillFiles();

  /// Moves the merged in-memory right rows out (grace repartitioning
  /// consumes them); right_rows() is empty afterwards.
  std::vector<Row> TakeRightRows() { return std::move(right_rows_); }

  /// Total bytes still charged for buffered right rows, zeroed — the
  /// caller pairs it with ExecContext::ReleaseMemory after spilling.
  int64_t TakeRightCharges();

 private:
  /// Per-worker input buffers, padded against false sharing.
  struct alignas(64) InputBuffers {
    std::vector<Row> right;
    std::vector<RowBatch> pending_left;
    int64_t charged = 0;                ///< bytes charged for `right`
    std::unique_ptr<SpillFile> spill;   ///< spilled right rows, if any
  };

  Status SpillRightBuffer(InputBuffers* buffers);

  std::vector<InputBuffers> buffers_;
  std::vector<Row> right_rows_;  // merged at right finish
  std::atomic<bool> right_spilled_{false};
  bool right_done_ = false;
  bool left_done_ = false;
  bool finished_ = false;

  Status MaybeFinish();
};

}  // namespace bypass

#endif  // BYPASSDB_EXEC_PHYS_OP_H_
