// Physical operator base. Execution is push-based and batch-at-a-time:
// producers call Consume(port, batch) on their consumers and
// FinishPort(port) at end-of-stream. Push style makes the paper's
// DAG-structured bypass plans natural — a bypass operator simply emits on
// two output ports, and the re-uniting union consumes on two input ports.
// Batches carry a selection vector over shared row storage, so selections
// and bypass splits are zero-copy (see types/row_batch.h).
#ifndef BYPASSDB_EXEC_PHYS_OP_H_
#define BYPASSDB_EXEC_PHYS_OP_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "exec/exec_context.h"
#include "types/row.h"
#include "types/row_batch.h"

namespace bypass {

/// Output port indices: 0 = (positive) output, 1 = bypass negative stream.
inline constexpr int kPortOut = 0;
inline constexpr int kPortNegative = 1;

class PhysOp {
 public:
  PhysOp() : out_edges_(1) {}
  virtual ~PhysOp() = default;
  PhysOp(const PhysOp&) = delete;
  PhysOp& operator=(const PhysOp&) = delete;

  /// Wires `out_port` of this operator into `in_port` of `consumer`.
  void AddConsumer(int out_port, PhysOp* consumer, int in_port);

  /// Called once per execution before any row flows; implementations must
  /// call the base method. Re-invoked (after Reset) for subplan re-runs.
  virtual Status Prepare(ExecContext* ctx);

  /// Clears all accumulated state so the operator can run again.
  virtual void Reset() {}

  /// Receives one non-empty batch on `in_port`.
  virtual Status Consume(int in_port, RowBatch batch) = 0;

  /// Signals end-of-stream on `in_port`.
  virtual Status FinishPort(int in_port) = 0;

  virtual std::string Label() const = 0;

  int num_out_ports() const { return static_cast<int>(out_edges_.size()); }

  /// Rows / batches emitted on `out_port` during the last execution
  /// (EXPLAIN ANALYZE-style accounting; reset by Prepare).
  int64_t rows_emitted(int out_port) const {
    const size_t port = static_cast<size_t>(out_port);
    return port < emitted_.size() ? emitted_[port] : 0;
  }
  int64_t batches_emitted(int out_port) const {
    const size_t port = static_cast<size_t>(out_port);
    return port < batches_emitted_.size() ? batches_emitted_[port] : 0;
  }

 protected:
  explicit PhysOp(int num_out_ports) : out_edges_(num_out_ports) {}

  /// Forwards a batch to all consumers of `out_port`. Empty batches are
  /// dropped — consumers never see them. The last consumer receives the
  /// moved batch; earlier consumers get shared-storage views (cheap: a
  /// shared_ptr plus a selection-vector copy, never a row copy). Any rows
  /// pending from EmitRow are flushed first to preserve arrival order.
  Status Emit(int out_port, RowBatch batch);

  /// Appends one produced row to the pending output batch of `out_port`,
  /// forwarding it once batch_size rows accumulated. Used by operators
  /// that materialize new rows (joins, group-by, sort replay).
  Status EmitRow(int out_port, Row row);

  /// Forwards end-of-stream on `out_port` (flushing pending rows first).
  Status EmitFinish(int out_port);

  /// The execution's configured rows-per-batch.
  size_t batch_size() const { return batch_size_; }

  ExecContext* ctx_ = nullptr;

 private:
  struct Edge {
    PhysOp* consumer;
    int in_port;
  };

  /// Emit without flushing pending rows (internal fast path).
  Status EmitBatch(int out_port, RowBatch batch);
  Status FlushPending(int out_port);

  std::vector<std::vector<Edge>> out_edges_;
  std::vector<std::vector<Row>> pending_;
  std::vector<int64_t> emitted_;
  std::vector<int64_t> batches_emitted_;
  size_t batch_size_ = kDefaultBatchSize;
};

using PhysOpPtr = std::unique_ptr<PhysOp>;

/// Base for unary streaming operators (single input port).
class UnaryPhysOp : public PhysOp {
 public:
  UnaryPhysOp() = default;
  explicit UnaryPhysOp(int num_out_ports) : PhysOp(num_out_ports) {}

  Status FinishPort(int in_port) override;
};

/// Base for binary operators that logically build from the right input and
/// stream the left one. Buffering rules make execution correct regardless
/// of the order source pipelines run in: right rows are always buffered;
/// left batches are buffered only while the right input is still open,
/// then replayed.
class BinaryPhysOp : public PhysOp {
 public:
  BinaryPhysOp() = default;
  explicit BinaryPhysOp(int num_out_ports) : PhysOp(num_out_ports) {}

  static constexpr int kLeft = 0;
  static constexpr int kRight = 1;

  Status Prepare(ExecContext* ctx) override;
  void Reset() override;
  Status Consume(int in_port, RowBatch batch) final;
  Status FinishPort(int in_port) final;

 protected:
  /// Called once when the right input finished, before any left row is
  /// processed; `right_rows()` is complete at this point.
  virtual Status BuildFromRight() { return Status::OK(); }

  /// Called for each left row after the right side is built. Outputs go
  /// through EmitRow so they re-batch on the way out.
  virtual Status ProcessLeft(Row row) = 0;

  /// Batch-level hook; the default unpacks the batch into ProcessLeft
  /// calls (moving rows out when the batch owns them exclusively).
  virtual Status ProcessLeftBatch(RowBatch batch);

  /// Called when both inputs have finished and all left rows were
  /// processed; must EmitFinish on every output port.
  virtual Status FinishBoth() = 0;

  const std::vector<Row>& right_rows() const { return right_rows_; }

 private:
  std::vector<Row> right_rows_;
  std::vector<RowBatch> pending_left_;
  bool right_done_ = false;
  bool left_done_ = false;
  bool finished_ = false;

  Status MaybeFinish();
};

}  // namespace bypass

#endif  // BYPASSDB_EXEC_PHYS_OP_H_
