#include "exec/executor.h"

#include <sstream>

namespace bypass {

Status RunPlan(PhysicalPlan* plan, ExecContext* ctx) {
  for (const PhysOpPtr& op : plan->ops) {
    op->Reset();
  }
  for (const PhysOpPtr& op : plan->ops) {
    BYPASS_RETURN_IF_ERROR(op->Prepare(ctx));
  }
  for (TableScanOp* source : plan->sources) {
    BYPASS_RETURN_IF_ERROR(source->Run());
  }
  return Status::OK();
}

std::string PhysicalPlan::StatsString() const {
  std::ostringstream os;
  os << "operator rows (last execution):\n";
  for (const PhysOpPtr& op : ops) {
    os << "  " << op->Label() << ": " << op->rows_emitted(0);
    int64_t batches = op->batches_emitted(0);
    if (op->num_out_ports() > 1) {
      os << " [+], " << op->rows_emitted(1) << " [-]";
      batches += op->batches_emitted(1);
    }
    os << " rows (" << batches << " batches)\n";
  }
  return os.str();
}

std::string PhysicalPlan::ToString() const {
  std::ostringstream os;
  os << "physical plan (" << ops.size() << " operators):\n";
  for (const PhysOpPtr& op : ops) {
    os << "  " << op->Label() << "\n";
  }
  os << "source order:";
  for (const TableScanOp* s : sources) {
    os << " " << s->Label();
  }
  os << "\n";
  return os.str();
}

}  // namespace bypass
