#include "exec/executor.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "stats/feedback.h"

namespace bypass {

namespace {

/// Drives one source: serially when no (multi-worker) pool is attached,
/// otherwise by splitting the table into fixed-size morsels claimed
/// dynamically by the pool's workers. The finish is always propagated by
/// the driver thread after the workers joined, so pipeline breakers merge
/// their thread-local partials single-threaded.
Status DriveSource(TableScanOp* source, ExecContext* ctx) {
  WorkerPool* pool = ctx->pool();
  if (pool == nullptr || pool->num_workers() <= 1) {
    return source->Run();
  }
  const size_t num_rows = source->num_rows();
  const size_t morsel = ctx->morsel_size();
  const size_t num_morsels = (num_rows + morsel - 1) / morsel;
  BYPASS_RETURN_IF_ERROR(pool->ParallelFor(
      num_morsels,
      [&](size_t m) {
        const size_t begin = m * morsel;
        return source->RunMorsel(begin,
                                 std::min(begin + morsel, num_rows));
      },
      ctx->task_group_options()));
  return source->FinishSource();
}

}  // namespace

Status RunPlan(PhysicalPlan* plan, ExecContext* ctx) {
  for (const PhysOpPtr& op : plan->ops) {
    op->Reset();
  }
  for (const PhysOpPtr& op : plan->ops) {
    BYPASS_RETURN_IF_ERROR(op->Prepare(ctx));
  }
  for (TableScanOp* source : plan->sources) {
    BYPASS_RETURN_IF_ERROR(DriveSource(source, ctx));
  }
  return Status::OK();
}

std::string PhysicalPlan::StatsString() const {
  std::ostringstream os;
  os << "operator rows (last execution):\n";
  for (const PhysOpPtr& op : ops) {
    os << "  " << op->Label() << ": " << op->rows_emitted(0);
    int64_t batches = op->batches_emitted(0);
    if (op->num_out_ports() > 1) {
      os << " [+], " << op->rows_emitted(1) << " [-]";
      batches += op->batches_emitted(1);
    }
    os << " rows (" << batches << " batches)";
    if (op->estimated_rows(0) >= 0) {
      os << " | est " << std::fixed << std::setprecision(0)
         << op->estimated_rows(0);
      if (op->num_out_ports() > 1 && op->estimated_rows(1) >= 0) {
        os << " [+], " << op->estimated_rows(1) << " [-]";
      }
      os << ", q-error " << std::setprecision(2)
         << QError(op->estimated_rows(0),
                   static_cast<double>(op->rows_emitted(0)))
         << std::defaultfloat;
    }
    os << "\n";
  }
  return os.str();
}

std::string PhysicalPlan::ToString() const {
  std::ostringstream os;
  os << "physical plan (" << ops.size() << " operators):\n";
  for (const PhysOpPtr& op : ops) {
    os << "  " << op->Label() << "\n";
  }
  os << "source order:";
  for (const TableScanOp* s : sources) {
    os << " " << s->Label();
  }
  os << "\n";
  return os.str();
}

}  // namespace bypass
