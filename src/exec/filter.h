// Selection σ_p and bypass selection σ±_p. The bypass variant routes
// tuples failing (or unknown on) the predicate to the negative port
// instead of dropping them — the short-circuit machinery of the paper's
// disjunctive unnesting.
#ifndef BYPASSDB_EXEC_FILTER_H_
#define BYPASSDB_EXEC_FILTER_H_

#include <string>

#include "exec/phys_op.h"
#include "expr/expr.h"

namespace bypass {

class FilterOp : public UnaryPhysOp {
 public:
  explicit FilterOp(ExprPtr predicate)
      : predicate_(std::move(predicate)) {}

  Status Consume(int in_port, Row row) override;
  std::string Label() const override {
    return "Filter " + predicate_->ToString();
  }

 private:
  ExprPtr predicate_;
};

class BypassFilterOp : public UnaryPhysOp {
 public:
  explicit BypassFilterOp(ExprPtr predicate)
      : UnaryPhysOp(/*num_out_ports=*/2),
        predicate_(std::move(predicate)) {}

  Status Consume(int in_port, Row row) override;
  std::string Label() const override {
    return "BypassFilter± " + predicate_->ToString();
  }

 private:
  ExprPtr predicate_;
};

}  // namespace bypass

#endif  // BYPASSDB_EXEC_FILTER_H_
