// Selection σ_p and bypass selection σ±_p. The bypass variant routes
// tuples failing (or unknown on) the predicate to the negative port
// instead of dropping them — the short-circuit machinery of the paper's
// disjunctive unnesting. Both evaluate the predicate once per batch and
// partition the selection vector; the rows themselves never move. The
// split is a pure partition of the worker's own selection vector, so
// concurrent morsel workers need no synchronization (scratch vectors are
// per worker).
#ifndef BYPASSDB_EXEC_FILTER_H_
#define BYPASSDB_EXEC_FILTER_H_

#include <string>
#include <vector>

#include "exec/phys_op.h"
#include "expr/expr.h"

namespace bypass {

class FilterOp : public UnaryPhysOp {
 public:
  explicit FilterOp(ExprPtr predicate)
      : predicate_(std::move(predicate)) {}

  Status Prepare(ExecContext* ctx) override;
  Status Consume(int in_port, RowBatch batch) override;
  std::string Label() const override {
    return "Filter " + predicate_->ToString();
  }

 private:
  struct alignas(64) Scratch {
    std::vector<uint32_t> sel_true;
  };

  ExprPtr predicate_;
  std::vector<Scratch> scratch_;  // per-worker per-batch scratch
};

class BypassFilterOp : public UnaryPhysOp {
 public:
  explicit BypassFilterOp(ExprPtr predicate)
      : UnaryPhysOp(/*num_out_ports=*/2),
        predicate_(std::move(predicate)) {}

  Status Prepare(ExecContext* ctx) override;
  Status Consume(int in_port, RowBatch batch) override;
  std::string Label() const override {
    return "BypassFilter± " + predicate_->ToString();
  }

 private:
  struct alignas(64) Scratch {
    std::vector<uint32_t> sel_true;
    std::vector<uint32_t> sel_other;
  };

  ExprPtr predicate_;
  std::vector<Scratch> scratch_;  // per-worker per-batch scratch
};

}  // namespace bypass

#endif  // BYPASSDB_EXEC_FILTER_H_
