// Inner joins: hash join for equi-predicates, nested-loop join for
// arbitrary predicates, and the bypass nested-loop join ⋈± whose negative
// stream carries the pairs failing the predicate (Eqv. 5).
#ifndef BYPASSDB_EXEC_JOIN_H_
#define BYPASSDB_EXEC_JOIN_H_

#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/flat_table.h"
#include "exec/phys_op.h"
#include "exec/worker_pool.h"
#include "expr/expr.h"
#include "storage/spill.h"

namespace bypass {

/// One probe's matching build-row indices: a view into the table's
/// payload array, ascending, empty on miss / NULL key.
struct JoinMatches {
  const uint32_t* data = nullptr;
  uint32_t count = 0;

  bool empty() const { return count == 0; }
  const uint32_t* begin() const { return data; }
  const uint32_t* end() const { return data + count; }
};

/// Per-worker scratch for JoinHashTable::ProbeBatch: the batch's hashes
/// computed in one pass, then resolved with software prefetching.
struct JoinProbeScratch {
  std::vector<uint64_t> hashes;
  std::vector<int64_t> int64_keys;
  std::vector<uint8_t> valid;      // 0 = NULL / non-matchable probe key
  std::vector<JoinMatches> matches;  // aligned with the batch's rows
};

/// Flat open-addressing index from build-side key values to build-row
/// indices; SQL semantics: rows with any NULL key never participate.
///
/// Layout: a power-of-two slot array of {cached hash, key id} probed
/// linearly; per key an (offset, count) range into one contiguous payload
/// array of ascending row indices. Keys are never materialized — equality
/// compares against a representative build row (or, on the single-column
/// int64 fast path, against a cached raw int64 per key).
class JoinHashTable {
 public:
  void Clear();

  /// Indexes `rows` by the values at `key_slots` (NULL-keyed rows are
  /// skipped). `rows` and `key_slots` must outlive the table. With a
  /// non-null `pool` and enough rows the hashing pass runs over
  /// contiguous row ranges in parallel; the insert/fill passes are serial
  /// over ascending row indices, so each key's index list is ascending —
  /// byte-identical to the serial build.
  void Build(const std::vector<Row>& rows,
             const std::vector<int>& key_slots,
             WorkerPool* pool = nullptr);

  /// Matching build-row indices for the probe key taken from `row` at
  /// `probe_slots`; empty when the key has NULLs. Allocation-free: the
  /// probe key is hashed in place, never materialized.
  JoinMatches Probe(const Row& row,
                    const std::vector<int>& probe_slots) const;

  /// Probes every selected row of `batch` in two passes: hash all keys
  /// into `scratch`, then resolve with the slot line for row i+d
  /// prefetched while row i resolves. `scratch->matches` ends up aligned
  /// with the batch's selected rows. Safe to call concurrently from
  /// multiple workers with distinct scratches.
  void ProbeBatch(const RowBatch& batch,
                  const std::vector<int>& probe_slots,
                  JoinProbeScratch* scratch) const;

  size_t num_keys() const { return key_repr_.size(); }

  /// Bytes retained by the index itself — slot array, per-key metadata,
  /// payload, and build scratch — excluding the build rows (their owner
  /// charges them separately). Feeds the memory budget.
  int64_t RetainedBytes() const;

 private:
  struct Slot {
    uint64_t hash;
    uint32_t key_id;
  };
  static constexpr uint32_t kEmpty = 0xffffffffu;
  static constexpr uint32_t kSkip = 0xffffffffu;

  /// Hashing pass over [begin, end): fills hashes_/row_key_ skip marks
  /// (and int64_keys_ in int64 mode). Returns false when a non-null key
  /// incompatible with the int64 fast path was seen.
  bool HashRange(const std::vector<Row>& rows,
                 const std::vector<int>& key_slots, size_t begin,
                 size_t end, bool use_int64);

  JoinMatches MatchesOf(uint32_t key_id) const {
    return JoinMatches{payload_.data() + offsets_[key_id],
                       offsets_[key_id + 1] - offsets_[key_id]};
  }

  /// Resolves one probe hash to a key id (kEmpty on miss). `row` backs
  /// the generic-mode equality compare; int64 mode compares `i64`.
  uint32_t FindKey(uint64_t hash, int64_t i64, const Row& row,
                   const std::vector<int>& probe_slots) const;

  // Slot array (power-of-two) and per-key metadata.
  std::vector<Slot> slots_;
  size_t mask_ = 0;
  std::vector<uint32_t> key_repr_;   // representative build-row per key
  std::vector<int64_t> key_int64_;   // int64 mode: raw key per key id
  std::vector<uint32_t> offsets_;    // num_keys + 1 prefix sums
  std::vector<uint32_t> payload_;    // row indices grouped by key, asc

  // Build-time scratch (kept for reuse across Reset/Build cycles).
  std::vector<uint64_t> hashes_;
  std::vector<int64_t> int64_keys_;
  std::vector<uint32_t> row_key_;

  const std::vector<Row>* build_rows_ = nullptr;
  const std::vector<int>* build_key_slots_ = nullptr;
  bool int64_mode_ = false;
};

/// Equi hash join (right = build side). Optional residual predicate over
/// the concatenated row.
///
/// Out-of-core: when the context carries a memory budget and a spill
/// manager, a build side that cannot be charged switches the join into
/// Grace mode — both inputs are hash-partitioned to temp files by their
/// join key and each partition pair is joined in memory at finish.
/// Output order then becomes partition-major (still deterministic for a
/// fixed partition count); in-memory executions are byte-identical to
/// the pre-spill behavior.
class HashJoinOp : public BinaryPhysOp {
 public:
  HashJoinOp(std::vector<int> left_key_slots,
             std::vector<int> right_key_slots, ExprPtr residual)
      : left_key_slots_(std::move(left_key_slots)),
        right_key_slots_(std::move(right_key_slots)),
        residual_(std::move(residual)) {}

  Status Prepare(ExecContext* ctx) override;
  void Reset() override;
  std::string Label() const override { return "HashJoin"; }

 protected:
  Status BuildFromRight() override;
  Status ProcessLeft(Row row) override;
  Status ProcessLeftBatch(RowBatch batch) override;
  Status FinishBoth() override;
  bool CanSpillRight() const override { return true; }

 private:
  /// Fan-out of the Grace repartitioning; 16 partitions put each pair at
  /// ~1/16 of the build side, comfortably under any budget that admitted
  /// spilling in the first place.
  static constexpr size_t kGracePartitions = 16;

  /// Joins one probe row against `build_rows` (the rows `matches` indexes
  /// into: right_rows() in memory, the loaded partition in Grace mode).
  Status EmitMatches(const Row& row, JoinMatches matches,
                     const std::vector<Row>& build_rows);

  /// Tears down in-memory build state and repartitions the right side
  /// (spilled files + in-memory remainder) into kGracePartitions temp
  /// files. Single-threaded (right-finish phase).
  Status EnterGraceMode();

  /// Appends a left row to its key partition's temp file; NULL-keyed rows
  /// are dropped (they can never match an inner join). Thread-safe.
  Status RouteLeftRow(const Row& row);

  /// Partition-wise join at finish: per partition, load + index the
  /// right rows, stream-probe the left file. Single-threaded.
  Status ProbeGracePartitions();

  std::vector<int> left_key_slots_;
  std::vector<int> right_key_slots_;
  ExprPtr residual_;
  JoinHashTable table_;
  std::vector<JoinProbeScratch> scratch_;  // per worker

  /// Set by BuildFromRight (single-threaded) before any left row flows
  /// in Grace mode; workers only read it, under the same phase ordering
  /// that publishes the hash table itself.
  bool grace_ = false;
  std::vector<std::unique_ptr<SpillFile>> right_parts_;
  std::vector<std::unique_ptr<SpillFile>> left_parts_;
  std::array<std::mutex, kGracePartitions> part_mutex_;
};

/// Nested-loop join; null predicate = cross product.
class NLJoinOp : public BinaryPhysOp {
 public:
  explicit NLJoinOp(ExprPtr predicate) : predicate_(std::move(predicate)) {}

  std::string Label() const override {
    return predicate_ ? "NLJoin " + predicate_->ToString()
                      : "CrossProduct";
  }

 protected:
  Status ProcessLeft(Row row) override;
  Status ProcessLeftBatch(RowBatch batch) override;
  Status FinishBoth() override { return EmitFinish(kPortOut); }

 private:
  Status JoinAgainstRight(const Row& row);

  ExprPtr predicate_;
};

/// Bypass nested-loop join ⋈±: positive port gets pairs satisfying the
/// predicate, negative port the complement (e1 × e2 minus the matches).
class BypassNLJoinOp : public BinaryPhysOp {
 public:
  explicit BypassNLJoinOp(ExprPtr predicate)
      : BinaryPhysOp(/*num_out_ports=*/2),
        predicate_(std::move(predicate)) {}

  std::string Label() const override {
    return "BypassNLJoin± " + predicate_->ToString();
  }

 protected:
  Status ProcessLeft(Row row) override;
  Status ProcessLeftBatch(RowBatch batch) override;
  Status FinishBoth() override;

 private:
  Status SplitAgainstRight(const Row& row);

  ExprPtr predicate_;
};

}  // namespace bypass

#endif  // BYPASSDB_EXEC_JOIN_H_
