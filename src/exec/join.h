// Inner joins: hash join for equi-predicates, nested-loop join for
// arbitrary predicates, and the bypass nested-loop join ⋈± whose negative
// stream carries the pairs failing the predicate (Eqv. 5).
#ifndef BYPASSDB_EXEC_JOIN_H_
#define BYPASSDB_EXEC_JOIN_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "exec/phys_op.h"
#include "exec/worker_pool.h"
#include "expr/expr.h"

namespace bypass {

/// Hash table from key rows to right-side row indices; SQL semantics:
/// rows with any NULL key never participate.
class JoinHashTable {
 public:
  void Clear();

  /// Indexes `rows` by the values at `key_slots` (NULL-keyed rows are
  /// skipped). With a non-null `pool` and enough rows, partial tables are
  /// built over contiguous row ranges in parallel and merged in range
  /// order, so each key's index list is ascending — byte-identical to the
  /// serial build.
  void Build(const std::vector<Row>& rows,
             const std::vector<int>& key_slots,
             WorkerPool* pool = nullptr);

  /// Matching right-row indices for the probe key taken from `row` at
  /// `probe_slots`; empty when the key has NULLs. Allocation-free: the
  /// probe key is looked up through RowSlotsRef, never materialized.
  const std::vector<size_t>* Probe(const Row& row,
                                   const std::vector<int>& probe_slots)
      const;

 private:
  std::unordered_map<Row, std::vector<size_t>, RowKeyHash, RowKeyEq> map_;
};

/// Equi hash join (right = build side). Optional residual predicate over
/// the concatenated row.
class HashJoinOp : public BinaryPhysOp {
 public:
  HashJoinOp(std::vector<int> left_key_slots,
             std::vector<int> right_key_slots, ExprPtr residual)
      : left_key_slots_(std::move(left_key_slots)),
        right_key_slots_(std::move(right_key_slots)),
        residual_(std::move(residual)) {}

  void Reset() override;
  std::string Label() const override { return "HashJoin"; }

 protected:
  Status BuildFromRight() override;
  Status ProcessLeft(Row row) override;
  Status ProcessLeftBatch(RowBatch batch) override;
  Status FinishBoth() override { return EmitFinish(kPortOut); }

 private:
  Status ProbeAndEmit(const Row& row);

  std::vector<int> left_key_slots_;
  std::vector<int> right_key_slots_;
  ExprPtr residual_;
  JoinHashTable table_;
};

/// Nested-loop join; null predicate = cross product.
class NLJoinOp : public BinaryPhysOp {
 public:
  explicit NLJoinOp(ExprPtr predicate) : predicate_(std::move(predicate)) {}

  std::string Label() const override {
    return predicate_ ? "NLJoin " + predicate_->ToString()
                      : "CrossProduct";
  }

 protected:
  Status ProcessLeft(Row row) override;
  Status ProcessLeftBatch(RowBatch batch) override;
  Status FinishBoth() override { return EmitFinish(kPortOut); }

 private:
  Status JoinAgainstRight(const Row& row);

  ExprPtr predicate_;
};

/// Bypass nested-loop join ⋈±: positive port gets pairs satisfying the
/// predicate, negative port the complement (e1 × e2 minus the matches).
class BypassNLJoinOp : public BinaryPhysOp {
 public:
  explicit BypassNLJoinOp(ExprPtr predicate)
      : BinaryPhysOp(/*num_out_ports=*/2),
        predicate_(std::move(predicate)) {}

  std::string Label() const override {
    return "BypassNLJoin± " + predicate_->ToString();
  }

 protected:
  Status ProcessLeft(Row row) override;
  Status ProcessLeftBatch(RowBatch batch) override;
  Status FinishBoth() override;

 private:
  Status SplitAgainstRight(const Row& row);

  ExprPtr predicate_;
};

}  // namespace bypass

#endif  // BYPASSDB_EXEC_JOIN_H_
