#include "exec/join.h"

#include <algorithm>
#include <atomic>

#include "common/check.h"

namespace bypass {

namespace {

bool AnyNull(const Row& row, const std::vector<int>& slots) {
  for (int s : slots) {
    if (row[static_cast<size_t>(s)].is_null()) return true;
  }
  return false;
}

/// Rows at or above which the hashing pass is parallelized.
constexpr size_t kParallelBuildThreshold = 4096;

/// Probe-ahead distance for the batched probe's software prefetch: far
/// enough to cover one memory round-trip, close enough to stay in the
/// batch's working window.
constexpr size_t kPrefetchDistance = 8;

/// Value-determined Grace partition hash: equal join keys must land in
/// the same partition no matter which side or representation they come
/// from. Single-column keys structurally equal to an int64 (int64, or a
/// double representing one exactly — the classes Int64KeyOf unifies)
/// take the int64 finalizer on both sides; everything else takes the
/// generic row-slot hash, which is itself equality-consistent.
uint64_t GracePartitionHash(const Row& row, const std::vector<int>& slots) {
  if (slots.size() == 1) {
    int64_t k;
    bool is_null;
    if (flat_internal::Int64KeyOf(row[static_cast<size_t>(slots[0])], &k,
                                  &is_null)) {
      return flat_internal::HashInt64Key(k);
    }
  }
  return HashRowSlots(row, slots);
}

/// Partitions come from the hash's top bits so they stay independent of
/// the low bits the per-partition hash tables mask with.
constexpr int kGracePartitionShift = 60;

size_t GracePartitionOf(const Row& row, const std::vector<int>& slots) {
  return static_cast<size_t>(GracePartitionHash(row, slots) >>
                             kGracePartitionShift);
}

}  // namespace

void JoinHashTable::Clear() {
  slots_.clear();
  mask_ = 0;
  key_repr_.clear();
  key_int64_.clear();
  offsets_.clear();
  payload_.clear();
  build_rows_ = nullptr;
  build_key_slots_ = nullptr;
  int64_mode_ = false;
}

bool JoinHashTable::HashRange(const std::vector<Row>& rows,
                              const std::vector<int>& key_slots,
                              size_t begin, size_t end, bool use_int64) {
  if (use_int64) {
    const size_t slot = static_cast<size_t>(key_slots[0]);
    for (size_t i = begin; i < end; ++i) {
      const Value& v = rows[i][slot];
      if (v.is_null()) {
        row_key_[i] = kSkip;
        continue;
      }
      int64_t k;
      bool is_null;
      if (!flat_internal::Int64KeyOf(v, &k, &is_null)) return false;
      int64_keys_[i] = k;
      hashes_[i] = flat_internal::HashInt64Key(k);
      row_key_[i] = 0;  // participates; key id assigned by insert pass
    }
    return true;
  }
  for (size_t i = begin; i < end; ++i) {
    if (AnyNull(rows[i], key_slots)) {
      row_key_[i] = kSkip;
      continue;
    }
    hashes_[i] = HashRowSlots(rows[i], key_slots);
    row_key_[i] = 0;
  }
  return true;
}

void JoinHashTable::Build(const std::vector<Row>& rows,
                          const std::vector<int>& key_slots,
                          WorkerPool* pool) {
  Clear();
  build_rows_ = &rows;
  build_key_slots_ = &key_slots;
  const size_t n = rows.size();
  if (n == 0) return;

  hashes_.resize(n);
  row_key_.resize(n);
  // Fast-path election: single int64 key column. The hashing pass
  // verifies every non-null key (a mixed column falls back to generic
  // hashing so probe hashes stay consistent with build hashes).
  int64_mode_ = key_slots.size() == 1;
  if (int64_mode_) int64_keys_.resize(n);

  const bool parallel = pool != nullptr && pool->num_workers() > 1 &&
                        n >= kParallelBuildThreshold;
  auto run_hash_pass = [&](bool use_int64) -> bool {
    if (!parallel) return HashRange(rows, key_slots, 0, n, use_int64);
    // Tasks write disjoint ranges of the per-row arrays, so the pass is
    // deterministic regardless of scheduling; the insert/fill passes
    // below stay serial, keeping the final layout byte-identical to the
    // serial build (the PR 2 merge contract).
    const size_t num_tasks = static_cast<size_t>(pool->num_workers());
    const size_t chunk = (n + num_tasks - 1) / num_tasks;
    std::atomic<bool> compatible{true};
    const Status st = pool->ParallelFor(num_tasks, [&](size_t t) {
      const size_t begin = t * chunk;
      const size_t end = std::min(begin + chunk, n);
      if (begin < end &&
          !HashRange(rows, key_slots, begin, end, use_int64)) {
        compatible.store(false, std::memory_order_relaxed);
      }
      return Status::OK();
    });
    BYPASS_CHECK_MSG(st.ok(), "parallel hash pass cannot fail");
    return compatible.load(std::memory_order_relaxed);
  };
  if (!run_hash_pass(int64_mode_) && int64_mode_) {
    int64_mode_ = false;
    run_hash_pass(false);
  }

  // Insert pass (serial, ascending row index): assign key ids and count
  // rows per key. Capacity is pre-sized below 0.7 load even if all n
  // keys are distinct, so no mid-build rehash can occur.
  size_t capacity = 16;
  while (capacity * 7 < n * 10) capacity <<= 1;
  slots_.assign(capacity, Slot{0, kEmpty});
  mask_ = capacity - 1;
  std::vector<uint32_t> counts;
  for (size_t i = 0; i < n; ++i) {
    if (row_key_[i] == kSkip) continue;
    const uint64_t h = hashes_[i];
    size_t pos = h & mask_;
    uint32_t key_id = kEmpty;
    while (true) {
      Slot& s = slots_[pos];
      if (s.key_id == kEmpty) {
        key_id = static_cast<uint32_t>(key_repr_.size());
        s = Slot{h, key_id};
        key_repr_.push_back(static_cast<uint32_t>(i));
        if (int64_mode_) key_int64_.push_back(int64_keys_[i]);
        counts.push_back(0);
        break;
      }
      if (s.hash == h) {
        const uint32_t cand = s.key_id;
        const bool equal =
            int64_mode_
                ? key_int64_[cand] == int64_keys_[i]
                : RowSlotsEqual(rows[i], rows[key_repr_[cand]], key_slots,
                                key_slots);
        if (equal) {
          key_id = cand;
          break;
        }
      }
      pos = (pos + 1) & mask_;
    }
    row_key_[i] = key_id;
    ++counts[key_id];
  }

  // Fill pass: prefix sums, then ascending row indices per key.
  offsets_.resize(counts.size() + 1);
  uint32_t total = 0;
  for (size_t k = 0; k < counts.size(); ++k) {
    offsets_[k] = total;
    total += counts[k];
  }
  offsets_[counts.size()] = total;
  payload_.resize(total);
  std::vector<uint32_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (size_t i = 0; i < n; ++i) {
    if (row_key_[i] == kSkip) continue;
    payload_[cursor[row_key_[i]]++] = static_cast<uint32_t>(i);
  }
}

uint32_t JoinHashTable::FindKey(uint64_t hash, int64_t i64,
                                const Row& row,
                                const std::vector<int>& probe_slots)
    const {
  size_t pos = hash & mask_;
  while (true) {
    const Slot& s = slots_[pos];
    if (s.key_id == kEmpty) return kEmpty;
    if (s.hash == hash) {
      const bool equal =
          int64_mode_
              ? key_int64_[s.key_id] == i64
              : RowSlotsEqual(row, (*build_rows_)[key_repr_[s.key_id]],
                              probe_slots, *build_key_slots_);
      if (equal) return s.key_id;
    }
    pos = (pos + 1) & mask_;
  }
}

JoinMatches JoinHashTable::Probe(const Row& row,
                                 const std::vector<int>& probe_slots)
    const {
  if (key_repr_.empty()) return JoinMatches{};
  uint64_t h;
  int64_t i64 = 0;
  if (int64_mode_) {
    const Value& v = row[static_cast<size_t>(probe_slots[0])];
    bool is_null;
    if (v.is_null() || !flat_internal::Int64KeyOf(v, &i64, &is_null)) {
      return JoinMatches{};
    }
    h = flat_internal::HashInt64Key(i64);
  } else {
    if (AnyNull(row, probe_slots)) return JoinMatches{};
    h = HashRowSlots(row, probe_slots);
  }
  const uint32_t key_id = FindKey(h, i64, row, probe_slots);
  if (key_id == kEmpty) return JoinMatches{};
  return MatchesOf(key_id);
}

void JoinHashTable::ProbeBatch(const RowBatch& batch,
                               const std::vector<int>& probe_slots,
                               JoinProbeScratch* scratch) const {
  const size_t n = batch.size();
  scratch->matches.assign(n, JoinMatches{});
  if (key_repr_.empty() || n == 0) return;
  scratch->hashes.resize(n);
  scratch->valid.assign(n, 0);
  if (int64_mode_) scratch->int64_keys.resize(n);

  // Pass 1: hash every probe key. When the batch carries typed columns
  // and the single probe slot is a typed int64 column, hash straight off
  // the raw array + null bitmap — no Value access at all.
  if (int64_mode_) {
    const size_t slot = static_cast<size_t>(probe_slots[0]);
    const ColumnVector* col = nullptr;
    if (batch.columns() != nullptr &&
        slot < batch.columns()->columns.size()) {
      const ColumnVector& c = batch.columns()->columns[slot];
      if (c.typed() && c.type() == DataType::kInt64) col = &c;
    }
    if (col != nullptr) {
      const int64_t* data = col->i64_data();
      const std::vector<uint32_t>& sel = batch.selection();
      for (size_t i = 0; i < n; ++i) {
        const uint32_t idx = sel[i];
        if (col->IsNull(idx)) continue;
        const int64_t k = data[idx];
        scratch->int64_keys[i] = k;
        scratch->hashes[i] = flat_internal::HashInt64Key(k);
        scratch->valid[i] = 1;
      }
    } else {
      for (size_t i = 0; i < n; ++i) {
        const Value& v = batch.row(i)[slot];
        int64_t k;
        bool is_null;
        if (v.is_null() || !flat_internal::Int64KeyOf(v, &k, &is_null)) {
          continue;
        }
        scratch->int64_keys[i] = k;
        scratch->hashes[i] = flat_internal::HashInt64Key(k);
        scratch->valid[i] = 1;
      }
    }
  } else {
    for (size_t i = 0; i < n; ++i) {
      const Row& row = batch.row(i);
      if (AnyNull(row, probe_slots)) continue;
      scratch->hashes[i] = HashRowSlots(row, probe_slots);
      scratch->valid[i] = 1;
    }
  }

  // Pass 2: resolve with the slot line for row i + d prefetched while
  // row i resolves, hiding the dependent load behind the current probe.
  for (size_t i = 0; i < n; ++i) {
    const size_t ahead = i + kPrefetchDistance;
    if (ahead < n && scratch->valid[ahead]) {
      __builtin_prefetch(&slots_[scratch->hashes[ahead] & mask_]);
    }
    if (!scratch->valid[i]) continue;
    const uint32_t key_id =
        FindKey(scratch->hashes[i],
                int64_mode_ ? scratch->int64_keys[i] : 0, batch.row(i),
                probe_slots);
    if (key_id != kEmpty) scratch->matches[i] = MatchesOf(key_id);
  }
}

int64_t JoinHashTable::RetainedBytes() const {
  const size_t bytes = slots_.capacity() * sizeof(Slot) +
                       key_repr_.capacity() * sizeof(uint32_t) +
                       key_int64_.capacity() * sizeof(int64_t) +
                       offsets_.capacity() * sizeof(uint32_t) +
                       payload_.capacity() * sizeof(uint32_t) +
                       hashes_.capacity() * sizeof(uint64_t) +
                       int64_keys_.capacity() * sizeof(int64_t) +
                       row_key_.capacity() * sizeof(uint32_t);
  return static_cast<int64_t>(bytes);
}

// --------------------------------------------------------------- HashJoin

Status HashJoinOp::Prepare(ExecContext* ctx) {
  BYPASS_RETURN_IF_ERROR(BinaryPhysOp::Prepare(ctx));
  scratch_.resize(static_cast<size_t>(ctx->num_worker_slots()));
  return Status::OK();
}

void HashJoinOp::Reset() {
  BinaryPhysOp::Reset();
  table_.Clear();
  grace_ = false;
  right_parts_.clear();
  left_parts_.clear();
}

Status HashJoinOp::BuildFromRight() {
  static_assert(kGracePartitions ==
                size_t{1} << (64 - kGracePartitionShift));
  if (right_spilled()) return EnterGraceMode();
  table_.Build(right_rows(), right_key_slots_, ctx_->pool());
  // The index arrays scale with the build side exactly like the buffered
  // rows (charged on arrival) do, so they pay into the budget too.
  const int64_t bytes = table_.RetainedBytes();
  if (ctx_->spill() != nullptr && ctx_->memory() != nullptr) {
    if (ctx_->TryChargeMemory(bytes)) return Status::OK();
    table_.Clear();
    return EnterGraceMode();
  }
  return ctx_->ChargeMemory(bytes);
}

Status HashJoinOp::EnterGraceMode() {
  ExecStats* stats = ctx_->stats();
  right_parts_.resize(kGracePartitions);
  left_parts_.resize(kGracePartitions);
  for (size_t p = 0; p < kGracePartitions; ++p) {
    BYPASS_ASSIGN_OR_RETURN(right_parts_[p],
                            ctx_->spill()->NewFile("gracer"));
    BYPASS_ASSIGN_OR_RETURN(left_parts_[p],
                            ctx_->spill()->NewFile("gracel"));
  }
  if (stats != nullptr) {
    stats->spill_files += static_cast<int64_t>(2 * kGracePartitions);
  }
  auto route_right = [&](const Row& row) -> Status {
    // NULL-keyed rows can never match an inner join; dropping them here
    // mirrors the in-memory build skipping them.
    if (AnyNull(row, right_key_slots_)) return Status::OK();
    return right_parts_[GracePartitionOf(row, right_key_slots_)]
        ->AppendRow(row);
  };
  // Repartition the in-memory remainder first, releasing its budget
  // charges, then replay the workers' overflow files.
  {
    std::vector<Row> mem = TakeRightRows();
    for (const Row& row : mem) {
      BYPASS_RETURN_IF_ERROR(route_right(row));
    }
  }
  ctx_->ReleaseMemory(TakeRightCharges());
  BYPASS_ASSIGN_OR_RETURN(std::vector<std::unique_ptr<SpillFile>> spilled,
                          TakeRightSpillFiles());
  Row row;
  for (const std::unique_ptr<SpillFile>& file : spilled) {
    BYPASS_RETURN_IF_ERROR(file->OpenRead());
    while (true) {
      BYPASS_ASSIGN_OR_RETURN(bool more, file->ReadRow(&row));
      if (!more) break;
      BYPASS_RETURN_IF_ERROR(route_right(row));
    }
  }
  int64_t routed_rows = 0;
  int64_t routed_bytes = 0;
  for (std::unique_ptr<SpillFile>& part : right_parts_) {
    BYPASS_RETURN_IF_ERROR(part->FinishWrite());
    routed_rows += part->rows_written();
    routed_bytes += part->bytes_written();
  }
  if (stats != nullptr) {
    stats->spilled_rows += routed_rows;
    stats->spilled_bytes += routed_bytes;
  }
  grace_ = true;
  return Status::OK();
}

Status HashJoinOp::RouteLeftRow(const Row& row) {
  if (AnyNull(row, left_key_slots_)) return Status::OK();
  const size_t p = GracePartitionOf(row, left_key_slots_);
  std::lock_guard<std::mutex> lock(part_mutex_[p]);
  return left_parts_[p]->AppendRow(row);
}

Status HashJoinOp::ProbeGracePartitions() {
  ExecStats* stats = ctx_->stats();
  int64_t left_spill_rows = 0;
  int64_t left_spill_bytes = 0;
  for (std::unique_ptr<SpillFile>& part : left_parts_) {
    BYPASS_RETURN_IF_ERROR(part->FinishWrite());
    left_spill_rows += part->rows_written();
    left_spill_bytes += part->bytes_written();
  }
  if (stats != nullptr) {
    stats->spilled_rows += left_spill_rows;
    stats->spilled_bytes += left_spill_bytes;
  }
  std::vector<Row> build;
  Row row;
  for (size_t p = 0; p < kGracePartitions; ++p) {
    SpillFile& right = *right_parts_[p];
    SpillFile& left = *left_parts_[p];
    if (right.rows_written() == 0 || left.rows_written() == 0) continue;
    BYPASS_RETURN_IF_ERROR(ctx_->CheckBudget());
    build.clear();
    build.reserve(static_cast<size_t>(right.rows_written()));
    BYPASS_RETURN_IF_ERROR(right.OpenRead());
    while (true) {
      BYPASS_ASSIGN_OR_RETURN(bool more, right.ReadRow(&row));
      if (!more) break;
      build.push_back(std::move(row));
    }
    // One partition pair is resident at a time; its charges are released
    // before the next partition loads. A single partition that still
    // overflows the budget (extreme key skew) fails rather than thrash.
    const int64_t row_bytes = ApproxRowsBytes(
        build.size(), build.empty() ? 0 : build[0].size());
    if (!ctx_->TryChargeMemory(row_bytes)) {
      return Status::ResourceExhausted(
          "grace-join partition exceeds the memory budget");
    }
    table_.Build(build, right_key_slots_, ctx_->pool());
    const int64_t table_bytes = table_.RetainedBytes();
    if (!ctx_->TryChargeMemory(table_bytes)) {
      ctx_->ReleaseMemory(row_bytes);
      return Status::ResourceExhausted(
          "grace-join partition exceeds the memory budget");
    }
    BYPASS_RETURN_IF_ERROR(left.OpenRead());
    Status st = Status::OK();
    while (st.ok()) {
      Result<bool> more = left.ReadRow(&row);
      if (!more.ok()) {
        st = more.status();
        break;
      }
      if (!*more) break;
      st = EmitMatches(row, table_.Probe(row, left_key_slots_), build);
    }
    table_.Clear();
    ctx_->ReleaseMemory(row_bytes + table_bytes);
    BYPASS_RETURN_IF_ERROR(st);
    if (stats != nullptr) ++stats->join_spill_partitions;
  }
  right_parts_.clear();
  left_parts_.clear();
  return Status::OK();
}

Status HashJoinOp::EmitMatches(const Row& row, JoinMatches matches,
                               const std::vector<Row>& build_rows) {
  for (uint32_t idx : matches) {
    Row joined = ConcatRows(row, build_rows[idx]);
    if (residual_ != nullptr) {
      EvalContext ectx{&joined, ctx_->outer_row()};
      BYPASS_ASSIGN_OR_RETURN(Value v, residual_->Eval(ectx));
      if (ValueToTriBool(v) != TriBool::kTrue) continue;
    }
    BYPASS_RETURN_IF_ERROR(EmitRow(kPortOut, std::move(joined)));
  }
  return Status::OK();
}

Status HashJoinOp::ProcessLeft(Row row) {
  if (grace_) return RouteLeftRow(row);
  return EmitMatches(row, table_.Probe(row, left_key_slots_),
                     right_rows());
}

// Probes the whole batch through the vectorized hash-then-resolve path:
// left rows are never copied out of the batch, so probe misses cost no
// allocation at all.
Status HashJoinOp::ProcessLeftBatch(RowBatch batch) {
  const size_t n = batch.size();
  if (grace_) {
    for (size_t i = 0; i < n; ++i) {
      BYPASS_RETURN_IF_ERROR(RouteLeftRow(batch.row(i)));
    }
    return Status::OK();
  }
  JoinProbeScratch& scratch =
      scratch_[static_cast<size_t>(CurrentWorkerId())];
  table_.ProbeBatch(batch, left_key_slots_, &scratch);
  for (size_t i = 0; i < n; ++i) {
    if (scratch.matches[i].empty()) continue;
    BYPASS_RETURN_IF_ERROR(EmitMatches(batch.row(i), scratch.matches[i],
                                       right_rows()));
  }
  return Status::OK();
}

Status HashJoinOp::FinishBoth() {
  if (grace_) {
    BYPASS_RETURN_IF_ERROR(ProbeGracePartitions());
  }
  return EmitFinish(kPortOut);
}

// ----------------------------------------------------------------- NLJoin

Status NLJoinOp::JoinAgainstRight(const Row& row) {
  int64_t since_check = 0;
  for (const Row& right : right_rows()) {
    if (++since_check >= 4096) {
      since_check = 0;
      BYPASS_RETURN_IF_ERROR(ctx_->CheckBudget());
    }
    Row joined = ConcatRows(row, right);
    if (predicate_ != nullptr) {
      EvalContext ectx{&joined, ctx_->outer_row()};
      BYPASS_ASSIGN_OR_RETURN(Value v, predicate_->Eval(ectx));
      if (ValueToTriBool(v) != TriBool::kTrue) continue;
    }
    BYPASS_RETURN_IF_ERROR(EmitRow(kPortOut, std::move(joined)));
  }
  return Status::OK();
}

Status NLJoinOp::ProcessLeft(Row row) { return JoinAgainstRight(row); }

Status NLJoinOp::ProcessLeftBatch(RowBatch batch) {
  const size_t n = batch.size();
  for (size_t i = 0; i < n; ++i) {
    BYPASS_RETURN_IF_ERROR(JoinAgainstRight(batch.row(i)));
  }
  return Status::OK();
}

// ----------------------------------------------------------- BypassNLJoin

Status BypassNLJoinOp::SplitAgainstRight(const Row& row) {
  int64_t since_check = 0;
  for (const Row& right : right_rows()) {
    if (++since_check >= 4096) {
      since_check = 0;
      BYPASS_RETURN_IF_ERROR(ctx_->CheckBudget());
    }
    Row joined = ConcatRows(row, right);
    EvalContext ectx{&joined, ctx_->outer_row()};
    BYPASS_ASSIGN_OR_RETURN(Value v, predicate_->Eval(ectx));
    const int port =
        ValueToTriBool(v) == TriBool::kTrue ? kPortOut : kPortNegative;
    BYPASS_RETURN_IF_ERROR(EmitRow(port, std::move(joined)));
  }
  return Status::OK();
}

Status BypassNLJoinOp::ProcessLeft(Row row) {
  return SplitAgainstRight(row);
}

Status BypassNLJoinOp::ProcessLeftBatch(RowBatch batch) {
  const size_t n = batch.size();
  for (size_t i = 0; i < n; ++i) {
    BYPASS_RETURN_IF_ERROR(SplitAgainstRight(batch.row(i)));
  }
  return Status::OK();
}

Status BypassNLJoinOp::FinishBoth() {
  BYPASS_RETURN_IF_ERROR(EmitFinish(kPortOut));
  return EmitFinish(kPortNegative);
}

}  // namespace bypass
