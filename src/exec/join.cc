#include "exec/join.h"

#include <algorithm>

#include "common/check.h"

namespace bypass {

namespace {

bool AnyNull(const Row& row, const std::vector<int>& slots) {
  for (int s : slots) {
    if (row[static_cast<size_t>(s)].is_null()) return true;
  }
  return false;
}

}  // namespace

void JoinHashTable::Clear() { map_.clear(); }

void JoinHashTable::Build(const std::vector<Row>& rows,
                          const std::vector<int>& key_slots,
                          WorkerPool* pool) {
  map_.clear();
  constexpr size_t kParallelBuildThreshold = 4096;
  if (pool == nullptr || pool->num_workers() <= 1 ||
      rows.size() < kParallelBuildThreshold) {
    map_.reserve(rows.size());
    for (size_t i = 0; i < rows.size(); ++i) {
      if (AnyNull(rows[i], key_slots)) continue;
      map_[ProjectRow(rows[i], key_slots)].push_back(i);
    }
    return;
  }
  // Partial tables over contiguous row ranges. Each task sees ascending
  // row indices, and ranges are merged in task order below, so the final
  // per-key index lists match the serial build exactly.
  const size_t num_tasks = static_cast<size_t>(pool->num_workers());
  const size_t chunk = (rows.size() + num_tasks - 1) / num_tasks;
  std::vector<decltype(map_)> partials(num_tasks);
  const Status build_status =
      pool->ParallelFor(num_tasks, [&](size_t t) -> Status {
        const size_t begin = t * chunk;
        const size_t end = std::min(begin + chunk, rows.size());
        auto& partial = partials[t];
        for (size_t i = begin; i < end; ++i) {
          if (AnyNull(rows[i], key_slots)) continue;
          partial[ProjectRow(rows[i], key_slots)].push_back(i);
        }
        return Status::OK();
      });
  BYPASS_CHECK_MSG(build_status.ok(), "parallel hash build cannot fail");
  map_.reserve(rows.size());
  for (auto& partial : partials) {
    if (map_.empty()) {
      map_ = std::move(partial);
      continue;
    }
    for (auto it = partial.begin(); it != partial.end();) {
      auto next = std::next(it);
      auto dst = map_.find(it->first);
      if (dst == map_.end()) {
        map_.insert(partial.extract(it));
      } else {
        dst->second.insert(dst->second.end(), it->second.begin(),
                           it->second.end());
      }
      it = next;
    }
  }
}

const std::vector<size_t>* JoinHashTable::Probe(
    const Row& row, const std::vector<int>& probe_slots) const {
  if (AnyNull(row, probe_slots)) return nullptr;
  const auto it = map_.find(RowSlotsRef{&row, &probe_slots});
  if (it == map_.end()) return nullptr;
  return &it->second;
}

// --------------------------------------------------------------- HashJoin

void HashJoinOp::Reset() {
  BinaryPhysOp::Reset();
  table_.Clear();
}

Status HashJoinOp::BuildFromRight() {
  table_.Build(right_rows(), right_key_slots_, ctx_->pool());
  return Status::OK();
}

Status HashJoinOp::ProbeAndEmit(const Row& row) {
  const std::vector<size_t>* matches = table_.Probe(row, left_key_slots_);
  if (matches == nullptr) return Status::OK();
  for (size_t idx : *matches) {
    Row joined = ConcatRows(row, right_rows()[idx]);
    if (residual_ != nullptr) {
      EvalContext ectx{&joined, ctx_->outer_row()};
      BYPASS_ASSIGN_OR_RETURN(Value v, residual_->Eval(ectx));
      if (ValueToTriBool(v) != TriBool::kTrue) continue;
    }
    BYPASS_RETURN_IF_ERROR(EmitRow(kPortOut, std::move(joined)));
  }
  return Status::OK();
}

Status HashJoinOp::ProcessLeft(Row row) { return ProbeAndEmit(row); }

// Probes each selected row in place: left rows are never copied out of
// the batch, so probe misses cost no allocation at all.
Status HashJoinOp::ProcessLeftBatch(RowBatch batch) {
  const size_t n = batch.size();
  for (size_t i = 0; i < n; ++i) {
    BYPASS_RETURN_IF_ERROR(ProbeAndEmit(batch.row(i)));
  }
  return Status::OK();
}

// ----------------------------------------------------------------- NLJoin

Status NLJoinOp::JoinAgainstRight(const Row& row) {
  int64_t since_check = 0;
  for (const Row& right : right_rows()) {
    if (++since_check >= 4096) {
      since_check = 0;
      BYPASS_RETURN_IF_ERROR(ctx_->CheckBudget());
    }
    Row joined = ConcatRows(row, right);
    if (predicate_ != nullptr) {
      EvalContext ectx{&joined, ctx_->outer_row()};
      BYPASS_ASSIGN_OR_RETURN(Value v, predicate_->Eval(ectx));
      if (ValueToTriBool(v) != TriBool::kTrue) continue;
    }
    BYPASS_RETURN_IF_ERROR(EmitRow(kPortOut, std::move(joined)));
  }
  return Status::OK();
}

Status NLJoinOp::ProcessLeft(Row row) { return JoinAgainstRight(row); }

Status NLJoinOp::ProcessLeftBatch(RowBatch batch) {
  const size_t n = batch.size();
  for (size_t i = 0; i < n; ++i) {
    BYPASS_RETURN_IF_ERROR(JoinAgainstRight(batch.row(i)));
  }
  return Status::OK();
}

// ----------------------------------------------------------- BypassNLJoin

Status BypassNLJoinOp::SplitAgainstRight(const Row& row) {
  int64_t since_check = 0;
  for (const Row& right : right_rows()) {
    if (++since_check >= 4096) {
      since_check = 0;
      BYPASS_RETURN_IF_ERROR(ctx_->CheckBudget());
    }
    Row joined = ConcatRows(row, right);
    EvalContext ectx{&joined, ctx_->outer_row()};
    BYPASS_ASSIGN_OR_RETURN(Value v, predicate_->Eval(ectx));
    const int port =
        ValueToTriBool(v) == TriBool::kTrue ? kPortOut : kPortNegative;
    BYPASS_RETURN_IF_ERROR(EmitRow(port, std::move(joined)));
  }
  return Status::OK();
}

Status BypassNLJoinOp::ProcessLeft(Row row) {
  return SplitAgainstRight(row);
}

Status BypassNLJoinOp::ProcessLeftBatch(RowBatch batch) {
  const size_t n = batch.size();
  for (size_t i = 0; i < n; ++i) {
    BYPASS_RETURN_IF_ERROR(SplitAgainstRight(batch.row(i)));
  }
  return Status::OK();
}

Status BypassNLJoinOp::FinishBoth() {
  BYPASS_RETURN_IF_ERROR(EmitFinish(kPortOut));
  return EmitFinish(kPortNegative);
}

}  // namespace bypass
