// Table scan: the plan's source operator. The executor drives execution
// either serially (Run) or by dispatching fixed-size morsels of the table
// to the worker pool (RunMorsel per morsel, then FinishSource once all
// workers joined).
#ifndef BYPASSDB_EXEC_SCAN_H_
#define BYPASSDB_EXEC_SCAN_H_

#include <memory>
#include <string>
#include <vector>

#include "catalog/table.h"
#include "exec/phys_op.h"
#include "expr/expr.h"

namespace bypass {

class TableScanOp : public UnaryPhysOp {
 public:
  explicit TableScanOp(const Table* table) : table_(table) {}

  Status Prepare(ExecContext* ctx) override;

  /// Serial drive: pushes the whole table and finishes the output.
  Status Run();

  /// Pushes rows [begin, end) of the table to the consumers in zero-copy
  /// borrowed batches, polling cancellation and the time budget between
  /// batches. Safe to call concurrently for disjoint morsels.
  Status RunMorsel(size_t begin, size_t end);

  /// Propagates end-of-stream after every morsel completed. Driver-only.
  Status FinishSource() { return EmitFinish(kPortOut); }

  /// Table cardinality, for the executor's morsel splitter.
  size_t num_rows() const {
    return static_cast<size_t>(table_->num_rows());
  }

  /// The scanned table's name, for runtime cardinality feedback.
  const std::string& table_name() const { return table_->name(); }

  Status Consume(int, RowBatch) override {
    return Status::Internal("TableScan has no input");
  }

  std::string Label() const override {
    return "Scan(" + table_->name() + ")";
  }

  /// Installs the zone-map pruning predicate: a filter predicate bound
  /// against this table's schema whose TRUE rows are the only ones any
  /// consumer keeps. Segments whose zone maps prove it can never be TRUE
  /// are skipped when the context enables zone maps. The planner only
  /// attaches one when this scan feeds exactly one consumer and that
  /// consumer is the filter applying the predicate, so dropping
  /// never-matching rows cannot change the plan's result. ZoneTest is
  /// conservative (kSome) on every construct it cannot reason about —
  /// subqueries, arithmetic, outer references — so the full bound
  /// predicate is usable as-is.
  void set_zone_filter(ExprPtr filter) {
    zone_filter_ = std::move(filter);
  }
  const ExprPtr& zone_filter() const { return zone_filter_; }

 private:
  /// One decompressed segment per worker; shared_ptr-owned because
  /// downstream operators may retain emitted batches after this cache
  /// moves to the next segment.
  struct alignas(64) SegmentCache {
    size_t segment = SIZE_MAX;
    std::shared_ptr<const ColumnStore> store;
    std::shared_ptr<const std::vector<Row>> rows;
  };

  /// The pre-segment flat path: zero-copy borrowed batches over the
  /// table's columns and row shim.
  Status EmitFlatRange(size_t begin, size_t end);
  /// The segment read path: decompress (with per-worker caching) and
  /// emit shared-ownership batches over the segment's rows.
  Status EmitSegmentRange(size_t seg, size_t begin, size_t end);

  const Table* table_;
  ExprPtr zone_filter_;
  std::vector<SegmentCache> seg_cache_;
};

}  // namespace bypass

#endif  // BYPASSDB_EXEC_SCAN_H_
