// Table scan: the plan's source operator. The executor drives execution by
// calling Run() on every source in dependency order.
#ifndef BYPASSDB_EXEC_SCAN_H_
#define BYPASSDB_EXEC_SCAN_H_

#include <string>
#include <vector>

#include "catalog/table.h"
#include "exec/phys_op.h"

namespace bypass {

class TableScanOp : public UnaryPhysOp {
 public:
  explicit TableScanOp(const Table* table) : table_(table) {}

  /// Pushes the table to the consumers in zero-copy borrowed batches,
  /// polling cancellation and the time budget between batches, then
  /// finishes the output.
  Status Run();

  Status Consume(int, RowBatch) override {
    return Status::Internal("TableScan has no input");
  }

  std::string Label() const override {
    return "Scan(" + table_->name() + ")";
  }

 private:
  const Table* table_;
};

}  // namespace bypass

#endif  // BYPASSDB_EXEC_SCAN_H_
