// Table scan: the plan's source operator. The executor drives execution
// either serially (Run) or by dispatching fixed-size morsels of the table
// to the worker pool (RunMorsel per morsel, then FinishSource once all
// workers joined).
#ifndef BYPASSDB_EXEC_SCAN_H_
#define BYPASSDB_EXEC_SCAN_H_

#include <string>
#include <vector>

#include "catalog/table.h"
#include "exec/phys_op.h"

namespace bypass {

class TableScanOp : public UnaryPhysOp {
 public:
  explicit TableScanOp(const Table* table) : table_(table) {}

  /// Serial drive: pushes the whole table and finishes the output.
  Status Run();

  /// Pushes rows [begin, end) of the table to the consumers in zero-copy
  /// borrowed batches, polling cancellation and the time budget between
  /// batches. Safe to call concurrently for disjoint morsels.
  Status RunMorsel(size_t begin, size_t end);

  /// Propagates end-of-stream after every morsel completed. Driver-only.
  Status FinishSource() { return EmitFinish(kPortOut); }

  /// Table cardinality, for the executor's morsel splitter.
  size_t num_rows() const {
    return static_cast<size_t>(table_->num_rows());
  }

  /// The scanned table's name, for runtime cardinality feedback.
  const std::string& table_name() const { return table_->name(); }

  Status Consume(int, RowBatch) override {
    return Status::Internal("TableScan has no input");
  }

  std::string Label() const override {
    return "Scan(" + table_->name() + ")";
  }

 private:
  const Table* table_;
};

}  // namespace bypass

#endif  // BYPASSDB_EXEC_SCAN_H_
