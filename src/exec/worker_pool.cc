#include "exec/worker_pool.h"

#include "common/check.h"

namespace bypass {

namespace {
thread_local int tls_worker_id = 0;
}  // namespace

int CurrentWorkerId() { return tls_worker_id; }

WorkerPool::WorkerPool(int num_workers)
    : num_workers_(num_workers < 1 ? 1 : num_workers) {
  threads_.reserve(static_cast<size_t>(num_workers_ - 1));
  for (int w = 1; w < num_workers_; ++w) {
    threads_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void WorkerPool::WorkerLoop(int worker_id) {
  tls_worker_id = worker_id;
  std::unique_lock<std::mutex> lock(mu_);
  uint64_t seen_round = 0;
  while (true) {
    work_cv_.wait(lock, [&] { return shutdown_ || round_ != seen_round; });
    if (shutdown_) return;
    seen_round = round_;
    ++active_workers_;
    lock.unlock();
    RunTasks();
    lock.lock();
    if (--active_workers_ == 0) done_cv_.notify_all();
  }
}

void WorkerPool::RunTasks() {
  while (true) {
    const size_t task = next_task_.fetch_add(1, std::memory_order_relaxed);
    if (task >= num_tasks_ || abort_.load(std::memory_order_relaxed)) {
      return;
    }
    Status st = (*fn_)(task);
    if (!st.ok()) {
      abort_.store(true, std::memory_order_relaxed);
      std::lock_guard<std::mutex> lock(mu_);
      if (first_error_.ok()) first_error_ = std::move(st);
    }
  }
}

Status WorkerPool::ParallelFor(
    size_t num_tasks, const std::function<Status(size_t task)>& fn) {
  if (num_tasks == 0) return Status::OK();
  BYPASS_CHECK_MSG(tls_worker_id == 0,
                   "ParallelFor is driver-only and not reentrant");
  {
    std::lock_guard<std::mutex> lock(mu_);
    fn_ = &fn;
    num_tasks_ = num_tasks;
    first_error_ = Status::OK();
    next_task_.store(0, std::memory_order_relaxed);
    abort_.store(false, std::memory_order_relaxed);
    ++round_;
  }
  work_cv_.notify_all();
  // The caller works the round as worker 0 (its tls id already is 0).
  RunTasks();
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] {
    // Workers that never woke before the round drained simply skip it:
    // they re-check round_ against their seen counter only when woken,
    // but all tasks are claimed through next_task_, so completion is
    // "no active worker and no unclaimed task" (or an aborted round).
    return active_workers_ == 0 &&
           (abort_.load(std::memory_order_relaxed) ||
            next_task_.load(std::memory_order_relaxed) >= num_tasks_);
  });
  // Mark the round consumed so late-waking workers have nothing to do.
  num_tasks_ = 0;
  fn_ = nullptr;
  return first_error_;
}

}  // namespace bypass
