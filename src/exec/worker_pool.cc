#include "exec/worker_pool.h"

#include <algorithm>

#include "common/check.h"

namespace bypass {

namespace {
thread_local int tls_worker_id = 0;
}  // namespace

int CurrentWorkerId() { return tls_worker_id; }

WorkerPool::WorkerPool(int num_workers)
    : num_workers_(num_workers < 1 ? 1 : num_workers) {
  const int n = num_workers_.load(std::memory_order_relaxed);
  threads_.reserve(static_cast<size_t>(n - 1));
  for (int w = 1; w < n; ++w) {
    threads_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void WorkerPool::EnsureWorkers(int n) {
  if (n <= num_workers()) return;
  std::lock_guard<std::mutex> lock(mu_);
  const int current = num_workers_.load(std::memory_order_relaxed);
  for (int w = current; w < n; ++w) {
    threads_.emplace_back([this, w] { WorkerLoop(w); });
  }
  if (n > current) {
    num_workers_.store(n, std::memory_order_release);
  }
}

std::shared_ptr<WorkerPool::TaskGroup> WorkerPool::PickGroup(
    int worker_id) const {
  std::shared_ptr<TaskGroup> best;
  for (const std::shared_ptr<TaskGroup>& g : groups_) {
    if (!g->Claimable(worker_id)) continue;
    // groups_ is in submission order, so the first claimable group of
    // the best priority is also the FIFO winner within that priority.
    if (best == nullptr || g->options.priority > best->options.priority) {
      best = g;
    }
  }
  return best;
}

void WorkerPool::RunOneTask(const std::shared_ptr<TaskGroup>& group,
                            std::unique_lock<std::mutex>& lock) {
  const size_t task = group->next++;
  ++group->active;
  lock.unlock();
  Status st = (*group->fn)(task);
  lock.lock();
  --group->active;
  ++group->completed;
  if (!st.ok()) {
    group->abort = true;
    if (group->first_error.ok()) group->first_error = std::move(st);
  }
  if (group->AllDone()) {
    groups_.erase(std::find(groups_.begin(), groups_.end(), group));
  }
  // Wake drivers on every completion: the owning driver may now claim
  // again (a worker slot freed under max_workers) or observe AllDone.
  done_cv_.notify_all();
}

void WorkerPool::WorkerLoop(int worker_id) {
  tls_worker_id = worker_id;
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    std::shared_ptr<TaskGroup> group = PickGroup(worker_id);
    if (group == nullptr) {
      if (shutdown_) return;
      work_cv_.wait(lock);
      continue;
    }
    RunOneTask(group, lock);
  }
}

Status WorkerPool::ParallelFor(
    size_t num_tasks, const std::function<Status(size_t task)>& fn,
    const TaskGroupOptions& options) {
  if (num_tasks == 0) return Status::OK();
  BYPASS_CHECK_MSG(tls_worker_id == 0,
                   "ParallelFor must not be called from a pool worker "
                   "(tasks are not reentrant)");
  auto group = std::make_shared<TaskGroup>();
  group->fn = &fn;
  group->num_tasks = num_tasks;
  group->options = options;

  std::unique_lock<std::mutex> lock(mu_);
  group->seq = ++group_seq_;
  groups_.push_back(group);
  work_cv_.notify_all();
  // The caller drives its own group as worker 0 (its tls id is 0); when
  // the group's worker cap is reached it waits for completions, resuming
  // claims as slots free up.
  while (!group->AllDone()) {
    if (group->Claimable(/*worker_id=*/0)) {
      RunOneTask(group, lock);
      continue;
    }
    done_cv_.wait(lock);
  }
  return group->first_error;
}

}  // namespace bypass
