// Disjoint multiset union: forwards rows from both ports unchanged and
// finishes once both inputs have finished. Re-unites bypass streams.
// Parallel-safe without locking: Consume is stateless forwarding, and
// finished_inputs_ is only touched on the finish path, which always runs
// single-threaded on the driver after the worker pool has drained.
#ifndef BYPASSDB_EXEC_UNION_OP_H_
#define BYPASSDB_EXEC_UNION_OP_H_

#include <string>

#include "exec/phys_op.h"

namespace bypass {

class UnionAllOp : public PhysOp {
 public:
  UnionAllOp() = default;

  void Reset() override { finished_inputs_ = 0; }
  Status Consume(int in_port, RowBatch batch) override;
  Status FinishPort(int in_port) override;
  std::string Label() const override { return "UnionAll"; }

 private:
  int finished_inputs_ = 0;
};

}  // namespace bypass

#endif  // BYPASSDB_EXEC_UNION_OP_H_
