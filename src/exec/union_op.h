// Disjoint multiset union: forwards rows from all input ports unchanged
// and finishes once every input has finished. Re-unites bypass streams —
// the two ports of a binary σ± cascade, or the k+1 tagged streams of a
// k-way bypass partition. Parallel-safe without locking: Consume is
// stateless forwarding, and finished_inputs_ is only touched on the
// finish path, which always runs single-threaded on the driver after the
// worker pool has drained. Determinism is inherited from Emit/EmitFinish:
// each worker's batches forward in arrival order and pending rows flush
// in worker order, so k tagged streams merge exactly as the equivalent
// cascade's streams did.
#ifndef BYPASSDB_EXEC_UNION_OP_H_
#define BYPASSDB_EXEC_UNION_OP_H_

#include <string>

#include "exec/phys_op.h"

namespace bypass {

class UnionAllOp : public PhysOp {
 public:
  /// `num_inputs` producers will be wired in; end-of-stream propagates
  /// after that many FinishPort calls.
  explicit UnionAllOp(int num_inputs = 2) : num_inputs_(num_inputs) {}

  void Reset() override { finished_inputs_ = 0; }
  Status Consume(int in_port, RowBatch batch) override;
  Status FinishPort(int in_port) override;
  std::string Label() const override { return "UnionAll"; }

 private:
  const int num_inputs_;
  int finished_inputs_ = 0;
};

}  // namespace bypass

#endif  // BYPASSDB_EXEC_UNION_OP_H_
