#include "exec/union_op.h"

#include "common/check.h"

namespace bypass {

Status UnionAllOp::Consume(int, RowBatch batch) {
  return Emit(kPortOut, std::move(batch));
}

Status UnionAllOp::FinishPort(int) {
  ++finished_inputs_;
  BYPASS_CHECK_MSG(finished_inputs_ <= num_inputs_,
                   "union input finished twice");
  if (finished_inputs_ == num_inputs_) {
    return EmitFinish(kPortOut);
  }
  return Status::OK();
}

}  // namespace bypass
