// Per-execution runtime state shared by all operators of one (sub)plan
// execution: the correlation row, the time budget, cancellation, and
// counters reported by EXPLAIN ANALYZE-style output and the benchmarks.
//
// Threading contract (see DESIGN.md §5): during a morsel-parallel phase
// the context is read concurrently by all workers, so every field
// mutated mid-execution (cancellation) is atomic, and statistics are
// routed to per-worker slots aggregated after the run. Fields set before
// RunPlan (deadline, batch size, worker count) are immutable while rows
// flow.
#ifndef BYPASSDB_EXEC_EXEC_CONTEXT_H_
#define BYPASSDB_EXEC_EXEC_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "exec/worker_pool.h"
#include "storage/spill.h"
#include "types/row.h"
#include "types/row_batch.h"

namespace bypass {

/// Default rows per morsel (QueryOptions::morsel_size): small enough to
/// load-balance the small-table end of the study, large enough that a
/// morsel amortizes several batches of dispatch overhead.
inline constexpr size_t kDefaultMorselSize = 4096;

/// Query-level statistics, shared between a query's main plan and all of
/// its subplan executions.
struct ExecStats {
  int64_t rows_scanned = 0;
  int64_t rows_emitted = 0;
  int64_t subquery_executions = 0;
  int64_t subquery_cache_hits = 0;
  /// Scan batches emitted with typed columns attached (0 when the
  /// columnar path is disabled — the row-oracle mode of the
  /// differential tests and benches).
  int64_t columnar_batches = 0;
  /// Batches partitioned by a k-way tagged bypass operator (0 when no
  /// tagged plan ran — the smoke probe's negative control).
  int64_t tagged_batches = 0;
  /// Per-output-stream row counts of the k-way tagged partitions: entry
  /// i < k counts rows whose first TRUE disjunct was i, the last entry
  /// counts the remainder stream. Sized on first use; attribution data
  /// for the BENCH_PR6 sweep.
  std::vector<int64_t> tagged_stream_rows;
  /// Segment-storage counters: segments consulted by scans, segments
  /// whose zone maps proved the pushed-down predicate unsatisfiable, and
  /// the rows those skips avoided touching.
  int64_t segments_scanned = 0;
  int64_t segments_skipped = 0;
  int64_t zone_skip_rows = 0;
  /// Spill counters: bytes/rows written to temp files, files created,
  /// external-sort runs, and Grace hash-join partitions processed.
  int64_t spilled_bytes = 0;
  int64_t spilled_rows = 0;
  int64_t spill_files = 0;
  int64_t sort_spill_runs = 0;
  int64_t join_spill_partitions = 0;

  void Add(const ExecStats& other) {
    rows_scanned += other.rows_scanned;
    rows_emitted += other.rows_emitted;
    subquery_executions += other.subquery_executions;
    subquery_cache_hits += other.subquery_cache_hits;
    columnar_batches += other.columnar_batches;
    tagged_batches += other.tagged_batches;
    segments_scanned += other.segments_scanned;
    segments_skipped += other.segments_skipped;
    zone_skip_rows += other.zone_skip_rows;
    spilled_bytes += other.spilled_bytes;
    spilled_rows += other.spilled_rows;
    spill_files += other.spill_files;
    sort_spill_runs += other.sort_spill_runs;
    join_spill_partitions += other.join_spill_partitions;
    if (tagged_stream_rows.size() < other.tagged_stream_rows.size()) {
      tagged_stream_rows.resize(other.tagged_stream_rows.size(), 0);
    }
    for (size_t i = 0; i < other.tagged_stream_rows.size(); ++i) {
      tagged_stream_rows[i] += other.tagged_stream_rows[i];
    }
  }
};

/// One cache-line-padded ExecStats per worker, shared by the main plan
/// and every subplan context of a parallel query. Each worker writes only
/// its own slot (indexed by CurrentWorkerId()); the engine aggregates the
/// slots into the user-visible ExecStats after the run.
struct alignas(64) ExecStatsSlot {
  ExecStats stats;
};
using SharedWorkerStats = std::shared_ptr<std::vector<ExecStatsSlot>>;

/// Memory accounting for one query execution, shared by the main plan's
/// context and every subplan context. Buffering operators charge an
/// approximation of the bytes they retain; once `used` exceeds a non-zero
/// `limit` the query fails with ResourceExhausted instead of growing
/// without bound. The serving layer (engine/server.h) hands per-query
/// budgets out of its process-wide budget through this hook.
struct MemoryBudget {
  std::atomic<int64_t> used{0};
  int64_t limit = 0;  ///< bytes; 0 = track only, never fail
};
using SharedMemoryBudget = std::shared_ptr<MemoryBudget>;

/// Rough retained-bytes estimate for `rows` buffered rows of `width`
/// Values each (vector headers included; string payloads are not
/// inspected — the budget bounds growth, it is not an allocator).
inline int64_t ApproxRowsBytes(size_t rows, size_t width) {
  return static_cast<int64_t>(rows) *
         static_cast<int64_t>(width * sizeof(Value) + sizeof(Row));
}

class ExecContext {
 public:
  ExecContext() = default;
  ExecContext(const ExecContext&) = delete;
  ExecContext& operator=(const ExecContext&) = delete;

  /// The enclosing block's current tuple during subplan execution;
  /// nullptr for top-level plans.
  const Row* outer_row() const { return outer_row_; }
  void set_outer_row(const Row* row) { outer_row_ = row; }

  /// Arms a wall-clock budget; Status::Timeout is raised from scans and
  /// other long-running loops once exceeded.
  void set_deadline(std::chrono::steady_clock::time_point deadline) {
    deadline_ = deadline;
    has_deadline_ = true;
  }
  void clear_deadline() { has_deadline_ = false; }

  /// Early-termination flag (EXISTS probing, LIMIT); producers poll it.
  /// Written by sinks on worker threads, hence atomic; relaxed order is
  /// enough — it only accelerates shutdown, correctness never depends on
  /// observing it promptly.
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }
  void set_cancelled(bool v) {
    cancelled_.store(v, std::memory_order_relaxed);
  }

  /// When set, the collector sink cancels the execution after the first
  /// result row (EXISTS only needs one witness).
  bool limit_one() const { return limit_one_; }
  void set_limit_one(bool v) { limit_one_ = v; }

  /// Stats sink for the current worker: with per-worker slots installed
  /// (parallel queries) each worker gets its own padded slot; otherwise
  /// the single user-provided struct.
  ExecStats* stats() {
    if (worker_stats_ != nullptr) {
      return &(*worker_stats_)[static_cast<size_t>(CurrentWorkerId())]
                  .stats;
    }
    return stats_;
  }
  void set_stats(ExecStats* stats) { stats_ = stats; }
  void set_worker_stats(SharedWorkerStats worker_stats) {
    worker_stats_ = std::move(worker_stats);
  }
  const SharedWorkerStats& worker_stats() const { return worker_stats_; }

  /// Rows per batch flowing between operators. 1 degenerates to the
  /// original row-at-a-time execution (the differential-test oracle).
  size_t batch_size() const { return batch_size_; }
  void set_batch_size(size_t n) { batch_size_ = n == 0 ? 1 : n; }

  /// Whether scans attach typed columns to emitted batches, enabling the
  /// columnar predicate/aggregate kernels. Off = the row-oracle mode the
  /// columnar differential tests compare against. Set before RunPlan,
  /// immutable while rows flow.
  bool columnar_enabled() const { return columnar_enabled_; }
  void set_columnar_enabled(bool v) { columnar_enabled_ = v; }

  /// Rows per morsel handed to a worker in one dispatch.
  size_t morsel_size() const { return morsel_size_; }
  void set_morsel_size(size_t n) {
    morsel_size_ = n == 0 ? kDefaultMorselSize : n;
  }

  /// The pool driving this plan's scan pipelines; nullptr (or a 1-worker
  /// pool) runs the serial executor. Subplan contexts never carry a pool:
  /// nested blocks execute serially on whichever worker evaluates them.
  WorkerPool* pool() const { return pool_; }
  void set_pool(WorkerPool* pool) { pool_ = pool; }

  /// Scheduling parameters the executor passes to WorkerPool::ParallelFor
  /// for this query's morsel rounds: priority, the intra-query worker cap
  /// (num_threads), and the worker-id bound matching num_worker_slots.
  const TaskGroupOptions& task_group_options() const { return sched_; }
  void set_task_group_options(const TaskGroupOptions& opts) {
    sched_ = opts;
  }

  /// Per-query memory accounting; nullptr = unbudgeted (the default for
  /// standalone library use). Shared with every subplan context.
  const SharedMemoryBudget& memory() const { return memory_; }
  void set_memory(SharedMemoryBudget memory) {
    memory_ = std::move(memory);
  }

  /// Charges `bytes` of retained memory against the query's budget;
  /// ResourceExhausted once a non-zero limit is exceeded. Called by
  /// buffering operators (result sink, join build side) at batch
  /// granularity; relaxed order suffices — the check is a bound, not an
  /// exact account.
  Status ChargeMemory(int64_t bytes) {
    if (memory_ == nullptr) return Status::OK();
    const int64_t used =
        memory_->used.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    if (memory_->limit > 0 && used > memory_->limit) {
      return Status::ResourceExhausted(
          "query exceeded its memory budget (" + std::to_string(used) +
          " of " + std::to_string(memory_->limit) + " bytes)");
    }
    return Status::OK();
  }

  /// All-or-nothing variant of ChargeMemory for spill-capable operators:
  /// charges `bytes` and returns true, or rolls the charge back and
  /// returns false when it would exceed the limit — the operator then
  /// spills instead of failing the query. With no budget installed (or
  /// limit 0, track-only) the charge always sticks.
  bool TryChargeMemory(int64_t bytes) {
    if (memory_ == nullptr) return true;
    const int64_t used =
        memory_->used.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    if (memory_->limit > 0 && used > memory_->limit) {
      memory_->used.fetch_sub(bytes, std::memory_order_relaxed);
      return false;
    }
    return true;
  }

  /// Returns previously charged bytes to the budget (a spill released
  /// the buffer, or a partition finished probing).
  void ReleaseMemory(int64_t bytes) {
    if (memory_ != nullptr && bytes != 0) {
      memory_->used.fetch_sub(bytes, std::memory_order_relaxed);
    }
  }

  /// Spill-file factory for budget-constrained buffering operators;
  /// nullptr disables spilling (budget overruns then surface as
  /// ResourceExhausted exactly as before).
  SpillManager* spill() const { return spill_.get(); }
  void set_spill(std::shared_ptr<SpillManager> spill) {
    spill_ = std::move(spill);
  }
  const std::shared_ptr<SpillManager>& shared_spill() const {
    return spill_;
  }

  /// Whether scans consult table zone maps to skip segments their
  /// pushed-down predicate cannot match. Set before RunPlan.
  bool zone_maps_enabled() const { return zone_maps_enabled_; }
  void set_zone_maps_enabled(bool v) { zone_maps_enabled_ = v; }

  /// Whether scans read through the compressed segment store (decompress
  /// per segment) instead of borrowing the table's flat columns — the
  /// out-of-core read path. Off by default: flat scans stay zero-copy.
  bool scan_from_segments() const { return scan_from_segments_; }
  void set_scan_from_segments(bool v) { scan_from_segments_ = v; }

  /// Number of per-worker state slots operators must allocate. This is
  /// the *query's* worker count even for (serial) subplan contexts,
  /// because a subplan runs on the worker thread that evaluates it and
  /// its operators index state by that worker's id.
  int num_worker_slots() const { return num_worker_slots_; }
  void set_num_worker_slots(int n) {
    num_worker_slots_ = n < 1 ? 1 : n;
  }

  /// Cheap periodic budget check; called once per batch by sources and
  /// every few thousand pairs inside nested-loop operators.
  Status CheckBudget() const {
    if (has_deadline_ &&
        std::chrono::steady_clock::now() > deadline_) {
      return Status::Timeout("query exceeded its time budget");
    }
    return Status::OK();
  }

  bool has_deadline() const { return has_deadline_; }
  std::chrono::steady_clock::time_point deadline() const {
    return deadline_;
  }

 private:
  const Row* outer_row_ = nullptr;
  size_t batch_size_ = kDefaultBatchSize;
  bool columnar_enabled_ = true;
  size_t morsel_size_ = kDefaultMorselSize;
  WorkerPool* pool_ = nullptr;
  TaskGroupOptions sched_;
  SharedMemoryBudget memory_;
  std::shared_ptr<SpillManager> spill_;
  bool zone_maps_enabled_ = true;
  bool scan_from_segments_ = false;
  int num_worker_slots_ = 1;
  std::chrono::steady_clock::time_point deadline_{};
  bool has_deadline_ = false;
  std::atomic<bool> cancelled_{false};
  bool limit_one_ = false;
  ExecStats* stats_ = nullptr;
  SharedWorkerStats worker_stats_;
};

}  // namespace bypass

#endif  // BYPASSDB_EXEC_EXEC_CONTEXT_H_
