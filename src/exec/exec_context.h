// Per-execution runtime state shared by all operators of one (sub)plan
// execution: the correlation row, the time budget, cancellation, and
// counters reported by EXPLAIN ANALYZE-style output and the benchmarks.
#ifndef BYPASSDB_EXEC_EXEC_CONTEXT_H_
#define BYPASSDB_EXEC_EXEC_CONTEXT_H_

#include <chrono>
#include <cstdint>

#include "common/status.h"
#include "types/row.h"
#include "types/row_batch.h"

namespace bypass {

/// Query-level statistics, shared between a query's main plan and all of
/// its subplan executions.
struct ExecStats {
  int64_t rows_scanned = 0;
  int64_t rows_emitted = 0;
  int64_t subquery_executions = 0;
  int64_t subquery_cache_hits = 0;
};

class ExecContext {
 public:
  ExecContext() = default;

  /// The enclosing block's current tuple during subplan execution;
  /// nullptr for top-level plans.
  const Row* outer_row() const { return outer_row_; }
  void set_outer_row(const Row* row) { outer_row_ = row; }

  /// Arms a wall-clock budget; Status::Timeout is raised from scans and
  /// other long-running loops once exceeded.
  void set_deadline(std::chrono::steady_clock::time_point deadline) {
    deadline_ = deadline;
    has_deadline_ = true;
  }
  void clear_deadline() { has_deadline_ = false; }

  /// Early-termination flag (EXISTS probing); producers poll it.
  bool cancelled() const { return cancelled_; }
  void set_cancelled(bool v) { cancelled_ = v; }

  /// When set, the collector sink cancels the execution after the first
  /// result row (EXISTS only needs one witness).
  bool limit_one() const { return limit_one_; }
  void set_limit_one(bool v) { limit_one_ = v; }

  ExecStats* stats() { return stats_; }
  void set_stats(ExecStats* stats) { stats_ = stats; }

  /// Rows per batch flowing between operators. 1 degenerates to the
  /// original row-at-a-time execution (the differential-test oracle).
  size_t batch_size() const { return batch_size_; }
  void set_batch_size(size_t n) { batch_size_ = n == 0 ? 1 : n; }

  /// Cheap periodic budget check; called once per batch by sources and
  /// every few thousand pairs inside nested-loop operators.
  Status CheckBudget() const {
    if (has_deadline_ &&
        std::chrono::steady_clock::now() > deadline_) {
      return Status::Timeout("query exceeded its time budget");
    }
    return Status::OK();
  }

  bool has_deadline() const { return has_deadline_; }
  std::chrono::steady_clock::time_point deadline() const {
    return deadline_;
  }

 private:
  const Row* outer_row_ = nullptr;
  size_t batch_size_ = kDefaultBatchSize;
  std::chrono::steady_clock::time_point deadline_{};
  bool has_deadline_ = false;
  bool cancelled_ = false;
  bool limit_one_ = false;
  ExecStats* stats_ = nullptr;
};

}  // namespace bypass

#endif  // BYPASSDB_EXEC_EXEC_CONTEXT_H_
