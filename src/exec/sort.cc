#include "exec/sort.h"

#include <algorithm>

namespace bypass {

Status SortPhysOp::Prepare(ExecContext* ctx) {
  BYPASS_RETURN_IF_ERROR(UnaryPhysOp::Prepare(ctx));
  partials_.resize(static_cast<size_t>(ctx->num_worker_slots()));
  return Status::OK();
}

void SortPhysOp::Reset() {
  for (Partial& p : partials_) p.rows.clear();
}

Status SortPhysOp::Consume(int, RowBatch batch) {
  batch.ConsumeRowsInto(
      &partials_[static_cast<size_t>(CurrentWorkerId())].rows);
  return Status::OK();
}

Status SortPhysOp::FinishPort(int) {
  // Merge the per-worker buffers (worker order; serial runs keep their
  // arrival order exactly), then sort the union. The single-partial case
  // (serial runs) stays a wholesale move; with several non-empty
  // partials one up-front reservation covers the whole union.
  size_t total = 0;
  for (const Partial& p : partials_) total += p.rows.size();
  std::vector<Row> buffer;
  for (Partial& p : partials_) {
    if (buffer.empty()) {
      buffer = std::move(p.rows);
      if (buffer.size() < total) buffer.reserve(total);
    } else {
      buffer.insert(buffer.end(),
                    std::make_move_iterator(p.rows.begin()),
                    std::make_move_iterator(p.rows.end()));
    }
    p.rows.clear();
  }
  // Precompute key rows so the comparator never fails mid-sort.
  std::vector<std::pair<Row, size_t>> keyed;
  keyed.reserve(buffer.size());
  for (size_t i = 0; i < buffer.size(); ++i) {
    EvalContext ectx{&buffer[i], ctx_->outer_row()};
    Row key;
    key.reserve(keys_.size());
    for (const PhysSortKey& k : keys_) {
      BYPASS_ASSIGN_OR_RETURN(Value v, k.expr->Eval(ectx));
      key.push_back(std::move(v));
    }
    keyed.emplace_back(std::move(key), i);
  }
  std::stable_sort(
      keyed.begin(), keyed.end(),
      [this](const auto& a, const auto& b) {
        for (size_t i = 0; i < keys_.size(); ++i) {
          const int c = a.first[i].OrderCompare(b.first[i]);
          if (c != 0) return keys_[i].descending ? c > 0 : c < 0;
        }
        return a.second < b.second;  // stability by merged arrival order
      });
  for (const auto& [key, idx] : keyed) {
    BYPASS_RETURN_IF_ERROR(EmitRow(kPortOut, std::move(buffer[idx])));
  }
  return EmitFinish(kPortOut);
}

}  // namespace bypass
