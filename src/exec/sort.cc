#include "exec/sort.h"

#include <algorithm>

namespace bypass {

namespace {
/// (key row, arrival index) pairs — aliased so the comma survives the
/// ASSIGN_OR_RETURN macro.
using KeyedRows = std::vector<std::pair<Row, size_t>>;
}  // namespace

Status SortPhysOp::Prepare(ExecContext* ctx) {
  BYPASS_RETURN_IF_ERROR(UnaryPhysOp::Prepare(ctx));
  partials_.resize(static_cast<size_t>(ctx->num_worker_slots()));
  return Status::OK();
}

void SortPhysOp::Reset() {
  for (Partial& p : partials_) {
    p.rows.clear();
    p.charged = 0;
    p.runs.clear();
  }
}

int SortPhysOp::CompareKeys(const Row& a, const Row& b) const {
  for (size_t i = 0; i < keys_.size(); ++i) {
    const int c = a[i].OrderCompare(b[i]);
    if (c != 0) return keys_[i].descending ? -c : c;
  }
  return 0;
}

Result<std::vector<std::pair<Row, size_t>>> SortPhysOp::SortKeyed(
    const std::vector<Row>& rows) const {
  // Precompute key rows so the comparator never fails mid-sort.
  std::vector<std::pair<Row, size_t>> keyed;
  keyed.reserve(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    EvalContext ectx{&rows[i], ctx_->outer_row()};
    Row key;
    key.reserve(keys_.size());
    for (const PhysSortKey& k : keys_) {
      BYPASS_ASSIGN_OR_RETURN(Value v, k.expr->Eval(ectx));
      key.push_back(std::move(v));
    }
    keyed.emplace_back(std::move(key), i);
  }
  std::stable_sort(keyed.begin(), keyed.end(),
                   [this](const auto& a, const auto& b) {
                     const int c = CompareKeys(a.first, b.first);
                     if (c != 0) return c < 0;
                     return a.second < b.second;
                   });
  return keyed;
}

Status SortPhysOp::SpillRun(Partial* partial) {
  if (partial->rows.empty()) return Status::OK();
  BYPASS_ASSIGN_OR_RETURN(KeyedRows keyed, SortKeyed(partial->rows));
  BYPASS_ASSIGN_OR_RETURN(std::unique_ptr<SpillFile> run,
                          ctx_->spill()->NewFile("sortrun"));
  for (const auto& [key, idx] : keyed) {
    BYPASS_RETURN_IF_ERROR(
        run->AppendRow(ConcatRows(key, partial->rows[idx])));
  }
  BYPASS_RETURN_IF_ERROR(run->FinishWrite());
  if (ExecStats* stats = ctx_->stats(); stats != nullptr) {
    ++stats->sort_spill_runs;
    ++stats->spill_files;
    stats->spilled_rows += run->rows_written();
    stats->spilled_bytes += run->bytes_written();
  }
  partial->runs.push_back(std::move(run));
  partial->rows.clear();
  ctx_->ReleaseMemory(partial->charged);
  partial->charged = 0;
  return Status::OK();
}

Status SortPhysOp::Consume(int, RowBatch batch) {
  Partial& partial = partials_[static_cast<size_t>(CurrentWorkerId())];
  // The buffered input is the sort's whole footprint; it pays into the
  // budget like the join build side does.
  const int64_t bytes = ApproxRowsBytes(
      batch.size(), batch.size() > 0 ? batch.row(0).size() : 0);
  if (ctx_->spill() != nullptr && ctx_->memory() != nullptr) {
    if (ctx_->TryChargeMemory(bytes)) {
      partial.charged += bytes;
      batch.ConsumeRowsInto(&partial.rows);
      return Status::OK();
    }
    // Over budget: take the batch uncharged, then turn the worker's
    // whole buffer into a sorted run to release its charges.
    batch.ConsumeRowsInto(&partial.rows);
    return SpillRun(&partial);
  }
  BYPASS_RETURN_IF_ERROR(ctx_->ChargeMemory(bytes));
  batch.ConsumeRowsInto(&partial.rows);
  return Status::OK();
}

Status SortPhysOp::MergeRuns(
    std::vector<std::unique_ptr<SpillFile>> runs,
    std::vector<Row>* buffer,
    std::vector<std::pair<Row, size_t>>* keyed) {
  // One cursor per run holding its current key ++ payload record; the
  // sorted in-memory remainder joins the merge as the last stream, so
  // cross-stream key ties resolve run-first in spill order.
  struct Cursor {
    SpillFile* file;
    Row current;
    bool done = false;
  };
  std::vector<Cursor> cursors;
  cursors.reserve(runs.size());
  for (const std::unique_ptr<SpillFile>& run : runs) {
    Cursor c{run.get(), Row{}, false};
    BYPASS_RETURN_IF_ERROR(c.file->OpenRead());
    BYPASS_ASSIGN_OR_RETURN(bool more, c.file->ReadRow(&c.current));
    c.done = !more;
    cursors.push_back(std::move(c));
  }
  const size_t key_width = keys_.size();
  size_t rest = 0;  // next unconsumed entry of the sorted remainder
  while (true) {
    // Linear min-scan (run counts are small: one per budget-full of
    // input per worker); ties keep the earliest stream.
    int best = -1;
    for (size_t s = 0; s < cursors.size(); ++s) {
      if (cursors[s].done) continue;
      if (best < 0 || CompareKeys(cursors[s].current,
                                  cursors[static_cast<size_t>(best)]
                                      .current) < 0) {
        best = static_cast<int>(s);
      }
    }
    const bool rest_left = rest < keyed->size();
    if (best < 0 && !rest_left) break;
    if (best >= 0 &&
        (!rest_left ||
         CompareKeys(cursors[static_cast<size_t>(best)].current,
                     (*keyed)[rest].first) <= 0)) {
      Cursor& c = cursors[static_cast<size_t>(best)];
      Row out;
      out.reserve(c.current.size() - key_width);
      for (size_t i = key_width; i < c.current.size(); ++i) {
        out.push_back(std::move(c.current[i]));
      }
      BYPASS_RETURN_IF_ERROR(EmitRow(kPortOut, std::move(out)));
      BYPASS_ASSIGN_OR_RETURN(bool more, c.file->ReadRow(&c.current));
      c.done = !more;
    } else {
      BYPASS_RETURN_IF_ERROR(EmitRow(
          kPortOut, std::move((*buffer)[(*keyed)[rest].second])));
      ++rest;
    }
  }
  return Status::OK();
}

Status SortPhysOp::FinishPort(int) {
  // Collect the workers' run files (worker order = spill order within a
  // worker), then merge the per-worker in-memory buffers (worker order;
  // serial runs keep their arrival order exactly) and sort the union.
  // The single-partial case (serial runs) stays a wholesale move; with
  // several non-empty partials one up-front reservation covers the
  // whole union.
  std::vector<std::unique_ptr<SpillFile>> runs;
  int64_t charged = 0;
  size_t total = 0;
  for (Partial& p : partials_) {
    for (std::unique_ptr<SpillFile>& run : p.runs) {
      runs.push_back(std::move(run));
    }
    p.runs.clear();
    charged += p.charged;
    p.charged = 0;
    total += p.rows.size();
  }
  std::vector<Row> buffer;
  for (Partial& p : partials_) {
    if (buffer.empty()) {
      buffer = std::move(p.rows);
      if (buffer.size() < total) buffer.reserve(total);
    } else {
      buffer.insert(buffer.end(),
                    std::make_move_iterator(p.rows.begin()),
                    std::make_move_iterator(p.rows.end()));
    }
    p.rows.clear();
  }
  BYPASS_ASSIGN_OR_RETURN(KeyedRows keyed, SortKeyed(buffer));
  if (runs.empty()) {
    for (const auto& [key, idx] : keyed) {
      BYPASS_RETURN_IF_ERROR(EmitRow(kPortOut, std::move(buffer[idx])));
    }
    return EmitFinish(kPortOut);
  }
  BYPASS_RETURN_IF_ERROR(MergeRuns(std::move(runs), &buffer, &keyed));
  ctx_->ReleaseMemory(charged);
  return EmitFinish(kPortOut);
}

}  // namespace bypass
