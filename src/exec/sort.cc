#include "exec/sort.h"

#include <algorithm>

namespace bypass {

Status SortPhysOp::Consume(int, RowBatch batch) {
  batch.ConsumeRowsInto(&buffer_);
  return Status::OK();
}

Status SortPhysOp::FinishPort(int) {
  // Precompute key rows so the comparator never fails mid-sort.
  std::vector<std::pair<Row, size_t>> keyed;
  keyed.reserve(buffer_.size());
  for (size_t i = 0; i < buffer_.size(); ++i) {
    EvalContext ectx{&buffer_[i], ctx_->outer_row()};
    Row key;
    key.reserve(keys_.size());
    for (const PhysSortKey& k : keys_) {
      BYPASS_ASSIGN_OR_RETURN(Value v, k.expr->Eval(ectx));
      key.push_back(std::move(v));
    }
    keyed.emplace_back(std::move(key), i);
  }
  std::stable_sort(
      keyed.begin(), keyed.end(),
      [this](const auto& a, const auto& b) {
        for (size_t i = 0; i < keys_.size(); ++i) {
          const int c = a.first[i].OrderCompare(b.first[i]);
          if (c != 0) return keys_[i].descending ? c > 0 : c < 0;
        }
        return a.second < b.second;  // stability by arrival order
      });
  for (const auto& [key, idx] : keyed) {
    BYPASS_RETURN_IF_ERROR(EmitRow(kPortOut, std::move(buffer_[idx])));
  }
  buffer_.clear();
  return EmitFinish(kPortOut);
}

}  // namespace bypass
