#include "exec/filter.h"

namespace bypass {

Status FilterOp::Consume(int, RowBatch batch) {
  sel_true_.clear();
  BYPASS_RETURN_IF_ERROR(predicate_->PartitionBatch(
      batch, ctx_->outer_row(), &sel_true_, nullptr, nullptr));
  batch.selection().swap(sel_true_);
  return Emit(kPortOut, std::move(batch));
}

Status BypassFilterOp::Consume(int, RowBatch batch) {
  // One predicate pass partitions the selection vector: positive stream
  // keeps the batch (selection replaced), the negative stream gets a view
  // over the same storage. False and unknown both route negative
  // (two-valued on NULL-free data, SQL-correct beyond), in input order.
  sel_true_.clear();
  sel_other_.clear();
  BYPASS_RETURN_IF_ERROR(predicate_->PartitionBatch(
      batch, ctx_->outer_row(), &sel_true_, &sel_other_, &sel_other_));
  RowBatch negative = batch.ShareWithSelection(std::move(sel_other_));
  batch.selection().swap(sel_true_);
  BYPASS_RETURN_IF_ERROR(Emit(kPortOut, std::move(batch)));
  return Emit(kPortNegative, std::move(negative));
}

}  // namespace bypass
