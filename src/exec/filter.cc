#include "exec/filter.h"

namespace bypass {

Status FilterOp::Prepare(ExecContext* ctx) {
  BYPASS_RETURN_IF_ERROR(UnaryPhysOp::Prepare(ctx));
  scratch_.resize(static_cast<size_t>(ctx->num_worker_slots()));
  return Status::OK();
}

Status FilterOp::Consume(int, RowBatch batch) {
  Scratch& scratch = scratch_[static_cast<size_t>(CurrentWorkerId())];
  scratch.sel_true.clear();
  scratch.sel_true.reserve(batch.size());
  BYPASS_RETURN_IF_ERROR(predicate_->PartitionBatch(
      batch, ctx_->outer_row(), &scratch.sel_true, nullptr, nullptr));
  if (scratch.sel_true.size() == batch.size()) {
    // Nothing dropped: the selection is unchanged, so keep the batch
    // (and its dense flag) as-is instead of swapping in an equal vector.
    return Emit(kPortOut, std::move(batch));
  }
  const bool was_dense = batch.dense();
  batch.selection().swap(scratch.sel_true);
  // A partition of a dense run stays sorted but is only still dense when
  // it kept a contiguous prefix-to-suffix run; cheap to detect, big win
  // for downstream storage-indexed loops.
  if (was_dense && !batch.empty() &&
      batch.selection().back() - batch.selection().front() + 1 ==
          batch.size()) {
    batch.MarkDense();
  }
  return Emit(kPortOut, std::move(batch));
}

Status BypassFilterOp::Prepare(ExecContext* ctx) {
  BYPASS_RETURN_IF_ERROR(UnaryPhysOp::Prepare(ctx));
  scratch_.resize(static_cast<size_t>(ctx->num_worker_slots()));
  return Status::OK();
}

Status BypassFilterOp::Consume(int, RowBatch batch) {
  // One predicate pass partitions the selection vector: positive stream
  // keeps the batch (selection replaced), the negative stream gets a view
  // over the same storage. False and unknown both route negative
  // (two-valued on NULL-free data, SQL-correct beyond), in input order.
  Scratch& scratch = scratch_[static_cast<size_t>(CurrentWorkerId())];
  scratch.sel_true.clear();
  scratch.sel_true.reserve(batch.size());
  scratch.sel_other.clear();
  BYPASS_RETURN_IF_ERROR(predicate_->PartitionBatch(
      batch, ctx_->outer_row(), &scratch.sel_true, &scratch.sel_other,
      &scratch.sel_other));
  const bool was_dense = batch.dense();
  RowBatch negative =
      batch.ShareWithSelection(std::move(scratch.sel_other));
  scratch.sel_other.clear();
  if (scratch.sel_true.size() != batch.size()) {
    batch.selection().swap(scratch.sel_true);
    if (was_dense && !batch.empty() &&
        batch.selection().back() - batch.selection().front() + 1 ==
            batch.size()) {
      batch.MarkDense();
    }
  }
  if (was_dense && !negative.empty() &&
      negative.selection().back() - negative.selection().front() + 1 ==
          negative.size()) {
    negative.MarkDense();
  }
  BYPASS_RETURN_IF_ERROR(Emit(kPortOut, std::move(batch)));
  return Emit(kPortNegative, std::move(negative));
}

}  // namespace bypass
