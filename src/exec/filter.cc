#include "exec/filter.h"

namespace bypass {

Status FilterOp::Consume(int, Row row) {
  EvalContext ectx{&row, ctx_->outer_row()};
  BYPASS_ASSIGN_OR_RETURN(Value v, predicate_->Eval(ectx));
  if (ValueToTriBool(v) == TriBool::kTrue) {
    return Emit(kPortOut, std::move(row));
  }
  return Status::OK();
}

Status BypassFilterOp::Consume(int, Row row) {
  EvalContext ectx{&row, ctx_->outer_row()};
  BYPASS_ASSIGN_OR_RETURN(Value v, predicate_->Eval(ectx));
  // Positive stream: predicate true. Negative stream: false or unknown
  // (two-valued on NULL-free data, SQL-correct beyond).
  if (ValueToTriBool(v) == TriBool::kTrue) {
    return Emit(kPortOut, std::move(row));
  }
  return Emit(kPortNegative, std::move(row));
}

}  // namespace bypass
