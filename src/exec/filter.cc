#include "exec/filter.h"

namespace bypass {

Status FilterOp::Prepare(ExecContext* ctx) {
  BYPASS_RETURN_IF_ERROR(UnaryPhysOp::Prepare(ctx));
  scratch_.resize(static_cast<size_t>(ctx->num_worker_slots()));
  return Status::OK();
}

Status FilterOp::Consume(int, RowBatch batch) {
  Scratch& scratch = scratch_[static_cast<size_t>(CurrentWorkerId())];
  scratch.sel_true.clear();
  BYPASS_RETURN_IF_ERROR(predicate_->PartitionBatch(
      batch, ctx_->outer_row(), &scratch.sel_true, nullptr, nullptr));
  batch.selection().swap(scratch.sel_true);
  return Emit(kPortOut, std::move(batch));
}

Status BypassFilterOp::Prepare(ExecContext* ctx) {
  BYPASS_RETURN_IF_ERROR(UnaryPhysOp::Prepare(ctx));
  scratch_.resize(static_cast<size_t>(ctx->num_worker_slots()));
  return Status::OK();
}

Status BypassFilterOp::Consume(int, RowBatch batch) {
  // One predicate pass partitions the selection vector: positive stream
  // keeps the batch (selection replaced), the negative stream gets a view
  // over the same storage. False and unknown both route negative
  // (two-valued on NULL-free data, SQL-correct beyond), in input order.
  Scratch& scratch = scratch_[static_cast<size_t>(CurrentWorkerId())];
  scratch.sel_true.clear();
  scratch.sel_other.clear();
  BYPASS_RETURN_IF_ERROR(predicate_->PartitionBatch(
      batch, ctx_->outer_row(), &scratch.sel_true, &scratch.sel_other,
      &scratch.sel_other));
  RowBatch negative =
      batch.ShareWithSelection(std::move(scratch.sel_other));
  scratch.sel_other.clear();
  batch.selection().swap(scratch.sel_true);
  BYPASS_RETURN_IF_ERROR(Emit(kPortOut, std::move(batch)));
  return Emit(kPortNegative, std::move(negative));
}

}  // namespace bypass
