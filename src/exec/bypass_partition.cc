#include "exec/bypass_partition.h"

#include "common/check.h"

namespace bypass {

namespace {

/// Lowers one disjunct to a typed partition level against this batch.
/// False when the predicate shape (comparison / LIKE over literals,
/// bound columns and correlated outer refs) or the operand types leave
/// no kernel to run — the caller then takes the generic per-level path.
bool BuildPartitionLevel(const Expr& pred, const RowBatch& batch,
                         const Row* outer_row, PartitionLevel* out) {
  if (pred.kind() == ExprKind::kComparison) {
    const auto& cmp = static_cast<const ComparisonExpr&>(pred);
    out->kind = PartitionLevel::Kind::kCompare;
    out->op = cmp.op();
    if (!ResolveColumnOperand(*cmp.left(), batch, outer_row, &out->l) ||
        !ResolveColumnOperand(*cmp.right(), batch, outer_row, &out->r)) {
      return false;
    }
  } else if (pred.kind() == ExprKind::kLike) {
    const auto& like = static_cast<const LikeExpr&>(pred);
    out->kind = PartitionLevel::Kind::kLike;
    if (!ResolveColumnOperand(*like.input(), batch, outer_row, &out->l)) {
      return false;
    }
    out->pattern = like.pattern();
    out->negated = like.negated();
  } else {
    return false;
  }
  return PartitionLevelApplies(*out);
}

}  // namespace

BypassPartitionKOp::BypassPartitionKOp(std::vector<ExprPtr> predicates)
    : UnaryPhysOp(static_cast<int>(predicates.size()) + 1),
      predicates_(std::move(predicates)) {
  BYPASS_CHECK_MSG(!predicates_.empty(),
                   "k-way bypass partition needs at least one disjunct");
}

Status BypassPartitionKOp::Prepare(ExecContext* ctx) {
  BYPASS_RETURN_IF_ERROR(UnaryPhysOp::Prepare(ctx));
  scratch_.resize(static_cast<size_t>(ctx->num_worker_slots()));
  const size_t k = predicates_.size();
  for (Scratch& s : scratch_) {
    s.streams.resize(k + 1);
    s.outs.resize(k + 1);
    for (size_t i = 0; i <= k; ++i) s.outs[i] = &s.streams[i];
  }
  return Status::OK();
}

Status BypassPartitionKOp::Consume(int, RowBatch batch) {
  const size_t k = predicates_.size();
  Scratch& scratch = scratch_[static_cast<size_t>(CurrentWorkerId())];
  for (std::vector<uint32_t>& s : scratch.streams) s.clear();

  // Fused path: every disjunct lowers to a typed level → one kernel call
  // produces all k+1 selections. Any non-kernel disjunct (subquery
  // residue, unresolved operand, non-string LIKE) drops the whole batch
  // to the level-wise generic path, which keeps identical semantics.
  bool fused = batch.columns() != nullptr;
  if (fused) {
    scratch.levels.clear();
    for (const ExprPtr& p : predicates_) {
      PartitionLevel level;
      if (!BuildPartitionLevel(*p, batch, ctx_->outer_row(), &level)) {
        fused = false;
        break;
      }
      scratch.levels.push_back(level);
    }
  }
  if (fused) {
    ColumnarPartitionKWay(scratch.levels.data(), k, batch,
                          scratch.outs.data(), &scratch.kway);
  } else {
    BYPASS_RETURN_IF_ERROR(PartitionGeneric(batch, &scratch));
  }

  ExecStats* stats = ctx_->stats();
  stats->tagged_batches += 1;
  if (stats->tagged_stream_rows.size() < k + 1) {
    stats->tagged_stream_rows.resize(k + 1, 0);
  }
  const bool was_dense = batch.dense();
  for (size_t i = 0; i <= k; ++i) {
    stats->tagged_stream_rows[i] +=
        static_cast<int64_t>(scratch.streams[i].size());
    // Emit drops empty batches anyway; skipping them here avoids k-1
    // RowBatch round-trips per batch when one disjunct claims everything
    // (and most of the small-batch overhead at batch_size=1).
    if (scratch.streams[i].empty()) continue;
    RowBatch out = batch.ShareWithSelection(std::move(scratch.streams[i]));
    scratch.streams[i].clear();
    // A partition of a dense run stays sorted but is only still dense
    // when it kept a contiguous run; cheap to detect, big win for
    // downstream storage-indexed loops.
    if (was_dense && !out.empty() &&
        out.selection().back() - out.selection().front() + 1 ==
            out.size()) {
      out.MarkDense();
    }
    BYPASS_RETURN_IF_ERROR(Emit(static_cast<int>(i), std::move(out)));
  }
  return Status::OK();
}

Status BypassPartitionKOp::PartitionGeneric(const RowBatch& batch,
                                            Scratch* scratch) {
  const size_t k = predicates_.size();
  const Row* outer = ctx_->outer_row();
  RowBatch sub;
  const RowBatch* cur = &batch;
  for (size_t i = 0; i < k; ++i) {
    std::vector<uint32_t>* rest;
    if (i + 1 == k) {
      rest = &scratch->streams[k];
    } else {
      scratch->rest.clear();
      rest = &scratch->rest;
    }
    BYPASS_RETURN_IF_ERROR(predicates_[i]->PartitionBatch(
        *cur, outer, &scratch->streams[i], rest, rest));
    if (i + 1 < k) {
      if (scratch->rest.empty()) {
        // Every remaining row claimed: later disjuncts see no rows (and
        // the remainder stream stays empty), matching short-circuit.
        return Status::OK();
      }
      sub = batch.ShareWithSelection(std::move(scratch->rest));
      cur = &sub;
    }
  }
  return Status::OK();
}

std::string BypassPartitionKOp::Label() const {
  std::string label =
      "BypassPartition±[k=" + std::to_string(predicates_.size()) + "]";
  for (size_t i = 0; i < predicates_.size(); ++i) {
    label += i == 0 ? " " : " | ";
    label += predicates_[i]->ToString();
  }
  return label;
}

}  // namespace bypass
