#include "exec/project.h"

#include "common/string_util.h"

namespace bypass {

Status ProjectPhysOp::Prepare(ExecContext* ctx) {
  BYPASS_RETURN_IF_ERROR(UnaryPhysOp::Prepare(ctx));
  scratch_.resize(static_cast<size_t>(ctx->num_worker_slots()));
  return Status::OK();
}

Status ProjectPhysOp::Consume(int, RowBatch batch) {
  if (identity_) return Emit(kPortOut, std::move(batch));
  const size_t n = batch.size();
  std::vector<std::vector<Value>>& columns =
      scratch_[static_cast<size_t>(CurrentWorkerId())].columns;
  columns.resize(exprs_.size());
  for (size_t c = 0; c < exprs_.size(); ++c) {
    columns[c].clear();
    columns[c].reserve(n);
    BYPASS_RETURN_IF_ERROR(
        exprs_[c]->EvalBatch(batch, ctx_->outer_row(), &columns[c]));
  }
  std::vector<Row> rows(n);
  for (size_t i = 0; i < n; ++i) {
    rows[i].reserve(exprs_.size());
    for (size_t c = 0; c < exprs_.size(); ++c) {
      rows[i].push_back(std::move(columns[c][i]));
    }
  }
  return Emit(kPortOut, RowBatch::FromRows(std::move(rows)));
}

std::string ProjectPhysOp::Label() const {
  std::vector<std::string> parts;
  parts.reserve(exprs_.size());
  for (const ExprPtr& e : exprs_) parts.push_back(e->ToString());
  return "Project [" + Join(parts, ", ") + "]";
}

Status MapPhysOp::Prepare(ExecContext* ctx) {
  BYPASS_RETURN_IF_ERROR(UnaryPhysOp::Prepare(ctx));
  scratch_.resize(static_cast<size_t>(ctx->num_worker_slots()));
  return Status::OK();
}

Status MapPhysOp::Consume(int, RowBatch batch) {
  const size_t n = batch.size();
  std::vector<std::vector<Value>>& columns =
      scratch_[static_cast<size_t>(CurrentWorkerId())].columns;
  columns.resize(exprs_.size());
  for (size_t c = 0; c < exprs_.size(); ++c) {
    columns[c].clear();
    columns[c].reserve(n);
    BYPASS_RETURN_IF_ERROR(
        exprs_[c]->EvalBatch(batch, ctx_->outer_row(), &columns[c]));
  }
  if (batch.ExclusivelyOwned()) {
    for (size_t i = 0; i < n; ++i) {
      Row& row = batch.MutableRow(i);
      for (size_t c = 0; c < exprs_.size(); ++c) {
        row.push_back(std::move(columns[c][i]));
      }
    }
    return Emit(kPortOut, std::move(batch));
  }
  std::vector<Row> rows;
  rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const Row& src = batch.row(i);
    // Build the widened row in one allocation; copy-then-reserve would
    // allocate twice per row.
    Row row;
    row.reserve(src.size() + exprs_.size());
    row.insert(row.end(), src.begin(), src.end());
    for (size_t c = 0; c < exprs_.size(); ++c) {
      row.push_back(std::move(columns[c][i]));
    }
    rows.push_back(std::move(row));
  }
  return Emit(kPortOut, RowBatch::FromRows(std::move(rows)));
}

std::string MapPhysOp::Label() const {
  std::vector<std::string> parts;
  parts.reserve(exprs_.size());
  for (const ExprPtr& e : exprs_) parts.push_back(e->ToString());
  return "Map χ[" + Join(parts, ", ") + "]";
}

Status NumberingPhysOp::Consume(int, RowBatch batch) {
  const size_t n = batch.size();
  // One reservation per batch keeps ids dense; rows within the batch get
  // consecutive ids, batches get scheduling-dependent ranges.
  const int64_t base = next_id_.fetch_add(static_cast<int64_t>(n),
                                          std::memory_order_relaxed);
  if (batch.ExclusivelyOwned()) {
    for (size_t i = 0; i < n; ++i) {
      batch.MutableRow(i).push_back(
          Value::Int64(base + static_cast<int64_t>(i)));
    }
    return Emit(kPortOut, std::move(batch));
  }
  std::vector<Row> rows;
  rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const Row& src = batch.row(i);
    Row row;
    row.reserve(src.size() + 1);
    row.insert(row.end(), src.begin(), src.end());
    row.push_back(Value::Int64(base + static_cast<int64_t>(i)));
    rows.push_back(std::move(row));
  }
  return Emit(kPortOut, RowBatch::FromRows(std::move(rows)));
}

Status LimitPhysOp::Consume(int, RowBatch batch) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (seen_ >= count_) return Status::OK();
    const int64_t remaining = count_ - seen_;
    if (static_cast<int64_t>(batch.size()) > remaining) {
      batch.selection().resize(static_cast<size_t>(remaining));
    }
    seen_ += static_cast<int64_t>(batch.size());
    if (seen_ >= count_) ctx_->set_cancelled(true);
  }
  // Emit outside the lock: the quota is already claimed, and holding the
  // mutex across downstream Consume chains would serialize the pipeline.
  return Emit(kPortOut, std::move(batch));
}

}  // namespace bypass
