#include "exec/project.h"

#include "common/string_util.h"

namespace bypass {

Status ProjectPhysOp::Consume(int, RowBatch batch) {
  if (identity_) return Emit(kPortOut, std::move(batch));
  const size_t n = batch.size();
  columns_.resize(exprs_.size());
  for (size_t c = 0; c < exprs_.size(); ++c) {
    columns_[c].clear();
    BYPASS_RETURN_IF_ERROR(
        exprs_[c]->EvalBatch(batch, ctx_->outer_row(), &columns_[c]));
  }
  std::vector<Row> rows(n);
  for (size_t i = 0; i < n; ++i) {
    rows[i].reserve(exprs_.size());
    for (size_t c = 0; c < exprs_.size(); ++c) {
      rows[i].push_back(std::move(columns_[c][i]));
    }
  }
  return Emit(kPortOut, RowBatch::FromRows(std::move(rows)));
}

std::string ProjectPhysOp::Label() const {
  std::vector<std::string> parts;
  parts.reserve(exprs_.size());
  for (const ExprPtr& e : exprs_) parts.push_back(e->ToString());
  return "Project [" + Join(parts, ", ") + "]";
}

Status MapPhysOp::Consume(int, RowBatch batch) {
  const size_t n = batch.size();
  columns_.resize(exprs_.size());
  for (size_t c = 0; c < exprs_.size(); ++c) {
    columns_[c].clear();
    BYPASS_RETURN_IF_ERROR(
        exprs_[c]->EvalBatch(batch, ctx_->outer_row(), &columns_[c]));
  }
  if (batch.ExclusivelyOwned()) {
    for (size_t i = 0; i < n; ++i) {
      Row& row = batch.MutableRow(i);
      for (size_t c = 0; c < exprs_.size(); ++c) {
        row.push_back(std::move(columns_[c][i]));
      }
    }
    return Emit(kPortOut, std::move(batch));
  }
  std::vector<Row> rows;
  rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const Row& src = batch.row(i);
    // Build the widened row in one allocation; copy-then-reserve would
    // allocate twice per row.
    Row row;
    row.reserve(src.size() + exprs_.size());
    row.insert(row.end(), src.begin(), src.end());
    for (size_t c = 0; c < exprs_.size(); ++c) {
      row.push_back(std::move(columns_[c][i]));
    }
    rows.push_back(std::move(row));
  }
  return Emit(kPortOut, RowBatch::FromRows(std::move(rows)));
}

std::string MapPhysOp::Label() const {
  std::vector<std::string> parts;
  parts.reserve(exprs_.size());
  for (const ExprPtr& e : exprs_) parts.push_back(e->ToString());
  return "Map χ[" + Join(parts, ", ") + "]";
}

Status NumberingPhysOp::Consume(int, RowBatch batch) {
  const size_t n = batch.size();
  if (batch.ExclusivelyOwned()) {
    for (size_t i = 0; i < n; ++i) {
      batch.MutableRow(i).push_back(Value::Int64(next_id_++));
    }
    return Emit(kPortOut, std::move(batch));
  }
  std::vector<Row> rows;
  rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const Row& src = batch.row(i);
    Row row;
    row.reserve(src.size() + 1);
    row.insert(row.end(), src.begin(), src.end());
    row.push_back(Value::Int64(next_id_++));
    rows.push_back(std::move(row));
  }
  return Emit(kPortOut, RowBatch::FromRows(std::move(rows)));
}

Status LimitPhysOp::Consume(int, RowBatch batch) {
  if (seen_ >= count_) return Status::OK();
  const int64_t remaining = count_ - seen_;
  if (static_cast<int64_t>(batch.size()) > remaining) {
    batch.selection().resize(static_cast<size_t>(remaining));
  }
  seen_ += static_cast<int64_t>(batch.size());
  BYPASS_RETURN_IF_ERROR(Emit(kPortOut, std::move(batch)));
  if (seen_ >= count_) ctx_->set_cancelled(true);
  return Status::OK();
}

}  // namespace bypass
