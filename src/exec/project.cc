#include "exec/project.h"

#include "common/string_util.h"

namespace bypass {

Status ProjectPhysOp::Consume(int, Row row) {
  EvalContext ectx{&row, ctx_->outer_row()};
  Row out;
  out.reserve(exprs_.size());
  for (const ExprPtr& e : exprs_) {
    BYPASS_ASSIGN_OR_RETURN(Value v, e->Eval(ectx));
    out.push_back(std::move(v));
  }
  return Emit(kPortOut, std::move(out));
}

std::string ProjectPhysOp::Label() const {
  std::vector<std::string> parts;
  parts.reserve(exprs_.size());
  for (const ExprPtr& e : exprs_) parts.push_back(e->ToString());
  return "Project [" + Join(parts, ", ") + "]";
}

Status MapPhysOp::Consume(int, Row row) {
  EvalContext ectx{&row, ctx_->outer_row()};
  Row extra;
  extra.reserve(exprs_.size());
  for (const ExprPtr& e : exprs_) {
    BYPASS_ASSIGN_OR_RETURN(Value v, e->Eval(ectx));
    extra.push_back(std::move(v));
  }
  for (Value& v : extra) row.push_back(std::move(v));
  return Emit(kPortOut, std::move(row));
}

std::string MapPhysOp::Label() const {
  std::vector<std::string> parts;
  parts.reserve(exprs_.size());
  for (const ExprPtr& e : exprs_) parts.push_back(e->ToString());
  return "Map χ[" + Join(parts, ", ") + "]";
}

Status NumberingPhysOp::Consume(int, Row row) {
  row.push_back(Value::Int64(next_id_++));
  return Emit(kPortOut, std::move(row));
}

Status LimitPhysOp::Consume(int, Row row) {
  if (seen_ >= count_) return Status::OK();
  ++seen_;
  BYPASS_RETURN_IF_ERROR(Emit(kPortOut, std::move(row)));
  if (seen_ >= count_) ctx_->set_cancelled(true);
  return Status::OK();
}

}  // namespace bypass
