// Budget-driven spill: temp-file runs for operators that buffer their
// input (hash-join build sides, sort runs, Grace partitions). A
// SpillManager owns one per-query scratch directory — created lazily on
// the first spill, removed in the destructor — so the lifecycle is
// recovery-free: a crashed process leaves only an orphaned temp dir for
// the OS tempdir reaper, never partial table state.
//
// File format: length-prefixed records, each a serialized Row (uint32
// record length, uint32 value count, then per value a type-tag byte and
// a little-endian payload; strings are length-prefixed). Files are
// written once, then read once, by one thread at a time; cross-thread
// handoff is the caller's job (the Grace join serializes writers with a
// per-partition mutex).
#ifndef BYPASSDB_STORAGE_SPILL_H_
#define BYPASSDB_STORAGE_SPILL_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "types/row.h"

namespace bypass {

class SpillManager;

/// One spill file: append rows, FinishWrite, then read them back in
/// order. Deletes the file on destruction.
class SpillFile {
 public:
  SpillFile(std::string path, SpillManager* manager);
  ~SpillFile();
  SpillFile(const SpillFile&) = delete;
  SpillFile& operator=(const SpillFile&) = delete;

  Status AppendRow(const Row& row);
  /// Flushes and closes the write handle. Idempotent.
  Status FinishWrite();
  /// Opens the file for reading from the start (FinishWrite implied).
  Status OpenRead();
  /// Reads the next row into `out`; returns false at end of file.
  Result<bool> ReadRow(Row* out);

  int64_t rows_written() const { return rows_written_; }
  int64_t bytes_written() const { return bytes_written_; }

 private:
  Status Flush();

  std::string path_;
  SpillManager* manager_;
  std::FILE* file_ = nullptr;
  std::string write_buf_;
  std::vector<char> read_buf_;
  int64_t rows_written_ = 0;
  int64_t bytes_written_ = 0;
  bool writing_ = true;
};

/// Factory and accounting hub for a query's spill files. Thread-safe.
class SpillManager {
 public:
  /// `directory` overrides the scratch location; empty means the system
  /// temp directory. Nothing touches the filesystem until NewFile.
  explicit SpillManager(std::string directory = "");
  ~SpillManager();
  SpillManager(const SpillManager&) = delete;
  SpillManager& operator=(const SpillManager&) = delete;

  /// Creates a new spill file; `label` seasons the filename for
  /// debuggability ("build", "sortrun", "gracel3", ...).
  Result<std::unique_ptr<SpillFile>> NewFile(const char* label);

  int64_t total_files() const {
    return total_files_.load(std::memory_order_relaxed);
  }
  int64_t total_bytes() const {
    return total_bytes_.load(std::memory_order_relaxed);
  }
  void AddBytes(int64_t bytes) {
    total_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  }

 private:
  std::string base_dir_;
  std::atomic<bool> dir_created_{false};
  std::atomic<int64_t> next_id_{0};
  std::atomic<int64_t> total_files_{0};
  std::atomic<int64_t> total_bytes_{0};
  std::mutex mu_;
};

/// Row serialization shared with the spill tests.
void AppendRowSerialized(const Row& row, std::string* buf);
/// Parses one serialized row record payload (without the record-length
/// prefix); returns false on malformed input.
bool ParseRowSerialized(const char* data, size_t size, Row* out);

}  // namespace bypass

#endif  // BYPASSDB_STORAGE_SPILL_H_
