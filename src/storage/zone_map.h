// Zone maps: per-segment, per-column min/max/null-count summaries used to
// prove a scan predicate FALSE-or-UNKNOWN over a whole segment before a
// single row is touched. A filter keeps only rows where the predicate is
// TRUE (SQL 3VL), so a segment is skippable exactly when the zone test
// proves the predicate cannot be TRUE for any of its rows; UNKNOWN rows
// need no special casing. Disjunctions compose per disjunct: the OR may
// be true iff some disjunct may be, which is how the bypass/k-way tagged
// plans inherit data skipping over each cheap disjunct (cf. Kim et al.,
// arXiv 2002.00540).
#ifndef BYPASSDB_STORAGE_ZONE_MAP_H_
#define BYPASSDB_STORAGE_ZONE_MAP_H_

#include <cstdint>
#include <vector>

#include "types/value.h"

namespace bypass {

class Expr;

/// Zone of one column over one segment. `min`/`max` summarize the
/// non-NULL values (NULL Values when the segment has none). `untracked`
/// marks columns the builder makes no claims about (mixed-mode storage,
/// or double segments containing NaN, whose min/max ordering is partial);
/// every zone test treats an untracked column as "may be anything".
struct ColumnZone {
  Value min;
  Value max;
  int64_t null_count = 0;
  bool untracked = false;
};

/// Zone-map metadata for one segment: its row range in the table plus one
/// ColumnZone per table column.
struct SegmentMeta {
  size_t row_begin = 0;
  size_t row_count = 0;
  std::vector<ColumnZone> zones;
};

/// Three-way verdict of a zone test for one predicate over one segment.
enum class ZoneMatch {
  kNone,  ///< no row of the segment can satisfy the predicate
  kSome,  ///< some rows may satisfy it
  kAll,   ///< every row provably satisfies it (no NULLs, range inside)
};

/// Zone test for a single `column op literal` comparison. `rows` is the
/// segment's row count. Sound for typed columns because every non-NULL
/// row shares min/max's dynamic type, so an untyped-comparable literal
/// (Compare == Unknown against min) is Unknown against every row.
ZoneMatch ClassifyZone(const ColumnZone& zone, size_t rows, CompareOp op,
                       const Value& literal);

/// True when `pred` might evaluate to TRUE for some row of the segment;
/// false only when the zones prove no row can satisfy it. `pred` must be
/// bound against the scanned table's schema, so ColumnRef slots index
/// `meta.zones`. Unsupported expression shapes are conservatively "may".
bool ZoneMayBeTrue(const Expr& pred, const SegmentMeta& meta);

/// Zone test for `pred` returning the three-way verdict; kAll
/// additionally requires every row (NULLs included) to satisfy the
/// predicate, which the selectivity refinement uses as a lower bound.
ZoneMatch ZoneTest(const Expr& pred, const SegmentMeta& meta);

}  // namespace bypass

#endif  // BYPASSDB_STORAGE_ZONE_MAP_H_
