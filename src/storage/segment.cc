#include "storage/segment.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <map>
#include <string_view>

namespace bypass {

namespace {

uint64_t BitCast64(double v) {
  uint64_t out;
  std::memcpy(&out, &v, sizeof(out));
  return out;
}

double BitCastDouble(uint64_t v) {
  double out;
  std::memcpy(&out, &v, sizeof(out));
  return out;
}

size_t CountRuns(const std::vector<uint64_t>& raw) {
  size_t runs = 0;
  for (size_t i = 0; i < raw.size(); ++i) {
    if (i == 0 || raw[i] != raw[i - 1]) ++runs;
  }
  return runs;
}

void EncodeRle(const std::vector<uint64_t>& raw, ColumnSegment* out) {
  out->encoding = SegmentEncoding::kRle;
  for (uint64_t v : raw) {
    if (!out->runs.empty() && out->runs.back().value == v &&
        out->runs.back().length < UINT32_MAX) {
      ++out->runs.back().length;
    } else {
      out->runs.push_back({v, 1});
    }
  }
}

/// Encodes a 64-bit raw stream as RLE, frame-of-reference, or raw words —
/// whichever is smallest. `allow_for` is false for doubles, whose bit
/// patterns gain nothing from subtracting a base.
void EncodeWords(const std::vector<uint64_t>& raw, bool allow_for,
                 ColumnSegment* out) {
  const size_t n = raw.size();
  const size_t rle_bytes = CountRuns(raw) * sizeof(ColumnSegment::Run);
  const size_t raw_bytes = n * sizeof(uint64_t);
  uint8_t for_bits = 64;
  int64_t for_base = 0;
  size_t for_bytes = SIZE_MAX;
  if (allow_for && n > 0) {
    int64_t lo = static_cast<int64_t>(raw[0]);
    int64_t hi = lo;
    for (uint64_t w : raw) {
      const int64_t v = static_cast<int64_t>(w);
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    // Wrap-safe unsigned delta; covers the full signed range.
    const uint64_t range =
        static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo);
    for_bits = static_cast<uint8_t>(std::bit_width(range));
    for_base = lo;
    if (for_bits < 64) {
      for_bytes = ((n * for_bits + 63) / 64) * sizeof(uint64_t);
    }
  }
  if (rle_bytes <= std::min(for_bytes, raw_bytes)) {
    EncodeRle(raw, out);
  } else if (for_bytes < raw_bytes) {
    out->encoding = SegmentEncoding::kFor;
    out->base = for_base;
    out->bits = for_bits;
    std::vector<uint64_t> deltas(n);
    for (size_t i = 0; i < n; ++i) {
      deltas[i] = raw[i] - static_cast<uint64_t>(for_base);
    }
    PackBits(deltas.data(), n, for_bits, &out->packed);
  } else {
    out->encoding = SegmentEncoding::kRaw64;
    out->raw = raw;
  }
}

void EncodeStrings(const ColumnVector& col, size_t begin, size_t n,
                   ColumnSegment* out) {
  out->encoding = SegmentEncoding::kDict;
  // Sorted-unique dictionary over the segment's non-NULL strings; NULL
  // rows take code 0 (masked by the bitmap on decode).
  std::map<std::string_view, uint64_t> dict;
  for (size_t i = 0; i < n; ++i) {
    if (!col.IsNull(begin + i)) dict.emplace(col.string_at(begin + i), 0);
  }
  out->dict_offsets.reserve(dict.size() + 1);
  out->dict_offsets.push_back(0);
  uint64_t code = 0;
  for (auto& [sv, c] : dict) {
    c = code++;
    out->dict_chars.append(sv);
    out->dict_offsets.push_back(
        static_cast<uint32_t>(out->dict_chars.size()));
  }
  const uint64_t ndv = code;
  out->bits =
      static_cast<uint8_t>(ndv > 1 ? std::bit_width(ndv - 1) : 0);
  std::vector<uint64_t> codes(n, 0);
  for (size_t i = 0; i < n; ++i) {
    if (!col.IsNull(begin + i)) {
      codes[i] = dict.find(col.string_at(begin + i))->second;
    }
  }
  PackBits(codes.data(), n, out->bits, &out->packed);
}

/// Running min/max over exact Values; total-ordered per type because a
/// typed segment's non-NULL values share one dynamic type.
struct ZoneTracker {
  bool any = false;
  Value min, max;

  void Track(Value v) {
    if (!any) {
      min = v;
      max = std::move(v);
      any = true;
      return;
    }
    if (v.OrderCompare(min) < 0) {
      min = std::move(v);
    } else if (v.OrderCompare(max) > 0) {
      max = std::move(v);
    }
  }
};

ColumnSegment EncodeColumn(const ColumnVector& col, size_t begin,
                           size_t n, ColumnZone* zone) {
  ColumnSegment out;
  out.type = col.type();
  out.row_count = static_cast<uint32_t>(n);
  ZoneTracker tracker;

  if (!col.typed()) {
    out.encoding = SegmentEncoding::kPlainValues;
    out.values.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      Value v = col.GetValue(begin + i);
      if (v.is_null()) ++out.null_count;
      out.values.push_back(std::move(v));
    }
    zone->null_count = out.null_count;
    zone->untracked = true;  // mixed dynamic types: no range claims
    return out;
  }

  out.null_words.assign((n + 63) / 64, 0);
  for (size_t i = 0; i < n; ++i) {
    if (col.IsNull(begin + i)) {
      out.null_words[i >> 6] |= uint64_t{1} << (i & 63);
      ++out.null_count;
    }
  }
  if (out.null_count == 0) out.null_words.clear();

  if (col.type() == DataType::kString) {
    EncodeStrings(col, begin, n, &out);
    for (size_t i = 0; i < n; ++i) {
      if (!col.IsNull(begin + i)) {
        tracker.Track(Value::String(std::string(col.string_at(begin + i))));
      }
    }
  } else {
    std::vector<uint64_t> raw(n);
    bool has_nan = false;
    switch (col.type()) {
      case DataType::kInt64:
        for (size_t i = 0; i < n; ++i) {
          raw[i] = static_cast<uint64_t>(col.i64_data()[begin + i]);
          if (!col.IsNull(begin + i)) {
            tracker.Track(Value::Int64(col.i64_data()[begin + i]));
          }
        }
        break;
      case DataType::kDouble:
        for (size_t i = 0; i < n; ++i) {
          const double d = col.f64_data()[begin + i];
          raw[i] = BitCast64(d);
          if (!col.IsNull(begin + i)) {
            if (std::isnan(d)) has_nan = true;
            tracker.Track(Value::Double(d));
          }
        }
        break;
      case DataType::kBool:
        for (size_t i = 0; i < n; ++i) {
          raw[i] = col.bool_data()[begin + i] != 0 ? 1 : 0;
          if (!col.IsNull(begin + i)) {
            tracker.Track(Value::Bool(col.bool_data()[begin + i] != 0));
          }
        }
        break;
      case DataType::kString:
        break;  // handled above
    }
    EncodeWords(raw, col.type() != DataType::kDouble, &out);
    // NaN makes double min/max ordering unreliable for range proofs.
    if (has_nan) zone->untracked = true;
  }

  zone->null_count = out.null_count;
  if (tracker.any && !zone->untracked) {
    zone->min = std::move(tracker.min);
    zone->max = std::move(tracker.max);
  }
  return out;
}

}  // namespace

void PackBits(const uint64_t* values, size_t n, uint8_t bits,
              std::vector<uint64_t>* out) {
  if (bits == 0) {
    out->clear();
    return;
  }
  out->assign((n * bits + 63) / 64, 0);
  const uint64_t mask =
      bits == 64 ? ~uint64_t{0} : (uint64_t{1} << bits) - 1;
  for (size_t i = 0; i < n; ++i) {
    const uint64_t v = values[i] & mask;
    const size_t bit = i * bits;
    (*out)[bit >> 6] |= v << (bit & 63);
    if ((bit & 63) + bits > 64) {
      (*out)[(bit >> 6) + 1] |= v >> (64 - (bit & 63));
    }
  }
}

uint64_t UnpackBits(const std::vector<uint64_t>& packed, size_t i,
                    uint8_t bits) {
  if (bits == 0) return 0;
  const size_t bit = i * bits;
  uint64_t v = packed[bit >> 6] >> (bit & 63);
  if ((bit & 63) + bits > 64) {
    v |= packed[(bit >> 6) + 1] << (64 - (bit & 63));
  }
  if (bits == 64) return v;
  return v & ((uint64_t{1} << bits) - 1);
}

size_t ColumnSegment::MemoryBytes() const {
  size_t bytes = sizeof(*this);
  bytes += null_words.size() * sizeof(uint64_t);
  bytes += packed.size() * sizeof(uint64_t);
  bytes += raw.size() * sizeof(uint64_t);
  bytes += runs.size() * sizeof(Run);
  bytes += dict_chars.size();
  bytes += dict_offsets.size() * sizeof(uint32_t);
  for (const Value& v : values) {
    bytes += sizeof(Value) + (v.is_string() ? v.string_value().size() : 0);
  }
  return bytes;
}

size_t TableSegments::compressed_bytes() const {
  size_t bytes = 0;
  for (const auto& seg : columns) {
    for (const ColumnSegment& cs : seg) bytes += cs.MemoryBytes();
  }
  return bytes;
}

TableSegments BuildTableSegments(const Schema& schema,
                                 const ColumnStore& store,
                                 size_t rows_per_segment) {
  TableSegments out;
  out.rows_per_segment = std::max<size_t>(1, rows_per_segment);
  out.num_rows = store.num_rows;
  const size_t num_cols = store.columns.size();
  for (size_t begin = 0; begin < store.num_rows;
       begin += out.rows_per_segment) {
    const size_t n =
        std::min(out.rows_per_segment, store.num_rows - begin);
    SegmentMeta meta;
    meta.row_begin = begin;
    meta.row_count = n;
    meta.zones.resize(num_cols);
    std::vector<ColumnSegment> encoded;
    encoded.reserve(num_cols);
    for (size_t c = 0; c < num_cols; ++c) {
      encoded.push_back(
          EncodeColumn(store.columns[c], begin, n, &meta.zones[c]));
    }
    out.segments.push_back(std::move(meta));
    out.columns.push_back(std::move(encoded));
  }
  (void)schema;
  return out;
}

Status SegmentReader::Read(const TableSegments& segs, const Schema& schema,
                           size_t seg, ColumnStore* store,
                           std::vector<Row>* rows) {
  if (seg >= segs.num_segments()) {
    return Status::Internal("segment index out of range");
  }
  const SegmentMeta& meta = segs.segments[seg];
  const size_t n = meta.row_count;
  store->columns.clear();
  store->columns.reserve(static_cast<size_t>(schema.num_columns()));
  for (int c = 0; c < schema.num_columns(); ++c) {
    store->columns.emplace_back(schema.column(c).type);
  }
  store->num_rows = n;
  if (segs.columns[seg].size() != store->columns.size()) {
    return Status::Internal("segment/schema column count mismatch");
  }
  for (size_t c = 0; c < store->columns.size(); ++c) {
    const ColumnSegment& cs = segs.columns[seg][c];
    ColumnVector& out = store->columns[c];
    out.Reserve(n);
    const auto is_null = [&cs](size_t i) {
      return cs.null_count > 0 &&
             ((cs.null_words[i >> 6] >> (i & 63)) & uint64_t{1}) != 0;
    };
    switch (cs.encoding) {
      case SegmentEncoding::kPlainValues:
        for (size_t i = 0; i < n; ++i) out.Append(cs.values[i]);
        break;
      case SegmentEncoding::kDict:
        for (size_t i = 0; i < n; ++i) {
          if (is_null(i)) {
            out.Append(Value::Null());
            continue;
          }
          const uint64_t code = UnpackBits(cs.packed, i, cs.bits);
          const uint32_t lo = cs.dict_offsets[code];
          const uint32_t hi = cs.dict_offsets[code + 1];
          out.Append(Value::String(
              cs.dict_chars.substr(lo, hi - lo)));
        }
        break;
      case SegmentEncoding::kRaw64:
      case SegmentEncoding::kFor:
      case SegmentEncoding::kRle: {
        std::vector<uint64_t> words;
        if (cs.encoding == SegmentEncoding::kRaw64) {
          words = cs.raw;
        } else if (cs.encoding == SegmentEncoding::kFor) {
          words.resize(n);
          for (size_t i = 0; i < n; ++i) {
            words[i] = static_cast<uint64_t>(cs.base) +
                       UnpackBits(cs.packed, i, cs.bits);
          }
        } else {
          words.reserve(n);
          for (const ColumnSegment::Run& run : cs.runs) {
            words.insert(words.end(), run.length, run.value);
          }
        }
        if (words.size() != n) {
          return Status::Internal("segment decode length mismatch");
        }
        for (size_t i = 0; i < n; ++i) {
          if (is_null(i)) {
            out.Append(Value::Null());
          } else if (cs.type == DataType::kInt64) {
            out.Append(Value::Int64(static_cast<int64_t>(words[i])));
          } else if (cs.type == DataType::kDouble) {
            out.Append(Value::Double(BitCastDouble(words[i])));
          } else {
            out.Append(Value::Bool(words[i] != 0));
          }
        }
        break;
      }
    }
  }
  if (rows != nullptr) {
    rows->clear();
    rows->reserve(n);
    for (size_t i = 0; i < n; ++i) {
      rows->push_back(store->MaterializeRow(i));
    }
  }
  return Status::OK();
}

}  // namespace bypass
