#include "storage/spill.h"

#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <system_error>

namespace bypass {

namespace {

constexpr size_t kFlushThreshold = 256 * 1024;

enum ValueTag : uint8_t {
  kTagNull = 0,
  kTagBool = 1,
  kTagInt64 = 2,
  kTagDouble = 3,
  kTagString = 4,
};

void AppendLe32(uint32_t v, std::string* buf) {
  char bytes[4];
  std::memcpy(bytes, &v, sizeof(v));
  buf->append(bytes, sizeof(v));
}

void AppendLe64(uint64_t v, std::string* buf) {
  char bytes[8];
  std::memcpy(bytes, &v, sizeof(v));
  buf->append(bytes, sizeof(v));
}

bool ReadLe32(const char*& p, const char* end, uint32_t* v) {
  if (end - p < 4) return false;
  std::memcpy(v, p, 4);
  p += 4;
  return true;
}

bool ReadLe64(const char*& p, const char* end, uint64_t* v) {
  if (end - p < 8) return false;
  std::memcpy(v, p, 8);
  p += 8;
  return true;
}

}  // namespace

void AppendRowSerialized(const Row& row, std::string* buf) {
  AppendLe32(static_cast<uint32_t>(row.size()), buf);
  for (const Value& v : row) {
    if (v.is_null()) {
      buf->push_back(static_cast<char>(kTagNull));
    } else if (v.is_bool()) {
      buf->push_back(static_cast<char>(kTagBool));
      buf->push_back(v.bool_value() ? 1 : 0);
    } else if (v.is_int64()) {
      buf->push_back(static_cast<char>(kTagInt64));
      AppendLe64(static_cast<uint64_t>(v.int64_value()), buf);
    } else if (v.is_double()) {
      buf->push_back(static_cast<char>(kTagDouble));
      uint64_t bits;
      const double d = v.double_value();
      std::memcpy(&bits, &d, sizeof(bits));
      AppendLe64(bits, buf);
    } else {
      const std::string& s = v.string_value();
      buf->push_back(static_cast<char>(kTagString));
      AppendLe32(static_cast<uint32_t>(s.size()), buf);
      buf->append(s);
    }
  }
}

bool ParseRowSerialized(const char* data, size_t size, Row* out) {
  const char* p = data;
  const char* end = data + size;
  uint32_t arity = 0;
  if (!ReadLe32(p, end, &arity)) return false;
  out->clear();
  out->reserve(arity);
  for (uint32_t i = 0; i < arity; ++i) {
    if (p >= end) return false;
    const uint8_t tag = static_cast<uint8_t>(*p++);
    switch (tag) {
      case kTagNull:
        out->push_back(Value::Null());
        break;
      case kTagBool:
        if (p >= end) return false;
        out->push_back(Value::Bool(*p++ != 0));
        break;
      case kTagInt64: {
        uint64_t bits = 0;
        if (!ReadLe64(p, end, &bits)) return false;
        out->push_back(Value::Int64(static_cast<int64_t>(bits)));
        break;
      }
      case kTagDouble: {
        uint64_t bits = 0;
        if (!ReadLe64(p, end, &bits)) return false;
        double d;
        std::memcpy(&d, &bits, sizeof(d));
        out->push_back(Value::Double(d));
        break;
      }
      case kTagString: {
        uint32_t len = 0;
        if (!ReadLe32(p, end, &len)) return false;
        if (static_cast<size_t>(end - p) < len) return false;
        out->push_back(Value::String(std::string(p, len)));
        p += len;
        break;
      }
      default:
        return false;
    }
  }
  return p == end;
}

SpillFile::SpillFile(std::string path, SpillManager* manager)
    : path_(std::move(path)), manager_(manager) {}

SpillFile::~SpillFile() {
  if (file_ != nullptr) std::fclose(file_);
  std::error_code ec;
  std::filesystem::remove(path_, ec);
}

Status SpillFile::AppendRow(const Row& row) {
  if (!writing_) {
    return Status::Internal("spill file appended after FinishWrite");
  }
  if (file_ == nullptr) {
    file_ = std::fopen(path_.c_str(), "wb");
    if (file_ == nullptr) {
      return Status::ExecutionError("spill: cannot create " + path_);
    }
  }
  const size_t before = write_buf_.size();
  AppendLe32(0, &write_buf_);  // record length, patched below
  AppendRowSerialized(row, &write_buf_);
  const uint32_t record_len =
      static_cast<uint32_t>(write_buf_.size() - before - 4);
  std::memcpy(write_buf_.data() + before, &record_len, sizeof(record_len));
  ++rows_written_;
  bytes_written_ += static_cast<int64_t>(record_len) + 4;
  if (write_buf_.size() >= kFlushThreshold) return Flush();
  return Status::OK();
}

Status SpillFile::Flush() {
  if (write_buf_.empty() || file_ == nullptr) return Status::OK();
  const size_t n =
      std::fwrite(write_buf_.data(), 1, write_buf_.size(), file_);
  if (n != write_buf_.size()) {
    return Status::ExecutionError("spill: short write to " + path_);
  }
  write_buf_.clear();
  return Status::OK();
}

Status SpillFile::FinishWrite() {
  if (!writing_) return Status::OK();
  BYPASS_RETURN_IF_ERROR(Flush());
  if (file_ != nullptr) {
    if (std::fflush(file_) != 0 || std::fclose(file_) != 0) {
      file_ = nullptr;
      return Status::ExecutionError("spill: flush failed for " + path_);
    }
    file_ = nullptr;
  }
  writing_ = false;
  if (manager_ != nullptr) manager_->AddBytes(bytes_written_);
  return Status::OK();
}

Status SpillFile::OpenRead() {
  BYPASS_RETURN_IF_ERROR(FinishWrite());
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  if (rows_written_ == 0) return Status::OK();  // nothing was created
  file_ = std::fopen(path_.c_str(), "rb");
  if (file_ == nullptr) {
    return Status::ExecutionError("spill: cannot reopen " + path_);
  }
  return Status::OK();
}

Result<bool> SpillFile::ReadRow(Row* out) {
  if (writing_) {
    return Status::Internal("spill file read before OpenRead");
  }
  if (file_ == nullptr) return false;  // empty file was never created
  uint32_t record_len = 0;
  const size_t got = std::fread(&record_len, 1, 4, file_);
  if (got == 0) return false;
  if (got != 4) {
    return Status::ExecutionError("spill: truncated record header");
  }
  read_buf_.resize(record_len);
  if (std::fread(read_buf_.data(), 1, record_len, file_) != record_len) {
    return Status::ExecutionError("spill: truncated record body");
  }
  if (!ParseRowSerialized(read_buf_.data(), record_len, out)) {
    return Status::ExecutionError("spill: malformed record");
  }
  return true;
}

SpillManager::SpillManager(std::string directory)
    : base_dir_(std::move(directory)) {}

SpillManager::~SpillManager() {
  if (!dir_created_.load(std::memory_order_acquire)) return;
  std::error_code ec;
  std::filesystem::remove_all(base_dir_, ec);
}

Result<std::unique_ptr<SpillFile>> SpillManager::NewFile(
    const char* label) {
  if (!dir_created_.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(mu_);
    if (!dir_created_.load(std::memory_order_relaxed)) {
      std::error_code ec;
      if (base_dir_.empty()) {
        const std::filesystem::path tmp =
            std::filesystem::temp_directory_path(ec);
        if (ec) {
          return Status::ExecutionError("spill: no temp directory");
        }
        static std::atomic<uint64_t> dir_seq{0};
        base_dir_ = (tmp / ("bypassdb-spill-" +
                            std::to_string(::getpid()) + "-" +
                            std::to_string(dir_seq.fetch_add(1))))
                        .string();
      }
      std::filesystem::create_directories(base_dir_, ec);
      if (ec) {
        return Status::ExecutionError("spill: cannot create scratch dir " +
                                      base_dir_);
      }
      dir_created_.store(true, std::memory_order_release);
    }
  }
  const int64_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
  total_files_.fetch_add(1, std::memory_order_relaxed);
  std::string path = base_dir_ + "/" + std::string(label) + "-" +
                     std::to_string(id) + ".spill";
  return std::make_unique<SpillFile>(std::move(path), this);
}

}  // namespace bypass
