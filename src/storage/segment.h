// Compressed column segments. A table's ColumnStore is partitioned into
// fixed-size row ranges (~64K rows by default); each (segment, column)
// pair is encoded independently with the cheapest scheme that fits the
// data: run-length encoding for low-NDV columns, frame-of-reference
// bit-packing for int64/bool ranges, raw 64-bit words for incompressible
// numerics (doubles keep their exact bit patterns, -0.0 and NaN
// included), a sorted dictionary for arena strings, and an exact Value
// vector for mixed-mode columns. NULLs are carried in a per-segment
// bitmap copied from the source column; their placeholder slots encode
// as ordinary zeros so decode round-trips the ColumnVector exactly.
//
// SegmentReader decompresses one segment at a time into a fresh
// ColumnStore + row shim, which the scan wraps in shared-ownership
// batches — downstream operators may retain those batches after the
// scan's per-worker cache moves on to the next segment.
#ifndef BYPASSDB_STORAGE_SEGMENT_H_
#define BYPASSDB_STORAGE_SEGMENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/zone_map.h"
#include "types/column_vector.h"
#include "types/row.h"
#include "types/schema.h"

namespace bypass {

/// Default segment granularity (rows). Tests shrink it to exercise many
/// segments over small tables.
inline constexpr size_t kDefaultRowsPerSegment = 64 * 1024;

enum class SegmentEncoding : uint8_t {
  kRaw64,       ///< raw 64-bit words (int64 / bit-cast double)
  kFor,         ///< frame-of-reference bit-packed int64 (bool: base 0)
  kRle,         ///< run-length over 64-bit raw values
  kDict,        ///< dictionary-coded strings, bit-packed codes
  kPlainValues, ///< mixed-mode fallback: exact Values
};

/// One column of one segment in encoded form.
struct ColumnSegment {
  SegmentEncoding encoding = SegmentEncoding::kPlainValues;
  DataType type = DataType::kInt64;
  uint32_t row_count = 0;
  uint32_t null_count = 0;
  std::vector<uint64_t> null_words;  ///< empty when null_count == 0

  // kFor and kDict code stream: value i = base + Unpack(packed, i, bits)
  // (kDict: code i indexes the dictionary; base unused).
  int64_t base = 0;
  uint8_t bits = 0;
  std::vector<uint64_t> packed;

  std::vector<uint64_t> raw;  ///< kRaw64

  struct Run {
    uint64_t value;
    uint32_t length;
  };
  std::vector<Run> runs;  ///< kRle

  std::string dict_chars;              ///< kDict arena
  std::vector<uint32_t> dict_offsets;  ///< kDict, ndv + 1 entries

  std::vector<Value> values;  ///< kPlainValues

  /// Approximate heap footprint of the encoded form.
  size_t MemoryBytes() const;
};

/// The segment index of one table: zone-map metadata plus the encoded
/// columns, segment-major.
struct TableSegments {
  size_t rows_per_segment = kDefaultRowsPerSegment;
  size_t num_rows = 0;
  std::vector<SegmentMeta> segments;
  /// columns[s][c]: column c of segment s.
  std::vector<std::vector<ColumnSegment>> columns;

  size_t num_segments() const { return segments.size(); }
  /// Total encoded footprint across all segments.
  size_t compressed_bytes() const;
};

/// Builds the segment index (zone maps + encoded columns) over `store`.
TableSegments BuildTableSegments(const Schema& schema,
                                 const ColumnStore& store,
                                 size_t rows_per_segment);

/// Bit-packing primitives shared with tests: `bits` in [0, 64].
void PackBits(const uint64_t* values, size_t n, uint8_t bits,
              std::vector<uint64_t>* out);
uint64_t UnpackBits(const std::vector<uint64_t>& packed, size_t i,
                    uint8_t bits);

class SegmentReader {
 public:
  /// Decompresses segment `seg` of `segs` into `store` (typed columns
  /// recreated per `schema`) and, when `rows` is non-null, materializes
  /// the segment's row shim. Exact round-trip of the source rows.
  static Status Read(const TableSegments& segs, const Schema& schema,
                     size_t seg, ColumnStore* store,
                     std::vector<Row>* rows);
};

}  // namespace bypass

#endif  // BYPASSDB_STORAGE_SEGMENT_H_
