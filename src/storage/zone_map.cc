#include "storage/zone_map.h"

#include <string>

#include "common/string_util.h"
#include "expr/expr.h"

namespace bypass {

namespace {

bool IsTrue(TriBool b) { return b == TriBool::kTrue; }

/// Smallest string strictly greater than every string with prefix
/// `prefix` (the exclusive upper bound of the prefix range). False when
/// no such bound exists (the prefix is all 0xff bytes): every string
/// >= prefix then necessarily carries the prefix.
bool PrefixUpperBound(std::string_view prefix, std::string* out) {
  std::string bound(prefix);
  while (!bound.empty() &&
         static_cast<unsigned char>(bound.back()) == 0xff) {
    bound.pop_back();
  }
  if (bound.empty()) return false;
  bound.back() =
      static_cast<char>(static_cast<unsigned char>(bound.back()) + 1);
  *out = std::move(bound);
  return true;
}

/// Extracts `slot op literal` from a comparison, flipping the operator
/// when the literal is on the left. False for any other shape.
bool MatchSlotLiteral(const ComparisonExpr& cmp, int* slot, CompareOp* op,
                      const Value** literal) {
  const Expr* l = cmp.left().get();
  const Expr* r = cmp.right().get();
  if (l->kind() == ExprKind::kColumnRef &&
      r->kind() == ExprKind::kLiteral) {
    const auto* col = static_cast<const ColumnRefExpr*>(l);
    if (col->is_outer() || col->slot() < 0) return false;
    *slot = col->slot();
    *op = cmp.op();
    *literal = &static_cast<const LiteralExpr*>(r)->value();
    return true;
  }
  if (l->kind() == ExprKind::kLiteral &&
      r->kind() == ExprKind::kColumnRef) {
    const auto* col = static_cast<const ColumnRefExpr*>(r);
    if (col->is_outer() || col->slot() < 0) return false;
    *slot = col->slot();
    *op = FlipCompareOp(cmp.op());
    *literal = &static_cast<const LiteralExpr*>(l)->value();
    return true;
  }
  return false;
}

const ColumnZone* ZoneForSlot(const SegmentMeta& meta, int slot) {
  if (slot < 0 || static_cast<size_t>(slot) >= meta.zones.size()) {
    return nullptr;
  }
  return &meta.zones[static_cast<size_t>(slot)];
}

ZoneMatch TestIsNull(const IsNullExpr& expr, const SegmentMeta& meta) {
  if (expr.input()->kind() != ExprKind::kColumnRef) return ZoneMatch::kSome;
  const auto* col = static_cast<const ColumnRefExpr*>(expr.input().get());
  if (col->is_outer()) return ZoneMatch::kSome;
  const ColumnZone* zone = ZoneForSlot(meta, col->slot());
  if (zone == nullptr) return ZoneMatch::kSome;
  // null_count is exact even for untracked (mixed-mode / NaN) columns;
  // only min/max claims are suspended there.
  const int64_t rows = static_cast<int64_t>(meta.row_count);
  const int64_t nulls =
      expr.negated() ? rows - zone->null_count : zone->null_count;
  if (nulls == 0) return ZoneMatch::kNone;
  if (nulls == rows) return ZoneMatch::kAll;
  return ZoneMatch::kSome;
}

ZoneMatch TestLike(const LikeExpr& expr, const SegmentMeta& meta) {
  if (expr.input()->kind() != ExprKind::kColumnRef) return ZoneMatch::kSome;
  const auto* col = static_cast<const ColumnRefExpr*>(expr.input().get());
  if (col->is_outer()) return ZoneMatch::kSome;
  const ColumnZone* zone = ZoneForSlot(meta, col->slot());
  if (zone == nullptr || zone->untracked) return ZoneMatch::kSome;
  const int64_t non_null =
      static_cast<int64_t>(meta.row_count) - zone->null_count;
  if (non_null <= 0) {
    // Every row is NULL: LIKE yields UNKNOWN everywhere (and cannot hit
    // its non-string execution error), so the segment is skippable.
    return ZoneMatch::kNone;
  }
  // Beyond this point there are non-NULL rows; only reason about them
  // when they are provably strings — LIKE on any other type raises an
  // execution error that a skip would otherwise hide.
  if (!zone->min.is_string() || !zone->max.is_string()) {
    return ZoneMatch::kSome;
  }
  if (expr.negated()) return ZoneMatch::kSome;
  const LikePattern shaped = AnalyzeLikePattern(expr.pattern());
  switch (shaped.shape) {
    case LikeShape::kMatchAll:
      return zone->null_count == 0 ? ZoneMatch::kAll : ZoneMatch::kSome;
    case LikeShape::kExact:
      return ClassifyZone(*zone, meta.row_count, CompareOp::kEq,
                          Value::String(std::string(shaped.body)));
    case LikeShape::kPrefix: {
      // Byte-wise collation: s has prefix p  <=>  p <= s < succ(p).
      const Value lo = Value::String(std::string(shaped.body));
      if (IsTrue(zone->max.Compare(CompareOp::kLt, lo))) {
        return ZoneMatch::kNone;
      }
      std::string upper;
      const bool has_upper = PrefixUpperBound(shaped.body, &upper);
      if (has_upper) {
        const Value hi = Value::String(std::move(upper));
        if (IsTrue(zone->min.Compare(CompareOp::kGe, hi))) {
          return ZoneMatch::kNone;
        }
        if (zone->null_count == 0 &&
            IsTrue(zone->min.Compare(CompareOp::kGe, lo)) &&
            IsTrue(zone->max.Compare(CompareOp::kLt, hi))) {
          return ZoneMatch::kAll;
        }
      } else if (zone->null_count == 0 &&
                 IsTrue(zone->min.Compare(CompareOp::kGe, lo))) {
        return ZoneMatch::kAll;
      }
      return ZoneMatch::kSome;
    }
    case LikeShape::kSuffix:
    case LikeShape::kContains:
    case LikeShape::kGeneric:
      return ZoneMatch::kSome;
  }
  return ZoneMatch::kSome;
}

}  // namespace

ZoneMatch ClassifyZone(const ColumnZone& zone, size_t rows, CompareOp op,
                       const Value& literal) {
  if (zone.untracked) return ZoneMatch::kSome;
  if (rows == 0) return ZoneMatch::kNone;
  const int64_t non_null = static_cast<int64_t>(rows) - zone.null_count;
  // Comparison against NULL, or of an all-NULL segment, is UNKNOWN on
  // every row — never TRUE, so the segment cannot produce a match.
  if (literal.is_null() || non_null <= 0) return ZoneMatch::kNone;
  const bool no_nulls = zone.null_count == 0;
  const Value& lo = zone.min;
  const Value& hi = zone.max;
  switch (op) {
    case CompareOp::kEq:
      // An unrelatable type pair (Compare == Unknown against min) is
      // Unknown against every row of a typed column, hence kNone here
      // via the !IsTrue branches.
      if (!IsTrue(lo.Compare(CompareOp::kLe, literal)) ||
          !IsTrue(hi.Compare(CompareOp::kGe, literal))) {
        return ZoneMatch::kNone;
      }
      if (no_nulls && IsTrue(lo.Compare(CompareOp::kEq, literal)) &&
          IsTrue(hi.Compare(CompareOp::kEq, literal))) {
        return ZoneMatch::kAll;
      }
      return ZoneMatch::kSome;
    case CompareOp::kNe: {
      const TriBool min_eq = lo.Compare(CompareOp::kEq, literal);
      if (min_eq == TriBool::kUnknown) return ZoneMatch::kNone;
      if (IsTrue(min_eq) && IsTrue(hi.Compare(CompareOp::kEq, literal))) {
        return ZoneMatch::kNone;  // every non-NULL row equals the literal
      }
      if (no_nulls && (IsTrue(hi.Compare(CompareOp::kLt, literal)) ||
                       IsTrue(lo.Compare(CompareOp::kGt, literal)))) {
        return ZoneMatch::kAll;
      }
      return ZoneMatch::kSome;
    }
    case CompareOp::kLt:
      if (!IsTrue(lo.Compare(CompareOp::kLt, literal))) {
        return ZoneMatch::kNone;
      }
      if (no_nulls && IsTrue(hi.Compare(CompareOp::kLt, literal))) {
        return ZoneMatch::kAll;
      }
      return ZoneMatch::kSome;
    case CompareOp::kLe:
      if (!IsTrue(lo.Compare(CompareOp::kLe, literal))) {
        return ZoneMatch::kNone;
      }
      if (no_nulls && IsTrue(hi.Compare(CompareOp::kLe, literal))) {
        return ZoneMatch::kAll;
      }
      return ZoneMatch::kSome;
    case CompareOp::kGt:
      if (!IsTrue(hi.Compare(CompareOp::kGt, literal))) {
        return ZoneMatch::kNone;
      }
      if (no_nulls && IsTrue(lo.Compare(CompareOp::kGt, literal))) {
        return ZoneMatch::kAll;
      }
      return ZoneMatch::kSome;
    case CompareOp::kGe:
      if (!IsTrue(hi.Compare(CompareOp::kGe, literal))) {
        return ZoneMatch::kNone;
      }
      if (no_nulls && IsTrue(lo.Compare(CompareOp::kGe, literal))) {
        return ZoneMatch::kAll;
      }
      return ZoneMatch::kSome;
  }
  return ZoneMatch::kSome;
}

ZoneMatch ZoneTest(const Expr& pred, const SegmentMeta& meta) {
  switch (pred.kind()) {
    case ExprKind::kLiteral: {
      const Value& v = static_cast<const LiteralExpr&>(pred).value();
      return ValueToTriBool(v) == TriBool::kTrue ? ZoneMatch::kAll
                                                 : ZoneMatch::kNone;
    }
    case ExprKind::kAnd: {
      // The AND may be TRUE only where every conjunct may be; it is TRUE
      // everywhere only if each conjunct is.
      ZoneMatch acc = ZoneMatch::kAll;
      for (const ExprPtr& term :
           static_cast<const AndExpr&>(pred).terms()) {
        const ZoneMatch m = ZoneTest(*term, meta);
        if (m == ZoneMatch::kNone) return ZoneMatch::kNone;
        if (m == ZoneMatch::kSome) acc = ZoneMatch::kSome;
      }
      return acc;
    }
    case ExprKind::kOr: {
      ZoneMatch acc = ZoneMatch::kNone;
      for (const ExprPtr& term :
           static_cast<const OrExpr&>(pred).terms()) {
        const ZoneMatch m = ZoneTest(*term, meta);
        if (m == ZoneMatch::kAll) return ZoneMatch::kAll;
        if (m == ZoneMatch::kSome) acc = ZoneMatch::kSome;
      }
      return acc;
    }
    case ExprKind::kNot: {
      // Only "input TRUE everywhere -> NOT never TRUE" is derivable from
      // the may/all lattice; everything else stays kSome.
      const Expr& input = *static_cast<const NotExpr&>(pred).input();
      return ZoneTest(input, meta) == ZoneMatch::kAll ? ZoneMatch::kNone
                                                      : ZoneMatch::kSome;
    }
    case ExprKind::kComparison: {
      int slot = -1;
      CompareOp op = CompareOp::kEq;
      const Value* literal = nullptr;
      const auto& cmp = static_cast<const ComparisonExpr&>(pred);
      if (!MatchSlotLiteral(cmp, &slot, &op, &literal)) {
        return ZoneMatch::kSome;
      }
      const ColumnZone* zone = ZoneForSlot(meta, slot);
      if (zone == nullptr) return ZoneMatch::kSome;
      return ClassifyZone(*zone, meta.row_count, op, *literal);
    }
    case ExprKind::kIsNull:
      return TestIsNull(static_cast<const IsNullExpr&>(pred), meta);
    case ExprKind::kLike:
      return TestLike(static_cast<const LikeExpr&>(pred), meta);
    case ExprKind::kColumnRef:
    case ExprKind::kArithmetic:
    case ExprKind::kFunction:
    case ExprKind::kSubquery:
      return ZoneMatch::kSome;
  }
  return ZoneMatch::kSome;
}

bool ZoneMayBeTrue(const Expr& pred, const SegmentMeta& meta) {
  return ZoneTest(pred, meta) != ZoneMatch::kNone;
}

}  // namespace bypass
