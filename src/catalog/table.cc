#include "catalog/table.h"

#include <unordered_set>

namespace bypass {

Status Table::Append(Row row) {
  if (static_cast<int>(row.size()) != schema_.num_columns()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) +
        " does not match table '" + name_ + "' with " +
        std::to_string(schema_.num_columns()) + " columns");
  }
  for (int i = 0; i < schema_.num_columns(); ++i) {
    const Value& v = row[static_cast<size_t>(i)];
    if (v.is_null()) continue;
    const DataType expected = schema_.column(i).type;
    const bool ok =
        (v.type() == expected) ||
        (v.is_int64() && expected == DataType::kDouble) ||
        (v.is_double() && expected == DataType::kInt64);
    if (!ok) {
      return Status::InvalidArgument(
          "type mismatch in column '" + schema_.column(i).name +
          "' of table '" + name_ + "': expected " +
          DataTypeToString(expected) + ", got " + v.ToString());
    }
  }
  rows_.push_back(std::move(row));
  stats_valid_.store(false, std::memory_order_release);
  return Status::OK();
}

Status Table::AppendUnchecked(std::vector<Row> rows) {
  for (const Row& r : rows) {
    if (static_cast<int>(r.size()) != schema_.num_columns()) {
      return Status::InvalidArgument("row arity mismatch in bulk append to '" +
                                     name_ + "'");
    }
  }
  if (rows_.empty()) {
    rows_ = std::move(rows);
  } else {
    rows_.reserve(rows_.size() + rows.size());
    for (Row& r : rows) rows_.push_back(std::move(r));
  }
  stats_valid_.store(false, std::memory_order_release);
  return Status::OK();
}

void Table::Clear() {
  rows_.clear();
  stats_.clear();
  stats_valid_.store(false, std::memory_order_release);
}

void Table::AnalyzeStats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  AnalyzeStatsLocked();
}

void Table::AnalyzeStatsLocked() const {
  stats_.assign(static_cast<size_t>(schema_.num_columns()), ColumnStats{});
  for (int c = 0; c < schema_.num_columns(); ++c) {
    ColumnStats& st = stats_[static_cast<size_t>(c)];
    std::unordered_set<size_t> seen_hashes;
    // NDV via hash-set of value hashes: exact enough for costing at our
    // scales and avoids storing full values.
    bool have_minmax = false;
    for (const Row& row : rows_) {
      const Value& v = row[static_cast<size_t>(c)];
      if (v.is_null()) {
        ++st.null_count;
        continue;
      }
      seen_hashes.insert(v.Hash());
      if (!have_minmax) {
        st.min = v;
        st.max = v;
        have_minmax = true;
      } else {
        if (v.OrderCompare(st.min) < 0) st.min = v;
        if (v.OrderCompare(st.max) > 0) st.max = v;
      }
    }
    st.distinct_count = static_cast<int64_t>(seen_hashes.size());
  }
  stats_valid_.store(true, std::memory_order_release);
}

const std::vector<ColumnStats>& Table::stats() const {
  // Double-checked init so concurrent planners never race the compute;
  // the release store above pairs with this acquire load.
  if (!stats_valid_.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    if (!stats_valid_.load(std::memory_order_relaxed)) {
      AnalyzeStatsLocked();
    }
  }
  return stats_;
}

}  // namespace bypass
