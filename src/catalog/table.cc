#include "catalog/table.h"

#include <functional>
#include <string_view>
#include <unordered_set>

namespace bypass {

namespace {

// Total-order comparator matching Value::OrderCompare on two doubles
// (NaN compares equal to everything, so min/max folds keep the first
// element seen, exactly like the Value-based fold did).
int CompareDoublesTotal(double a, double b) {
  return a < b ? -1 : (a > b ? 1 : 0);
}

// Lazy-tier stats for one typed column without materializing Values:
// null count from the bitmap, min/max folded over raw data with the same
// ordering Value::OrderCompare induces for a single-typed column, and an
// exact NDV over raw values.
ColumnStatistics TypedColumnStats(const ColumnVector& col) {
  ColumnStatistics st;
  const size_t n = col.size();
  switch (col.type()) {
    case DataType::kInt64: {
      const int64_t* data = col.i64_data();
      std::unordered_set<int64_t> seen;
      bool have = false;
      int64_t lo = 0, hi = 0;
      for (size_t i = 0; i < n; ++i) {
        if (col.IsNull(i)) {
          ++st.null_count;
          continue;
        }
        seen.insert(data[i]);
        if (!have) {
          lo = hi = data[i];
          have = true;
        } else {
          if (data[i] < lo) lo = data[i];
          if (data[i] > hi) hi = data[i];
        }
      }
      if (have) {
        st.min = Value::Int64(lo);
        st.max = Value::Int64(hi);
      }
      st.distinct_count = static_cast<int64_t>(seen.size());
      break;
    }
    case DataType::kDouble: {
      const double* data = col.f64_data();
      // Hash-identity NDV (±0.0 normalized, NaNs collapse to one value),
      // matching what the Value::Hash-based loop counted.
      std::unordered_set<size_t> seen;
      bool have = false;
      double lo = 0, hi = 0;
      for (size_t i = 0; i < n; ++i) {
        if (col.IsNull(i)) {
          ++st.null_count;
          continue;
        }
        seen.insert(
            std::hash<double>()(data[i] == 0.0 ? 0.0 : data[i]));
        if (!have) {
          lo = hi = data[i];
          have = true;
        } else {
          if (CompareDoublesTotal(data[i], lo) < 0) lo = data[i];
          if (CompareDoublesTotal(data[i], hi) > 0) hi = data[i];
        }
      }
      if (have) {
        st.min = Value::Double(lo);
        st.max = Value::Double(hi);
      }
      st.distinct_count = static_cast<int64_t>(seen.size());
      break;
    }
    case DataType::kBool: {
      const uint8_t* data = col.bool_data();
      bool saw_false = false, saw_true = false;
      for (size_t i = 0; i < n; ++i) {
        if (col.IsNull(i)) {
          ++st.null_count;
          continue;
        }
        (data[i] != 0 ? saw_true : saw_false) = true;
      }
      if (saw_false || saw_true) {
        st.min = Value::Bool(saw_false ? false : true);
        st.max = Value::Bool(saw_true ? true : false);
      }
      st.distinct_count = (saw_false ? 1 : 0) + (saw_true ? 1 : 0);
      break;
    }
    case DataType::kString: {
      std::unordered_set<std::string_view> seen;
      bool have = false;
      std::string_view lo, hi;
      for (size_t i = 0; i < n; ++i) {
        if (col.IsNull(i)) {
          ++st.null_count;
          continue;
        }
        const std::string_view s = col.string_at(i);
        seen.insert(s);
        if (!have) {
          lo = hi = s;
          have = true;
        } else {
          if (s.compare(lo) < 0) lo = s;
          if (s.compare(hi) > 0) hi = s;
        }
      }
      if (have) {
        st.min = Value::String(std::string(lo));
        st.max = Value::String(std::string(hi));
      }
      st.distinct_count = static_cast<int64_t>(seen.size());
      break;
    }
  }
  return st;
}

// Mixed-mode fallback: the pre-columnar per-Value loop (NDV via value
// hashes, min/max via OrderCompare, which also handles cross-typed
// numerics the way the old row path did).
ColumnStatistics MixedColumnStats(const ColumnVector& col) {
  ColumnStatistics st;
  std::unordered_set<size_t> seen_hashes;
  bool have_minmax = false;
  for (size_t i = 0; i < col.size(); ++i) {
    const Value v = col.GetValue(i);
    if (v.is_null()) {
      ++st.null_count;
      continue;
    }
    seen_hashes.insert(v.Hash());
    if (!have_minmax) {
      st.min = v;
      st.max = v;
      have_minmax = true;
    } else {
      if (v.OrderCompare(st.min) < 0) st.min = v;
      if (v.OrderCompare(st.max) > 0) st.max = v;
    }
  }
  st.distinct_count = static_cast<int64_t>(seen_hashes.size());
  return st;
}

}  // namespace

Table::Table(std::string name, Schema schema)
    : name_(std::move(name)), schema_(std::move(schema)) {
  columns_.columns.reserve(static_cast<size_t>(schema_.num_columns()));
  for (int c = 0; c < schema_.num_columns(); ++c) {
    columns_.columns.emplace_back(schema_.column(c).type);
  }
}

void Table::Invalidate() {
  rows_valid_.store(false, std::memory_order_release);
  stats_valid_.store(false, std::memory_order_release);
  segments_valid_.store(false, std::memory_order_release);
}

Status Table::Append(Row row) {
  if (static_cast<int>(row.size()) != schema_.num_columns()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) +
        " does not match table '" + name_ + "' with " +
        std::to_string(schema_.num_columns()) + " columns");
  }
  for (int i = 0; i < schema_.num_columns(); ++i) {
    const Value& v = row[static_cast<size_t>(i)];
    if (v.is_null()) continue;
    const DataType expected = schema_.column(i).type;
    const bool ok =
        (v.type() == expected) ||
        (v.is_int64() && expected == DataType::kDouble) ||
        (v.is_double() && expected == DataType::kInt64);
    if (!ok) {
      return Status::InvalidArgument(
          "type mismatch in column '" + schema_.column(i).name +
          "' of table '" + name_ + "': expected " +
          DataTypeToString(expected) + ", got " + v.ToString());
    }
  }
  columns_.AppendRow(row);
  Invalidate();
  return Status::OK();
}

Status Table::AppendUnchecked(std::vector<Row> rows) {
  for (const Row& r : rows) {
    if (static_cast<int>(r.size()) != schema_.num_columns()) {
      return Status::InvalidArgument("row arity mismatch in bulk append to '" +
                                     name_ + "'");
    }
  }
  columns_.Reserve(columns_.num_rows + rows.size());
  for (const Row& r : rows) columns_.AppendRow(r);
  Invalidate();
  return Status::OK();
}

void Table::Clear() {
  columns_.Clear();
  row_shim_.clear();
  stats_.clear();
  Invalidate();
}

const std::vector<Row>& Table::rows() const {
  // Double-checked init, same discipline as stats(): the release store
  // below pairs with this acquire load, so a reader that sees the flag
  // also sees the materialized rows.
  if (!rows_valid_.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(rows_mutex_);
    if (!rows_valid_.load(std::memory_order_relaxed)) {
      row_shim_.clear();
      row_shim_.reserve(columns_.num_rows);
      for (size_t i = 0; i < columns_.num_rows; ++i) {
        row_shim_.push_back(columns_.MaterializeRow(i));
      }
      rows_valid_.store(true, std::memory_order_release);
    }
  }
  return row_shim_;
}

void Table::AnalyzeStats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  AnalyzeStatsLocked();
}

void Table::AnalyzeStatsLocked() const {
  stats_.clear();
  stats_.reserve(columns_.columns.size());
  for (const ColumnVector& col : columns_.columns) {
    stats_.push_back(col.typed() ? TypedColumnStats(col)
                                 : MixedColumnStats(col));
  }
  stats_valid_.store(true, std::memory_order_release);
}

void Table::set_segment_rows(size_t rows) {
  std::lock_guard<std::mutex> lock(segments_mutex_);
  segment_rows_ = rows == 0 ? kDefaultRowsPerSegment : rows;
  segments_valid_.store(false, std::memory_order_release);
}

const TableSegments& Table::segments() const {
  // Double-checked init, same discipline as rows()/stats().
  if (!segments_valid_.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(segments_mutex_);
    if (!segments_valid_.load(std::memory_order_relaxed)) {
      segments_ = BuildTableSegments(schema_, columns_, segment_rows_);
      segments_valid_.store(true, std::memory_order_release);
    }
  }
  return segments_;
}

const std::vector<ColumnStatistics>& Table::stats() const {
  // Double-checked init so concurrent planners never race the compute;
  // the release store above pairs with this acquire load.
  if (!stats_valid_.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    if (!stats_valid_.load(std::memory_order_relaxed)) {
      AnalyzeStatsLocked();
    }
  }
  return stats_;
}

}  // namespace bypass
