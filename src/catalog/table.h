// In-memory base table with per-column statistics for cost estimation.
#ifndef BYPASSDB_CATALOG_TABLE_H_
#define BYPASSDB_CATALOG_TABLE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "types/row.h"
#include "types/schema.h"

namespace bypass {

/// Simple per-column statistics: row count is table-level; NDV, min and max
/// drive selectivity estimation (recomputed on demand after loads).
struct ColumnStats {
  int64_t distinct_count = 0;
  Value min;  ///< NULL when the column is all-NULL or table empty
  Value max;
  int64_t null_count = 0;
};

/// A heap of rows with a schema. Row mutation is not thread-safe (loads
/// never race queries by contract), but the lazily computed statistics
/// may be demanded by concurrent planning threads, so their
/// initialization is guarded.
class Table {
 public:
  Table(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  // Movable (the guard mutex stays fresh; moves never race readers by
  // contract), not copyable.
  Table(Table&& other) noexcept
      : name_(std::move(other.name_)),
        schema_(std::move(other.schema_)),
        rows_(std::move(other.rows_)),
        stats_(std::move(other.stats_)),
        stats_valid_(other.stats_valid_.load(std::memory_order_relaxed)) {}
  Table& operator=(Table&& other) noexcept {
    name_ = std::move(other.name_);
    schema_ = std::move(other.schema_);
    rows_ = std::move(other.rows_);
    stats_ = std::move(other.stats_);
    stats_valid_.store(other.stats_valid_.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
    return *this;
  }
  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  const std::vector<Row>& rows() const { return rows_; }
  int64_t num_rows() const { return static_cast<int64_t>(rows_.size()); }

  /// Appends one row after checking arity and types (NULL always allowed).
  Status Append(Row row);

  /// Bulk-append without per-row type checks (generators produce typed
  /// data); still validates arity.
  Status AppendUnchecked(std::vector<Row> rows);

  /// Drops all rows and statistics.
  void Clear();

  /// Recomputes column statistics; invoked lazily by stats().
  void AnalyzeStats() const;

  /// Per-column statistics (computed on first use after modification).
  /// Safe to call from concurrent readers; the first caller computes.
  const std::vector<ColumnStats>& stats() const;

 private:
  void AnalyzeStatsLocked() const;

  std::string name_;
  Schema schema_;
  std::vector<Row> rows_;
  mutable std::mutex stats_mutex_;
  mutable std::vector<ColumnStats> stats_;
  mutable std::atomic<bool> stats_valid_{false};
};

}  // namespace bypass

#endif  // BYPASSDB_CATALOG_TABLE_H_
