// In-memory base table, column-major, with per-column statistics for
// cost estimation.
#ifndef BYPASSDB_CATALOG_TABLE_H_
#define BYPASSDB_CATALOG_TABLE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "stats/column_stats.h"
#include "storage/segment.h"
#include "types/column_vector.h"
#include "types/row.h"
#include "types/schema.h"

namespace bypass {

/// A columnar heap with a schema. Ground truth is the ColumnStore (typed
/// contiguous columns + null bitmaps); scans borrow the columns directly.
/// The row API (rows()) survives as a lazily materialized shim for
/// operators not yet ported to columns. Row mutation is not thread-safe
/// (loads never race queries by contract), but the lazily computed
/// statistics and the row shim may be demanded by concurrent planning /
/// execution threads, so their initialization is guarded.
class Table {
 public:
  Table(std::string name, Schema schema);

  // Movable (the guard mutexes stay fresh; moves never race readers by
  // contract), not copyable.
  Table(Table&& other) noexcept
      : name_(std::move(other.name_)),
        schema_(std::move(other.schema_)),
        columns_(std::move(other.columns_)),
        row_shim_(std::move(other.row_shim_)),
        rows_valid_(other.rows_valid_.load(std::memory_order_relaxed)),
        stats_(std::move(other.stats_)),
        stats_valid_(other.stats_valid_.load(std::memory_order_relaxed)),
        segment_rows_(other.segment_rows_),
        segments_(std::move(other.segments_)),
        segments_valid_(
            other.segments_valid_.load(std::memory_order_relaxed)) {}
  Table& operator=(Table&& other) noexcept {
    name_ = std::move(other.name_);
    schema_ = std::move(other.schema_);
    columns_ = std::move(other.columns_);
    row_shim_ = std::move(other.row_shim_);
    rows_valid_.store(other.rows_valid_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
    stats_ = std::move(other.stats_);
    stats_valid_.store(other.stats_valid_.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
    segment_rows_ = other.segment_rows_;
    segments_ = std::move(other.segments_);
    segments_valid_.store(
        other.segments_valid_.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    return *this;
  }
  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }

  /// Column-major ground truth.
  const ColumnStore& columns() const { return columns_; }

  /// Row-major view, materialized lazily from the columns on first use
  /// after a modification (the compatibility shim for row-at-a-time
  /// consumers). Safe to call from concurrent readers.
  const std::vector<Row>& rows() const;

  int64_t num_rows() const {
    return static_cast<int64_t>(columns_.num_rows);
  }

  /// Appends one row after checking arity and types (NULL always allowed).
  Status Append(Row row);

  /// Bulk-append without per-row type checks (generators produce typed
  /// data); still validates arity.
  Status AppendUnchecked(std::vector<Row> rows);

  /// Drops all rows and statistics.
  void Clear();

  /// Recomputes column statistics; invoked lazily by stats().
  void AnalyzeStats() const;

  /// Per-column statistics (computed on first use after modification) in
  /// the stats subsystem's ColumnStatistics shape — the lazy tier fills
  /// null_count/min/max plus an exact distinct_count and leaves the
  /// histogram empty (ANALYZE builds the rich tier). Safe to call from
  /// concurrent readers; the first caller computes.
  const std::vector<ColumnStatistics>& stats() const;

  /// Segment granularity for the zone-map / compressed-segment index;
  /// invalidates any built index. Tests shrink it to get many segments
  /// over small tables.
  void set_segment_rows(size_t rows);
  size_t segment_rows() const { return segment_rows_; }

  /// The segment index (zone maps + compressed columns), built on first
  /// use after a modification. Safe to call from concurrent readers.
  const TableSegments& segments() const;

  /// True when the index is already built and current — a non-building
  /// probe for planner-side consumers that must not pay the build cost.
  bool has_segments() const {
    return segments_valid_.load(std::memory_order_acquire);
  }

 private:
  void AnalyzeStatsLocked() const;
  void Invalidate();

  std::string name_;
  Schema schema_;
  ColumnStore columns_;
  mutable std::mutex rows_mutex_;
  mutable std::vector<Row> row_shim_;
  mutable std::atomic<bool> rows_valid_{false};
  mutable std::mutex stats_mutex_;
  mutable std::vector<ColumnStatistics> stats_;
  mutable std::atomic<bool> stats_valid_{false};
  size_t segment_rows_ = kDefaultRowsPerSegment;
  mutable std::mutex segments_mutex_;
  mutable TableSegments segments_;
  mutable std::atomic<bool> segments_valid_{false};
};

}  // namespace bypass

#endif  // BYPASSDB_CATALOG_TABLE_H_
