// In-memory base table with per-column statistics for cost estimation.
#ifndef BYPASSDB_CATALOG_TABLE_H_
#define BYPASSDB_CATALOG_TABLE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "types/row.h"
#include "types/schema.h"

namespace bypass {

/// Simple per-column statistics: row count is table-level; NDV, min and max
/// drive selectivity estimation (recomputed on demand after loads).
struct ColumnStats {
  int64_t distinct_count = 0;
  Value min;  ///< NULL when the column is all-NULL or table empty
  Value max;
  int64_t null_count = 0;
};

/// A heap of rows with a schema. Not thread-safe; the engine is
/// single-threaded by design (the paper's experiments are single-stream).
class Table {
 public:
  Table(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  const std::vector<Row>& rows() const { return rows_; }
  int64_t num_rows() const { return static_cast<int64_t>(rows_.size()); }

  /// Appends one row after checking arity and types (NULL always allowed).
  Status Append(Row row);

  /// Bulk-append without per-row type checks (generators produce typed
  /// data); still validates arity.
  Status AppendUnchecked(std::vector<Row> rows);

  /// Drops all rows and statistics.
  void Clear();

  /// Recomputes column statistics; invoked lazily by stats().
  void AnalyzeStats() const;

  /// Per-column statistics (computed on first use after modification).
  const std::vector<ColumnStats>& stats() const;

 private:
  std::string name_;
  Schema schema_;
  std::vector<Row> rows_;
  mutable std::vector<ColumnStats> stats_;
  mutable bool stats_valid_ = false;
};

}  // namespace bypass

#endif  // BYPASSDB_CATALOG_TABLE_H_
