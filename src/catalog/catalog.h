// Catalog: the namespace of base tables, plus the ANALYZE-built
// statistics store. Statistics are versioned: every update bumps a
// global stats epoch and the owning table's stats version, which
// prepared queries use to detect that their plan was costed against
// stale statistics and must be re-planned.
#ifndef BYPASSDB_CATALOG_CATALOG_H_
#define BYPASSDB_CATALOG_CATALOG_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "catalog/table.h"
#include "common/result.h"
#include "stats/column_stats.h"

namespace bypass {

/// Owns all base tables of a database instance. Table names are
/// case-insensitive (stored lower-cased).
///
/// Thread safety: the table namespace itself follows the engine's
/// contract (DDL never races queries), but the statistics store may be
/// read by concurrent planning threads while an ANALYZE publishes new
/// statistics, so it is guarded by a shared mutex and hands out
/// shared_ptr snapshots that stay valid across republication.
class Catalog {
 public:
  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Creates an empty table. Fails with AlreadyExists on duplicates.
  Result<Table*> CreateTable(const std::string& name, Schema schema);

  /// Looks up a table; NotFound if absent.
  Result<Table*> GetTable(const std::string& name) const;

  bool HasTable(const std::string& name) const;

  /// Removes a table (and its statistics); NotFound if absent.
  Status DropTable(const std::string& name);

  /// All table names, sorted.
  std::vector<std::string> TableNames() const;

  // --- ANALYZE statistics store ---

  /// Publishes statistics for `name`, bumping the global stats epoch and
  /// the table's stats version.
  void SetTableStatistics(const std::string& name, TableStatistics stats);

  /// Snapshot of `name`'s statistics; nullptr when never analyzed. The
  /// snapshot is immutable and survives later republication.
  std::shared_ptr<const TableStatistics> GetTableStatistics(
      const std::string& name) const;

  /// Monotonic counter bumped by every statistics change anywhere in the
  /// catalog; cheap staleness fast-path for prepared queries.
  uint64_t stats_epoch() const {
    return stats_epoch_.load(std::memory_order_acquire);
  }

  /// Per-table statistics version (0: never analyzed). Bumped on every
  /// SetTableStatistics for the table and on DropTable.
  uint64_t TableStatsVersion(const std::string& name) const;

 private:
  std::map<std::string, std::unique_ptr<Table>> tables_;

  mutable std::shared_mutex stats_mutex_;
  std::map<std::string, std::shared_ptr<const TableStatistics>>
      table_stats_;
  std::map<std::string, uint64_t> stats_versions_;
  std::atomic<uint64_t> stats_epoch_{0};
};

}  // namespace bypass

#endif  // BYPASSDB_CATALOG_CATALOG_H_
