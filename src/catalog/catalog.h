// Catalog: the namespace of base tables.
#ifndef BYPASSDB_CATALOG_CATALOG_H_
#define BYPASSDB_CATALOG_CATALOG_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "catalog/table.h"
#include "common/result.h"

namespace bypass {

/// Owns all base tables of a database instance. Table names are
/// case-insensitive (stored lower-cased).
class Catalog {
 public:
  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Creates an empty table. Fails with AlreadyExists on duplicates.
  Result<Table*> CreateTable(const std::string& name, Schema schema);

  /// Looks up a table; NotFound if absent.
  Result<Table*> GetTable(const std::string& name) const;

  bool HasTable(const std::string& name) const;

  /// Removes a table; NotFound if absent.
  Status DropTable(const std::string& name);

  /// All table names, sorted.
  std::vector<std::string> TableNames() const;

 private:
  std::map<std::string, std::unique_ptr<Table>> tables_;
};

}  // namespace bypass

#endif  // BYPASSDB_CATALOG_CATALOG_H_
