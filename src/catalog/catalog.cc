#include "catalog/catalog.h"

#include "common/string_util.h"

namespace bypass {

Result<Table*> Catalog::CreateTable(const std::string& name,
                                    Schema schema) {
  const std::string key = ToLower(name);
  if (tables_.count(key) > 0) {
    return Status::AlreadyExists("table already exists: " + name);
  }
  auto table = std::make_unique<Table>(key, std::move(schema));
  Table* ptr = table.get();
  tables_.emplace(key, std::move(table));
  return ptr;
}

Result<Table*> Catalog::GetTable(const std::string& name) const {
  const auto it = tables_.find(ToLower(name));
  if (it == tables_.end()) {
    return Status::NotFound("table not found: " + name);
  }
  return it->second.get();
}

bool Catalog::HasTable(const std::string& name) const {
  return tables_.count(ToLower(name)) > 0;
}

Status Catalog::DropTable(const std::string& name) {
  const std::string key = ToLower(name);
  const auto it = tables_.find(key);
  if (it == tables_.end()) {
    return Status::NotFound("table not found: " + name);
  }
  tables_.erase(it);
  {
    std::unique_lock lock(stats_mutex_);
    if (table_stats_.erase(key) > 0) {
      ++stats_versions_[key];
      stats_epoch_.fetch_add(1, std::memory_order_acq_rel);
    }
  }
  return Status::OK();
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, _] : tables_) names.push_back(name);
  return names;
}

void Catalog::SetTableStatistics(const std::string& name,
                                 TableStatistics stats) {
  const std::string key = ToLower(name);
  std::unique_lock lock(stats_mutex_);
  table_stats_[key] =
      std::make_shared<const TableStatistics>(std::move(stats));
  ++stats_versions_[key];
  stats_epoch_.fetch_add(1, std::memory_order_acq_rel);
}

std::shared_ptr<const TableStatistics> Catalog::GetTableStatistics(
    const std::string& name) const {
  std::shared_lock lock(stats_mutex_);
  const auto it = table_stats_.find(ToLower(name));
  return it == table_stats_.end() ? nullptr : it->second;
}

uint64_t Catalog::TableStatsVersion(const std::string& name) const {
  std::shared_lock lock(stats_mutex_);
  const auto it = stats_versions_.find(ToLower(name));
  return it == stats_versions_.end() ? 0 : it->second;
}

}  // namespace bypass
