// Canonical translation of SQL into the logical algebra (paper Sec. 3:
// "translation into the algebra yields ... σ_{A1=count(σ_{A2=B2}(S))∨p}(R)").
// Nested blocks become SubqueryExpr nodes inside selection predicates —
// algebraic expressions in subscripts. Plain multi-table FROM/WHERE parts
// are assembled into a join tree (as any reasonable system, including the
// paper's Natix, would); only the nesting itself stays canonical.
#ifndef BYPASSDB_FRONTEND_TRANSLATOR_H_
#define BYPASSDB_FRONTEND_TRANSLATOR_H_

#include <string>
#include <vector>

#include "algebra/logical_op.h"
#include "catalog/catalog.h"
#include "common/result.h"
#include "sql/ast.h"

namespace bypass {

class Translator {
 public:
  explicit Translator(const Catalog* catalog) : catalog_(catalog) {}

  /// Translates a top-level statement into a canonical logical plan.
  Result<LogicalOpPtr> Translate(const SelectStmt& stmt);

 private:
  /// Translates one query block. `outer_schema` is the enclosing block's
  /// scope (nullptr at top level); references resolving only there are
  /// marked correlated (is_outer). `for_subquery` rejects ORDER BY.
  Result<LogicalOpPtr> TranslateBlock(const SelectStmt& stmt,
                                      const Schema* outer_schema,
                                      bool for_subquery);

  /// Translates a (boolean or scalar) AST expression against the block's
  /// combined FROM schema. Aggregate calls are rejected (they are only
  /// legal in select lists, where TranslateBlock intercepts them).
  Result<ExprPtr> TranslateExpr(const AstExpr& ast, const Schema& local,
                                const Schema* outer);

  /// Resolves a column reference: local scope first, then the enclosing
  /// scope (correlated). The result is fully qualified.
  Result<ExprPtr> ResolveColumn(const AstExpr& ast, const Schema& local,
                                const Schema* outer);

  Result<AggregateSpec> TranslateAggregate(const AstExpr& ast,
                                           const Schema& local,
                                           const Schema* outer);

  /// Like TranslateExpr, but aggregate calls are folded into `*aggs` and
  /// replaced by references to their output columns (GROUP BY select
  /// lists and HAVING predicates).
  Result<ExprPtr> TranslateExprWithAggs(const AstExpr& ast,
                                        const Schema& local,
                                        const Schema* outer,
                                        std::vector<AggregateSpec>* aggs);

  /// Translates a grouped block: GROUP BY keys, aggregate select list,
  /// optional HAVING.
  Result<LogicalOpPtr> TranslateGroupBy(const SelectStmt& stmt,
                                        LogicalOpPtr input,
                                        const Schema& local,
                                        const Schema* outer_schema);

  std::string FreshName(const char* prefix);

  const Catalog* catalog_;
  int name_counter_ = 0;
};

}  // namespace bypass

#endif  // BYPASSDB_FRONTEND_TRANSLATOR_H_
