#include "frontend/translator.h"

#include <unordered_set>

#include "common/check.h"
#include "common/string_util.h"
#include "expr/expr_util.h"

namespace bypass {

namespace {

/// True if the AST expression contains an aggregate call at any depth
/// outside nested subqueries.
bool ContainsAggCall(const AstExpr& ast) {
  if (ast.kind == AstExprKind::kAggCall) return true;
  if (ast.kind == AstExprKind::kSubquery ||
      ast.kind == AstExprKind::kExists ||
      ast.kind == AstExprKind::kInSubquery) {
    return false;
  }
  for (const AstExprPtr& c : ast.children) {
    if (c && ContainsAggCall(*c)) return true;
  }
  return false;
}

/// Qualifiers referenced by a translated expression (outer refs excluded).
void CollectLocalQualifiers(const ExprPtr& expr,
                            std::unordered_set<std::string>* out) {
  for (ColumnRefExpr* ref : CollectColumnRefs(expr.get())) {
    if (!ref->is_outer()) out->insert(ref->qualifier());
  }
}

bool HasOuterRefOrSubquery(const ExprPtr& expr) {
  return ContainsOuterRef(expr) || ContainsSubquery(expr);
}

}  // namespace

std::string Translator::FreshName(const char* prefix) {
  return std::string("$") + prefix + std::to_string(name_counter_++);
}

Result<LogicalOpPtr> Translator::Translate(const SelectStmt& stmt) {
  BYPASS_ASSIGN_OR_RETURN(
      LogicalOpPtr plan,
      TranslateBlock(stmt, /*outer_schema=*/nullptr,
                     /*for_subquery=*/false));
  // Set operations: UNION ALL concatenates (our disjoint multiset union);
  // plain UNION additionally eliminates duplicates.
  const SelectStmt* block = &stmt;
  while (block->union_next != nullptr) {
    const bool bag = block->union_all;
    const SelectStmt& next = *block->union_next;
    BYPASS_ASSIGN_OR_RETURN(
        LogicalOpPtr rhs,
        TranslateBlock(next, /*outer_schema=*/nullptr,
                       /*for_subquery=*/true));
    if (rhs->schema().num_columns() != plan->schema().num_columns()) {
      return Status::BindError(
          "UNION branches must have the same number of columns");
    }
    plan = std::make_shared<UnionOp>(
        LogicalInput{std::move(plan), StreamPort::kOut},
        LogicalInput{std::move(rhs), StreamPort::kOut});
    if (!bag) {
      plan = std::make_shared<DistinctOp>(
          LogicalInput{std::move(plan), StreamPort::kOut});
    }
    block = &next;
  }
  return plan;
}

Result<ExprPtr> Translator::ResolveColumn(const AstExpr& ast,
                                          const Schema& local,
                                          const Schema* outer) {
  // Local scope first; fall back to the enclosing block (correlation).
  auto local_slot = local.FindColumn(ast.qualifier, ast.name);
  if (local_slot.ok()) {
    const ColumnDef& col = local.column(*local_slot);
    return MakeColumnRef(col.qualifier, col.name, /*is_outer=*/false);
  }
  if (local_slot.status().code() == StatusCode::kInvalidArgument) {
    return Status::BindError(local_slot.status().message());
  }
  if (outer != nullptr) {
    auto outer_slot = outer->FindColumn(ast.qualifier, ast.name);
    if (outer_slot.ok()) {
      const ColumnDef& col = outer->column(*outer_slot);
      return MakeColumnRef(col.qualifier, col.name, /*is_outer=*/true);
    }
    if (outer_slot.status().code() == StatusCode::kInvalidArgument) {
      return Status::BindError(outer_slot.status().message());
    }
  }
  return Status::BindError(
      "column not found in this or the enclosing block: " +
      ast.ToString() +
      " (only direct correlation is supported, as in the paper)");
}

Result<AggregateSpec> Translator::TranslateAggregate(const AstExpr& ast,
                                                     const Schema& local,
                                                     const Schema* outer) {
  AggregateSpec spec;
  if (ast.agg_name == "count") {
    spec.func = AggFunc::kCount;
  } else if (ast.agg_name == "sum") {
    spec.func = AggFunc::kSum;
  } else if (ast.agg_name == "avg") {
    spec.func = AggFunc::kAvg;
  } else if (ast.agg_name == "min") {
    spec.func = AggFunc::kMin;
  } else if (ast.agg_name == "max") {
    spec.func = AggFunc::kMax;
  } else {
    return Status::BindError("unknown aggregate: " + ast.agg_name);
  }
  spec.distinct = ast.distinct;
  if (ast.children.empty()) {
    if (spec.func != AggFunc::kCount) {
      return Status::BindError(ast.agg_name + "(*) is not valid SQL");
    }
    spec.arg = nullptr;  // '*'
  } else {
    BYPASS_ASSIGN_OR_RETURN(spec.arg,
                            TranslateExpr(*ast.children[0], local, outer));
  }
  spec.output_name = FreshName("agg");
  return spec;
}

Result<ExprPtr> Translator::TranslateExprWithAggs(
    const AstExpr& ast, const Schema& local, const Schema* outer,
    std::vector<AggregateSpec>* aggs) {
  if (ast.kind == AstExprKind::kAggCall) {
    BYPASS_ASSIGN_OR_RETURN(AggregateSpec spec,
                            TranslateAggregate(ast, local, outer));
    ExprPtr ref = MakeColumnRef("", spec.output_name);
    aggs->push_back(std::move(spec));
    return ref;
  }
  if (!ContainsAggCall(ast)) return TranslateExpr(ast, local, outer);
  // Rebuild boolean/arithmetic structure around translated children.
  switch (ast.kind) {
    case AstExprKind::kCompare: {
      BYPASS_ASSIGN_OR_RETURN(
          ExprPtr l,
          TranslateExprWithAggs(*ast.children[0], local, outer, aggs));
      BYPASS_ASSIGN_OR_RETURN(
          ExprPtr r,
          TranslateExprWithAggs(*ast.children[1], local, outer, aggs));
      return MakeComparison(ast.compare_op, std::move(l), std::move(r));
    }
    case AstExprKind::kAnd:
    case AstExprKind::kOr: {
      std::vector<ExprPtr> terms;
      for (const AstExprPtr& c : ast.children) {
        BYPASS_ASSIGN_OR_RETURN(
            ExprPtr t, TranslateExprWithAggs(*c, local, outer, aggs));
        terms.push_back(std::move(t));
      }
      return ast.kind == AstExprKind::kAnd ? MakeAnd(std::move(terms))
                                           : MakeOr(std::move(terms));
    }
    case AstExprKind::kNot: {
      BYPASS_ASSIGN_OR_RETURN(
          ExprPtr inner,
          TranslateExprWithAggs(*ast.children[0], local, outer, aggs));
      return MakeNot(std::move(inner));
    }
    case AstExprKind::kArith: {
      BYPASS_ASSIGN_OR_RETURN(
          ExprPtr l,
          TranslateExprWithAggs(*ast.children[0], local, outer, aggs));
      BYPASS_ASSIGN_OR_RETURN(
          ExprPtr r,
          TranslateExprWithAggs(*ast.children[1], local, outer, aggs));
      ArithOp op = ArithOp::kAdd;
      switch (ast.arith_op) {
        case AstArithOp::kAdd:
          op = ArithOp::kAdd;
          break;
        case AstArithOp::kSub:
          op = ArithOp::kSub;
          break;
        case AstArithOp::kMul:
          op = ArithOp::kMul;
          break;
        case AstArithOp::kDiv:
          op = ArithOp::kDiv;
          break;
      }
      return ExprPtr(std::make_shared<ArithmeticExpr>(op, std::move(l),
                                                      std::move(r)));
    }
    default:
      return Status::Unsupported(
          "aggregate call in an unsupported position: " + ast.ToString());
  }
}

Result<LogicalOpPtr> Translator::TranslateGroupBy(
    const SelectStmt& stmt, LogicalOpPtr input, const Schema& local,
    const Schema* outer_schema) {
  // Keys must be plain columns of the block's FROM schema.
  std::vector<GroupKey> keys;
  Schema key_schema;
  for (const AstExprPtr& key_ast : stmt.group_by) {
    BYPASS_ASSIGN_OR_RETURN(ExprPtr key,
                            TranslateExpr(*key_ast, local, outer_schema));
    if (key->kind() != ExprKind::kColumnRef ||
        static_cast<const ColumnRefExpr*>(key.get())->is_outer()) {
      return Status::Unsupported(
          "GROUP BY supports plain local columns only: " +
          key_ast->ToString());
    }
    const auto* ref = static_cast<const ColumnRefExpr*>(key.get());
    keys.push_back(GroupKey{ref->qualifier(), ref->name()});
    BYPASS_ASSIGN_OR_RETURN(
        int slot, local.FindColumn(ref->qualifier(), ref->name()));
    key_schema.AddColumn(local.column(slot));
  }

  // Select items: group columns or aggregate expressions.
  std::vector<AggregateSpec> aggs;
  std::vector<NamedExpr> items;
  for (const SelectItem& item : stmt.items) {
    if (item.is_star) {
      return Status::Unsupported("SELECT * with GROUP BY");
    }
    ExprPtr translated;
    if (ContainsAggCall(*item.expr)) {
      BYPASS_ASSIGN_OR_RETURN(
          translated,
          TranslateExprWithAggs(*item.expr, local, outer_schema, &aggs));
    } else {
      // Must reference group keys only.
      BYPASS_ASSIGN_OR_RETURN(
          translated, TranslateExpr(*item.expr, local, outer_schema));
      for (ColumnRefExpr* ref : CollectColumnRefs(translated.get())) {
        if (ref->is_outer()) continue;
        if (!key_schema.HasColumn(ref->qualifier(), ref->name())) {
          return Status::BindError(
              "column must appear in GROUP BY or an aggregate: " +
              ref->ToString());
        }
      }
    }
    std::string name = item.alias;
    std::string qualifier;
    if (name.empty() && translated->kind() == ExprKind::kColumnRef) {
      const auto* ref =
          static_cast<const ColumnRefExpr*>(translated.get());
      name = ref->name();
      qualifier = ref->qualifier();
    }
    if (name.empty()) name = FreshName("col");
    items.push_back(NamedExpr{std::move(translated), std::move(name),
                              std::move(qualifier)});
  }

  // HAVING folds its aggregates into the same grouping operator.
  ExprPtr having;
  if (stmt.having != nullptr) {
    BYPASS_ASSIGN_OR_RETURN(
        having,
        TranslateExprWithAggs(*stmt.having, local, outer_schema, &aggs));
    for (ColumnRefExpr* ref : CollectColumnRefs(having.get())) {
      if (ref->is_outer() || ref->name().rfind("$agg", 0) == 0) continue;
      if (!key_schema.HasColumn(ref->qualifier(), ref->name())) {
        return Status::BindError(
            "HAVING column must appear in GROUP BY or an aggregate: " +
            ref->ToString());
      }
    }
  }

  LogicalOpPtr plan = std::make_shared<GroupByOp>(
      LogicalInput{std::move(input), StreamPort::kOut}, std::move(keys),
      std::move(aggs), /*scalar=*/false);
  if (having != nullptr) {
    plan = std::make_shared<SelectOp>(
        LogicalInput{plan, StreamPort::kOut}, std::move(having));
  }
  return LogicalOpPtr(std::make_shared<ProjectOp>(
      LogicalInput{plan, StreamPort::kOut}, std::move(items)));
}

Result<ExprPtr> Translator::TranslateExpr(const AstExpr& ast,
                                          const Schema& local,
                                          const Schema* outer) {
  switch (ast.kind) {
    case AstExprKind::kLiteral:
      return MakeLiteral(ast.value);
    case AstExprKind::kColumnRef:
      return ResolveColumn(ast, local, outer);
    case AstExprKind::kCompare: {
      BYPASS_ASSIGN_OR_RETURN(ExprPtr l,
                              TranslateExpr(*ast.children[0], local, outer));
      BYPASS_ASSIGN_OR_RETURN(ExprPtr r,
                              TranslateExpr(*ast.children[1], local, outer));
      return MakeComparison(ast.compare_op, std::move(l), std::move(r));
    }
    case AstExprKind::kAnd:
    case AstExprKind::kOr: {
      std::vector<ExprPtr> terms;
      terms.reserve(ast.children.size());
      for (const AstExprPtr& c : ast.children) {
        BYPASS_ASSIGN_OR_RETURN(ExprPtr t,
                                TranslateExpr(*c, local, outer));
        terms.push_back(std::move(t));
      }
      return ast.kind == AstExprKind::kAnd ? MakeAnd(std::move(terms))
                                           : MakeOr(std::move(terms));
    }
    case AstExprKind::kNot: {
      BYPASS_ASSIGN_OR_RETURN(ExprPtr inner,
                              TranslateExpr(*ast.children[0], local, outer));
      // Fold NOT (EXISTS ...) / NOT (x IN ...) into the subquery node
      // itself so the unnesting rewriter sees the quantifier directly.
      if (inner->kind() == ExprKind::kSubquery) {
        auto* sq = static_cast<SubqueryExpr*>(inner.get());
        if (sq->subquery_kind() != SubqueryKind::kScalar) {
          sq->set_negated(!sq->negated());
          return inner;
        }
      }
      return MakeNot(std::move(inner));
    }
    case AstExprKind::kArith: {
      BYPASS_ASSIGN_OR_RETURN(ExprPtr l,
                              TranslateExpr(*ast.children[0], local, outer));
      BYPASS_ASSIGN_OR_RETURN(ExprPtr r,
                              TranslateExpr(*ast.children[1], local, outer));
      ArithOp op = ArithOp::kAdd;
      switch (ast.arith_op) {
        case AstArithOp::kAdd:
          op = ArithOp::kAdd;
          break;
        case AstArithOp::kSub:
          op = ArithOp::kSub;
          break;
        case AstArithOp::kMul:
          op = ArithOp::kMul;
          break;
        case AstArithOp::kDiv:
          op = ArithOp::kDiv;
          break;
      }
      return ExprPtr(std::make_shared<ArithmeticExpr>(op, std::move(l),
                                                      std::move(r)));
    }
    case AstExprKind::kNegate: {
      BYPASS_ASSIGN_OR_RETURN(ExprPtr inner,
                              TranslateExpr(*ast.children[0], local, outer));
      return ExprPtr(std::make_shared<ArithmeticExpr>(
          ArithOp::kSub, MakeLiteral(Value::Int64(0)),
          std::move(inner)));
    }
    case AstExprKind::kLike: {
      BYPASS_ASSIGN_OR_RETURN(ExprPtr input,
                              TranslateExpr(*ast.children[0], local, outer));
      return ExprPtr(std::make_shared<LikeExpr>(std::move(input),
                                                ast.pattern, ast.negated));
    }
    case AstExprKind::kIsNull: {
      BYPASS_ASSIGN_OR_RETURN(ExprPtr input,
                              TranslateExpr(*ast.children[0], local, outer));
      return ExprPtr(
          std::make_shared<IsNullExpr>(std::move(input), ast.negated));
    }
    case AstExprKind::kAggCall:
      return Status::BindError(
          "aggregate call outside a select list: " + ast.ToString());
    case AstExprKind::kSubquery: {
      BYPASS_ASSIGN_OR_RETURN(
          LogicalOpPtr plan,
          TranslateBlock(*ast.subquery, &local, /*for_subquery=*/true));
      if (plan->schema().num_columns() != 1) {
        return Status::BindError(
            "scalar subquery must produce exactly one column");
      }
      return ExprPtr(std::make_shared<SubqueryExpr>(SubqueryKind::kScalar,
                                                    std::move(plan)));
    }
    case AstExprKind::kExists: {
      BYPASS_ASSIGN_OR_RETURN(
          LogicalOpPtr plan,
          TranslateBlock(*ast.subquery, &local, /*for_subquery=*/true));
      auto sq = std::make_shared<SubqueryExpr>(SubqueryKind::kExists,
                                               std::move(plan));
      sq->set_negated(ast.negated);
      return ExprPtr(sq);
    }
    case AstExprKind::kInSubquery: {
      BYPASS_ASSIGN_OR_RETURN(ExprPtr probe,
                              TranslateExpr(*ast.children[0], local, outer));
      BYPASS_ASSIGN_OR_RETURN(
          LogicalOpPtr plan,
          TranslateBlock(*ast.subquery, &local, /*for_subquery=*/true));
      if (plan->schema().num_columns() != 1) {
        return Status::BindError(
            "IN subquery must produce exactly one column");
      }
      auto sq = std::make_shared<SubqueryExpr>(SubqueryKind::kIn,
                                               std::move(plan));
      sq->set_negated(ast.negated);
      sq->set_probe(std::move(probe));
      return ExprPtr(sq);
    }
    case AstExprKind::kQuantified: {
      // Paper outlook item (3): θ SOME/ANY and θ ALL. Desugared into
      // existential blocks that the bypass semi-/anti-join rewrites then
      // unnest:
      //   x θ SOME (SELECT e FROM F WHERE p)
      //     ≡ EXISTS (SELECT * FROM F WHERE p AND x θ e)
      //   x θ ALL (SELECT e FROM F WHERE p)
      //     ≡ NOT EXISTS (SELECT * FROM F WHERE p AND NOT (x θ e))
      // (The ALL form assumes two-valued comparisons, i.e. NULL-free
      // columns — the same restriction as NOT IN; see DESIGN.md.)
      if (ast.subquery->items.size() != 1 ||
          ast.subquery->items[0].is_star) {
        return Status::BindError(
            "quantified subquery must produce exactly one column");
      }
      if (ContainsAggCall(*ast.subquery->items[0].expr)) {
        return Status::Unsupported(
            "aggregates in quantified subqueries are not supported");
      }
      const bool all = ast.quantifier == AstQuantifier::kAll;
      auto membership = std::make_shared<AstExpr>();
      membership->kind = AstExprKind::kCompare;
      // ALL negates the comparison operator directly (two-valued logic)
      // so the witness predicate stays a plain correlated comparison the
      // rewriter can turn into a join condition.
      membership->compare_op =
          all ? NegateCompareOp(ast.compare_op) : ast.compare_op;
      membership->children.push_back(ast.children[0]);
      membership->children.push_back(ast.subquery->items[0].expr);
      AstExprPtr added = membership;
      auto block = std::make_shared<SelectStmt>();
      block->items.push_back(SelectItem{/*is_star=*/true, nullptr, ""});
      block->from = ast.subquery->from;
      if (ast.subquery->where != nullptr) {
        auto conj = std::make_shared<AstExpr>();
        conj->kind = AstExprKind::kAnd;
        conj->children.push_back(ast.subquery->where);
        conj->children.push_back(std::move(added));
        block->where = std::move(conj);
      } else {
        block->where = std::move(added);
      }
      BYPASS_ASSIGN_OR_RETURN(
          LogicalOpPtr plan,
          TranslateBlock(*block, &local, /*for_subquery=*/true));
      auto sq = std::make_shared<SubqueryExpr>(SubqueryKind::kExists,
                                               std::move(plan));
      sq->set_negated(all);
      return ExprPtr(sq);
    }
    case AstExprKind::kInList: {
      // x IN (v1, ..., vn) desugars into a disjunction of equalities —
      // which also exercises the bypass machinery downstream.
      BYPASS_ASSIGN_OR_RETURN(ExprPtr probe,
                              TranslateExpr(*ast.children[0], local, outer));
      std::vector<ExprPtr> disjuncts;
      for (size_t i = 1; i < ast.children.size(); ++i) {
        BYPASS_ASSIGN_OR_RETURN(
            ExprPtr v, TranslateExpr(*ast.children[i], local, outer));
        disjuncts.push_back(MakeComparison(CompareOp::kEq, probe->Clone(),
                                           std::move(v)));
      }
      ExprPtr in = MakeOr(std::move(disjuncts));
      return ast.negated ? MakeNot(std::move(in)) : in;
    }
  }
  BYPASS_UNREACHABLE("bad AstExprKind");
}

Result<LogicalOpPtr> Translator::TranslateBlock(const SelectStmt& stmt,
                                                const Schema* outer_schema,
                                                bool for_subquery) {
  if (stmt.from.empty()) {
    return Status::Unsupported("FROM clause is required");
  }
  if (for_subquery && !stmt.order_by.empty()) {
    return Status::Unsupported("ORDER BY inside a subquery");
  }
  if (for_subquery && stmt.limit >= 0) {
    return Status::Unsupported("LIMIT inside a subquery");
  }

  // ---- FROM: resolve tables, build per-table Get nodes. ----
  std::vector<LogicalOpPtr> relations;
  std::vector<std::string> aliases;
  Schema local;
  {
    std::unordered_set<std::string> seen_aliases;
    for (const TableRef& ref : stmt.from) {
      const std::string alias = ToLower(ref.alias);
      if (!seen_aliases.insert(alias).second) {
        return Status::BindError("duplicate table alias: " + alias);
      }
      LogicalOpPtr relation;
      Schema qualified;
      if (ref.subquery != nullptr) {
        // Derived table: translate the block (SQL scoping: it cannot see
        // the enclosing FROM), then re-qualify its output columns with
        // the alias. Because its operators become part of this block's
        // plan, disjunctive subqueries inside it are unnested by the
        // same fixpoint pass (paper outlook item 2).
        BYPASS_ASSIGN_OR_RETURN(
            LogicalOpPtr block,
            TranslateBlock(*ref.subquery, outer_schema,
                           /*for_subquery=*/true));
        std::vector<NamedExpr> items;
        std::unordered_set<std::string> seen_names;
        for (const ColumnDef& c : block->schema().columns()) {
          if (!seen_names.insert(c.name).second) {
            return Status::BindError(
                "derived table '" + alias +
                "' has a duplicate output column: " + c.name);
          }
          items.push_back(NamedExpr{MakeColumnRef(c.qualifier, c.name),
                                    c.name, alias});
        }
        relation = std::make_shared<ProjectOp>(
            LogicalInput{std::move(block), StreamPort::kOut},
            std::move(items));
        qualified = relation->schema();
      } else {
        BYPASS_ASSIGN_OR_RETURN(Table * table,
                                catalog_->GetTable(ref.table));
        for (const ColumnDef& c : table->schema().columns()) {
          qualified.AddColumn({c.name, c.type, alias});
        }
        relation = std::make_shared<GetOp>(table->name(), alias,
                                           qualified);
      }
      relations.push_back(std::move(relation));
      aliases.push_back(alias);
      local = Schema::Concat(local, qualified);
    }
  }

  // ---- WHERE: translate, split conjuncts into buckets. ----
  // per-table filters (pushed below the join), equi-join edges, and the
  // residual selection on top (correlated predicates, subqueries,
  // disjunctions spanning tables, ...).
  std::vector<std::vector<ExprPtr>> table_filters(relations.size());
  struct JoinEdge {
    size_t left_rel;
    size_t right_rel;
    ExprPtr pred;
    bool used = false;
  };
  std::vector<JoinEdge> edges;
  std::vector<ExprPtr> residual;

  auto alias_index = [&](const std::string& qualifier) -> int {
    for (size_t i = 0; i < aliases.size(); ++i) {
      if (aliases[i] == qualifier) return static_cast<int>(i);
    }
    return -1;
  };

  if (stmt.where != nullptr) {
    BYPASS_ASSIGN_OR_RETURN(ExprPtr where,
                            TranslateExpr(*stmt.where, local,
                                          outer_schema));
    for (const ExprPtr& conjunct : SplitConjuncts(where)) {
      if (HasOuterRefOrSubquery(conjunct)) {
        residual.push_back(conjunct);
        continue;
      }
      std::unordered_set<std::string> quals;
      CollectLocalQualifiers(conjunct, &quals);
      if (quals.size() == 1) {
        const int idx = alias_index(*quals.begin());
        BYPASS_CHECK(idx >= 0);
        table_filters[static_cast<size_t>(idx)].push_back(conjunct);
        continue;
      }
      if (quals.size() == 2 &&
          conjunct->kind() == ExprKind::kComparison) {
        const auto* cmp =
            static_cast<const ComparisonExpr*>(conjunct.get());
        if (cmp->op() == CompareOp::kEq &&
            cmp->left()->kind() == ExprKind::kColumnRef &&
            cmp->right()->kind() == ExprKind::kColumnRef) {
          const auto* l =
              static_cast<const ColumnRefExpr*>(cmp->left().get());
          const auto* r =
              static_cast<const ColumnRefExpr*>(cmp->right().get());
          const int li = alias_index(l->qualifier());
          const int ri = alias_index(r->qualifier());
          if (li >= 0 && ri >= 0 && li != ri) {
            edges.push_back(JoinEdge{static_cast<size_t>(li),
                                     static_cast<size_t>(ri), conjunct});
            continue;
          }
        }
      }
      residual.push_back(conjunct);
    }
  }

  // ---- Assemble a left-deep join tree, greedily following equi edges.
  for (size_t i = 0; i < relations.size(); ++i) {
    if (!table_filters[i].empty()) {
      relations[i] = std::make_shared<SelectOp>(
          LogicalInput{relations[i], StreamPort::kOut},
          MakeAnd(std::move(table_filters[i])));
    }
  }
  std::vector<bool> joined(relations.size(), false);
  LogicalOpPtr plan = relations[0];
  joined[0] = true;
  size_t num_joined = 1;
  while (num_joined < relations.size()) {
    // Find an unjoined relation connected by some edge; else cross join
    // the first remaining one.
    int next = -1;
    for (const JoinEdge& e : edges) {
      if (e.used) continue;
      if (joined[e.left_rel] != joined[e.right_rel]) {
        next = static_cast<int>(joined[e.left_rel] ? e.right_rel
                                                   : e.left_rel);
        break;
      }
    }
    if (next < 0) {
      for (size_t i = 0; i < relations.size(); ++i) {
        if (!joined[i]) {
          next = static_cast<int>(i);
          break;
        }
      }
    }
    // Gather every edge between the connected set and `next`.
    std::vector<ExprPtr> preds;
    for (JoinEdge& e : edges) {
      if (e.used) continue;
      const bool connects =
          (joined[e.left_rel] && e.right_rel == static_cast<size_t>(next)) ||
          (joined[e.right_rel] && e.left_rel == static_cast<size_t>(next));
      if (connects) {
        e.used = true;
        preds.push_back(e.pred);
      }
    }
    plan = std::make_shared<JoinOp>(
        LogicalInput{plan, StreamPort::kOut},
        LogicalInput{relations[static_cast<size_t>(next)],
                     StreamPort::kOut},
        preds.empty() ? nullptr : MakeAnd(std::move(preds)));
    joined[static_cast<size_t>(next)] = true;
    ++num_joined;
  }
  // Leftover edges (cycles in the join graph) become a post-join filter.
  for (JoinEdge& e : edges) {
    if (!e.used) residual.push_back(e.pred);
  }

  if (!residual.empty()) {
    plan = std::make_shared<SelectOp>(LogicalInput{plan, StreamPort::kOut},
                                      MakeAnd(std::move(residual)));
  }

  // ---- Select list. ----
  bool has_agg = false;
  for (const SelectItem& item : stmt.items) {
    if (!item.is_star && ContainsAggCall(*item.expr)) has_agg = true;
  }

  if (!stmt.group_by.empty()) {
    BYPASS_ASSIGN_OR_RETURN(
        plan, TranslateGroupBy(stmt, plan, local, outer_schema));
  } else if (stmt.having != nullptr) {
    return Status::Unsupported("HAVING requires GROUP BY");
  } else if (has_agg) {
    // Aggregate block (no GROUP BY in the supported subset): every item
    // must be a single aggregate call — the shape the unnesting
    // equivalences expect (f as the top-level member of the predicate).
    std::vector<AggregateSpec> aggs;
    std::vector<NamedExpr> items;
    for (const SelectItem& item : stmt.items) {
      if (item.is_star || item.expr->kind != AstExprKind::kAggCall) {
        return Status::Unsupported(
            "select list mixes aggregates with non-aggregates");
      }
      BYPASS_ASSIGN_OR_RETURN(
          AggregateSpec spec,
          TranslateAggregate(*item.expr, local, outer_schema));
      const std::string out_name =
          item.alias.empty() ? spec.output_name : item.alias;
      items.push_back(NamedExpr{
          MakeColumnRef("", spec.output_name), out_name, ""});
      aggs.push_back(std::move(spec));
    }
    plan = std::make_shared<GroupByOp>(
        LogicalInput{plan, StreamPort::kOut}, std::vector<GroupKey>{},
        std::move(aggs), /*scalar=*/true);
    plan = std::make_shared<ProjectOp>(
        LogicalInput{plan, StreamPort::kOut}, std::move(items));
  } else {
    // Plain select list. SELECT * keeps the input schema unchanged.
    const bool star_only =
        stmt.items.size() == 1 && stmt.items[0].is_star;
    if (!star_only) {
      std::vector<NamedExpr> items;
      for (const SelectItem& item : stmt.items) {
        if (item.is_star) {
          for (const ColumnDef& c : local.columns()) {
            items.push_back(NamedExpr{MakeColumnRef(c.qualifier, c.name),
                                      c.name, c.qualifier});
          }
          continue;
        }
        BYPASS_ASSIGN_OR_RETURN(
            ExprPtr e, TranslateExpr(*item.expr, local, outer_schema));
        std::string name = item.alias;
        std::string qualifier;
        if (name.empty() && e->kind() == ExprKind::kColumnRef) {
          const auto* ref = static_cast<const ColumnRefExpr*>(e.get());
          name = ref->name();
          qualifier = ref->qualifier();
        }
        if (name.empty()) name = FreshName("col");
        items.push_back(NamedExpr{std::move(e), std::move(name),
                                  std::move(qualifier)});
      }
      plan = std::make_shared<ProjectOp>(
          LogicalInput{plan, StreamPort::kOut}, std::move(items));
    }
  }

  if (stmt.distinct) {
    plan = std::make_shared<DistinctOp>(
        LogicalInput{plan, StreamPort::kOut});
  }

  if (!stmt.order_by.empty()) {
    std::vector<SortKey> keys;
    for (const OrderItem& item : stmt.order_by) {
      // ORDER BY resolves against the block's output schema.
      BYPASS_ASSIGN_OR_RETURN(
          ExprPtr e,
          TranslateExpr(*item.expr, plan->schema(), outer_schema));
      keys.push_back(SortKey{std::move(e), item.descending});
    }
    plan = std::make_shared<SortOp>(LogicalInput{plan, StreamPort::kOut},
                                    std::move(keys));
  }

  if (stmt.limit >= 0) {
    plan = std::make_shared<LimitOp>(
        LogicalInput{plan, StreamPort::kOut}, stmt.limit);
  }
  return plan;
}

}  // namespace bypass
