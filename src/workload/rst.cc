#include "workload/rst.h"

#include <cmath>

#include "common/rng.h"

namespace bypass {

Schema RstTableSchema(char prefix) {
  Schema schema;
  for (int i = 1; i <= 4; ++i) {
    schema.AddColumn(
        {std::string(1, prefix) + std::to_string(i), DataType::kInt64, ""});
  }
  return schema;
}

namespace {

Status LoadOne(Database* db, const std::string& name, char prefix,
               double sf, const RstOptions& options, uint64_t seed) {
  if (db->catalog()->HasTable(name)) {
    BYPASS_RETURN_IF_ERROR(db->catalog()->DropTable(name));
  }
  BYPASS_ASSIGN_OR_RETURN(Table * table,
                          db->CreateTable(name, RstTableSchema(prefix)));
  const int64_t rows = static_cast<int64_t>(
      std::llround(sf * static_cast<double>(options.rows_per_sf)));
  Rng rng(seed);
  // The linking columns (*1) must hit plausible group counts: groups have
  // ≈ rows/group_domain members on average.
  const int64_t max_count =
      std::max<int64_t>(2, 2 * rows / std::max<int64_t>(1,
                                                        options.group_domain));
  std::vector<Row> data;
  data.reserve(static_cast<size_t>(rows));
  for (int64_t i = 0; i < rows; ++i) {
    Row row;
    row.reserve(4);
    row.push_back(Value::Int64(rng.UniformInt(0, max_count)));
    row.push_back(Value::Int64(rng.UniformInt(0, options.group_domain - 1)));
    row.push_back(Value::Int64(rng.UniformInt(0, rows > 0 ? rows - 1 : 0)));
    row.push_back(Value::Int64(rng.UniformInt(0, options.filter_domain - 1)));
    data.push_back(std::move(row));
  }
  return table->AppendUnchecked(std::move(data));
}

}  // namespace

Status LoadRst(Database* db, double sf_r, double sf_s, double sf_t,
               const RstOptions& options) {
  BYPASS_RETURN_IF_ERROR(
      LoadOne(db, "r", 'a', sf_r, options, options.seed * 3 + 1));
  BYPASS_RETURN_IF_ERROR(
      LoadOne(db, "s", 'b', sf_s, options, options.seed * 3 + 2));
  BYPASS_RETURN_IF_ERROR(
      LoadOne(db, "t", 'c', sf_t, options, options.seed * 3 + 3));
  return Status::OK();
}

}  // namespace bypass
