// A dbgen-like generator for the TPC-H schema (paper Sec. 4.1 runs Query
// 2d on TPC-H data at SF 0.01 … 10). Cardinalities and key structure
// follow the specification (region 5, nation 25, supplier 10000·SF, part
// 200000·SF, partsupp 4 per part with the spec's supplier-assignment
// formula); text columns use compact synthetic strings, and money columns
// use uniform doubles in the spec's ranges. Dates are encoded as INT64
// yyyymmdd. The sales side (customer/orders/lineitem) is optional — Query
// 2d does not touch it.
#ifndef BYPASSDB_WORKLOAD_TPCH_H_
#define BYPASSDB_WORKLOAD_TPCH_H_

#include <cstdint>

#include "common/result.h"
#include "engine/database.h"

namespace bypass {

struct TpchOptions {
  double scale_factor = 0.01;
  bool include_sales = false;  ///< also generate customer/orders/lineitem
  uint64_t seed = 7;
};

/// Creates (or replaces) the TPC-H tables in `db`.
Status LoadTpch(Database* db, const TpchOptions& options = TpchOptions());

/// The paper's introductory "Query 2d": TPC-H Q2 with the minimum-cost
/// subquery made disjunctive (… OR ps_availqty > 2000), using standard
/// TPC-H column names.
const char* TpchQuery2d();

/// The conjunctive original (plain TPC-H Q2 shape) for comparison.
const char* TpchQuery2();

}  // namespace bypass

#endif  // BYPASSDB_WORKLOAD_TPCH_H_
