#include "workload/tpch.h"

#include <cmath>
#include <string>
#include <vector>

#include "common/rng.h"

namespace bypass {

namespace {

constexpr const char* kRegions[5] = {"AFRICA", "AMERICA", "ASIA", "EUROPE",
                                     "MIDDLE EAST"};

// The specification's 25 nations with their region keys.
struct NationDef {
  const char* name;
  int64_t region;
};
constexpr NationDef kNations[25] = {
    {"ALGERIA", 0},      {"ARGENTINA", 1}, {"BRAZIL", 1},
    {"CANADA", 1},       {"EGYPT", 4},     {"ETHIOPIA", 0},
    {"FRANCE", 3},       {"GERMANY", 3},   {"INDIA", 2},
    {"INDONESIA", 2},    {"IRAN", 4},      {"IRAQ", 4},
    {"JAPAN", 2},        {"JORDAN", 4},    {"KENYA", 0},
    {"MOROCCO", 0},      {"MOZAMBIQUE", 0}, {"PERU", 1},
    {"CHINA", 2},        {"ROMANIA", 3},   {"SAUDI ARABIA", 4},
    {"VIETNAM", 2},      {"RUSSIA", 3},    {"UNITED KINGDOM", 3},
    {"UNITED STATES", 1}};

constexpr const char* kTypeSyllable1[6] = {"STANDARD", "SMALL", "MEDIUM",
                                           "LARGE", "ECONOMY", "PROMO"};
constexpr const char* kTypeSyllable2[5] = {"ANODIZED", "BURNISHED",
                                           "PLATED", "POLISHED",
                                           "BRUSHED"};
constexpr const char* kTypeSyllable3[5] = {"TIN", "NICKEL", "BRASS",
                                           "STEEL", "COPPER"};
constexpr const char* kContainers[8] = {"SM CASE", "SM BOX",  "MED BAG",
                                        "MED BOX", "LG CASE", "LG BOX",
                                        "JUMBO PACK", "WRAP JAR"};

std::string PaddedKeyName(const char* prefix, int64_t key) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%s#%09lld", prefix,
                static_cast<long long>(key));
  return buf;
}

double Money(Rng* rng, double lo, double hi) {
  // Two decimal places, as dbgen produces.
  const double cents = std::floor(rng->UniformDouble(lo * 100, hi * 100));
  return cents / 100.0;
}

Status ReplaceTable(Database* db, const std::string& name, Schema schema,
                    Table** out) {
  if (db->catalog()->HasTable(name)) {
    BYPASS_RETURN_IF_ERROR(db->catalog()->DropTable(name));
  }
  BYPASS_ASSIGN_OR_RETURN(*out, db->CreateTable(name, std::move(schema)));
  return Status::OK();
}

Schema MakeSchema(std::initializer_list<std::pair<const char*, DataType>>
                      columns) {
  Schema schema;
  for (const auto& [name, type] : columns) {
    schema.AddColumn({name, type, ""});
  }
  return schema;
}

}  // namespace

Status LoadTpch(Database* db, const TpchOptions& options) {
  const double sf = options.scale_factor;
  Rng rng(options.seed);

  // ---- region ----
  {
    Table* table = nullptr;
    BYPASS_RETURN_IF_ERROR(ReplaceTable(
        db, "region",
        MakeSchema({{"r_regionkey", DataType::kInt64},
                    {"r_name", DataType::kString},
                    {"r_comment", DataType::kString}}),
        &table));
    std::vector<Row> rows;
    for (int64_t i = 0; i < 5; ++i) {
      rows.push_back(Row{Value::Int64(i), Value::String(kRegions[i]),
                         Value::String(rng.AlphaString(20))});
    }
    BYPASS_RETURN_IF_ERROR(table->AppendUnchecked(std::move(rows)));
  }

  // ---- nation ----
  {
    Table* table = nullptr;
    BYPASS_RETURN_IF_ERROR(ReplaceTable(
        db, "nation",
        MakeSchema({{"n_nationkey", DataType::kInt64},
                    {"n_name", DataType::kString},
                    {"n_regionkey", DataType::kInt64},
                    {"n_comment", DataType::kString}}),
        &table));
    std::vector<Row> rows;
    for (int64_t i = 0; i < 25; ++i) {
      rows.push_back(Row{Value::Int64(i), Value::String(kNations[i].name),
                         Value::Int64(kNations[i].region),
                         Value::String(rng.AlphaString(20))});
    }
    BYPASS_RETURN_IF_ERROR(table->AppendUnchecked(std::move(rows)));
  }

  const int64_t num_suppliers = std::max<int64_t>(
      1, static_cast<int64_t>(std::llround(10000 * sf)));
  const int64_t num_parts = std::max<int64_t>(
      1, static_cast<int64_t>(std::llround(200000 * sf)));

  // ---- supplier ----
  {
    Table* table = nullptr;
    BYPASS_RETURN_IF_ERROR(ReplaceTable(
        db, "supplier",
        MakeSchema({{"s_suppkey", DataType::kInt64},
                    {"s_name", DataType::kString},
                    {"s_address", DataType::kString},
                    {"s_nationkey", DataType::kInt64},
                    {"s_phone", DataType::kString},
                    {"s_acctbal", DataType::kDouble},
                    {"s_comment", DataType::kString}}),
        &table));
    std::vector<Row> rows;
    rows.reserve(static_cast<size_t>(num_suppliers));
    for (int64_t i = 1; i <= num_suppliers; ++i) {
      const int64_t nation = rng.UniformInt(0, 24);
      char phone[64];
      std::snprintf(phone, sizeof(phone), "%02d-%03d-%03d-%04d",
                    static_cast<int>(10 + nation),
                    static_cast<int>(rng.UniformInt(100, 999)),
                    static_cast<int>(rng.UniformInt(100, 999)),
                    static_cast<int>(rng.UniformInt(1000, 9999)));
      rows.push_back(Row{Value::Int64(i),
                         Value::String(PaddedKeyName("Supplier", i)),
                         Value::String(rng.AlphaString(15)),
                         Value::Int64(nation), Value::String(phone),
                         Value::Double(Money(&rng, -999.99, 9999.99)),
                         Value::String(rng.AlphaString(25))});
    }
    BYPASS_RETURN_IF_ERROR(table->AppendUnchecked(std::move(rows)));
  }

  // ---- part ----
  {
    Table* table = nullptr;
    BYPASS_RETURN_IF_ERROR(ReplaceTable(
        db, "part",
        MakeSchema({{"p_partkey", DataType::kInt64},
                    {"p_name", DataType::kString},
                    {"p_mfgr", DataType::kString},
                    {"p_brand", DataType::kString},
                    {"p_type", DataType::kString},
                    {"p_size", DataType::kInt64},
                    {"p_container", DataType::kString},
                    {"p_retailprice", DataType::kDouble},
                    {"p_comment", DataType::kString}}),
        &table));
    std::vector<Row> rows;
    rows.reserve(static_cast<size_t>(num_parts));
    for (int64_t i = 1; i <= num_parts; ++i) {
      const int64_t mfgr = rng.UniformInt(1, 5);
      const int64_t brand = mfgr * 10 + rng.UniformInt(1, 5);
      std::string type = std::string(kTypeSyllable1[rng.UniformInt(0, 5)]) +
                         " " + kTypeSyllable2[rng.UniformInt(0, 4)] + " " +
                         kTypeSyllable3[rng.UniformInt(0, 4)];
      const double retail =
          (90000.0 + ((static_cast<double>(i) / 10.0) -
                      std::floor(static_cast<double>(i) / 10.0) * 0.0) +
           100.0 * static_cast<double>(i % 1000)) /
          100.0;
      rows.push_back(
          Row{Value::Int64(i), Value::String(rng.AlphaString(12)),
              Value::String("Manufacturer#" + std::to_string(mfgr)),
              Value::String("Brand#" + std::to_string(brand)),
              Value::String(std::move(type)),
              Value::Int64(rng.UniformInt(1, 50)),
              Value::String(kContainers[rng.UniformInt(0, 7)]),
              Value::Double(retail), Value::String(rng.AlphaString(10))});
    }
    BYPASS_RETURN_IF_ERROR(table->AppendUnchecked(std::move(rows)));
  }

  // ---- partsupp (4 suppliers per part, spec assignment formula) ----
  {
    Table* table = nullptr;
    BYPASS_RETURN_IF_ERROR(ReplaceTable(
        db, "partsupp",
        MakeSchema({{"ps_partkey", DataType::kInt64},
                    {"ps_suppkey", DataType::kInt64},
                    {"ps_availqty", DataType::kInt64},
                    {"ps_supplycost", DataType::kDouble},
                    {"ps_comment", DataType::kString}}),
        &table));
    std::vector<Row> rows;
    rows.reserve(static_cast<size_t>(num_parts * 4));
    const int64_t s = num_suppliers;
    // Four distinct suppliers per part, spread across the supplier space
    // (the spec's intent; its exact formula degenerates for the tiny
    // supplier counts our scaled-down tests use, so we use an equivalent
    // stride assignment that stays collision-free whenever s >= 4).
    const int64_t stride = std::max<int64_t>(1, s / 4);
    for (int64_t p = 1; p <= num_parts; ++p) {
      for (int64_t i = 0; i < 4; ++i) {
        const int64_t suppkey = (p + i * stride) % s + 1;
        rows.push_back(Row{Value::Int64(p), Value::Int64(suppkey),
                           Value::Int64(rng.UniformInt(1, 9999)),
                           Value::Double(Money(&rng, 1.0, 1000.0)),
                           Value::String(rng.AlphaString(15))});
      }
    }
    BYPASS_RETURN_IF_ERROR(table->AppendUnchecked(std::move(rows)));
  }

  if (!options.include_sales) return Status::OK();

  const int64_t num_customers = std::max<int64_t>(
      1, static_cast<int64_t>(std::llround(150000 * sf)));
  const int64_t num_orders = num_customers * 10;

  // ---- customer ----
  {
    Table* table = nullptr;
    BYPASS_RETURN_IF_ERROR(ReplaceTable(
        db, "customer",
        MakeSchema({{"c_custkey", DataType::kInt64},
                    {"c_name", DataType::kString},
                    {"c_address", DataType::kString},
                    {"c_nationkey", DataType::kInt64},
                    {"c_phone", DataType::kString},
                    {"c_acctbal", DataType::kDouble},
                    {"c_mktsegment", DataType::kString},
                    {"c_comment", DataType::kString}}),
        &table));
    static const char* kSegments[5] = {"AUTOMOBILE", "BUILDING",
                                       "FURNITURE", "MACHINERY",
                                       "HOUSEHOLD"};
    std::vector<Row> rows;
    rows.reserve(static_cast<size_t>(num_customers));
    for (int64_t i = 1; i <= num_customers; ++i) {
      rows.push_back(Row{Value::Int64(i),
                         Value::String(PaddedKeyName("Customer", i)),
                         Value::String(rng.AlphaString(15)),
                         Value::Int64(rng.UniformInt(0, 24)),
                         Value::String(rng.AlphaString(12)),
                         Value::Double(Money(&rng, -999.99, 9999.99)),
                         Value::String(kSegments[rng.UniformInt(0, 4)]),
                         Value::String(rng.AlphaString(20))});
    }
    BYPASS_RETURN_IF_ERROR(table->AppendUnchecked(std::move(rows)));
  }

  // ---- orders + lineitem ----
  {
    Table* orders = nullptr;
    BYPASS_RETURN_IF_ERROR(ReplaceTable(
        db, "orders",
        MakeSchema({{"o_orderkey", DataType::kInt64},
                    {"o_custkey", DataType::kInt64},
                    {"o_orderstatus", DataType::kString},
                    {"o_totalprice", DataType::kDouble},
                    {"o_orderdate", DataType::kInt64},
                    {"o_orderpriority", DataType::kString},
                    {"o_comment", DataType::kString}}),
        &orders));
    Table* lineitem = nullptr;
    BYPASS_RETURN_IF_ERROR(ReplaceTable(
        db, "lineitem",
        MakeSchema({{"l_orderkey", DataType::kInt64},
                    {"l_partkey", DataType::kInt64},
                    {"l_suppkey", DataType::kInt64},
                    {"l_linenumber", DataType::kInt64},
                    {"l_quantity", DataType::kInt64},
                    {"l_extendedprice", DataType::kDouble},
                    {"l_discount", DataType::kDouble},
                    {"l_tax", DataType::kDouble},
                    {"l_shipdate", DataType::kInt64},
                    {"l_comment", DataType::kString}}),
        &lineitem));
    static const char* kPriorities[5] = {"1-URGENT", "2-HIGH", "3-MEDIUM",
                                         "4-NOT SPECIFIED", "5-LOW"};
    std::vector<Row> order_rows;
    std::vector<Row> line_rows;
    order_rows.reserve(static_cast<size_t>(num_orders));
    for (int64_t o = 1; o <= num_orders; ++o) {
      const int64_t custkey = rng.UniformInt(1, num_customers);
      const int64_t year = rng.UniformInt(1992, 1998);
      const int64_t month = rng.UniformInt(1, 12);
      const int64_t day = rng.UniformInt(1, 28);
      const int64_t orderdate = year * 10000 + month * 100 + day;
      const int64_t num_lines = rng.UniformInt(1, 7);
      double total = 0;
      for (int64_t l = 1; l <= num_lines; ++l) {
        const int64_t qty = rng.UniformInt(1, 50);
        const double price = Money(&rng, 900.0, 10000.0);
        total += price * static_cast<double>(qty);
        line_rows.push_back(
            Row{Value::Int64(o), Value::Int64(rng.UniformInt(1, num_parts)),
                Value::Int64(rng.UniformInt(1, num_suppliers)),
                Value::Int64(l), Value::Int64(qty),
                Value::Double(price * static_cast<double>(qty)),
                Value::Double(rng.UniformInt(0, 10) / 100.0),
                Value::Double(rng.UniformInt(0, 8) / 100.0),
                Value::Int64(orderdate + rng.UniformInt(1, 90)),
                Value::String(rng.AlphaString(10))});
      }
      order_rows.push_back(
          Row{Value::Int64(o), Value::Int64(custkey),
              Value::String(rng.Bernoulli(0.5) ? "O" : "F"),
              Value::Double(total), Value::Int64(orderdate),
              Value::String(kPriorities[rng.UniformInt(0, 4)]),
              Value::String(rng.AlphaString(15))});
    }
    BYPASS_RETURN_IF_ERROR(orders->AppendUnchecked(std::move(order_rows)));
    BYPASS_RETURN_IF_ERROR(
        lineitem->AppendUnchecked(std::move(line_rows)));
  }
  return Status::OK();
}

const char* TpchQuery2d() {
  return R"sql(
SELECT s_acctbal, s_name, n_name, p_partkey, p_mfgr, s_address, s_phone,
       s_comment
FROM part, supplier, partsupp, nation, region
WHERE p_partkey = ps_partkey
  AND s_suppkey = ps_suppkey
  AND p_size = 15
  AND p_type LIKE '%BRASS'
  AND s_nationkey = n_nationkey
  AND n_regionkey = r_regionkey
  AND r_name = 'EUROPE'
  AND (ps_supplycost = (SELECT MIN(ps_supplycost)
                        FROM partsupp, supplier, nation, region
                        WHERE s_suppkey = ps_suppkey
                          AND p_partkey = ps_partkey
                          AND s_nationkey = n_nationkey
                          AND n_regionkey = r_regionkey
                          AND r_name = 'EUROPE')
       OR ps_availqty > 2000)
ORDER BY s_acctbal DESC, n_name, s_name, p_partkey
)sql";
}

const char* TpchQuery2() {
  return R"sql(
SELECT s_acctbal, s_name, n_name, p_partkey, p_mfgr, s_address, s_phone,
       s_comment
FROM part, supplier, partsupp, nation, region
WHERE p_partkey = ps_partkey
  AND s_suppkey = ps_suppkey
  AND p_size = 15
  AND p_type LIKE '%BRASS'
  AND s_nationkey = n_nationkey
  AND n_regionkey = r_regionkey
  AND r_name = 'EUROPE'
  AND ps_supplycost = (SELECT MIN(ps_supplycost)
                       FROM partsupp, supplier, nation, region
                       WHERE s_suppkey = ps_suppkey
                         AND p_partkey = ps_partkey
                         AND s_nationkey = n_nationkey
                         AND n_regionkey = r_regionkey
                         AND r_name = 'EUROPE')
ORDER BY s_acctbal DESC, n_name, s_name, p_partkey
)sql";
}

}  // namespace bypass
