// The paper's synthetic RST schema (Sec. 4.1): three tables R, S, T with
// four integer columns each (a1..a4 / b1..b4 / c1..c4); scaling factor k
// gives 10000*k rows. The paper does not publish value distributions; the
// defaults below are chosen so its predicates have sensible selectivities
// and are documented in EXPERIMENTS.md:
//   *2 (correlation column)   uniform [0, group_domain)   — ≈|S|/1000
//                             tuples per group at the default 1000
//   *1 (linking column)       uniform [0, 2·rows/group_domain] — the
//                             linking equality hits a real group count
//                             for a nontrivial fraction of tuples
//   *3                        uniform [0, rows)           — near-unique
//   *4 (simple predicate)     uniform [0, 10000)          — "x > 1500"
//                             passes ≈85 %
#ifndef BYPASSDB_WORKLOAD_RST_H_
#define BYPASSDB_WORKLOAD_RST_H_

#include <cstdint>

#include "common/result.h"
#include "engine/database.h"

namespace bypass {

struct RstOptions {
  /// Rows per unit of scale factor (paper: 10000; benchmarks may scale
  /// down for the quadratic canonical plans).
  int64_t rows_per_sf = 10000;
  /// Domain of the correlation columns (*2).
  int64_t group_domain = 1000;
  /// Domain of the *4 predicate columns.
  int64_t filter_domain = 10000;
  uint64_t seed = 42;
};

/// Creates (or replaces) tables r, s, t with scale factors sf_r, sf_s,
/// sf_t. The paper scales the outer (SF1) and inner (SF2) blocks
/// independently.
Status LoadRst(Database* db, double sf_r, double sf_s, double sf_t,
               const RstOptions& options = RstOptions());

/// Schema helper: four INT64 columns with the given letter prefix.
Schema RstTableSchema(char prefix);

}  // namespace bypass

#endif  // BYPASSDB_WORKLOAD_RST_H_
