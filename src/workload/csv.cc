#include "workload/csv.h"

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace bypass {

namespace {

/// Splits one logical CSV record (no embedded newlines supported) into
/// fields; `quoted[i]` records whether field i was quoted (distinguishes
/// NULL from the empty string).
Status SplitLine(const std::string& line, char delimiter,
                 std::vector<std::string>* fields,
                 std::vector<bool>* quoted) {
  fields->clear();
  quoted->clear();
  std::string current;
  bool in_quotes = false;
  bool was_quoted = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current.push_back(c);
      }
    } else if (c == '"' && current.empty()) {
      in_quotes = true;
      was_quoted = true;
    } else if (c == delimiter) {
      fields->push_back(std::move(current));
      quoted->push_back(was_quoted);
      current.clear();
      was_quoted = false;
    } else {
      current.push_back(c);
    }
  }
  if (in_quotes) {
    return Status::InvalidArgument("unterminated quoted CSV field");
  }
  fields->push_back(std::move(current));
  quoted->push_back(was_quoted);
  return Status::OK();
}

Result<Value> ParseField(const std::string& field, bool was_quoted,
                         DataType type) {
  if (field.empty() && !was_quoted) return Value::Null();
  switch (type) {
    case DataType::kInt64: {
      errno = 0;
      char* end = nullptr;
      const long long v = std::strtoll(field.c_str(), &end, 10);
      if (errno == ERANGE || end == field.c_str() || *end != '\0') {
        return Status::InvalidArgument("not an integer: '" + field + "'");
      }
      return Value::Int64(v);
    }
    case DataType::kDouble: {
      char* end = nullptr;
      const double v = std::strtod(field.c_str(), &end);
      if (end == field.c_str() || *end != '\0') {
        return Status::InvalidArgument("not a number: '" + field + "'");
      }
      return Value::Double(v);
    }
    case DataType::kBool: {
      if (field == "true" || field == "1") return Value::Bool(true);
      if (field == "false" || field == "0") return Value::Bool(false);
      return Status::InvalidArgument("not a boolean: '" + field + "'");
    }
    case DataType::kString:
      return Value::String(field);
  }
  return Status::InvalidArgument("unknown column type");
}

bool NeedsQuoting(const std::string& s, char delimiter) {
  if (s.empty()) return true;  // distinguish '' from NULL
  for (char c : s) {
    if (c == delimiter || c == '"' || c == '\n') return true;
  }
  return false;
}

void AppendField(std::string* out, const std::string& field,
                 char delimiter) {
  if (!NeedsQuoting(field, delimiter)) {
    *out += field;
    return;
  }
  out->push_back('"');
  for (char c : field) {
    if (c == '"') out->push_back('"');
    out->push_back(c);
  }
  out->push_back('"');
}

}  // namespace

Result<std::vector<Row>> ParseCsv(const std::string& text,
                                  const Schema& schema,
                                  const CsvOptions& options) {
  std::vector<Row> rows;
  std::istringstream stream(text);
  std::string line;
  int line_number = 0;
  bool skipped_header = !options.has_header;
  std::vector<std::string> fields;
  std::vector<bool> quoted;
  while (std::getline(stream, line)) {
    ++line_number;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (!skipped_header) {
      skipped_header = true;
      continue;
    }
    BYPASS_RETURN_IF_ERROR(
        SplitLine(line, options.delimiter, &fields, &quoted));
    if (static_cast<int>(fields.size()) != schema.num_columns()) {
      return Status::InvalidArgument(
          "line " + std::to_string(line_number) + ": expected " +
          std::to_string(schema.num_columns()) + " fields, got " +
          std::to_string(fields.size()));
    }
    Row row;
    row.reserve(fields.size());
    for (int i = 0; i < schema.num_columns(); ++i) {
      auto value = ParseField(fields[static_cast<size_t>(i)],
                              quoted[static_cast<size_t>(i)],
                              schema.column(i).type);
      if (!value.ok()) {
        return Status::InvalidArgument(
            "line " + std::to_string(line_number) + ", column '" +
            schema.column(i).name + "': " + value.status().message());
      }
      row.push_back(std::move(*value));
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

Status LoadCsvFile(const std::string& path, Table* table,
                   const CsvOptions& options) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    return Status::NotFound("cannot open CSV file: " + path);
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  BYPASS_ASSIGN_OR_RETURN(
      std::vector<Row> rows,
      ParseCsv(buffer.str(), table->schema(), options));
  return table->AppendUnchecked(std::move(rows));
}

std::string WriteCsv(const Schema& schema, const std::vector<Row>& rows,
                     const CsvOptions& options) {
  std::string out;
  if (options.has_header) {
    for (int i = 0; i < schema.num_columns(); ++i) {
      if (i > 0) out.push_back(options.delimiter);
      out += schema.column(i).name;
    }
    out.push_back('\n');
  }
  for (const Row& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out.push_back(options.delimiter);
      const Value& v = row[i];
      if (v.is_null()) continue;  // NULL: empty unquoted field
      if (v.is_string()) {
        AppendField(&out, v.string_value(), options.delimiter);
      } else if (v.is_bool()) {
        out += v.bool_value() ? "true" : "false";
      } else if (v.is_int64()) {
        out += std::to_string(v.int64_value());
      } else {
        std::ostringstream os;
        os << v.double_value();
        out += os.str();
      }
    }
    out.push_back('\n');
  }
  return out;
}

}  // namespace bypass
