// CSV import/export for tables: the adoption path for users who want to
// run the unnesting engine on their own data.
//
// Format: comma-separated, first line optional header, '"'-quoted fields
// with doubled quotes as escapes. Parsing is schema-driven: INT64/DOUBLE
// columns parse numerically, STRING stays text, BOOL accepts
// true/false/0/1; empty unquoted fields load as NULL.
#ifndef BYPASSDB_WORKLOAD_CSV_H_
#define BYPASSDB_WORKLOAD_CSV_H_

#include <string>

#include "catalog/table.h"
#include "common/result.h"

namespace bypass {

struct CsvOptions {
  bool has_header = true;
  char delimiter = ',';
};

/// Parses CSV text into rows matching `schema`. Errors carry 1-based line
/// numbers.
Result<std::vector<Row>> ParseCsv(const std::string& text,
                                  const Schema& schema,
                                  const CsvOptions& options = CsvOptions());

/// Appends the rows of a CSV file to `table`.
Status LoadCsvFile(const std::string& path, Table* table,
                   const CsvOptions& options = CsvOptions());

/// Renders rows as CSV (header from `schema` when requested). NULLs
/// become empty fields; strings are quoted when needed.
std::string WriteCsv(const Schema& schema, const std::vector<Row>& rows,
                     const CsvOptions& options = CsvOptions());

}  // namespace bypass

#endif  // BYPASSDB_WORKLOAD_CSV_H_
