#include "rewrite/classify.h"

#include "algebra/plan_util.h"
#include "expr/expr_util.h"

namespace bypass {

const char* KimTypeToString(KimType type) {
  switch (type) {
    case KimType::kA:
      return "A";
    case KimType::kN:
      return "N";
    case KimType::kJ:
      return "J";
    case KimType::kJA:
      return "JA";
  }
  return "?";
}

namespace {

/// True when the block computes a top-level scalar aggregate.
bool BlockHasAggregate(const LogicalOp& root) {
  const LogicalOp* node = &root;
  // Peel shaping operators above the aggregation.
  while (true) {
    switch (node->kind()) {
      case LogicalOpKind::kProject:
      case LogicalOpKind::kDistinct:
      case LogicalOpKind::kSort:
        node = node->inputs()[0].op.get();
        continue;
      default:
        break;
    }
    break;
  }
  return node->kind() == LogicalOpKind::kGroupBy &&
         static_cast<const GroupByOp*>(node)->scalar();
}

/// Direct child blocks of a plan (subquery expressions one level down).
void CollectDirectBlocks(const LogicalOp& root,
                         std::vector<const SubqueryExpr*>* out) {
  for (const LogicalOp* node : TopologicalNodes(root)) {
    for (const ExprPtr& e : NodeExpressions(*node)) {
      VisitExpr(e, [&](const ExprPtr& child) {
        if (child->kind() == ExprKind::kSubquery) {
          out->push_back(static_cast<const SubqueryExpr*>(child.get()));
        }
      });
    }
  }
}

struct NestingCounts {
  int total_blocks = 0;
  int max_direct_children = 0;
};

void CountNesting(const LogicalOp& root, NestingCounts* counts) {
  std::vector<const SubqueryExpr*> blocks;
  CollectDirectBlocks(root, &blocks);
  counts->total_blocks += static_cast<int>(blocks.size());
  if (static_cast<int>(blocks.size()) > counts->max_direct_children) {
    counts->max_direct_children = static_cast<int>(blocks.size());
  }
  for (const SubqueryExpr* b : blocks) {
    if (b->plan()) CountNesting(*b->plan(), counts);
  }
}

}  // namespace

KimType ClassifySubquery(const SubqueryExpr& subquery) {
  const bool correlated =
      subquery.plan() != nullptr && PlanIsCorrelated(*subquery.plan());
  const bool aggregate = subquery.subquery_kind() == SubqueryKind::kScalar &&
                         subquery.plan() != nullptr &&
                         BlockHasAggregate(*subquery.plan());
  if (aggregate) return correlated ? KimType::kJA : KimType::kA;
  return correlated ? KimType::kJ : KimType::kN;
}

const char* NestingStructureToString(NestingStructure s) {
  switch (s) {
    case NestingStructure::kFlat:
      return "flat";
    case NestingStructure::kSimple:
      return "simple";
    case NestingStructure::kLinear:
      return "linear";
    case NestingStructure::kTree:
      return "tree";
  }
  return "?";
}

NestingStructure ClassifyNesting(const LogicalOp& root) {
  NestingCounts counts;
  CountNesting(root, &counts);
  if (counts.total_blocks == 0) return NestingStructure::kFlat;
  if (counts.max_direct_children >= 2) return NestingStructure::kTree;
  if (counts.total_blocks == 1) return NestingStructure::kSimple;
  return NestingStructure::kLinear;
}

}  // namespace bypass
