#include "rewrite/rank.h"

#include <algorithm>
#include <optional>

namespace bypass {

namespace {

/// Statistics-backed estimate for `col θ literal`; nullopt when the shape
/// or the available statistics do not support one.
std::optional<double> StatsComparisonSelectivity(
    const ComparisonExpr& cmp, const StatsProvider& stats) {
  const Expr* col = nullptr;
  const Expr* lit = nullptr;
  CompareOp op = cmp.op();
  if (cmp.left()->kind() == ExprKind::kColumnRef &&
      cmp.right()->kind() == ExprKind::kLiteral) {
    col = cmp.left().get();
    lit = cmp.right().get();
  } else if (cmp.right()->kind() == ExprKind::kColumnRef &&
             cmp.left()->kind() == ExprKind::kLiteral) {
    col = cmp.right().get();
    lit = cmp.left().get();
    op = FlipCompareOp(op);
  } else {
    return std::nullopt;
  }
  const auto* ref = static_cast<const ColumnRefExpr*>(col);
  if (ref->is_outer()) return std::nullopt;
  int64_t rows = 0;
  const ColumnStats* column =
      stats.GetColumnStats(ref->qualifier(), ref->name(), &rows);
  if (column == nullptr || rows <= 0) return std::nullopt;
  const Value& value = static_cast<const LiteralExpr*>(lit)->value();
  if (value.is_null()) return 0.0;  // comparison with NULL never holds

  const double non_null_fraction =
      1.0 - static_cast<double>(column->null_count) /
                static_cast<double>(rows);
  if (op == CompareOp::kEq || op == CompareOp::kNe) {
    if (column->distinct_count <= 0) return std::nullopt;
    const double eq = non_null_fraction /
                      static_cast<double>(column->distinct_count);
    return op == CompareOp::kEq ? eq
                                : std::max(0.0, non_null_fraction - eq);
  }
  // Range operators: interpolate on numeric min/max.
  if (column->min.is_null() || !column->min.is_numeric() ||
      !value.is_numeric()) {
    return std::nullopt;
  }
  const double lo = column->min.AsDouble();
  const double hi = column->max.AsDouble();
  if (hi <= lo) return std::nullopt;
  const double v = value.AsDouble();
  const double below = std::clamp((v - lo) / (hi - lo), 0.0, 1.0);
  switch (op) {
    case CompareOp::kLt:
    case CompareOp::kLe:
      return below * non_null_fraction;
    case CompareOp::kGt:
    case CompareOp::kGe:
      return (1.0 - below) * non_null_fraction;
    default:
      return std::nullopt;
  }
}

}  // namespace

double EstimateSelectivity(const Expr& pred, const StatsProvider* stats) {
  switch (pred.kind()) {
    case ExprKind::kComparison: {
      const auto& cmp = static_cast<const ComparisonExpr&>(pred);
      if (stats != nullptr) {
        if (auto estimate = StatsComparisonSelectivity(cmp, *stats)) {
          return *estimate;
        }
      }
      switch (cmp.op()) {
        case CompareOp::kEq:
          return 0.1;
        case CompareOp::kNe:
          return 0.9;
        default:
          return 1.0 / 3.0;
      }
    }
    case ExprKind::kAnd: {
      double s = 1.0;
      for (const ExprPtr& t :
           static_cast<const AndExpr&>(pred).terms()) {
        s *= EstimateSelectivity(*t, stats);
      }
      return s;
    }
    case ExprKind::kOr: {
      double pass_none = 1.0;
      for (const ExprPtr& t : static_cast<const OrExpr&>(pred).terms()) {
        pass_none *= 1.0 - EstimateSelectivity(*t, stats);
      }
      return 1.0 - pass_none;
    }
    case ExprKind::kNot:
      return 1.0 - EstimateSelectivity(
                       *static_cast<const NotExpr&>(pred).input(), stats);
    case ExprKind::kLike:
      return 0.25;
    case ExprKind::kIsNull:
      return 0.1;
    case ExprKind::kLiteral: {
      const auto& lit = static_cast<const LiteralExpr&>(pred);
      if (lit.value().is_bool()) {
        return lit.value().bool_value() ? 1.0 : 0.0;
      }
      return 0.5;
    }
    case ExprKind::kSubquery: {
      const auto& sq = static_cast<const SubqueryExpr&>(pred);
      if (sq.subquery_kind() == SubqueryKind::kExists) return 0.5;
      return 0.25;
    }
    default:
      return 0.5;
  }
}

double EstimateCost(const Expr& pred, double subquery_cost) {
  double children_cost = 0;
  for (const ExprPtr& c : pred.children()) {
    children_cost += EstimateCost(*c, subquery_cost);
  }
  switch (pred.kind()) {
    case ExprKind::kLiteral:
    case ExprKind::kColumnRef:
      return 0.2;
    case ExprKind::kComparison:
    case ExprKind::kIsNull:
      return children_cost + 1.0;
    case ExprKind::kAnd:
    case ExprKind::kOr:
    case ExprKind::kNot:
      return children_cost + 0.1;
    case ExprKind::kArithmetic:
    case ExprKind::kFunction:
      return children_cost + 2.0;
    case ExprKind::kLike:
      return children_cost + 10.0;
    case ExprKind::kSubquery:
      return children_cost + subquery_cost;
  }
  return children_cost + 1.0;
}

double PredicateRank(const Expr& pred, double subquery_cost) {
  const double cost = EstimateCost(pred, subquery_cost);
  return (EstimateSelectivity(pred) - 1.0) / (cost > 0 ? cost : 1e-9);
}

}  // namespace bypass
