#include "rewrite/unnest.h"

#include <algorithm>
#include <memory>
#include <optional>

#include "algebra/plan_util.h"
#include "common/check.h"
#include "expr/expr_util.h"
#include "planner/cost_model.h"
#include "rewrite/rank.h"
#include "stats/plan_stats.h"

namespace bypass {

namespace {

LogicalInput Out(LogicalOpPtr op) {
  return LogicalInput{std::move(op), StreamPort::kOut};
}

LogicalInput Neg(LogicalOpPtr op) {
  return LogicalInput{std::move(op), StreamPort::kNegative};
}

/// Clone with every correlated reference turned into a local one (used
/// when an expression moves from a nested block into a context where the
/// outer block's columns are locally available). Does not descend into
/// nested subquery plans: their outer references target a different block.
ExprPtr LocalizeOuterRefs(const ExprPtr& e) {
  ExprPtr copy = e->Clone();
  VisitExprMutable(copy.get(), [](Expr* node) {
    if (node->kind() == ExprKind::kColumnRef) {
      static_cast<ColumnRefExpr*>(node)->set_is_outer(false);
    }
  });
  return copy;
}

/// All column refs are outer and there is no subquery: the expression can
/// be evaluated against the enclosing block alone.
bool IsPureOuter(const ExprPtr& e) {
  if (ContainsSubquery(e)) return false;
  bool any = false, all = true;
  VisitExpr(e, [&](const ExprPtr& n) {
    if (n->kind() == ExprKind::kColumnRef) {
      any = true;
      if (!static_cast<const ColumnRefExpr*>(n.get())->is_outer()) {
        all = false;
      }
    }
  });
  return any && all;
}

/// No outer refs and no subquery: evaluable against the block itself.
bool IsPureInner(const ExprPtr& e) {
  return !ContainsSubquery(e) && !ContainsOuterRef(e);
}

/// A disjunct of the form `other θ (scalar subquery)` (either side).
struct ScalarLinking {
  ExprPtr other;                      // the non-subquery side
  std::shared_ptr<SubqueryExpr> sq;   // the scalar block
  CompareOp op;                       // oriented as other θ sq
};

std::optional<ScalarLinking> MatchScalarLinking(const ExprPtr& d) {
  if (d->kind() != ExprKind::kComparison) return std::nullopt;
  const auto* cmp = static_cast<const ComparisonExpr*>(d.get());
  auto is_scalar_sq = [](const ExprPtr& e) {
    return e->kind() == ExprKind::kSubquery &&
           static_cast<const SubqueryExpr*>(e.get())->subquery_kind() ==
               SubqueryKind::kScalar;
  };
  if (is_scalar_sq(cmp->right()) && !ContainsSubquery(cmp->left())) {
    return ScalarLinking{
        cmp->left(),
        std::static_pointer_cast<SubqueryExpr>(cmp->right()), cmp->op()};
  }
  if (is_scalar_sq(cmp->left()) && !ContainsSubquery(cmp->right())) {
    return ScalarLinking{
        cmp->right(),
        std::static_pointer_cast<SubqueryExpr>(cmp->left()),
        FlipCompareOp(cmp->op())};
  }
  return std::nullopt;
}

/// The aggregate shape of a translated scalar block:
/// [Project(one column)] over GroupBy(scalar, one aggregate) over inner.
struct BlockShape {
  AggregateSpec agg;      // the top-level aggregate f
  LogicalOpPtr inner;     // the block's relation below the aggregation
};

std::optional<BlockShape> MatchAggregateBlock(const LogicalOpPtr& block) {
  const LogicalOp* node = block.get();
  if (node->kind() == LogicalOpKind::kProject) {
    const auto* proj = static_cast<const ProjectOp*>(node);
    if (proj->items().size() != 1) return std::nullopt;
    if (proj->items()[0].expr->kind() != ExprKind::kColumnRef) {
      return std::nullopt;
    }
    node = proj->inputs()[0].op.get();
  }
  if (node->kind() != LogicalOpKind::kGroupBy) return std::nullopt;
  const auto* gb = static_cast<const GroupByOp*>(node);
  if (!gb->scalar() || gb->aggregates().size() != 1) return std::nullopt;
  return BlockShape{gb->aggregates()[0].Clone(), gb->inputs()[0].op};
}

/// Correlation spine analysis of a block's relation: merges the Select
/// operators above the first non-Select node, separating correlated
/// conjuncts (the correlation predicates the equivalences act on) from
/// local ones.
struct CorrelationAnalysis {
  bool ok = false;
  LogicalOpPtr stripped;                 // relation with correlation removed
  std::vector<ExprPtr> corr_conjuncts;   // conjunctive correlated comparisons
  ExprPtr disjunctive;                   // OR conjunct containing correlation
};

CorrelationAnalysis AnalyzeCorrelation(const LogicalOpPtr& inner) {
  CorrelationAnalysis out;
  std::vector<ExprPtr> kept;
  LogicalOpPtr node = inner;
  while (node->kind() == LogicalOpKind::kSelect) {
    const auto* sel = static_cast<const SelectOp*>(node.get());
    for (const ExprPtr& c : SplitConjuncts(sel->predicate())) {
      if (!ContainsOuterRef(c)) {
        kept.push_back(c);
        continue;
      }
      if (c->kind() == ExprKind::kComparison && !ContainsSubquery(c)) {
        out.corr_conjuncts.push_back(c);
        continue;
      }
      if (c->kind() == ExprKind::kOr) {
        if (out.disjunctive != nullptr) return out;  // only one supported
        out.disjunctive = c;
        continue;
      }
      return out;  // correlated non-comparison conjunct: unsupported
    }
    node = sel->inputs()[0].op;
  }
  // Correlation below the select spine (inside joins/groupings) is beyond
  // the supported shapes.
  if (PlanIsCorrelated(*node)) return out;
  if (!kept.empty()) {
    node = std::make_shared<SelectOp>(Out(node), MakeAnd(std::move(kept)));
  }
  out.stripped = std::move(node);
  out.ok = true;
  return out;
}

/// An oriented correlation comparison: outer_side θ inner_side.
struct OrientedCorrelation {
  ExprPtr outer_side;  // still carrying is_outer flags
  CompareOp op;
  ExprPtr inner_side;
};

std::optional<OrientedCorrelation> OrientCorrelation(const ExprPtr& c) {
  if (c->kind() != ExprKind::kComparison) return std::nullopt;
  const auto* cmp = static_cast<const ComparisonExpr*>(c.get());
  if (IsPureOuter(cmp->left()) && IsPureInner(cmp->right())) {
    return OrientedCorrelation{cmp->left(), cmp->op(), cmp->right()};
  }
  if (IsPureOuter(cmp->right()) && IsPureInner(cmp->left())) {
    return OrientedCorrelation{cmp->right(), FlipCompareOp(cmp->op()),
                               cmp->left()};
  }
  return std::nullopt;
}

/// fI of the paper's decomposition (Sec. 3.3): the partial aggregates
/// computed on each disjoint subset. avg needs (sum, count); the rest map
/// to themselves.
std::vector<AggregateSpec> MakePartialSpecs(const AggregateSpec& f) {
  std::vector<AggregateSpec> out;
  if (f.func == AggFunc::kAvg) {
    AggregateSpec sum;
    sum.func = AggFunc::kSum;
    sum.arg = f.arg ? f.arg->Clone() : nullptr;
    AggregateSpec count;
    count.func = AggFunc::kCount;
    count.arg = f.arg ? f.arg->Clone() : nullptr;
    out.push_back(std::move(sum));
    out.push_back(std::move(count));
  } else {
    AggregateSpec partial;
    partial.func = f.func;
    partial.arg = f.arg ? f.arg->Clone() : nullptr;
    out.push_back(std::move(partial));
  }
  return out;
}

/// fO: recombines the partial columns into the total aggregate. NULL-aware
/// (sum(∅) is NULL, empty sides contribute nothing).
ExprPtr CombinePartials(const AggregateSpec& f,
                        const std::vector<std::string>& g1,
                        const std::vector<std::string>& g2) {
  auto ref = [](const std::string& name) { return MakeColumnRef("", name); };
  auto func = [](BuiltinFunc fn, std::vector<ExprPtr> args) {
    return ExprPtr(std::make_shared<FunctionExpr>(fn, std::move(args)));
  };
  switch (f.func) {
    case AggFunc::kCount:
    case AggFunc::kSum:
      return func(BuiltinFunc::kAddIgnoreNull, {ref(g1[0]), ref(g2[0])});
    case AggFunc::kMin:
      return func(BuiltinFunc::kLeastIgnoreNull, {ref(g1[0]), ref(g2[0])});
    case AggFunc::kMax:
      return func(BuiltinFunc::kGreatestIgnoreNull,
                  {ref(g1[0]), ref(g2[0])});
    case AggFunc::kAvg:
      return func(
          BuiltinFunc::kDivOrNullIfZero,
          {func(BuiltinFunc::kAddIgnoreNull, {ref(g1[0]), ref(g2[0])}),
           func(BuiltinFunc::kAddIgnoreNull, {ref(g1[1]), ref(g2[1])})});
  }
  BYPASS_UNREACHABLE("bad AggFunc");
}

/// Same (qualifier, name) column list?
bool SameColumns(const Schema& a, const Schema& b) {
  if (a.num_columns() != b.num_columns()) return false;
  for (int i = 0; i < a.num_columns(); ++i) {
    if (a.column(i).name != b.column(i).name ||
        a.column(i).qualifier != b.column(i).qualifier) {
      return false;
    }
  }
  return true;
}

}  // namespace

std::string UnnestingRewriter::FreshName(const char* prefix) {
  return std::string("$") + prefix + std::to_string(name_counter_++);
}

Result<LogicalOpPtr> UnnestingRewriter::Rewrite(LogicalOpPtr plan) {
  if (!options_.enable_unnesting) return plan;
  for (int pass = 0; pass < options_.max_passes; ++pass) {
    changed_ = false;
    std::unordered_map<const LogicalOp*, LogicalOpPtr> memo;
    BYPASS_ASSIGN_OR_RETURN(plan, RewriteNode(plan, &memo));
    if (!changed_) break;
  }
  return plan;
}

Result<LogicalOpPtr> UnnestingRewriter::RewriteNode(
    const LogicalOpPtr& node,
    std::unordered_map<const LogicalOp*, LogicalOpPtr>* memo) {
  const auto it = memo->find(node.get());
  if (it != memo->end()) return it->second;

  std::vector<LogicalInput> new_inputs;
  bool inputs_changed = false;
  for (const LogicalInput& in : node->inputs()) {
    BYPASS_ASSIGN_OR_RETURN(LogicalOpPtr child, RewriteNode(in.op, memo));
    if (child != in.op) inputs_changed = true;
    new_inputs.push_back(LogicalInput{std::move(child), in.port});
  }

  LogicalOpPtr result;
  if (node->kind() == LogicalOpKind::kSelect) {
    const auto& select = static_cast<const SelectOp&>(*node);
    if (ContainsSubquery(select.predicate())) {
      BYPASS_ASSIGN_OR_RETURN(
          LogicalOpPtr rewritten,
          TryRewriteSelect(select, new_inputs[0]));
      if (rewritten != nullptr) {
        changed_ = true;
        memo->emplace(node.get(), rewritten);
        return rewritten;
      }
    }
  } else if (node->kind() == LogicalOpKind::kProject) {
    const auto& project = static_cast<const ProjectOp&>(*node);
    bool has_subquery = false;
    for (const NamedExpr& item : project.items()) {
      if (ContainsSubquery(item.expr)) has_subquery = true;
    }
    if (has_subquery) {
      BYPASS_ASSIGN_OR_RETURN(
          LogicalOpPtr rewritten,
          TryRewriteProject(project, new_inputs[0]));
      if (rewritten != nullptr) {
        changed_ = true;
        memo->emplace(node.get(), rewritten);
        return rewritten;
      }
    }
  }
  if (inputs_changed) {
    result = node->WithNewInputs(std::move(new_inputs));
  } else {
    result = node;
  }
  memo->emplace(node.get(), result);
  return result;
}

Result<LogicalOpPtr> UnnestingRewriter::TryRewriteSelect(
    const SelectOp& select, LogicalInput input) {
  std::vector<ExprPtr> plain;
  std::vector<ExprPtr> nested;
  for (const ExprPtr& c : SplitConjuncts(select.predicate())) {
    (ContainsSubquery(c) ? nested : plain).push_back(c);
  }
  if (nested.empty()) return LogicalOpPtr(nullptr);

  LogicalInput stream = input;
  if (!plain.empty()) {
    // Cheap subquery-free conjuncts filter the stream first.
    stream = Out(std::make_shared<SelectOp>(stream, MakeAnd(plain)));
  }

  // Unnest the first conjunct that matches a supported shape; the rest
  // are re-attached and handled by subsequent fixpoint passes.
  for (size_t i = 0; i < nested.size(); ++i) {
    BYPASS_ASSIGN_OR_RETURN(LogicalOpPtr cascade,
                            RewriteConjunct(stream, nested[i]));
    if (cascade == nullptr) continue;
    std::vector<ExprPtr> rest;
    for (size_t j = 0; j < nested.size(); ++j) {
      if (j != i) rest.push_back(nested[j]);
    }
    if (rest.empty()) return cascade;
    return LogicalOpPtr(std::make_shared<SelectOp>(Out(std::move(cascade)),
                                                   MakeAnd(std::move(rest))));
  }
  return LogicalOpPtr(nullptr);
}

Result<ExprPtr> UnnestingRewriter::RewriteItemExpr(const ExprPtr& expr,
                                                   LogicalInput* current) {
  switch (expr->kind()) {
    case ExprKind::kSubquery: {
      const auto* sq = static_cast<const SubqueryExpr*>(expr.get());
      if (sq->subquery_kind() != SubqueryKind::kScalar) {
        return ExprPtr(nullptr);  // EXISTS/IN as a value: keep canonical
      }
      BYPASS_ASSIGN_OR_RETURN(ExtendedValue ext,
                              UnnestScalarBlock(*current, *sq));
      if (ext.stream == nullptr) return ExprPtr(nullptr);
      *current = Out(ext.stream);
      return ext.value;
    }
    case ExprKind::kLiteral:
    case ExprKind::kColumnRef:
      return expr->Clone();
    default: {
      if (!ContainsSubquery(expr)) return expr->Clone();
      // Rebuild the node around recursively rewritten children.
      std::vector<ExprPtr> children;
      for (const ExprPtr& c : expr->children()) {
        BYPASS_ASSIGN_OR_RETURN(ExprPtr rewritten,
                                RewriteItemExpr(c, current));
        if (rewritten == nullptr) return ExprPtr(nullptr);
        children.push_back(std::move(rewritten));
      }
      switch (expr->kind()) {
        case ExprKind::kComparison: {
          const auto* cmp = static_cast<const ComparisonExpr*>(expr.get());
          return MakeComparison(cmp->op(), std::move(children[0]),
                                std::move(children[1]));
        }
        case ExprKind::kAnd:
          return MakeAnd(std::move(children));
        case ExprKind::kOr:
          return MakeOr(std::move(children));
        case ExprKind::kNot:
          return MakeNot(std::move(children[0]));
        case ExprKind::kArithmetic: {
          const auto* a = static_cast<const ArithmeticExpr*>(expr.get());
          return ExprPtr(std::make_shared<ArithmeticExpr>(
              a->op(), std::move(children[0]), std::move(children[1])));
        }
        case ExprKind::kLike: {
          const auto* like = static_cast<const LikeExpr*>(expr.get());
          return ExprPtr(std::make_shared<LikeExpr>(
              std::move(children[0]), like->pattern(), like->negated()));
        }
        case ExprKind::kIsNull: {
          const auto* isnull = static_cast<const IsNullExpr*>(expr.get());
          return ExprPtr(std::make_shared<IsNullExpr>(
              std::move(children[0]), isnull->negated()));
        }
        case ExprKind::kFunction: {
          const auto* fn = static_cast<const FunctionExpr*>(expr.get());
          return ExprPtr(std::make_shared<FunctionExpr>(
              fn->func(), std::move(children)));
        }
        default:
          return ExprPtr(nullptr);
      }
    }
  }
}

Result<LogicalOpPtr> UnnestingRewriter::TryRewriteProject(
    const ProjectOp& project, LogicalInput input) {
  const size_t log_mark = applied_rules_.size();
  LogicalInput current = input;
  std::vector<NamedExpr> items;
  for (const NamedExpr& item : project.items()) {
    BYPASS_ASSIGN_OR_RETURN(ExprPtr rewritten,
                            RewriteItemExpr(item.expr, &current));
    if (rewritten == nullptr) {
      applied_rules_.resize(log_mark);
      return LogicalOpPtr(nullptr);
    }
    items.push_back(NamedExpr{std::move(rewritten), item.name,
                              item.qualifier});
  }
  if (current.op == input.op) {
    // No block was actually unnested.
    applied_rules_.resize(log_mark);
    return LogicalOpPtr(nullptr);
  }
  // The projection naturally drops the helper ($g, ...) columns.
  return LogicalOpPtr(
      std::make_shared<ProjectOp>(current, std::move(items)));
}

Result<LogicalOpPtr> UnnestingRewriter::RewriteConjunct(
    LogicalInput stream, const ExprPtr& conjunct) {
  struct CascadeItem {
    enum Kind { kSimple, kScalar, kQuantified } kind;
    ExprPtr pred;  // simple predicate / linking comparison / SubqueryExpr
    double rank = 0;
  };

  // With a catalog wired in, ranks are data-driven: selectivities come
  // from the outer stream's base-table statistics and each nested block
  // is charged its own estimated plan cost instead of the textbook
  // per-tuple constant.
  std::unique_ptr<PlanStatsProvider> stats;
  if (options_.catalog != nullptr) {
    stats = std::make_unique<PlanStatsProvider>(options_.catalog,
                                                stream.op);
  }

  std::vector<CascadeItem> items;
  for (const ExprPtr& d : SplitDisjuncts(conjunct)) {
    CascadeItem item;
    item.pred = d;
    if (!ContainsSubquery(d)) {
      item.kind = CascadeItem::kSimple;
    } else if (MatchScalarLinking(d).has_value()) {
      item.kind = CascadeItem::kScalar;
    } else if (d->kind() == ExprKind::kSubquery &&
               static_cast<const SubqueryExpr*>(d.get())
                       ->subquery_kind() != SubqueryKind::kScalar) {
      if (!options_.enable_quantified) return LogicalOpPtr(nullptr);
      item.kind = CascadeItem::kQuantified;
    } else {
      return LogicalOpPtr(nullptr);  // unsupported disjunct shape
    }
    double sub_cost = options_.subquery_cost;
    if (options_.catalog != nullptr && item.kind != CascadeItem::kSimple) {
      // Average the blocks' estimated costs (almost always one block per
      // disjunct) since EstimateCost charges `sub_cost` per occurrence.
      double block_cost = 0;
      int blocks = 0;
      VisitExpr(d, [&](const ExprPtr& e) {
        if (e->kind() != ExprKind::kSubquery) return;
        const auto* sq = static_cast<const SubqueryExpr*>(e.get());
        if (sq->plan() == nullptr) return;
        block_cost += EstimatePlan(*sq->plan(), options_.catalog).cost;
        ++blocks;
      });
      if (blocks > 0) sub_cost = std::max(block_cost / blocks, 1.0);
    }
    item.rank = PredicateRank(*d, sub_cost, stats.get());
    items.push_back(std::move(item));
  }

  switch (options_.disjunct_order) {
    case DisjunctOrder::kByRank:
      std::stable_sort(items.begin(), items.end(),
                       [](const CascadeItem& a, const CascadeItem& b) {
                         return a.rank < b.rank;
                       });
      break;
    case DisjunctOrder::kSimpleFirst:
      std::stable_partition(items.begin(), items.end(),
                            [](const CascadeItem& item) {
                              return item.kind == CascadeItem::kSimple;
                            });
      break;
    case DisjunctOrder::kSubqueryFirst:
      std::stable_partition(items.begin(), items.end(),
                            [](const CascadeItem& item) {
                              return item.kind != CascadeItem::kSimple;
                            });
      break;
  }

  const size_t log_mark = applied_rules_.size();
  if (items.size() > 1) {
    LogRule(items[0].kind == CascadeItem::kSimple ? "Eqv.2" : "Eqv.3");
  }

  const Schema base = stream.op->schema();
  std::vector<LogicalInput> branches;
  LogicalInput current = stream;

  auto align = [&base](LogicalInput in) -> LogicalInput {
    if (SameColumns(in.op->schema(), base)) return in;
    return Out(ProjectToColumns(std::move(in), base));
  };

  // A leading run of ≥2 simple disjuncts can be fused into one k-way
  // tagged partition: port i carries the rows whose first satisfied
  // disjunct is i, the remainder port feeds the rest of the cascade —
  // tuple-identical to the σ± chain it replaces.
  size_t start = 0;
  bool tagged = false;
  if (options_.use_tagged_partition) {
    size_t m = 0;
    while (m < items.size() && items[m].kind == CascadeItem::kSimple) {
      ++m;
    }
    if (m >= 2 && m < items.size()) {
      std::vector<ExprPtr> preds;
      preds.reserve(m);
      for (size_t i = 0; i < m; ++i) preds.push_back(items[i].pred);
      auto part =
          std::make_shared<BypassPartitionOp>(current, std::move(preds));
      for (size_t i = 0; i < m; ++i) {
        branches.push_back(LogicalInput{part, part->stream(i)});
      }
      current = LogicalInput{part, part->remainder()};
      start = m;
      tagged = true;
      LogRule("TaggedK");
    }
  }

  for (size_t i = start; i < items.size(); ++i) {
    const CascadeItem& item = items[i];
    const bool last = (i + 1 == items.size());
    switch (item.kind) {
      case CascadeItem::kSimple: {
        if (last) {
          branches.push_back(align(
              Out(std::make_shared<SelectOp>(current, item.pred))));
        } else {
          auto bp = std::make_shared<BypassSelectOp>(current, item.pred);
          branches.push_back(align(Out(bp)));
          current = Neg(bp);
        }
        break;
      }
      case CascadeItem::kScalar: {
        BYPASS_ASSIGN_OR_RETURN(Extended ext,
                                ExtendWithAggregate(current, item.pred));
        if (ext.stream == nullptr) {
          // Unsupported inner shape: roll back this conjunct entirely.
          applied_rules_.resize(log_mark);
          return LogicalOpPtr(nullptr);
        }
        if (last) {
          branches.push_back(align(Out(std::make_shared<SelectOp>(
              Out(ext.stream), ext.link_pred))));
        } else {
          auto bp = std::make_shared<BypassSelectOp>(Out(ext.stream),
                                                     ext.link_pred);
          branches.push_back(align(Out(bp)));
          // The negative stream still carries the helper columns ($g,
          // $t, ...); project them away before the next cascade stage.
          current = Out(ProjectToColumns(Neg(bp), base));
        }
        break;
      }
      case CascadeItem::kQuantified: {
        const auto* sq = static_cast<const SubqueryExpr*>(item.pred.get());
        BYPASS_ASSIGN_OR_RETURN(QuantifiedSplit split,
                                SplitQuantified(current, *sq));
        if (split.positive == nullptr) {
          applied_rules_.resize(log_mark);
          return LogicalOpPtr(nullptr);
        }
        branches.push_back(align(Out(split.positive)));
        // The remainder (complementary existence join) feeds the next
        // stage; when this disjunct is last it is simply unused.
        if (!last) current = Out(split.remainder);
        break;
      }
    }
  }

  if (branches.size() == 1) {
    return branches[0].port == StreamPort::kOut
               ? branches[0].op
               : ProjectToColumns(branches[0], base);
  }
  if (tagged) {
    // The k tagged streams plus any trailing cascade branches re-unite
    // through one n-ary union (deterministic fan-in).
    return LogicalOpPtr(std::make_shared<UnionOp>(std::move(branches)));
  }
  LogicalOpPtr result = branches[0].op;
  for (size_t i = 1; i < branches.size(); ++i) {
    result = std::make_shared<UnionOp>(Out(result), branches[i]);
  }
  return result;
}

Result<UnnestingRewriter::Extended> UnnestingRewriter::ExtendWithAggregate(
    LogicalInput stream, const ExprPtr& comparison) {
  auto linking = MatchScalarLinking(comparison);
  BYPASS_CHECK(linking.has_value());
  BYPASS_ASSIGN_OR_RETURN(ExtendedValue ext,
                          UnnestScalarBlock(stream, *linking->sq));
  if (ext.stream == nullptr) return Extended{nullptr, nullptr};
  return Extended{ext.stream,
                  MakeComparison(linking->op, linking->other->Clone(),
                                 ext.value)};
}

Result<UnnestingRewriter::ExtendedValue>
UnnestingRewriter::UnnestScalarBlock(LogicalInput stream,
                                     const SubqueryExpr& subquery) {
  const ExtendedValue kUnsupported{nullptr, nullptr};

  // Work on a private copy of the block plan; bail-outs must leave the
  // original untouched.
  LogicalOpPtr block = CloneLogicalPlan(subquery.plan());
  if (block == nullptr) return kUnsupported;

  auto shape = MatchAggregateBlock(block);
  if (!shape.has_value()) return kUnsupported;  // non-aggregate scalar
  const AggregateSpec& f = shape->agg;
  if (f.arg != nullptr && ContainsOuterRef(f.arg)) return kUnsupported;

  // ---- Type A: uncorrelated block — materialize once, cross join. ----
  if (!PlanIsCorrelated(*block)) {
    LogRule("TypeA");
    const std::string g = block->schema().column(0).name;
    auto joined = std::make_shared<JoinOp>(stream, Out(block), nullptr);
    return ExtendedValue{joined, MakeColumnRef("", g)};
  }

  CorrelationAnalysis analysis = AnalyzeCorrelation(shape->inner);
  if (!analysis.ok) return kUnsupported;

  const std::string g = FreshName("g");

  // ---- Conjunctive correlation: Eqv. 1 (or binary grouping for θ2≠=).
  if (analysis.disjunctive == nullptr) {
    if (analysis.corr_conjuncts.empty()) return kUnsupported;
    std::vector<OrientedCorrelation> oriented;
    for (const ExprPtr& c : analysis.corr_conjuncts) {
      auto o = OrientCorrelation(c);
      if (!o.has_value()) return kUnsupported;
      oriented.push_back(std::move(*o));
    }
    bool all_eq = true;
    for (const auto& o : oriented) {
      if (o.op != CompareOp::kEq) all_eq = false;
    }

    if (all_eq) {
      // Eqv. 1: Γ on the inner correlation columns + left outer join
      // with default g := f(∅). The keys always surface under fresh
      // names so the grouped relation never re-exposes inner column
      // names (the block may scan the same tables as the outer one,
      // e.g. Query 2d): bare column keys via the group key's output
      // alias, computed keys via a χ materializing them.
      LogicalOpPtr inner_rel = analysis.stripped;
      std::vector<GroupKey> keys;
      std::vector<NamedExpr> key_maps;
      std::vector<ExprPtr> join_conjuncts;
      for (const auto& o : oriented) {
        const std::string k = FreshName("k");
        const auto* ref =
            o.inner_side->kind() == ExprKind::kColumnRef
                ? static_cast<const ColumnRefExpr*>(o.inner_side.get())
                : nullptr;
        if (ref != nullptr && !ref->is_outer()) {
          keys.push_back(GroupKey{ref->qualifier(), ref->name(), k});
        } else {
          key_maps.push_back(NamedExpr{o.inner_side->Clone(), k, ""});
          keys.push_back(GroupKey{"", k});
        }
        join_conjuncts.push_back(
            MakeComparison(CompareOp::kEq, LocalizeOuterRefs(o.outer_side),
                           MakeColumnRef("", k)));
      }
      if (!key_maps.empty()) {
        inner_rel =
            std::make_shared<MapOp>(Out(inner_rel), std::move(key_maps));
      }
      AggregateSpec agg = f.Clone();
      agg.output_name = g;
      auto grouped = std::make_shared<GroupByOp>(
          Out(inner_rel), std::move(keys),
          std::vector<AggregateSpec>{std::move(agg)}, /*scalar=*/false);
      auto loj = std::make_shared<LeftOuterJoinOp>(
          stream, Out(grouped), MakeAnd(std::move(join_conjuncts)),
          std::vector<std::pair<std::string, Value>>{
              {g, AggEmptyValue(f.func)}});
      LogRule("Eqv.1");
      return ExtendedValue{loj, MakeColumnRef("", g)};
    }

    // General non-equality correlation: binary grouping Γ.
    if (oriented.size() != 1) return kUnsupported;
    const OrientedCorrelation& o = oriented[0];
    LogicalOpPtr left = stream.op;
    LogicalInput left_in = stream;
    GroupKey left_key;
    ExprPtr outer_local = LocalizeOuterRefs(o.outer_side);
    if (outer_local->kind() == ExprKind::kColumnRef) {
      const auto* ref =
          static_cast<const ColumnRefExpr*>(outer_local.get());
      left_key = GroupKey{ref->qualifier(), ref->name()};
    } else {
      const std::string k = FreshName("k");
      left_in = Out(std::make_shared<MapOp>(
          left_in,
          std::vector<NamedExpr>{NamedExpr{outer_local, k, ""}}));
      left_key = GroupKey{"", k};
    }
    LogicalOpPtr inner_rel = analysis.stripped;
    GroupKey right_key;
    if (o.inner_side->kind() == ExprKind::kColumnRef) {
      const auto* ref =
          static_cast<const ColumnRefExpr*>(o.inner_side.get());
      right_key = GroupKey{ref->qualifier(), ref->name()};
    } else {
      const std::string k = FreshName("k");
      inner_rel = std::make_shared<MapOp>(
          Out(inner_rel),
          std::vector<NamedExpr>{NamedExpr{o.inner_side->Clone(), k, ""}});
      right_key = GroupKey{"", k};
    }
    AggregateSpec agg = f.Clone();
    agg.output_name = g;
    auto bgb = std::make_shared<BinaryGroupByOp>(
        left_in, Out(inner_rel), left_key, o.op, right_key,
        std::vector<AggregateSpec>{std::move(agg)});
    LogRule("BinaryGamma");
    return ExtendedValue{bgb, MakeColumnRef("", g)};
  }

  // ---- Disjunctive correlation: Eqv. 4 / Eqv. 5. ----
  if (!analysis.corr_conjuncts.empty()) return kUnsupported;

  std::vector<ExprPtr> p_terms;
  std::optional<OrientedCorrelation> corr;
  for (const ExprPtr& d : SplitDisjuncts(analysis.disjunctive)) {
    if (!ContainsOuterRef(d)) {
      p_terms.push_back(d);
      continue;
    }
    if (corr.has_value()) return kUnsupported;  // one correlated disjunct
    auto o = OrientCorrelation(d);
    if (!o.has_value()) return kUnsupported;
    corr = std::move(*o);
  }
  if (!corr.has_value() || p_terms.empty()) return kUnsupported;

  bool p_has_subquery = false;
  for (const ExprPtr& p : p_terms) {
    if (ContainsSubquery(p)) p_has_subquery = true;
  }

  const bool eqv4_applicable = IsAggDecomposable(f) &&
                               corr->op == CompareOp::kEq &&
                               !p_has_subquery;

  if (eqv4_applicable) {
    // Eqv. 4: split S by p with a bypass selection, aggregate both parts
    // with fI, recombine with fO in a map.
    LogicalOpPtr s_rel = analysis.stripped;
    ExprPtr p = MakeOr(p_terms);  // all disjuncts are uncorrelated here
    auto bp = std::make_shared<BypassSelectOp>(Out(s_rel), p->Clone());

    const std::vector<AggregateSpec> partial_protos = MakePartialSpecs(f);
    std::vector<std::string> g1_names, g2_names;
    std::vector<AggregateSpec> neg_partials, pos_partials;
    for (const AggregateSpec& proto : partial_protos) {
      AggregateSpec a = proto.Clone();
      a.output_name = FreshName("g1_");
      g1_names.push_back(a.output_name);
      neg_partials.push_back(std::move(a));
      AggregateSpec b = proto.Clone();
      b.output_name = FreshName("g2_");
      g2_names.push_back(b.output_name);
      pos_partials.push_back(std::move(b));
    }

    // Negative stream: group by the correlation column (materialized
    // under a fresh name, see Eqv. 1), partial fI.
    const std::string k = FreshName("k");
    LogicalInput neg_stream = Out(std::make_shared<MapOp>(
        Neg(bp), std::vector<NamedExpr>{
                     NamedExpr{corr->inner_side->Clone(), k, ""}}));
    const GroupKey key{"", k};
    auto neg_group = std::make_shared<GroupByOp>(
        neg_stream, std::vector<GroupKey>{key}, std::move(neg_partials),
        /*scalar=*/false);

    // Positive stream: one scalar row of partial fI over σ+_p(S).
    auto pos_agg = std::make_shared<GroupByOp>(
        Out(bp), std::vector<GroupKey>{}, std::move(pos_partials),
        /*scalar=*/true);

    std::vector<std::pair<std::string, Value>> defaults;
    for (size_t i = 0; i < g1_names.size(); ++i) {
      defaults.emplace_back(
          g1_names[i], AggEmptyValue(partial_protos[i].func));
    }
    auto loj = std::make_shared<LeftOuterJoinOp>(
        stream, Out(neg_group),
        MakeComparison(CompareOp::kEq, LocalizeOuterRefs(corr->outer_side),
                       MakeColumnRef(key.qualifier, key.name)),
        std::move(defaults));
    auto crossed =
        std::make_shared<JoinOp>(Out(loj), Out(pos_agg), nullptr);
    auto mapped = std::make_shared<MapOp>(
        Out(crossed),
        std::vector<NamedExpr>{
            NamedExpr{CombinePartials(f, g1_names, g2_names), g, ""}});
    LogRule("Eqv.4");
    return ExtendedValue{mapped, MakeColumnRef("", g)};
  }

  // Eqv. 5: numbering + bypass join + binary grouping. Fully general:
  // arbitrary θ2, non-decomposable (DISTINCT) aggregates, and p may
  // contain nested subqueries (linear queries). One restriction of our
  // name-based algebra: the pair schema concatenates both blocks, so the
  // blocks must not range over the same table aliases.
  {
    std::unordered_map<std::string, bool> outer_quals;
    for (const ColumnDef& c : stream.op->schema().columns()) {
      if (!c.qualifier.empty()) outer_quals[c.qualifier] = true;
    }
    for (const ColumnDef& c : analysis.stripped->schema().columns()) {
      if (!c.qualifier.empty() && outer_quals.count(c.qualifier) > 0) {
        return kUnsupported;
      }
    }
  }
  const std::string t = FreshName("t");
  auto numbered = std::make_shared<NumberingOp>(stream, t);
  ExprPtr join_pred =
      MakeComparison(corr->op, LocalizeOuterRefs(corr->outer_side),
                     corr->inner_side->Clone());
  auto bj = std::make_shared<BypassJoinOp>(Out(numbered),
                                           Out(analysis.stripped),
                                           std::move(join_pred));
  std::vector<ExprPtr> p_local;
  p_local.reserve(p_terms.size());
  for (const ExprPtr& pt : p_terms) {
    p_local.push_back(LocalizeOuterRefs(pt));
  }
  auto e2 = std::make_shared<SelectOp>(Neg(bj), MakeOr(std::move(p_local)));
  auto uni = std::make_shared<UnionOp>(Out(bj), Out(e2));
  AggregateSpec agg = f.Clone();
  agg.output_name = g;
  auto bgb = std::make_shared<BinaryGroupByOp>(
      Out(numbered), Out(uni), GroupKey{"", t}, CompareOp::kEq,
      GroupKey{"", t}, std::vector<AggregateSpec>{std::move(agg)});
  LogRule("Eqv.5");
  return ExtendedValue{bgb, MakeColumnRef("", g)};
}

Result<UnnestingRewriter::QuantifiedSplit>
UnnestingRewriter::SplitQuantified(LogicalInput stream,
                                   const SubqueryExpr& subquery) {
  const QuantifiedSplit kUnsupported{nullptr, nullptr};
  LogicalOpPtr block = CloneLogicalPlan(subquery.plan());
  if (block == nullptr) return kUnsupported;

  // Peel Distinct/Project above the block's relation; for IN remember the
  // produced column's expression as the membership probe target.
  ExprPtr in_column;
  while (true) {
    if (block->kind() == LogicalOpKind::kDistinct) {
      block = block->inputs()[0].op;
      continue;
    }
    if (block->kind() == LogicalOpKind::kProject) {
      const auto* proj = static_cast<const ProjectOp*>(block.get());
      if (proj->items().size() == 1) {
        in_column = proj->items()[0].expr->Clone();
      }
      block = block->inputs()[0].op;
      continue;
    }
    break;
  }
  if (subquery.subquery_kind() == SubqueryKind::kIn &&
      in_column == nullptr) {
    // SELECT * single-column table would also work, but keep it simple.
    if (block->schema().num_columns() == 1) {
      const ColumnDef& c = block->schema().column(0);
      in_column = MakeColumnRef(c.qualifier, c.name);
    } else {
      return kUnsupported;
    }
  }

  CorrelationAnalysis analysis = AnalyzeCorrelation(block);
  if (!analysis.ok || analysis.disjunctive != nullptr) return kUnsupported;

  std::vector<ExprPtr> pred_conjuncts;
  for (const ExprPtr& c : analysis.corr_conjuncts) {
    if (ContainsSubquery(c)) return kUnsupported;
    pred_conjuncts.push_back(LocalizeOuterRefs(c));
  }
  if (subquery.subquery_kind() == SubqueryKind::kIn) {
    if (ContainsOuterRef(in_column) || ContainsSubquery(in_column)) {
      return kUnsupported;
    }
    pred_conjuncts.push_back(MakeComparison(
        CompareOp::kEq, subquery.probe()->Clone(), in_column));
  }
  ExprPtr pred = pred_conjuncts.empty()
                     ? MakeLiteral(Value::Bool(true))
                     : MakeAnd(std::move(pred_conjuncts));

  // Same alias-overlap restriction as Eqv. 5: the join predicate binds
  // against the concatenated schema.
  for (const ColumnDef& outer_col : stream.op->schema().columns()) {
    if (outer_col.qualifier.empty()) continue;
    for (const ColumnDef& inner_col :
         analysis.stripped->schema().columns()) {
      if (inner_col.qualifier == outer_col.qualifier) return kUnsupported;
    }
  }

  const bool anti = subquery.negated();
  LogicalOpPtr right = analysis.stripped;  // shared by both joins (DAG)
  QuantifiedSplit split;
  if (anti) {
    split.positive = std::make_shared<AntiJoinOp>(stream, Out(right),
                                                  pred->Clone());
    split.remainder =
        std::make_shared<SemiJoinOp>(stream, Out(right), pred->Clone());
  } else {
    split.positive = std::make_shared<SemiJoinOp>(stream, Out(right),
                                                  pred->Clone());
    split.remainder =
        std::make_shared<AntiJoinOp>(stream, Out(right), pred->Clone());
  }
  LogRule(anti ? "AntiJoin" : "SemiJoin");
  return split;
}

}  // namespace bypass
