// The paper's contribution: unnesting equivalences for scalar subqueries
// with disjunctive linking and correlation predicates, realized as rewrite
// rules over the logical algebra.
//
//   Eqv. 1  conjunctive linking      Γ + left outer join (classical)
//   Eqv. 2  disjunctive linking      bypass-select on the simple
//                                    predicate, Eqv. 1 in its negative
//                                    stream
//   Eqv. 3  disjunctive linking      unnested linking predicate first,
//                                    simple predicate in the negative
//                                    stream (rank-based choice vs Eqv. 2)
//   Eqv. 4  disjunctive correlation  bypass-select inside the block +
//                                    decomposed aggregate recombined by χ
//   Eqv. 5  disjunctive correlation  numbering ν + bypass join ⋈± +
//                                    binary grouping Γ (general case)
//
// Tree and linear queries fall out of repeated application (Sec. 3.5/3.6):
// a disjunct cascade of bypass selections handles trees, and the rewriter
// reaches fixpoint across nesting levels for linear queries. The
// technical-report extension for quantified table subqueries (EXISTS /
// NOT EXISTS / IN / NOT IN in disjunctions) is implemented with bypass
// semi-/anti-join pairs.
#ifndef BYPASSDB_REWRITE_UNNEST_H_
#define BYPASSDB_REWRITE_UNNEST_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "algebra/logical_op.h"
#include "common/result.h"

namespace bypass {

class Catalog;

/// How a disjunct cascade orders its branches.
enum class DisjunctOrder {
  kByRank,         ///< Slagle ranks (paper default)
  kSimpleFirst,    ///< force Eqv. 2 shape
  kSubqueryFirst,  ///< force Eqv. 3 shape
};

struct RewriteOptions {
  /// Master switch; off reproduces the canonical (nested-loop) plans.
  bool enable_unnesting = true;
  /// Unnest quantified table subqueries (EXISTS/IN; TR extension).
  bool enable_quantified = true;
  /// Branch ordering within a disjunct cascade.
  DisjunctOrder disjunct_order = DisjunctOrder::kByRank;
  /// Collapse a cascade's leading run of ≥2 simple disjuncts into one
  /// k-way tagged partition (σ± generalized to k output streams): each
  /// stream carries the rows whose *first* satisfied disjunct is that
  /// branch, the remainder stream continues the cascade. Same tuples,
  /// same streams as the cascade, one operator pass instead of k.
  bool use_tagged_partition = false;
  /// Per-tuple cost charged to a nested block in the rank model. The
  /// default keeps subqueries last (Eqv. 2) unless a simple predicate is
  /// extremely expensive (Eqv. 3), mirroring the paper's remark. Only
  /// used when no catalog is wired in (below).
  double subquery_cost = 1000.0;
  /// When set, disjunct ranks are computed from data: selectivities from
  /// the referenced tables' statistics (ANALYZE histograms when present,
  /// lazy min/max/NDV otherwise) and nested-block costs from the blocks'
  /// estimated plans — so the Eqv. 2 vs Eqv. 3 choice reacts to the
  /// actual data distribution instead of textbook constants.
  const Catalog* catalog = nullptr;
  /// Fixpoint bound (linear queries need one pass per nesting level).
  int max_passes = 16;
};

/// Applies the unnesting equivalences bottom-up until fixpoint. Returns
/// the original plan untouched when nothing applies — unsupported shapes
/// simply stay canonical, never fail.
class UnnestingRewriter {
 public:
  explicit UnnestingRewriter(RewriteOptions options)
      : options_(std::move(options)) {}

  Result<LogicalOpPtr> Rewrite(LogicalOpPtr plan);

  /// Names of the equivalences applied, in application order
  /// ("Eqv.2", "Eqv.1", "Eqv.5", "TypeA", "SemiJoin", ...).
  const std::vector<std::string>& applied_rules() const {
    return applied_rules_;
  }

 private:
  /// One bottom-up pass; memoized for DAG-shaped plans.
  Result<LogicalOpPtr> RewriteNode(
      const LogicalOpPtr& node,
      std::unordered_map<const LogicalOp*, LogicalOpPtr>* memo);

  /// Tries to unnest one Select whose predicate contains subqueries.
  /// Returns nullptr when the shape is unsupported (keep canonical).
  Result<LogicalOpPtr> TryRewriteSelect(const SelectOp& select,
                                        LogicalInput input);

  /// Nesting in the SELECT clause (paper Sec. 1): replaces scalar blocks
  /// inside projection items by unnested $g columns. Returns nullptr when
  /// no item contains a supported scalar block.
  Result<LogicalOpPtr> TryRewriteProject(const ProjectOp& project,
                                         LogicalInput input);

  /// Builds the bypass cascade for one conjunct (a disjunction whose
  /// disjuncts may be simple predicates, scalar linking comparisons, or
  /// quantified subqueries). Returns nullptr when unsupported.
  Result<LogicalOpPtr> RewriteConjunct(LogicalInput stream,
                                       const ExprPtr& conjunct);

  /// "Extend with aggregate": turns `other θ (scalar block)` into a
  /// stream extended with a computed column $g plus the residual linking
  /// predicate `other θ $g`. Dispatches to the Eqv. 1 grouping, the
  /// type-A materialization, binary grouping for non-equality
  /// correlation, or Eqv. 4 / Eqv. 5 for disjunctive correlation.
  struct Extended {
    LogicalOpPtr stream;
    ExprPtr link_pred;
  };
  Result<Extended> ExtendWithAggregate(LogicalInput stream,
                                       const ExprPtr& comparison);

  /// The core of Eqv. 1/4/5 + type A: extends `stream` with a computed
  /// column holding the block's aggregate value per tuple.
  struct ExtendedValue {
    LogicalOpPtr stream;
    ExprPtr value;  ///< reference to the $g column (nullptr: unsupported)
  };
  Result<ExtendedValue> UnnestScalarBlock(LogicalInput stream,
                                          const SubqueryExpr& subquery);

  /// Rebuilds a projection item expression with every scalar block
  /// replaced by an unnested $g reference, extending `*current` along the
  /// way. Returns nullptr when the expression contains an unsupported
  /// block (keep canonical).
  Result<ExprPtr> RewriteItemExpr(const ExprPtr& expr,
                                  LogicalInput* current);

  /// Quantified disjunct: produces the positive branch (semi/anti join)
  /// and the remainder stream (the complementary join) for the cascade.
  struct QuantifiedSplit {
    LogicalOpPtr positive;
    LogicalOpPtr remainder;
  };
  Result<QuantifiedSplit> SplitQuantified(LogicalInput stream,
                                          const SubqueryExpr& subquery);

  std::string FreshName(const char* prefix);
  void LogRule(const char* rule) { applied_rules_.emplace_back(rule); }

  RewriteOptions options_;
  std::vector<std::string> applied_rules_;
  int name_counter_ = 0;
  bool changed_ = false;
};

}  // namespace bypass

#endif  // BYPASSDB_REWRITE_UNNEST_H_
