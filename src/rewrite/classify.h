// Query classification: Kim's subquery types (A/N/J/JA, [19]) and
// Muralikrishna's nesting-structure classes extended by the paper
// (simple/linear/tree, Sec. 2.2).
#ifndef BYPASSDB_REWRITE_CLASSIFY_H_
#define BYPASSDB_REWRITE_CLASSIFY_H_

#include <string>

#include "algebra/logical_op.h"

namespace bypass {

enum class KimType {
  kA,   ///< aggregate, uncorrelated
  kN,   ///< no aggregate, uncorrelated (table subquery)
  kJ,   ///< no aggregate, correlated
  kJA,  ///< aggregate, correlated — the paper's hard case
};

const char* KimTypeToString(KimType type);

/// Classifies one nested block by its translated plan: "aggregate" means
/// the block's top is a scalar aggregation; "correlated" means the plan
/// references the enclosing block.
KimType ClassifySubquery(const SubqueryExpr& subquery);

enum class NestingStructure {
  kFlat,    ///< no nested blocks
  kSimple,  ///< exactly one nested block
  kLinear,  ///< at most one block nested within any block, depth >= 2
  kTree,    ///< some block has two or more blocks directly nested in it
};

const char* NestingStructureToString(NestingStructure s);

/// Classifies the whole query's nesting shape.
NestingStructure ClassifyNesting(const LogicalOp& root);

}  // namespace bypass

#endif  // BYPASSDB_REWRITE_CLASSIFY_H_
