// Rank-based predicate ordering (Slagle [26], as used by the paper's
// Sec. 3.1 remark): for a predicate p with selectivity s and per-tuple
// cost c, rank(p) = (s - 1) / c. Predicates are evaluated in ascending
// rank order; this decides between Eqv. 2 (cheap simple predicate first)
// and Eqv. 3 (unnested subquery first).
#ifndef BYPASSDB_REWRITE_RANK_H_
#define BYPASSDB_REWRITE_RANK_H_

#include <string>

#include "catalog/table.h"
#include "expr/expr.h"

namespace bypass {

/// Optional source of per-column statistics for selectivity estimation;
/// the cost model implements it over the catalog.
class StatsProvider {
 public:
  virtual ~StatsProvider() = default;
  /// Statistics of `qualifier.name`, or nullptr when unknown. `rows`
  /// receives the owning table's cardinality when non-null.
  virtual const ColumnStats* GetColumnStats(const std::string& qualifier,
                                            const std::string& name,
                                            int64_t* rows) const = 0;
};

/// Selectivity estimation. With `stats`, equality against a literal uses
/// 1/NDV and ranges interpolate between the column's min and max;
/// otherwise textbook defaults apply ('=' 0.1, ranges 1/3, LIKE 0.25;
/// conjunction multiplies, disjunction complements).
double EstimateSelectivity(const Expr& pred,
                           const StatsProvider* stats = nullptr);

/// Per-tuple evaluation cost in abstract units; LIKE and arithmetic are
/// charged more, nested subqueries cost `subquery_cost`.
double EstimateCost(const Expr& pred, double subquery_cost);

/// rank(p) = (selectivity - 1) / cost; lower ranks evaluate first.
double PredicateRank(const Expr& pred, double subquery_cost);

}  // namespace bypass

#endif  // BYPASSDB_REWRITE_RANK_H_
