// Rank-based predicate ordering (Slagle [26], as used by the paper's
// Sec. 3.1 remark): for a predicate p with selectivity s and per-tuple
// cost c, rank(p) = (s - 1) / c. Predicates are evaluated in ascending
// rank order; this decides between Eqv. 2 (cheap simple predicate first)
// and Eqv. 3 (unnested subquery first).
//
// The implementation moved into the statistics subsystem so ranks can be
// computed against ANALYZE histograms: see stats/selectivity.h
// (EstimateSelectivity / EstimateCost / PredicateRank, plus
// EstimateConditionalDisjunctSelectivities — the per-disjunct
// P(p_i | ¬p_1..¬p_{i-1}) chain the k-way tagged cost model consumes)
// and stats/stats_provider.h (StatsProvider). This header remains as the
// rewriter-facing include point.
#ifndef BYPASSDB_REWRITE_RANK_H_
#define BYPASSDB_REWRITE_RANK_H_

#include "stats/selectivity.h"    // IWYU pragma: export
#include "stats/stats_provider.h" // IWYU pragma: export

#endif  // BYPASSDB_REWRITE_RANK_H_
