// ANALYZE-built statistics: the rich per-column/per-table summaries the
// planner consumes. Distinct from catalog/table.h's lazy ColumnStats,
// which remains the no-ANALYZE fallback; these add HyperLogLog distinct
// counts and equi-depth histograms and are stored in the Catalog with an
// epoch so prepared plans can detect staleness.
#ifndef BYPASSDB_STATS_COLUMN_STATS_H_
#define BYPASSDB_STATS_COLUMN_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "stats/histogram.h"
#include "types/value.h"

namespace bypass {

struct ColumnStatistics {
  int64_t null_count = 0;
  Value min;  ///< NULL when the column is all-NULL or the table empty
  Value max;
  /// HyperLogLog estimate of the number of distinct non-NULL values.
  int64_t distinct_count = 0;
  /// Equi-depth histogram over non-NULL values; empty for non-numeric
  /// columns.
  EquiDepthHistogram histogram;

  /// NULL fraction relative to `rows` (0 for an empty table).
  double NullFraction(int64_t rows) const {
    return rows > 0
               ? static_cast<double>(null_count) / static_cast<double>(rows)
               : 0.0;
  }
};

struct TableStatistics {
  /// Table cardinality at ANALYZE time; refreshed in place by runtime
  /// cardinality feedback when the table drifts.
  int64_t row_count = 0;
  /// One entry per schema column, in schema order.
  std::vector<ColumnStatistics> columns;

  /// Short human-readable summary ("1000 rows, 4 columns analyzed").
  std::string ToString() const {
    return std::to_string(row_count) + " rows, " +
           std::to_string(columns.size()) + " columns analyzed";
  }
};

}  // namespace bypass

#endif  // BYPASSDB_STATS_COLUMN_STATS_H_
