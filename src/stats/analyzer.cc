#include "stats/analyzer.h"

#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "stats/hyperloglog.h"
#include "types/column_vector.h"

namespace bypass {

namespace {

// One-pass statistics over a typed column: raw data + null bitmap, no Row
// or Value materialization. The per-type hash expressions replicate
// Value::Hash exactly (int64 via its double representation, doubles with
// ±0 normalized) so the HLL estimates are identical to a row-based pass,
// and the sequential raw min/max folds replicate OrderCompare (including
// its NaN-compares-equal double behaviour).
void AnalyzeTypedColumn(const ColumnVector& col, HyperLogLog* sketch,
                        std::vector<double>* numeric_values,
                        ColumnStatistics* out) {
  const size_t n = col.size();
  switch (col.type()) {
    case DataType::kInt64: {
      const int64_t* data = col.i64_data();
      bool has = false;
      int64_t mn = 0, mx = 0;
      for (size_t i = 0; i < n; ++i) {
        if (col.IsNull(i)) {
          ++out->null_count;
          continue;
        }
        const int64_t v = data[i];
        sketch->Add(static_cast<uint64_t>(
            std::hash<double>()(static_cast<double>(v))));
        if (!has) {
          has = true;
          mn = mx = v;
        } else {
          if (v < mn) mn = v;
          if (v > mx) mx = v;
        }
        numeric_values->push_back(static_cast<double>(v));
      }
      if (has) {
        out->min = Value::Int64(mn);
        out->max = Value::Int64(mx);
      }
      return;
    }
    case DataType::kDouble: {
      const double* data = col.f64_data();
      bool has = false;
      double mn = 0, mx = 0;
      for (size_t i = 0; i < n; ++i) {
        if (col.IsNull(i)) {
          ++out->null_count;
          continue;
        }
        const double v = data[i];
        sketch->Add(static_cast<uint64_t>(
            std::hash<double>()(v == 0.0 ? 0.0 : v)));
        if (!has) {
          has = true;
          mn = mx = v;
        } else {
          if (v < mn) mn = v;
          if (v > mx) mx = v;
        }
        numeric_values->push_back(v);
      }
      if (has) {
        out->min = Value::Double(mn);
        out->max = Value::Double(mx);
      }
      return;
    }
    case DataType::kBool: {
      const uint8_t* data = col.bool_data();
      bool saw_false = false, saw_true = false;
      for (size_t i = 0; i < n; ++i) {
        if (col.IsNull(i)) {
          ++out->null_count;
          continue;
        }
        const bool b = data[i] != 0;
        sketch->Add(b ? uint64_t{0x1234567} : uint64_t{0x7654321});
        if (b) {
          saw_true = true;
        } else {
          saw_false = true;
        }
      }
      if (saw_false || saw_true) {
        out->min = Value::Bool(saw_false ? false : true);
        out->max = Value::Bool(saw_true ? true : false);
      }
      return;
    }
    case DataType::kString: {
      bool has = false;
      std::string_view mn, mx;
      for (size_t i = 0; i < n; ++i) {
        if (col.IsNull(i)) {
          ++out->null_count;
          continue;
        }
        const std::string_view v = col.string_at(i);
        sketch->Add(
            static_cast<uint64_t>(std::hash<std::string_view>()(v)));
        if (!has) {
          has = true;
          mn = mx = v;
        } else {
          if (v.compare(mn) < 0) mn = v;
          if (v.compare(mx) > 0) mx = v;
        }
      }
      if (has) {
        out->min = Value::String(std::string(mn));
        out->max = Value::String(std::string(mx));
      }
      return;
    }
  }
}

// Mixed-representation columns (cross-typed numeric loads) keep the
// original per-Value pass. Loaded rows may carry int64 payloads in double
// columns (and vice versa), so histogram eligibility follows the value,
// not only the declared type.
void AnalyzeMixedColumn(const ColumnVector& col, bool numeric_col,
                        HyperLogLog* sketch,
                        std::vector<double>* numeric_values,
                        ColumnStatistics* out) {
  const size_t n = col.size();
  for (size_t i = 0; i < n; ++i) {
    const Value v = col.GetValue(i);
    if (v.is_null()) {
      ++out->null_count;
      continue;
    }
    sketch->Add(static_cast<uint64_t>(v.Hash()));
    if (out->min.is_null()) {
      out->min = v;
      out->max = v;
    } else {
      if (v.OrderCompare(out->min) < 0) out->min = v;
      if (v.OrderCompare(out->max) > 0) out->max = v;
    }
    if (numeric_col && v.is_numeric()) {
      numeric_values->push_back(v.AsDouble());
    }
  }
}

}  // namespace

TableStatistics AnalyzeTable(const Table& table,
                             const AnalyzeOptions& options) {
  const int num_columns = table.schema().num_columns();
  TableStatistics stats;
  stats.row_count = table.num_rows();
  stats.columns.resize(static_cast<size_t>(num_columns));

  const ColumnStore& store = table.columns();
  for (int c = 0; c < num_columns; ++c) {
    const size_t ci = static_cast<size_t>(c);
    const ColumnVector& col = store.columns[ci];
    HyperLogLog sketch(options.hll_precision);
    const DataType type = table.schema().column(c).type;
    const bool numeric_col =
        type == DataType::kInt64 || type == DataType::kDouble;
    std::vector<double> numeric_values;
    if (numeric_col) numeric_values.reserve(col.size());
    if (col.typed()) {
      AnalyzeTypedColumn(col, &sketch, &numeric_values,
                         &stats.columns[ci]);
    } else {
      AnalyzeMixedColumn(col, numeric_col, &sketch, &numeric_values,
                         &stats.columns[ci]);
    }
    stats.columns[ci].distinct_count = sketch.Estimate();
    if (!numeric_values.empty()) {
      stats.columns[ci].histogram = EquiDepthHistogram::Build(
          std::move(numeric_values), options.histogram_buckets);
    }
  }
  return stats;
}

}  // namespace bypass
