#include "stats/analyzer.h"

#include <utility>
#include <vector>

#include "stats/hyperloglog.h"

namespace bypass {

TableStatistics AnalyzeTable(const Table& table,
                             const AnalyzeOptions& options) {
  const int num_columns = table.schema().num_columns();
  TableStatistics stats;
  stats.row_count = table.num_rows();
  stats.columns.resize(static_cast<size_t>(num_columns));

  std::vector<HyperLogLog> sketches(
      static_cast<size_t>(num_columns),
      HyperLogLog(options.hll_precision));
  std::vector<std::vector<double>> numeric_values(
      static_cast<size_t>(num_columns));
  std::vector<bool> numeric(static_cast<size_t>(num_columns));
  for (int c = 0; c < num_columns; ++c) {
    const DataType type = table.schema().column(c).type;
    numeric[static_cast<size_t>(c)] =
        type == DataType::kInt64 || type == DataType::kDouble;
    if (numeric[static_cast<size_t>(c)]) {
      numeric_values[static_cast<size_t>(c)].reserve(table.rows().size());
    }
  }

  for (const Row& row : table.rows()) {
    for (size_t c = 0; c < static_cast<size_t>(num_columns); ++c) {
      const Value& v = row[c];
      ColumnStatistics& col = stats.columns[c];
      if (v.is_null()) {
        ++col.null_count;
        continue;
      }
      sketches[c].Add(static_cast<uint64_t>(v.Hash()));
      if (col.min.is_null()) {
        col.min = v;
        col.max = v;
      } else {
        if (v.OrderCompare(col.min) < 0) col.min = v;
        if (v.OrderCompare(col.max) > 0) col.max = v;
      }
      // Loaded rows may carry int64 payloads in double columns (and vice
      // versa), so histogram eligibility follows the value, not only the
      // declared type.
      if (numeric[c] && v.is_numeric()) {
        numeric_values[c].push_back(v.AsDouble());
      }
    }
  }

  for (size_t c = 0; c < static_cast<size_t>(num_columns); ++c) {
    stats.columns[c].distinct_count = sketches[c].Estimate();
    if (!numeric_values[c].empty()) {
      stats.columns[c].histogram = EquiDepthHistogram::Build(
          std::move(numeric_values[c]), options.histogram_buckets);
    }
  }
  return stats;
}

}  // namespace bypass
