// StatsProvider: the estimator's view onto column statistics, decoupled
// from where they live. Two tiers sharing one ColumnStatistics shape:
// GetColumnStats serves the lazy min/max/NDV summaries every in-memory
// table can produce on demand (histogram left empty); GetColumnStatistics
// serves the rich ANALYZE-built statistics (HyperLogLog distinct counts,
// equi-depth histograms) stored in the Catalog. Estimators prefer the
// rich tier and fall back tier by tier to textbook constants.
#ifndef BYPASSDB_STATS_STATS_PROVIDER_H_
#define BYPASSDB_STATS_STATS_PROVIDER_H_

#include <cstdint>
#include <string>

#include "catalog/table.h"
#include "stats/column_stats.h"

namespace bypass {

class StatsProvider {
 public:
  virtual ~StatsProvider() = default;

  /// Lazy statistics of `qualifier.name`, or nullptr when unknown.
  /// `rows` receives the owning table's cardinality when non-null.
  /// Served in the same ColumnStatistics shape as the rich tier (the
  /// lazy tier leaves the histogram empty).
  virtual const ColumnStatistics* GetColumnStats(
      const std::string& qualifier, const std::string& name,
      int64_t* rows) const = 0;

  /// ANALYZE-built statistics for the same column, or nullptr when the
  /// table was never analyzed (callers then fall back to the lazy tier).
  /// `rows` receives the row count the statistics were built against.
  virtual const ColumnStatistics* GetColumnStatistics(
      const std::string& qualifier, const std::string& name,
      int64_t* rows) const {
    (void)qualifier;
    (void)name;
    (void)rows;
    return nullptr;
  }

  /// The base table behind `qualifier`, or nullptr when the provider
  /// cannot resolve it. Lets the estimator consult the table's segment
  /// zone maps (when already built) for exact per-segment bounds that
  /// histograms only approximate.
  virtual const Table* GetTableForAlias(const std::string& qualifier) const {
    (void)qualifier;
    return nullptr;
  }
};

}  // namespace bypass

#endif  // BYPASSDB_STATS_STATS_PROVIDER_H_
