// ANALYZE implementation: builds TableStatistics in one streaming pass
// over the table's rows (all columns simultaneously), then sorts each
// numeric column's collected values once to slice the equi-depth
// histogram.
#ifndef BYPASSDB_STATS_ANALYZER_H_
#define BYPASSDB_STATS_ANALYZER_H_

#include "catalog/table.h"
#include "stats/column_stats.h"

namespace bypass {

struct AnalyzeOptions {
  /// Histogram resolution per numeric column.
  int histogram_buckets = 64;
  /// HyperLogLog precision (2^p registers per column).
  int hll_precision = 12;
};

/// Computes full statistics for `table`. Read-only over the table; the
/// caller stores the result in the Catalog (Database::Analyze does both).
TableStatistics AnalyzeTable(const Table& table,
                             const AnalyzeOptions& options = {});

}  // namespace bypass

#endif  // BYPASSDB_STATS_ANALYZER_H_
