// HyperLogLog distinct-count sketch (Flajolet et al. 2007) used by
// ANALYZE: one byte per register, mergeable across table chunks, and
// accurate to ~1.04/sqrt(2^precision) relative error. Small cardinality
// ranges fall back to linear counting, which makes the estimate exact
// enough for the catalog's selectivity math at our table sizes.
#ifndef BYPASSDB_STATS_HYPERLOGLOG_H_
#define BYPASSDB_STATS_HYPERLOGLOG_H_

#include <cstdint>
#include <vector>

namespace bypass {

class HyperLogLog {
 public:
  /// `precision` p selects 2^p registers (4 ≤ p ≤ 16). The default 12
  /// (4 KiB) gives ~1.6 % standard error.
  explicit HyperLogLog(int precision = 12);

  /// Observes one already-hashed value. Callers should feed well-mixed
  /// 64-bit hashes; MixHash below upgrades weak std::hash outputs.
  void Add(uint64_t hash);

  /// Cardinality estimate with small-range (linear counting) correction.
  int64_t Estimate() const;

  /// Register-wise max merge; both sketches must share the precision.
  void Merge(const HyperLogLog& other);

  int precision() const { return precision_; }

  /// 64-bit finalizer (splitmix64) applied over possibly low-entropy
  /// hashes before they hit the registers.
  static uint64_t MixHash(uint64_t h) {
    h += 0x9e3779b97f4a7c15ULL;
    h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
    h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
    return h ^ (h >> 31);
  }

 private:
  int precision_;
  std::vector<uint8_t> registers_;
};

}  // namespace bypass

#endif  // BYPASSDB_STATS_HYPERLOGLOG_H_
