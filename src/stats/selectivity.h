// Selectivity and predicate-cost estimation (grown out of rewrite/rank):
// comparison predicates consult ANALYZE histograms when available, fall
// back to lazy min/max interpolation and 1/NDV, then to textbook
// constants; conjunctions multiply under independence; disjunctions use
// inclusion–exclusion with sanity clamps to
// [max(disjuncts), min(1, sum(disjuncts))]. Per-disjunct estimates are
// exposed so the unnesting rewriter can rank a bypass cascade's branches
// (the paper's Eqv. 2 vs Eqv. 3 choice) on data instead of constants.
#ifndef BYPASSDB_STATS_SELECTIVITY_H_
#define BYPASSDB_STATS_SELECTIVITY_H_

#include <vector>

#include "expr/expr.h"
#include "stats/stats_provider.h"

namespace bypass {

/// Selectivity of `pred` in [0, 1]. With `stats`, equality against a
/// literal uses histograms/NDV and ranges use histogram fractions (or
/// min/max interpolation); otherwise textbook defaults apply ('=' 0.1,
/// ranges 1/3, LIKE 0.25).
double EstimateSelectivity(const Expr& pred,
                           const StatsProvider* stats = nullptr);

/// Selectivity of each top-level disjunct of `pred` (one entry for a
/// non-OR predicate), in disjunct order.
std::vector<double> EstimateDisjunctSelectivities(
    const Expr& pred, const StatsProvider* stats = nullptr);

/// Conditional selectivities of an ordered disjunct list: entry i is
/// P(p_i | ¬p_1 ∧ ... ∧ ¬p_{i-1}) — the fraction of rows *still
/// undecided* after the first i-1 disjuncts that disjunct i claims.
/// Marginal (independence-based) estimates double-count overlap between
/// correlated disjuncts; this uses histogram interval unions for
/// same-column comparisons (independence across columns) so the k-way
/// tagged cost model sees each row claimed at most once. Entries are
/// clamped to [0, 1]; when the prefix already covers everything, later
/// entries are 0.
std::vector<double> EstimateConditionalDisjunctSelectivities(
    const std::vector<ExprPtr>& disjuncts,
    const StatsProvider* stats = nullptr);

/// Convenience overload over the top-level disjuncts of `pred`.
std::vector<double> EstimateConditionalDisjunctSelectivities(
    const Expr& pred, const StatsProvider* stats = nullptr);

/// Per-tuple evaluation cost in abstract units; LIKE and arithmetic are
/// charged more, nested subqueries cost `subquery_cost`.
double EstimateCost(const Expr& pred, double subquery_cost);

/// rank(p) = (selectivity - 1) / cost (Slagle); lower ranks evaluate
/// first. With `stats`, the selectivity term is data-driven.
double PredicateRank(const Expr& pred, double subquery_cost,
                     const StatsProvider* stats = nullptr);

}  // namespace bypass

#endif  // BYPASSDB_STATS_SELECTIVITY_H_
