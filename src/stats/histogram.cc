#include "stats/histogram.h"

#include <algorithm>
#include <sstream>

namespace bypass {

EquiDepthHistogram EquiDepthHistogram::Build(std::vector<double> values,
                                             int max_buckets) {
  EquiDepthHistogram h;
  if (values.empty() || max_buckets < 1) return h;
  std::sort(values.begin(), values.end());
  const int64_t n = static_cast<int64_t>(values.size());
  h.total_count_ = n;
  h.min_ = values.front();
  const int64_t depth = (n + max_buckets - 1) / max_buckets;

  Bucket current;
  int64_t cumulative = 0;
  size_t i = 0;
  while (i < values.size()) {
    // One run of equal values; a run never straddles a bucket boundary,
    // which is what makes boundary estimates exact.
    size_t j = i;
    while (j < values.size() && values[j] == values[i]) ++j;
    const int64_t run = static_cast<int64_t>(j - i);
    current.count += run;
    current.distinct += 1;
    current.upper = values[i];
    current.upper_count = run;
    if (values[i] == h.min_) h.min_count_ = run;
    if (current.count >= depth || j >= values.size()) {
      cumulative += current.count;
      current.cumulative = cumulative;
      h.buckets_.push_back(current);
      current = Bucket{};
    }
    i = j;
  }
  return h;
}

size_t EquiDepthHistogram::BucketFor(double x) const {
  const auto it = std::lower_bound(
      buckets_.begin(), buckets_.end(), x,
      [](const Bucket& b, double v) { return b.upper < v; });
  return static_cast<size_t>(it - buckets_.begin());
}

double EquiDepthHistogram::CountBelow(double x) const {
  if (buckets_.empty() || x <= min_) return 0;
  if (x > buckets_.back().upper) {
    return static_cast<double>(total_count_);
  }
  const size_t i = BucketFor(x);
  const Bucket& b = buckets_[i];
  const double cum_before = static_cast<double>(b.cumulative - b.count);
  if (x >= b.upper) {  // x == upper: everything in the bucket except the
                       // boundary run lies strictly below it
    return cum_before + static_cast<double>(b.count - b.upper_count);
  }
  // Interior point: the masses pinned at the bucket edges (the global
  // minimum in bucket 0, the upper-bound run) are placed exactly; the
  // rest interpolates continuous-uniformly over (lower, upper).
  const double lower = i == 0 ? min_ : buckets_[i - 1].upper;
  const int64_t left_edge = i == 0 ? min_count_ : 0;
  const double interior = static_cast<double>(
      std::max<int64_t>(b.count - b.upper_count - left_edge, 0));
  const double frac = (x - lower) / (b.upper - lower);
  return cum_before + static_cast<double>(left_edge) + interior * frac;
}

double EquiDepthHistogram::FractionLT(double x) const {
  if (total_count_ == 0) return 0;
  return std::clamp(CountBelow(x) / static_cast<double>(total_count_),
                    0.0, 1.0);
}

double EquiDepthHistogram::FractionLE(double x) const {
  if (total_count_ == 0) return 0;
  return std::clamp(
      (CountBelow(x) + FractionEq(x) * static_cast<double>(total_count_)) /
          static_cast<double>(total_count_),
      0.0, 1.0);
}

double EquiDepthHistogram::FractionEq(double x) const {
  if (buckets_.empty() || x < min_ || x > buckets_.back().upper) return 0;
  const size_t i = BucketFor(x);
  const Bucket& b = buckets_[i];
  const double total = static_cast<double>(total_count_);
  if (x == b.upper) return static_cast<double>(b.upper_count) / total;
  if (i == 0 && x == min_) {
    return static_cast<double>(min_count_) / total;
  }
  // Unseen interior point: average frequency of the bucket's interior
  // distinct values.
  const int64_t left_edge = i == 0 ? min_count_ : 0;
  const int64_t interior_count =
      std::max<int64_t>(b.count - b.upper_count - left_edge, 0);
  const int64_t interior_distinct =
      b.distinct - 1 - (i == 0 && min_ != b.upper ? 1 : 0);
  if (interior_count <= 0 || interior_distinct <= 0) return 0;
  return static_cast<double>(interior_count) /
         static_cast<double>(interior_distinct) / total;
}

std::string EquiDepthHistogram::ToString() const {
  std::ostringstream os;
  os << "histogram[" << buckets_.size() << " buckets, " << total_count_
     << " values, min " << min_ << "]";
  for (const Bucket& b : buckets_) {
    os << " (<=" << b.upper << ": " << b.count << ")";
  }
  return os.str();
}

}  // namespace bypass
