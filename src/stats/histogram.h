// Equi-depth histogram over one numeric column, built from a single
// collected pass over the column's non-NULL values. Bucket boundaries
// are snapped to value-run ends, so every distinct value lives entirely
// inside one bucket: `v <= bucket_upper` estimates are exact, equality
// against a bucket's upper bound is exact, and interior points
// interpolate under a continuous-uniform assumption.
#ifndef BYPASSDB_STATS_HISTOGRAM_H_
#define BYPASSDB_STATS_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace bypass {

class EquiDepthHistogram {
 public:
  /// Empty histogram: non-numeric or all-NULL columns.
  EquiDepthHistogram() = default;

  /// Builds from the column's non-NULL numeric values (consumed; order
  /// irrelevant). At most `max_buckets` buckets; fewer when the column
  /// has fewer distinct values.
  static EquiDepthHistogram Build(std::vector<double> values,
                                  int max_buckets = 64);

  bool empty() const { return buckets_.empty(); }
  int num_buckets() const { return static_cast<int>(buckets_.size()); }
  int64_t total_count() const { return total_count_; }
  double min_value() const { return min_; }
  double max_value() const { return buckets_.empty() ? min_ : buckets_.back().upper; }

  /// Fraction of (non-NULL) values `v` with v <= x / v < x / v == x.
  /// All return values lie in [0, 1]; an empty histogram returns 0.
  double FractionLE(double x) const;
  double FractionLT(double x) const;
  double FractionEq(double x) const;

  /// One-line debug form: bucket uppers with counts.
  std::string ToString() const;

 private:
  struct Bucket {
    double upper = 0;            ///< inclusive upper bound (a data value)
    int64_t count = 0;           ///< values in (prev_upper, upper]
    int64_t upper_count = 0;     ///< values exactly equal to `upper`
    int64_t distinct = 0;        ///< distinct values in the bucket
    int64_t cumulative = 0;      ///< values in buckets up to this one
  };

  /// Index of the first bucket whose upper bound is >= x.
  size_t BucketFor(double x) const;
  /// Values strictly below x, interpolating inside x's bucket.
  double CountBelow(double x) const;

  double min_ = 0;          ///< global minimum (lower bound of bucket 0)
  int64_t min_count_ = 0;   ///< values exactly equal to `min_`
  int64_t total_count_ = 0;
  std::vector<Bucket> buckets_;
};

}  // namespace bypass

#endif  // BYPASSDB_STATS_HISTOGRAM_H_
