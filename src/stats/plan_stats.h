// PlanStatsProvider: resolves column qualifiers through the base-table
// aliases referenced by a logical plan, serving ANALYZE statistics from
// the Catalog when present and the tables' lazy statistics otherwise.
// Used by the unnesting rewriter to rank bypass-cascade disjuncts on
// data, and by tests as the straightforward provider over one plan.
#ifndef BYPASSDB_STATS_PLAN_STATS_H_
#define BYPASSDB_STATS_PLAN_STATS_H_

#include <memory>
#include <string>
#include <unordered_map>

#include "algebra/logical_op.h"
#include "catalog/catalog.h"
#include "stats/stats_provider.h"

namespace bypass {

class PlanStatsProvider : public StatsProvider {
 public:
  /// Registers every base-table alias reachable from `root` (not
  /// descending into nested subquery blocks — their aliases shadow ours).
  PlanStatsProvider(const Catalog* catalog, const LogicalOpPtr& root);

  /// Registers further aliases from another plan fragment.
  void AddPlan(const LogicalOpPtr& root);

  const ColumnStatistics* GetColumnStats(const std::string& qualifier,
                                         const std::string& name,
                                         int64_t* rows) const override;

  const ColumnStatistics* GetColumnStatistics(
      const std::string& qualifier, const std::string& name,
      int64_t* rows) const override;

  const Table* GetTableForAlias(
      const std::string& qualifier) const override;

 private:
  struct Entry {
    const Table* table = nullptr;
    std::shared_ptr<const TableStatistics> analyzed;  ///< may be null
  };
  const Entry* Resolve(const std::string& qualifier) const;

  const Catalog* catalog_;
  std::unordered_map<std::string, Entry> aliases_;
};

}  // namespace bypass

#endif  // BYPASSDB_STATS_PLAN_STATS_H_
