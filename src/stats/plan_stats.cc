#include "stats/plan_stats.h"

#include "algebra/plan_util.h"

namespace bypass {

PlanStatsProvider::PlanStatsProvider(const Catalog* catalog,
                                     const LogicalOpPtr& root)
    : catalog_(catalog) {
  if (root != nullptr) AddPlan(root);
}

void PlanStatsProvider::AddPlan(const LogicalOpPtr& root) {
  if (catalog_ == nullptr) return;
  VisitPlan(root, [this](const LogicalOpPtr& node) {
    if (node->kind() != LogicalOpKind::kGet) return;
    const auto& get = static_cast<const GetOp&>(*node);
    auto table = catalog_->GetTable(get.table_name());
    if (!table.ok()) return;
    Entry entry;
    entry.table = *table;
    entry.analyzed = catalog_->GetTableStatistics(get.table_name());
    aliases_.emplace(get.alias(), std::move(entry));
  });
}

const PlanStatsProvider::Entry* PlanStatsProvider::Resolve(
    const std::string& qualifier) const {
  const auto it = aliases_.find(qualifier);
  return it == aliases_.end() ? nullptr : &it->second;
}

const ColumnStatistics* PlanStatsProvider::GetColumnStats(
    const std::string& qualifier, const std::string& name,
    int64_t* rows) const {
  const Entry* entry = Resolve(qualifier);
  if (entry == nullptr) return nullptr;
  auto slot = entry->table->schema().FindColumn("", name);
  if (!slot.ok()) return nullptr;
  *rows = entry->table->num_rows();
  return &entry->table->stats()[static_cast<size_t>(*slot)];
}

const Table* PlanStatsProvider::GetTableForAlias(
    const std::string& qualifier) const {
  const Entry* entry = Resolve(qualifier);
  return entry == nullptr ? nullptr : entry->table;
}

const ColumnStatistics* PlanStatsProvider::GetColumnStatistics(
    const std::string& qualifier, const std::string& name,
    int64_t* rows) const {
  const Entry* entry = Resolve(qualifier);
  if (entry == nullptr || entry->analyzed == nullptr) return nullptr;
  auto slot = entry->table->schema().FindColumn("", name);
  if (!slot.ok() ||
      static_cast<size_t>(*slot) >= entry->analyzed->columns.size()) {
    return nullptr;
  }
  *rows = entry->analyzed->row_count;
  return &entry->analyzed->columns[static_cast<size_t>(*slot)];
}

}  // namespace bypass
