#include "stats/selectivity.h"

#include <algorithm>
#include <limits>
#include <map>
#include <optional>
#include <string>
#include <utility>

#include "expr/expr_util.h"
#include "storage/zone_map.h"

namespace bypass {

namespace {

/// Decomposed `col θ literal` comparison (operator flipped when the
/// literal is on the left).
struct ColumnLiteral {
  const ColumnRefExpr* column;
  const Value* value;
  CompareOp op;
};

std::optional<ColumnLiteral> MatchColumnLiteral(const ComparisonExpr& cmp) {
  const Expr* col = nullptr;
  const Expr* lit = nullptr;
  CompareOp op = cmp.op();
  if (cmp.left()->kind() == ExprKind::kColumnRef &&
      cmp.right()->kind() == ExprKind::kLiteral) {
    col = cmp.left().get();
    lit = cmp.right().get();
  } else if (cmp.right()->kind() == ExprKind::kColumnRef &&
             cmp.left()->kind() == ExprKind::kLiteral) {
    col = cmp.right().get();
    lit = cmp.left().get();
    op = FlipCompareOp(op);
  } else {
    return std::nullopt;
  }
  const auto* ref = static_cast<const ColumnRefExpr*>(col);
  if (ref->is_outer()) return std::nullopt;
  return ColumnLiteral{ref,
                       &static_cast<const LiteralExpr*>(lit)->value(), op};
}

/// Histogram-backed estimate over ANALYZE statistics; nullopt when the
/// column has no histogram or the literal is non-numeric.
std::optional<double> HistogramSelectivity(const ColumnStatistics& column,
                                           int64_t rows, CompareOp op,
                                           const Value& value) {
  if (rows <= 0) return 0.0;  // empty table: nothing qualifies
  const double non_null = 1.0 - column.NullFraction(rows);
  if (op == CompareOp::kEq || op == CompareOp::kNe) {
    double eq;
    if (!column.histogram.empty() && value.is_numeric()) {
      eq = column.histogram.FractionEq(value.AsDouble()) * non_null;
    } else if (column.distinct_count > 0) {
      eq = non_null / static_cast<double>(column.distinct_count);
    } else {
      return 0.0;  // all-NULL column: equality never holds
    }
    return op == CompareOp::kEq ? eq : std::max(0.0, non_null - eq);
  }
  if (column.histogram.empty() || !value.is_numeric()) {
    return std::nullopt;
  }
  const double v = value.AsDouble();
  switch (op) {
    case CompareOp::kLt:
      return column.histogram.FractionLT(v) * non_null;
    case CompareOp::kLe:
      return column.histogram.FractionLE(v) * non_null;
    case CompareOp::kGt:
      return (1.0 - column.histogram.FractionLE(v)) * non_null;
    case CompareOp::kGe:
      return (1.0 - column.histogram.FractionLT(v)) * non_null;
    default:
      return std::nullopt;
  }
}

/// Lazy-tier estimate (min/max interpolation + NDV); the pre-ANALYZE
/// behaviour.
std::optional<double> LazySelectivity(const ColumnStatistics& column,
                                      int64_t rows, CompareOp op,
                                      const Value& value) {
  if (rows <= 0) return 0.0;
  const double non_null =
      1.0 -
      static_cast<double>(column.null_count) / static_cast<double>(rows);
  if (op == CompareOp::kEq || op == CompareOp::kNe) {
    if (column.distinct_count <= 0) return std::nullopt;
    const double eq =
        non_null / static_cast<double>(column.distinct_count);
    return op == CompareOp::kEq ? eq : std::max(0.0, non_null - eq);
  }
  if (column.min.is_null() || !column.min.is_numeric() ||
      !value.is_numeric()) {
    return std::nullopt;
  }
  const double lo = column.min.AsDouble();
  const double hi = column.max.AsDouble();
  if (hi <= lo) return std::nullopt;
  const double below =
      std::clamp((value.AsDouble() - lo) / (hi - lo), 0.0, 1.0);
  switch (op) {
    case CompareOp::kLt:
    case CompareOp::kLe:
      return below * non_null;
    case CompareOp::kGt:
    case CompareOp::kGe:
      return (1.0 - below) * non_null;
    default:
      return std::nullopt;
  }
}

/// Bounds on a comparison's selectivity derived from the table's segment
/// zone maps: the fraction of rows in segments where the predicate
/// provably holds for every row (lower) and where it may hold for some
/// row (upper). Exact per segment — a histogram interpolates inside a
/// bucket, a zone verdict does not — so clamping an estimate into these
/// bounds can only tighten it. Only consulted when the segment index is
/// already built (has_segments): estimation never pays the build cost.
struct ZoneBounds {
  double lo = 0.0;
  double hi = 1.0;
};

std::optional<ZoneBounds> ZoneComparisonBounds(const ColumnLiteral& match,
                                               const StatsProvider& stats) {
  const Table* table =
      stats.GetTableForAlias(match.column->qualifier());
  if (table == nullptr || !table->has_segments()) return std::nullopt;
  auto slot = table->schema().FindColumn("", match.column->name());
  if (!slot.ok()) return std::nullopt;
  const TableSegments& segs = table->segments();
  if (segs.num_rows == 0 || segs.segments.empty()) return std::nullopt;
  int64_t all_rows = 0;
  int64_t may_rows = 0;
  for (const SegmentMeta& meta : segs.segments) {
    if (static_cast<size_t>(*slot) >= meta.zones.size()) {
      return std::nullopt;
    }
    const ColumnZone& zone = meta.zones[static_cast<size_t>(*slot)];
    switch (ClassifyZone(zone, meta.row_count, match.op, *match.value)) {
      case ZoneMatch::kAll:
        all_rows += static_cast<int64_t>(meta.row_count);
        [[fallthrough]];
      case ZoneMatch::kSome:
        may_rows += static_cast<int64_t>(meta.row_count);
        break;
      case ZoneMatch::kNone:
        break;
    }
  }
  const double total = static_cast<double>(segs.num_rows);
  return ZoneBounds{static_cast<double>(all_rows) / total,
                    static_cast<double>(may_rows) / total};
}

std::optional<double> StatsComparisonSelectivity(
    const ComparisonExpr& cmp, const StatsProvider& stats) {
  const auto match = MatchColumnLiteral(cmp);
  if (!match.has_value()) return std::nullopt;
  if (match->value->is_null()) return 0.0;  // θ NULL never holds

  const auto bounds = ZoneComparisonBounds(*match, stats);
  const auto clamp = [&bounds](double est) {
    return bounds.has_value() ? std::clamp(est, bounds->lo, bounds->hi)
                              : est;
  };

  int64_t rows = 0;
  if (const ColumnStatistics* rich = stats.GetColumnStatistics(
          match->column->qualifier(), match->column->name(), &rows)) {
    if (auto est = HistogramSelectivity(*rich, rows, match->op,
                                        *match->value)) {
      return clamp(*est);
    }
  }
  rows = 0;
  const ColumnStatistics* lazy = stats.GetColumnStats(
      match->column->qualifier(), match->column->name(), &rows);
  if (lazy != nullptr) {
    if (auto est =
            LazySelectivity(*lazy, rows, match->op, *match->value)) {
      return clamp(*est);
    }
  }
  // No per-column statistics could price the comparison; the zone bounds
  // alone still beat a textbook constant — take their midpoint.
  if (bounds.has_value()) return (bounds->lo + bounds->hi) / 2.0;
  return std::nullopt;
}

/// NULL fraction of a plain column reference, when known.
std::optional<double> StatsNullFraction(const Expr& input,
                                        const StatsProvider& stats) {
  if (input.kind() != ExprKind::kColumnRef) return std::nullopt;
  const auto& ref = static_cast<const ColumnRefExpr&>(input);
  if (ref.is_outer()) return std::nullopt;
  int64_t rows = 0;
  if (const ColumnStatistics* rich =
          stats.GetColumnStatistics(ref.qualifier(), ref.name(), &rows)) {
    return rich->NullFraction(rows);
  }
  rows = 0;
  if (const ColumnStatistics* lazy =
          stats.GetColumnStats(ref.qualifier(), ref.name(), &rows)) {
    if (rows <= 0) return 0.0;
    return static_cast<double>(lazy->null_count) /
           static_cast<double>(rows);
  }
  return std::nullopt;
}

}  // namespace

double EstimateSelectivity(const Expr& pred, const StatsProvider* stats) {
  switch (pred.kind()) {
    case ExprKind::kComparison: {
      const auto& cmp = static_cast<const ComparisonExpr&>(pred);
      if (stats != nullptr) {
        if (auto estimate = StatsComparisonSelectivity(cmp, *stats)) {
          return *estimate;
        }
      }
      switch (cmp.op()) {
        case CompareOp::kEq:
          return 0.1;
        case CompareOp::kNe:
          return 0.9;
        default:
          return 1.0 / 3.0;
      }
    }
    case ExprKind::kAnd: {
      double s = 1.0;
      for (const ExprPtr& t :
           static_cast<const AndExpr&>(pred).terms()) {
        s *= EstimateSelectivity(*t, stats);
      }
      return s;
    }
    case ExprKind::kOr: {
      // Inclusion–exclusion under independence, clamped to the
      // always-valid disjunction bounds (per-disjunct estimates come
      // from heterogeneous sources, so the closed form alone can stray).
      double pass_none = 1.0;
      double sum = 0.0;
      double best = 0.0;
      for (const ExprPtr& t : static_cast<const OrExpr&>(pred).terms()) {
        const double s = EstimateSelectivity(*t, stats);
        pass_none *= 1.0 - s;
        sum += s;
        best = std::max(best, s);
      }
      return std::clamp(1.0 - pass_none, best, std::min(1.0, sum));
    }
    case ExprKind::kNot:
      return std::clamp(
          1.0 - EstimateSelectivity(
                    *static_cast<const NotExpr&>(pred).input(), stats),
          0.0, 1.0);
    case ExprKind::kLike:
      return 0.25;
    case ExprKind::kIsNull: {
      const auto& is_null = static_cast<const IsNullExpr&>(pred);
      double fraction = 0.1;
      if (stats != nullptr) {
        if (auto known = StatsNullFraction(*is_null.input(), *stats)) {
          fraction = *known;
        }
      }
      return is_null.negated() ? 1.0 - fraction : fraction;
    }
    case ExprKind::kLiteral: {
      const auto& lit = static_cast<const LiteralExpr&>(pred);
      if (lit.value().is_bool()) {
        return lit.value().bool_value() ? 1.0 : 0.0;
      }
      return 0.5;
    }
    case ExprKind::kSubquery: {
      const auto& sq = static_cast<const SubqueryExpr&>(pred);
      if (sq.subquery_kind() == SubqueryKind::kExists) return 0.5;
      return 0.25;
    }
    default:
      return 0.5;
  }
}

std::vector<double> EstimateDisjunctSelectivities(
    const Expr& pred, const StatsProvider* stats) {
  std::vector<double> out;
  if (pred.kind() == ExprKind::kOr) {
    for (const ExprPtr& t : static_cast<const OrExpr&>(pred).terms()) {
      out.push_back(EstimateSelectivity(*t, stats));
    }
  } else {
    out.push_back(EstimateSelectivity(pred, stats));
  }
  return out;
}

// ------------------------------------------- conditional disjunct chain

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// A numeric interval over the reals; {lo_open, hi_open} distinguish
/// (a,b) from [a,b]. Unbounded sides use ±inf (open).
struct NumInterval {
  double lo = -kInf;
  double hi = kInf;
  bool lo_open = true;
  bool hi_open = true;
};

/// One disjunct, decomposed: a stats-backed interval on a named column
/// (so overlap with other disjuncts on the same column is exact), or an
/// opaque term treated as independent via its marginal selectivity.
struct DisjunctTerm {
  bool is_interval = false;
  std::string qualifier;
  std::string name;
  NumInterval interval;
  double marginal = 0.0;
};

/// Cumulative-fraction access for one column: rich histogram first,
/// lazy min/max interpolation second, nullopt when neither can answer.
struct ColumnCum {
  const ColumnStatistics* rich = nullptr;
  int64_t rich_rows = 0;
  const ColumnStatistics* lazy = nullptr;
  int64_t lazy_rows = 0;

  static ColumnCum Lookup(const StatsProvider& stats,
                          const std::string& qualifier,
                          const std::string& name) {
    ColumnCum cum;
    cum.rich = stats.GetColumnStatistics(qualifier, name, &cum.rich_rows);
    cum.lazy = stats.GetColumnStats(qualifier, name, &cum.lazy_rows);
    return cum;
  }

  std::optional<double> Sel(CompareOp op, double v) const {
    const Value value = Value::Double(v);
    if (rich != nullptr) {
      if (auto est = HistogramSelectivity(*rich, rich_rows, op, value)) {
        return est;
      }
    }
    if (lazy != nullptr) return LazySelectivity(*lazy, lazy_rows, op, value);
    return std::nullopt;
  }

  std::optional<double> NonNull() const {
    if (rich != nullptr) {
      if (rich_rows <= 0) return 0.0;
      return 1.0 - rich->NullFraction(rich_rows);
    }
    if (lazy != nullptr) {
      if (lazy_rows <= 0) return 0.0;
      return 1.0 - static_cast<double>(lazy->null_count) /
                       static_cast<double>(lazy_rows);
    }
    return std::nullopt;
  }

  /// Fraction of all rows inside the interval (nulls never qualify).
  std::optional<double> Mass(const NumInterval& iv) const {
    if (iv.lo == iv.hi && !iv.lo_open && !iv.hi_open) {
      return Sel(CompareOp::kEq, iv.lo);
    }
    std::optional<double> hi_cum =
        iv.hi == kInf ? NonNull()
                      : Sel(iv.hi_open ? CompareOp::kLt : CompareOp::kLe,
                            iv.hi);
    std::optional<double> lo_cum =
        iv.lo == -kInf
            ? std::optional<double>(0.0)
            : Sel(iv.lo_open ? CompareOp::kLe : CompareOp::kLt, iv.lo);
    if (!hi_cum.has_value() || !lo_cum.has_value()) return std::nullopt;
    return std::max(0.0, *hi_cum - *lo_cum);
  }
};

/// Tries to read a disjunct as `col θ numeric-literal` with θ an
/// interval-shaped operator (=, <, <=, >, >=).
bool DecomposeInterval(const Expr& pred, DisjunctTerm* term) {
  if (pred.kind() != ExprKind::kComparison) return false;
  const auto match =
      MatchColumnLiteral(static_cast<const ComparisonExpr&>(pred));
  if (!match.has_value() || !match->value->is_numeric() ||
      match->op == CompareOp::kNe) {
    return false;
  }
  const double v = match->value->AsDouble();
  NumInterval iv;
  switch (match->op) {
    case CompareOp::kEq:
      iv = {v, v, false, false};
      break;
    case CompareOp::kLt:
      iv = {-kInf, v, true, true};
      break;
    case CompareOp::kLe:
      iv = {-kInf, v, true, false};
      break;
    case CompareOp::kGt:
      iv = {v, kInf, true, true};
      break;
    case CompareOp::kGe:
      iv = {v, kInf, false, true};
      break;
    default:
      return false;
  }
  term->is_interval = true;
  term->qualifier = match->column->qualifier();
  term->name = match->column->name();
  term->interval = iv;
  return true;
}

/// Union mass of same-column intervals: sort, merge overlapping /
/// touching runs, sum the merged masses. nullopt when the column's stats
/// cannot price an endpoint.
std::optional<double> IntervalUnionMass(std::vector<NumInterval> ivs,
                                        const ColumnCum& cum) {
  std::sort(ivs.begin(), ivs.end(),
            [](const NumInterval& a, const NumInterval& b) {
              if (a.lo != b.lo) return a.lo < b.lo;
              return !a.lo_open && b.lo_open;  // closed start first
            });
  std::vector<NumInterval> merged;
  for (const NumInterval& iv : ivs) {
    if (!merged.empty()) {
      NumInterval& last = merged.back();
      const bool overlaps =
          iv.lo < last.hi ||
          (iv.lo == last.hi && (!last.hi_open || !iv.lo_open));
      if (overlaps) {
        if (iv.hi > last.hi) {
          last.hi = iv.hi;
          last.hi_open = iv.hi_open;
        } else if (iv.hi == last.hi) {
          last.hi_open = last.hi_open && iv.hi_open;
        }
        continue;
      }
    }
    merged.push_back(iv);
  }
  double total = 0.0;
  for (const NumInterval& iv : merged) {
    const auto mass = cum.Mass(iv);
    if (!mass.has_value()) return std::nullopt;
    total += *mass;
  }
  return std::min(1.0, total);
}

/// Selectivity of the disjunction of the first `m` terms: interval terms
/// union exactly per column, everything else composes independently.
double PrefixUnionSelectivity(const std::vector<DisjunctTerm>& terms,
                              size_t m, const StatsProvider* stats) {
  double pass_none = 1.0;
  std::map<std::pair<std::string, std::string>, std::vector<NumInterval>>
      by_column;
  for (size_t i = 0; i < m; ++i) {
    const DisjunctTerm& t = terms[i];
    if (t.is_interval && stats != nullptr) {
      by_column[{t.qualifier, t.name}].push_back(t.interval);
    } else {
      pass_none *= 1.0 - t.marginal;
    }
  }
  for (const auto& [key, ivs] : by_column) {
    const ColumnCum cum =
        ColumnCum::Lookup(*stats, key.first, key.second);
    std::optional<double> mass = IntervalUnionMass(ivs, cum);
    if (mass.has_value()) {
      pass_none *= 1.0 - std::clamp(*mass, 0.0, 1.0);
      continue;
    }
    // No usable stats for the column: fall back to independence over
    // the individual marginals.
    for (size_t i = 0; i < m; ++i) {
      const DisjunctTerm& t = terms[i];
      if (t.is_interval && t.qualifier == key.first &&
          t.name == key.second) {
        pass_none *= 1.0 - t.marginal;
      }
    }
  }
  return std::clamp(1.0 - pass_none, 0.0, 1.0);
}

std::vector<double> ConditionalSelectivitiesImpl(
    const std::vector<const Expr*>& disjuncts, const StatsProvider* stats) {
  const size_t k = disjuncts.size();
  std::vector<DisjunctTerm> terms(k);
  for (size_t i = 0; i < k; ++i) {
    DecomposeInterval(*disjuncts[i], &terms[i]);
    terms[i].marginal =
        std::clamp(EstimateSelectivity(*disjuncts[i], stats), 0.0, 1.0);
  }
  // cond_i = (U_i - U_{i-1}) / (1 - U_{i-1}) with U_i the selectivity of
  // p_1 ∨ ... ∨ p_i; the union absorbs overlap, so a disjunct implied by
  // its predecessors conditions to ~0 instead of its marginal.
  std::vector<double> cond(k, 0.0);
  double prev_union = 0.0;
  for (size_t i = 0; i < k; ++i) {
    double u = PrefixUnionSelectivity(terms, i + 1, stats);
    u = std::clamp(u, prev_union, 1.0);  // prefix unions are monotone
    const double undecided = 1.0 - prev_union;
    cond[i] = undecided <= 1e-12
                  ? 0.0
                  : std::clamp((u - prev_union) / undecided, 0.0, 1.0);
    prev_union = u;
  }
  return cond;
}

}  // namespace

std::vector<double> EstimateConditionalDisjunctSelectivities(
    const std::vector<ExprPtr>& disjuncts, const StatsProvider* stats) {
  std::vector<const Expr*> ptrs;
  ptrs.reserve(disjuncts.size());
  for (const ExprPtr& d : disjuncts) ptrs.push_back(d.get());
  return ConditionalSelectivitiesImpl(ptrs, stats);
}

std::vector<double> EstimateConditionalDisjunctSelectivities(
    const Expr& pred, const StatsProvider* stats) {
  std::vector<const Expr*> ptrs;
  if (pred.kind() == ExprKind::kOr) {
    for (const ExprPtr& t : static_cast<const OrExpr&>(pred).terms()) {
      ptrs.push_back(t.get());
    }
  } else {
    ptrs.push_back(&pred);
  }
  return ConditionalSelectivitiesImpl(ptrs, stats);
}

double EstimateCost(const Expr& pred, double subquery_cost) {
  double children_cost = 0;
  for (const ExprPtr& c : pred.children()) {
    children_cost += EstimateCost(*c, subquery_cost);
  }
  switch (pred.kind()) {
    case ExprKind::kLiteral:
    case ExprKind::kColumnRef:
      return 0.2;
    case ExprKind::kComparison:
    case ExprKind::kIsNull:
      return children_cost + 1.0;
    case ExprKind::kAnd:
    case ExprKind::kOr:
    case ExprKind::kNot:
      return children_cost + 0.1;
    case ExprKind::kArithmetic:
    case ExprKind::kFunction:
      return children_cost + 2.0;
    case ExprKind::kLike:
      return children_cost + 10.0;
    case ExprKind::kSubquery:
      return children_cost + subquery_cost;
  }
  return children_cost + 1.0;
}

double PredicateRank(const Expr& pred, double subquery_cost,
                     const StatsProvider* stats) {
  const double cost = EstimateCost(pred, subquery_cost);
  return (EstimateSelectivity(pred, stats) - 1.0) /
         (cost > 0 ? cost : 1e-9);
}

}  // namespace bypass
