#include "stats/selectivity.h"

#include <algorithm>
#include <optional>

#include "expr/expr_util.h"

namespace bypass {

namespace {

/// Decomposed `col θ literal` comparison (operator flipped when the
/// literal is on the left).
struct ColumnLiteral {
  const ColumnRefExpr* column;
  const Value* value;
  CompareOp op;
};

std::optional<ColumnLiteral> MatchColumnLiteral(const ComparisonExpr& cmp) {
  const Expr* col = nullptr;
  const Expr* lit = nullptr;
  CompareOp op = cmp.op();
  if (cmp.left()->kind() == ExprKind::kColumnRef &&
      cmp.right()->kind() == ExprKind::kLiteral) {
    col = cmp.left().get();
    lit = cmp.right().get();
  } else if (cmp.right()->kind() == ExprKind::kColumnRef &&
             cmp.left()->kind() == ExprKind::kLiteral) {
    col = cmp.right().get();
    lit = cmp.left().get();
    op = FlipCompareOp(op);
  } else {
    return std::nullopt;
  }
  const auto* ref = static_cast<const ColumnRefExpr*>(col);
  if (ref->is_outer()) return std::nullopt;
  return ColumnLiteral{ref,
                       &static_cast<const LiteralExpr*>(lit)->value(), op};
}

/// Histogram-backed estimate over ANALYZE statistics; nullopt when the
/// column has no histogram or the literal is non-numeric.
std::optional<double> HistogramSelectivity(const ColumnStatistics& column,
                                           int64_t rows, CompareOp op,
                                           const Value& value) {
  if (rows <= 0) return 0.0;  // empty table: nothing qualifies
  const double non_null = 1.0 - column.NullFraction(rows);
  if (op == CompareOp::kEq || op == CompareOp::kNe) {
    double eq;
    if (!column.histogram.empty() && value.is_numeric()) {
      eq = column.histogram.FractionEq(value.AsDouble()) * non_null;
    } else if (column.distinct_count > 0) {
      eq = non_null / static_cast<double>(column.distinct_count);
    } else {
      return 0.0;  // all-NULL column: equality never holds
    }
    return op == CompareOp::kEq ? eq : std::max(0.0, non_null - eq);
  }
  if (column.histogram.empty() || !value.is_numeric()) {
    return std::nullopt;
  }
  const double v = value.AsDouble();
  switch (op) {
    case CompareOp::kLt:
      return column.histogram.FractionLT(v) * non_null;
    case CompareOp::kLe:
      return column.histogram.FractionLE(v) * non_null;
    case CompareOp::kGt:
      return (1.0 - column.histogram.FractionLE(v)) * non_null;
    case CompareOp::kGe:
      return (1.0 - column.histogram.FractionLT(v)) * non_null;
    default:
      return std::nullopt;
  }
}

/// Lazy-tier estimate (min/max interpolation + NDV); the pre-ANALYZE
/// behaviour.
std::optional<double> LazySelectivity(const ColumnStatistics& column,
                                      int64_t rows, CompareOp op,
                                      const Value& value) {
  if (rows <= 0) return 0.0;
  const double non_null =
      1.0 -
      static_cast<double>(column.null_count) / static_cast<double>(rows);
  if (op == CompareOp::kEq || op == CompareOp::kNe) {
    if (column.distinct_count <= 0) return std::nullopt;
    const double eq =
        non_null / static_cast<double>(column.distinct_count);
    return op == CompareOp::kEq ? eq : std::max(0.0, non_null - eq);
  }
  if (column.min.is_null() || !column.min.is_numeric() ||
      !value.is_numeric()) {
    return std::nullopt;
  }
  const double lo = column.min.AsDouble();
  const double hi = column.max.AsDouble();
  if (hi <= lo) return std::nullopt;
  const double below =
      std::clamp((value.AsDouble() - lo) / (hi - lo), 0.0, 1.0);
  switch (op) {
    case CompareOp::kLt:
    case CompareOp::kLe:
      return below * non_null;
    case CompareOp::kGt:
    case CompareOp::kGe:
      return (1.0 - below) * non_null;
    default:
      return std::nullopt;
  }
}

std::optional<double> StatsComparisonSelectivity(
    const ComparisonExpr& cmp, const StatsProvider& stats) {
  const auto match = MatchColumnLiteral(cmp);
  if (!match.has_value()) return std::nullopt;
  if (match->value->is_null()) return 0.0;  // θ NULL never holds

  int64_t rows = 0;
  if (const ColumnStatistics* rich = stats.GetColumnStatistics(
          match->column->qualifier(), match->column->name(), &rows)) {
    if (auto est = HistogramSelectivity(*rich, rows, match->op,
                                        *match->value)) {
      return est;
    }
  }
  rows = 0;
  const ColumnStatistics* lazy = stats.GetColumnStats(
      match->column->qualifier(), match->column->name(), &rows);
  if (lazy == nullptr) return std::nullopt;
  return LazySelectivity(*lazy, rows, match->op, *match->value);
}

/// NULL fraction of a plain column reference, when known.
std::optional<double> StatsNullFraction(const Expr& input,
                                        const StatsProvider& stats) {
  if (input.kind() != ExprKind::kColumnRef) return std::nullopt;
  const auto& ref = static_cast<const ColumnRefExpr&>(input);
  if (ref.is_outer()) return std::nullopt;
  int64_t rows = 0;
  if (const ColumnStatistics* rich =
          stats.GetColumnStatistics(ref.qualifier(), ref.name(), &rows)) {
    return rich->NullFraction(rows);
  }
  rows = 0;
  if (const ColumnStatistics* lazy =
          stats.GetColumnStats(ref.qualifier(), ref.name(), &rows)) {
    if (rows <= 0) return 0.0;
    return static_cast<double>(lazy->null_count) /
           static_cast<double>(rows);
  }
  return std::nullopt;
}

}  // namespace

double EstimateSelectivity(const Expr& pred, const StatsProvider* stats) {
  switch (pred.kind()) {
    case ExprKind::kComparison: {
      const auto& cmp = static_cast<const ComparisonExpr&>(pred);
      if (stats != nullptr) {
        if (auto estimate = StatsComparisonSelectivity(cmp, *stats)) {
          return *estimate;
        }
      }
      switch (cmp.op()) {
        case CompareOp::kEq:
          return 0.1;
        case CompareOp::kNe:
          return 0.9;
        default:
          return 1.0 / 3.0;
      }
    }
    case ExprKind::kAnd: {
      double s = 1.0;
      for (const ExprPtr& t :
           static_cast<const AndExpr&>(pred).terms()) {
        s *= EstimateSelectivity(*t, stats);
      }
      return s;
    }
    case ExprKind::kOr: {
      // Inclusion–exclusion under independence, clamped to the
      // always-valid disjunction bounds (per-disjunct estimates come
      // from heterogeneous sources, so the closed form alone can stray).
      double pass_none = 1.0;
      double sum = 0.0;
      double best = 0.0;
      for (const ExprPtr& t : static_cast<const OrExpr&>(pred).terms()) {
        const double s = EstimateSelectivity(*t, stats);
        pass_none *= 1.0 - s;
        sum += s;
        best = std::max(best, s);
      }
      return std::clamp(1.0 - pass_none, best, std::min(1.0, sum));
    }
    case ExprKind::kNot:
      return std::clamp(
          1.0 - EstimateSelectivity(
                    *static_cast<const NotExpr&>(pred).input(), stats),
          0.0, 1.0);
    case ExprKind::kLike:
      return 0.25;
    case ExprKind::kIsNull: {
      const auto& is_null = static_cast<const IsNullExpr&>(pred);
      double fraction = 0.1;
      if (stats != nullptr) {
        if (auto known = StatsNullFraction(*is_null.input(), *stats)) {
          fraction = *known;
        }
      }
      return is_null.negated() ? 1.0 - fraction : fraction;
    }
    case ExprKind::kLiteral: {
      const auto& lit = static_cast<const LiteralExpr&>(pred);
      if (lit.value().is_bool()) {
        return lit.value().bool_value() ? 1.0 : 0.0;
      }
      return 0.5;
    }
    case ExprKind::kSubquery: {
      const auto& sq = static_cast<const SubqueryExpr&>(pred);
      if (sq.subquery_kind() == SubqueryKind::kExists) return 0.5;
      return 0.25;
    }
    default:
      return 0.5;
  }
}

std::vector<double> EstimateDisjunctSelectivities(
    const Expr& pred, const StatsProvider* stats) {
  std::vector<double> out;
  if (pred.kind() == ExprKind::kOr) {
    for (const ExprPtr& t : static_cast<const OrExpr&>(pred).terms()) {
      out.push_back(EstimateSelectivity(*t, stats));
    }
  } else {
    out.push_back(EstimateSelectivity(pred, stats));
  }
  return out;
}

double EstimateCost(const Expr& pred, double subquery_cost) {
  double children_cost = 0;
  for (const ExprPtr& c : pred.children()) {
    children_cost += EstimateCost(*c, subquery_cost);
  }
  switch (pred.kind()) {
    case ExprKind::kLiteral:
    case ExprKind::kColumnRef:
      return 0.2;
    case ExprKind::kComparison:
    case ExprKind::kIsNull:
      return children_cost + 1.0;
    case ExprKind::kAnd:
    case ExprKind::kOr:
    case ExprKind::kNot:
      return children_cost + 0.1;
    case ExprKind::kArithmetic:
    case ExprKind::kFunction:
      return children_cost + 2.0;
    case ExprKind::kLike:
      return children_cost + 10.0;
    case ExprKind::kSubquery:
      return children_cost + subquery_cost;
  }
  return children_cost + 1.0;
}

double PredicateRank(const Expr& pred, double subquery_cost,
                     const StatsProvider* stats) {
  const double cost = EstimateCost(pred, subquery_cost);
  return (EstimateSelectivity(pred, stats) - 1.0) /
         (cost > 0 ? cost : 1e-9);
}

}  // namespace bypass
