// Runtime cardinality feedback: after a query executes, the actual
// per-operator row counts are compared against the planner's annotated
// estimates (q-error), and actual base-table cardinalities can be written
// back to the catalog to refresh stale ANALYZE row counts — which bumps
// the statistics epoch and transparently re-plans prepared queries.
#ifndef BYPASSDB_STATS_FEEDBACK_H_
#define BYPASSDB_STATS_FEEDBACK_H_

#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "exec/executor.h"

namespace bypass {

/// The standard estimation-quality metric, symmetric and >= 1; the +1
/// smoothing keeps empty streams finite.
inline double QError(double estimated, double actual) {
  const double e = estimated + 1.0;
  const double a = actual + 1.0;
  return e > a ? e / a : a / e;
}

/// One operator's estimate-vs-actual comparison (positive stream).
struct OperatorFeedback {
  std::string label;
  double estimated = -1;  ///< negative: the planner attached no estimate
  int64_t actual = 0;
  double q_error = 1.0;   ///< 1.0 when no estimate was attached
};

/// Estimate-vs-actual for every operator of the executed plan, in plan
/// order. Operators without an annotation report q_error 1.0.
std::vector<OperatorFeedback> CollectOperatorFeedback(
    const PhysicalPlan& plan);

/// Refreshes the catalog's ANALYZE row counts from the actual scan
/// cardinalities of the executed plan. Only tables that have statistics
/// and whose recorded row count drifted are touched (each touch bumps the
/// statistics epoch). Returns the number of tables refreshed.
int ApplyCardinalityFeedback(const PhysicalPlan& plan, Catalog* catalog);

}  // namespace bypass

#endif  // BYPASSDB_STATS_FEEDBACK_H_
