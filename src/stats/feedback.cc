#include "stats/feedback.h"

namespace bypass {

std::vector<OperatorFeedback> CollectOperatorFeedback(
    const PhysicalPlan& plan) {
  std::vector<OperatorFeedback> feedback;
  feedback.reserve(plan.ops.size());
  for (const PhysOpPtr& op : plan.ops) {
    OperatorFeedback f;
    f.label = op->Label();
    f.estimated = op->estimated_rows(kPortOut);
    f.actual = op->rows_emitted(kPortOut);
    if (f.estimated >= 0) {
      f.q_error = QError(f.estimated, static_cast<double>(f.actual));
    }
    feedback.push_back(std::move(f));
  }
  return feedback;
}

int ApplyCardinalityFeedback(const PhysicalPlan& plan, Catalog* catalog) {
  int refreshed = 0;
  for (const TableScanOp* source : plan.sources) {
    const auto stats = catalog->GetTableStatistics(source->table_name());
    if (stats == nullptr) continue;  // never analyzed: nothing to refresh
    const int64_t actual = source->rows_emitted(kPortOut);
    if (stats->row_count == actual) continue;
    TableStatistics updated = *stats;
    updated.row_count = actual;
    catalog->SetTableStatistics(source->table_name(), std::move(updated));
    ++refreshed;
  }
  return refreshed;
}

}  // namespace bypass
