#include "stats/hyperloglog.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace bypass {

namespace {

/// Bias-correction constant alpha_m for m registers (Flajolet et al.).
double AlphaM(size_t m) {
  switch (m) {
    case 16:
      return 0.673;
    case 32:
      return 0.697;
    case 64:
      return 0.709;
    default:
      return 0.7213 / (1.0 + 1.079 / static_cast<double>(m));
  }
}

}  // namespace

HyperLogLog::HyperLogLog(int precision) : precision_(precision) {
  BYPASS_CHECK_MSG(precision >= 4 && precision <= 16,
                   "HyperLogLog precision out of [4, 16]");
  registers_.assign(size_t{1} << precision_, 0);
}

void HyperLogLog::Add(uint64_t hash) {
  hash = MixHash(hash);
  const uint64_t index = hash >> (64 - precision_);
  // Rank of the remaining bits: position of the leftmost 1, counted from
  // 1. The `| 1` guard keeps clz defined when the suffix is all zeros.
  const uint64_t suffix = (hash << precision_) | 1;
  const uint8_t rank = static_cast<uint8_t>(__builtin_clzll(suffix) + 1);
  uint8_t& reg = registers_[static_cast<size_t>(index)];
  reg = std::max(reg, rank);
}

int64_t HyperLogLog::Estimate() const {
  const double m = static_cast<double>(registers_.size());
  double inverse_sum = 0;
  size_t zero_registers = 0;
  for (const uint8_t reg : registers_) {
    inverse_sum += std::ldexp(1.0, -reg);
    if (reg == 0) ++zero_registers;
  }
  double estimate = AlphaM(registers_.size()) * m * m / inverse_sum;
  // Small-range correction: linear counting while any register is empty
  // and the raw estimate is below the 2.5m threshold.
  if (estimate <= 2.5 * m && zero_registers > 0) {
    estimate = m * std::log(m / static_cast<double>(zero_registers));
  }
  return static_cast<int64_t>(std::llround(estimate));
}

void HyperLogLog::Merge(const HyperLogLog& other) {
  BYPASS_CHECK_MSG(precision_ == other.precision_,
                   "merging HyperLogLog sketches of different precision");
  for (size_t i = 0; i < registers_.size(); ++i) {
    registers_[i] = std::max(registers_[i], other.registers_[i]);
  }
}

}  // namespace bypass
