// Invariant-checking macros. BYPASS_CHECK aborts on violation; it guards
// programmer errors, never user input (user input errors flow through
// Status).
#ifndef BYPASSDB_COMMON_CHECK_H_
#define BYPASSDB_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

#define BYPASS_CHECK(cond)                                                \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", __FILE__,       \
                   __LINE__, #cond);                                      \
      std::abort();                                                       \
    }                                                                     \
  } while (0)

#define BYPASS_CHECK_MSG(cond, msg)                                       \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s (%s)\n", __FILE__,  \
                   __LINE__, #cond, msg);                                 \
      std::abort();                                                       \
    }                                                                     \
  } while (0)

#define BYPASS_UNREACHABLE(msg)                                           \
  do {                                                                    \
    std::fprintf(stderr, "UNREACHABLE at %s:%d: %s\n", __FILE__,          \
                 __LINE__, msg);                                          \
    std::abort();                                                         \
  } while (0)

#endif  // BYPASSDB_COMMON_CHECK_H_
