#include "common/string_util.h"

#include <cctype>

namespace bypass {

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool LikeMatch(std::string_view text, std::string_view pattern) {
  // Iterative wildcard matching with backtracking over the last '%'.
  size_t t = 0, p = 0;
  size_t star_p = std::string_view::npos;
  size_t star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' || pattern[p] == text[t])) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string_view::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

LikePattern AnalyzeLikePattern(std::string_view pattern) {
  LikePattern out;
  if (pattern.find('_') != std::string_view::npos) return out;
  size_t lead = 0;
  while (lead < pattern.size() && pattern[lead] == '%') ++lead;
  if (lead == pattern.size()) {
    out.shape = lead > 0 ? LikeShape::kMatchAll : LikeShape::kExact;
    out.body = std::string_view();
    return out;
  }
  size_t tail = pattern.size();
  while (tail > lead && pattern[tail - 1] == '%') --tail;
  std::string_view body = pattern.substr(lead, tail - lead);
  if (body.find('%') != std::string_view::npos) return out;  // interior '%'
  out.body = body;
  if (lead == 0 && tail == pattern.size()) {
    out.shape = LikeShape::kExact;
  } else if (lead == 0) {
    out.shape = LikeShape::kPrefix;
  } else if (tail == pattern.size()) {
    out.shape = LikeShape::kSuffix;
  } else {
    out.shape = LikeShape::kContains;
  }
  return out;
}

bool LikeMatchShaped(std::string_view text, const LikePattern& shaped,
                     std::string_view pattern) {
  switch (shaped.shape) {
    case LikeShape::kMatchAll:
      return true;
    case LikeShape::kExact:
      return text == shaped.body;
    case LikeShape::kPrefix:
      return text.size() >= shaped.body.size() &&
             text.substr(0, shaped.body.size()) == shaped.body;
    case LikeShape::kSuffix:
      return text.size() >= shaped.body.size() &&
             text.substr(text.size() - shaped.body.size()) == shaped.body;
    case LikeShape::kContains:
      return text.find(shaped.body) != std::string_view::npos;
    case LikeShape::kGeneric:
      break;
  }
  return LikeMatch(text, pattern);
}

}  // namespace bypass
