#include "common/string_util.h"

#include <cctype>

namespace bypass {

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool LikeMatch(std::string_view text, std::string_view pattern) {
  // Iterative wildcard matching with backtracking over the last '%'.
  size_t t = 0, p = 0;
  size_t star_p = std::string_view::npos;
  size_t star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' || pattern[p] == text[t])) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string_view::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

}  // namespace bypass
