#include "common/rng.h"

#include <cmath>

#include "common/check.h"

namespace bypass {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  BYPASS_CHECK(lo <= hi);
  const uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) {  // full 64-bit range
    return static_cast<int64_t>(Next());
  }
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  uint64_t v;
  do {
    v = Next();
  } while (v >= limit);
  return lo + static_cast<int64_t>(v % range);
}

double Rng::UniformDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + UniformDouble() * (hi - lo);
}

bool Rng::Bernoulli(double p) { return UniformDouble() < p; }

std::string Rng::AlphaString(int length) {
  std::string s;
  s.reserve(static_cast<size_t>(length));
  for (int i = 0; i < length; ++i) {
    s.push_back(static_cast<char>('a' + UniformInt(0, 25)));
  }
  return s;
}

int Rng::WeightedIndex(const double* weights, int weights_size) {
  BYPASS_CHECK(weights_size > 0);
  double total = 0;
  for (int i = 0; i < weights_size; ++i) total += weights[i];
  double pick = UniformDouble() * total;
  for (int i = 0; i < weights_size; ++i) {
    pick -= weights[i];
    if (pick <= 0) return i;
  }
  return weights_size - 1;
}

}  // namespace bypass
