// Status: lightweight error propagation without exceptions, in the spirit of
// absl::Status / arrow::Status.
#ifndef BYPASSDB_COMMON_STATUS_H_
#define BYPASSDB_COMMON_STATUS_H_

#include <memory>
#include <ostream>
#include <string>
#include <utility>

namespace bypass {

/// Error categories used across the engine.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< caller passed something malformed
  kNotFound,          ///< catalog object / column missing
  kAlreadyExists,     ///< duplicate catalog object
  kParseError,        ///< SQL lexer/parser failure
  kBindError,         ///< name resolution / semantic analysis failure
  kUnsupported,       ///< valid SQL outside the implemented subset
  kExecutionError,    ///< runtime failure (type error, division by zero, ...)
  kTimeout,           ///< query exceeded its time budget
  kResourceExhausted, ///< memory budget / admission queue / slot exhausted
  kInternal,          ///< invariant violation; indicates a bug
};

/// Human-readable name of a status code (e.g. "ParseError").
const char* StatusCodeToString(StatusCode code);

/// A success-or-error value. Cheap to pass around: the OK state carries no
/// allocation; error states hold a code and message on the heap.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message) {
    if (code != StatusCode::kOk) {
      rep_ = std::make_shared<Rep>(Rep{code, std::move(message)});
    }
  }

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status BindError(std::string msg) {
    return Status(StatusCode::kBindError, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status ExecutionError(std::string msg) {
    return Status(StatusCode::kExecutionError, std::move(msg));
  }
  static Status Timeout(std::string msg) {
    return Status(StatusCode::kTimeout, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }
  const std::string& message() const {
    static const std::string kEmpty;
    return rep_ ? rep_->message : kEmpty;
  }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };
  std::shared_ptr<const Rep> rep_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace bypass

/// Propagates a non-OK Status to the caller.
#define BYPASS_RETURN_IF_ERROR(expr)                 \
  do {                                               \
    ::bypass::Status _st = (expr);                   \
    if (!_st.ok()) return _st;                       \
  } while (0)

#define BYPASS_CONCAT_IMPL(a, b) a##b
#define BYPASS_CONCAT(a, b) BYPASS_CONCAT_IMPL(a, b)

/// Evaluates a Result<T> expression; on error returns the Status, otherwise
/// assigns the value to `lhs` (which may be a declaration).
#define BYPASS_ASSIGN_OR_RETURN(lhs, rexpr)                            \
  BYPASS_ASSIGN_OR_RETURN_IMPL(BYPASS_CONCAT(_result_, __LINE__), lhs, \
                               rexpr)

#define BYPASS_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                 \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).ValueUnsafe();

#endif  // BYPASSDB_COMMON_STATUS_H_
