// Small string helpers shared across modules.
#ifndef BYPASSDB_COMMON_STRING_UTIL_H_
#define BYPASSDB_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace bypass {

/// ASCII lower-casing (SQL identifiers and keywords are case-insensitive).
std::string ToLower(std::string_view s);

/// ASCII upper-casing.
std::string ToUpper(std::string_view s);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// SQL LIKE pattern match: '%' matches any sequence, '_' any single
/// character. No escape character support (the paper's queries do not
/// need one).
bool LikeMatch(std::string_view text, std::string_view pattern);

}  // namespace bypass

#endif  // BYPASSDB_COMMON_STRING_UTIL_H_
