// Small string helpers shared across modules.
#ifndef BYPASSDB_COMMON_STRING_UTIL_H_
#define BYPASSDB_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace bypass {

/// ASCII lower-casing (SQL identifiers and keywords are case-insensitive).
std::string ToLower(std::string_view s);

/// ASCII upper-casing.
std::string ToUpper(std::string_view s);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// SQL LIKE pattern match: '%' matches any sequence, '_' any single
/// character. No escape character support (the paper's queries do not
/// need one).
bool LikeMatch(std::string_view text, std::string_view pattern);

/// Structural shape of a LIKE pattern, recognized once per batch so the
/// columnar string kernel (and the zone-map LIKE test) can replace the
/// general backtracking matcher with a substring primitive.
enum class LikeShape {
  kGeneric,   ///< needs the full matcher ('_' or interior '%')
  kMatchAll,  ///< pattern is one or more '%' — matches everything
  kExact,     ///< no wildcards: string equality with `body`
  kPrefix,    ///< 'body%'   — starts_with(body)
  kSuffix,    ///< '%body'   — ends_with(body)
  kContains,  ///< '%body%'  — find(body) != npos
};

/// The analyzed form: `body` views into the pattern passed to
/// AnalyzeLikePattern, so the pattern must outlive the analysis.
struct LikePattern {
  LikeShape shape = LikeShape::kGeneric;
  std::string_view body;
};

/// Classifies `pattern`. Any '_' (the matcher's hard case) or any '%'
/// that is neither a leading nor a trailing run yields kGeneric.
LikePattern AnalyzeLikePattern(std::string_view pattern);

/// Matches `text` against an analyzed pattern; `pattern` is the original
/// pattern string for the kGeneric fallback.
bool LikeMatchShaped(std::string_view text, const LikePattern& shaped,
                     std::string_view pattern);

}  // namespace bypass

#endif  // BYPASSDB_COMMON_STRING_UTIL_H_
