// Flat open-addressing hash containers shared by every hash operator in
// the engine (joins, grouping, DISTINCT, subplan memo caches). Replaces
// the node-based std::unordered_map<Row, ...> tables whose per-entry
// allocations and pointer-chasing dominated the probe-side profiles
// (BENCH_PR1: unnested q2d at 1.17× vs seed while scalar operators hit
// ~2×).
//
// Layout (DESIGN.md §7): a contiguous power-of-two slot array of
// {cached 64-bit hash, dense entry index} pairs probed linearly, plus
// dense side arrays holding the owned keys/values in insertion order.
// Rehashing redistributes the slot array from the cached hashes alone —
// keys are never re-hashed or moved — and nothing here supports erase, so
// there are no tombstones (operators only ever clear whole tables).
//
// Fixed-width fast path: a table whose keys are single-column int64 (the
// dominant shape — every RST/TPC-H join and group key) stores the raw
// int64 beside each entry and hashes it with a splitmix64 finalizer,
// skipping Value-vector hashing entirely. The mode is chosen from the
// first inserted key and transparently downgraded (one rebuild) if a key
// of another shape ever arrives. Because int64 and double Values compare
// structurally equal when numerically equal (1 == 1.0), probes convert
// exactly-representable doubles to int64 before hashing; probes that
// cannot equal any int64 key (strings, bools, fractional doubles) miss
// without touching the table.
#ifndef BYPASSDB_COMMON_FLAT_TABLE_H_
#define BYPASSDB_COMMON_FLAT_TABLE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "types/row.h"

namespace bypass {

namespace flat_internal {

/// splitmix64 finalizer: full-avalanche mix of a raw int64 key.
inline uint64_t HashInt64Key(int64_t key) {
  uint64_t h = static_cast<uint64_t>(key);
  h += 0x9e3779b97f4a7c15ULL;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  return h ^ (h >> 31);
}

/// Hash reserved for NULL keys in int64 mode (NULL == NULL structurally).
inline constexpr uint64_t kNullKeyHash = 0x7b4a5c8d9e2f1a6bULL;

/// Converts `v` to its int64 key representation when it can structurally
/// equal an int64 (int64 itself, or a double exactly representable as
/// int64). Returns false for values that can never equal an int64 key;
/// `*is_null` is set for NULL (which participates in structural keys).
inline bool Int64KeyOf(const Value& v, int64_t* key, bool* is_null) {
  *is_null = false;
  if (v.is_int64()) {
    *key = v.int64_value();
    return true;
  }
  if (v.is_null()) {
    *is_null = true;
    *key = 0;
    return true;
  }
  if (v.is_double()) {
    const double d = v.double_value();
    // Guard the cast: int64 range is [-2^63, 2^63); 2^63 itself is not
    // representable, so compare against the exact double bounds.
    if (d >= -9223372036854775808.0 && d < 9223372036854775808.0) {
      const int64_t i = static_cast<int64_t>(d);
      if (static_cast<double>(i) == d) {
        *key = i;
        return true;
      }
    }
  }
  return false;
}

/// Smallest power of two >= max(16, needed).
inline size_t NextPow2Capacity(size_t needed) {
  size_t cap = 16;
  while (cap < needed) cap <<= 1;
  return cap;
}

}  // namespace flat_internal

/// Flat hash map from owned Row keys (structural semantics, NULL == NULL)
/// to values. Find-or-insert probes accept a transparent RowSlotsRef so
/// the key row is only materialized for genuinely new entries, matching
/// the RowKeyHash/RowKeyEq contract of the previous unordered_map tables.
/// Iteration (entries()) is dense and in insertion order, which makes
/// downstream emission deterministic. Not thread-safe.
template <typename V>
class FlatRowMap {
 public:
  struct Entry {
    Row key;
    V value;
  };

  FlatRowMap() = default;
  FlatRowMap(FlatRowMap&&) noexcept = default;
  FlatRowMap& operator=(FlatRowMap&&) noexcept = default;
  FlatRowMap(const FlatRowMap&) = delete;
  FlatRowMap& operator=(const FlatRowMap&) = delete;

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  void Clear() {
    entries_.clear();
    hashes_.clear();
    i64_.clear();
    slots_.clear();
    mask_ = 0;
    mode_ = Mode::kUnset;
  }

  /// Pre-sizes the slot array for `n` entries (one rehash at most).
  void Reserve(size_t n) {
    entries_.reserve(n);
    hashes_.reserve(n);
    const size_t cap = flat_internal::NextPow2Capacity(n + n / 2 + 1);
    if (cap > slots_.size()) Rebuild(cap);
  }

  /// Entries in insertion order.
  const std::vector<Entry>& entries() const { return entries_; }
  /// Mutable entries, for moving keys/values out during a merge; callers
  /// must Clear() the map afterwards (the index still references them).
  std::vector<Entry>& mutable_entries() { return entries_; }

  V* Find(const Row& key) { return FindImpl(key); }
  const V* Find(const Row& key) const {
    return const_cast<FlatRowMap*>(this)->FindImpl(key);
  }
  V* Find(const RowSlotsRef& ref) { return FindImpl(ref); }
  const V* Find(const RowSlotsRef& ref) const {
    return const_cast<FlatRowMap*>(this)->FindImpl(ref);
  }

  /// Returns the value for the key addressed by `ref`, inserting
  /// `make()` under the materialized (projected) key when absent.
  template <typename Make>
  V& FindOrEmplace(const RowSlotsRef& ref, Make&& make) {
    return FindOrEmplaceImpl(
        ref, [&] { return ProjectRow(*ref.row, *ref.slots); },
        std::forward<Make>(make));
  }

  /// Find-or-insert with an owned key (moved in only when absent).
  template <typename Make>
  V& FindOrEmplace(Row&& key, Make&& make) {
    return FindOrEmplaceImpl(
        key, [&] { return std::move(key); }, std::forward<Make>(make));
  }

  /// Int64 fast-path find-or-insert for callers that already hold the raw
  /// key (typed-column group-by): no Value is touched on the probe, and a
  /// single-Value key row is materialized only for genuinely new entries.
  /// An empty table adopts int64 mode; a table already downgraded to
  /// generic mode routes through the Row path so hashes stay consistent.
  template <typename Make>
  V& FindOrEmplaceInt64(int64_t key, bool is_null, Make&& make) {
    if (entries_.empty() && mode_ == Mode::kUnset) mode_ = Mode::kInt64;
    if (mode_ != Mode::kInt64) {
      Row row;
      row.push_back(is_null ? Value::Null() : Value::Int64(key));
      return FindOrEmplace(std::move(row), std::forward<Make>(make));
    }
    if (slots_.empty()) Rebuild(16);
    ProbeKey p;
    p.i64 = key;
    p.null = is_null;
    p.hash = is_null ? flat_internal::kNullKeyHash
                     : flat_internal::HashInt64Key(key);
    size_t pos = p.hash & mask_;
    while (true) {
      const Slot& s = slots_[pos];
      if (s.idx == kEmpty) break;
      if (s.hash == p.hash) {
        const I64Key& e = i64_[s.idx];
        if (e.null == p.null && (p.null || e.key == p.i64)) {
          return entries_[s.idx].value;
        }
      }
      pos = (pos + 1) & mask_;
    }
    Row row;
    row.push_back(is_null ? Value::Null() : Value::Int64(key));
    return InsertEntry(p, std::move(row), make());
  }

  /// Unconditional insert of a key known to be absent (merge paths).
  void EmplaceNew(Row&& key, V&& value) {
    PrepareForInsert(key);
    ProbeKey p = ProbeFor(key);
    if (!p.compatible) {
      Downgrade();
      p = ProbeFor(key);
    }
    InsertEntry(p, std::move(key), std::move(value));
  }

 private:
  enum class Mode { kUnset, kInt64, kGeneric };

  struct Slot {
    uint64_t hash;
    uint32_t idx;
  };
  static constexpr uint32_t kEmpty = 0xffffffffu;

  /// Entry-side int64 key cache (int64 mode only).
  struct I64Key {
    int64_t key;
    bool null;
  };

  /// A fully resolved probe: hash plus the int64 view when applicable.
  struct ProbeKey {
    uint64_t hash = 0;
    int64_t i64 = 0;
    bool null = false;
    /// False when the probe's shape cannot live in the current mode
    /// (int64 mode and a multi-column / non-convertible key).
    bool compatible = true;
    /// True when, additionally, an incompatible probe could never equal
    /// any stored key (pure lookup can miss without downgrade).
    bool never_matches = false;
  };

  ProbeKey ProbeFor(const Row& key) const {
    ProbeKey p;
    if (mode_ == Mode::kInt64) {
      if (key.size() != 1 ||
          !flat_internal::Int64KeyOf(key[0], &p.i64, &p.null)) {
        p.compatible = false;
        p.never_matches = true;  // cannot equal any single int64/NULL key
        return p;
      }
      p.hash = p.null ? flat_internal::kNullKeyHash
                      : flat_internal::HashInt64Key(p.i64);
      return p;
    }
    p.hash = HashRow(key);
    return p;
  }

  ProbeKey ProbeFor(const RowSlotsRef& ref) const {
    ProbeKey p;
    if (mode_ == Mode::kInt64) {
      if (ref.slots->size() != 1 ||
          !flat_internal::Int64KeyOf(
              (*ref.row)[static_cast<size_t>((*ref.slots)[0])], &p.i64,
              &p.null)) {
        p.compatible = false;
        p.never_matches = true;
        return p;
      }
      p.hash = p.null ? flat_internal::kNullKeyHash
                      : flat_internal::HashInt64Key(p.i64);
      return p;
    }
    p.hash = HashRowSlots(*ref.row, *ref.slots);
    return p;
  }

  bool EntryEquals(uint32_t idx, const ProbeKey& p, const Row& key) const {
    if (mode_ == Mode::kInt64) {
      const I64Key& e = i64_[idx];
      return e.null == p.null && (p.null || e.key == p.i64);
    }
    return RowsStructurallyEqual(entries_[idx].key, key);
  }

  bool EntryEquals(uint32_t idx, const ProbeKey& p,
                   const RowSlotsRef& ref) const {
    if (mode_ == Mode::kInt64) {
      const I64Key& e = i64_[idx];
      return e.null == p.null && (p.null || e.key == p.i64);
    }
    return RowKeyEq{}(ref, entries_[idx].key);
  }

  template <typename K>
  V* FindImpl(const K& key) {
    if (entries_.empty()) return nullptr;
    const ProbeKey p = ProbeFor(key);
    if (p.never_matches) return nullptr;
    size_t pos = p.hash & mask_;
    while (true) {
      const Slot& s = slots_[pos];
      if (s.idx == kEmpty) return nullptr;
      if (s.hash == p.hash && EntryEquals(s.idx, p, key)) {
        return &entries_[s.idx].value;
      }
      pos = (pos + 1) & mask_;
    }
  }

  /// Lazily picks the key mode from the first key and ensures the slot
  /// array exists; called at the top of every insert path.
  template <typename K>
  void PrepareForInsert(const K& key) {
    if (entries_.empty() && mode_ == Mode::kUnset) InitModeFrom(key);
    if (slots_.empty()) Rebuild(16);
  }

  template <typename K, typename MakeKey, typename MakeValue>
  V& FindOrEmplaceImpl(const K& key, MakeKey&& make_key,
                       MakeValue&& make_value) {
    PrepareForInsert(key);
    ProbeKey p = ProbeFor(key);
    if (!p.compatible) {
      // A key of a new shape forces the generic representation; the
      // rebuild re-hashes every stored entry once.
      Downgrade();
      p = ProbeFor(key);
    }
    size_t pos = p.hash & mask_;
    while (true) {
      const Slot& s = slots_[pos];
      if (s.idx == kEmpty) break;
      if (s.hash == p.hash && EntryEquals(s.idx, p, key)) {
        return entries_[s.idx].value;
      }
      pos = (pos + 1) & mask_;
    }
    return InsertEntry(p, make_key(), make_value());
  }

  V& InsertEntry(const ProbeKey& p, Row&& key, V&& value) {
    // In int64 mode an owned key may still be incompatible when coming
    // through EmplaceNew; callers downgraded already, so p.compatible
    // holds here.
    const uint32_t idx = static_cast<uint32_t>(entries_.size());
    entries_.push_back(Entry{std::move(key), std::move(value)});
    hashes_.push_back(p.hash);
    if (mode_ == Mode::kInt64) i64_.push_back(I64Key{p.i64, p.null});
    // Grow at 7/8 load *before* placing, so placement never splits.
    if ((entries_.size() + 1) * 8 > slots_.size() * 7) {
      Rebuild(slots_.size() * 2);
    } else {
      Place(p.hash, idx);
    }
    return entries_.back().value;
  }

  void InitModeFrom(const Row& key) {
    int64_t k;
    bool is_null;
    mode_ = (key.size() == 1 &&
             flat_internal::Int64KeyOf(key[0], &k, &is_null))
                ? Mode::kInt64
                : Mode::kGeneric;
  }
  void InitModeFrom(const RowSlotsRef& ref) {
    int64_t k;
    bool is_null;
    mode_ = (ref.slots->size() == 1 &&
             flat_internal::Int64KeyOf(
                 (*ref.row)[static_cast<size_t>((*ref.slots)[0])], &k,
                 &is_null))
                ? Mode::kInt64
                : Mode::kGeneric;
  }

  void Place(uint64_t hash, uint32_t idx) {
    size_t pos = hash & mask_;
    while (slots_[pos].idx != kEmpty) pos = (pos + 1) & mask_;
    slots_[pos] = Slot{hash, idx};
  }

  /// Rebuilds the slot array at `capacity` from the cached hashes.
  void Rebuild(size_t capacity) {
    slots_.assign(capacity, Slot{0, kEmpty});
    mask_ = capacity - 1;
    for (uint32_t i = 0; i < entries_.size(); ++i) {
      Place(hashes_[i], i);
    }
  }

  /// Switches an int64-mode table to generic hashing (re-hashes every
  /// entry once); triggered by the first key of a different shape.
  void Downgrade() {
    if (mode_ != Mode::kInt64) {
      if (mode_ == Mode::kUnset) mode_ = Mode::kGeneric;
      return;
    }
    mode_ = Mode::kGeneric;
    i64_.clear();
    i64_.shrink_to_fit();
    for (size_t i = 0; i < entries_.size(); ++i) {
      hashes_[i] = HashRow(entries_[i].key);
    }
    Rebuild(slots_.empty() ? 16 : slots_.size());
  }

  std::vector<Entry> entries_;
  std::vector<uint64_t> hashes_;  // cached per-entry hash (rehash fuel)
  std::vector<I64Key> i64_;       // int64 mode only, aligned with entries_
  std::vector<Slot> slots_;
  size_t mask_ = 0;
  Mode mode_ = Mode::kUnset;
};

/// Flat hash set of Rows (structural semantics). Insert copies the row
/// only when it is new — the Distinct operator's streaming dedup — and
/// the stored rows iterate in first-occurrence order.
class FlatRowSet {
 public:
  size_t size() const { return map_.size(); }
  bool empty() const { return map_.empty(); }
  void Clear() { map_.Clear(); }
  void Reserve(size_t n) { map_.Reserve(n); }

  /// True when `row` was not present (and is now inserted).
  bool Insert(const Row& row) {
    if (map_.Find(row) != nullptr) return false;
    map_.FindOrEmplace(Row(row), [] { return Unit{}; });
    return true;
  }

  /// Move-in variant for callers that own the row.
  bool Insert(Row&& row) {
    if (map_.Find(row) != nullptr) return false;
    map_.FindOrEmplace(std::move(row), [] { return Unit{}; });
    return true;
  }

  bool Contains(const Row& row) const { return map_.Find(row) != nullptr; }

  /// Stored rows in first-occurrence order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const auto& e : map_.entries()) fn(e.key);
  }

 private:
  struct Unit {};
  FlatRowMap<Unit> map_;
};

}  // namespace bypass

#endif  // BYPASSDB_COMMON_FLAT_TABLE_H_
