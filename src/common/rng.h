// Deterministic pseudo-random number generation for data generators and
// property tests. A thin wrapper over a splitmix64/xoshiro-style generator
// so that generated datasets are reproducible across platforms and standard
// library versions (std::mt19937 distributions are not portable).
#ifndef BYPASSDB_COMMON_RNG_H_
#define BYPASSDB_COMMON_RNG_H_

#include <cstdint>
#include <string>

namespace bypass {

/// Deterministic 64-bit PRNG (xoshiro256** seeded via splitmix64).
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// True with probability p.
  bool Bernoulli(double p);

  /// Random lowercase ASCII string of exactly `length` characters.
  std::string AlphaString(int length);

  /// Picks an index in [0, weights_size) proportionally to weights[i].
  int WeightedIndex(const double* weights, int weights_size);

 private:
  uint64_t state_[4];
};

}  // namespace bypass

#endif  // BYPASSDB_COMMON_RNG_H_
