// Result<T>: a value-or-Status container, in the spirit of arrow::Result.
#ifndef BYPASSDB_COMMON_RESULT_H_
#define BYPASSDB_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace bypass {

/// Holds either a successfully produced `T` or the `Status` explaining why
/// one could not be produced. Never holds an OK status without a value.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from a non-OK status (failure).
  Result(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status");
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& ValueOrDie() const& {
    assert(ok());
    return *value_;
  }
  T& ValueOrDie() & {
    assert(ok());
    return *value_;
  }
  T&& ValueOrDie() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Unchecked accessors used by BYPASS_ASSIGN_OR_RETURN.
  T&& ValueUnsafe() && { return std::move(*value_); }
  const T& ValueUnsafe() const& { return *value_; }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace bypass

#endif  // BYPASSDB_COMMON_RESULT_H_
