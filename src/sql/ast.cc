#include "sql/ast.h"

#include "common/check.h"
#include "common/string_util.h"

namespace bypass {

namespace {

const char* ArithOpSymbol(AstArithOp op) {
  switch (op) {
    case AstArithOp::kAdd:
      return "+";
    case AstArithOp::kSub:
      return "-";
    case AstArithOp::kMul:
      return "*";
    case AstArithOp::kDiv:
      return "/";
  }
  return "?";
}

}  // namespace

std::string AstExpr::ToString() const {
  switch (kind) {
    case AstExprKind::kLiteral:
      return value.ToString();
    case AstExprKind::kColumnRef:
      return qualifier.empty() ? name : qualifier + "." + name;
    case AstExprKind::kCompare:
      return "(" + children[0]->ToString() + " " +
             CompareOpToString(compare_op) + " " +
             children[1]->ToString() + ")";
    case AstExprKind::kAnd:
    case AstExprKind::kOr: {
      std::vector<std::string> parts;
      parts.reserve(children.size());
      for (const AstExprPtr& c : children) parts.push_back(c->ToString());
      return "(" +
             Join(parts, kind == AstExprKind::kAnd ? " AND " : " OR ") +
             ")";
    }
    case AstExprKind::kNot:
      return "(NOT " + children[0]->ToString() + ")";
    case AstExprKind::kArith:
      return "(" + children[0]->ToString() + " " + ArithOpSymbol(arith_op) +
             " " + children[1]->ToString() + ")";
    case AstExprKind::kNegate:
      return "(-" + children[0]->ToString() + ")";
    case AstExprKind::kLike:
      return "(" + children[0]->ToString() +
             (negated ? " NOT LIKE '" : " LIKE '") + pattern + "')";
    case AstExprKind::kIsNull:
      return "(" + children[0]->ToString() +
             (negated ? " IS NOT NULL)" : " IS NULL)");
    case AstExprKind::kAggCall: {
      std::string arg =
          children.empty() ? "*" : children[0]->ToString();
      return ToUpper(agg_name) + "(" +
             std::string(distinct ? "DISTINCT " : "") + arg + ")";
    }
    case AstExprKind::kSubquery:
      return "(" + subquery->ToString() + ")";
    case AstExprKind::kExists:
      return std::string(negated ? "NOT " : "") + "EXISTS (" +
             subquery->ToString() + ")";
    case AstExprKind::kInSubquery:
      return children[0]->ToString() + (negated ? " NOT IN (" : " IN (") +
             subquery->ToString() + ")";
    case AstExprKind::kQuantified:
      return children[0]->ToString() + " " +
             CompareOpToString(compare_op) +
             (quantifier == AstQuantifier::kAll ? " ALL (" : " SOME (") +
             subquery->ToString() + ")";
    case AstExprKind::kInList: {
      std::vector<std::string> parts;
      for (size_t i = 1; i < children.size(); ++i) {
        parts.push_back(children[i]->ToString());
      }
      return children[0]->ToString() + (negated ? " NOT IN (" : " IN (") +
             Join(parts, ", ") + ")";
    }
  }
  BYPASS_UNREACHABLE("bad AstExprKind");
}

std::string SelectStmt::ToString() const {
  std::string out = "SELECT ";
  if (distinct) out += "DISTINCT ";
  std::vector<std::string> item_strs;
  item_strs.reserve(items.size());
  for (const SelectItem& it : items) {
    if (it.is_star) {
      item_strs.push_back("*");
    } else {
      std::string s = it.expr->ToString();
      if (!it.alias.empty()) s += " AS " + it.alias;
      item_strs.push_back(std::move(s));
    }
  }
  out += Join(item_strs, ", ");
  out += " FROM ";
  std::vector<std::string> from_strs;
  from_strs.reserve(from.size());
  for (const TableRef& t : from) {
    std::string s = t.subquery != nullptr
                        ? "(" + t.subquery->ToString() + ")"
                        : t.table;
    if (!t.alias.empty() && !EqualsIgnoreCase(t.alias, t.table)) {
      s += " " + t.alias;
    }
    from_strs.push_back(std::move(s));
  }
  out += Join(from_strs, ", ");
  if (where != nullptr) out += " WHERE " + where->ToString();
  if (!group_by.empty()) {
    std::vector<std::string> group_strs;
    group_strs.reserve(group_by.size());
    for (const AstExprPtr& g : group_by) {
      group_strs.push_back(g->ToString());
    }
    out += " GROUP BY " + Join(group_strs, ", ");
  }
  if (having != nullptr) out += " HAVING " + having->ToString();
  if (!order_by.empty()) {
    out += " ORDER BY ";
    std::vector<std::string> order_strs;
    order_strs.reserve(order_by.size());
    for (const OrderItem& o : order_by) {
      order_strs.push_back(o.expr->ToString() +
                           (o.descending ? " DESC" : ""));
    }
    out += Join(order_strs, ", ");
  }
  if (limit >= 0) out += " LIMIT " + std::to_string(limit);
  if (union_next != nullptr) {
    out += union_all ? " UNION ALL " : " UNION ";
    out += union_next->ToString();
  }
  return out;
}

}  // namespace bypass
