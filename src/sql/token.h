// SQL token model.
#ifndef BYPASSDB_SQL_TOKEN_H_
#define BYPASSDB_SQL_TOKEN_H_

#include <cstdint>
#include <string>

namespace bypass {

enum class TokenType {
  kEnd,
  kIdentifier,   ///< identifiers and keywords (case-insensitive)
  kIntLiteral,
  kDoubleLiteral,
  kStringLiteral,
  // punctuation / operators
  kLParen,
  kRParen,
  kComma,
  kDot,
  kStar,
  kPlus,
  kMinus,
  kSlash,
  kEq,     // =
  kNe,     // <> or !=
  kLt,
  kLe,
  kGt,
  kGe,
  kSemicolon,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;      ///< identifier/keyword text (original case)
  int64_t int_value = 0;
  double double_value = 0;
  int position = 0;      ///< byte offset in the input, for error messages
};

const char* TokenTypeToString(TokenType type);

}  // namespace bypass

#endif  // BYPASSDB_SQL_TOKEN_H_
