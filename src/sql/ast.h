// SQL abstract syntax tree. Deliberately compact: one tagged node type for
// expressions. The binder/translator (src/frontend) turns the AST into
// logical algebra.
#ifndef BYPASSDB_SQL_AST_H_
#define BYPASSDB_SQL_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "types/value.h"

namespace bypass {

struct AstExpr;
struct SelectStmt;
using AstExprPtr = std::shared_ptr<AstExpr>;
using SelectStmtPtr = std::shared_ptr<SelectStmt>;

enum class AstExprKind {
  kLiteral,     ///< value
  kColumnRef,   ///< qualifier.name (qualifier may be empty)
  kCompare,     ///< children[0] op children[1]
  kAnd,         ///< children...
  kOr,          ///< children...
  kNot,         ///< children[0]
  kArith,       ///< children[0] arith_op children[1]
  kNegate,      ///< -children[0]
  kLike,        ///< children[0] [NOT] LIKE pattern
  kIsNull,      ///< children[0] IS [NOT] NULL
  kAggCall,     ///< agg_name([DISTINCT] children[0]? | *)
  kSubquery,    ///< scalar subquery (SELECT ...)
  kExists,      ///< [NOT] EXISTS (SELECT ...)
  kInSubquery,  ///< children[0] [NOT] IN (SELECT ...)
  kInList,      ///< children[0] [NOT] IN (children[1..])
  kQuantified,  ///< children[0] op SOME/ANY/ALL (SELECT ...)
};

/// Quantifier of a quantified comparison (paper outlook item 3).
enum class AstQuantifier { kSome, kAll };

/// Arithmetic operator shared with the expression IR (+ - * /).
enum class AstArithOp { kAdd, kSub, kMul, kDiv };

struct AstExpr {
  AstExprKind kind;
  // kLiteral
  Value value;
  // kColumnRef
  std::string qualifier;
  std::string name;
  // kCompare
  CompareOp compare_op = CompareOp::kEq;
  // kArith
  AstArithOp arith_op = AstArithOp::kAdd;
  // kLike
  std::string pattern;
  // kLike / kIsNull / kExists / kInSubquery / kInList
  bool negated = false;
  // kAggCall: one of count/sum/avg/min/max; `distinct` for DISTINCT;
  // children empty means '*'
  std::string agg_name;
  bool distinct = false;
  // kQuantified
  AstQuantifier quantifier = AstQuantifier::kSome;
  // kSubquery / kExists / kInSubquery
  SelectStmtPtr subquery;

  std::vector<AstExprPtr> children;

  /// SQL-ish rendering (tests and error messages).
  std::string ToString() const;
};

struct SelectItem {
  bool is_star = false;   ///< SELECT *
  AstExprPtr expr;        ///< null when is_star
  std::string alias;      ///< optional AS alias
};

struct TableRef {
  std::string table;          ///< empty for derived tables
  std::string alias;          ///< defaults to the table name
  SelectStmtPtr subquery;     ///< derived table: FROM (SELECT ...) alias
};

struct OrderItem {
  AstExprPtr expr;
  bool descending = false;
};

/// A (possibly nested) select-from-where block.
struct SelectStmt {
  bool distinct = false;
  std::vector<SelectItem> items;
  std::vector<TableRef> from;
  AstExprPtr where;   ///< may be null
  std::vector<AstExprPtr> group_by;
  AstExprPtr having;  ///< may be null (requires group_by)
  std::vector<OrderItem> order_by;
  int64_t limit = -1;  ///< -1: no LIMIT

  /// Set operation: this block UNION [ALL] `union_next`. Chained blocks
  /// must have select lists of equal arity; `union_all` distinguishes
  /// UNION ALL (bag) from UNION (duplicate-eliminating).
  SelectStmtPtr union_next;
  bool union_all = false;

  std::string ToString() const;
};

}  // namespace bypass

#endif  // BYPASSDB_SQL_AST_H_
