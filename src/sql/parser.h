// Recursive-descent SQL parser for the subset the paper's workload needs:
// SELECT [DISTINCT] list FROM tables WHERE <boolean expr with nested
// (scalar/EXISTS/IN) subqueries, aggregates, LIKE, arithmetic> ORDER BY.
#ifndef BYPASSDB_SQL_PARSER_H_
#define BYPASSDB_SQL_PARSER_H_

#include <string>

#include "common/result.h"
#include "sql/ast.h"

namespace bypass {

/// Parses one SELECT statement (optionally ';'-terminated).
Result<SelectStmtPtr> ParseSelect(const std::string& sql);

}  // namespace bypass

#endif  // BYPASSDB_SQL_PARSER_H_
