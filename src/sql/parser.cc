#include "sql/parser.h"

#include "common/string_util.h"
#include "sql/lexer.h"

namespace bypass {

namespace {

/// Token-stream cursor with keyword helpers.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<SelectStmtPtr> ParseStatement();

 private:
  const Token& Peek(int ahead = 0) const {
    const size_t i = pos_ + static_cast<size_t>(ahead);
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_++]; }
  bool Check(TokenType type) const { return Peek().type == type; }
  bool Match(TokenType type) {
    if (!Check(type)) return false;
    ++pos_;
    return true;
  }
  bool CheckKeyword(const char* kw) const {
    return Peek().type == TokenType::kIdentifier &&
           EqualsIgnoreCase(Peek().text, kw);
  }
  bool MatchKeyword(const char* kw) {
    if (!CheckKeyword(kw)) return false;
    ++pos_;
    return true;
  }
  Status Expect(TokenType type, const char* what) {
    if (Match(type)) return Status::OK();
    return Status::ParseError(std::string("expected ") + what +
                              " but found '" + DescribeCurrent() +
                              "' at offset " +
                              std::to_string(Peek().position));
  }
  Status ExpectKeyword(const char* kw) {
    if (MatchKeyword(kw)) return Status::OK();
    return Status::ParseError(std::string("expected keyword ") + kw +
                              " but found '" + DescribeCurrent() +
                              "' at offset " +
                              std::to_string(Peek().position));
  }
  std::string DescribeCurrent() const {
    const Token& t = Peek();
    if (t.type == TokenType::kIdentifier) return t.text;
    return TokenTypeToString(t.type);
  }

  Result<SelectStmtPtr> ParseSelectBody();
  Result<AstExprPtr> ParseExpr();
  Result<AstExprPtr> ParseOr();
  Result<AstExprPtr> ParseAnd();
  Result<AstExprPtr> ParseNot();
  Result<AstExprPtr> ParsePredicate();
  Result<AstExprPtr> ParseAdditive();
  Result<AstExprPtr> ParseMultiplicative();
  Result<AstExprPtr> ParseUnary();
  Result<AstExprPtr> ParsePrimary();

  static bool IsAggName(const std::string& s) {
    return EqualsIgnoreCase(s, "count") || EqualsIgnoreCase(s, "sum") ||
           EqualsIgnoreCase(s, "avg") || EqualsIgnoreCase(s, "min") ||
           EqualsIgnoreCase(s, "max");
  }

  /// Keywords that terminate expressions / cannot start identifiers in our
  /// grammar positions.
  static bool IsReserved(const std::string& s) {
    static const char* kReserved[] = {
        "select", "from", "where",  "order",    "by",  "and", "or",
        "not",    "like", "is",     "null",     "in",  "exists",
        "asc",    "desc", "distinct", "as", "true", "false", "between",
        "some",   "any",  "all",      "group", "having", "limit",
        "union"};
    for (const char* kw : kReserved) {
      if (EqualsIgnoreCase(s, kw)) return true;
    }
    return false;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

Result<SelectStmtPtr> Parser::ParseStatement() {
  BYPASS_ASSIGN_OR_RETURN(SelectStmtPtr stmt, ParseSelectBody());
  SelectStmt* tail = stmt.get();
  while (MatchKeyword("union")) {
    const bool all = MatchKeyword("all");
    BYPASS_ASSIGN_OR_RETURN(SelectStmtPtr next, ParseSelectBody());
    tail->union_all = all;
    tail->union_next = std::move(next);
    tail = tail->union_next.get();
  }
  Match(TokenType::kSemicolon);
  if (!Check(TokenType::kEnd)) {
    return Status::ParseError("unexpected trailing input: '" +
                              DescribeCurrent() + "' at offset " +
                              std::to_string(Peek().position));
  }
  return stmt;
}

Result<SelectStmtPtr> Parser::ParseSelectBody() {
  BYPASS_RETURN_IF_ERROR(ExpectKeyword("select"));
  auto stmt = std::make_shared<SelectStmt>();
  stmt->distinct = MatchKeyword("distinct");

  // Select list.
  do {
    SelectItem item;
    if (Match(TokenType::kStar)) {
      item.is_star = true;
    } else {
      BYPASS_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      if (MatchKeyword("as")) {
        if (!Check(TokenType::kIdentifier)) {
          return Status::ParseError("expected alias after AS");
        }
        item.alias = ToLower(Advance().text);
      } else if (Check(TokenType::kIdentifier) &&
                 !IsReserved(Peek().text)) {
        item.alias = ToLower(Advance().text);
      }
    }
    stmt->items.push_back(std::move(item));
  } while (Match(TokenType::kComma));

  // FROM.
  BYPASS_RETURN_IF_ERROR(ExpectKeyword("from"));
  do {
    TableRef ref;
    if (Check(TokenType::kLParen)) {
      // Derived table: (SELECT ...) alias.
      Advance();
      BYPASS_ASSIGN_OR_RETURN(ref.subquery, ParseSelectBody());
      BYPASS_RETURN_IF_ERROR(Expect(TokenType::kRParen, ")"));
    } else if (!Check(TokenType::kIdentifier) ||
               IsReserved(Peek().text)) {
      return Status::ParseError("expected table name in FROM");
    } else {
      ref.table = ToLower(Advance().text);
      ref.alias = ref.table;
    }
    if (MatchKeyword("as")) {
      if (!Check(TokenType::kIdentifier)) {
        return Status::ParseError("expected alias after AS");
      }
      ref.alias = ToLower(Advance().text);
    } else if (Check(TokenType::kIdentifier) && !IsReserved(Peek().text)) {
      ref.alias = ToLower(Advance().text);
    }
    if (ref.subquery != nullptr && ref.alias.empty()) {
      return Status::ParseError("derived table requires an alias");
    }
    stmt->from.push_back(std::move(ref));
  } while (Match(TokenType::kComma));

  // WHERE.
  if (MatchKeyword("where")) {
    BYPASS_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
  }

  // GROUP BY / HAVING.
  if (MatchKeyword("group")) {
    BYPASS_RETURN_IF_ERROR(ExpectKeyword("by"));
    do {
      AstExprPtr key;
      BYPASS_ASSIGN_OR_RETURN(key, ParseExpr());
      stmt->group_by.push_back(std::move(key));
    } while (Match(TokenType::kComma));
    if (MatchKeyword("having")) {
      BYPASS_ASSIGN_OR_RETURN(stmt->having, ParseExpr());
    }
  }

  // ORDER BY.
  if (MatchKeyword("order")) {
    BYPASS_RETURN_IF_ERROR(ExpectKeyword("by"));
    do {
      OrderItem item;
      BYPASS_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      if (MatchKeyword("desc")) {
        item.descending = true;
      } else {
        MatchKeyword("asc");
      }
      stmt->order_by.push_back(std::move(item));
    } while (Match(TokenType::kComma));
  }

  // LIMIT.
  if (MatchKeyword("limit")) {
    if (!Check(TokenType::kIntLiteral)) {
      return Status::ParseError("expected integer after LIMIT");
    }
    stmt->limit = Advance().int_value;
    if (stmt->limit < 0) {
      return Status::ParseError("LIMIT must be non-negative");
    }
  }
  return stmt;
}

Result<AstExprPtr> Parser::ParseExpr() { return ParseOr(); }

Result<AstExprPtr> Parser::ParseOr() {
  BYPASS_ASSIGN_OR_RETURN(AstExprPtr left, ParseAnd());
  if (!CheckKeyword("or")) return left;
  auto node = std::make_shared<AstExpr>();
  node->kind = AstExprKind::kOr;
  node->children.push_back(std::move(left));
  while (MatchKeyword("or")) {
    BYPASS_ASSIGN_OR_RETURN(AstExprPtr rhs, ParseAnd());
    node->children.push_back(std::move(rhs));
  }
  return AstExprPtr(node);
}

Result<AstExprPtr> Parser::ParseAnd() {
  BYPASS_ASSIGN_OR_RETURN(AstExprPtr left, ParseNot());
  if (!CheckKeyword("and")) return left;
  auto node = std::make_shared<AstExpr>();
  node->kind = AstExprKind::kAnd;
  node->children.push_back(std::move(left));
  while (MatchKeyword("and")) {
    BYPASS_ASSIGN_OR_RETURN(AstExprPtr rhs, ParseNot());
    node->children.push_back(std::move(rhs));
  }
  return AstExprPtr(node);
}

Result<AstExprPtr> Parser::ParseNot() {
  if (MatchKeyword("not")) {
    BYPASS_ASSIGN_OR_RETURN(AstExprPtr inner, ParseNot());
    auto node = std::make_shared<AstExpr>();
    node->kind = AstExprKind::kNot;
    node->children.push_back(std::move(inner));
    return AstExprPtr(node);
  }
  return ParsePredicate();
}

Result<AstExprPtr> Parser::ParsePredicate() {
  if (CheckKeyword("exists")) {
    Advance();
    BYPASS_RETURN_IF_ERROR(Expect(TokenType::kLParen, "("));
    auto node = std::make_shared<AstExpr>();
    node->kind = AstExprKind::kExists;
    BYPASS_ASSIGN_OR_RETURN(node->subquery, ParseSelectBody());
    BYPASS_RETURN_IF_ERROR(Expect(TokenType::kRParen, ")"));
    return AstExprPtr(node);
  }

  BYPASS_ASSIGN_OR_RETURN(AstExprPtr left, ParseAdditive());

  // Comparison operators.
  CompareOp op;
  bool have_op = true;
  switch (Peek().type) {
    case TokenType::kEq:
      op = CompareOp::kEq;
      break;
    case TokenType::kNe:
      op = CompareOp::kNe;
      break;
    case TokenType::kLt:
      op = CompareOp::kLt;
      break;
    case TokenType::kLe:
      op = CompareOp::kLe;
      break;
    case TokenType::kGt:
      op = CompareOp::kGt;
      break;
    case TokenType::kGe:
      op = CompareOp::kGe;
      break;
    default:
      have_op = false;
      break;
  }
  if (have_op) {
    Advance();
    // Quantified comparison: op SOME/ANY/ALL (SELECT ...).
    if ((CheckKeyword("some") || CheckKeyword("any") ||
         CheckKeyword("all")) &&
        Peek(1).type == TokenType::kLParen) {
      const bool all = CheckKeyword("all");
      Advance();  // quantifier
      Advance();  // (
      auto node = std::make_shared<AstExpr>();
      node->kind = AstExprKind::kQuantified;
      node->compare_op = op;
      node->quantifier =
          all ? AstQuantifier::kAll : AstQuantifier::kSome;
      node->children.push_back(std::move(left));
      BYPASS_ASSIGN_OR_RETURN(node->subquery, ParseSelectBody());
      BYPASS_RETURN_IF_ERROR(Expect(TokenType::kRParen, ")"));
      return AstExprPtr(node);
    }
    BYPASS_ASSIGN_OR_RETURN(AstExprPtr right, ParseAdditive());
    auto node = std::make_shared<AstExpr>();
    node->kind = AstExprKind::kCompare;
    node->compare_op = op;
    node->children.push_back(std::move(left));
    node->children.push_back(std::move(right));
    return AstExprPtr(node);
  }

  // IS [NOT] NULL.
  if (MatchKeyword("is")) {
    const bool negated = MatchKeyword("not");
    BYPASS_RETURN_IF_ERROR(ExpectKeyword("null"));
    auto node = std::make_shared<AstExpr>();
    node->kind = AstExprKind::kIsNull;
    node->negated = negated;
    node->children.push_back(std::move(left));
    return AstExprPtr(node);
  }

  // [NOT] LIKE / [NOT] IN / [NOT] BETWEEN.
  bool negated = false;
  if (CheckKeyword("not") &&
      (EqualsIgnoreCase(Peek(1).text, "like") ||
       EqualsIgnoreCase(Peek(1).text, "in") ||
       EqualsIgnoreCase(Peek(1).text, "between"))) {
    Advance();
    negated = true;
  }
  if (MatchKeyword("between")) {
    // a BETWEEN x AND y desugars to (a >= x AND a <= y).
    BYPASS_ASSIGN_OR_RETURN(AstExprPtr lo, ParseAdditive());
    BYPASS_RETURN_IF_ERROR(ExpectKeyword("and"));
    BYPASS_ASSIGN_OR_RETURN(AstExprPtr hi, ParseAdditive());
    auto ge = std::make_shared<AstExpr>();
    ge->kind = AstExprKind::kCompare;
    ge->compare_op = CompareOp::kGe;
    ge->children.push_back(left);
    ge->children.push_back(std::move(lo));
    auto le = std::make_shared<AstExpr>();
    le->kind = AstExprKind::kCompare;
    le->compare_op = CompareOp::kLe;
    le->children.push_back(left);
    le->children.push_back(std::move(hi));
    auto conj = std::make_shared<AstExpr>();
    conj->kind = AstExprKind::kAnd;
    conj->children.push_back(std::move(ge));
    conj->children.push_back(std::move(le));
    if (!negated) return AstExprPtr(conj);
    auto neg = std::make_shared<AstExpr>();
    neg->kind = AstExprKind::kNot;
    neg->children.push_back(std::move(conj));
    return AstExprPtr(neg);
  }
  if (MatchKeyword("like")) {
    if (!Check(TokenType::kStringLiteral)) {
      return Status::ParseError("expected string pattern after LIKE");
    }
    auto node = std::make_shared<AstExpr>();
    node->kind = AstExprKind::kLike;
    node->negated = negated;
    node->pattern = Advance().text;
    node->children.push_back(std::move(left));
    return AstExprPtr(node);
  }
  if (MatchKeyword("in")) {
    BYPASS_RETURN_IF_ERROR(Expect(TokenType::kLParen, "("));
    auto node = std::make_shared<AstExpr>();
    node->negated = negated;
    node->children.push_back(std::move(left));
    if (CheckKeyword("select")) {
      node->kind = AstExprKind::kInSubquery;
      BYPASS_ASSIGN_OR_RETURN(node->subquery, ParseSelectBody());
    } else {
      node->kind = AstExprKind::kInList;
      do {
        BYPASS_ASSIGN_OR_RETURN(AstExprPtr item, ParseExpr());
        node->children.push_back(std::move(item));
      } while (Match(TokenType::kComma));
    }
    BYPASS_RETURN_IF_ERROR(Expect(TokenType::kRParen, ")"));
    return AstExprPtr(node);
  }
  if (negated) {
    return Status::ParseError("expected LIKE or IN after NOT");
  }
  return left;
}

Result<AstExprPtr> Parser::ParseAdditive() {
  BYPASS_ASSIGN_OR_RETURN(AstExprPtr left, ParseMultiplicative());
  while (Check(TokenType::kPlus) || Check(TokenType::kMinus)) {
    const AstArithOp op = Check(TokenType::kPlus) ? AstArithOp::kAdd
                                                  : AstArithOp::kSub;
    Advance();
    BYPASS_ASSIGN_OR_RETURN(AstExprPtr right, ParseMultiplicative());
    auto node = std::make_shared<AstExpr>();
    node->kind = AstExprKind::kArith;
    node->arith_op = op;
    node->children.push_back(std::move(left));
    node->children.push_back(std::move(right));
    left = std::move(node);
  }
  return left;
}

Result<AstExprPtr> Parser::ParseMultiplicative() {
  BYPASS_ASSIGN_OR_RETURN(AstExprPtr left, ParseUnary());
  while (Check(TokenType::kStar) || Check(TokenType::kSlash)) {
    const AstArithOp op = Check(TokenType::kStar) ? AstArithOp::kMul
                                                  : AstArithOp::kDiv;
    Advance();
    BYPASS_ASSIGN_OR_RETURN(AstExprPtr right, ParseUnary());
    auto node = std::make_shared<AstExpr>();
    node->kind = AstExprKind::kArith;
    node->arith_op = op;
    node->children.push_back(std::move(left));
    node->children.push_back(std::move(right));
    left = std::move(node);
  }
  return left;
}

Result<AstExprPtr> Parser::ParseUnary() {
  if (Match(TokenType::kMinus)) {
    BYPASS_ASSIGN_OR_RETURN(AstExprPtr inner, ParseUnary());
    // Fold literal negation immediately.
    if (inner->kind == AstExprKind::kLiteral) {
      if (inner->value.is_int64()) {
        inner->value = Value::Int64(-inner->value.int64_value());
        return inner;
      }
      if (inner->value.is_double()) {
        inner->value = Value::Double(-inner->value.double_value());
        return inner;
      }
    }
    auto node = std::make_shared<AstExpr>();
    node->kind = AstExprKind::kNegate;
    node->children.push_back(std::move(inner));
    return AstExprPtr(node);
  }
  return ParsePrimary();
}

Result<AstExprPtr> Parser::ParsePrimary() {
  const Token& t = Peek();
  switch (t.type) {
    case TokenType::kIntLiteral: {
      Advance();
      auto node = std::make_shared<AstExpr>();
      node->kind = AstExprKind::kLiteral;
      node->value = Value::Int64(t.int_value);
      return AstExprPtr(node);
    }
    case TokenType::kDoubleLiteral: {
      Advance();
      auto node = std::make_shared<AstExpr>();
      node->kind = AstExprKind::kLiteral;
      node->value = Value::Double(t.double_value);
      return AstExprPtr(node);
    }
    case TokenType::kStringLiteral: {
      Advance();
      auto node = std::make_shared<AstExpr>();
      node->kind = AstExprKind::kLiteral;
      node->value = Value::String(t.text);
      return AstExprPtr(node);
    }
    case TokenType::kLParen: {
      Advance();
      if (CheckKeyword("select")) {
        auto node = std::make_shared<AstExpr>();
        node->kind = AstExprKind::kSubquery;
        BYPASS_ASSIGN_OR_RETURN(node->subquery, ParseSelectBody());
        BYPASS_RETURN_IF_ERROR(Expect(TokenType::kRParen, ")"));
        return AstExprPtr(node);
      }
      BYPASS_ASSIGN_OR_RETURN(AstExprPtr inner, ParseExpr());
      BYPASS_RETURN_IF_ERROR(Expect(TokenType::kRParen, ")"));
      return inner;
    }
    case TokenType::kIdentifier: {
      if (EqualsIgnoreCase(t.text, "true") ||
          EqualsIgnoreCase(t.text, "false")) {
        Advance();
        auto node = std::make_shared<AstExpr>();
        node->kind = AstExprKind::kLiteral;
        node->value = Value::Bool(EqualsIgnoreCase(t.text, "true"));
        return AstExprPtr(node);
      }
      if (EqualsIgnoreCase(t.text, "null")) {
        Advance();
        auto node = std::make_shared<AstExpr>();
        node->kind = AstExprKind::kLiteral;
        node->value = Value::Null();
        return AstExprPtr(node);
      }
      if (IsAggName(t.text) && Peek(1).type == TokenType::kLParen) {
        auto node = std::make_shared<AstExpr>();
        node->kind = AstExprKind::kAggCall;
        node->agg_name = ToLower(t.text);
        Advance();  // name
        Advance();  // (
        node->distinct = MatchKeyword("distinct");
        if (Match(TokenType::kStar)) {
          // '*': children stay empty.
        } else {
          BYPASS_ASSIGN_OR_RETURN(AstExprPtr arg, ParseExpr());
          node->children.push_back(std::move(arg));
        }
        BYPASS_RETURN_IF_ERROR(Expect(TokenType::kRParen, ")"));
        return AstExprPtr(node);
      }
      if (IsReserved(t.text)) {
        return Status::ParseError("unexpected keyword '" + t.text +
                                  "' at offset " +
                                  std::to_string(t.position));
      }
      auto node = std::make_shared<AstExpr>();
      node->kind = AstExprKind::kColumnRef;
      node->name = ToLower(Advance().text);
      if (Match(TokenType::kDot)) {
        if (!Check(TokenType::kIdentifier)) {
          return Status::ParseError("expected column name after '.'");
        }
        node->qualifier = node->name;
        node->name = ToLower(Advance().text);
      }
      return AstExprPtr(node);
    }
    default:
      return Status::ParseError("unexpected token '" + DescribeCurrent() +
                                "' at offset " +
                                std::to_string(t.position));
  }
}

}  // namespace

Result<SelectStmtPtr> ParseSelect(const std::string& sql) {
  BYPASS_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  return parser.ParseStatement();
}

}  // namespace bypass
