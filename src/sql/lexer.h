// Hand-written SQL lexer.
#ifndef BYPASSDB_SQL_LEXER_H_
#define BYPASSDB_SQL_LEXER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "sql/token.h"

namespace bypass {

/// Tokenizes `sql`; the result always ends with a kEnd token. Comments
/// ("-- ..." to end of line) and whitespace are skipped.
Result<std::vector<Token>> Tokenize(const std::string& sql);

}  // namespace bypass

#endif  // BYPASSDB_SQL_LEXER_H_
