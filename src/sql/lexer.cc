#include "sql/lexer.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>

namespace bypass {

const char* TokenTypeToString(TokenType type) {
  switch (type) {
    case TokenType::kEnd:
      return "<end>";
    case TokenType::kIdentifier:
      return "identifier";
    case TokenType::kIntLiteral:
      return "integer";
    case TokenType::kDoubleLiteral:
      return "double";
    case TokenType::kStringLiteral:
      return "string";
    case TokenType::kLParen:
      return "(";
    case TokenType::kRParen:
      return ")";
    case TokenType::kComma:
      return ",";
    case TokenType::kDot:
      return ".";
    case TokenType::kStar:
      return "*";
    case TokenType::kPlus:
      return "+";
    case TokenType::kMinus:
      return "-";
    case TokenType::kSlash:
      return "/";
    case TokenType::kEq:
      return "=";
    case TokenType::kNe:
      return "<>";
    case TokenType::kLt:
      return "<";
    case TokenType::kLe:
      return "<=";
    case TokenType::kGt:
      return ">";
    case TokenType::kGe:
      return ">=";
    case TokenType::kSemicolon:
      return ";";
  }
  return "?";
}

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

Result<std::vector<Token>> Tokenize(const std::string& sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = sql.size();
  auto push = [&](TokenType type, size_t pos, std::string text = "") {
    Token t;
    t.type = type;
    t.text = std::move(text);
    t.position = static_cast<int>(pos);
    tokens.push_back(std::move(t));
  };
  while (i < n) {
    const char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '-' && i + 1 < n && sql[i + 1] == '-') {
      while (i < n && sql[i] != '\n') ++i;
      continue;
    }
    const size_t start = i;
    if (IsIdentStart(c)) {
      while (i < n && IsIdentChar(sql[i])) ++i;
      push(TokenType::kIdentifier, start, sql.substr(start, i - start));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      bool is_double = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) {
        ++i;
      }
      if (i < n && sql[i] == '.') {
        is_double = true;
        ++i;
        while (i < n &&
               std::isdigit(static_cast<unsigned char>(sql[i]))) {
          ++i;
        }
      }
      if (i < n && (sql[i] == 'e' || sql[i] == 'E')) {
        is_double = true;
        ++i;
        if (i < n && (sql[i] == '+' || sql[i] == '-')) ++i;
        while (i < n &&
               std::isdigit(static_cast<unsigned char>(sql[i]))) {
          ++i;
        }
      }
      const std::string text = sql.substr(start, i - start);
      Token t;
      t.position = static_cast<int>(start);
      t.text = text;
      if (is_double) {
        t.type = TokenType::kDoubleLiteral;
        t.double_value = std::strtod(text.c_str(), nullptr);
      } else {
        t.type = TokenType::kIntLiteral;
        errno = 0;
        t.int_value = std::strtoll(text.c_str(), nullptr, 10);
        if (errno == ERANGE) {
          return Status::ParseError("integer literal out of range: " +
                                    text);
        }
      }
      tokens.push_back(std::move(t));
      continue;
    }
    if (c == '\'') {
      std::string value;
      ++i;
      bool closed = false;
      while (i < n) {
        if (sql[i] == '\'') {
          if (i + 1 < n && sql[i + 1] == '\'') {  // escaped quote
            value.push_back('\'');
            i += 2;
            continue;
          }
          closed = true;
          ++i;
          break;
        }
        value.push_back(sql[i]);
        ++i;
      }
      if (!closed) {
        return Status::ParseError("unterminated string literal at offset " +
                                  std::to_string(start));
      }
      push(TokenType::kStringLiteral, start, std::move(value));
      continue;
    }
    switch (c) {
      case '(':
        push(TokenType::kLParen, start);
        ++i;
        break;
      case ')':
        push(TokenType::kRParen, start);
        ++i;
        break;
      case ',':
        push(TokenType::kComma, start);
        ++i;
        break;
      case '.':
        push(TokenType::kDot, start);
        ++i;
        break;
      case '*':
        push(TokenType::kStar, start);
        ++i;
        break;
      case '+':
        push(TokenType::kPlus, start);
        ++i;
        break;
      case '-':
        push(TokenType::kMinus, start);
        ++i;
        break;
      case '/':
        push(TokenType::kSlash, start);
        ++i;
        break;
      case ';':
        push(TokenType::kSemicolon, start);
        ++i;
        break;
      case '=':
        push(TokenType::kEq, start);
        ++i;
        break;
      case '!':
        if (i + 1 < n && sql[i + 1] == '=') {
          push(TokenType::kNe, start);
          i += 2;
        } else {
          return Status::ParseError("unexpected '!' at offset " +
                                    std::to_string(start));
        }
        break;
      case '<':
        if (i + 1 < n && sql[i + 1] == '=') {
          push(TokenType::kLe, start);
          i += 2;
        } else if (i + 1 < n && sql[i + 1] == '>') {
          push(TokenType::kNe, start);
          i += 2;
        } else {
          push(TokenType::kLt, start);
          ++i;
        }
        break;
      case '>':
        if (i + 1 < n && sql[i + 1] == '=') {
          push(TokenType::kGe, start);
          i += 2;
        } else {
          push(TokenType::kGt, start);
          ++i;
        }
        break;
      default:
        return Status::ParseError(std::string("unexpected character '") +
                                  c + "' at offset " +
                                  std::to_string(start));
    }
  }
  push(TokenType::kEnd, n);
  return tokens;
}

}  // namespace bypass
