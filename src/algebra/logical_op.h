// Logical algebra: the paper's extended relational algebra (Sec. 2.3).
// Core operators plus the five extensions (unary grouping Γ, binary
// grouping Γ, left outer join with default function, numbering ν, map χ)
// and the bypass operators (σ±, ⋈±) from Kemper et al. [17]. Plans are
// DAGs: bypass operators have two output ports (positive/negative) that a
// disjoint union re-unites.
#ifndef BYPASSDB_ALGEBRA_LOGICAL_OP_H_
#define BYPASSDB_ALGEBRA_LOGICAL_OP_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "expr/agg.h"
#include "expr/expr.h"
#include "types/schema.h"

namespace bypass {

class LogicalOp;
using LogicalOpPtr = std::shared_ptr<LogicalOp>;

/// Output stream selector. Non-bypass operators only have kOut. The
/// k-way bypass partition exposes k+1 streams addressed by plain index
/// (static_cast<StreamPort>(i)); named values cover the binary cases.
enum class StreamPort : int {
  kOut = 0,       ///< the (positive / first tagged) output
  kNegative = 1,  ///< binary bypass operators' complement stream
};

/// An edge in the plan DAG: a child operator plus which of its output
/// streams feeds this input.
struct LogicalInput {
  LogicalOpPtr op;
  StreamPort port = StreamPort::kOut;
};

enum class LogicalOpKind {
  kGet,
  kSelect,
  kProject,
  kDistinct,
  kMap,
  kJoin,
  kLeftOuterJoin,
  kSemiJoin,
  kAntiJoin,
  kGroupBy,
  kBinaryGroupBy,
  kUnion,
  kBypassSelect,
  kBypassPartition,
  kBypassJoin,
  kNumbering,
  kSort,
  kLimit,
};

const char* LogicalOpKindToString(LogicalOpKind kind);

/// Base class for all logical operators. Nodes own their expressions and
/// are mutated only by the translator/rewriter that created them.
class LogicalOp {
 public:
  virtual ~LogicalOp() = default;

  virtual LogicalOpKind kind() const = 0;

  const std::vector<LogicalInput>& inputs() const { return inputs_; }
  std::vector<LogicalInput>* mutable_inputs() { return &inputs_; }

  /// Output schema of the (positive) stream. For bypass operators, both
  /// streams have the same schema.
  const Schema& schema() const { return schema_; }

  /// Single-line description (operator name + parameters).
  virtual std::string Label() const = 0;

  /// Deep copy of this node and everything below it, preserving DAG
  /// sharing. `memo` maps original nodes to their copies.
  LogicalOpPtr CloneWithMemo(
      std::unordered_map<const LogicalOp*, LogicalOpPtr>* memo) const;

  /// Copy of this node (expressions cloned) attached to the given inputs;
  /// the rewriter's rebuild primitive.
  LogicalOpPtr WithNewInputs(std::vector<LogicalInput> new_inputs) const {
    return CloneNode(std::move(new_inputs));
  }

 protected:
  LogicalOp(std::vector<LogicalInput> inputs, Schema schema)
      : inputs_(std::move(inputs)), schema_(std::move(schema)) {}

  /// Copies this node only, with the given (already-cloned) inputs.
  virtual LogicalOpPtr CloneNode(
      std::vector<LogicalInput> cloned_inputs) const = 0;

  const Schema& input_schema(int i) const {
    return inputs_[static_cast<size_t>(i)].op->schema();
  }

  std::vector<LogicalInput> inputs_;
  Schema schema_;
};

/// A named output column computed from an expression (Project/Map items).
struct NamedExpr {
  ExprPtr expr;
  std::string name;
  std::string qualifier;  ///< kept so later references like r.a1 resolve

  NamedExpr CloneItem() const { return {expr->Clone(), name, qualifier}; }
};

/// Base-table access.
class GetOp : public LogicalOp {
 public:
  /// `schema` must already be qualified with the table alias.
  GetOp(std::string table_name, std::string alias, Schema schema)
      : LogicalOp({}, std::move(schema)),
        table_name_(std::move(table_name)),
        alias_(std::move(alias)) {}
  LogicalOpKind kind() const override { return LogicalOpKind::kGet; }
  const std::string& table_name() const { return table_name_; }
  const std::string& alias() const { return alias_; }
  std::string Label() const override;

 protected:
  LogicalOpPtr CloneNode(std::vector<LogicalInput>) const override;

 private:
  std::string table_name_;
  std::string alias_;
};

/// Selection σ_p. The predicate may contain nested subquery expressions
/// (the canonical translation's "algebraic expressions in subscripts").
class SelectOp : public LogicalOp {
 public:
  SelectOp(LogicalInput input, ExprPtr predicate)
      : LogicalOp({std::move(input)}, Schema()),
        predicate_(std::move(predicate)) {
    schema_ = input_schema(0);
  }
  LogicalOpKind kind() const override { return LogicalOpKind::kSelect; }
  const ExprPtr& predicate() const { return predicate_; }
  void set_predicate(ExprPtr p) { predicate_ = std::move(p); }
  std::string Label() const override;

 protected:
  LogicalOpPtr CloneNode(std::vector<LogicalInput> in) const override;

 private:
  ExprPtr predicate_;
};

/// Bypass selection σ±_p: positive stream = tuples where p is true,
/// negative stream = the rest (false or unknown).
class BypassSelectOp : public LogicalOp {
 public:
  BypassSelectOp(LogicalInput input, ExprPtr predicate)
      : LogicalOp({std::move(input)}, Schema()),
        predicate_(std::move(predicate)) {
    schema_ = input_schema(0);
  }
  LogicalOpKind kind() const override {
    return LogicalOpKind::kBypassSelect;
  }
  const ExprPtr& predicate() const { return predicate_; }
  std::string Label() const override;

 protected:
  LogicalOpPtr CloneNode(std::vector<LogicalInput> in) const override;

 private:
  ExprPtr predicate_;
};

/// K-way tagged bypass partition σ±_{p1|...|pk}: one node splits its
/// input into k+1 streams. Stream i < k carries the tuples whose *first*
/// TRUE disjunct is p_{i+1} (the tag set of tagged execution); stream k
/// carries the remainder, on which every disjunct was false or unknown.
/// Equivalent to a cascade of k bypass selections over the same ordered
/// disjuncts. All streams share the input schema.
class BypassPartitionOp : public LogicalOp {
 public:
  BypassPartitionOp(LogicalInput input, std::vector<ExprPtr> predicates);
  LogicalOpKind kind() const override {
    return LogicalOpKind::kBypassPartition;
  }
  const std::vector<ExprPtr>& predicates() const { return predicates_; }
  /// The tagged stream of disjunct i (i < predicates().size()).
  StreamPort stream(size_t i) const { return static_cast<StreamPort>(i); }
  /// The remainder stream (port k).
  StreamPort remainder() const {
    return static_cast<StreamPort>(predicates_.size());
  }
  std::string Label() const override;

 protected:
  LogicalOpPtr CloneNode(std::vector<LogicalInput> in) const override;

 private:
  std::vector<ExprPtr> predicates_;
};

/// Projection Π. Duplicate-preserving; pair with DistinctOp for Π^D.
class ProjectOp : public LogicalOp {
 public:
  ProjectOp(LogicalInput input, std::vector<NamedExpr> items);
  LogicalOpKind kind() const override { return LogicalOpKind::kProject; }
  const std::vector<NamedExpr>& items() const { return items_; }
  std::string Label() const override;

 protected:
  LogicalOpPtr CloneNode(std::vector<LogicalInput> in) const override;

 private:
  std::vector<NamedExpr> items_;
};

/// Duplicate elimination over full rows.
class DistinctOp : public LogicalOp {
 public:
  explicit DistinctOp(LogicalInput input)
      : LogicalOp({std::move(input)}, Schema()) {
    schema_ = input_schema(0);
  }
  LogicalOpKind kind() const override { return LogicalOpKind::kDistinct; }
  std::string Label() const override { return "Distinct"; }

 protected:
  LogicalOpPtr CloneNode(std::vector<LogicalInput> in) const override;
};

/// Map χ_{a:e}: appends computed columns to each tuple.
class MapOp : public LogicalOp {
 public:
  MapOp(LogicalInput input, std::vector<NamedExpr> items);
  LogicalOpKind kind() const override { return LogicalOpKind::kMap; }
  const std::vector<NamedExpr>& items() const { return items_; }
  std::string Label() const override;

 protected:
  LogicalOpPtr CloneNode(std::vector<LogicalInput> in) const override;

 private:
  std::vector<NamedExpr> items_;
};

/// Inner join (cross product when predicate is null).
class JoinOp : public LogicalOp {
 public:
  JoinOp(LogicalInput left, LogicalInput right, ExprPtr predicate);
  LogicalOpKind kind() const override { return LogicalOpKind::kJoin; }
  const ExprPtr& predicate() const { return predicate_; }
  std::string Label() const override;

 protected:
  LogicalOpPtr CloneNode(std::vector<LogicalInput> in) const override;

 private:
  ExprPtr predicate_;
};

/// Bypass join ⋈±_p: positive stream = joined pairs satisfying p,
/// negative stream = (left × right) \ positive (pairs failing p).
class BypassJoinOp : public LogicalOp {
 public:
  BypassJoinOp(LogicalInput left, LogicalInput right, ExprPtr predicate);
  LogicalOpKind kind() const override { return LogicalOpKind::kBypassJoin; }
  const ExprPtr& predicate() const { return predicate_; }
  std::string Label() const override;

 protected:
  LogicalOpPtr CloneNode(std::vector<LogicalInput> in) const override;

 private:
  ExprPtr predicate_;
};

/// Left outer join with default function (g:f(∅)): unmatched left tuples
/// are padded with NULLs on the right side except for columns listed in
/// `unmatched_defaults`, which receive the given constants — the paper's
/// count-bug fix.
class LeftOuterJoinOp : public LogicalOp {
 public:
  LeftOuterJoinOp(LogicalInput left, LogicalInput right, ExprPtr predicate,
                  std::vector<std::pair<std::string, Value>>
                      unmatched_defaults);
  LogicalOpKind kind() const override {
    return LogicalOpKind::kLeftOuterJoin;
  }
  const ExprPtr& predicate() const { return predicate_; }
  const std::vector<std::pair<std::string, Value>>& unmatched_defaults()
      const {
    return unmatched_defaults_;
  }
  std::string Label() const override;

 protected:
  LogicalOpPtr CloneNode(std::vector<LogicalInput> in) const override;

 private:
  ExprPtr predicate_;
  std::vector<std::pair<std::string, Value>> unmatched_defaults_;
};

/// Semijoin ⋉: left tuples with at least one match. Used by the
/// quantified-subquery extension (EXISTS/IN).
class SemiJoinOp : public LogicalOp {
 public:
  SemiJoinOp(LogicalInput left, LogicalInput right, ExprPtr predicate);
  LogicalOpKind kind() const override { return LogicalOpKind::kSemiJoin; }
  const ExprPtr& predicate() const { return predicate_; }
  std::string Label() const override;

 protected:
  LogicalOpPtr CloneNode(std::vector<LogicalInput> in) const override;

 private:
  ExprPtr predicate_;
};

/// Antijoin ▷: left tuples with no match (NOT EXISTS / NOT IN semantics
/// are built from this plus NULL handling in the rewriter).
class AntiJoinOp : public LogicalOp {
 public:
  AntiJoinOp(LogicalInput left, LogicalInput right, ExprPtr predicate);
  LogicalOpKind kind() const override { return LogicalOpKind::kAntiJoin; }
  const ExprPtr& predicate() const { return predicate_; }
  std::string Label() const override;

 protected:
  LogicalOpPtr CloneNode(std::vector<LogicalInput> in) const override;

 private:
  ExprPtr predicate_;
};

/// A grouping column, referenced by (qualifier, name) in the input schema.
struct GroupKey {
  std::string qualifier;
  std::string name;
  /// When non-empty, the key column is renamed to this (with no
  /// qualifier) in the group output schema. Lets rewrites key directly
  /// on an input column without a χ materializing a copy of it, while
  /// still hiding the inner column name from downstream consumers.
  std::string output_alias;
};

/// Unary grouping Γ_{g;=A;f}. With `scalar` set (empty keys), emits
/// exactly one row even on empty input (SQL aggregate-without-GROUP-BY
/// semantics) — this is how nested scalar blocks are translated.
class GroupByOp : public LogicalOp {
 public:
  GroupByOp(LogicalInput input, std::vector<GroupKey> keys,
            std::vector<AggregateSpec> aggregates, bool scalar);
  LogicalOpKind kind() const override { return LogicalOpKind::kGroupBy; }
  const std::vector<GroupKey>& keys() const { return keys_; }
  const std::vector<AggregateSpec>& aggregates() const {
    return aggregates_;
  }
  bool scalar() const { return scalar_; }
  std::string Label() const override;

 protected:
  LogicalOpPtr CloneNode(std::vector<LogicalInput> in) const override;

 private:
  std::vector<GroupKey> keys_;
  std::vector<AggregateSpec> aggregates_;
  bool scalar_;
};

/// Binary grouping Γ_{g;A1θA2;f} (Cluet/Moerkotte): every left tuple x is
/// extended with g = f({y ∈ right | x.A1 θ y.A2}). Empty groups get f(∅).
/// The aggregate arguments are evaluated against right-side tuples.
class BinaryGroupByOp : public LogicalOp {
 public:
  /// `left_key`/`right_key` name columns in the respective input schemas;
  /// `op` is the grouping comparison θ.
  BinaryGroupByOp(LogicalInput left, LogicalInput right, GroupKey left_key,
                  CompareOp op, GroupKey right_key,
                  std::vector<AggregateSpec> aggregates);
  LogicalOpKind kind() const override {
    return LogicalOpKind::kBinaryGroupBy;
  }
  const GroupKey& left_key() const { return left_key_; }
  const GroupKey& right_key() const { return right_key_; }
  CompareOp compare_op() const { return op_; }
  const std::vector<AggregateSpec>& aggregates() const {
    return aggregates_;
  }
  std::string Label() const override;

 protected:
  LogicalOpPtr CloneNode(std::vector<LogicalInput> in) const override;

 private:
  GroupKey left_key_;
  CompareOp op_;
  GroupKey right_key_;
  std::vector<AggregateSpec> aggregates_;
};

/// Disjoint multiset union (concatenation). Inputs must have compatible
/// schemas; the output takes the left input's column names.
class UnionOp : public LogicalOp {
 public:
  UnionOp(LogicalInput left, LogicalInput right);
  /// N-ary form (n >= 1): one union node re-unites all k+1 streams of a
  /// k-way bypass partition instead of a chain of binary unions.
  explicit UnionOp(std::vector<LogicalInput> inputs);
  LogicalOpKind kind() const override { return LogicalOpKind::kUnion; }
  std::string Label() const override { return "UnionAll"; }

 protected:
  LogicalOpPtr CloneNode(std::vector<LogicalInput> in) const override;
};

/// Numbering ν_t: appends a unique int64 tuple id (Eqv. 5's key for
/// re-assembling groups; also turns multisets into sets, Sec. 3.7).
class NumberingOp : public LogicalOp {
 public:
  NumberingOp(LogicalInput input, std::string column_name);
  LogicalOpKind kind() const override { return LogicalOpKind::kNumbering; }
  const std::string& column_name() const { return column_name_; }
  std::string Label() const override;

 protected:
  LogicalOpPtr CloneNode(std::vector<LogicalInput> in) const override;

 private:
  std::string column_name_;
};

/// Sort key: expression + direction.
struct SortKey {
  ExprPtr expr;
  bool descending = false;

  SortKey CloneItem() const { return {expr->Clone(), descending}; }
};

/// ORDER BY.
class SortOp : public LogicalOp {
 public:
  SortOp(LogicalInput input, std::vector<SortKey> keys);
  LogicalOpKind kind() const override { return LogicalOpKind::kSort; }
  const std::vector<SortKey>& keys() const { return keys_; }
  std::string Label() const override;

 protected:
  LogicalOpPtr CloneNode(std::vector<LogicalInput> in) const override;

 private:
  std::vector<SortKey> keys_;
};

/// LIMIT n: forwards the first n rows.
class LimitOp : public LogicalOp {
 public:
  LimitOp(LogicalInput input, int64_t count)
      : LogicalOp({std::move(input)}, Schema()), count_(count) {
    schema_ = input_schema(0);
  }
  LogicalOpKind kind() const override { return LogicalOpKind::kLimit; }
  int64_t count() const { return count_; }
  std::string Label() const override {
    return "Limit " + std::to_string(count_);
  }

 protected:
  LogicalOpPtr CloneNode(std::vector<LogicalInput> in) const override;

 private:
  int64_t count_;
};

/// Multi-line indented plan rendering; shared bypass nodes are printed
/// once and referenced by stream tags ([+]/[-]).
std::string PlanToString(const LogicalOp& root);

/// Returns all nodes reachable from root (each once), children first.
std::vector<const LogicalOp*> TopologicalNodes(const LogicalOp& root);

}  // namespace bypass

#endif  // BYPASSDB_ALGEBRA_LOGICAL_OP_H_
