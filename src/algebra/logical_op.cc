#include "algebra/logical_op.h"

#include <sstream>

#include "common/check.h"
#include "common/string_util.h"

namespace bypass {

const char* LogicalOpKindToString(LogicalOpKind kind) {
  switch (kind) {
    case LogicalOpKind::kGet:
      return "Get";
    case LogicalOpKind::kSelect:
      return "Select";
    case LogicalOpKind::kProject:
      return "Project";
    case LogicalOpKind::kDistinct:
      return "Distinct";
    case LogicalOpKind::kMap:
      return "Map";
    case LogicalOpKind::kJoin:
      return "Join";
    case LogicalOpKind::kLeftOuterJoin:
      return "LeftOuterJoin";
    case LogicalOpKind::kSemiJoin:
      return "SemiJoin";
    case LogicalOpKind::kAntiJoin:
      return "AntiJoin";
    case LogicalOpKind::kGroupBy:
      return "GroupBy";
    case LogicalOpKind::kBinaryGroupBy:
      return "BinaryGroupBy";
    case LogicalOpKind::kUnion:
      return "UnionAll";
    case LogicalOpKind::kBypassSelect:
      return "BypassSelect";
    case LogicalOpKind::kBypassPartition:
      return "BypassPartition";
    case LogicalOpKind::kBypassJoin:
      return "BypassJoin";
    case LogicalOpKind::kNumbering:
      return "Numbering";
    case LogicalOpKind::kSort:
      return "Sort";
    case LogicalOpKind::kLimit:
      return "Limit";
  }
  return "?";
}

namespace {

/// Best-effort static type of an expression against `input`. Runtime
/// values are dynamically typed, so this only feeds schema display and
/// defaults; a wrong guess is harmless.
DataType InferExprType(const Expr& expr, const Schema& input) {
  switch (expr.kind()) {
    case ExprKind::kLiteral: {
      const Value& v = static_cast<const LiteralExpr&>(expr).value();
      return v.is_null() ? DataType::kInt64 : v.type();
    }
    case ExprKind::kColumnRef: {
      const auto& ref = static_cast<const ColumnRefExpr&>(expr);
      if (!ref.is_outer()) {
        auto slot = input.FindColumn(ref.qualifier(), ref.name());
        if (slot.ok()) return input.column(*slot).type;
      }
      return DataType::kInt64;
    }
    case ExprKind::kComparison:
    case ExprKind::kAnd:
    case ExprKind::kOr:
    case ExprKind::kNot:
    case ExprKind::kLike:
    case ExprKind::kIsNull:
      return DataType::kBool;
    case ExprKind::kArithmetic: {
      const auto& a = static_cast<const ArithmeticExpr&>(expr);
      if (a.op() == ArithOp::kDiv) return DataType::kDouble;
      const DataType l = InferExprType(*a.left(), input);
      const DataType r = InferExprType(*a.right(), input);
      if (l == DataType::kDouble || r == DataType::kDouble) {
        return DataType::kDouble;
      }
      return DataType::kInt64;
    }
    case ExprKind::kFunction: {
      const auto& f = static_cast<const FunctionExpr&>(expr);
      if (f.func() == BuiltinFunc::kDivOrNullIfZero) {
        return DataType::kDouble;
      }
      if (!f.args().empty()) return InferExprType(*f.args()[0], input);
      return DataType::kInt64;
    }
    case ExprKind::kSubquery: {
      const auto& sq = static_cast<const SubqueryExpr&>(expr);
      if (sq.subquery_kind() != SubqueryKind::kScalar) {
        return DataType::kBool;
      }
      if (sq.plan() && sq.plan()->schema().num_columns() > 0) {
        return sq.plan()->schema().column(0).type;
      }
      return DataType::kInt64;
    }
  }
  return DataType::kInt64;
}

DataType AggOutputType(const AggregateSpec& spec, const Schema& input) {
  switch (spec.func) {
    case AggFunc::kCount:
      return DataType::kInt64;
    case AggFunc::kAvg:
      return DataType::kDouble;
    case AggFunc::kSum:
    case AggFunc::kMin:
    case AggFunc::kMax:
      return spec.arg ? InferExprType(*spec.arg, input)
                      : DataType::kInt64;
  }
  return DataType::kInt64;
}

std::vector<LogicalInput> CloneInputs(
    const std::vector<LogicalInput>& inputs,
    std::unordered_map<const LogicalOp*, LogicalOpPtr>* memo) {
  std::vector<LogicalInput> out;
  out.reserve(inputs.size());
  for (const LogicalInput& in : inputs) {
    out.push_back({in.op->CloneWithMemo(memo), in.port});
  }
  return out;
}

}  // namespace

LogicalOpPtr LogicalOp::CloneWithMemo(
    std::unordered_map<const LogicalOp*, LogicalOpPtr>* memo) const {
  auto it = memo->find(this);
  if (it != memo->end()) return it->second;
  LogicalOpPtr copy = CloneNode(CloneInputs(inputs_, memo));
  memo->emplace(this, copy);
  return copy;
}

// Declared in expr/expr.h to break the header cycle.
LogicalOpPtr CloneLogicalPlan(const LogicalOpPtr& plan) {
  if (plan == nullptr) return nullptr;
  std::unordered_map<const LogicalOp*, LogicalOpPtr> memo;
  return plan->CloneWithMemo(&memo);
}

std::string LogicalPlanSummary(const LogicalOp& plan) {
  std::string out = plan.Label();
  if (!plan.inputs().empty()) out += " ...";
  return out;
}

// -------------------------------------------------------------------- Get

std::string GetOp::Label() const {
  std::string out = "Get(" + table_name_;
  if (!alias_.empty() && !EqualsIgnoreCase(alias_, table_name_)) {
    out += " AS " + alias_;
  }
  out += ")";
  return out;
}

LogicalOpPtr GetOp::CloneNode(std::vector<LogicalInput>) const {
  return std::make_shared<GetOp>(table_name_, alias_, schema_);
}

// ----------------------------------------------------------------- Select

std::string SelectOp::Label() const {
  return "Select " + predicate_->ToString();
}

LogicalOpPtr SelectOp::CloneNode(std::vector<LogicalInput> in) const {
  return std::make_shared<SelectOp>(std::move(in[0]), predicate_->Clone());
}

std::string BypassSelectOp::Label() const {
  return "BypassSelect± " + predicate_->ToString();
}

LogicalOpPtr BypassSelectOp::CloneNode(std::vector<LogicalInput> in) const {
  return std::make_shared<BypassSelectOp>(std::move(in[0]),
                                          predicate_->Clone());
}

// ------------------------------------------------------- BypassPartition

BypassPartitionOp::BypassPartitionOp(LogicalInput input,
                                     std::vector<ExprPtr> predicates)
    : LogicalOp({std::move(input)}, Schema()),
      predicates_(std::move(predicates)) {
  BYPASS_CHECK_MSG(!predicates_.empty(),
                   "bypass partition needs at least one disjunct");
  schema_ = input_schema(0);
}

std::string BypassPartitionOp::Label() const {
  std::vector<std::string> parts;
  parts.reserve(predicates_.size());
  for (const ExprPtr& p : predicates_) parts.push_back(p->ToString());
  return "BypassPartition±[k=" + std::to_string(predicates_.size()) +
         "] " + Join(parts, " | ");
}

LogicalOpPtr BypassPartitionOp::CloneNode(
    std::vector<LogicalInput> in) const {
  std::vector<ExprPtr> preds;
  preds.reserve(predicates_.size());
  for (const ExprPtr& p : predicates_) preds.push_back(p->Clone());
  return std::make_shared<BypassPartitionOp>(std::move(in[0]),
                                             std::move(preds));
}

// ---------------------------------------------------------------- Project

ProjectOp::ProjectOp(LogicalInput input, std::vector<NamedExpr> items)
    : LogicalOp({std::move(input)}, Schema()), items_(std::move(items)) {
  Schema out;
  for (const NamedExpr& it : items_) {
    out.AddColumn({it.name, InferExprType(*it.expr, input_schema(0)),
                   it.qualifier});
  }
  schema_ = std::move(out);
}

std::string ProjectOp::Label() const {
  std::vector<std::string> parts;
  parts.reserve(items_.size());
  for (const NamedExpr& it : items_) {
    std::string s = it.expr->ToString();
    const std::string shown =
        it.qualifier.empty() ? it.name : it.qualifier + "." + it.name;
    if (s != shown) s += " AS " + shown;
    parts.push_back(std::move(s));
  }
  return "Project [" + Join(parts, ", ") + "]";
}

LogicalOpPtr ProjectOp::CloneNode(std::vector<LogicalInput> in) const {
  std::vector<NamedExpr> items;
  items.reserve(items_.size());
  for (const NamedExpr& it : items_) items.push_back(it.CloneItem());
  return std::make_shared<ProjectOp>(std::move(in[0]), std::move(items));
}

// --------------------------------------------------------------- Distinct

LogicalOpPtr DistinctOp::CloneNode(std::vector<LogicalInput> in) const {
  return std::make_shared<DistinctOp>(std::move(in[0]));
}

// -------------------------------------------------------------------- Map

MapOp::MapOp(LogicalInput input, std::vector<NamedExpr> items)
    : LogicalOp({std::move(input)}, Schema()), items_(std::move(items)) {
  Schema out = input_schema(0);
  for (const NamedExpr& it : items_) {
    out.AddColumn({it.name, InferExprType(*it.expr, input_schema(0)),
                   it.qualifier});
  }
  schema_ = std::move(out);
}

std::string MapOp::Label() const {
  std::vector<std::string> parts;
  parts.reserve(items_.size());
  for (const NamedExpr& it : items_) {
    parts.push_back(it.name + " := " + it.expr->ToString());
  }
  return "Map χ[" + Join(parts, ", ") + "]";
}

LogicalOpPtr MapOp::CloneNode(std::vector<LogicalInput> in) const {
  std::vector<NamedExpr> items;
  items.reserve(items_.size());
  for (const NamedExpr& it : items_) items.push_back(it.CloneItem());
  return std::make_shared<MapOp>(std::move(in[0]), std::move(items));
}

// ------------------------------------------------------------------ Joins

JoinOp::JoinOp(LogicalInput left, LogicalInput right, ExprPtr predicate)
    : LogicalOp({std::move(left), std::move(right)}, Schema()),
      predicate_(std::move(predicate)) {
  schema_ = Schema::Concat(input_schema(0), input_schema(1));
}

std::string JoinOp::Label() const {
  return predicate_ ? "Join " + predicate_->ToString() : "CrossProduct";
}

LogicalOpPtr JoinOp::CloneNode(std::vector<LogicalInput> in) const {
  return std::make_shared<JoinOp>(std::move(in[0]), std::move(in[1]),
                                  predicate_ ? predicate_->Clone()
                                             : nullptr);
}

BypassJoinOp::BypassJoinOp(LogicalInput left, LogicalInput right,
                           ExprPtr predicate)
    : LogicalOp({std::move(left), std::move(right)}, Schema()),
      predicate_(std::move(predicate)) {
  schema_ = Schema::Concat(input_schema(0), input_schema(1));
}

std::string BypassJoinOp::Label() const {
  return "BypassJoin± " + predicate_->ToString();
}

LogicalOpPtr BypassJoinOp::CloneNode(std::vector<LogicalInput> in) const {
  return std::make_shared<BypassJoinOp>(std::move(in[0]), std::move(in[1]),
                                        predicate_->Clone());
}

LeftOuterJoinOp::LeftOuterJoinOp(
    LogicalInput left, LogicalInput right, ExprPtr predicate,
    std::vector<std::pair<std::string, Value>> unmatched_defaults)
    : LogicalOp({std::move(left), std::move(right)}, Schema()),
      predicate_(std::move(predicate)),
      unmatched_defaults_(std::move(unmatched_defaults)) {
  schema_ = Schema::Concat(input_schema(0), input_schema(1));
}

std::string LeftOuterJoinOp::Label() const {
  std::string out = "LeftOuterJoin " + predicate_->ToString();
  if (!unmatched_defaults_.empty()) {
    std::vector<std::string> defs;
    defs.reserve(unmatched_defaults_.size());
    for (const auto& [name, value] : unmatched_defaults_) {
      defs.push_back(name + ":" + value.ToString());
    }
    out += " defaults{" + Join(defs, ", ") + "}";
  }
  return out;
}

LogicalOpPtr LeftOuterJoinOp::CloneNode(
    std::vector<LogicalInput> in) const {
  return std::make_shared<LeftOuterJoinOp>(std::move(in[0]),
                                           std::move(in[1]),
                                           predicate_->Clone(),
                                           unmatched_defaults_);
}

SemiJoinOp::SemiJoinOp(LogicalInput left, LogicalInput right,
                       ExprPtr predicate)
    : LogicalOp({std::move(left), std::move(right)}, Schema()),
      predicate_(std::move(predicate)) {
  schema_ = input_schema(0);
}

std::string SemiJoinOp::Label() const {
  return "SemiJoin " + predicate_->ToString();
}

LogicalOpPtr SemiJoinOp::CloneNode(std::vector<LogicalInput> in) const {
  return std::make_shared<SemiJoinOp>(std::move(in[0]), std::move(in[1]),
                                      predicate_->Clone());
}

AntiJoinOp::AntiJoinOp(LogicalInput left, LogicalInput right,
                       ExprPtr predicate)
    : LogicalOp({std::move(left), std::move(right)}, Schema()),
      predicate_(std::move(predicate)) {
  schema_ = input_schema(0);
}

std::string AntiJoinOp::Label() const {
  return "AntiJoin " + predicate_->ToString();
}

LogicalOpPtr AntiJoinOp::CloneNode(std::vector<LogicalInput> in) const {
  return std::make_shared<AntiJoinOp>(std::move(in[0]), std::move(in[1]),
                                      predicate_->Clone());
}

// --------------------------------------------------------------- GroupBy

GroupByOp::GroupByOp(LogicalInput input, std::vector<GroupKey> keys,
                     std::vector<AggregateSpec> aggregates, bool scalar)
    : LogicalOp({std::move(input)}, Schema()),
      keys_(std::move(keys)),
      aggregates_(std::move(aggregates)),
      scalar_(scalar) {
  BYPASS_CHECK_MSG(!scalar_ || keys_.empty(),
                   "scalar aggregation cannot have group keys");
  Schema out;
  const Schema& in = input_schema(0);
  for (const GroupKey& k : keys_) {
    auto slot = in.FindColumn(k.qualifier, k.name);
    BYPASS_CHECK_MSG(slot.ok(), "group key not found in input schema");
    ColumnDef col = in.column(*slot);
    if (!k.output_alias.empty()) {
      col.name = k.output_alias;
      col.qualifier.clear();
    }
    out.AddColumn(col);
  }
  for (const AggregateSpec& a : aggregates_) {
    out.AddColumn({a.output_name, AggOutputType(a, in), ""});
  }
  schema_ = std::move(out);
}

std::string GroupByOp::Label() const {
  std::vector<std::string> key_strs;
  key_strs.reserve(keys_.size());
  for (const GroupKey& k : keys_) {
    std::string s =
        k.qualifier.empty() ? k.name : k.qualifier + "." + k.name;
    if (!k.output_alias.empty()) s = k.output_alias + " := " + s;
    key_strs.push_back(std::move(s));
  }
  std::vector<std::string> agg_strs;
  agg_strs.reserve(aggregates_.size());
  for (const AggregateSpec& a : aggregates_) {
    agg_strs.push_back(a.output_name + " := " + a.ToString());
  }
  std::string name = scalar_ ? "ScalarAgg" : "GroupBy Γ";
  return name + "[" + Join(key_strs, ", ") + "; " + Join(agg_strs, ", ") +
         "]";
}

LogicalOpPtr GroupByOp::CloneNode(std::vector<LogicalInput> in) const {
  std::vector<AggregateSpec> aggs;
  aggs.reserve(aggregates_.size());
  for (const AggregateSpec& a : aggregates_) aggs.push_back(a.Clone());
  return std::make_shared<GroupByOp>(std::move(in[0]), keys_,
                                     std::move(aggs), scalar_);
}

// --------------------------------------------------------- BinaryGroupBy

BinaryGroupByOp::BinaryGroupByOp(LogicalInput left, LogicalInput right,
                                 GroupKey left_key, CompareOp op,
                                 GroupKey right_key,
                                 std::vector<AggregateSpec> aggregates)
    : LogicalOp({std::move(left), std::move(right)}, Schema()),
      left_key_(std::move(left_key)),
      op_(op),
      right_key_(std::move(right_key)),
      aggregates_(std::move(aggregates)) {
  Schema out = input_schema(0);
  const Schema& right_schema = input_schema(1);
  for (const AggregateSpec& a : aggregates_) {
    out.AddColumn({a.output_name, AggOutputType(a, right_schema), ""});
  }
  schema_ = std::move(out);
}

std::string BinaryGroupByOp::Label() const {
  std::vector<std::string> agg_strs;
  agg_strs.reserve(aggregates_.size());
  for (const AggregateSpec& a : aggregates_) {
    agg_strs.push_back(a.output_name + " := " + a.ToString());
  }
  auto key_str = [](const GroupKey& k) {
    return k.qualifier.empty() ? k.name : k.qualifier + "." + k.name;
  };
  return "BinaryGroupBy Γ[" + key_str(left_key_) + " " +
         CompareOpToString(op_) + " " + key_str(right_key_) + "; " +
         Join(agg_strs, ", ") + "]";
}

LogicalOpPtr BinaryGroupByOp::CloneNode(
    std::vector<LogicalInput> in) const {
  std::vector<AggregateSpec> aggs;
  aggs.reserve(aggregates_.size());
  for (const AggregateSpec& a : aggregates_) aggs.push_back(a.Clone());
  return std::make_shared<BinaryGroupByOp>(std::move(in[0]),
                                           std::move(in[1]), left_key_,
                                           op_, right_key_,
                                           std::move(aggs));
}

// ------------------------------------------------------------------ Union

UnionOp::UnionOp(LogicalInput left, LogicalInput right)
    : UnionOp(std::vector<LogicalInput>{std::move(left),
                                        std::move(right)}) {}

UnionOp::UnionOp(std::vector<LogicalInput> inputs)
    : LogicalOp(std::move(inputs), Schema()) {
  BYPASS_CHECK_MSG(!inputs_.empty(), "union needs at least one input");
  for (size_t i = 1; i < inputs_.size(); ++i) {
    BYPASS_CHECK_MSG(input_schema(0).num_columns() ==
                         input_schema(static_cast<int>(i)).num_columns(),
                     "union inputs must have equal arity");
  }
  schema_ = input_schema(0);
}

LogicalOpPtr UnionOp::CloneNode(std::vector<LogicalInput> in) const {
  return std::make_shared<UnionOp>(std::move(in));
}

// -------------------------------------------------------------- Numbering

NumberingOp::NumberingOp(LogicalInput input, std::string column_name)
    : LogicalOp({std::move(input)}, Schema()),
      column_name_(std::move(column_name)) {
  Schema out = input_schema(0);
  out.AddColumn({column_name_, DataType::kInt64, ""});
  schema_ = std::move(out);
}

std::string NumberingOp::Label() const {
  return "Numbering ν[" + column_name_ + "]";
}

LogicalOpPtr NumberingOp::CloneNode(std::vector<LogicalInput> in) const {
  return std::make_shared<NumberingOp>(std::move(in[0]), column_name_);
}

// ------------------------------------------------------------------- Sort

SortOp::SortOp(LogicalInput input, std::vector<SortKey> keys)
    : LogicalOp({std::move(input)}, Schema()), keys_(std::move(keys)) {
  schema_ = input_schema(0);
}

std::string SortOp::Label() const {
  std::vector<std::string> parts;
  parts.reserve(keys_.size());
  for (const SortKey& k : keys_) {
    parts.push_back(k.expr->ToString() +
                    (k.descending ? " DESC" : " ASC"));
  }
  return "Sort [" + Join(parts, ", ") + "]";
}

LogicalOpPtr SortOp::CloneNode(std::vector<LogicalInput> in) const {
  std::vector<SortKey> keys;
  keys.reserve(keys_.size());
  for (const SortKey& k : keys_) keys.push_back(k.CloneItem());
  return std::make_shared<SortOp>(std::move(in[0]), std::move(keys));
}

LogicalOpPtr LimitOp::CloneNode(std::vector<LogicalInput> in) const {
  return std::make_shared<LimitOp>(std::move(in[0]), count_);
}

// --------------------------------------------------------------- Printing

namespace {

void CollectTopological(const LogicalOp* node,
                        std::unordered_map<const LogicalOp*, bool>* seen,
                        std::vector<const LogicalOp*>* out) {
  auto it = seen->find(node);
  if (it != seen->end()) return;
  (*seen)[node] = true;
  for (const LogicalInput& in : node->inputs()) {
    CollectTopological(in.op.get(), seen, out);
  }
  out->push_back(node);
}

struct PrintState {
  std::unordered_map<const LogicalOp*, int> shared_ids;
  std::unordered_map<const LogicalOp*, bool> printed;
  int next_id = 1;
};

void PrintNode(const LogicalOp* node, StreamPort port, int indent,
               PrintState* state, std::ostringstream* os) {
  for (int i = 0; i < indent; ++i) *os << "  ";
  if (node->kind() == LogicalOpKind::kBypassPartition) {
    // Multiway streams: [t<i>] = disjunct i's tagged stream,
    // [rest] = the all-false/unknown remainder.
    const auto* part = static_cast<const BypassPartitionOp*>(node);
    const int p = static_cast<int>(port);
    if (p == static_cast<int>(part->predicates().size())) {
      *os << "[rest] ";
    } else {
      *os << "[t" << p << "] ";
    }
  } else if (port == StreamPort::kNegative) {
    *os << "[-] ";
  } else if (state->shared_ids.count(node) > 0) {
    *os << "[+] ";
  }
  auto id_it = state->shared_ids.find(node);
  if (id_it != state->shared_ids.end()) {
    *os << "#" << id_it->second << " ";
    if (state->printed[node]) {
      *os << "(shared " << node->Label() << ")\n";
      return;
    }
    state->printed[node] = true;
  }
  *os << node->Label() << "\n";
  for (const LogicalInput& in : node->inputs()) {
    PrintNode(in.op.get(), in.port, indent + 1, state, os);
  }
}

}  // namespace

std::vector<const LogicalOp*> TopologicalNodes(const LogicalOp& root) {
  std::unordered_map<const LogicalOp*, bool> seen;
  std::vector<const LogicalOp*> out;
  CollectTopological(&root, &seen, &out);
  return out;
}

std::string PlanToString(const LogicalOp& root) {
  // Count references to discover shared (bypass) nodes.
  std::unordered_map<const LogicalOp*, int> ref_count;
  for (const LogicalOp* node : TopologicalNodes(root)) {
    for (const LogicalInput& in : node->inputs()) {
      ++ref_count[in.op.get()];
    }
  }
  PrintState state;
  for (const auto& [node, count] : ref_count) {
    if (count > 1) state.shared_ids[node] = state.next_id++;
  }
  std::ostringstream os;
  PrintNode(&root, StreamPort::kOut, 0, &state, &os);
  return os.str();
}

}  // namespace bypass
