#include "algebra/dot.h"

#include <sstream>
#include <unordered_map>

namespace bypass {

namespace {

std::string EscapeLabel(const std::string& label) {
  std::string out;
  out.reserve(label.size());
  for (char c : label) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

const char* NodeShape(LogicalOpKind kind) {
  switch (kind) {
    case LogicalOpKind::kGet:
      return "cylinder";
    case LogicalOpKind::kBypassSelect:
    case LogicalOpKind::kBypassPartition:
    case LogicalOpKind::kBypassJoin:
      return "diamond";
    case LogicalOpKind::kUnion:
      return "invtriangle";
    default:
      return "box";
  }
}

}  // namespace

std::string PlanToDot(const LogicalOp& root,
                      const std::string& graph_name) {
  std::ostringstream os;
  os << "digraph \"" << EscapeLabel(graph_name) << "\" {\n";
  os << "  rankdir=BT;\n";  // data flows bottom-up, like plan figures
  os << "  node [fontname=\"Helvetica\", fontsize=10];\n";

  const std::vector<const LogicalOp*> nodes = TopologicalNodes(root);
  std::unordered_map<const LogicalOp*, int> ids;
  for (const LogicalOp* node : nodes) {
    const int id = static_cast<int>(ids.size());
    ids.emplace(node, id);
    os << "  n" << id << " [label=\"" << EscapeLabel(node->Label())
       << "\", shape=" << NodeShape(node->kind()) << "];\n";
  }
  os << "  result [label=\"result\", shape=plaintext];\n";
  for (const LogicalOp* node : nodes) {
    for (const LogicalInput& in : node->inputs()) {
      os << "  n" << ids[in.op.get()] << " -> n" << ids[node];
      if (in.op->kind() == LogicalOpKind::kBypassSelect ||
          in.op->kind() == LogicalOpKind::kBypassJoin) {
        const bool negative = in.port == StreamPort::kNegative;
        os << " [label=\"" << (negative ? "-" : "+") << "\""
           << (negative ? ", style=dashed" : "") << "]";
      } else if (in.op->kind() == LogicalOpKind::kBypassPartition) {
        const auto* part =
            static_cast<const BypassPartitionOp*>(in.op.get());
        const int p = static_cast<int>(in.port);
        const bool rest =
            p == static_cast<int>(part->predicates().size());
        if (rest) {
          os << " [label=\"rest\", style=dashed]";
        } else {
          os << " [label=\"t" << p << "\"]";
        }
      }
      os << ";\n";
    }
  }
  os << "  n" << ids[&root] << " -> result;\n";
  os << "}\n";
  return os.str();
}

}  // namespace bypass
