// Helpers for traversing logical plans and their embedded expressions,
// used by the classifier and the unnesting rewriter.
#ifndef BYPASSDB_ALGEBRA_PLAN_UTIL_H_
#define BYPASSDB_ALGEBRA_PLAN_UTIL_H_

#include <functional>
#include <vector>

#include "algebra/logical_op.h"

namespace bypass {

/// All top-level expressions attached to one node (predicates, projection
/// and map items, aggregate arguments, sort keys). Shared pointers: the
/// pointees may be mutated through them.
std::vector<ExprPtr> NodeExpressions(const LogicalOp& node);

/// Visits every node reachable from root (each node once).
void VisitPlan(const LogicalOpPtr& root,
               const std::function<void(const LogicalOpPtr&)>& fn);

/// All correlated (is_outer) column references in the plan's expressions.
/// Does NOT descend into nested subquery plans: their outer references
/// point at *their* enclosing block, not at ours (direct correlation).
std::vector<ColumnRefExpr*> CollectPlanOuterRefs(const LogicalOp& root);

/// True if the plan references its enclosing block, i.e. the block is
/// correlated (Kim types J/JA vs. N/A).
bool PlanIsCorrelated(const LogicalOp& root);

/// True if any expression in the plan (again not descending into nested
/// blocks) contains a subquery expression, i.e. the block has further
/// nesting below it.
bool PlanHasNestedSubquery(const LogicalOp& root);

/// Builds Π over `input` that keeps exactly the columns of `columns`
/// (matched by qualifier+name against the input schema), preserving their
/// qualifiers — the paper's Π_{A(R)}.
LogicalOpPtr ProjectToColumns(LogicalInput input, const Schema& columns);

}  // namespace bypass

#endif  // BYPASSDB_ALGEBRA_PLAN_UTIL_H_
