// Graphviz export of logical plan DAGs. The paper stresses that bypass
// plans are DAGs (Sec. 5, citing Neumann's DAG-plan work); dot output
// makes the shared bypass nodes and their +/− streams visible.
#ifndef BYPASSDB_ALGEBRA_DOT_H_
#define BYPASSDB_ALGEBRA_DOT_H_

#include <string>

#include "algebra/logical_op.h"

namespace bypass {

/// Renders the plan as a Graphviz digraph. Edges point from producers to
/// consumers; bypass streams are labelled "+" (solid) and "−" (dashed),
/// matching the paper's figures.
std::string PlanToDot(const LogicalOp& root,
                      const std::string& graph_name = "plan");

}  // namespace bypass

#endif  // BYPASSDB_ALGEBRA_DOT_H_
