#include "algebra/plan_util.h"

#include <unordered_set>

#include "expr/expr_util.h"

namespace bypass {

std::vector<ExprPtr> NodeExpressions(const LogicalOp& node) {
  std::vector<ExprPtr> out;
  switch (node.kind()) {
    case LogicalOpKind::kGet:
    case LogicalOpKind::kDistinct:
    case LogicalOpKind::kUnion:
    case LogicalOpKind::kNumbering:
    case LogicalOpKind::kLimit:
      break;
    case LogicalOpKind::kSelect:
      out.push_back(static_cast<const SelectOp&>(node).predicate());
      break;
    case LogicalOpKind::kBypassSelect:
      out.push_back(static_cast<const BypassSelectOp&>(node).predicate());
      break;
    case LogicalOpKind::kBypassPartition:
      for (const ExprPtr& p :
           static_cast<const BypassPartitionOp&>(node).predicates()) {
        out.push_back(p);
      }
      break;
    case LogicalOpKind::kProject:
      for (const NamedExpr& it :
           static_cast<const ProjectOp&>(node).items()) {
        out.push_back(it.expr);
      }
      break;
    case LogicalOpKind::kMap:
      for (const NamedExpr& it : static_cast<const MapOp&>(node).items()) {
        out.push_back(it.expr);
      }
      break;
    case LogicalOpKind::kJoin: {
      const auto& j = static_cast<const JoinOp&>(node);
      if (j.predicate()) out.push_back(j.predicate());
      break;
    }
    case LogicalOpKind::kBypassJoin:
      out.push_back(static_cast<const BypassJoinOp&>(node).predicate());
      break;
    case LogicalOpKind::kLeftOuterJoin:
      out.push_back(
          static_cast<const LeftOuterJoinOp&>(node).predicate());
      break;
    case LogicalOpKind::kSemiJoin:
      out.push_back(static_cast<const SemiJoinOp&>(node).predicate());
      break;
    case LogicalOpKind::kAntiJoin:
      out.push_back(static_cast<const AntiJoinOp&>(node).predicate());
      break;
    case LogicalOpKind::kGroupBy:
      for (const AggregateSpec& a :
           static_cast<const GroupByOp&>(node).aggregates()) {
        if (a.arg) out.push_back(a.arg);
      }
      break;
    case LogicalOpKind::kBinaryGroupBy:
      for (const AggregateSpec& a :
           static_cast<const BinaryGroupByOp&>(node).aggregates()) {
        if (a.arg) out.push_back(a.arg);
      }
      break;
    case LogicalOpKind::kSort:
      for (const SortKey& k : static_cast<const SortOp&>(node).keys()) {
        out.push_back(k.expr);
      }
      break;
  }
  return out;
}

namespace {

void VisitPlanImpl(const LogicalOpPtr& node,
                   std::unordered_set<const LogicalOp*>* seen,
                   const std::function<void(const LogicalOpPtr&)>& fn) {
  if (node == nullptr || !seen->insert(node.get()).second) return;
  fn(node);
  for (const LogicalInput& in : node->inputs()) {
    VisitPlanImpl(in.op, seen, fn);
  }
}

}  // namespace

void VisitPlan(const LogicalOpPtr& root,
               const std::function<void(const LogicalOpPtr&)>& fn) {
  std::unordered_set<const LogicalOp*> seen;
  VisitPlanImpl(root, &seen, fn);
}

std::vector<ColumnRefExpr*> CollectPlanOuterRefs(const LogicalOp& root) {
  std::vector<ColumnRefExpr*> out;
  for (const LogicalOp* node : TopologicalNodes(root)) {
    for (const ExprPtr& e : NodeExpressions(*node)) {
      for (ColumnRefExpr* ref : CollectColumnRefs(e.get())) {
        if (ref->is_outer()) out.push_back(ref);
      }
    }
  }
  return out;
}

bool PlanIsCorrelated(const LogicalOp& root) {
  return !CollectPlanOuterRefs(root).empty();
}

bool PlanHasNestedSubquery(const LogicalOp& root) {
  for (const LogicalOp* node : TopologicalNodes(root)) {
    for (const ExprPtr& e : NodeExpressions(*node)) {
      if (ContainsSubquery(e)) return true;
    }
  }
  return false;
}

LogicalOpPtr ProjectToColumns(LogicalInput input, const Schema& columns) {
  std::vector<NamedExpr> items;
  items.reserve(static_cast<size_t>(columns.num_columns()));
  for (const ColumnDef& c : columns.columns()) {
    items.push_back(NamedExpr{MakeColumnRef(c.qualifier, c.name),
                              c.name, c.qualifier});
  }
  return std::make_shared<ProjectOp>(std::move(input), std::move(items));
}

}  // namespace bypass
