#include "types/value.h"

#include <cmath>
#include <functional>
#include <sstream>

#include "common/check.h"

namespace bypass {

const char* DataTypeToString(DataType type) {
  switch (type) {
    case DataType::kBool:
      return "BOOL";
    case DataType::kInt64:
      return "INT64";
    case DataType::kDouble:
      return "DOUBLE";
    case DataType::kString:
      return "STRING";
  }
  return "UNKNOWN";
}

const char* CompareOpToString(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "<>";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

CompareOp FlipCompareOp(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return CompareOp::kEq;
    case CompareOp::kNe:
      return CompareOp::kNe;
    case CompareOp::kLt:
      return CompareOp::kGt;
    case CompareOp::kLe:
      return CompareOp::kGe;
    case CompareOp::kGt:
      return CompareOp::kLt;
    case CompareOp::kGe:
      return CompareOp::kLe;
  }
  BYPASS_UNREACHABLE("bad CompareOp");
}

CompareOp NegateCompareOp(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return CompareOp::kNe;
    case CompareOp::kNe:
      return CompareOp::kEq;
    case CompareOp::kLt:
      return CompareOp::kGe;
    case CompareOp::kLe:
      return CompareOp::kGt;
    case CompareOp::kGt:
      return CompareOp::kLe;
    case CompareOp::kGe:
      return CompareOp::kLt;
  }
  BYPASS_UNREACHABLE("bad CompareOp");
}

double Value::AsDouble() const {
  if (is_int64()) return static_cast<double>(int64_value());
  BYPASS_CHECK(is_double());
  return double_value();
}

DataType Value::type() const {
  BYPASS_CHECK(!is_null());
  if (is_bool()) return DataType::kBool;
  if (is_int64()) return DataType::kInt64;
  if (is_double()) return DataType::kDouble;
  return DataType::kString;
}

namespace {

TriBool FromOrdering(CompareOp op, int cmp) {
  bool result = false;
  switch (op) {
    case CompareOp::kEq:
      result = cmp == 0;
      break;
    case CompareOp::kNe:
      result = cmp != 0;
      break;
    case CompareOp::kLt:
      result = cmp < 0;
      break;
    case CompareOp::kLe:
      result = cmp <= 0;
      break;
    case CompareOp::kGt:
      result = cmp > 0;
      break;
    case CompareOp::kGe:
      result = cmp >= 0;
      break;
  }
  return result ? TriBool::kTrue : TriBool::kFalse;
}

int CompareDoubles(double a, double b) {
  if (a < b) return -1;
  if (a > b) return 1;
  return 0;
}

}  // namespace

// Non-int64 tail of Compare(); the all-int64 case is inlined in value.h.
TriBool Value::CompareSlow(CompareOp op, const Value& other) const {
  if (is_null() || other.is_null()) return TriBool::kUnknown;
  if (is_numeric() && other.is_numeric()) {
    return FromOrdering(op, CompareDoubles(AsDouble(), other.AsDouble()));
  }
  if (is_string() && other.is_string()) {
    return FromOrdering(op, string_value().compare(other.string_value()));
  }
  if (is_bool() && other.is_bool()) {
    const int a = bool_value() ? 1 : 0, b = other.bool_value() ? 1 : 0;
    return FromOrdering(op, a - b);
  }
  // Type mismatch: SQL would reject at bind time; be permissive at runtime.
  return TriBool::kUnknown;
}

// Non-int64 tail of OrderCompare(); the all-int64 case is inlined in
// value.h.
int Value::OrderCompareSlow(const Value& other) const {
  // NULL first, then bool < numeric < string across types.
  auto rank = [](const Value& v) {
    if (v.is_null()) return 0;
    if (v.is_bool()) return 1;
    if (v.is_numeric()) return 2;
    return 3;
  };
  const int ra = rank(*this), rb = rank(other);
  if (ra != rb) return ra < rb ? -1 : 1;
  if (is_null()) return 0;
  if (is_bool()) {
    const int a = bool_value() ? 1 : 0, b = other.bool_value() ? 1 : 0;
    return a - b;
  }
  if (is_numeric()) {
    return CompareDoubles(AsDouble(), other.AsDouble());
  }
  const int c = string_value().compare(other.string_value());
  return c < 0 ? -1 : (c > 0 ? 1 : 0);
}

size_t Value::Hash() const {
  if (is_null()) return 0x9e3779b97f4a7c15ULL;
  if (is_bool()) return bool_value() ? 0x1234567 : 0x7654321;
  if (is_int64()) {
    // Hash int64 via its double representation when it is exactly
    // representable, so that 1 and 1.0 hash alike (they compare equal).
    return std::hash<double>()(static_cast<double>(int64_value()));
  }
  if (is_double()) {
    const double d = double_value();
    return std::hash<double>()(d == 0.0 ? 0.0 : d);
  }
  return std::hash<std::string>()(string_value());
}

std::string Value::ToString() const {
  if (is_null()) return "NULL";
  if (is_bool()) return bool_value() ? "true" : "false";
  if (is_int64()) return std::to_string(int64_value());
  if (is_double()) {
    std::ostringstream os;
    os << double_value();
    return os.str();
  }
  return "'" + string_value() + "'";
}

}  // namespace bypass
